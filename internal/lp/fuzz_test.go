package lp

import (
	"math"
	"testing"
)

// FuzzSolve decodes arbitrary bytes into a small LP and checks the
// solver's contract: no panic, and any Optimal result actually
// satisfies every constraint and bound. Run with `go test -fuzz
// FuzzSolve ./internal/lp` for continuous fuzzing; the seed corpus runs
// in normal test mode.
func FuzzSolve(f *testing.F) {
	f.Add([]byte{2, 3, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{1, 1, 255, 0, 0})
	f.Add([]byte{4, 6, 9, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8, 9, 1, 2, 3, 4, 5, 6, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		n := int(data[0]%5) + 1 // 1..5 variables
		m := int(data[1]%6) + 1 // 1..6 constraints
		pos := 2
		next := func() float64 {
			if pos >= len(data) {
				pos = 2
			}
			v := float64(int(data[pos]) - 128)
			pos++
			return v / 8
		}
		p := NewProblem(n)
		for i := 0; i < n; i++ {
			p.Objective[i] = next()
			lo := math.Abs(next())
			hi := lo + math.Abs(next())
			p.SetBounds(i, lo, hi)
		}
		for r := 0; r < m; r++ {
			coefs := map[int]float64{}
			for i := 0; i < n; i++ {
				coefs[i] = next()
			}
			rel := Rel(int(math.Abs(next())) % 3)
			p.AddConstraint(coefs, rel, next()*4, "fz")
		}
		res, err := Solve(p)
		if err != nil {
			// Structured errors are fine; panics are the bug class.
			return
		}
		if res.Status != Optimal {
			return
		}
		// The optimal point must be feasible.
		for i := 0; i < n; i++ {
			if res.X[i] < p.lower(i)-1e-5 || res.X[i] > p.upper(i)+1e-5 {
				t.Fatalf("bound violation: x[%d]=%g not in [%g,%g]",
					i, res.X[i], p.lower(i), p.upper(i))
			}
		}
		for _, c := range p.Constraints {
			s := 0.0
			for i, cf := range c.Coefs {
				s += cf * res.X[i]
			}
			switch c.Rel {
			case LE:
				if s > c.RHS+1e-4 {
					t.Fatalf("LE violation: %g > %g", s, c.RHS)
				}
			case GE:
				if s < c.RHS-1e-4 {
					t.Fatalf("GE violation: %g < %g", s, c.RHS)
				}
			case EQ:
				if math.Abs(s-c.RHS) > 1e-4 {
					t.Fatalf("EQ violation: %g != %g", s, c.RHS)
				}
			}
		}
	})
}
