package lp

import (
	"testing"

	"pathdriverwash/internal/obs"
)

// pivotHeavyProblem builds a dense LP that takes a meaningful number
// of simplex pivots, so the per-pivot instrumentation cost dominates
// fixed setup in the overhead benchmarks.
func pivotHeavyProblem(n int) *Problem {
	p := NewProblem(n)
	for v := 0; v < n; v++ {
		p.Objective[v] = float64(-(v%7 + 1))
	}
	for r := 0; r < n-5; r++ {
		c := map[int]float64{}
		for v := 0; v < n; v++ {
			c[v] = float64((v*r)%5 + 1)
		}
		p.AddConstraint(c, LE, float64(40+r), "cap")
	}
	return p
}

func TestObsCountersIncrease(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	solves0 := obs.Default().Counter("pdw_lp_solves_total").Value()
	pivots0 := obs.Default().Counter("pdw_lp_simplex_pivots_total").Value()

	res, err := Solve(pivotHeavyProblem(30))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("solve took no pivots; fixture too easy")
	}
	if got := obs.Default().Counter("pdw_lp_solves_total").Value() - solves0; got != 1 {
		t.Errorf("lp solves counter moved by %d, want 1", got)
	}
	gotPivots := obs.Default().Counter("pdw_lp_simplex_pivots_total").Value() - pivots0
	if gotPivots != int64(res.Iterations) {
		t.Errorf("pivot counter moved by %d, want %d", gotPivots, res.Iterations)
	}
}

func TestObsDisabledCountersStill(t *testing.T) {
	obs.Disable()
	pivots0 := obs.Default().Counter("pdw_lp_simplex_pivots_total").Value()
	if _, err := Solve(pivotHeavyProblem(30)); err != nil {
		t.Fatal(err)
	}
	if got := obs.Default().Counter("pdw_lp_simplex_pivots_total").Value(); got != pivots0 {
		t.Errorf("disabled solve moved the pivot counter by %d", got-pivots0)
	}
}

// BenchmarkSimplexObsOverhead quantifies the observability tax on the
// simplex pivot loop in both states. The acceptance contract
// (DESIGN.md "Observability cost contract") is that the disabled
// variant stays within 2% of an uninstrumented loop; its only cost is
// one atomic load per ctxCheckEvery (64) pivots, so the two sub-
// benchmarks should be statistically indistinguishable from each
// other apart from the enabled variant's counter flushes.

func BenchmarkSimplexObsOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		obs.Disable()
		for i := 0; i < b.N; i++ {
			if _, err := Solve(pivotHeavyProblem(30)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		obs.Enable()
		defer obs.Disable()
		for i := 0; i < b.N; i++ {
			if _, err := Solve(pivotHeavyProblem(30)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
