// Package lp implements a two-phase primal simplex solver for linear
// programs. Together with internal/milp it replaces the commercial ILP
// solver (Gurobi) the paper uses to solve the formulations of Sec. III.
//
// Problems are stated over n decision variables with per-variable bounds
// [Lower_i, Upper_i] (Lower_i >= 0) and a list of linear constraints with
// <=, >= or = relations. The solver minimizes; maximize by negating the
// objective.
//
// The implementation is a dense-tableau two-phase simplex: phase 1
// minimizes the sum of artificial variables to find a basic feasible
// solution, phase 2 optimizes the real objective. Dantzig pricing is used
// until an iteration threshold, after which Bland's rule guarantees
// termination on degenerate problems.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"pathdriverwash/internal/obs"
	"pathdriverwash/internal/solve"
)

// Pivot-loop telemetry. The handles are resolved once at package load;
// the loop itself pays one Enabled() load per ctxCheckEvery pivots
// when disabled (see BenchmarkSimplexObsOverhead and the cost contract
// in DESIGN.md).
var (
	lpSolvesTotal = obs.Default().Counter("pdw_lp_solves_total")
	lpPivotsTotal = obs.Default().Counter("pdw_lp_simplex_pivots_total")
)

// slowSolvePivots is the pivot threshold above which a finished solve
// is worth a retroactive span in the trace.
const slowSolvePivots = 512

// Rel is the relation of a constraint row.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // sum <= rhs
	GE            // sum >= rhs
	EQ            // sum == rhs
)

// String renders the relation.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Constraint is one linear row: sum_i Coefs[i]*x_i Rel RHS.
// Coefs is sparse: absent variables have coefficient zero.
type Constraint struct {
	Coefs map[int]float64
	Rel   Rel
	RHS   float64
	// Name is optional, used in error and debug output.
	Name string
}

// Problem is a linear program in minimization form.
type Problem struct {
	// NumVars is the number of decision variables, indexed 0..NumVars-1.
	NumVars int
	// Objective holds the cost coefficients c (len NumVars); missing
	// entries (shorter slice) are treated as zero.
	Objective []float64
	// Lower and Upper are per-variable bounds. Nil slices mean all zeros
	// and all +inf respectively. Lower bounds must be >= 0.
	Lower, Upper []float64
	// Constraints are the rows.
	Constraints []Constraint
}

// NewProblem allocates a problem with n variables, zero objective,
// bounds [0, +inf).
func NewProblem(n int) *Problem {
	return &Problem{NumVars: n, Objective: make([]float64, n)}
}

// AddConstraint appends a row and returns its index.
func (p *Problem) AddConstraint(coefs map[int]float64, rel Rel, rhs float64, name string) int {
	cp := make(map[int]float64, len(coefs))
	for i, v := range coefs {
		if v != 0 {
			cp[i] = v
		}
	}
	p.Constraints = append(p.Constraints, Constraint{Coefs: cp, Rel: rel, RHS: rhs, Name: name})
	return len(p.Constraints) - 1
}

// SetBounds sets [lo, hi] bounds for variable i, growing the bound
// slices on demand.
func (p *Problem) SetBounds(i int, lo, hi float64) {
	for len(p.Lower) < p.NumVars {
		p.Lower = append(p.Lower, 0)
	}
	for len(p.Upper) < p.NumVars {
		p.Upper = append(p.Upper, math.Inf(1))
	}
	p.Lower[i], p.Upper[i] = lo, hi
}

func (p *Problem) lower(i int) float64 {
	if i < len(p.Lower) {
		return p.Lower[i]
	}
	return 0
}

func (p *Problem) upper(i int) float64 {
	if i < len(p.Upper) {
		return p.Upper[i]
	}
	return math.Inf(1)
}

func (p *Problem) cost(i int) float64 {
	if i < len(p.Objective) {
		return p.Objective[i]
	}
	return 0
}

// Status reports the outcome of a solve.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Result is the outcome of Solve.
type Result struct {
	Status Status
	// X is the optimal point (len NumVars) when Status == Optimal.
	X []float64
	// Obj is the optimal objective value when Status == Optimal.
	Obj float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

// ErrIterationLimit is returned if simplex exceeds its pivot budget,
// which indicates a bug or a numerically hostile model.
var ErrIterationLimit = errors.New("lp: simplex iteration limit exceeded")

const (
	eps      = 1e-9
	feasTol  = 1e-7
	maxPivot = 200000
)

// Solve optimizes the problem with two-phase simplex.
func Solve(p *Problem) (Result, error) {
	return SolveContext(context.Background(), p)
}

// SolveContext is Solve honoring cancellation: the pivot loop checks ctx
// every few dozen iterations and returns ctx.Err() once it is done.
// Simplex keeps no feasible iterate worth returning mid-flight, so
// cancellation surfaces as an error here; integer layers above treat it
// like an iteration limit and fall back to their own incumbents.
func SolveContext(ctx context.Context, p *Problem) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	t, elim, shift, err := buildTableau(p)
	if err != nil {
		if IsInfeasibleConst(err) {
			return Result{Status: Infeasible}, nil
		}
		return Result{}, err
	}
	if t == nil { // all variables eliminated; constraints pre-checked
		x := make([]float64, p.NumVars)
		obj := 0.0
		for i := 0; i < p.NumVars; i++ {
			x[i] = elim[i]
			obj += p.cost(i) * x[i]
		}
		return Result{Status: Optimal, X: x, Obj: obj}, nil
	}
	t.check = solve.NewCheckpoint(ctx)
	t.prog = solve.ProgressFromContext(ctx)
	var t0 time.Time
	if obs.Enabled() {
		t0 = time.Now()
	}
	res, err := t.solveTwoPhase()
	t.flushProgress()
	if obs.Enabled() {
		lpSolvesTotal.Inc()
		lpPivotsTotal.Add(int64(t.iters - t.flushed))
		t.flushed = t.iters
		if !t0.IsZero() && t.iters >= slowSolvePivots {
			status := "error"
			if err == nil {
				status = res.Status.String()
			}
			obs.RecordSpan(ctx, "lp.simplex", t0, time.Since(t0),
				obs.A("pivots", t.iters), obs.A("rows", t.m),
				obs.A("cols", t.n), obs.A("status", status))
		}
	}
	if err != nil || res.Status != Optimal {
		return res, err
	}
	// Map tableau solution back to problem variables.
	x := make([]float64, p.NumVars)
	obj := 0.0
	for i := 0; i < p.NumVars; i++ {
		if fx, ok := elim[i]; ok && t.colOf[i] < 0 {
			x[i] = fx
		} else {
			x[i] = res.X[t.colOf[i]] + shift[i]
		}
		obj += p.cost(i) * x[i]
	}
	res.X, res.Obj = x, obj
	return res, nil
}

func (p *Problem) validate() error {
	if p.NumVars <= 0 {
		return errors.New("lp: problem has no variables")
	}
	for i := 0; i < p.NumVars; i++ {
		lo, hi := p.lower(i), p.upper(i)
		if lo < 0 {
			return fmt.Errorf("lp: variable %d has negative lower bound %g", i, lo)
		}
		if hi < lo-eps {
			return fmt.Errorf("lp: variable %d has empty bound range [%g,%g]", i, lo, hi)
		}
	}
	for _, c := range p.Constraints {
		for i := range c.Coefs {
			if i < 0 || i >= p.NumVars {
				return fmt.Errorf("lp: constraint %q references variable %d (have %d)", c.Name, i, p.NumVars)
			}
		}
	}
	return nil
}

// tableau is the dense simplex tableau. Columns are: structural columns
// (one per non-eliminated variable, shifted to lower bound 0), slack
// columns, artificial columns; the last column is the RHS.
type tableau struct {
	m, n    int // rows, structural+slack columns (artificials appended)
	a       [][]float64
	basis   []int
	nArt    int
	cost    []float64 // phase-2 cost per column
	colOf   []int     // problem var -> structural column (-1 if eliminated)
	rowName []string
	iters   int
	flushed int              // pivots already flushed to the obs counter
	check   solve.Checkpoint // optional cancellation, polled every ctxCheckEvery pivots

	// prog is the optional live progress view resolved once from the
	// context at SolveContext; progFlushed tracks the pivots already
	// published into it at the same ctxCheckEvery cadence as flushed.
	prog        *solve.Progress
	progFlushed int
}

// flushProgress publishes the pivots accumulated since the last flush
// into the live progress view. One nil check when no view is attached;
// called only at the ctxCheckEvery cadence and at solve exit.
func (t *tableau) flushProgress() {
	if t.prog != nil && t.iters > t.progFlushed {
		t.prog.AddPivots(int64(t.iters - t.progFlushed))
		t.progFlushed = t.iters
	}
}

// ctxCheckEvery is the pivot interval between cancellation checks: small
// enough that cancellation lands within a handful of dense-row pivots,
// large enough that the poll never shows up in profiles. It equals the
// shared solve.Checkpoint stride — this loop is where that cadence was
// first calibrated.
const ctxCheckEvery = solve.CheckpointStride

// buildTableau converts the problem to equational standard form.
// Variables with Lower==Upper are eliminated (substituted). All other
// variables are shifted by their lower bound; finite upper bounds become
// extra <= rows. Returns the tableau, the eliminated values, and the
// per-variable shifts. A nil tableau means everything was eliminated
// and all constraints held.
func buildTableau(p *Problem) (*tableau, map[int]float64, []float64, error) {
	elim := map[int]float64{}
	shift := make([]float64, p.NumVars)
	colOf := make([]int, p.NumVars)
	ncols := 0
	for i := 0; i < p.NumVars; i++ {
		lo, hi := p.lower(i), p.upper(i)
		if hi-lo <= eps { // fixed variable
			elim[i] = lo
			colOf[i] = -1
			continue
		}
		shift[i] = lo
		colOf[i] = ncols
		ncols++
	}

	type row struct {
		coefs map[int]float64 // by structural column
		rel   Rel
		rhs   float64
		name  string
	}
	var rows []row
	addRow := func(coefs map[int]float64, rel Rel, rhs float64, name string) error {
		adj := rhs
		out := map[int]float64{}
		for v, cf := range coefs {
			if fx, ok := elim[v]; ok && colOf[v] < 0 {
				adj -= cf * fx
				continue
			}
			adj -= cf * shift[v]
			out[colOf[v]] += cf
		}
		if len(out) == 0 { // constant row: check satisfiability now
			switch rel {
			case LE:
				if adj < -feasTol {
					return fmt.Errorf("lp: constraint %q infeasible after elimination", name)
				}
			case GE:
				if adj > feasTol {
					return fmt.Errorf("lp: constraint %q infeasible after elimination", name)
				}
			case EQ:
				if math.Abs(adj) > feasTol {
					return fmt.Errorf("lp: constraint %q infeasible after elimination", name)
				}
			}
			return nil
		}
		rows = append(rows, row{out, rel, adj, name})
		return nil
	}

	for _, c := range p.Constraints {
		if err := addRow(c.Coefs, c.Rel, c.RHS, c.Name); err != nil {
			// Constant-row infeasibility is a real Infeasible outcome, not
			// a modelling error; signal it via a sentinel handled below.
			return nil, nil, nil, errInfeasibleConst{err}
		}
	}
	for i := 0; i < p.NumVars; i++ {
		if colOf[i] < 0 {
			continue
		}
		if hi := p.upper(i); !math.IsInf(hi, 1) {
			if err := addRow(map[int]float64{i: 1}, LE, hi, fmt.Sprintf("ub(x%d)", i)); err != nil {
				return nil, nil, nil, errInfeasibleConst{err}
			}
		}
	}

	if ncols == 0 {
		return nil, elim, shift, nil
	}

	m := len(rows)
	// Count slacks: one per LE/GE row.
	nSlack := 0
	for _, r := range rows {
		if r.rel != EQ {
			nSlack++
		}
	}
	n := ncols + nSlack
	t := &tableau{m: m, n: n, colOf: colOf}
	t.a = make([][]float64, m)
	t.basis = make([]int, m)
	t.rowName = make([]string, m)
	t.cost = make([]float64, n)
	for i := 0; i < p.NumVars; i++ {
		if colOf[i] >= 0 {
			t.cost[colOf[i]] = p.cost(i)
		}
	}
	slack := ncols
	for ri, r := range rows {
		t.rowName[ri] = r.name
		rowv := make([]float64, n+1)
		for c, v := range r.coefs {
			rowv[c] = v
		}
		rowv[n] = r.rhs
		switch r.rel {
		case LE:
			rowv[slack] = 1
			t.basis[ri] = slack
			slack++
		case GE:
			rowv[slack] = -1
			t.basis[ri] = -1 // needs artificial
			slack++
		case EQ:
			t.basis[ri] = -1
		}
		// Normalize to non-negative RHS.
		if rowv[n] < 0 {
			for j := range rowv {
				rowv[j] = -rowv[j]
			}
			if r.rel == LE { // slack coefficient flipped; needs artificial
				t.basis[ri] = -1
			} else if r.rel == GE { // surplus became +1: usable as basis
				t.basis[ri] = slack - 1
			}
		}
		t.a[ri] = rowv
	}
	return t, elim, shift, nil
}

type errInfeasibleConst struct{ err error }

func (e errInfeasibleConst) Error() string { return e.err.Error() }

// solveTwoPhase runs phase 1 (if artificials are needed) then phase 2.
func (t *tableau) solveTwoPhase() (Result, error) {
	// Add artificial columns for rows without a basic column.
	needArt := 0
	for _, b := range t.basis {
		if b < 0 {
			needArt++
		}
	}
	if needArt > 0 {
		t.nArt = needArt
		art := t.n
		for ri := range t.a {
			// Widening every row reallocates and copies the whole
			// tableau — on big models that is whole seconds of memmove,
			// so it polls the deadline like the pivot kernel does.
			if err := t.check.Check(); err != nil {
				return Result{}, err
			}
			rowv := t.a[ri]
			rhs := rowv[t.n]
			rowv = append(rowv[:t.n:t.n], make([]float64, needArt+1)...)
			rowv[t.n+needArt] = rhs
			t.a[ri] = rowv
		}
		for ri, b := range t.basis {
			if b < 0 {
				t.a[ri][art] = 1
				t.basis[ri] = art
				art++
			}
		}
		// Phase 1: minimize sum of artificials.
		p1cost := make([]float64, t.n+needArt)
		for j := t.n; j < t.n+needArt; j++ {
			p1cost[j] = 1
		}
		status, err := t.optimize(p1cost, t.n+needArt)
		if err != nil {
			return Result{}, err
		}
		if status == Unbounded {
			return Result{}, errors.New("lp: phase-1 unbounded (internal error)")
		}
		// Feasible iff the phase-1 objective is (near) zero.
		p1obj := 0.0
		for ri, b := range t.basis {
			if b < len(p1cost) {
				p1obj += p1cost[b] * t.a[ri][len(t.a[ri])-1]
			}
		}
		if p1obj > feasTol*float64(1+t.m) {
			return Result{Status: Infeasible, Iterations: t.iters}, nil
		}
		// Drive remaining artificials out of the basis where possible.
		if err := t.expelArtificials(); err != nil {
			return Result{}, err
		}
	}

	// Phase 2 over the structural+slack columns only.
	ncols := t.n
	if t.m == 0 {
		// Every row was redundant. Variables sit at their lower bounds
		// (column value 0); any negative cost direction is unbounded
		// because finite upper bounds were encoded as rows.
		for j := 0; j < ncols; j++ {
			if t.cost[j] < -1e-8 {
				return Result{Status: Unbounded, Iterations: t.iters}, nil
			}
		}
		return Result{Status: Optimal, X: make([]float64, t.n), Iterations: t.iters}, nil
	}
	status, err := t.optimize(t.cost, ncols)
	if err != nil {
		return Result{}, err
	}
	if status == Unbounded {
		return Result{Status: Unbounded, Iterations: t.iters}, nil
	}
	x := make([]float64, t.n)
	rhs := len(t.a[0]) - 1
	for ri, b := range t.basis {
		if b < t.n {
			x[b] = t.a[ri][rhs]
		}
	}
	return Result{Status: Optimal, X: x, Iterations: t.iters}, nil
}

// expelArtificials pivots basic artificial variables (at zero value) out
// of the basis where a structural pivot exists, then deletes rows whose
// artificial cannot be expelled: phase 1 drove their RHS to zero, so they
// are redundant and would otherwise let the artificial drift during
// phase 2.
func (t *tableau) expelArtificials() error {
	for ri, b := range t.basis {
		if b < t.n {
			continue
		}
		for j := 0; j < t.n; j++ {
			if math.Abs(t.a[ri][j]) > eps {
				if err := t.pivot(ri, j); err != nil {
					return err
				}
				break
			}
		}
	}
	keptA := t.a[:0]
	keptB := t.basis[:0]
	keptN := t.rowName[:0]
	for ri, b := range t.basis {
		if b >= t.n {
			continue // redundant row
		}
		keptA = append(keptA, t.a[ri])
		keptB = append(keptB, b)
		keptN = append(keptN, t.rowName[ri])
	}
	t.a, t.basis, t.rowName = keptA, keptB, keptN
	t.m = len(t.a)
	return nil
}

// optimize runs simplex minimizing cost over columns [0,ncols); columns
// at or beyond ncols (expelled artificials) never re-enter the basis.
func (t *tableau) optimize(cost []float64, ncols int) (Status, error) {
	rhs := len(t.a[0]) - 1
	blandAfter := 50 * (t.m + ncols)
	price := make([]float64, ncols)
	basic := make([]bool, ncols)
	for {
		if t.iters > maxPivot {
			return 0, ErrIterationLimit
		}
		if t.iters%ctxCheckEvery == 0 {
			// Batched telemetry flush at the historical cancellation-check
			// cadence: disabled cost is one atomic load per ctxCheckEvery
			// pivots.
			if obs.Enabled() && t.iters > t.flushed {
				lpPivotsTotal.Add(int64(t.iters - t.flushed))
				t.flushed = t.iters
			}
			t.flushProgress()
			if err := t.check.Err(); err != nil {
				return 0, err
			}
		}
		// Reduced costs: r_j = c_j - c_B . B^-1 A_j. In tableau form the
		// price row is sum over rows of c_basis * a[row][:], accumulated
		// in one pass over the rows with non-zero basic cost. The pass is
		// O(m*ncols) — on wide models a single pivot iteration costs
		// hundreds of milliseconds, so cancellation is polled per priced
		// row (amortized by the checkpoint stride), not per iteration.
		for j := range price {
			price[j] = 0
			basic[j] = false
		}
		for ri, b := range t.basis {
			if b < ncols {
				basic[b] = true
			}
			cb := 0.0
			if b < len(cost) {
				cb = cost[b]
			}
			if cb == 0 {
				continue
			}
			if err := t.check.Check(); err != nil {
				return 0, err
			}
			row := t.a[ri]
			for j := 0; j < ncols; j++ {
				price[j] += cb * row[j]
			}
		}
		var enter = -1
		var bestR float64
		useBland := t.iters > blandAfter
		for j := 0; j < ncols; j++ {
			if basic[j] {
				continue
			}
			r := cost[j] - price[j]
			if r < -1e-8 {
				if useBland {
					enter = j
					break
				}
				if enter < 0 || r < bestR {
					enter, bestR = j, r
				}
			}
		}
		if enter < 0 {
			return Optimal, nil
		}
		// Ratio test.
		leave := -1
		var bestRatio float64
		for ri := 0; ri < t.m; ri++ {
			av := t.a[ri][enter]
			if av > eps {
				ratio := t.a[ri][rhs] / av
				if leave < 0 || ratio < bestRatio-eps ||
					(math.Abs(ratio-bestRatio) <= eps && t.basis[ri] < t.basis[leave]) {
					leave, bestRatio = ri, ratio
				}
			}
		}
		if leave < 0 {
			return Unbounded, nil
		}
		if err := t.pivot(leave, enter); err != nil {
			return 0, err
		}
	}
}

// pivot performs a Gauss-Jordan pivot on (row, col) and updates the
// basis. Cancellation is polled per eliminated row (amortized by the
// checkpoint stride): the elimination is O(m*rowlen), the widest
// uninterruptible span the solver would otherwise have. An abort
// leaves the tableau mid-update — every caller discards it and
// returns the error.
func (t *tableau) pivot(row, col int) error {
	t.iters++
	pr := t.a[row]
	pv := pr[col]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	pr[col] = 1 // exact
	for ri := range t.a {
		if ri == row {
			continue
		}
		f := t.a[ri][col]
		if f == 0 {
			continue
		}
		if err := t.check.Check(); err != nil {
			return err
		}
		rowv := t.a[ri]
		for j := range rowv {
			rowv[j] -= f * pr[j]
		}
		rowv[col] = 0 // exact
	}
	t.basis[row] = col
	return nil
}

// IsInfeasibleConst reports whether err marks a constant-row
// infeasibility detected during presolve; callers treat it as a normal
// Infeasible outcome.
func IsInfeasibleConst(err error) bool {
	_, ok := err.(errInfeasibleConst)
	return ok
}
