package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-6*(1+math.Abs(b)) }

func solveOK(t *testing.T, p *Problem) Result {
	t.Helper()
	r, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if r.Status != Optimal {
		t.Fatalf("status = %v want optimal", r.Status)
	}
	return r
}

// checkFeasible asserts r.X satisfies all constraints and bounds of p.
func checkFeasible(t *testing.T, p *Problem, x []float64) {
	t.Helper()
	for i := 0; i < p.NumVars; i++ {
		if x[i] < p.lower(i)-1e-6 || x[i] > p.upper(i)+1e-6 {
			t.Errorf("x[%d]=%g violates bounds [%g,%g]", i, x[i], p.lower(i), p.upper(i))
		}
	}
	for _, c := range p.Constraints {
		s := 0.0
		for i, cf := range c.Coefs {
			s += cf * x[i]
		}
		switch c.Rel {
		case LE:
			if s > c.RHS+1e-5 {
				t.Errorf("constraint %q: %g <= %g violated", c.Name, s, c.RHS)
			}
		case GE:
			if s < c.RHS-1e-5 {
				t.Errorf("constraint %q: %g >= %g violated", c.Name, s, c.RHS)
			}
		case EQ:
			if math.Abs(s-c.RHS) > 1e-5 {
				t.Errorf("constraint %q: %g == %g violated", c.Name, s, c.RHS)
			}
		}
	}
}

func TestSimpleMaximization(t *testing.T) {
	// max 3x+2y s.t. x+y<=4, x+3y<=6  -> x=4,y=0, obj 12.
	p := NewProblem(2)
	p.Objective = []float64{-3, -2}
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, LE, 4, "c1")
	p.AddConstraint(map[int]float64{0: 1, 1: 3}, LE, 6, "c2")
	r := solveOK(t, p)
	if !approx(r.Obj, -12) {
		t.Fatalf("obj = %g want -12 (x=%v)", r.Obj, r.X)
	}
	checkFeasible(t, p, r.X)
}

func TestEqualityConstraint(t *testing.T) {
	// min x+y s.t. x+2y = 4, x,y>=0 -> y=2,x=0 obj 2.
	p := NewProblem(2)
	p.Objective = []float64{1, 1}
	p.AddConstraint(map[int]float64{0: 1, 1: 2}, EQ, 4, "eq")
	r := solveOK(t, p)
	if !approx(r.Obj, 2) {
		t.Fatalf("obj = %g want 2", r.Obj)
	}
	checkFeasible(t, p, r.X)
}

func TestGEConstraints(t *testing.T) {
	// min 2x+3y s.t. x+y>=10, x>=3 -> x=10? obj: min at y=0,x=10 -> 20? or x=3,y=7 -> 27. So x=10,y=0: 20.
	p := NewProblem(2)
	p.Objective = []float64{2, 3}
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, GE, 10, "sum")
	p.AddConstraint(map[int]float64{0: 1}, GE, 3, "xmin")
	r := solveOK(t, p)
	if !approx(r.Obj, 20) {
		t.Fatalf("obj = %g want 20 (x=%v)", r.Obj, r.X)
	}
	checkFeasible(t, p, r.X)
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.Objective = []float64{1}
	p.AddConstraint(map[int]float64{0: 1}, LE, 1, "le")
	p.AddConstraint(map[int]float64{0: 1}, GE, 2, "ge")
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Infeasible {
		t.Fatalf("status = %v want infeasible", r.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.Objective = []float64{-1} // max x, no upper bound
	p.AddConstraint(map[int]float64{0: 1}, GE, 0, "ge0")
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Unbounded {
		t.Fatalf("status = %v want unbounded", r.Status)
	}
}

func TestUpperBounds(t *testing.T) {
	// max x+y with x<=2, y<=3 via bounds only.
	p := NewProblem(2)
	p.Objective = []float64{-1, -1}
	p.SetBounds(0, 0, 2)
	p.SetBounds(1, 0, 3)
	r := solveOK(t, p)
	if !approx(r.Obj, -5) {
		t.Fatalf("obj = %g want -5", r.Obj)
	}
	checkFeasible(t, p, r.X)
}

func TestLowerBoundShift(t *testing.T) {
	// min x+y with x>=2, y>=1.5, x+y>=5 -> obj 5.
	p := NewProblem(2)
	p.Objective = []float64{1, 1}
	p.SetBounds(0, 2, math.Inf(1))
	p.SetBounds(1, 1.5, math.Inf(1))
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, GE, 5, "sum")
	r := solveOK(t, p)
	if !approx(r.Obj, 5) {
		t.Fatalf("obj = %g want 5 (x=%v)", r.Obj, r.X)
	}
	if r.X[0] < 2-1e-9 || r.X[1] < 1.5-1e-9 {
		t.Fatalf("bounds violated: %v", r.X)
	}
}

func TestFixedVariableElimination(t *testing.T) {
	// x fixed to 3; min y s.t. y >= x -> y=3.
	p := NewProblem(2)
	p.Objective = []float64{0, 1}
	p.SetBounds(0, 3, 3)
	p.AddConstraint(map[int]float64{1: 1, 0: -1}, GE, 0, "ylink")
	r := solveOK(t, p)
	if !approx(r.X[0], 3) || !approx(r.X[1], 3) {
		t.Fatalf("x = %v want [3 3]", r.X)
	}
}

func TestAllVariablesFixed(t *testing.T) {
	p := NewProblem(2)
	p.Objective = []float64{2, 5}
	p.SetBounds(0, 1, 1)
	p.SetBounds(1, 2, 2)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, LE, 4, "ok")
	r := solveOK(t, p)
	if !approx(r.Obj, 12) {
		t.Fatalf("obj = %g want 12", r.Obj)
	}
}

func TestAllFixedInfeasibleConstant(t *testing.T) {
	p := NewProblem(1)
	p.SetBounds(0, 2, 2)
	p.AddConstraint(map[int]float64{0: 1}, LE, 1, "bad")
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Infeasible {
		t.Fatalf("status = %v want infeasible", r.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x <= -3 is x >= 3; min x -> 3.
	p := NewProblem(1)
	p.Objective = []float64{1}
	p.AddConstraint(map[int]float64{0: -1}, LE, -3, "negrhs")
	r := solveOK(t, p)
	if !approx(r.Obj, 3) {
		t.Fatalf("obj = %g want 3", r.Obj)
	}
}

func TestNegativeRHSGE(t *testing.T) {
	// -x >= -5 is x <= 5; max x -> 5.
	p := NewProblem(1)
	p.Objective = []float64{-1}
	p.AddConstraint(map[int]float64{0: -1}, GE, -5, "negge")
	r := solveOK(t, p)
	if !approx(r.Obj, -5) {
		t.Fatalf("obj = %g want -5", r.Obj)
	}
}

func TestDegenerateLP(t *testing.T) {
	// Classic degenerate vertex: multiple constraints through origin.
	p := NewProblem(2)
	p.Objective = []float64{-1, -1}
	p.AddConstraint(map[int]float64{0: 1, 1: -1}, LE, 0, "d1")
	p.AddConstraint(map[int]float64{0: -1, 1: 1}, LE, 0, "d2")
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, LE, 8, "cap")
	r := solveOK(t, p)
	if !approx(r.Obj, -8) {
		t.Fatalf("obj = %g want -8 (x=%v)", r.Obj, r.X)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// Two identical equalities: redundant row must be dropped cleanly.
	p := NewProblem(2)
	p.Objective = []float64{1, 2}
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 3, "e1")
	p.AddConstraint(map[int]float64{0: 2, 1: 2}, EQ, 6, "e2")
	r := solveOK(t, p)
	if !approx(r.Obj, 3) { // put everything on x
		t.Fatalf("obj = %g want 3 (x=%v)", r.Obj, r.X)
	}
	checkFeasible(t, p, r.X)
}

func TestValidateErrors(t *testing.T) {
	if _, err := Solve(&Problem{NumVars: 0}); err == nil {
		t.Error("zero variables must error")
	}
	p := NewProblem(1)
	p.SetBounds(0, -1, 5)
	if _, err := Solve(p); err == nil {
		t.Error("negative lower bound must error")
	}
	p2 := NewProblem(1)
	p2.SetBounds(0, 5, 1)
	if _, err := Solve(p2); err == nil {
		t.Error("empty bound range must error")
	}
	p3 := NewProblem(1)
	p3.AddConstraint(map[int]float64{4: 1}, LE, 1, "badvar")
	if _, err := Solve(p3); err == nil {
		t.Error("out-of-range variable must error")
	}
}

func TestBigMStyleDisjunction(t *testing.T) {
	// The scheduling formulation's shape: with the binary relaxed to
	// [0,1], the LP bound must be <= the integral optimum.
	// s2 >= e1 - (1-k)*M ; s1 >= e2 - k*M ; durations 3 and 4.
	const M = 1000
	p := NewProblem(3) // s1, s2, k
	p.Objective = []float64{0, 1, 0}
	p.SetBounds(2, 0, 1)
	// s2 + M*k >= e1 = s1+3  ->  s2 - s1 + M*k >= 3
	p.AddConstraint(map[int]float64{1: 1, 0: -1, 2: M}, GE, 3, "o12")
	// s1 - s2 + M*(1-k) >= 4 -> s1 - s2 - M*k >= 4 - M
	p.AddConstraint(map[int]float64{0: 1, 1: -1, 2: -M}, GE, 4-M, "o21")
	r := solveOK(t, p)
	if r.Obj > 3+1e-6 {
		t.Fatalf("relaxation bound %g should be <= 3", r.Obj)
	}
}

// TestRandomLPsAgainstEnumeration cross-checks the simplex against a
// brute-force vertex enumeration on random 2-variable LPs.
func TestRandomLPsAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		nc := 2 + rng.Intn(4)
		p := NewProblem(2)
		p.Objective = []float64{float64(rng.Intn(11) - 5), float64(rng.Intn(11) - 5)}
		type row struct{ a, b, rhs float64 }
		var rows []row
		for i := 0; i < nc; i++ {
			r := row{float64(rng.Intn(7) - 3), float64(rng.Intn(7) - 3), float64(rng.Intn(12))}
			rows = append(rows, r)
			p.AddConstraint(map[int]float64{0: r.a, 1: r.b}, LE, r.rhs, "r")
		}
		// Box to keep everything bounded.
		p.SetBounds(0, 0, 10)
		p.SetBounds(1, 0, 10)

		feasible := func(x, y float64) bool {
			if x < -1e-9 || y < -1e-9 || x > 10+1e-9 || y > 10+1e-9 {
				return false
			}
			for _, r := range rows {
				if r.a*x+r.b*y > r.rhs+1e-9 {
					return false
				}
			}
			return true
		}
		// Enumerate candidate vertices: intersections of all boundary
		// pairs (constraints + box edges).
		type lineq struct{ a, b, c float64 } // ax+by=c
		var lines []lineq
		for _, r := range rows {
			lines = append(lines, lineq{r.a, r.b, r.rhs})
		}
		lines = append(lines,
			lineq{1, 0, 0}, lineq{0, 1, 0}, lineq{1, 0, 10}, lineq{0, 1, 10})
		best := math.Inf(1)
		found := false
		for i := 0; i < len(lines); i++ {
			for j := i + 1; j < len(lines); j++ {
				d := lines[i].a*lines[j].b - lines[j].a*lines[i].b
				if math.Abs(d) < 1e-12 {
					continue
				}
				x := (lines[i].c*lines[j].b - lines[j].c*lines[i].b) / d
				y := (lines[i].a*lines[j].c - lines[j].a*lines[i].c) / d
				if feasible(x, y) {
					found = true
					v := p.Objective[0]*x + p.Objective[1]*y
					if v < best {
						best = v
					}
				}
			}
		}
		r, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !found {
			if r.Status != Infeasible {
				t.Fatalf("trial %d: enumeration says infeasible, solver says %v", trial, r.Status)
			}
			continue
		}
		if r.Status != Optimal {
			t.Fatalf("trial %d: status %v, enumeration found obj %g", trial, r.Status, best)
		}
		if math.Abs(r.Obj-best) > 1e-5 {
			t.Fatalf("trial %d: solver obj %g, enumeration %g (x=%v)", trial, r.Obj, best, r.X)
		}
	}
}

func TestIterationCountReported(t *testing.T) {
	p := NewProblem(2)
	p.Objective = []float64{-1, -1}
	p.AddConstraint(map[int]float64{0: 1, 1: 2}, LE, 4, "a")
	p.AddConstraint(map[int]float64{0: 2, 1: 1}, LE, 4, "b")
	r := solveOK(t, p)
	if r.Iterations <= 0 {
		t.Fatalf("iterations = %d, expected > 0", r.Iterations)
	}
}

func TestRelString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Fatal("Rel strings wrong")
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("Status strings wrong")
	}
}
