package lp

import (
	"context"
	"testing"

	"pathdriverwash/internal/solve"
)

func TestProgressPivotsPublished(t *testing.T) {
	prog := solve.NewProgress()
	ctx := solve.WithProgress(context.Background(), prog)
	res, err := SolveContext(ctx, pivotHeavyProblem(30))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("solve took no pivots; fixture too easy")
	}
	// The final flush reconciles the stride remainder, so the published
	// total matches the result exactly.
	if got := prog.Snapshot().Pivots; got != int64(res.Iterations) {
		t.Fatalf("progress pivots = %d, want %d", got, res.Iterations)
	}
}

func TestProgressAbsentIsFree(t *testing.T) {
	// Without a progress view on the context, the solve must not panic
	// and publishes nowhere (the nil-receiver contract).
	res, err := SolveContext(context.Background(), pivotHeavyProblem(30))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("solve took no pivots")
	}
}

// BenchmarkProgressOverhead quantifies the live-progress tax on the
// simplex pivot loop (DESIGN.md "Progress snapshot cost contract": the
// attached variant stays within 2% of the bare one). The publisher only
// runs at the existing ctxCheckEvery (64-pivot) flush cadence, so the
// cost is one pointer compare per pivot batch plus one atomic add per
// flush.
func BenchmarkProgressOverhead(b *testing.B) {
	b.Run("bare", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			if _, err := SolveContext(ctx, pivotHeavyProblem(30)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("progress", func(b *testing.B) {
		ctx := solve.WithProgress(context.Background(), solve.NewProgress())
		for i := 0; i < b.N; i++ {
			if _, err := SolveContext(ctx, pivotHeavyProblem(30)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
