package lp

import (
	"context"
	"errors"
	"testing"
)

func TestSolveContextPreCanceledErrors(t *testing.T) {
	p := NewProblem(2)
	p.Objective = []float64{-3, -2}
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, LE, 4, "c1")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SolveContext(ctx, p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (lp has no usable partial iterate)", err)
	}
}

func TestSolveContextBackgroundMatchesSolve(t *testing.T) {
	p := NewProblem(2)
	p.Objective = []float64{-3, -2}
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, LE, 4, "c1")
	p.AddConstraint(map[int]float64{0: 1, 1: 3}, LE, 6, "c2")
	plain := solveOK(t, p)
	r, err := SolveContext(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != plain.Status || !approx(r.Obj, plain.Obj) {
		t.Fatalf("context solve diverged: %+v vs %+v", r, plain)
	}
}
