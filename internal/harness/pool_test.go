package harness

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond every millisecond until it holds or the deadline
// passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPoolConcurrencyCap(t *testing.T) {
	const workers, jobs = 3, 20
	p := NewPool(workers, jobs)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Do(context.Background(), func(context.Context) {
				n := cur.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				cur.Add(-1)
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", got, workers)
	}
	if p.Depth() != 0 || p.Running() != 0 {
		t.Fatalf("pool not drained: depth=%d running=%d", p.Depth(), p.Running())
	}
}

func TestPoolQueueFull(t *testing.T) {
	p := NewPool(1, 1)
	release := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func(context.Context) {
		close(started)
		<-release
	})
	<-started

	// Fill the single queue slot.
	queued := make(chan error, 1)
	go func() {
		queued <- p.Do(context.Background(), func(context.Context) {})
	}()
	waitFor(t, "queued request", func() bool { return p.Depth() == 1 })

	// Admission is now full: worker busy, queue at capacity.
	if err := p.Do(context.Background(), func(context.Context) {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}

	close(release)
	if err := <-queued; err != nil {
		t.Fatalf("queued request failed: %v", err)
	}
}

func TestPoolCancelWhileWaiting(t *testing.T) {
	p := NewPool(1, 4)
	release := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func(context.Context) {
		close(started)
		<-release
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- p.Do(ctx, func(context.Context) {
			t.Error("canceled request must not run")
		})
	}()
	waitFor(t, "request to queue", func() bool { return p.Depth() == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	waitFor(t, "queue slot released", func() bool { return p.Depth() == 0 })

	// The pool still works after the canceled wait released its ticket.
	close(release)
	if err := p.Do(context.Background(), func(context.Context) {}); err != nil {
		t.Fatalf("post-cancel Do: %v", err)
	}
}

func TestPoolDefaults(t *testing.T) {
	p := NewPool(0, -5)
	if p.Workers() < 1 {
		t.Fatalf("default workers = %d, want >= 1", p.Workers())
	}
	if p.QueueCap() != 0 {
		t.Fatalf("negative queue depth should clamp to 0, got %d", p.QueueCap())
	}
}

func TestDoTimedQueueWait(t *testing.T) {
	p := NewPool(1, 4)

	// Fast path: a free worker slot reports zero wait.
	wait, err := p.DoTimed(context.Background(), func(context.Context) {})
	if err != nil || wait != 0 {
		t.Fatalf("fast path: wait %v, err %v; want 0, nil", wait, err)
	}

	// Queued path: the wait covers the time spent behind the blocker.
	release := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func(context.Context) {
		close(started)
		<-release
	})
	<-started
	waitc := make(chan time.Duration, 1)
	go func() {
		w, err := p.DoTimed(context.Background(), func(context.Context) {})
		if err != nil {
			t.Error(err)
		}
		waitc <- w
	}()
	waitFor(t, "request to queue", func() bool { return p.Depth() == 1 })
	time.Sleep(20 * time.Millisecond)
	close(release)
	if w := <-waitc; w < 20*time.Millisecond {
		t.Fatalf("queued wait %v, want >= 20ms", w)
	}

	// Rejection path: a full queue reports zero wait with ErrQueueFull.
	p2 := NewPool(1, 0)
	release2 := make(chan struct{})
	started2 := make(chan struct{})
	go p2.Do(context.Background(), func(context.Context) {
		close(started2)
		<-release2
	})
	<-started2
	wait, err = p2.DoTimed(context.Background(), func(context.Context) {})
	if !errors.Is(err, ErrQueueFull) || wait != 0 {
		t.Fatalf("rejection: wait %v, err %v; want 0, ErrQueueFull", wait, err)
	}
	close(release2)
}
