package harness

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"time"
)

// ErrQueueFull reports an admission rejection: every worker is busy and
// the waiting queue is at capacity. Callers translate it into
// backpressure (cmd/pdwd answers 429 with Retry-After).
var ErrQueueFull = errors.New("harness: queue full")

// Pool is a bounded-concurrency, bounded-queue executor: the admission
// side of the worker pool. Run/RunPartial spread a known job list over
// workers; Pool is the dual for open-ended request traffic — callers
// bring their own goroutines (one per request) and Do gates how many of
// them compute at once and how many may wait, rejecting the rest
// immediately so overload surfaces as fast feedback instead of
// unbounded latency. The solve service (internal/service) runs every
// full solve through a Pool.
type Pool struct {
	workers chan struct{} // worker slots; len == running
	queue   chan struct{} // waiting tickets; len == queued
	waiting atomic.Int64
	running atomic.Int64
}

// NewPool returns a pool with the given number of worker slots
// (non-positive: GOMAXPROCS) and waiting-queue capacity (negative: 0 —
// admission fails whenever every worker is busy).
func NewPool(workers, queueDepth int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &Pool{
		workers: make(chan struct{}, workers),
		queue:   make(chan struct{}, queueDepth),
	}
}

// Do runs f on the caller's goroutine once a worker slot is free. If
// all slots are busy it waits in the admission queue; a full queue
// fails immediately with ErrQueueFull, and a ctx canceled while waiting
// fails with ctx.Err(). f itself is never interrupted by Do — it
// receives ctx and honors cancellation through the solver layers'
// checkpoints.
func (p *Pool) Do(ctx context.Context, f func(context.Context)) error {
	_, err := p.DoTimed(ctx, f)
	return err
}

// DoTimed is Do plus queue-wait attribution: it additionally reports
// how long the caller waited for a worker slot. The fast path (a slot
// was free) reports zero without reading the clock; a canceled or
// rejected wait reports the time spent waiting before failing. The
// solve service feeds the wait into its per-request records and the
// pdwd_queue_wait_seconds histogram.
func (p *Pool) DoTimed(ctx context.Context, f func(context.Context)) (queueWait time.Duration, err error) {
	select {
	case p.workers <- struct{}{}:
	default:
		select {
		case p.queue <- struct{}{}:
		default:
			return 0, ErrQueueFull
		}
		t0 := time.Now()
		p.waiting.Add(1)
		leave := func() {
			p.waiting.Add(-1)
			<-p.queue
		}
		select {
		case p.workers <- struct{}{}:
			leave()
			queueWait = time.Since(t0)
		case <-ctx.Done():
			leave()
			return time.Since(t0), ctx.Err()
		}
	}
	p.running.Add(1)
	defer func() {
		p.running.Add(-1)
		<-p.workers
	}()
	f(ctx)
	return queueWait, nil
}

// Depth is the number of requests currently waiting for a worker slot.
// The service's load-shedding watermark compares against it.
func (p *Pool) Depth() int { return int(p.waiting.Load()) }

// Running is the number of requests currently executing.
func (p *Pool) Running() int { return int(p.running.Load()) }

// Workers is the worker-slot capacity.
func (p *Pool) Workers() int { return cap(p.workers) }

// QueueCap is the waiting-queue capacity.
func (p *Pool) QueueCap() int { return cap(p.queue) }
