package harness

import (
	"fmt"
	"testing"

	"pathdriverwash/internal/benchmarks"
)

func namedBenches(n int) []*benchmarks.Benchmark {
	out := make([]*benchmarks.Benchmark, n)
	for i := range out {
		out[i] = &benchmarks.Benchmark{Name: fmt.Sprintf("b%02d", i)}
	}
	return out
}

// TestShardPartition pins the round-robin contract: for every shard
// count, the shards are disjoint, cover the input exactly, and
// interleaving them by original position reconstructs the input order.
func TestShardPartition(t *testing.T) {
	benches := namedBenches(11)
	for _, count := range []int{1, 2, 3, 4, 11, 16} {
		seen := map[string]int{}
		total := 0
		for index := 0; index < count; index++ {
			shard, err := Shard(benches, index, count)
			if err != nil {
				t.Fatalf("count=%d index=%d: %v", count, index, err)
			}
			for j, b := range shard {
				if prev, dup := seen[b.Name]; dup {
					t.Errorf("count=%d: %s in shards %d and %d", count, b.Name, prev, index)
				}
				seen[b.Name] = index
				// Round-robin: shard element j is input element index+j*count.
				if want := benches[index+j*count]; b != want {
					t.Errorf("count=%d index=%d: shard[%d] = %s, want %s", count, index, j, b.Name, want.Name)
				}
			}
			total += len(shard)
		}
		if total != len(benches) {
			t.Errorf("count=%d: shards cover %d of %d benchmarks", count, total, len(benches))
		}
	}
}

func TestShardMoreShardsThanBenches(t *testing.T) {
	benches := namedBenches(2)
	s, err := Shard(benches, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 0 {
		t.Errorf("shard 3/4 of 2 benchmarks has %d entries, want 0", len(s))
	}
}

func TestShardErrors(t *testing.T) {
	benches := namedBenches(3)
	if _, err := Shard(benches, 0, 0); err == nil {
		t.Error("count 0 accepted")
	}
	if _, err := Shard(benches, -1, 2); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := Shard(benches, 2, 2); err == nil {
		t.Error("index == count accepted")
	}
}

func TestParseShard(t *testing.T) {
	cases := []struct {
		in         string
		index, cnt int
		wantErr    bool
	}{
		{"0/1", 0, 1, false},
		{"0/4", 0, 4, false},
		{"3/4", 3, 4, false},
		{"10/16", 10, 16, false},
		{"", 0, 0, true},
		{"3", 0, 0, true},
		{"a/4", 0, 0, true},
		{"0/b", 0, 0, true},
		{"1/2/3", 0, 0, true},
		{"-1/4", 0, 0, true},
		{"4/4", 0, 0, true},
		{"0/0", 0, 0, true},
		{"0/-1", 0, 0, true},
	}
	for _, tc := range cases {
		index, cnt, err := ParseShard(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseShard(%q) accepted, got %d/%d", tc.in, index, cnt)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseShard(%q): %v", tc.in, err)
			continue
		}
		if index != tc.index || cnt != tc.cnt {
			t.Errorf("ParseShard(%q) = %d/%d, want %d/%d", tc.in, index, cnt, tc.index, tc.cnt)
		}
	}
}
