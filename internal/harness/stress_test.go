package harness

import (
	"fmt"
	"testing"
	"time"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/contam"
	"pathdriverwash/internal/dawo"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/pdw"
	"pathdriverwash/internal/synth"
)

// TestStressLargeAssay pushes the full pipeline beyond the paper's
// largest benchmark: a 22-operation, 4-lane protocol on a 20-device
// chip. Asserts correctness invariants plus the headline makespan
// ordering — at this size the solvers run in best-effort territory.
func TestStressLargeAssay(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	a := assay.New("stress")
	// Four lanes of mix -> heat -> mix -> detect, then pairwise merges
	// and a final chain: 4*4 + 4*2 + ... = 28 ops.
	for lane := 1; lane <= 4; lane++ {
		sfx := fmt.Sprintf("%d", lane)
		a.MustAddOp(&assay.Operation{ID: "m1" + sfx, Kind: assay.Mix, Duration: 2,
			Output:   assay.FluidType("a" + sfx),
			Reagents: []assay.FluidType{assay.FluidType("r" + sfx), "buffer"}})
		a.MustAddOp(&assay.Operation{ID: "h1" + sfx, Kind: assay.Heat, Duration: 3,
			Output: assay.FluidType("b" + sfx)})
		a.MustAddOp(&assay.Operation{ID: "m2" + sfx, Kind: assay.Mix, Duration: 2,
			Output:   assay.FluidType("c" + sfx),
			Reagents: []assay.FluidType{assay.FluidType("q" + sfx)}})
		a.MustAddOp(&assay.Operation{ID: "t1" + sfx, Kind: assay.Detect, Duration: 2,
			Output: assay.FluidType("c" + sfx)})
		a.MustAddEdge("m1"+sfx, "h1"+sfx)
		a.MustAddEdge("h1"+sfx, "m2"+sfx)
		a.MustAddEdge("m2"+sfx, "t1"+sfx)
	}
	// Pairwise merges: lanes 1+2 -> g1, lanes 3+4 -> g2; then g1+g2.
	a.MustAddOp(&assay.Operation{ID: "g1", Kind: assay.Mix, Duration: 3, Output: "g1f"})
	a.MustAddOp(&assay.Operation{ID: "g2", Kind: assay.Mix, Duration: 3, Output: "g2f"})
	a.MustAddOp(&assay.Operation{ID: "g3", Kind: assay.Mix, Duration: 3, Output: "g3f"})
	a.MustAddOp(&assay.Operation{ID: "hg", Kind: assay.Heat, Duration: 4, Output: "g3h"})
	a.MustAddOp(&assay.Operation{ID: "tg", Kind: assay.Detect, Duration: 3, Output: "g3h"})
	a.MustAddOp(&assay.Operation{ID: "sg", Kind: assay.Store, Duration: 2, Output: "g3h"})
	a.MustAddEdge("t11", "g1")
	a.MustAddEdge("t12", "g1")
	a.MustAddEdge("t13", "g2")
	a.MustAddEdge("t14", "g2")
	a.MustAddEdge("g1", "g3")
	a.MustAddEdge("g2", "g3")
	a.MustAddEdge("g3", "hg")
	a.MustAddEdge("hg", "tg")
	a.MustAddEdge("tg", "sg")
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Ops()) != 22 {
		t.Fatalf("ops = %d want 22 (4 lanes x 4 + 6 merge/finish)", len(a.Ops()))
	}

	syn, err := synth.Synthesize(a, synth.Config{Devices: []synth.DeviceSpec{
		{Kind: grid.Mixer, Count: 7}, {Kind: grid.Heater, Count: 5},
		{Kind: grid.Detector, Count: 5}, {Kind: grid.Storage, Count: 2},
		{Kind: grid.Filter, Count: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := syn.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	t.Logf("stress chip %dx%d, %d tasks, wash-free makespan %ds",
		syn.Chip.W, syn.Chip.H, len(syn.Schedule.Tasks()), syn.Schedule.Makespan())

	dres, err := dawo.Optimize(syn.Schedule, dawo.Options{TimeLimit: 5 * time.Minute, MaxRounds: 200})
	if err != nil {
		t.Fatal(err)
	}
	pres, err := pdw.Optimize(syn.Schedule, pdw.Options{
		PathTimeLimit: 300 * time.Millisecond, WindowTimeLimit: 5 * time.Second,
		MaxRounds: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]interface {
		Validate() error
	}{"DAWO": dres.Schedule, "PDW": pres.Schedule} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
	}
	if err := contam.Verify(pres.Schedule); err != nil {
		t.Errorf("PDW not clean: %v", err)
	}
	if err := contam.Verify(dres.Schedule); err != nil {
		t.Errorf("DAWO not clean: %v", err)
	}
	pm := pres.Schedule.ComputeMetrics(syn.Schedule)
	dm := dres.Schedule.ComputeMetrics(syn.Schedule)
	t.Logf("stress: DAWO N=%d Ta=%d | PDW N=%d Ta=%d int=%d",
		dm.NWash, dm.TAssay, pm.NWash, pm.TAssay, pm.IntegratedRemovals)
	if pm.TAssay > dm.TAssay {
		t.Errorf("PDW (%d) slower than DAWO (%d) at stress scale", pm.TAssay, dm.TAssay)
	}
}
