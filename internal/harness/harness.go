// Package harness runs the paper's experiments: it synthesizes each
// Table II benchmark, runs the DAWO baseline and PDW on the same
// wash-free input scheduling, measures every reported quantity against
// a fairly compressed wash-free reference, and assembles report rows
// for Table II, Fig. 4, and Fig. 5.
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/dawo"
	"pathdriverwash/internal/pdw"
	"pathdriverwash/internal/report"
	"pathdriverwash/internal/schedule"
)

// Options tunes an experiment run.
type Options struct {
	// PDW forwards solver options; zero value uses PDW defaults.
	PDW pdw.Options
	// DAWO forwards baseline options.
	DAWO dawo.Options
	// BaseCompressLimit bounds the wash-free reference LP (default 5 s).
	BaseCompressLimit time.Duration
}

// Outcome is the full result of one benchmark run.
type Outcome struct {
	Benchmark *benchmarks.Benchmark
	Row       report.Row
	// Base is the wash-free input scheduling; Reference the compressed
	// wash-free schedule used as the T_delay / waiting-time baseline.
	Base, Reference *schedule.Schedule
	DAWO            *dawo.Result
	PDW             *pdw.Result
	// Runtimes of the two optimizers.
	DAWOTime, PDWTime time.Duration
}

// RunBenchmark executes both methods on one benchmark.
func RunBenchmark(b *benchmarks.Benchmark, opts Options) (*Outcome, error) {
	if opts.BaseCompressLimit <= 0 {
		opts.BaseCompressLimit = 5 * time.Second
	}
	syn, err := b.Synthesize()
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", b.Name, err)
	}
	ref, err := pdw.CompressBase(syn.Schedule, opts.BaseCompressLimit)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: compress base: %w", b.Name, err)
	}

	t0 := time.Now()
	dres, err := dawo.Optimize(syn.Schedule, opts.DAWO)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: DAWO: %w", b.Name, err)
	}
	dTime := time.Since(t0)

	t0 = time.Now()
	pres, err := pdw.Optimize(syn.Schedule, opts.PDW)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: PDW: %w", b.Name, err)
	}
	pTime := time.Since(t0)

	dm := dres.Schedule.ComputeMetrics(ref)
	pm := pres.Schedule.ComputeMetrics(ref)
	ops, _, tasks := b.Assay.Stats()
	devices := 0
	for _, d := range b.Config.Devices {
		devices += d.Count
	}
	row := report.Row{
		Benchmark: b.Name,
		Ops:       ops, Devices: devices, Tasks: tasks,
		DAWONWash: dm.NWash, PDWNWash: pm.NWash,
		DAWOLWash: dm.LWashMM, PDWLWash: pm.LWashMM,
		DAWOTDelay: clampNonNegative(dm.TDelay), PDWTDelay: clampNonNegative(pm.TDelay),
		DAWOTAssay: dm.TAssay, PDWTAssay: pm.TAssay,
		DAWOAvgWait: dm.AvgWaitSeconds, PDWAvgWait: pm.AvgWaitSeconds,
		DAWOWashTime: dm.TotalWashSeconds, PDWWashTime: pm.TotalWashSeconds,
		DAWOBuffer: dm.BufferMM, PDWBuffer: pm.BufferMM,
	}
	return &Outcome{
		Benchmark: b, Row: row,
		Base: syn.Schedule, Reference: ref,
		DAWO: dres, PDW: pres,
		DAWOTime: dTime, PDWTime: pTime,
	}, nil
}

func clampNonNegative(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// RunAll executes all Table II benchmarks and returns their outcomes in
// paper order.
func RunAll(opts Options) ([]*Outcome, error) {
	var out []*Outcome
	for _, b := range benchmarks.All() {
		o, err := RunBenchmark(b, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// RunAllParallel executes the benchmarks concurrently with at most
// workers goroutines (0 selects GOMAXPROCS). Every benchmark run is
// self-contained and deterministic, so the outcomes match RunAll; only
// the per-run wall-clock measurements change under CPU contention.
func RunAllParallel(opts Options, workers int) ([]*Outcome, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	all := benchmarks.All()
	outs := make([]*Outcome, len(all))
	errs := make([]error, len(all))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, b := range all {
		wg.Add(1)
		go func(i int, b *benchmarks.Benchmark) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outs[i], errs[i] = RunBenchmark(b, opts)
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// Rows extracts the report rows from outcomes.
func Rows(outs []*Outcome) []report.Row {
	rows := make([]report.Row, len(outs))
	for i, o := range outs {
		rows[i] = o.Row
	}
	return rows
}

// PaperComparisons builds the measured-vs-paper reduction table for
// EXPERIMENTS.md.
func PaperComparisons(outs []*Outcome) []report.PaperComparison {
	var cs []report.PaperComparison
	for _, o := range outs {
		p := o.Benchmark.Paper
		r := o.Row
		cs = append(cs,
			report.PaperComparison{Benchmark: o.Benchmark.Name, Metric: "N_wash",
				PaperIm: report.Improvement(float64(p.DAWO.NWash), float64(p.PDW.NWash)),
				OursIm:  report.Improvement(float64(r.DAWONWash), float64(r.PDWNWash))},
			report.PaperComparison{Benchmark: o.Benchmark.Name, Metric: "L_wash",
				PaperIm: report.Improvement(p.DAWO.LWash, p.PDW.LWash),
				OursIm:  report.Improvement(r.DAWOLWash, r.PDWLWash)},
			report.PaperComparison{Benchmark: o.Benchmark.Name, Metric: "T_delay",
				PaperIm: report.Improvement(float64(p.DAWO.TDelay), float64(p.PDW.TDelay)),
				OursIm:  report.Improvement(float64(r.DAWOTDelay), float64(r.PDWTDelay))},
			report.PaperComparison{Benchmark: o.Benchmark.Name, Metric: "T_assay",
				PaperIm: report.Improvement(float64(p.DAWO.TAssay), float64(p.PDW.TAssay)),
				OursIm:  report.Improvement(float64(r.DAWOTAssay), float64(r.PDWTAssay))},
		)
	}
	return cs
}
