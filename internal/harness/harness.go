// Package harness runs the paper's experiments: it synthesizes each
// Table II benchmark, runs the DAWO baseline and PDW on the same
// wash-free input scheduling, measures every reported quantity against
// a fairly compressed wash-free reference, and assembles report rows
// for Table II, Fig. 4, and Fig. 5.
package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/dawo"
	"pathdriverwash/internal/pdw"
	"pathdriverwash/internal/report"
	"pathdriverwash/internal/schedule"
)

// Options tunes an experiment run.
type Options struct {
	// PDW forwards solver options; zero value uses PDW defaults.
	PDW pdw.Options
	// DAWO forwards baseline options.
	DAWO dawo.Options
	// BaseCompressLimit bounds the wash-free reference LP (default 5 s).
	BaseCompressLimit time.Duration
}

// Outcome is the full result of one benchmark run.
type Outcome struct {
	Benchmark *benchmarks.Benchmark
	Row       report.Row
	// Base is the wash-free input scheduling; Reference the compressed
	// wash-free schedule used as the T_delay / waiting-time baseline.
	Base, Reference *schedule.Schedule
	DAWO            *dawo.Result
	PDW             *pdw.Result
	// Runtimes of the two optimizers.
	DAWOTime, PDWTime time.Duration
}

// RunBenchmark executes both methods on one benchmark.
func RunBenchmark(b *benchmarks.Benchmark, opts Options) (*Outcome, error) {
	return RunBenchmarkContext(context.Background(), b, opts)
}

// RunBenchmarkContext is RunBenchmark under a context. Cancellation
// propagates into every solver phase; DAWO and PDW degrade to their
// heuristic incumbents (see their OptimizeContext docs), so a canceled
// run still yields a valid, verified Outcome unless synthesis itself
// was aborted at entry.
func RunBenchmarkContext(ctx context.Context, b *benchmarks.Benchmark, opts Options) (*Outcome, error) {
	if opts.BaseCompressLimit <= 0 {
		opts.BaseCompressLimit = 5 * time.Second
	}
	syn, err := b.SynthesizeContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", b.Name, err)
	}
	ref, err := pdw.CompressBaseContext(ctx, syn.Schedule, opts.BaseCompressLimit)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: compress base: %w", b.Name, err)
	}

	t0 := time.Now()
	dres, err := dawo.OptimizeContext(ctx, syn.Schedule, opts.DAWO)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: DAWO: %w", b.Name, err)
	}
	dTime := time.Since(t0)

	t0 = time.Now()
	pres, err := pdw.OptimizeContext(ctx, syn.Schedule, opts.PDW)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: PDW: %w", b.Name, err)
	}
	pTime := time.Since(t0)

	dm := dres.Schedule.ComputeMetrics(ref)
	pm := pres.Schedule.ComputeMetrics(ref)
	ops, _, tasks := b.Assay.Stats()
	devices := 0
	for _, d := range b.Config.Devices {
		devices += d.Count
	}
	row := report.Row{
		Benchmark: b.Name,
		Ops:       ops, Devices: devices, Tasks: tasks,
		DAWONWash: dm.NWash, PDWNWash: pm.NWash,
		DAWOLWash: dm.LWashMM, PDWLWash: pm.LWashMM,
		DAWOTDelay: clampNonNegative(dm.TDelay), PDWTDelay: clampNonNegative(pm.TDelay),
		DAWOTAssay: dm.TAssay, PDWTAssay: pm.TAssay,
		DAWOAvgWait: dm.AvgWaitSeconds, PDWAvgWait: pm.AvgWaitSeconds,
		DAWOWashTime: dm.TotalWashSeconds, PDWWashTime: pm.TotalWashSeconds,
		DAWOBuffer: dm.BufferMM, PDWBuffer: pm.BufferMM,
	}
	return &Outcome{
		Benchmark: b, Row: row,
		Base: syn.Schedule, Reference: ref,
		DAWO: dres, PDW: pres,
		DAWOTime: dTime, PDWTime: pTime,
	}, nil
}

func clampNonNegative(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// RunAll executes all Table II benchmarks sequentially and returns
// their outcomes in paper order.
func RunAll(opts Options) ([]*Outcome, error) {
	return Run(context.Background(), benchmarks.All(), opts, 1)
}

// RunAllParallel executes the benchmarks on a worker pool with at most
// workers goroutines (0 selects GOMAXPROCS). Every benchmark run is
// self-contained and deterministic, so the outcomes match RunAll; only
// the per-run wall-clock measurements change under CPU contention.
func RunAllParallel(opts Options, workers int) ([]*Outcome, error) {
	return Run(context.Background(), benchmarks.All(), opts, workers)
}

// Run executes the given benchmarks on a bounded worker pool and
// returns their outcomes in input order. workers caps pool size; 0 (or
// any non-positive value) selects GOMAXPROCS, and the pool never grows
// beyond the number of benchmarks. Jobs are drained from a shared
// channel, so a slow benchmark never blocks the rest of the queue
// behind it.
//
// Cancelling ctx stops feeding new jobs and propagates into every
// in-flight solve; those runs degrade to their heuristic incumbents and
// still produce valid outcomes, while benchmarks never started are
// reported as a ctx.Err()-wrapped error. The first error in paper order
// wins.
func Run(ctx context.Context, benches []*benchmarks.Benchmark, opts Options, workers int) ([]*Outcome, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(benches) {
		workers = len(benches)
	}
	outs := make([]*Outcome, len(benches))
	errs := make([]error, len(benches))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				outs[i], errs[i] = RunBenchmarkContext(ctx, benches[i], opts)
			}
		}()
	}
feed:
	for i := range benches {
		select {
		case jobs <- i:
		case <-ctx.Done():
			// Jobs i..end were never handed to a worker, so these slots
			// are untouched and safe to write from the feeder.
			for j := i; j < len(benches); j++ {
				errs[j] = fmt.Errorf("harness: %s: not started: %w", benches[j].Name, ctx.Err())
			}
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// Rows extracts the report rows from outcomes.
func Rows(outs []*Outcome) []report.Row {
	rows := make([]report.Row, len(outs))
	for i, o := range outs {
		rows[i] = o.Row
	}
	return rows
}

// PaperComparisons builds the measured-vs-paper reduction table for
// EXPERIMENTS.md.
func PaperComparisons(outs []*Outcome) []report.PaperComparison {
	var cs []report.PaperComparison
	for _, o := range outs {
		p := o.Benchmark.Paper
		r := o.Row
		cs = append(cs,
			report.PaperComparison{Benchmark: o.Benchmark.Name, Metric: "N_wash",
				PaperIm: report.Improvement(float64(p.DAWO.NWash), float64(p.PDW.NWash)),
				OursIm:  report.Improvement(float64(r.DAWONWash), float64(r.PDWNWash))},
			report.PaperComparison{Benchmark: o.Benchmark.Name, Metric: "L_wash",
				PaperIm: report.Improvement(p.DAWO.LWash, p.PDW.LWash),
				OursIm:  report.Improvement(r.DAWOLWash, r.PDWLWash)},
			report.PaperComparison{Benchmark: o.Benchmark.Name, Metric: "T_delay",
				PaperIm: report.Improvement(float64(p.DAWO.TDelay), float64(p.PDW.TDelay)),
				OursIm:  report.Improvement(float64(r.DAWOTDelay), float64(r.PDWTDelay))},
			report.PaperComparison{Benchmark: o.Benchmark.Name, Metric: "T_assay",
				PaperIm: report.Improvement(float64(p.DAWO.TAssay), float64(p.PDW.TAssay)),
				OursIm:  report.Improvement(float64(r.DAWOTAssay), float64(r.PDWTAssay))},
		)
	}
	return cs
}
