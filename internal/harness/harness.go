// Package harness runs the paper's experiments: it synthesizes each
// Table II benchmark, runs the DAWO baseline and PDW on the same
// wash-free input scheduling, measures every reported quantity against
// a fairly compressed wash-free reference, and assembles report rows
// for Table II, Fig. 4, and Fig. 5.
package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/dawo"
	"pathdriverwash/internal/obs"
	"pathdriverwash/internal/pdw"
	"pathdriverwash/internal/report"
	"pathdriverwash/internal/schedule"
	"pathdriverwash/internal/solve"
)

// Worker-pool telemetry handles. The busy gauge tracks how many pool
// workers are inside a benchmark run at this instant; sampled against
// the pool size it gives utilization.
var (
	benchRunsTotal   = obs.Default().Counter("pdw_harness_benchmarks_total")
	benchErrorsTotal = obs.Default().Counter("pdw_harness_benchmark_errors_total")
	// benchFailuresTotal counts benchmarks a sweep could not complete,
	// including ones never started because the sweep's context expired —
	// RunPartial increments it, so failed sweeps are visible in /metrics
	// and in the BenchFile metrics snapshot (benchErrorsTotal only sees
	// runs that entered RunBenchmarkContext).
	benchFailuresTotal = obs.Default().Counter("pdw_harness_benchmark_failures_total")
	workersBusy        = obs.Default().Gauge("pdw_harness_workers_busy")
	workersTotal       = obs.Default().Gauge("pdw_harness_workers_total")
)

// Options tunes an experiment run.
type Options struct {
	// PDW forwards solver options; zero value uses PDW defaults.
	PDW pdw.Options
	// DAWO forwards baseline options.
	DAWO dawo.Options
	// BaseCompressLimit bounds the wash-free reference LP (default 5 s).
	BaseCompressLimit time.Duration
}

// Outcome is the full result of one benchmark run.
type Outcome struct {
	Benchmark *benchmarks.Benchmark
	Row       report.Row
	// Base is the wash-free input scheduling; Reference the compressed
	// wash-free schedule used as the T_delay / waiting-time baseline.
	Base, Reference *schedule.Schedule
	DAWO            *dawo.Result
	PDW             *pdw.Result
	// Runtimes of the two optimizers.
	DAWOTime, PDWTime time.Duration
	// SynthTime and CompressTime are the shared setup stages that
	// precede both optimizers (benchmark synthesis and the wash-free
	// reference compression); together with the optimizers' solve.Stats
	// phases they give the bench file its per-phase breakdown.
	SynthTime, CompressTime time.Duration
}

// RunBenchmark executes both methods on one benchmark.
func RunBenchmark(b *benchmarks.Benchmark, opts Options) (*Outcome, error) {
	return RunBenchmarkContext(context.Background(), b, opts)
}

// RunBenchmarkContext is RunBenchmark under a context. Cancellation
// propagates into every solver phase; DAWO and PDW degrade to their
// heuristic incumbents (see their OptimizeContext docs), so a canceled
// run still yields a valid, verified Outcome unless synthesis itself
// was aborted at entry.
func RunBenchmarkContext(ctx context.Context, b *benchmarks.Benchmark, opts Options) (_ *Outcome, err error) {
	if opts.BaseCompressLimit <= 0 {
		opts.BaseCompressLimit = 5 * time.Second
	}
	// The benchmark span is the root of the run's trace tree: synthesis,
	// base compression, DAWO, and PDW all nest under it, so a Chrome
	// trace of a harness run shows one track per benchmark whose root
	// span covers the run wall-to-wall.
	ctx, span := obs.Start(ctx, "benchmark", obs.A("name", b.Name))
	// The run also appears on /debug/solves for its duration, so a sweep
	// driven from pdwbench -listen shows one live row per benchmark.
	prog := solve.NewProgress()
	ctx = solve.WithProgress(ctx, prog)
	unregister := obs.RegisterSolve("", "benchmark", b.Name, prog.Snapshot)
	defer unregister()
	defer func() {
		if obs.Enabled() {
			benchRunsTotal.Inc()
			if err != nil {
				benchErrorsTotal.Inc()
			}
		}
		if span != nil {
			span.SetAttr("ok", err == nil)
			span.End()
		}
	}()
	t0 := time.Now()
	syn, err := b.SynthesizeContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", b.Name, err)
	}
	synthTime := time.Since(t0)
	t0 = time.Now()
	ref, err := pdw.CompressBaseContext(ctx, syn.Schedule, opts.BaseCompressLimit)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: compress base: %w", b.Name, err)
	}
	compressTime := time.Since(t0)
	obs.RecordSpan(ctx, "compress-base", t0, compressTime)

	t0 = time.Now()
	dres, err := dawo.OptimizeContext(ctx, syn.Schedule, opts.DAWO)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: DAWO: %w", b.Name, err)
	}
	dTime := time.Since(t0)

	t0 = time.Now()
	pres, err := pdw.OptimizeContext(ctx, syn.Schedule, opts.PDW)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: PDW: %w", b.Name, err)
	}
	pTime := time.Since(t0)

	dm := dres.Schedule.ComputeMetrics(ref)
	pm := pres.Schedule.ComputeMetrics(ref)
	ops, _, tasks := b.Assay.Stats()
	devices := 0
	for _, d := range b.Config.Devices {
		devices += d.Count
	}
	row := report.Row{
		Benchmark: b.Name,
		Ops:       ops, Devices: devices, Tasks: tasks,
		DAWONWash: dm.NWash, PDWNWash: pm.NWash,
		DAWOLWash: dm.LWashMM, PDWLWash: pm.LWashMM,
		DAWOTDelay: clampNonNegative(dm.TDelay), PDWTDelay: clampNonNegative(pm.TDelay),
		DAWOTAssay: dm.TAssay, PDWTAssay: pm.TAssay,
		DAWOAvgWait: dm.AvgWaitSeconds, PDWAvgWait: pm.AvgWaitSeconds,
		DAWOWashTime: dm.TotalWashSeconds, PDWWashTime: pm.TotalWashSeconds,
		DAWOBuffer: dm.BufferMM, PDWBuffer: pm.BufferMM,
	}
	if span != nil {
		span.SetAttr("pdw_n_wash", pm.NWash)
		span.SetAttr("dawo_n_wash", dm.NWash)
		span.SetAttr("pdw_wall_ms", pTime.Milliseconds())
		span.SetAttr("dawo_wall_ms", dTime.Milliseconds())
	}
	return &Outcome{
		Benchmark: b, Row: row,
		Base: syn.Schedule, Reference: ref,
		DAWO: dres, PDW: pres,
		DAWOTime: dTime, PDWTime: pTime,
		SynthTime: synthTime, CompressTime: compressTime,
	}, nil
}

func clampNonNegative(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// RunAll executes all Table II benchmarks sequentially and returns
// their outcomes in paper order.
func RunAll(opts Options) ([]*Outcome, error) {
	return Run(context.Background(), benchmarks.All(), opts, 1)
}

// RunAllParallel executes the benchmarks on a worker pool with at most
// workers goroutines (0 selects GOMAXPROCS). Every benchmark run is
// self-contained and deterministic, so the outcomes match RunAll; only
// the per-run wall-clock measurements change under CPU contention.
func RunAllParallel(opts Options, workers int) ([]*Outcome, error) {
	return Run(context.Background(), benchmarks.All(), opts, workers)
}

// Run executes the given benchmarks on a bounded worker pool and
// returns their outcomes in input order. workers caps pool size; 0 (or
// any non-positive value) selects GOMAXPROCS, and the pool never grows
// beyond the number of benchmarks. Jobs are drained from a shared
// channel, so a slow benchmark never blocks the rest of the queue
// behind it.
//
// Cancelling ctx stops feeding new jobs and propagates into every
// in-flight solve; those runs degrade to their heuristic incumbents and
// still produce valid outcomes, while benchmarks never started are
// reported as a ctx.Err()-wrapped error. The first error in paper order
// wins.
func Run(ctx context.Context, benches []*benchmarks.Benchmark, opts Options, workers int) ([]*Outcome, error) {
	outs, errs := RunPartial(ctx, benches, opts, workers)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// RunPartial is Run without the first-error-wins contract: every
// benchmark is attempted (subject to ctx), and the per-benchmark errors
// come back alongside the outcomes, both in input order. errs[i] is nil
// exactly when outs[i] is a valid outcome, so callers can report which
// benchmarks failed instead of discarding the whole run — cmd/pdwbench
// uses this to print every Table II row it can and list the rest on
// stderr.
func RunPartial(ctx context.Context, benches []*benchmarks.Benchmark, opts Options, workers int) ([]*Outcome, []error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(benches) {
		workers = len(benches)
	}
	if obs.Enabled() {
		workersTotal.Set(int64(workers))
	}
	outs := make([]*Outcome, len(benches))
	errs := make([]error, len(benches))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if obs.Enabled() {
					workersBusy.Add(1)
				}
				outs[i], errs[i] = RunBenchmarkContext(ctx, benches[i], opts)
				if obs.Enabled() {
					workersBusy.Add(-1)
				}
			}
		}()
	}
feed:
	for i := range benches {
		select {
		case jobs <- i:
		case <-ctx.Done():
			// Jobs i..end were never handed to a worker, so these slots
			// are untouched and safe to write from the feeder.
			for j := i; j < len(benches); j++ {
				errs[j] = fmt.Errorf("harness: %s: not started: %w", benches[j].Name, ctx.Err())
			}
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if obs.Enabled() {
		failed := 0
		for _, err := range errs {
			if err != nil {
				failed++
			}
		}
		if failed > 0 {
			benchFailuresTotal.Add(int64(failed))
		}
	}
	return outs, errs
}

// BenchSamples holds the per-iteration wall times (seconds) of one
// benchmark across a repeated sweep, one series per method. Iterations
// in which the benchmark failed contribute no sample, so the series
// may be shorter than the iteration count.
type BenchSamples struct {
	DAWOWall, PDWWall []float64
}

// RunSampledPartial is RunPartial repeated count times (count < 1 is
// treated as 1), the measurement discipline behind `pdwbench -count`:
// solver wall times are noisy, and a regression verdict needs a sample
// set, not a single shot. The returned outcomes and errors are the
// first iteration's (its outcome also populates the Table II rows);
// samples[i] collects every iteration's wall times for benches[i],
// including the first. A benchmark that failed in iteration one keeps
// its error even if a later iteration succeeds — repeating a sweep
// must never hide a failure.
func RunSampledPartial(ctx context.Context, benches []*benchmarks.Benchmark, opts Options,
	workers, count int) ([]*Outcome, []error, []BenchSamples) {

	if count < 1 {
		count = 1
	}
	samples := make([]BenchSamples, len(benches))
	outs, errs := RunPartial(ctx, benches, opts, workers)
	record := func(iter []*Outcome) {
		for i, o := range iter {
			if o == nil {
				continue
			}
			samples[i].DAWOWall = append(samples[i].DAWOWall, o.DAWOTime.Seconds())
			samples[i].PDWWall = append(samples[i].PDWWall, o.PDWTime.Seconds())
		}
	}
	record(outs)
	for iter := 1; iter < count; iter++ {
		if ctx.Err() != nil {
			break
		}
		more, _ := RunPartial(ctx, benches, opts, workers)
		record(more)
	}
	return outs, errs, samples
}

// BuildBenchFile assembles the machine-readable sweep result that
// cmd/pdwbench -json writes. outs/errs are RunPartial's parallel
// slices for benches; nil outcomes become Failures entries. samples
// (from RunSampledPartial; nil for single-shot sweeps) become the
// per-method wall_samples series, and each outcome's solve.Stats
// phases plus the shared setup timings become the per-phase wall-time
// breakdown. The process-wide observability counter snapshot is
// embedded so a bench file carries its own solver-effort telemetry.
func BuildBenchFile(benches []*benchmarks.Benchmark, outs []*Outcome, errs []error,
	samples []BenchSamples, quick bool, workers int, wall time.Duration) *report.BenchFile {

	f := &report.BenchFile{
		SchemaVersion:    report.BenchSchemaVersion,
		GeneratedAt:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:        runtime.Version(),
		Quick:            quick,
		Workers:          workers,
		TotalWallSeconds: wall.Seconds(),
		Metrics:          obs.Default().Snapshot(),
	}
	for i, o := range outs {
		if o == nil {
			msg := "not run"
			if i < len(errs) && errs[i] != nil {
				msg = errs[i].Error()
			}
			f.Failures = append(f.Failures, report.BenchFailure{Name: benches[i].Name, Error: msg})
			continue
		}
		r := o.Row
		var dawoSamples, pdwSamples []float64
		if i < len(samples) {
			dawoSamples, pdwSamples = samples[i].DAWOWall, samples[i].PDWWall
		}
		f.Benchmarks = append(f.Benchmarks, report.BenchResult{
			Name: r.Benchmark, Ops: r.Ops, Devices: r.Devices, Tasks: r.Tasks,
			SetupSeconds: map[string]float64{
				"synthesis":     o.SynthTime.Seconds(),
				"compress-base": o.CompressTime.Seconds(),
			},
			DAWO: report.MethodResult{
				NWash: r.DAWONWash, LWashMM: r.DAWOLWash,
				TDelaySeconds: r.DAWOTDelay, TAssaySeconds: r.DAWOTAssay,
				AvgWaitSeconds: r.DAWOAvgWait, WashTimeSeconds: r.DAWOWashTime,
				BufferMM: r.DAWOBuffer, WallSeconds: o.DAWOTime.Seconds(),
				BBNodes: o.DAWO.Stats.Nodes(), BBPruned: o.DAWO.Stats.Pruned(),
				SimplexPivots: o.DAWO.Stats.SimplexIters(),
				Canceled:      o.DAWO.Stats.Canceled,
				WallSamples:   dawoSamples,
				PhaseSeconds:  o.DAWO.Stats.PhaseSeconds(),
			},
			PDW: report.MethodResult{
				NWash: r.PDWNWash, LWashMM: r.PDWLWash,
				TDelaySeconds: r.PDWTDelay, TAssaySeconds: r.PDWTAssay,
				AvgWaitSeconds: r.PDWAvgWait, WashTimeSeconds: r.PDWWashTime,
				BufferMM: r.PDWBuffer, WallSeconds: o.PDWTime.Seconds(),
				BBNodes: o.PDW.Stats.Nodes(), BBPruned: o.PDW.Stats.Pruned(),
				SimplexPivots:  o.PDW.Stats.SimplexIters(),
				WindowsOptimal: o.PDW.WindowsOptimal,
				Canceled:       o.PDW.Stats.Canceled,
				WallSamples:    pdwSamples,
				PhaseSeconds:   o.PDW.Stats.PhaseSeconds(),
			},
		})
	}
	return f
}

// Rows extracts the report rows from outcomes, skipping nil entries
// (failed benchmarks from RunPartial).
func Rows(outs []*Outcome) []report.Row {
	rows := make([]report.Row, 0, len(outs))
	for _, o := range outs {
		if o != nil {
			rows = append(rows, o.Row)
		}
	}
	return rows
}

// PaperComparisons builds the measured-vs-paper reduction table for
// EXPERIMENTS.md.
func PaperComparisons(outs []*Outcome) []report.PaperComparison {
	var cs []report.PaperComparison
	for _, o := range outs {
		if o == nil {
			continue
		}
		p := o.Benchmark.Paper
		r := o.Row
		cs = append(cs,
			report.PaperComparison{Benchmark: o.Benchmark.Name, Metric: "N_wash",
				PaperIm: report.Improvement(float64(p.DAWO.NWash), float64(p.PDW.NWash)),
				OursIm:  report.Improvement(float64(r.DAWONWash), float64(r.PDWNWash))},
			report.PaperComparison{Benchmark: o.Benchmark.Name, Metric: "L_wash",
				PaperIm: report.Improvement(p.DAWO.LWash, p.PDW.LWash),
				OursIm:  report.Improvement(r.DAWOLWash, r.PDWLWash)},
			report.PaperComparison{Benchmark: o.Benchmark.Name, Metric: "T_delay",
				PaperIm: report.Improvement(float64(p.DAWO.TDelay), float64(p.PDW.TDelay)),
				OursIm:  report.Improvement(float64(r.DAWOTDelay), float64(r.PDWTDelay))},
			report.PaperComparison{Benchmark: o.Benchmark.Name, Metric: "T_assay",
				PaperIm: report.Improvement(float64(p.DAWO.TAssay), float64(p.PDW.TAssay)),
				OursIm:  report.Improvement(float64(r.DAWOTAssay), float64(r.PDWTAssay))},
		)
	}
	return cs
}
