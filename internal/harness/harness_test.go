package harness

import (
	"context"
	"errors"
	"testing"
	"time"

	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/contam"
	"pathdriverwash/internal/pdw"
)

func quickOpts() Options {
	return Options{
		PDW: pdw.Options{
			PathTimeLimit:   500 * time.Millisecond,
			WindowTimeLimit: 2 * time.Second,
		},
		BaseCompressLimit: time.Second,
	}
}

func TestRunBenchmarkPCR(t *testing.T) {
	b, err := benchmarks.ByName("PCR")
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunBenchmark(b, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.Row
	if r.Benchmark != "PCR" || r.Ops != 7 || r.Devices != 5 || r.Tasks != 15 {
		t.Errorf("row shape = %+v", r)
	}
	if r.PDWNWash > r.DAWONWash {
		t.Errorf("PDW washes more than DAWO: %d vs %d", r.PDWNWash, r.DAWONWash)
	}
	if r.PDWTAssay > r.DAWOTAssay {
		t.Errorf("PDW slower than DAWO: %d vs %d", r.PDWTAssay, r.DAWOTAssay)
	}
	if r.PDWTDelay < 0 || r.DAWOTDelay < 0 {
		t.Errorf("negative delays: %+v", r)
	}
	// Both outputs must be contamination-free and valid.
	for _, s := range []interface{ Validate() error }{out.DAWO.Schedule, out.PDW.Schedule} {
		if err := s.Validate(); err != nil {
			t.Errorf("invalid schedule: %v", err)
		}
	}
	if err := contam.Verify(out.PDW.Schedule); err != nil {
		t.Errorf("PDW not clean: %v", err)
	}
	if err := contam.Verify(out.DAWO.Schedule); err != nil {
		t.Errorf("DAWO not clean: %v", err)
	}
	if out.DAWOTime <= 0 || out.PDWTime <= 0 {
		t.Error("runtimes not recorded")
	}
}

func TestRowsAndComparisons(t *testing.T) {
	b, err := benchmarks.ByName("Kinase act-1")
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunBenchmark(b, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	outs := []*Outcome{out}
	rows := Rows(outs)
	if len(rows) != 1 || rows[0].Benchmark != "Kinase act-1" {
		t.Fatalf("rows = %+v", rows)
	}
	cs := PaperComparisons(outs)
	if len(cs) != 4 {
		t.Fatalf("comparisons = %d want 4", len(cs))
	}
	metrics := map[string]bool{}
	for _, c := range cs {
		metrics[c.Metric] = true
	}
	for _, m := range []string{"N_wash", "L_wash", "T_delay", "T_assay"} {
		if !metrics[m] {
			t.Errorf("missing metric %s", m)
		}
	}
}

func TestClampNonNegative(t *testing.T) {
	if clampNonNegative(-3) != 0 || clampNonNegative(5) != 5 {
		t.Fatal("clamp wrong")
	}
}

// deterministicOpts makes every solver phase wall-clock-independent:
// heuristic paths and windows never consult a deadline, and DAWO's BFS
// never did, so two sweeps — at any worker count — must agree bitwise.
// (The base-compression LP is a deadline-checked solve, but its root
// relaxation finishes in milliseconds; the generous limit keeps even a
// heavily contended run off the deadline path.)
func deterministicOpts() Options {
	return Options{
		PDW:               pdw.Options{HeuristicPaths: true, HeuristicWindows: true},
		BaseCompressLimit: 30 * time.Second,
	}
}

// TestRunAllParallelMatchesSequential proves the worker-pool sweep is
// observationally identical to the sequential one: every report row —
// all Table II / Fig. 4 / Fig. 5 metrics — must be bitwise equal. It
// runs in -short mode too, so the race-detector gate covers the pool,
// but there it sweeps only the five sub-second benchmarks (dropping
// Kinase act-2 in particular, whose conservative-policy DAWO run alone
// costs ~30s before the race detector's slowdown).
func TestRunAllParallelMatchesSequential(t *testing.T) {
	benches := benchmarks.All()
	if testing.Short() {
		var fast []*benchmarks.Benchmark
		for _, name := range []string{"PCR", "IVD", "Kinase act-1", "Synthetic1", "Synthetic2"} {
			b, err := benchmarks.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			fast = append(fast, b)
		}
		benches = fast
	}
	ctx := context.Background()
	seq, err := Run(ctx, benches, deterministicOpts(), 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(ctx, benches, deterministicOpts(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		s, p := seq[i], par[i]
		if s.Row != p.Row {
			t.Errorf("row %d differs:\nseq: %+v\npar: %+v", i, s.Row, p.Row)
		}
		if s.PDW.Schedule.Makespan() != p.PDW.Schedule.Makespan() ||
			s.DAWO.Schedule.Makespan() != p.DAWO.Schedule.Makespan() {
			t.Errorf("%s: makespans differ between sequential and parallel", s.Row.Benchmark)
		}
	}
}

func TestRunPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, benchmarks.All(), deterministicOpts(), 2)
	if err == nil {
		t.Fatal("pre-canceled sweep must report an error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(err, context.Canceled)", err)
	}
}

func TestRunSingleWorkerSubset(t *testing.T) {
	b, err := benchmarks.ByName("PCR")
	if err != nil {
		t.Fatal(err)
	}
	outs, err := Run(context.Background(), []*benchmarks.Benchmark{b}, deterministicOpts(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Row.Benchmark != "PCR" {
		t.Fatalf("outs = %+v", outs)
	}
	if outs[0].PDW.Stats == nil || len(outs[0].PDW.Stats.Phases) == 0 {
		t.Error("outcome missing PDW solve stats")
	}
}
