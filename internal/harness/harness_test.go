package harness

import (
	"testing"
	"time"

	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/contam"
	"pathdriverwash/internal/pdw"
)

func quickOpts() Options {
	return Options{
		PDW: pdw.Options{
			PathTimeLimit:   500 * time.Millisecond,
			WindowTimeLimit: 2 * time.Second,
		},
		BaseCompressLimit: time.Second,
	}
}

func TestRunBenchmarkPCR(t *testing.T) {
	b, err := benchmarks.ByName("PCR")
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunBenchmark(b, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := out.Row
	if r.Benchmark != "PCR" || r.Ops != 7 || r.Devices != 5 || r.Tasks != 15 {
		t.Errorf("row shape = %+v", r)
	}
	if r.PDWNWash > r.DAWONWash {
		t.Errorf("PDW washes more than DAWO: %d vs %d", r.PDWNWash, r.DAWONWash)
	}
	if r.PDWTAssay > r.DAWOTAssay {
		t.Errorf("PDW slower than DAWO: %d vs %d", r.PDWTAssay, r.DAWOTAssay)
	}
	if r.PDWTDelay < 0 || r.DAWOTDelay < 0 {
		t.Errorf("negative delays: %+v", r)
	}
	// Both outputs must be contamination-free and valid.
	for _, s := range []interface{ Validate() error }{out.DAWO.Schedule, out.PDW.Schedule} {
		if err := s.Validate(); err != nil {
			t.Errorf("invalid schedule: %v", err)
		}
	}
	if err := contam.Verify(out.PDW.Schedule); err != nil {
		t.Errorf("PDW not clean: %v", err)
	}
	if err := contam.Verify(out.DAWO.Schedule); err != nil {
		t.Errorf("DAWO not clean: %v", err)
	}
	if out.DAWOTime <= 0 || out.PDWTime <= 0 {
		t.Error("runtimes not recorded")
	}
}

func TestRowsAndComparisons(t *testing.T) {
	b, err := benchmarks.ByName("Kinase act-1")
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunBenchmark(b, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	outs := []*Outcome{out}
	rows := Rows(outs)
	if len(rows) != 1 || rows[0].Benchmark != "Kinase act-1" {
		t.Fatalf("rows = %+v", rows)
	}
	cs := PaperComparisons(outs)
	if len(cs) != 4 {
		t.Fatalf("comparisons = %d want 4", len(cs))
	}
	metrics := map[string]bool{}
	for _, c := range cs {
		metrics[c.Metric] = true
	}
	for _, m := range []string{"N_wash", "L_wash", "T_delay", "T_assay"} {
		if !metrics[m] {
			t.Errorf("missing metric %s", m)
		}
	}
}

func TestClampNonNegative(t *testing.T) {
	if clampNonNegative(-3) != 0 || clampNonNegative(5) != 5 {
		t.Fatal("clamp wrong")
	}
}

func TestRunAllParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel sweep skipped in -short mode")
	}
	seq, err := RunAll(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAllParallel(quickOpts(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		s, p := seq[i].Row, par[i].Row
		if s.Benchmark != p.Benchmark {
			t.Fatalf("order differs at %d: %s vs %s", i, s.Benchmark, p.Benchmark)
		}
		// DAWO uses no time-limited solver: fully deterministic.
		if s.DAWONWash != p.DAWONWash || s.DAWOLWash != p.DAWOLWash {
			t.Errorf("%s: DAWO metrics differ between sequential and parallel", s.Benchmark)
		}
		// PDW's path ILPs run under wall-clock budgets; contention can
		// drop an exact path to the BFS fallback, so only the headline
		// shape is asserted for the parallel run.
		if p.PDWNWash > p.DAWONWash || p.PDWTAssay > p.DAWOTAssay {
			t.Errorf("%s: parallel PDW lost to DAWO (N %d vs %d, Ta %d vs %d)",
				s.Benchmark, p.PDWNWash, p.DAWONWash, p.PDWTAssay, p.DAWOTAssay)
		}
	}
}
