package harness

import (
	"fmt"
	"strconv"
	"strings"

	"pathdriverwash/internal/benchmarks"
)

// Shard selects the index-th of count round-robin shards of a
// benchmark list: instance i belongs to shard i mod count. Because
// membership depends only on an instance's position in the full list
// (never on count-specific renaming), the union of all count shards is
// exactly the input, and a merged sharded sweep carries the same
// benchmark names as an unsharded one — the regression radar diffs
// them as identical populations.
func Shard(benches []*benchmarks.Benchmark, index, count int) ([]*benchmarks.Benchmark, error) {
	if count < 1 {
		return nil, fmt.Errorf("harness: shard count %d < 1", count)
	}
	if index < 0 || index >= count {
		return nil, fmt.Errorf("harness: shard index %d out of range [0,%d)", index, count)
	}
	out := make([]*benchmarks.Benchmark, 0, (len(benches)+count-1)/count)
	for i := index; i < len(benches); i += count {
		out = append(out, benches[i])
	}
	return out, nil
}

// ParseShard parses the "i/n" syntax of pdwbench's -shard flag
// (0-based index, e.g. "0/4" … "3/4").
func ParseShard(s string) (index, count int, err error) {
	idx, cnt, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("harness: shard %q is not i/n", s)
	}
	index, err = strconv.Atoi(idx)
	if err != nil {
		return 0, 0, fmt.Errorf("harness: shard index %q: %w", idx, err)
	}
	count, err = strconv.Atoi(cnt)
	if err != nil {
		return 0, 0, fmt.Errorf("harness: shard count %q: %w", cnt, err)
	}
	if count < 1 {
		return 0, 0, fmt.Errorf("harness: shard count %d < 1", count)
	}
	if index < 0 || index >= count {
		return 0, 0, fmt.Errorf("harness: shard index %d out of range [0,%d)", index, count)
	}
	return index, count, nil
}
