package harness

import (
	"context"
	"sort"
	"testing"

	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/obs"
	"pathdriverwash/internal/report"
)

// TestBenchmarkTraceCoverage locks in the observability acceptance
// contract: a traced benchmark run produces one "benchmark" root span
// whose children (phases, ILP solves, synthesis steps) cover at least
// 95% of the root's wall time, so a Chrome trace of a sweep accounts
// for essentially all solve time.
func TestBenchmarkTraceCoverage(t *testing.T) {
	b, err := benchmarks.ByName("PCR")
	if err != nil {
		t.Fatal(err)
	}
	buf := &obs.TraceBuffer{}
	remove := obs.AddSink(buf)
	defer remove()
	obs.Enable()
	defer obs.Disable()

	if _, err := RunBenchmarkContext(context.Background(), b, quickOpts()); err != nil {
		t.Fatal(err)
	}

	spans := buf.Spans()
	var root *obs.SpanData
	for i := range spans {
		if spans[i].Name == "benchmark" {
			root = &spans[i]
			break
		}
	}
	if root == nil {
		t.Fatalf("no benchmark root span among %d spans", len(spans))
	}

	// Merge child span intervals inside the root's window.
	type iv struct{ s, e int64 }
	var ivs []iv
	rs, re := root.Start.UnixNano(), root.Start.Add(root.Duration).UnixNano()
	for _, d := range spans {
		if d.Root != root.ID || d.ID == root.ID {
			continue
		}
		s, e := d.Start.UnixNano(), d.Start.Add(d.Duration).UnixNano()
		if s < rs {
			s = rs
		}
		if e > re {
			e = re
		}
		if e > s {
			ivs = append(ivs, iv{s, e})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
	var covered, cursor int64
	cursor = rs
	for _, v := range ivs {
		if v.s > cursor {
			cursor = v.s
		}
		if v.e > cursor {
			covered += v.e - cursor
			cursor = v.e
		}
	}
	total := re - rs
	if total <= 0 {
		t.Fatalf("root span has no duration")
	}
	if ratio := float64(covered) / float64(total); ratio < 0.95 {
		t.Errorf("child spans cover %.1f%% of the benchmark span, want >= 95%%", ratio*100)
	}
}

// TestBuildBenchFile checks the sweep-to-JSON assembly including the
// failure path: a nil outcome becomes a Failures entry and the file
// still validates.
func TestBuildBenchFile(t *testing.T) {
	b, err := benchmarks.ByName("PCR")
	if err != nil {
		t.Fatal(err)
	}
	outs, errs := RunPartial(context.Background(), []*benchmarks.Benchmark{b}, quickOpts(), 1)
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	f := BuildBenchFile([]*benchmarks.Benchmark{b}, outs, errs, true, 1, outs[0].PDWTime+outs[0].DAWOTime)
	if err := f.Validate(); err != nil {
		t.Fatalf("generated file invalid: %v", err)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].Name != "PCR" {
		t.Fatalf("benchmarks = %+v", f.Benchmarks)
	}
	if f.Benchmarks[0].PDW.WallSeconds <= 0 || f.Benchmarks[0].PDW.TAssaySeconds <= 0 {
		t.Errorf("PDW result not populated: %+v", f.Benchmarks[0].PDW)
	}

	// A failed benchmark must surface as a failure, not vanish.
	f2 := BuildBenchFile([]*benchmarks.Benchmark{b}, []*Outcome{nil},
		[]error{context.DeadlineExceeded}, true, 1, 0)
	if len(f2.Failures) != 1 || f2.Failures[0].Name != "PCR" {
		t.Fatalf("failures = %+v", f2.Failures)
	}
	if err := f2.Validate(); err != nil {
		t.Fatalf("failure-only file invalid: %v", err)
	}
	var _ *report.BenchFile = f2
}
