package harness

import (
	"context"
	"sort"
	"testing"

	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/obs"
	"pathdriverwash/internal/report"
)

// TestBenchmarkTraceCoverage locks in the observability acceptance
// contract: a traced benchmark run produces one "benchmark" root span
// whose children (phases, ILP solves, synthesis steps) cover at least
// 95% of the root's wall time, so a Chrome trace of a sweep accounts
// for essentially all solve time.
func TestBenchmarkTraceCoverage(t *testing.T) {
	b, err := benchmarks.ByName("PCR")
	if err != nil {
		t.Fatal(err)
	}
	buf := &obs.TraceBuffer{}
	remove := obs.AddSink(buf)
	defer remove()
	obs.Enable()
	defer obs.Disable()

	if _, err := RunBenchmarkContext(context.Background(), b, quickOpts()); err != nil {
		t.Fatal(err)
	}

	spans := buf.Spans()
	var root *obs.SpanData
	for i := range spans {
		if spans[i].Name == "benchmark" {
			root = &spans[i]
			break
		}
	}
	if root == nil {
		t.Fatalf("no benchmark root span among %d spans", len(spans))
	}

	// Merge child span intervals inside the root's window.
	type iv struct{ s, e int64 }
	var ivs []iv
	rs, re := root.Start.UnixNano(), root.Start.Add(root.Duration).UnixNano()
	for _, d := range spans {
		if d.Root != root.ID || d.ID == root.ID {
			continue
		}
		s, e := d.Start.UnixNano(), d.Start.Add(d.Duration).UnixNano()
		if s < rs {
			s = rs
		}
		if e > re {
			e = re
		}
		if e > s {
			ivs = append(ivs, iv{s, e})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
	var covered, cursor int64
	cursor = rs
	for _, v := range ivs {
		if v.s > cursor {
			cursor = v.s
		}
		if v.e > cursor {
			covered += v.e - cursor
			cursor = v.e
		}
	}
	total := re - rs
	if total <= 0 {
		t.Fatalf("root span has no duration")
	}
	if ratio := float64(covered) / float64(total); ratio < 0.95 {
		t.Errorf("child spans cover %.1f%% of the benchmark span, want >= 95%%", ratio*100)
	}
}

// TestBuildBenchFile checks the sweep-to-JSON assembly including the
// failure path: a nil outcome becomes a Failures entry and the file
// still validates.
func TestBuildBenchFile(t *testing.T) {
	b, err := benchmarks.ByName("PCR")
	if err != nil {
		t.Fatal(err)
	}
	outs, errs := RunPartial(context.Background(), []*benchmarks.Benchmark{b}, quickOpts(), 1)
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	f := BuildBenchFile([]*benchmarks.Benchmark{b}, outs, errs, nil, true, 1, outs[0].PDWTime+outs[0].DAWOTime)
	if err := f.Validate(); err != nil {
		t.Fatalf("generated file invalid: %v", err)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].Name != "PCR" {
		t.Fatalf("benchmarks = %+v", f.Benchmarks)
	}
	if f.Benchmarks[0].PDW.WallSeconds <= 0 || f.Benchmarks[0].PDW.TAssaySeconds <= 0 {
		t.Errorf("PDW result not populated: %+v", f.Benchmarks[0].PDW)
	}
	// The per-phase breakdown rides along: the shared setup stages and
	// the PDW pipeline phases recorded by solve.Stats.
	if _, ok := f.Benchmarks[0].SetupSeconds["synthesis"]; !ok {
		t.Errorf("setup_s missing synthesis: %+v", f.Benchmarks[0].SetupSeconds)
	}
	if _, ok := f.Benchmarks[0].PDW.PhaseSeconds["wash-insertion"]; !ok {
		t.Errorf("pdw phase_s missing wash-insertion: %+v", f.Benchmarks[0].PDW.PhaseSeconds)
	}
	// Single-shot sweeps carry no samples.
	if len(f.Benchmarks[0].PDW.WallSamples) != 0 {
		t.Errorf("single-shot sweep has wall_samples: %v", f.Benchmarks[0].PDW.WallSamples)
	}

	// A failed benchmark must surface as a failure, not vanish.
	f2 := BuildBenchFile([]*benchmarks.Benchmark{b}, []*Outcome{nil},
		[]error{context.DeadlineExceeded}, nil, true, 1, 0)
	if len(f2.Failures) != 1 || f2.Failures[0].Name != "PCR" {
		t.Fatalf("failures = %+v", f2.Failures)
	}
	if err := f2.Validate(); err != nil {
		t.Fatalf("failure-only file invalid: %v", err)
	}
	var _ *report.BenchFile = f2
}

// TestRunSampledPartial checks the repeated-sweep sampling contract:
// count iterations produce count wall-time samples per method, the
// returned outcomes are the first iteration's, and the resulting bench
// file round-trips with the samples attached.
func TestRunSampledPartial(t *testing.T) {
	b, err := benchmarks.ByName("PCR")
	if err != nil {
		t.Fatal(err)
	}
	benches := []*benchmarks.Benchmark{b}
	outs, errs, samples := RunSampledPartial(context.Background(), benches, quickOpts(), 1, 3)
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	if len(samples) != 1 {
		t.Fatalf("samples = %+v, want one benchmark entry", samples)
	}
	if len(samples[0].PDWWall) != 3 || len(samples[0].DAWOWall) != 3 {
		t.Fatalf("sample counts = %d/%d, want 3/3", len(samples[0].DAWOWall), len(samples[0].PDWWall))
	}
	if samples[0].PDWWall[0] != outs[0].PDWTime.Seconds() {
		t.Errorf("first sample %g != first outcome wall %g", samples[0].PDWWall[0], outs[0].PDWTime.Seconds())
	}
	for _, s := range samples[0].PDWWall {
		if s <= 0 {
			t.Errorf("non-positive wall sample %g", s)
		}
	}
	f := BuildBenchFile(benches, outs, errs, samples, true, 1, 0)
	if err := f.Validate(); err != nil {
		t.Fatalf("sampled bench file invalid: %v", err)
	}
	if got := f.Benchmarks[0].PDW.WallSamples; len(got) != 3 {
		t.Errorf("bench file wall_samples = %v, want 3 entries", got)
	}
}

// TestRunPartialFailureCounter locks in the satellite fix: benchmarks
// a sweep could not complete — including never-started ones under a
// dead context — increment pdw_harness_benchmark_failures_total, so
// failed sweeps show up in /metrics and in BenchFile metrics.
func TestRunPartialFailureCounter(t *testing.T) {
	b, err := benchmarks.ByName("PCR")
	if err != nil {
		t.Fatal(err)
	}
	obs.Enable()
	defer obs.Disable()
	before := obs.Default().Counter("pdw_harness_benchmark_failures_total").Value()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // everything fails as "not started"
	outs, errs := RunPartial(ctx, []*benchmarks.Benchmark{b, b}, quickOpts(), 1)
	for i := range outs {
		if outs[i] != nil || errs[i] == nil {
			t.Fatalf("canceled sweep: outs[%d]=%v errs[%d]=%v", i, outs[i], i, errs[i])
		}
	}
	after := obs.Default().Counter("pdw_harness_benchmark_failures_total").Value()
	if after-before != 2 {
		t.Errorf("failure counter advanced by %d, want 2", after-before)
	}
	// And the snapshot (what BuildBenchFile embeds) carries it.
	if _, ok := obs.Default().Snapshot()["pdw_harness_benchmark_failures_total"]; !ok {
		t.Error("metrics snapshot lacks pdw_harness_benchmark_failures_total")
	}
}
