package harness

import (
	"testing"
	"time"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/contam"
	"pathdriverwash/internal/dawo"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/pdw"
	"pathdriverwash/internal/synth"
)

// TestTableIIShape is the repository's headline integration test: on
// every Table II benchmark, PDW must match or beat the DAWO baseline on
// all four reported metrics — the qualitative claim of the paper's
// evaluation. Quick solver budgets keep the run fast; cmd/pdwbench and
// the root bench suite repeat it with larger budgets.
func TestTableIIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark sweep skipped in -short mode")
	}
	for _, b := range benchmarks.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			out, err := RunBenchmark(b, quickOpts())
			if err != nil {
				t.Fatal(err)
			}
			r := out.Row
			if r.PDWNWash > r.DAWONWash {
				t.Errorf("N_wash: PDW %d > DAWO %d", r.PDWNWash, r.DAWONWash)
			}
			if r.PDWLWash > r.DAWOLWash {
				t.Errorf("L_wash: PDW %.0f > DAWO %.0f", r.PDWLWash, r.DAWOLWash)
			}
			if r.PDWTDelay > r.DAWOTDelay {
				t.Errorf("T_delay: PDW %d > DAWO %d", r.PDWTDelay, r.DAWOTDelay)
			}
			if r.PDWTAssay > r.DAWOTAssay {
				t.Errorf("T_assay: PDW %d > DAWO %d", r.PDWTAssay, r.DAWOTAssay)
			}
			if r.PDWWashTime > r.DAWOWashTime {
				t.Errorf("wash time: PDW %d > DAWO %d", r.PDWWashTime, r.DAWOWashTime)
			}
			// Average waiting time is not directly optimized (the MILP
			// minimizes makespan), so near-ties can tip either way;
			// only a clear regression fails.
			if r.PDWAvgWait > r.DAWOAvgWait*1.1+1 {
				t.Errorf("avg wait: PDW %.2f >> DAWO %.2f", r.PDWAvgWait, r.DAWOAvgWait)
			}
			t.Logf("%s: DAWO N=%d L=%.0f Td=%d Ta=%d | PDW N=%d L=%.0f Td=%d Ta=%d (int=%d)",
				b.Name, r.DAWONWash, r.DAWOLWash, r.DAWOTDelay, r.DAWOTAssay,
				r.PDWNWash, r.PDWLWash, r.PDWTDelay, r.PDWTAssay, out.PDW.IntegratedRemovals)
		})
	}
}

// TestMotivatingExampleShape runs both methods on the paper's running
// example chip (Fig. 2(a)) and checks the Fig. 3 qualitative claims:
// PDW uses no more washes than DAWO and integrates removals.
func TestMotivatingExampleShape(t *testing.T) {
	a, chip, err := benchmarks.Motivating()
	if err != nil {
		t.Fatal(err)
	}
	syn, err := synth.SynthesizeOnChip(a, chip)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pdw.CompressBase(syn.Schedule, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := dawo.Optimize(syn.Schedule, dawo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pres, err := pdw.Optimize(syn.Schedule, quickOpts().PDW)
	if err != nil {
		t.Fatal(err)
	}
	dm := dres.Schedule.ComputeMetrics(ref)
	pm := pres.Schedule.ComputeMetrics(ref)
	if pm.NWash > dm.NWash {
		t.Errorf("N_wash: PDW %d > DAWO %d", pm.NWash, dm.NWash)
	}
	if pm.TAssay > dm.TAssay {
		t.Errorf("T_assay: PDW %d > DAWO %d", pm.TAssay, dm.TAssay)
	}
	if pres.IntegratedRemovals == 0 {
		t.Error("motivating example should exercise ψ-integration (Fig. 3 integrates *1, *2, *6)")
	}
	t.Logf("motivating: DAWO N=%d Ta=%d | PDW N=%d Ta=%d int=%d",
		dm.NWash, dm.TAssay, pm.NWash, pm.TAssay, pres.IntegratedRemovals)
}

// TestRingTopologyShape runs both optimizers on a ring-architecture
// chip, where every path contends for the loop: PDW must still win and
// both outputs must stay clean.
func TestRingTopologyShape(t *testing.T) {
	a := assay.New("ring-shape")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 2, Output: "f1",
		Reagents: []assay.FluidType{"r1", "r2"}})
	a.MustAddOp(&assay.Operation{ID: "o2", Kind: assay.Mix, Duration: 2, Output: "f2",
		Reagents: []assay.FluidType{"r3"}})
	a.MustAddOp(&assay.Operation{ID: "o3", Kind: assay.Heat, Duration: 3, Output: "f3"})
	a.MustAddEdge("o1", "o2")
	a.MustAddEdge("o2", "o3")
	syn, err := synth.Synthesize(a, synth.Config{
		Topology: synth.Ring,
		Devices: []synth.DeviceSpec{
			{Kind: grid.Mixer, Count: 2}, {Kind: grid.Heater, Count: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pdw.CompressBase(syn.Schedule, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := dawo.Optimize(syn.Schedule, dawo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pres, err := pdw.Optimize(syn.Schedule, quickOpts().PDW)
	if err != nil {
		t.Fatal(err)
	}
	if err := contam.Verify(pres.Schedule); err != nil {
		t.Fatalf("PDW on ring not clean: %v", err)
	}
	dm := dres.Schedule.ComputeMetrics(ref)
	pm := pres.Schedule.ComputeMetrics(ref)
	if pm.NWash > dm.NWash || pm.TAssay > dm.TAssay {
		t.Errorf("ring: PDW N=%d Ta=%d vs DAWO N=%d Ta=%d", pm.NWash, pm.TAssay, dm.NWash, dm.TAssay)
	}
	t.Logf("ring: DAWO N=%d Ta=%d | PDW N=%d Ta=%d", dm.NWash, dm.TAssay, pm.NWash, pm.TAssay)
}
