// Package geom provides the elementary geometry used by the virtual-grid
// chip model: integer grid points, the four rectilinear directions, and
// Manhattan-distance helpers.
//
// The paper models a continuous-flow chip as a virtual grid R of size
// W_G x H_G whose cells hold devices, channel segments, or ports; all
// fluid movement is rectilinear, so 4-neighbourhood geometry is all that
// is ever needed.
package geom

import "fmt"

// Point is a cell coordinate on the virtual grid. X grows to the east,
// Y grows to the south; (0,0) is the north-west corner.
type Point struct {
	X, Y int
}

// Pt is shorthand for constructing a Point.
func Pt(x, y int) Point { return Point{X: x, Y: y} }

// String renders the point as "(x,y)".
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Add returns the point translated one step in direction d.
func (p Point) Add(d Dir) Point { return Point{p.X + d.DX(), p.Y + d.DY()} }

// AddN returns the point translated n steps in direction d.
func (p Point) AddN(d Dir, n int) Point {
	return Point{p.X + n*d.DX(), p.Y + n*d.DY()}
}

// Manhattan returns the L1 distance between p and q.
func (p Point) Manhattan(q Point) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y)
}

// Adjacent reports whether p and q share an edge on the grid
// (Manhattan distance exactly one).
func (p Point) Adjacent(q Point) bool { return p.Manhattan(q) == 1 }

// Neighbors returns the four rectilinear neighbours of p in N,E,S,W order.
// Neighbours may lie outside any particular grid; bounds checking is the
// caller's concern.
func (p Point) Neighbors() [4]Point {
	return [4]Point{p.Add(North), p.Add(East), p.Add(South), p.Add(West)}
}

// DirTo returns the direction of the single step from p to adjacent q.
// It panics if p and q are not adjacent; use Adjacent first when unsure.
func (p Point) DirTo(q Point) Dir {
	switch {
	case q.X == p.X && q.Y == p.Y-1:
		return North
	case q.X == p.X+1 && q.Y == p.Y:
		return East
	case q.X == p.X && q.Y == p.Y+1:
		return South
	case q.X == p.X-1 && q.Y == p.Y:
		return West
	}
	panic(fmt.Sprintf("geom: %v and %v are not adjacent", p, q))
}

// Dir is one of the four rectilinear directions.
type Dir int

// The four rectilinear directions.
const (
	North Dir = iota
	East
	South
	West
)

// Dirs lists the four directions in N,E,S,W order for range loops.
var Dirs = [4]Dir{North, East, South, West}

// DX returns the x-component of the unit step in direction d.
func (d Dir) DX() int {
	switch d {
	case East:
		return 1
	case West:
		return -1
	}
	return 0
}

// DY returns the y-component of the unit step in direction d.
func (d Dir) DY() int {
	switch d {
	case South:
		return 1
	case North:
		return -1
	}
	return 0
}

// Opposite returns the direction pointing the other way.
func (d Dir) Opposite() Dir { return (d + 2) % 4 }

// String names the direction ("N", "E", "S" or "W").
func (d Dir) String() string {
	switch d {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	}
	return fmt.Sprintf("Dir(%d)", int(d))
}

// Rect is an axis-aligned rectangle of grid cells, inclusive of Min and
// exclusive of Max, matching Go's image.Rectangle convention.
type Rect struct {
	Min, Max Point
}

// Rc builds a Rect from (x0,y0) to (x1,y1), exclusive of the latter.
func Rc(x0, y0, x1, y1 int) Rect { return Rect{Pt(x0, y0), Pt(x1, y1)} }

// Contains reports whether p lies inside r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

// W returns the rectangle width in cells.
func (r Rect) W() int { return r.Max.X - r.Min.X }

// H returns the rectangle height in cells.
func (r Rect) H() int { return r.Max.Y - r.Min.Y }

// Area returns the number of cells covered by r.
func (r Rect) Area() int { return r.W() * r.H() }

// Points enumerates every cell of r in row-major order.
func (r Rect) Points() []Point {
	pts := make([]Point, 0, r.Area())
	for y := r.Min.Y; y < r.Max.Y; y++ {
		for x := r.Min.X; x < r.Max.X; x++ {
			pts = append(pts, Pt(x, y))
		}
	}
	return pts
}

// Overlaps reports whether r and s share at least one cell.
func (r Rect) Overlaps(s Rect) bool {
	return r.Min.X < s.Max.X && s.Min.X < r.Max.X &&
		r.Min.Y < s.Max.Y && s.Min.Y < r.Max.Y
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
