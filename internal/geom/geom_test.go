package geom

import (
	"testing"
	"testing/quick"
)

func TestPtAndString(t *testing.T) {
	p := Pt(3, -2)
	if p.X != 3 || p.Y != -2 {
		t.Fatalf("Pt(3,-2) = %+v", p)
	}
	if got := p.String(); got != "(3,-2)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestDirComponents(t *testing.T) {
	cases := []struct {
		d      Dir
		dx, dy int
		name   string
	}{
		{North, 0, -1, "N"},
		{East, 1, 0, "E"},
		{South, 0, 1, "S"},
		{West, -1, 0, "W"},
	}
	for _, c := range cases {
		if c.d.DX() != c.dx || c.d.DY() != c.dy {
			t.Errorf("%v: DX,DY = %d,%d want %d,%d", c.d, c.d.DX(), c.d.DY(), c.dx, c.dy)
		}
		if c.d.String() != c.name {
			t.Errorf("%v: String = %q want %q", c.d, c.d.String(), c.name)
		}
	}
}

func TestOpposite(t *testing.T) {
	for _, d := range Dirs {
		if d.Opposite().Opposite() != d {
			t.Errorf("double opposite of %v is %v", d, d.Opposite().Opposite())
		}
		if d.DX()+d.Opposite().DX() != 0 || d.DY()+d.Opposite().DY() != 0 {
			t.Errorf("%v and %v are not opposite", d, d.Opposite())
		}
	}
}

func TestAddAndAddN(t *testing.T) {
	p := Pt(5, 5)
	if p.Add(North) != Pt(5, 4) {
		t.Errorf("Add(North) = %v", p.Add(North))
	}
	if p.AddN(East, 3) != Pt(8, 5) {
		t.Errorf("AddN(East,3) = %v", p.AddN(East, 3))
	}
	if p.AddN(South, 0) != p {
		t.Errorf("AddN(.,0) moved the point")
	}
}

func TestManhattan(t *testing.T) {
	cases := []struct {
		a, b Point
		want int
	}{
		{Pt(0, 0), Pt(0, 0), 0},
		{Pt(0, 0), Pt(3, 4), 7},
		{Pt(-1, -1), Pt(1, 1), 4},
		{Pt(2, 7), Pt(2, 7), 0},
	}
	for _, c := range cases {
		if got := c.a.Manhattan(c.b); got != c.want {
			t.Errorf("Manhattan(%v,%v) = %d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestManhattanSymmetryQuick(t *testing.T) {
	f := func(ax, ay, bx, by int8) bool {
		a, b := Pt(int(ax), int(ay)), Pt(int(bx), int(by))
		return a.Manhattan(b) == b.Manhattan(a) && a.Manhattan(b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestManhattanTriangleQuick(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int8) bool {
		a, b, c := Pt(int(ax), int(ay)), Pt(int(bx), int(by)), Pt(int(cx), int(cy))
		return a.Manhattan(c) <= a.Manhattan(b)+b.Manhattan(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAdjacent(t *testing.T) {
	p := Pt(4, 4)
	for _, n := range p.Neighbors() {
		if !p.Adjacent(n) {
			t.Errorf("%v should be adjacent to %v", p, n)
		}
	}
	if p.Adjacent(p) {
		t.Error("a point must not be adjacent to itself")
	}
	if p.Adjacent(Pt(5, 5)) {
		t.Error("diagonal cells are not adjacent")
	}
}

func TestNeighborsOrder(t *testing.T) {
	p := Pt(1, 1)
	want := [4]Point{Pt(1, 0), Pt(2, 1), Pt(1, 2), Pt(0, 1)}
	if p.Neighbors() != want {
		t.Fatalf("Neighbors() = %v want %v", p.Neighbors(), want)
	}
}

func TestDirTo(t *testing.T) {
	p := Pt(3, 3)
	for _, d := range Dirs {
		if got := p.DirTo(p.Add(d)); got != d {
			t.Errorf("DirTo(%v) = %v want %v", p.Add(d), got, d)
		}
	}
}

func TestDirToPanicsOnNonAdjacent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-adjacent DirTo")
		}
	}()
	Pt(0, 0).DirTo(Pt(2, 0))
}

func TestDirToRoundTripQuick(t *testing.T) {
	f := func(x, y int8, dn uint8) bool {
		p := Pt(int(x), int(y))
		d := Dirs[int(dn)%4]
		return p.DirTo(p.Add(d)) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rc(1, 1, 4, 3)
	if r.W() != 3 || r.H() != 2 || r.Area() != 6 {
		t.Fatalf("W,H,Area = %d,%d,%d", r.W(), r.H(), r.Area())
	}
	if !r.Contains(Pt(1, 1)) || !r.Contains(Pt(3, 2)) {
		t.Error("Contains should include min corner and interior")
	}
	if r.Contains(Pt(4, 2)) || r.Contains(Pt(3, 3)) {
		t.Error("Contains must exclude the max edge")
	}
}

func TestRectPoints(t *testing.T) {
	r := Rc(0, 0, 2, 2)
	pts := r.Points()
	want := []Point{Pt(0, 0), Pt(1, 0), Pt(0, 1), Pt(1, 1)}
	if len(pts) != len(want) {
		t.Fatalf("len = %d want %d", len(pts), len(want))
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("pts[%d] = %v want %v", i, pts[i], want[i])
		}
	}
}

func TestRectOverlaps(t *testing.T) {
	a := Rc(0, 0, 3, 3)
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rc(2, 2, 5, 5), true},
		{Rc(3, 0, 5, 3), false}, // share only an edge
		{Rc(-2, -2, 0, 0), false},
		{Rc(1, 1, 2, 2), true}, // contained
		{a, true},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%v,%v) = %v want %v", a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("Overlaps(%v,%v) = %v want %v (symmetry)", c.b, a, got, c.want)
		}
	}
}

func TestRectPointsMatchContainsQuick(t *testing.T) {
	f := func(x0, y0 uint8, w, h uint8) bool {
		r := Rc(int(x0), int(y0), int(x0)+int(w%6), int(y0)+int(h%6))
		pts := r.Points()
		if len(pts) != r.Area() {
			return false
		}
		for _, p := range pts {
			if !r.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
