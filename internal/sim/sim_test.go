package sim

import (
	"strings"
	"testing"
	"time"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/dawo"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/pdw"
	"pathdriverwash/internal/synth"
)

func synthFixture(t *testing.T) *synth.Result {
	t.Helper()
	a := assay.New("sim-fx")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 2, Output: "f1",
		Reagents: []assay.FluidType{"r1", "r2"}})
	a.MustAddOp(&assay.Operation{ID: "o2", Kind: assay.Mix, Duration: 2, Output: "f2",
		Reagents: []assay.FluidType{"r3"}})
	a.MustAddOp(&assay.Operation{ID: "o3", Kind: assay.Mix, Duration: 2, Output: "f3",
		Reagents: []assay.FluidType{"r4"}})
	a.MustAddEdge("o1", "o2")
	a.MustAddEdge("o2", "o3")
	res, err := synth.Synthesize(a, synth.Config{
		Devices: []synth.DeviceSpec{{Kind: grid.Mixer, Count: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWashFreeScheduleHasContaminationOnly(t *testing.T) {
	res := synthFixture(t)
	rep := Run(res.Schedule)
	// The wash-free schedule is physically executable except for
	// residue crossings (that is exactly why washes exist).
	for _, v := range rep.Violations {
		if !strings.Contains(v.Reason, "residue") {
			t.Errorf("unexpected violation class: %v", v)
		}
	}
	if rep.Clean() {
		t.Fatal("wash-free fixture should show residue crossings")
	}
}

func TestPDWScheduleSimulatesClean(t *testing.T) {
	res := synthFixture(t)
	out, err := pdw.Optimize(res.Schedule, pdw.Options{
		PathTimeLimit: time.Second, WindowTimeLimit: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(out.Schedule)
	if !rep.CleanExceptHolding() {
		t.Fatalf("PDW schedule physically violates: %v", rep.Violations)
	}
	if n := len(rep.ByClass(Holding)); n > 0 {
		t.Logf("holding hazards (paper constraint gap, see DESIGN.md): %d", n)
	}
	if rep.Steps != out.Schedule.Makespan() {
		t.Errorf("steps = %d", rep.Steps)
	}
}

func TestDAWOScheduleSimulatesClean(t *testing.T) {
	res := synthFixture(t)
	out, err := dawo.Optimize(res.Schedule, dawo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(out.Schedule)
	if !rep.CleanExceptHolding() {
		t.Fatalf("DAWO schedule physically violates: %v", rep.Violations)
	}
}

func TestAllBenchmarksSimulateCleanUnderPDW(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark sweep skipped in -short mode")
	}
	for _, b := range benchmarks.All() {
		syn, err := b.Synthesize()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		out, err := pdw.Optimize(syn.Schedule, pdw.Options{
			PathTimeLimit: 500 * time.Millisecond, WindowTimeLimit: 2 * time.Second,
		})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		rep := Run(out.Schedule)
		if !rep.CleanExceptHolding() {
			bad := append(rep.ByClass(Contamination),
				append(rep.ByClass(Occupancy), rep.ByClass(Ordering)...)...)
			for _, v := range bad[:min(5, len(bad))] {
				t.Errorf("%s: %v", b.Name, v)
			}
		}
		if n := len(rep.ByClass(Holding)); n > 0 {
			t.Logf("%s: %d holding hazards (paper constraint gap)", b.Name, n)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Failure injection: corrupt a clean schedule in targeted ways and
// assert the simulator flags each corruption class.
func TestFailureInjection(t *testing.T) {
	res := synthFixture(t)
	out, err := pdw.Optimize(res.Schedule, pdw.Options{
		PathTimeLimit: time.Second, WindowTimeLimit: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := out.Schedule

	// 1. Move a product transport before its producer ends.
	s1 := base.Clone()
	if tr := s1.TransportFor("o1", "o2"); tr != nil {
		prod := s1.OpTask("o1")
		tr.Start = prod.End - 1
		tr.End = tr.Start + 1
		rep := Run(s1)
		if rep.Clean() {
			t.Error("early transport not flagged")
		}
	}

	// 2. Make two transports overlap on the same cells.
	s2 := base.Clone()
	var moved bool
	ts := s2.Tasks()
	for i := 0; i < len(ts) && !moved; i++ {
		for j := i + 1; j < len(ts); j++ {
			a, b := ts[i], ts[j]
			if a.Kind.Fluidic() && b.Kind.Fluidic() && a.Active() && b.Active() &&
				a.Path.Overlaps(b.Path) && !a.Overlaps(b) {
				b.Start, b.End = a.Start, a.Start+b.MinDuration
				moved = true
				break
			}
		}
	}
	if moved {
		rep := Run(s2)
		found := false
		for _, v := range rep.Violations {
			if strings.Contains(v.Reason, "occupied") {
				found = true
			}
		}
		if !found {
			t.Error("cell double-occupancy not flagged")
		}
	}

	// 3. Delete a wash: residue crossings must reappear.
	s3 := base.Clone()
	removedWash := false
	for _, tk := range s3.Tasks() {
		if tk.Kind.String() == "wash" {
			// Neutralize the wash by pushing it past the horizon.
			tk.Start = 10000
			tk.End = 10001
			removedWash = true
		}
	}
	if removedWash {
		rep := Run(s3)
		found := false
		for _, v := range rep.Violations {
			if strings.Contains(v.Reason, "residue") {
				found = true
			}
		}
		if !found {
			t.Error("deleted washes not flagged as residue crossings")
		}
	}
}

func TestDeviceContentsReported(t *testing.T) {
	res := synthFixture(t)
	rep := Run(res.Schedule)
	// o3 is a sink: after its disposal the devices should be empty of
	// all but possibly in-flight leftovers; the map must at least exist.
	if rep.DeviceContents == nil {
		t.Fatal("no device contents")
	}
}
