// Package sim is a discrete-event executor for assay schedules: it
// replays an execution procedure second by second, maintaining the
// physical state the schedule implies — which fluid every cell and
// device holds, what residue is left behind, which cells a running task
// occupies — and flags any physical impossibility the static validators
// might express differently:
//
//   - two concurrent tasks occupying one cell;
//   - an operation starting before its inputs arrived in the device;
//   - an operation's product leaving before the operation finished;
//   - a sensitive fluid plug crossing foreign residue (contamination);
//   - a wash flushing a device that still holds product.
//
// It is intentionally independent of schedule.Validate and
// contam.Verify: the simulator derives everything from task windows and
// paths alone, so agreement between all three oracles is strong
// evidence the optimizers emit physically executable procedures.
package sim

import (
	"fmt"
	"sort"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/schedule"
)

// Class categorizes a violation.
type Class int

// Violation classes.
const (
	// Contamination: a sensitive plug crossed foreign residue — the
	// defect washing exists to prevent. Optimizer outputs must have none.
	Contamination Class = iota
	// Occupancy: two concurrent tasks on one cell. Must never happen.
	Occupancy
	// Ordering: a task ran before its data dependency completed. Must
	// never happen.
	Ordering
	// Holding: fluid sitting in a device was disturbed (flushed by a
	// wash, collided with an unrelated arrival, or missing at pickup).
	// The paper's constraint set (Eq. 3 covers operation execution
	// windows only) does not model the holding interval, so these can
	// occur on schedules that satisfy every Sec. III constraint; see
	// DESIGN.md's holding-hazard note.
	Holding
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Contamination:
		return "contamination"
	case Occupancy:
		return "occupancy"
	case Ordering:
		return "ordering"
	case Holding:
		return "holding"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Violation describes one physical impossibility found during replay.
type Violation struct {
	Time   int
	TaskID string
	Class  Class
	Reason string
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%d %s [%s]: %s", v.Time, v.TaskID, v.Class, v.Reason)
}

// Report is the outcome of a simulation run.
type Report struct {
	Violations []Violation
	// Steps is the number of simulated seconds.
	Steps int
	// DeviceContents maps device IDs to the fluid left inside at the end.
	DeviceContents map[string]assay.FluidType
}

// Clean reports whether the replay found no violations at all.
func (r *Report) Clean() bool { return len(r.Violations) == 0 }

// ByClass returns the violations of one class.
func (r *Report) ByClass(c Class) []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Class == c {
			out = append(out, v)
		}
	}
	return out
}

// CleanExceptHolding reports whether only holding hazards remain — the
// strongest guarantee the paper's constraint set can deliver.
func (r *Report) CleanExceptHolding() bool {
	return len(r.Violations) == len(r.ByClass(Holding))
}

// state is the physical chip state during replay.
type state struct {
	chip *grid.Chip
	// residue per cell (empty string: clean).
	residue map[geom.Point]assay.FluidType
	// occupancy per cell: ID of the task holding it this second.
	occupied map[geom.Point]string
	// device contents (product waiting inside).
	contents map[*grid.Device]assay.FluidType
}

// Run replays the schedule and reports violations. The zero horizon is
// taken from the schedule's makespan.
func Run(s *schedule.Schedule) *Report {
	rep := &Report{DeviceContents: map[string]assay.FluidType{}}
	st := &state{
		chip:     s.Chip,
		residue:  map[geom.Point]assay.FluidType{},
		contents: map[*grid.Device]assay.FluidType{},
	}
	horizon := s.Makespan()
	rep.Steps = horizon

	tasks := s.SortedByStart()
	flag := func(t int, id string, class Class, format string, args ...any) {
		rep.Violations = append(rep.Violations, Violation{
			Time: t, TaskID: id, Class: class, Reason: fmt.Sprintf(format, args...),
		})
	}

	for now := 0; now <= horizon; now++ {
		// Occupancy for this second.
		st.occupied = map[geom.Point]string{}
		for _, t := range tasks {
			if !t.Active() || !t.Kind.Fluidic() {
				continue
			}
			if t.Start <= now && now < t.End {
				for _, c := range t.Path.Cells {
					if prev, busy := st.occupied[c]; busy {
						flag(now, t.ID, Occupancy, "cell %v already occupied by %s", c, prev)
					} else {
						st.occupied[c] = t.ID
					}
				}
			}
		}
		// Operations occupy their devices.
		for _, t := range tasks {
			if t.Kind != schedule.Operation || !(t.Start <= now && now < t.End) {
				continue
			}
			for _, c := range t.Device.Cells() {
				if prev, busy := st.occupied[c]; busy {
					flag(now, t.ID, Occupancy, "device cell %v flushed by %s during execution", c, prev)
				} else {
					st.occupied[c] = t.ID
				}
			}
		}

		// Windows are half-open: a task ending at `now` no longer runs
		// this second, so its effects land before same-second starts.
		// Integrated removals (ψ=1) never execute: their wash does the
		// flushing, so they have no physical effects to replay.
		for _, t := range tasks {
			if t.End != now || !t.Active() {
				continue
			}
			st.onEnd(t, s, flag)
		}
		for _, t := range tasks {
			if t.Start != now || !t.Active() {
				continue
			}
			st.onStart(t, s, flag)
		}
	}
	for d, f := range st.contents {
		rep.DeviceContents[d.ID] = f
	}
	sort.Slice(rep.Violations, func(i, j int) bool {
		if rep.Violations[i].Time != rep.Violations[j].Time {
			return rep.Violations[i].Time < rep.Violations[j].Time
		}
		return rep.Violations[i].TaskID < rep.Violations[j].TaskID
	})
	return rep
}

// onStart checks the preconditions of a task when it begins.
func (st *state) onStart(t *schedule.Task, s *schedule.Schedule, flag func(int, string, Class, string, ...any)) {
	switch t.Kind {
	case schedule.Operation:
		// The op's device must hold fluid delivered by its transports;
		// we assert the transports completed (their end deposits into
		// the device below).
		for _, u := range s.Tasks() {
			if u.Kind == schedule.Transport && u.EdgeTo == t.OpID && u.End > t.Start {
				flag(t.Start, t.ID, Ordering, "input %s has not arrived (ends %d)", u.ID, u.End)
			}
		}
	case schedule.Transport:
		if t.EdgeFrom != "" {
			// The producing op must be finished.
			if prod := s.OpTask(t.EdgeFrom); prod != nil && prod.End > t.Start {
				flag(t.Start, t.ID, Ordering, "producer %s still running", prod.ID)
			}
			// The source device must hold the product.
			if src := s.OpTask(t.EdgeFrom); src != nil {
				if held, ok := st.contents[src.Device]; !ok {
					flag(t.Start, t.ID, Holding, "source device %s is empty", src.Device.ID)
				} else if held != t.Fluid {
					flag(t.Start, t.ID, Holding, "source device %s holds %s, expected %s",
						src.Device.ID, held, t.Fluid)
				}
			}
		}
		// The plug must not cross foreign residue it is sensitive to
		// (residue of the destination op's other inputs is harmless —
		// they are about to be mixed anyway).
		tol := tolerated(s.Assay, t)
		for _, c := range t.SensitiveCells {
			if res, dirty := st.residue[c]; dirty && !tol[res] {
				flag(t.Start, t.ID, Contamination, "plug crosses %s residue at %v", res, c)
			}
		}
	case schedule.Wash:
		// Washing a device that still holds product destroys the assay.
		seen := map[*grid.Device]bool{}
		for _, c := range t.Path.Cells {
			d := st.chip.DeviceAt(c)
			if d == nil || seen[d] {
				continue
			}
			seen[d] = true
			if f, full := st.contents[d]; full {
				flag(t.Start, t.ID, Holding, "flushes device %s holding %s", d.ID, f)
			}
		}
	}
}

// onEnd applies the physical effects of a finished task.
func (st *state) onEnd(t *schedule.Task, s *schedule.Schedule, flag func(int, string, Class, string, ...any)) {
	switch t.Kind {
	case schedule.Operation:
		// Inputs are consumed into the product, which stays in the device.
		dev := t.Device
		st.contents[dev] = t.Fluid
	case schedule.Transport:
		// Deposit contamination.
		for _, c := range t.ContamCells {
			st.residue[c] = t.Fluid
		}
		// Move the plug: source device emptied, destination filled.
		if t.EdgeFrom != "" {
			if src := s.OpTask(t.EdgeFrom); src != nil {
				delete(st.contents, src.Device)
			}
		}
		// Destination device receives the fluid. A collision with fluid
		// that is NOT an input of the same consumer is a physical error
		// (two unrelated products mixed in one device).
		if t.EdgeTo != "" {
			if dst := s.OpTask(t.EdgeTo); dst != nil {
				if held, full := st.contents[dst.Device]; full {
					if tol := tolerated(s.Assay, t); !tol[held] {
						flag(t.End, t.ID, Holding, "deposits %s into device %s already holding unrelated %s",
							t.Fluid, dst.Device.ID, held)
					}
				}
				st.contents[dst.Device] = t.Fluid
			}
		}
	case schedule.Removal, schedule.WasteDisposal:
		for _, c := range t.ContamCells {
			st.residue[c] = t.Fluid
		}
		if t.Kind == schedule.WasteDisposal && t.EdgeFrom != "" {
			if src := s.OpTask(t.EdgeFrom); src != nil {
				delete(st.contents, src.Device)
			}
		}
	case schedule.Wash:
		for _, c := range t.Path.Cells {
			delete(st.residue, c)
		}
	}
}

// tolerated mirrors the contamination tolerance: inputs of the
// destination op are harmless to a transport's plug.
func tolerated(a *assay.Assay, t *schedule.Task) map[assay.FluidType]bool {
	tol := map[assay.FluidType]bool{t.Fluid: true}
	if a == nil || t.EdgeTo == "" {
		return tol
	}
	if op := a.Op(t.EdgeTo); op != nil {
		tol[op.Output] = true
		for _, r := range op.Reagents {
			tol[r] = true
		}
		for _, p := range a.Preds(t.EdgeTo) {
			if po := a.Op(p); po != nil {
				tol[po.Output] = true
			}
		}
	}
	return tol
}
