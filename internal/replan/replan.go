// Package replan rebuilds an assay schedule after wash operations have
// been decided: it derives the precedence DAG that the time-window ILP
// of Sec. III constrains (operation dependencies, transport/removal
// sequencing, wash-after-contamination and wash-before-reuse edges,
// ψ-integration edges of Eq. 21), fixes the relative order of
// conflicting base tasks to the input schedule's order, and provides a
// greedy earliest-fit rebuild used directly by the DAWO baseline and as
// the ILP's initial incumbent in PDW.
package replan

import (
	"fmt"
	"sort"

	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/schedule"
)

// WashSpec describes one decided wash operation w_j.
type WashSpec struct {
	ID string
	// Path is the complete wash path (Eqs. 12-15).
	Path grid.Path
	// Targets are the contaminated cells the wash covers.
	Targets []geom.Point
	// Duration is t(w_j) of Eq. 17, in whole seconds.
	Duration int
	// Culprits are base task IDs whose residue the wash removes; the
	// wash must start after each of them ends (Eq. 16's t_{j,e}).
	Culprits []string
	// Before are base task IDs that require cleanliness; the wash must
	// end before each of them starts (Eq. 16's t_{j,s}).
	Before []string
	// Integrates lists removal task IDs absorbed into the wash (ψ=1,
	// Eq. 21): they are skipped and their excess cells flushed by the
	// wash instead.
	Integrates []string
}

// Plan is the rebuilt problem: tasks (base clones plus washes), the
// precedence DAG, and the conflict pairs whose order stays free.
type Plan struct {
	Base   *schedule.Schedule
	Washes []WashSpec

	// Tasks are the cloned tasks in a deterministic order; washes last.
	Tasks []*schedule.Task
	// Index maps task ID to its position in Tasks.
	Index map[string]int
	// Durations are the execution durations (0 for integrated removals).
	Durations []int
	// Edges are precedence pairs (i before j): end_i <= start_j.
	Edges [][2]int
	// FreePairs are conflict-capable pairs whose order the optimizer may
	// choose (each involves at least one wash).
	FreePairs [][2]int
}

// Build assembles the plan.
func Build(base *schedule.Schedule, washes []WashSpec) (*Plan, error) {
	p := &Plan{Base: base, Washes: washes, Index: map[string]int{}}
	integrated := map[string]string{}
	for _, w := range washes {
		for _, rid := range w.Integrates {
			if prev, dup := integrated[rid]; dup {
				return nil, fmt.Errorf("replan: removal %s integrated into both %s and %s", rid, prev, w.ID)
			}
			integrated[rid] = w.ID
		}
	}

	// Clone base tasks in base (start, ID) order for determinism.
	baseTasks := base.SortedByStart()
	for _, t := range baseTasks {
		cp := *t
		cp.Path = grid.NewPath(append([]geom.Point(nil), t.Path.Cells...)...)
		cp.WashTargets = append([]geom.Point(nil), t.WashTargets...)
		cp.ContamCells = append([]geom.Point(nil), t.ContamCells...)
		cp.ExcessCells = append([]geom.Point(nil), t.ExcessCells...)
		cp.SensitiveCells = append([]geom.Point(nil), t.SensitiveCells...)
		if wid, ok := integrated[t.ID]; ok {
			if t.Kind != schedule.Removal {
				return nil, fmt.Errorf("replan: %s is not a removal but was integrated", t.ID)
			}
			cp.Integrated = true
			cp.IntegratedInto = wid
		}
		p.add(&cp, cp.MinDuration)
	}
	// Wash tasks.
	for _, w := range washes {
		if w.Duration <= 0 {
			return nil, fmt.Errorf("replan: wash %s has duration %d", w.ID, w.Duration)
		}
		wt := &schedule.Task{
			ID: w.ID, Kind: schedule.Wash,
			Path:        grid.NewPath(append([]geom.Point(nil), w.Path.Cells...)...),
			Fluid:       "buffer",
			MinDuration: w.Duration,
			WashTargets: append([]geom.Point(nil), w.Targets...),
		}
		p.add(wt, w.Duration)
	}

	if err := p.buildEdges(integrated); err != nil {
		return nil, err
	}
	p.buildFreePairs()
	return p, nil
}

func (p *Plan) add(t *schedule.Task, dur int) {
	p.Index[t.ID] = len(p.Tasks)
	p.Tasks = append(p.Tasks, t)
	if t.Kind == schedule.Removal && t.Integrated {
		dur = 0
	}
	p.Durations = append(p.Durations, dur)
}

func (p *Plan) edge(from, to string) error {
	i, ok := p.Index[from]
	if !ok {
		return fmt.Errorf("replan: unknown task %q in precedence edge", from)
	}
	j, ok := p.Index[to]
	if !ok {
		return fmt.Errorf("replan: unknown task %q in precedence edge", to)
	}
	if i == j {
		return fmt.Errorf("replan: self edge on %q", from)
	}
	p.Edges = append(p.Edges, [2]int{i, j})
	return nil
}

func (p *Plan) buildEdges(integrated map[string]string) error {
	base := p.Base
	// Structural edges (Eqs. 2, 4, 5): derived from task provenance.
	for _, t := range p.Tasks {
		switch t.Kind {
		case schedule.Transport:
			if t.EdgeFrom != "" { // product transport after producer op
				if err := p.edge("op-"+t.EdgeFrom, t.ID); err != nil {
					return err
				}
			}
			if t.EdgeTo != "" { // before consumer op
				if err := p.edge(t.ID, "op-"+t.EdgeTo); err != nil {
					return err
				}
			}
		case schedule.Removal:
			// After its transport, before the consumer op. The matching
			// transport is tr-<from>-<to> or inj-<to>-<i>; removals for
			// injections are named rm-inj-<op>-<i>.
			trID, ok := removalTransportID(t.ID, t.EdgeFrom, t.EdgeTo)
			if !ok {
				return fmt.Errorf("replan: cannot derive transport for removal %s", t.ID)
			}
			if !t.Integrated {
				if err := p.edge(trID, t.ID); err != nil {
					return err
				}
				if t.EdgeTo != "" {
					if err := p.edge(t.ID, "op-"+t.EdgeTo); err != nil {
						return err
					}
				}
			} else {
				// ψ=1: the wash replaces the removal (Eq. 21): wash after
				// the transport, before the consumer op.
				wid := integrated[t.ID]
				if err := p.edge(trID, wid); err != nil {
					return err
				}
				if t.EdgeTo != "" {
					if err := p.edge(wid, "op-"+t.EdgeTo); err != nil {
						return err
					}
				}
				// The removal itself trails the wash (zero duration).
				if err := p.edge(wid, t.ID); err != nil {
					return err
				}
			}
		case schedule.WasteDisposal:
			if t.EdgeFrom != "" {
				if err := p.edge("op-"+t.EdgeFrom, t.ID); err != nil {
					return err
				}
			}
		}
	}
	// Wash window edges (Eq. 16). A culprit that is itself an integrated
	// removal never executes and deposits nothing, so its ordering edge
	// is dropped (its excess is flushed by the absorbing wash instead).
	for wi := range p.Washes {
		w := &p.Washes[wi]
		for _, c := range w.Culprits {
			if _, gone := integrated[c]; gone {
				continue
			}
			if err := p.edge(c, w.ID); err != nil {
				return err
			}
		}
		// A wash flushing a device's cells must complete before the next
		// inputs arrive in that device, or the buffer would carry the
		// fresh inputs away. Strengthen Before with the user ops'
		// incoming transports where that stays consistent with the
		// culprit ordering (see DESIGN.md, holding hazards).
		w.Before = p.strengthenBefore(base, w)
		for _, b := range w.Before {
			if err := p.edge(w.ID, b); err != nil {
				return err
			}
		}
	}
	// Conflict-capable base pairs keep their base order (the free ε of
	// Eq. 8 is fixed to the synthesized order; see DESIGN.md).
	pl := schedule.NewPlacer(base)
	bt := base.SortedByStart()
	for i := 0; i < len(bt); i++ {
		for j := i + 1; j < len(bt); j++ {
			a, b := bt[i], bt[j]
			if !a.Active() || !b.Active() {
				continue
			}
			// Removals absorbed into washes (ψ=1) hold no resources in
			// this plan; their timing is governed by the wash edges.
			if _, ok := integrated[a.ID]; ok {
				continue
			}
			if _, ok := integrated[b.ID]; ok {
				continue
			}
			if !pl.ConflictCapable(a, b) {
				continue
			}
			first, second := a, b
			if b.End <= a.Start {
				first, second = b, a
			}
			p.Edges = append(p.Edges, [2]int{p.Index[first.ID], p.Index[second.ID]})
		}
	}
	// Deduplicate edges.
	seen := map[[2]int]bool{}
	out := p.Edges[:0]
	for _, e := range p.Edges {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	p.Edges = out
	return nil
}

// strengthenBefore extends a wash's Before set: when the wash path
// covers cells of a device and an existing Before user is an operation
// on that device, the operation's incoming transports are added too, so
// the buffer never flushes freshly-arrived inputs out of the device.
// A transport is only added when every culprit ends before it starts in
// the base schedule — otherwise the edge would create a cycle and the
// hazard is left to the simulator's holding report.
func (p *Plan) strengthenBefore(base *schedule.Schedule, w *WashSpec) []string {
	covers := map[*grid.Device]bool{}
	for _, c := range w.Targets {
		if d := base.Chip.DeviceAt(c); d != nil {
			covers[d] = true
		}
	}
	if len(covers) == 0 {
		return w.Before
	}
	out := append([]string(nil), w.Before...)
	maxCulpritEnd := 0
	for _, c := range w.Culprits {
		if ct := base.Task(c); ct != nil && ct.End > maxCulpritEnd {
			maxCulpritEnd = ct.End
		}
	}
	for _, b := range w.Before {
		user := base.Task(b)
		if user == nil || user.Kind != schedule.Operation || !covers[user.Device] {
			continue
		}
		for _, t := range base.Tasks() {
			if t.Kind != schedule.Transport || t.EdgeTo != user.OpID {
				continue
			}
			if t.Start < maxCulpritEnd {
				continue // would contradict culprit ordering
			}
			dup := false
			for _, x := range out {
				if x == t.ID {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, t.ID)
			}
		}
	}
	return out
}

// TransportIDForRemoval reconstructs the transport task ID a removal
// follows. Removal IDs are rm-<from>-<to> or rm-inj-<op>-<i>.
func TransportIDForRemoval(rmID, from, to string) (string, bool) {
	return removalTransportID(rmID, from, to)
}

// removalTransportID reconstructs the transport task ID a removal
// follows. Removal IDs are rm-<from>-<to> or rm-inj-<op>-<i>.
func removalTransportID(rmID, from, to string) (string, bool) {
	if from != "" {
		return "tr-" + from + "-" + to, true
	}
	const pfx = "rm-"
	if len(rmID) > len(pfx) && rmID[:len(pfx)] == pfx {
		return rmID[len(pfx):], true // "rm-inj-o1-1" -> "inj-o1-1"
	}
	return "", false
}

// buildFreePairs finds conflict-capable pairs not ordered by the DAG;
// with base pairs fixed, each free pair involves at least one wash.
func (p *Plan) buildFreePairs() {
	reach := p.reachability()
	pl := schedule.NewPlacer(p.Base)
	n := len(p.Tasks)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := p.Tasks[i], p.Tasks[j]
			if a.Kind != schedule.Wash && b.Kind != schedule.Wash {
				continue
			}
			if !a.Active() || !b.Active() {
				continue
			}
			if !pl.ConflictCapable(a, b) {
				continue
			}
			if reach[i][j] || reach[j][i] {
				continue
			}
			p.FreePairs = append(p.FreePairs, [2]int{i, j})
		}
	}
}

// reachability computes the transitive closure of the DAG.
func (p *Plan) reachability() []map[int]bool {
	n := len(p.Tasks)
	adj := make([][]int, n)
	for _, e := range p.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	reach := make([]map[int]bool, n)
	var dfs func(root, v int)
	dfs = func(root, v int) {
		for _, w := range adj[v] {
			if !reach[root][w] {
				reach[root][w] = true
				dfs(root, w)
			}
		}
	}
	for i := 0; i < n; i++ {
		reach[i] = map[int]bool{}
		dfs(i, i)
	}
	return reach
}

// TopoOrder returns task indices topologically sorted by the DAG, ties
// broken by base start time then ID. It fails on cycles.
func (p *Plan) TopoOrder() ([]int, error) {
	n := len(p.Tasks)
	indeg := make([]int, n)
	adj := make([][]int, n)
	for _, e := range p.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		indeg[e[1]]++
	}
	ready := []int{}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	less := func(a, b int) bool {
		ta, tb := p.Tasks[a], p.Tasks[b]
		if ta.Start != tb.Start {
			return ta.Start < tb.Start
		}
		return ta.ID < tb.ID
	}
	var order []int
	for len(ready) > 0 {
		sort.Slice(ready, func(x, y int) bool { return less(ready[x], ready[y]) })
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, w)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("replan: precedence cycle (%d of %d ordered; stuck: %s)",
			len(order), n, p.describeCycle(indeg))
	}
	return order, nil
}

// describeCycle walks one cycle among the tasks that never reached
// in-degree zero, for error messages.
func (p *Plan) describeCycle(indeg []int) string {
	stuck := map[int]bool{}
	for i, d := range indeg {
		if d > 0 {
			stuck[i] = true
		}
	}
	adj := map[int][]int{}
	for _, e := range p.Edges {
		if stuck[e[0]] && stuck[e[1]] {
			adj[e[1]] = append(adj[e[1]], e[0]) // predecessors
		}
	}
	// Follow predecessors from an arbitrary stuck node: every stuck node
	// has a stuck predecessor, so the walk must close a cycle.
	for start := range stuck {
		seen := map[int]int{}
		path := []int{start}
		seen[start] = 0
		cur := start
		for len(adj[cur]) > 0 {
			cur = adj[cur][0]
			if at, ok := seen[cur]; ok {
				var ids []string
				for _, v := range path[at:] {
					ids = append(ids, p.Tasks[v].ID)
				}
				ids = append(ids, p.Tasks[cur].ID)
				return fmt.Sprintf("cycle %v", ids)
			}
			seen[cur] = len(path)
			path = append(path, cur)
		}
	}
	return "no explicit cycle found"
}

// Greedy rebuilds the schedule: tasks are placed in topological order at
// the earliest conflict-free start after all predecessors end. This is
// the sweep-line style assignment of the DAWO baseline and PDW's ILP
// incumbent.
func (p *Plan) Greedy() (*schedule.Schedule, error) {
	order, err := p.TopoOrder()
	if err != nil {
		return nil, err
	}
	out := schedule.New(p.Base.Chip, p.Base.Assay)
	pl := schedule.NewPlacer(out)
	preds := make([][]int, len(p.Tasks))
	for _, e := range p.Edges {
		preds[e[1]] = append(preds[e[1]], e[0])
	}
	placed := make([]*schedule.Task, len(p.Tasks))
	for _, idx := range order {
		tpl := *p.Tasks[idx] // copy, keep plan immutable
		t := &tpl
		ready := 0
		for _, pi := range preds[idx] {
			if placed[pi] == nil {
				return nil, fmt.Errorf("replan: predecessor of %s not yet placed", t.ID)
			}
			if placed[pi].End > ready {
				ready = placed[pi].End
			}
		}
		if !t.Active() {
			// Integrated removal: trail its wash with zero width.
			t.Start, t.End = ready, ready
			if err := out.Add(t); err != nil {
				return nil, err
			}
			placed[idx] = t
			continue
		}
		if _, err := pl.Place(t, ready, p.Durations[idx]); err != nil {
			return nil, err
		}
		placed[idx] = t
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("replan: greedy rebuild invalid: %w", err)
	}
	return out, nil
}

// Apply materializes a schedule from explicit start times (e.g. the ILP
// solution), indexed like Tasks.
func (p *Plan) Apply(starts []int) (*schedule.Schedule, error) {
	if len(starts) != len(p.Tasks) {
		return nil, fmt.Errorf("replan: %d starts for %d tasks", len(starts), len(p.Tasks))
	}
	out := schedule.New(p.Base.Chip, p.Base.Assay)
	for i, tpl := range p.Tasks {
		cp := *tpl
		cp.Start = starts[i]
		cp.End = starts[i] + p.Durations[i]
		if err := out.Add(&cp); err != nil {
			return nil, err
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("replan: applied schedule invalid: %w", err)
	}
	return out, nil
}
