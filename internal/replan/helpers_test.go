package replan

import (
	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/route"
	"pathdriverwash/internal/washpath"
)

// chainOrderForTest re-exports the washpath chain ordering for tests.
func chainOrderForTest(cells []geom.Point) ([]geom.Point, error) {
	return washpath.ChainOrder(cells)
}

// flushForTest routes a complete flush path avoiding non-target devices.
func flushForTest(chip *grid.Chip, chain []geom.Point) (grid.Path, *grid.Port, *grid.Port, error) {
	tset := map[geom.Point]bool{}
	for _, c := range chain {
		tset[c] = true
	}
	avoid := map[geom.Point]bool{}
	for _, d := range chip.Devices() {
		for _, c := range d.Cells() {
			if !tset[c] {
				avoid[c] = true
			}
		}
	}
	return route.FlushPath(chip, chain, route.Options{AvoidPorts: true, AvoidDevices: avoid})
}
