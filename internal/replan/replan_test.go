package replan

import (
	"strings"
	"testing"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/contam"
	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/schedule"
	"pathdriverwash/internal/synth"
)

// fixture synthesizes a small two-op chain whose transports share the
// street grid, guaranteeing contamination requirements.
func fixture(t *testing.T) (*synth.Result, *contam.Analysis) {
	t.Helper()
	a := assay.New("re")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 2, Output: "f1",
		Reagents: []assay.FluidType{"r1", "r2"}})
	a.MustAddOp(&assay.Operation{ID: "o2", Kind: assay.Mix, Duration: 2, Output: "f2",
		Reagents: []assay.FluidType{"r3"}})
	a.MustAddEdge("o1", "o2")
	res, err := synth.Synthesize(a, synth.Config{
		Devices: []synth.DeviceSpec{{Kind: grid.Mixer, Count: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	an, err := contam.Analyze(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	return res, an
}

func TestBuildWithoutWashesReproducesBase(t *testing.T) {
	res, _ := fixture(t)
	plan, err := Build(res.Schedule, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Tasks) != len(res.Schedule.Tasks()) {
		t.Fatalf("tasks = %d want %d", len(plan.Tasks), len(res.Schedule.Tasks()))
	}
	if len(plan.FreePairs) != 0 {
		t.Fatalf("no washes, so no free pairs; got %v", plan.FreePairs)
	}
	out, err := plan.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if out.Makespan() > res.Schedule.Makespan() {
		t.Fatalf("greedy rebuild %d slower than base %d", out.Makespan(), res.Schedule.Makespan())
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	res, _ := fixture(t)
	plan, err := Build(res.Schedule, nil)
	if err != nil {
		t.Fatal(err)
	}
	order, err := plan.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, len(plan.Tasks))
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range plan.Edges {
		if pos[e[0]] >= pos[e[1]] {
			t.Fatalf("edge %s->%s violated", plan.Tasks[e[0]].ID, plan.Tasks[e[1]].ID)
		}
	}
}

// washFor builds a wash spec from the first contamination requirement
// using the heuristic path constructor.
func washFor(t *testing.T, res *synth.Result, an *contam.Analysis) WashSpec {
	t.Helper()
	if len(an.Requirements) == 0 {
		t.Skip("fixture produced no requirements")
	}
	r := an.Requirements[0]
	// Collect all requirement cells with the same BeforeTask.
	var cells []geom.Point
	culprits := map[string]bool{}
	for _, q := range an.Requirements {
		if q.BeforeTask == r.BeforeTask {
			cells = append(cells, q.Cell)
			for _, c := range q.CulpritTasks {
				culprits[c] = true
			}
		}
	}
	// Chain them via a trivial adjacency walk (cells come from one plug
	// segment, so they form a chain).
	pathCells := cells
	w := WashSpec{
		ID: "w1", Targets: pathCells, Duration: 2,
		Before: []string{r.BeforeTask},
	}
	for c := range culprits {
		w.Culprits = append(w.Culprits, c)
	}
	// Route the path with the shared flush helper through a chain order.
	chain, err := chainOrderForTest(pathCells)
	if err != nil {
		t.Fatalf("chain: %v", err)
	}
	p, _, _, err := flushForTest(res.Chip, chain)
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	w.Path = p
	return w
}

func TestGreedyInsertsWash(t *testing.T) {
	res, an := fixture(t)
	w := washFor(t, res, an)
	plan, err := Build(res.Schedule, []WashSpec{w})
	if err != nil {
		t.Fatal(err)
	}
	out, err := plan.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	wt := out.Task("w1")
	if wt == nil || wt.Kind != schedule.Wash {
		t.Fatal("wash not placed")
	}
	for _, c := range w.Culprits {
		if out.Task(c).End > wt.Start {
			t.Errorf("wash starts before culprit %s ends", c)
		}
	}
	for _, b := range w.Before {
		if wt.End > out.Task(b).Start {
			t.Errorf("wash ends after user %s starts", b)
		}
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFreePairsOnlyInvolveWashes(t *testing.T) {
	res, an := fixture(t)
	w := washFor(t, res, an)
	plan, err := Build(res.Schedule, []WashSpec{w})
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range plan.FreePairs {
		a, b := plan.Tasks[fp[0]], plan.Tasks[fp[1]]
		if a.Kind != schedule.Wash && b.Kind != schedule.Wash {
			t.Errorf("free pair %s/%s has no wash", a.ID, b.ID)
		}
	}
}

func TestApplyMatchesGreedy(t *testing.T) {
	res, an := fixture(t)
	w := washFor(t, res, an)
	plan, err := Build(res.Schedule, []WashSpec{w})
	if err != nil {
		t.Fatal(err)
	}
	g, err := plan.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	starts := make([]int, len(plan.Tasks))
	for i, tk := range plan.Tasks {
		starts[i] = g.Task(tk.ID).Start
	}
	applied, err := plan.Apply(starts)
	if err != nil {
		t.Fatal(err)
	}
	if applied.Makespan() != g.Makespan() {
		t.Fatalf("apply %d != greedy %d", applied.Makespan(), g.Makespan())
	}
}

func TestApplyRejectsWrongLength(t *testing.T) {
	res, _ := fixture(t)
	plan, err := Build(res.Schedule, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Apply([]int{1, 2}); err == nil {
		t.Fatal("wrong-length starts must fail")
	}
}

func TestDuplicateIntegrationRejected(t *testing.T) {
	res, _ := fixture(t)
	rms := res.Schedule.TasksOf(schedule.Removal)
	if len(rms) == 0 {
		t.Skip("no removals")
	}
	w1 := WashSpec{ID: "w1", Duration: 1, Integrates: []string{rms[0].ID}}
	w2 := WashSpec{ID: "w2", Duration: 1, Integrates: []string{rms[0].ID}}
	if _, err := Build(res.Schedule, []WashSpec{w1, w2}); err == nil {
		t.Fatal("double integration must fail")
	}
}

func TestBadWashDurationRejected(t *testing.T) {
	res, _ := fixture(t)
	if _, err := Build(res.Schedule, []WashSpec{{ID: "w", Duration: 0}}); err == nil {
		t.Fatal("zero duration wash must fail")
	}
}

func TestUnknownCulpritRejected(t *testing.T) {
	res, _ := fixture(t)
	w := WashSpec{ID: "w", Duration: 1, Culprits: []string{"nonexistent"}}
	if _, err := Build(res.Schedule, []WashSpec{w}); err == nil {
		t.Fatal("unknown culprit must fail")
	}
}

func TestRemovalTransportID(t *testing.T) {
	if id, ok := removalTransportID("rm-o1-o2", "o1", "o2"); !ok || id != "tr-o1-o2" {
		t.Errorf("got %q %v", id, ok)
	}
	if id, ok := removalTransportID("rm-inj-o1-1", "", "o1"); !ok || id != "inj-o1-1" {
		t.Errorf("got %q %v", id, ok)
	}
	if _, ok := removalTransportID("bogus", "", ""); ok {
		t.Error("bogus id must fail")
	}
}

func TestCycleDetectionReportsCycle(t *testing.T) {
	res, _ := fixture(t)
	// A wash ordered after its own user: guaranteed cycle.
	tr := res.Schedule.TransportFor("o1", "o2")
	if tr == nil {
		t.Skip("no transport")
	}
	w := WashSpec{ID: "w1", Duration: 1,
		Culprits: []string{"op-" + tr.EdgeTo}, // after consumer op
		Before:   []string{tr.ID},             // before its transport
	}
	plan, err := Build(res.Schedule, []WashSpec{w})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	} else if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("error lacks cycle description: %v", err)
	}
	if _, err := plan.Greedy(); err == nil {
		t.Fatal("greedy must refuse a cyclic plan")
	}
}

func TestApplyRejectsInfeasibleStarts(t *testing.T) {
	res, _ := fixture(t)
	plan, err := Build(res.Schedule, nil)
	if err != nil {
		t.Fatal(err)
	}
	starts := make([]int, len(plan.Tasks)) // everything at t=0: conflicts
	if _, err := plan.Apply(starts); err == nil {
		t.Fatal("all-zero starts must violate validation")
	}
}

func TestGreedyIdempotent(t *testing.T) {
	res, an := fixture(t)
	w := washFor(t, res, an)
	plan, err := Build(res.Schedule, []WashSpec{w})
	if err != nil {
		t.Fatal(err)
	}
	g1, err := plan.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := plan.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if g1.Makespan() != g2.Makespan() {
		t.Fatal("Greedy is not idempotent")
	}
	for _, tk := range g1.Tasks() {
		if g2.Task(tk.ID).Start != tk.Start {
			t.Fatalf("task %s start differs across runs", tk.ID)
		}
	}
}
