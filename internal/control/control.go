// Package control models the chip's control layer (the paper's
// Fig. 1(a)/(b)): microvalves sit where control channels cross flow
// channels and pinch the elastomer membrane to block flow. For a given
// chip, valves are synthesized on every junction arm (a flow path is
// isolated by closing the valves on all arms branching off it); for a
// given schedule, an actuation plan assigns each valve its open/close
// timeline and the classic control-pin minimization shares one pressure
// source among valves with identical timelines.
//
// The package provides the control-layer cost metrics a biochip
// designer needs next to PDW's flow-layer metrics: valve count, control
// pin count after sharing, and total valve switching operations (wear).
package control

import (
	"fmt"
	"sort"
	"strings"

	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/schedule"
)

// Arm identifies one valve position: the membrane pinching the channel
// between cell At and its neighbour toward Dir. Each undirected arm is
// represented once, from the lexicographically smaller endpoint.
type Arm struct {
	At geom.Point
	To geom.Point
}

// normArm orders the endpoints deterministically.
func normArm(a, b geom.Point) Arm {
	if b.Y < a.Y || (b.Y == a.Y && b.X < a.X) {
		a, b = b, a
	}
	return Arm{At: a, To: b}
}

// Valve is one synthesized microvalve.
type Valve struct {
	ID  int
	Arm Arm
	// Pin is the control pin driving the valve after sharing (assigned
	// by Plan; -1 before planning).
	Pin int
}

// Layer is the synthesized control layer of a chip.
type Layer struct {
	Chip   *grid.Chip
	Valves []*Valve
	byArm  map[Arm]*Valve
}

// Synthesize places valves on every arm incident to a junction (a
// routable cell with three or more routable neighbours) and on every
// port stub, which suffices to isolate any simple flow path on the
// grid: a path is sealed by closing the branching arms along it.
func Synthesize(chip *grid.Chip) *Layer {
	l := &Layer{Chip: chip, byArm: map[Arm]*Valve{}}
	addArm := func(a, b geom.Point) {
		arm := normArm(a, b)
		if _, dup := l.byArm[arm]; dup {
			return
		}
		v := &Valve{ID: len(l.Valves), Arm: arm, Pin: -1}
		l.Valves = append(l.Valves, v)
		l.byArm[arm] = v
	}
	for _, c := range chip.RoutableCells() {
		nbs := chip.RoutableNeighbors(c)
		if chip.PortAt(c) != nil {
			// Port stub: one valve on its single arm (turning the port
			// on and off).
			for _, n := range nbs {
				addArm(c, n)
			}
			continue
		}
		if len(nbs) >= 3 {
			for _, n := range nbs {
				addArm(c, n)
			}
		}
	}
	sort.Slice(l.Valves, func(i, j int) bool { return lessArm(l.Valves[i].Arm, l.Valves[j].Arm) })
	for i, v := range l.Valves {
		v.ID = i
	}
	return l
}

func lessArm(a, b Arm) bool {
	if a.At.Y != b.At.Y {
		return a.At.Y < b.At.Y
	}
	if a.At.X != b.At.X {
		return a.At.X < b.At.X
	}
	if a.To.Y != b.To.Y {
		return a.To.Y < b.To.Y
	}
	return a.To.X < b.To.X
}

// Valve returns the valve on the arm between two adjacent cells, or nil
// where no valve is needed (straight channel segments).
func (l *Layer) Valve(a, b geom.Point) *Valve {
	return l.byArm[normArm(a, b)]
}

// TaskActuation is the valve configuration one fluidic task requires
// while it runs: Open valves lie on the path itself, Closed valves seal
// the arms branching off it.
type TaskActuation struct {
	TaskID     string
	Start, End int
	Open       []*Valve
	Closed     []*Valve
}

// actuationFor computes the valve sets for one path.
func (l *Layer) actuationFor(t *schedule.Task) TaskActuation {
	act := TaskActuation{TaskID: t.ID, Start: t.Start, End: t.End}
	on := t.Path.CellSet()
	seenOpen := map[int]bool{}
	seenClosed := map[int]bool{}
	for i, c := range t.Path.Cells {
		// Arms along the path must be open.
		if i+1 < t.Path.Len() {
			if v := l.Valve(c, t.Path.Cells[i+1]); v != nil && !seenOpen[v.ID] {
				seenOpen[v.ID] = true
				act.Open = append(act.Open, v)
			}
		}
		// Arms leaving the path must be closed to seal the flow.
		for _, n := range c.Neighbors() {
			if !l.Chip.InBounds(n) || !l.Chip.Routable(n) || on[n] {
				continue
			}
			if v := l.Valve(c, n); v != nil && !seenClosed[v.ID] {
				seenClosed[v.ID] = true
				act.Closed = append(act.Closed, v)
			}
		}
	}
	return act
}

// Plan is the control-layer actuation plan for a schedule.
type Plan struct {
	Layer *Layer
	Tasks []TaskActuation
	// Pins is the number of control pins after timeline sharing.
	Pins int
	// Switches is the total number of valve state transitions over the
	// schedule (an actuator wear metric).
	Switches int
}

// BuildPlan derives the actuation plan for every active fluidic task of
// the schedule, verifies that concurrent tasks never demand conflicting
// valve states, assigns shared control pins, and counts switching.
func BuildPlan(l *Layer, s *schedule.Schedule) (*Plan, error) {
	p := &Plan{Layer: l}
	for _, t := range s.SortedByStart() {
		if !t.Kind.Fluidic() || !t.Active() {
			continue
		}
		p.Tasks = append(p.Tasks, l.actuationFor(t))
	}
	if err := p.checkConflicts(); err != nil {
		return nil, err
	}
	p.assignPins(s.Makespan())
	return p, nil
}

// checkConflicts verifies the invariant that concurrent tasks agree on
// every valve state (guaranteed by path cell-disjointness, asserted
// here as a defense against schedule bugs).
func (p *Plan) checkConflicts() error {
	for i := 0; i < len(p.Tasks); i++ {
		for j := i + 1; j < len(p.Tasks); j++ {
			a, b := p.Tasks[i], p.Tasks[j]
			if a.End <= b.Start || b.End <= a.Start {
				continue
			}
			aOpen := map[int]bool{}
			for _, v := range a.Open {
				aOpen[v.ID] = true
			}
			for _, v := range b.Closed {
				if aOpen[v.ID] {
					return fmt.Errorf("control: tasks %s and %s need valve %d open and closed concurrently",
						a.TaskID, b.TaskID, v.ID)
				}
			}
			bOpen := map[int]bool{}
			for _, v := range b.Open {
				bOpen[v.ID] = true
			}
			for _, v := range a.Closed {
				if bOpen[v.ID] {
					return fmt.Errorf("control: tasks %s and %s need valve %d closed and open concurrently",
						a.TaskID, b.TaskID, v.ID)
				}
			}
		}
	}
	return nil
}

// assignPins builds each valve's closed-timeline signature over the
// schedule and gives valves with identical signatures one shared pin
// (they can be driven by the same pressure source), then counts state
// transitions. Valves that never actuate stay normally open and need no
// pin.
func (p *Plan) assignPins(makespan int) {
	if makespan <= 0 {
		p.Pins = 0
		return
	}
	closedAt := map[int][]bool{} // valve ID -> per-second closed flag
	for _, ta := range p.Tasks {
		for _, v := range ta.Closed {
			tl, ok := closedAt[v.ID]
			if !ok {
				tl = make([]bool, makespan)
				closedAt[v.ID] = tl
			}
			for s := ta.Start; s < ta.End && s < makespan; s++ {
				tl[s] = true
			}
		}
	}
	sig2pin := map[string]int{}
	for _, v := range p.Layer.Valves {
		tl, ok := closedAt[v.ID]
		if !ok {
			v.Pin = -1 // normally open, never driven
			continue
		}
		var sb strings.Builder
		prev := false
		for _, c := range tl {
			if c {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
			if c != prev {
				p.Switches++
				prev = c
			}
		}
		if prev {
			p.Switches++ // release at the end
		}
		sig := sb.String()
		pin, ok := sig2pin[sig]
		if !ok {
			pin = len(sig2pin)
			sig2pin[sig] = pin
		}
		v.Pin = pin
	}
	p.Pins = len(sig2pin)
}

// Stats summarizes the control layer cost.
func (p *Plan) Stats() map[string]int {
	actuated := 0
	for _, v := range p.Layer.Valves {
		if v.Pin >= 0 {
			actuated++
		}
	}
	return map[string]int{
		"valves":          len(p.Layer.Valves),
		"valves_actuated": actuated,
		"control_pins":    p.Pins,
		"switches":        p.Switches,
	}
}
