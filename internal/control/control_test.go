package control

import (
	"testing"
	"time"

	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/pdw"
	"pathdriverwash/internal/schedule"
)

// crossChip: a plus-shaped junction at (2,2) with a port on each end.
//
//	. . I . .
//	. . - . .
//	I - + - O
//	. . - . .
//	. . O . .
func crossChip(t *testing.T) *grid.Chip {
	t.Helper()
	c := grid.NewChip("cross", 5, 5)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	_, err := c.AddPort("in1", grid.FlowPort, geom.Pt(0, 2))
	must(err)
	_, err = c.AddPort("in2", grid.FlowPort, geom.Pt(2, 0))
	must(err)
	_, err = c.AddPort("out1", grid.WastePort, geom.Pt(4, 2))
	must(err)
	_, err = c.AddPort("out2", grid.WastePort, geom.Pt(2, 4))
	must(err)
	for _, p := range []geom.Point{
		{X: 1, Y: 2}, {X: 2, Y: 2}, {X: 3, Y: 2}, {X: 2, Y: 1}, {X: 2, Y: 3},
	} {
		must(c.AddChannel(p))
	}
	must(c.Validate())
	return c
}

func TestSynthesizeValvesAtJunction(t *testing.T) {
	c := crossChip(t)
	l := Synthesize(c)
	// Junction (2,2) has 4 arms; port stubs add 4 more arms, but the
	// arms adjacent to the junction overlap with... count distinct:
	// junction arms: (2,2)-(1,2),(3,2),(2,1),(2,3) = 4.
	// Port stubs: in1-(1,2), in2-(2,1), out1-(3,2), out2-(2,3) = 4.
	if len(l.Valves) != 8 {
		t.Fatalf("valves = %d want 8", len(l.Valves))
	}
	if l.Valve(geom.Pt(2, 2), geom.Pt(1, 2)) == nil {
		t.Error("junction arm valve missing")
	}
	if l.Valve(geom.Pt(1, 2), geom.Pt(2, 2)) == nil {
		t.Error("arm lookup must be direction-agnostic")
	}
	if l.Valve(geom.Pt(0, 0), geom.Pt(0, 1)) != nil {
		t.Error("no valve on empty cells")
	}
}

func TestActuationSealsBranches(t *testing.T) {
	c := crossChip(t)
	l := Synthesize(c)
	// A task flowing west-to-east through the junction.
	path := grid.NewPath(geom.Pt(0, 2), geom.Pt(1, 2), geom.Pt(2, 2), geom.Pt(3, 2), geom.Pt(4, 2))
	task := &schedule.Task{ID: "t", Kind: schedule.Transport, Path: path, Start: 0, End: 2}
	act := l.actuationFor(task)
	closed := map[Arm]bool{}
	for _, v := range act.Closed {
		closed[v.Arm] = true
	}
	// The north and south arms of the junction must be sealed.
	if !closed[normArm(geom.Pt(2, 2), geom.Pt(2, 1))] {
		t.Error("north arm not sealed")
	}
	if !closed[normArm(geom.Pt(2, 2), geom.Pt(2, 3))] {
		t.Error("south arm not sealed")
	}
	// The on-path arms must be open, not closed.
	for _, v := range act.Open {
		if closed[v.Arm] {
			t.Errorf("valve %v both open and closed", v.Arm)
		}
	}
}

func TestBuildPlanOnBenchmark(t *testing.T) {
	b, err := benchmarks.ByName("PCR")
	if err != nil {
		t.Fatal(err)
	}
	syn, err := b.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	l := Synthesize(syn.Chip)
	if len(l.Valves) == 0 {
		t.Fatal("no valves synthesized")
	}
	plan, err := BuildPlan(l, syn.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	st := plan.Stats()
	if st["control_pins"] <= 0 || st["control_pins"] > st["valves_actuated"] {
		t.Errorf("pins = %d actuated = %d", st["control_pins"], st["valves_actuated"])
	}
	if st["switches"] <= 0 {
		t.Error("no switching counted")
	}
	t.Logf("PCR control layer: %v", st)
}

func TestBuildPlanOnWashedSchedule(t *testing.T) {
	b, err := benchmarks.ByName("PCR")
	if err != nil {
		t.Fatal(err)
	}
	syn, err := b.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	res, err := pdw.Optimize(syn.Schedule, pdw.Options{
		HeuristicWindows: true, PathTimeLimit: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	l := Synthesize(syn.Chip)
	plan, err := BuildPlan(l, res.Schedule)
	if err != nil {
		t.Fatalf("washed schedule must be valve-consistent: %v", err)
	}
	if len(plan.Tasks) <= len(syn.Schedule.TasksOf(schedule.Transport)) {
		t.Error("wash tasks missing from actuation plan")
	}
}

func TestPinSharingSavesPins(t *testing.T) {
	b, _ := benchmarks.ByName("IVD")
	syn, err := b.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	l := Synthesize(syn.Chip)
	plan, err := BuildPlan(l, syn.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	st := plan.Stats()
	if st["control_pins"] >= st["valves_actuated"] {
		t.Errorf("sharing saved nothing: pins %d, actuated %d",
			st["control_pins"], st["valves_actuated"])
	}
}

func TestAllBenchmarksValveConsistent(t *testing.T) {
	for _, b := range benchmarks.All() {
		syn, err := b.Synthesize()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		l := Synthesize(syn.Chip)
		if _, err := BuildPlan(l, syn.Schedule); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestEmptyScheduleNoPins(t *testing.T) {
	c := crossChip(t)
	l := Synthesize(c)
	s := schedule.New(c, nil)
	plan, err := BuildPlan(l, s)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Pins != 0 || plan.Switches != 0 {
		t.Fatalf("empty schedule: %+v", plan.Stats())
	}
}
