package demandwash

import (
	"testing"
	"time"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/contam"
	"pathdriverwash/internal/dawo"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/pdw"
	"pathdriverwash/internal/synth"
)

func fixture(t *testing.T) *synth.Result {
	t.Helper()
	a := assay.New("dw-fx")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 2, Output: "f1",
		Reagents: []assay.FluidType{"r1", "r2"}})
	a.MustAddOp(&assay.Operation{ID: "o2", Kind: assay.Mix, Duration: 2, Output: "f2",
		Reagents: []assay.FluidType{"r3"}})
	a.MustAddOp(&assay.Operation{ID: "o3", Kind: assay.Mix, Duration: 2, Output: "f3",
		Reagents: []assay.FluidType{"r4"}})
	a.MustAddEdge("o1", "o2")
	a.MustAddEdge("o2", "o3")
	res, err := synth.Synthesize(a, synth.Config{
		Devices: []synth.DeviceSpec{{Kind: grid.Mixer, Count: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestReachesCleanFixpoint(t *testing.T) {
	res := fixture(t)
	out, err := Optimize(res.Schedule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Schedule.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	an, err := contam.AnalyzeWithPolicy(out.Schedule, policy)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Requirements) != 0 {
		t.Fatalf("outstanding: %v", an.Requirements)
	}
}

func TestWashesSitImmediatelyBeforeUsers(t *testing.T) {
	res := fixture(t)
	out, err := Optimize(res.Schedule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Washes) == 0 {
		t.Skip("fixture produced no washes")
	}
	// The defining property of demand-driven wash: each wash ends at (or
	// nearly at) its earliest user's start — it was postponed maximally.
	for _, w := range out.Washes {
		wt := out.Schedule.Task(w.ID)
		earliest := 1 << 30
		for _, u := range w.Before {
			if ut := out.Schedule.Task(u); ut != nil && ut.Start < earliest {
				earliest = ut.Start
			}
		}
		if earliest == 1<<30 {
			continue
		}
		if earliest-wt.End > 2 {
			t.Errorf("wash %s ends %d but user starts %d: not postponed", w.ID, wt.End, earliest)
		}
	}
}

func TestSlowerThanPDW(t *testing.T) {
	res := fixture(t)
	dd, err := Optimize(res.Schedule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pd, err := pdw.Optimize(res.Schedule, pdw.Options{
		PathTimeLimit: time.Second, WindowTimeLimit: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's critique: postponement serializes washes with reuse,
	// delaying completion versus PDW's optimized windows.
	if dd.Schedule.Makespan() < pd.Schedule.Makespan() {
		t.Errorf("demand-driven (%d) beat PDW (%d): postponement critique not reproduced",
			dd.Schedule.Makespan(), pd.Schedule.Makespan())
	}
}

func TestComparableWashCountToDAWO(t *testing.T) {
	res := fixture(t)
	dd, err := Optimize(res.Schedule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dw, err := dawo.Optimize(res.Schedule, dawo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Same conservative judgement, same path heuristic: wash counts are
	// in the same ballpark (the difference is timing, not necessity).
	if len(dd.Washes) > 2*len(dw.Washes)+2 {
		t.Errorf("demand-driven washes %d wildly above DAWO %d",
			len(dd.Washes), len(dw.Washes))
	}
	m := dd.Schedule.ComputeMetrics(res.Schedule)
	if m.NWash != len(dd.Washes) {
		t.Errorf("metrics N=%d, washes %d", m.NWash, len(dd.Washes))
	}
}

func TestCleanAssayUntouched(t *testing.T) {
	a := assay.New("clean")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 2, Output: "f1",
		Reagents: []assay.FluidType{"r1"}})
	res, err := synth.Synthesize(a, synth.Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Optimize(res.Schedule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Washes) != 0 || out.Schedule.Makespan() != res.Schedule.Makespan() {
		t.Fatal("clean assay must pass through unchanged")
	}
}

func TestPostponedCulpritsNeverIncludeUser(t *testing.T) {
	res := fixture(t)
	g := contam.Group{
		Before:   []string{"op-o2"},
		Culprits: []string{"tr-o1-o2"},
	}
	out := postponedCulprits(res.Schedule, g)
	for _, c := range out {
		if c == "op-o2" {
			t.Fatal("user listed as its own culprit")
		}
	}
	// o2's transport and removal must appear (they gate the user).
	found := map[string]bool{}
	for _, c := range out {
		found[c] = true
	}
	if !found["tr-o1-o2"] {
		t.Error("original culprit lost")
	}
}
