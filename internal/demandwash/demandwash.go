// Package demandwash implements the demand-driven wash heuristic the
// paper discusses as related work ([9], Minhass et al.): wash operations
// are postponed as long as possible, executing only immediately before
// the contaminated resource is reused. As the paper notes, this makes
// conflicts between washes and fluid transportation frequent — every
// wash sits on the critical path right in front of its user — "leading
// to serious delay in assay completion". The implementation shares
// DAWO's conservative contamination judgement and BFS paths; the only
// difference is the postponement: each wash additionally waits for all
// of its user's other inputs, so it runs back-to-back with the reuse.
//
// It exists as a second comparison point and as the subject of the
// postponement ablation bench.
package demandwash

import (
	"fmt"
	"time"

	"pathdriverwash/internal/contam"
	"pathdriverwash/internal/dawo"
	"pathdriverwash/internal/replan"
	"pathdriverwash/internal/schedule"
	"pathdriverwash/internal/washpath"
)

// Options tunes the heuristic.
type Options struct {
	// MaxRounds caps wash-insertion fixpoint rounds (default 60).
	MaxRounds int
	// TimeLimit caps total optimization time (default 60 s).
	TimeLimit time.Duration
}

// Result is the heuristic's output.
type Result struct {
	Schedule *schedule.Schedule
	Washes   []replan.WashSpec
	Rounds   int
}

var policy = contam.Policy{IgnoreFluidTypes: true}

// Optimize inserts maximally postponed washes into the base schedule.
func Optimize(base *schedule.Schedule, opts Options) (*Result, error) {
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 60
	}
	tl := opts.TimeLimit
	if tl <= 0 {
		tl = 60 * time.Second
	}
	deadline := time.Now().Add(tl)

	cur := base
	var washes []replan.WashSpec
	for round := 1; round <= maxRounds; round++ {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("demandwash: time limit after %d rounds", round-1)
		}
		an, err := contam.AnalyzeWithPolicy(cur, policy)
		if err != nil {
			return nil, err
		}
		if len(an.Requirements) == 0 {
			if err := cur.Validate(); err != nil {
				return nil, fmt.Errorf("demandwash: final schedule invalid: %w", err)
			}
			return &Result{Schedule: cur, Washes: washes, Rounds: round - 1}, nil
		}
		groups := contam.GroupRequirements(an.Requirements)
		for _, g := range groups {
			plans, coveredSets, err := washpath.BuildCover(cur.Chip, g.Targets, washpath.Options{})
			if err != nil {
				return nil, fmt.Errorf("demandwash: wash path for %v: %w", g.Targets, err)
			}
			for i, plan := range plans {
				spec := replan.WashSpec{
					ID:       fmt.Sprintf("w%d", len(washes)+1),
					Path:     plan.Path,
					Targets:  coveredSets[i],
					Duration: dawo.WashDuration(cur, plan.Path.Len()),
					Culprits: postponedCulprits(base, g),
					Before:   g.Before,
				}
				washes = append(washes, spec)
			}
		}
		rp, err := replan.Build(base, washes)
		if err != nil {
			return nil, err
		}
		cur, err = rp.Greedy()
		if err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("demandwash: no fixpoint in %d rounds", maxRounds)
}

// postponedCulprits extends the group's culprits with every other
// predecessor of each user task, so the greedy placement can only slot
// the wash immediately before the reuse — the defining postponement of
// the demand-driven heuristic.
func postponedCulprits(base *schedule.Schedule, g contam.Group) []string {
	out := append([]string(nil), g.Culprits...)
	// A merged group may serve several users; a postponement gate must
	// finish before every one of them (base times), or ordering the
	// wash after it would contradict a wash-before-user edge.
	minUserStart := 1 << 30
	for _, u := range g.Before {
		if ut := base.Task(u); ut != nil && ut.Start < minUserStart {
			minUserStart = ut.Start
		}
	}
	add := func(id string) {
		if id == "" {
			return
		}
		gate := base.Task(id)
		if gate == nil || gate.End > minUserStart {
			return
		}
		for _, u := range g.Before {
			if id == u {
				return // never order a wash after its own user
			}
		}
		for _, c := range out {
			if c == id {
				return
			}
		}
		out = append(out, id)
	}
	for _, userID := range g.Before {
		user := base.Task(userID)
		if user == nil {
			continue
		}
		switch user.Kind {
		case schedule.Operation:
			// Wait for the op's transports and removals.
			for _, t := range base.Tasks() {
				if t.EdgeTo == user.OpID &&
					(t.Kind == schedule.Transport || t.Kind == schedule.Removal) {
					add(t.ID)
				}
			}
		case schedule.Transport:
			if user.EdgeFrom != "" {
				add("op-" + user.EdgeFrom) // wait for the producing op
			}
		}
	}
	return out
}
