// Package demandwash implements the demand-driven wash heuristic the
// paper discusses as related work ([9], Minhass et al.): wash operations
// are postponed as long as possible, executing only immediately before
// the contaminated resource is reused. As the paper notes, this makes
// conflicts between washes and fluid transportation frequent — every
// wash sits on the critical path right in front of its user — "leading
// to serious delay in assay completion". The implementation shares
// DAWO's conservative contamination judgement and BFS paths; the only
// difference is the postponement: each wash additionally waits for all
// of its user's other inputs, so it runs back-to-back with the reuse.
//
// It exists as a second comparison point and as the subject of the
// postponement ablation bench.
package demandwash

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pathdriverwash/internal/contam"
	"pathdriverwash/internal/dawo"
	"pathdriverwash/internal/replan"
	"pathdriverwash/internal/schedule"
	"pathdriverwash/internal/solve"
	"pathdriverwash/internal/washpath"
)

// Options tunes the heuristic.
type Options struct {
	// MaxRounds caps wash-insertion fixpoint rounds (default 60).
	MaxRounds int
	// Budget bounds the run; only Budget.Total applies (the heuristic
	// solves no inner ILPs). Expiry degrades gracefully: the remaining
	// fixpoint rounds complete and the clean schedule is returned with
	// Stats.Canceled set.
	Budget solve.Budget
	// TimeLimit caps total optimization time (default 60 s) and errors
	// on expiry.
	//
	// Deprecated: prefer Budget.Total (or a context deadline), which
	// returns the finished schedule instead of an error.
	TimeLimit time.Duration
}

// Result is the heuristic's output.
type Result struct {
	Schedule *schedule.Schedule
	Washes   []replan.WashSpec
	Rounds   int
	// Stats carries the Canceled flag when the budget expired mid-run.
	Stats *solve.Stats
}

var policy = contam.Policy{IgnoreFluidTypes: true}

// Optimize inserts maximally postponed washes into the base schedule;
// see OptimizeContext.
func Optimize(base *schedule.Schedule, opts Options) (*Result, error) {
	return OptimizeContext(context.Background(), base, opts)
}

// OptimizeContext is Optimize under a context. Like DAWO, the fixpoint
// must reach a contamination-free schedule to return anything usable,
// so a canceled ctx or an expired Budget.Total does not abort: the
// remaining rounds complete (pure BFS work) and the clean schedule is
// returned with Stats.Canceled set. Only the deprecated
// Options.TimeLimit errors on expiry, preserving the historical
// contract.
func OptimizeContext(ctx context.Context, base *schedule.Schedule, opts Options) (*Result, error) {
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 60
	}
	tl := opts.TimeLimit
	if tl <= 0 {
		tl = 60 * time.Second
	}
	deadline := time.Now().Add(tl)
	ctx, stop := opts.Budget.Context(ctx)
	defer stop()
	defer func() { solve.ObserveOverrun(ctx) }()
	cp := solve.NewCheckpoint(ctx)

	cur := base
	var washes []replan.WashSpec
	for round := 1; round <= maxRounds; round++ {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("demandwash: %w after %d rounds", solve.ErrBudgetExceeded, round-1)
		}
		an, err := analyzeRound(ctx, &cp, cur)
		if err != nil {
			return nil, err
		}
		if len(an.Requirements) == 0 {
			if err := cur.Validate(); err != nil {
				return nil, fmt.Errorf("demandwash: final schedule invalid: %w", err)
			}
			stats := &solve.Stats{}
			if cp.Err() != nil {
				stats.MarkCanceled()
			}
			return &Result{Schedule: cur, Washes: washes, Rounds: round - 1, Stats: stats}, nil
		}
		groups := contam.GroupRequirements(an.Requirements)
		for _, g := range groups {
			plans, coveredSets, err := washpath.BuildCoverContext(ctx, cur.Chip, g.Targets, washpath.Options{})
			if err != nil {
				return nil, fmt.Errorf("demandwash: wash path for %v: %w", g.Targets, err)
			}
			for i, plan := range plans {
				spec := replan.WashSpec{
					ID:       fmt.Sprintf("w%d", len(washes)+1),
					Path:     plan.Path,
					Targets:  coveredSets[i],
					Duration: dawo.WashDuration(cur, plan.Path.Len()),
					Culprits: postponedCulprits(base, g),
					Before:   g.Before,
				}
				washes = append(washes, spec)
			}
		}
		rp, err := replan.Build(base, washes)
		if err != nil {
			return nil, err
		}
		cur, err = rp.Greedy()
		if err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("demandwash: no fixpoint in %d rounds: %w", maxRounds, solve.ErrBudgetExceeded)
}

// analyzeRound mirrors dawo's round analysis: checkpointed while the
// budget is live, completion mode (plain AnalyzeWithPolicy) once
// cancellation has been observed, because the fixpoint needs a complete
// analysis to converge.
func analyzeRound(ctx context.Context, cp *solve.Checkpoint, s *schedule.Schedule) (*contam.Analysis, error) {
	if !cp.Canceled() {
		an, err := contam.AnalyzeWithPolicyContext(ctx, s, policy)
		if err == nil || !errors.Is(err, solve.ErrBudgetExceeded) {
			return an, err
		}
		cp.Err() // latch the cancellation the aborted analysis observed
	}
	return contam.AnalyzeWithPolicy(s, policy)
}

// postponedCulprits extends the group's culprits with every other
// predecessor of each user task, so the greedy placement can only slot
// the wash immediately before the reuse — the defining postponement of
// the demand-driven heuristic.
func postponedCulprits(base *schedule.Schedule, g contam.Group) []string {
	out := append([]string(nil), g.Culprits...)
	// A merged group may serve several users; a postponement gate must
	// finish before every one of them (base times), or ordering the
	// wash after it would contradict a wash-before-user edge.
	minUserStart := 1 << 30
	for _, u := range g.Before {
		if ut := base.Task(u); ut != nil && ut.Start < minUserStart {
			minUserStart = ut.Start
		}
	}
	add := func(id string) {
		if id == "" {
			return
		}
		gate := base.Task(id)
		if gate == nil || gate.End > minUserStart {
			return
		}
		for _, u := range g.Before {
			if id == u {
				return // never order a wash after its own user
			}
		}
		for _, c := range out {
			if c == id {
				return
			}
		}
		out = append(out, id)
	}
	for _, userID := range g.Before {
		user := base.Task(userID)
		if user == nil {
			continue
		}
		switch user.Kind {
		case schedule.Operation:
			// Wait for the op's transports and removals.
			for _, t := range base.Tasks() {
				if t.EdgeTo == user.OpID &&
					(t.Kind == schedule.Transport || t.Kind == schedule.Removal) {
					add(t.ID)
				}
			}
		case schedule.Transport:
			if user.EdgeFrom != "" {
				add("op-" + user.EdgeFrom) // wait for the producing op
			}
		}
	}
	return out
}
