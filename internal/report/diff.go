package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pathdriverwash/internal/stats"
)

// Verdict classifies one (benchmark, method, metric) pair of a diff.
type Verdict string

const (
	// VerdictImproved: the metric got significantly better (lower).
	VerdictImproved Verdict = "improved"
	// VerdictRegressed: the metric got significantly worse (higher).
	VerdictRegressed Verdict = "regressed"
	// VerdictUnchanged: within noise / below the change threshold.
	VerdictUnchanged Verdict = "unchanged"
	// VerdictMissing: the benchmark exists in only one of the files.
	VerdictMissing Verdict = "missing"
)

// DiffOptions tunes the statistical decision rules of Diff.
type DiffOptions struct {
	// Alpha is the significance level for the Mann–Whitney U test when
	// both sides carry wall-time samples (default 0.05).
	Alpha float64
	// WallThreshold is the minimum relative wall-time change to report
	// in threshold mode, i.e. when either side has no samples (default
	// 0.10 — single-shot wall times are noisy). It doubles as the
	// threshold for budget-limited solution-quality pairs (see
	// qualityThreshold / makespanThreshold).
	WallThreshold float64
	// MinEffect is the minimum relative median shift required alongside
	// statistical significance in sample mode (default 0.005); it keeps
	// microscopic-but-significant timing shifts out of the verdicts.
	MinEffect float64
	// QualityOnly drops the wall_s metric from the comparison, leaving
	// only the deterministic solution-quality metrics. Two runs of the
	// same sweep (e.g. a sharded sweep merged back together versus the
	// unsharded run) must then diff as fully unchanged.
	QualityOnly bool
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.Alpha <= 0 {
		o.Alpha = 0.05
	}
	if o.WallThreshold <= 0 {
		o.WallThreshold = 0.10
	}
	if o.MinEffect <= 0 {
		o.MinEffect = 0.005
	}
	return o
}

// minTestSamples is the smallest per-side sample count for which the
// Mann–Whitney significance test is used. Below 4 samples per side the
// exact two-sided p-value can never drop under alpha = 0.05 (the best
// case at n=3 is 2/20 = 0.1), so "sample mode" would silently classify
// every wall-time change as unchanged; tiny sample sets fall back to
// the fixed-threshold rule on medians instead.
const minTestSamples = 4

// correctnessMetrics are the solution-quality metrics a perf gate must
// never let regress: more washes, longer wash routes, or a longer assay
// mean the optimizer found a worse schedule, not just a slower solve.
var correctnessMetrics = map[string]bool{
	"n_wash": true, "l_wash_mm": true, "t_assay_s": true,
}

// diffMetrics defines the compared metrics in display order. All are
// lower-is-better. Threshold yields the relative change below which a
// pair is "unchanged" in threshold mode, given the compared results:
// solution-quality metrics count any change while the solves completed
// within budget, and loosen to WallThreshold when the recorded search
// was truncated (the numbers are then best-effort, not deterministic).
var diffMetrics = []struct {
	name      string
	value     func(*MethodResult) float64
	samples   func(*MethodResult) []float64
	threshold func(o DiffOptions, method string, old, new *MethodResult) float64
}{
	{"n_wash", func(m *MethodResult) float64 { return float64(m.NWash) }, nil, qualityThreshold},
	{"l_wash_mm", func(m *MethodResult) float64 { return m.LWashMM }, nil, qualityThreshold},
	{"t_delay_s", func(m *MethodResult) float64 { return float64(m.TDelaySeconds) }, nil, qualityThreshold},
	{"t_assay_s", func(m *MethodResult) float64 { return float64(m.TAssaySeconds) }, nil, qualityThreshold},
	{"wall_s", func(m *MethodResult) float64 { return m.WallSeconds },
		func(m *MethodResult) []float64 { return m.WallSamples },
		func(o DiffOptions, _ string, _, _ *MethodResult) float64 { return o.WallThreshold }},
}

// qualityThreshold gates the solution-quality metrics. Their solvers
// are deterministic at fixed budgets, so any change counts (threshold
// 0) — unless the recorded result is budget-limited, in which case it
// is whatever incumbent the cutoff left behind, varies with machine
// load, and only moves beyond WallThreshold count. Budget-limited
// means either search was canceled, or — for PDW — the time-window
// MILP stopped without proving optimality: the makespan metrics read
// the incumbent directly, and ψ-integration re-routes washes around
// the scheduled windows, so even n_wash/l_wash_mm inherit its
// nondeterminism (observed as run-to-run ±mm drifts in quick sweeps).
func qualityThreshold(o DiffOptions, method string, old, new *MethodResult) float64 {
	if old.Canceled || new.Canceled {
		return o.WallThreshold
	}
	if method == "pdw" && (!old.WindowsOptimal || !new.WindowsOptimal) {
		return o.WallThreshold
	}
	return 0
}

// MetricDiff is the comparison of one metric of one method on one
// benchmark between two bench files.
type MetricDiff struct {
	Benchmark string
	Method    string // "dawo" or "pdw"
	Metric    string // schema field name: "n_wash", "wall_s", ...
	// Old and New are the compared values; with samples present they
	// are the sample medians, otherwise the single recorded values.
	Old, New float64
	// RelDelta is (New-Old)/Old; +Inf when Old is zero and New is not,
	// 0 when both are zero.
	RelDelta float64
	Verdict  Verdict
	// P is the Mann–Whitney two-sided p-value when both sides carried
	// samples, NaN in threshold mode.
	P float64
	// Samples is min(len(old), len(new)) sample count, 0 in threshold
	// mode.
	Samples int
}

// significant reports whether the pair was decided by a sample-based
// significance test rather than a fixed threshold.
func (d MetricDiff) significant() bool { return !math.IsNaN(d.P) }

// DiffReport is the outcome of comparing two bench files.
type DiffReport struct {
	// OldGeneratedAt / NewGeneratedAt identify the compared files.
	OldGeneratedAt, NewGeneratedAt string
	// Quick records that both files came from -quick sweeps.
	Quick bool
	// Opts are the decision rules the diff was computed under.
	Opts DiffOptions
	// Diffs holds one entry per (benchmark, method, metric), benchmarks
	// in old-file order (new-only benchmarks appended), metrics in
	// diffMetrics order. Missing benchmarks contribute one entry per
	// method+metric with VerdictMissing.
	Diffs []MetricDiff
	// OnlyOld / OnlyNew list benchmark names present in exactly one
	// file (failures count as absent).
	OnlyOld, OnlyNew []string
}

// Diff compares two bench files with default options; see DiffOpts.
func Diff(old, new *BenchFile) (*DiffReport, error) {
	return DiffOpts(old, new, DiffOptions{})
}

// DiffOpts compares an old (baseline) and new bench file metric by
// metric. Each (benchmark, method, metric) pair is classified as
// improved, regressed, or unchanged — by a Mann–Whitney U test on the
// per-iteration samples when both sides carry them, by a fixed
// relative threshold otherwise — or as missing when the benchmark
// completed in only one file. Quick-mode files are only comparable to
// other quick-mode files: reduced solver budgets change what the
// numbers mean, so mixing grades is refused outright.
func DiffOpts(old, new *BenchFile, opts DiffOptions) (*DiffReport, error) {
	if old == nil || new == nil {
		return nil, fmt.Errorf("diff: nil bench file")
	}
	if old.Quick != new.Quick {
		return nil, fmt.Errorf("diff: refusing to compare a quick run against a full run (old quick=%v, new quick=%v): quick numbers are smoke-test grade", old.Quick, new.Quick)
	}
	opts = opts.withDefaults()
	rep := &DiffReport{
		OldGeneratedAt: old.GeneratedAt,
		NewGeneratedAt: new.GeneratedAt,
		Quick:          old.Quick,
		Opts:           opts,
	}

	oldBy := benchIndex(old)
	newBy := benchIndex(new)
	names := make([]string, 0, len(old.Benchmarks)+len(new.Benchmarks))
	for _, b := range old.Benchmarks {
		names = append(names, b.Name)
	}
	for _, b := range new.Benchmarks {
		if _, ok := oldBy[b.Name]; !ok {
			names = append(names, b.Name)
		}
	}

	for _, name := range names {
		ob, inOld := oldBy[name]
		nb, inNew := newBy[name]
		if !inOld || !inNew {
			if inOld {
				rep.OnlyOld = append(rep.OnlyOld, name)
			} else {
				rep.OnlyNew = append(rep.OnlyNew, name)
			}
			for _, method := range []string{"dawo", "pdw"} {
				for _, m := range diffMetrics {
					if opts.QualityOnly && m.name == "wall_s" {
						continue
					}
					rep.Diffs = append(rep.Diffs, MetricDiff{
						Benchmark: name, Method: method, Metric: m.name,
						Verdict: VerdictMissing, P: math.NaN(),
					})
				}
			}
			continue
		}
		for _, pair := range []struct {
			method   string
			old, new *MethodResult
		}{
			{"dawo", &ob.DAWO, &nb.DAWO},
			{"pdw", &ob.PDW, &nb.PDW},
		} {
			for _, m := range diffMetrics {
				if opts.QualityOnly && m.name == "wall_s" {
					continue
				}
				d := MetricDiff{Benchmark: name, Method: pair.method, Metric: m.name, P: math.NaN()}
				var oldSamples, newSamples []float64
				if m.samples != nil {
					oldSamples, newSamples = m.samples(pair.old), m.samples(pair.new)
				}
				// Use the sample median whenever samples exist on a side:
				// it is a better location estimate than the single shot
				// even when the counterpart side has none.
				d.Old = m.value(pair.old)
				if len(oldSamples) > 0 {
					d.Old = stats.Median(oldSamples)
				}
				d.New = m.value(pair.new)
				if len(newSamples) > 0 {
					d.New = stats.Median(newSamples)
				}
				d.RelDelta = relDelta(d.Old, d.New)
				if len(oldSamples) >= minTestSamples && len(newSamples) >= minTestSamples {
					d.Samples = min(len(oldSamples), len(newSamples))
					u := stats.MannWhitneyU(oldSamples, newSamples)
					d.P = u.P
					d.Verdict = classify(d.RelDelta, u.P < opts.Alpha, opts.MinEffect)
				} else {
					d.Verdict = classify(d.RelDelta, true, m.threshold(opts, pair.method, pair.old, pair.new))
				}
				rep.Diffs = append(rep.Diffs, d)
			}
		}
	}
	return rep, nil
}

func benchIndex(f *BenchFile) map[string]*BenchResult {
	by := make(map[string]*BenchResult, len(f.Benchmarks))
	for i := range f.Benchmarks {
		by[f.Benchmarks[i].Name] = &f.Benchmarks[i]
	}
	return by
}

// relDelta is the relative change from old to new, with the zero
// baseline handled explicitly: 0 -> 0 is no change, 0 -> x>0 is an
// infinite relative increase.
func relDelta(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (new - old) / old
}

// classify turns a relative delta into a verdict. significant is the
// sample-mode significance decision (always true in threshold mode);
// minDelta is the minimum |RelDelta| for the change to count. All
// compared metrics are lower-is-better.
func classify(relDelta float64, significant bool, minDelta float64) Verdict {
	if !significant || math.Abs(relDelta) <= minDelta {
		return VerdictUnchanged
	}
	if relDelta > 0 {
		return VerdictRegressed
	}
	return VerdictImproved
}

// Regressions returns the regressed pairs, in report order.
func (r *DiffReport) Regressions() []MetricDiff {
	var out []MetricDiff
	for _, d := range r.Diffs {
		if d.Verdict == VerdictRegressed {
			out = append(out, d)
		}
	}
	return out
}

// Gate applies the perf-gate policy of `pdwbench -baseline` and
// returns the violating pairs: any regression in a correctness metric
// (n_wash, l_wash_mm, t_assay_s), a wall-time regression beyond
// wallGate (relative, e.g. 0.2 = +20%), or a benchmark present in the
// baseline but missing from the new run (lost coverage is a
// regression too). An empty result means the gate passes.
func (r *DiffReport) Gate(wallGate float64) []MetricDiff {
	var out []MetricDiff
	seenMissing := map[string]bool{}
	onlyOld := map[string]bool{}
	for _, n := range r.OnlyOld {
		onlyOld[n] = true
	}
	for _, d := range r.Diffs {
		switch {
		case d.Verdict == VerdictMissing && onlyOld[d.Benchmark] && !seenMissing[d.Benchmark]:
			seenMissing[d.Benchmark] = true
			out = append(out, d)
		case d.Verdict != VerdictRegressed:
		case correctnessMetrics[d.Metric]:
			out = append(out, d)
		case d.Metric == "wall_s" && d.RelDelta > wallGate:
			out = append(out, d)
		}
	}
	return out
}

// Counts returns the number of pairs per verdict.
func (r *DiffReport) Counts() map[Verdict]int {
	c := make(map[Verdict]int, 4)
	for _, d := range r.Diffs {
		c[d.Verdict]++
	}
	return c
}

// Table renders the report as an aligned human-readable text table,
// listing every changed or missing pair and summarizing the unchanged
// ones.
func (r *DiffReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bench diff: %s -> %s%s\n", orUnknown(r.OldGeneratedAt), orUnknown(r.NewGeneratedAt), quickTag(r.Quick))
	head := fmt.Sprintf("%-14s %-5s %-10s %12s %12s %9s  %-10s %s",
		"Benchmark", "Meth", "Metric", "Old", "New", "Delta", "Verdict", "Significance")
	b.WriteString(head + "\n")
	b.WriteString(strings.Repeat("-", len(head)) + "\n")
	shown := 0
	for _, d := range r.Diffs {
		if d.Verdict == VerdictUnchanged {
			continue
		}
		shown++
		fmt.Fprintf(&b, "%-14s %-5s %-10s %12s %12s %9s  %-10s %s\n",
			d.Benchmark, d.Method, d.Metric,
			formatValue(d), formatNew(d), formatDelta(d.RelDelta), d.Verdict, significance(d))
	}
	counts := r.Counts()
	if shown == 0 {
		b.WriteString("(no changes)\n")
	}
	fmt.Fprintf(&b, "%d improved, %d regressed, %d unchanged, %d missing\n",
		counts[VerdictImproved], counts[VerdictRegressed], counts[VerdictUnchanged], counts[VerdictMissing])
	return b.String()
}

// Markdown renders the report as a GitHub-flavored markdown table (the
// `pdwbench -compare -md` output, pasteable into a PR description).
func (r *DiffReport) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Bench diff: `%s` → `%s`%s\n\n", orUnknown(r.OldGeneratedAt), orUnknown(r.NewGeneratedAt), quickTag(r.Quick))
	b.WriteString("| Benchmark | Method | Metric | Old | New | Δ | Verdict | Significance |\n")
	b.WriteString("|---|---|---|---:|---:|---:|---|---|\n")
	for _, d := range r.Diffs {
		if d.Verdict == VerdictUnchanged {
			continue
		}
		verdict := string(d.Verdict)
		if d.Verdict == VerdictRegressed {
			verdict = "**regressed**"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s | %s | %s |\n",
			d.Benchmark, d.Method, d.Metric,
			formatValue(d), formatNew(d), formatDelta(d.RelDelta), verdict, significance(d))
	}
	counts := r.Counts()
	fmt.Fprintf(&b, "\n%d improved, %d regressed, %d unchanged, %d missing\n",
		counts[VerdictImproved], counts[VerdictRegressed], counts[VerdictUnchanged], counts[VerdictMissing])
	return b.String()
}

func quickTag(quick bool) string {
	if quick {
		return " (quick)"
	}
	return ""
}

func orUnknown(s string) string {
	if s == "" {
		return "?"
	}
	return s
}

func significance(d MetricDiff) string {
	if d.Verdict == VerdictMissing {
		return "-"
	}
	if d.significant() {
		return fmt.Sprintf("p=%.3f (n=%d)", d.P, d.Samples)
	}
	return "threshold"
}

func formatValue(d MetricDiff) string {
	if d.Verdict == VerdictMissing {
		return "-"
	}
	return trimFloat(d.Old)
}

func formatNew(d MetricDiff) string {
	if d.Verdict == VerdictMissing {
		return "-"
	}
	return trimFloat(d.New)
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

func formatDelta(rel float64) string {
	switch {
	case math.IsInf(rel, 1):
		return "+inf%"
	case math.IsNaN(rel):
		return "?"
	default:
		return fmt.Sprintf("%+.1f%%", rel*100)
	}
}

// SortDiffs orders a diff slice by benchmark, then method, then
// metric — handy for stable assertions over Gate output.
func SortDiffs(ds []MetricDiff) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].Benchmark != ds[j].Benchmark {
			return ds[i].Benchmark < ds[j].Benchmark
		}
		if ds[i].Method != ds[j].Method {
			return ds[i].Method < ds[j].Method
		}
		return ds[i].Metric < ds[j].Metric
	})
}
