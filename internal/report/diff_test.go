package report

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// diffBenchFile builds a minimal valid baseline for diff tests.
func diffBenchFile() *BenchFile {
	return &BenchFile{
		SchemaVersion:    BenchSchemaVersion,
		GeneratedAt:      "2026-08-06T10:00:00Z",
		GoVersion:        "go1.22.0",
		TotalWallSeconds: 20,
		Benchmarks: []BenchResult{{
			Name: "PCR", Ops: 7, Devices: 5, Tasks: 15,
			DAWO: MethodResult{NWash: 11, LWashMM: 150, TDelaySeconds: 41, TAssaySeconds: 90, WallSeconds: 0.2},
			PDW: MethodResult{NWash: 7, LWashMM: 93, TDelaySeconds: 26, TAssaySeconds: 75, WallSeconds: 10,
				WindowsOptimal: true},
		}},
	}
}

func clone(f *BenchFile) *BenchFile {
	c := *f
	c.Benchmarks = append([]BenchResult(nil), f.Benchmarks...)
	return &c
}

func findDiff(t *testing.T, r *DiffReport, bench, method, metric string) MetricDiff {
	t.Helper()
	for _, d := range r.Diffs {
		if d.Benchmark == bench && d.Method == method && d.Metric == metric {
			return d
		}
	}
	t.Fatalf("no diff entry for %s/%s/%s", bench, method, metric)
	return MetricDiff{}
}

func TestDiffSelfIsUnchanged(t *testing.T) {
	f := diffBenchFile()
	r, err := Diff(f, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range r.Diffs {
		if d.Verdict != VerdictUnchanged {
			t.Errorf("self-diff %s/%s/%s = %s, want unchanged", d.Benchmark, d.Method, d.Metric, d.Verdict)
		}
	}
	if v := r.Gate(0.2); len(v) != 0 {
		t.Errorf("self-diff gate violations: %+v", v)
	}
	if !strings.Contains(r.Table(), "(no changes)") {
		t.Errorf("self-diff table missing '(no changes)':\n%s", r.Table())
	}
}

func TestDiffRefusesQuickVsFull(t *testing.T) {
	full := diffBenchFile()
	quick := clone(full)
	quick.Quick = true
	if _, err := Diff(full, quick); err == nil || !strings.Contains(err.Error(), "quick") {
		t.Errorf("quick-vs-full diff error = %v, want refusal", err)
	}
	if _, err := Diff(quick, full); err == nil {
		t.Error("quick baseline vs full run must also be refused")
	}
	// Quick against quick is fine: same measurement grade.
	if _, err := Diff(quick, quick); err != nil {
		t.Errorf("quick-vs-quick diff: %v", err)
	}
	if _, err := Diff(nil, full); err == nil {
		t.Error("nil bench file must be refused")
	}
}

// TestDiffInjectedRegression is the acceptance case: perturbing a
// BenchFile in memory must produce a regressed verdict that the
// baseline gate turns into a non-empty violation list (non-zero exit
// in cmd/pdwbench).
func TestDiffInjectedRegression(t *testing.T) {
	old := diffBenchFile()
	new := clone(old)
	new.Benchmarks[0].PDW.NWash = 9          // +2 washes: correctness regression
	new.Benchmarks[0].PDW.LWashMM = 80       // improvement at the same time
	new.Benchmarks[0].PDW.WallSeconds = 10.5 // +5%: below the 10% threshold

	r, err := Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if d := findDiff(t, r, "PCR", "pdw", "n_wash"); d.Verdict != VerdictRegressed {
		t.Errorf("n_wash verdict = %s, want regressed", d.Verdict)
	}
	if d := findDiff(t, r, "PCR", "pdw", "l_wash_mm"); d.Verdict != VerdictImproved {
		t.Errorf("l_wash_mm verdict = %s, want improved", d.Verdict)
	}
	if d := findDiff(t, r, "PCR", "pdw", "wall_s"); d.Verdict != VerdictUnchanged {
		t.Errorf("wall_s +5%% verdict = %s, want unchanged (threshold mode)", d.Verdict)
	}
	viol := r.Gate(0.2)
	if len(viol) != 1 || viol[0].Metric != "n_wash" {
		t.Fatalf("gate violations = %+v, want exactly the n_wash regression", viol)
	}
	if !strings.Contains(r.Markdown(), "**regressed**") {
		t.Errorf("markdown does not flag the regression:\n%s", r.Markdown())
	}
}

func TestDiffWallThresholdMode(t *testing.T) {
	old := diffBenchFile()
	new := clone(old)
	new.Benchmarks[0].PDW.WallSeconds = 15 // +50%
	r, err := Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	d := findDiff(t, r, "PCR", "pdw", "wall_s")
	if d.Verdict != VerdictRegressed || d.significant() {
		t.Errorf("wall_s +50%%: verdict=%s significant=%v, want regressed via threshold", d.Verdict, d.significant())
	}
	if v := r.Gate(0.2); len(v) != 1 || v[0].Metric != "wall_s" {
		t.Errorf("gate(20%%) = %+v, want the wall regression", v)
	}
	// A permissive gate lets pure wall noise through.
	if v := r.Gate(1.0); len(v) != 0 {
		t.Errorf("gate(100%%) = %+v, want none", v)
	}
}

func TestDiffSampleMode(t *testing.T) {
	old := diffBenchFile()
	new := clone(old)
	old.Benchmarks[0].PDW.WallSamples = []float64{10.0, 10.1, 10.2, 10.3, 10.4}
	nb := new.Benchmarks[0]
	nb.PDW.WallSamples = []float64{12.0, 12.1, 12.2, 12.3, 12.4} // clearly slower
	new.Benchmarks[0] = nb

	r, err := Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	d := findDiff(t, r, "PCR", "pdw", "wall_s")
	if d.Verdict != VerdictRegressed {
		t.Errorf("separated samples: verdict = %s, want regressed", d.Verdict)
	}
	if !d.significant() || d.P >= 0.05 || d.Samples != 5 {
		t.Errorf("separated samples: P=%g n=%d, want exact p<0.05 with n=5", d.P, d.Samples)
	}
	if d.Old != 10.2 || d.New != 12.2 {
		t.Errorf("sample mode must compare medians: old=%g new=%g", d.Old, d.New)
	}

	// Overlapping samples: no significance, hence unchanged — even
	// though the single-shot values differ by far more than 10%.
	nb.PDW.WallSamples = []float64{10.1, 9.9, 10.3, 10.0, 10.2}
	nb.PDW.WallSeconds = 30
	new.Benchmarks[0] = nb
	r, err = Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if d := findDiff(t, r, "PCR", "pdw", "wall_s"); d.Verdict != VerdictUnchanged {
		t.Errorf("overlapping samples: verdict = %s, want unchanged", d.Verdict)
	}

	// Significant but microscopic shifts stay below MinEffect.
	nb.PDW.WallSamples = []float64{10.205, 10.206, 10.207, 10.208, 10.209}
	new.Benchmarks[0] = nb
	r, err = Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if d := findDiff(t, r, "PCR", "pdw", "wall_s"); d.Verdict != VerdictUnchanged {
		t.Errorf("sub-MinEffect shift: verdict = %s (P=%g, rel=%g), want unchanged", d.Verdict, d.P, d.RelDelta)
	}
}

// TestDiffEmptySamplesFallBackToThreshold covers the schema-v1
// compatibility contract: old files without wall_samples diff cleanly
// against new files that have them.
func TestDiffEmptySamplesFallBackToThreshold(t *testing.T) {
	old := diffBenchFile() // no samples
	new := clone(old)
	nb := new.Benchmarks[0]
	nb.PDW.WallSamples = []float64{15, 15.1, 15.2}
	nb.PDW.WallSeconds = 15 // +50% single-shot
	new.Benchmarks[0] = nb
	r, err := Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	d := findDiff(t, r, "PCR", "pdw", "wall_s")
	if d.significant() {
		t.Errorf("one-sided samples must fall back to threshold mode (P=%g)", d.P)
	}
	if d.Verdict != VerdictRegressed {
		t.Errorf("verdict = %s, want regressed at +50%%", d.Verdict)
	}
	if d.New != 15.1 {
		t.Errorf("threshold mode must still prefer the sample median: new=%g, want 15.1", d.New)
	}

	// Below minTestSamples on both sides a significance test could
	// never fire at alpha=0.05, so the threshold rule decides.
	old2 := clone(old)
	ob := old2.Benchmarks[0]
	ob.PDW.WallSamples = []float64{10, 10.1, 10.2}
	old2.Benchmarks[0] = ob
	r, err = Diff(old2, new)
	if err != nil {
		t.Fatal(err)
	}
	d = findDiff(t, r, "PCR", "pdw", "wall_s")
	if d.significant() || d.Verdict != VerdictRegressed {
		t.Errorf("3v3 samples: significant=%v verdict=%s, want threshold-mode regression", d.significant(), d.Verdict)
	}
}

// TestDiffBudgetLimitedQuality: solution-quality metrics only gate
// exactly while the recorded solves completed within budget. A
// truncated search (canceled, or a window MILP without an optimality
// proof) leaves a load-dependent incumbent, so small moves are noise —
// the observed failure mode of gating two quick sweeps against each
// other.
func TestDiffBudgetLimitedQuality(t *testing.T) {
	old := diffBenchFile()
	old.Benchmarks[0].PDW.WindowsOptimal = false // MILP hit its budget
	new := clone(old)
	nb := new.Benchmarks[0]
	nb.PDW.TAssaySeconds = 78 // +4%: budget noise, below the 10% threshold
	new.Benchmarks[0] = nb

	r, err := Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if d := findDiff(t, r, "PCR", "pdw", "t_assay_s"); d.Verdict != VerdictUnchanged {
		t.Errorf("unproven MILP +4%% t_assay: verdict = %s, want unchanged", d.Verdict)
	}
	if v := r.Gate(0.2); len(v) != 0 {
		t.Errorf("gate = %+v, want none for budget noise", v)
	}

	// Beyond the threshold it is a regression again, unproven or not.
	nb.PDW.TAssaySeconds = 95 // +27%
	new.Benchmarks[0] = nb
	r, err = Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if d := findDiff(t, r, "PCR", "pdw", "t_assay_s"); d.Verdict != VerdictRegressed {
		t.Errorf("unproven MILP +27%% t_assay: verdict = %s, want regressed", d.Verdict)
	}
	if v := r.Gate(0.2); len(v) != 1 || v[0].Metric != "t_assay_s" {
		t.Errorf("gate = %+v, want the t_assay_s regression", v)
	}

	// ψ-integration re-routes washes around the scheduled windows, so
	// with optimality unproven even l_wash_mm drifts run to run: small
	// moves are noise, large ones still regress.
	nb.PDW.TAssaySeconds = 75
	nb.PDW.LWashMM = 96 // 93 -> 96: +3.2%
	new.Benchmarks[0] = nb
	r, err = Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if d := findDiff(t, r, "PCR", "pdw", "l_wash_mm"); d.Verdict != VerdictUnchanged {
		t.Errorf("unproven MILP +3%% l_wash: verdict = %s, want unchanged", d.Verdict)
	}
	nb.PDW.LWashMM = 120 // +29%
	new.Benchmarks[0] = nb
	r, err = Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if d := findDiff(t, r, "PCR", "pdw", "l_wash_mm"); d.Verdict != VerdictRegressed {
		t.Errorf("unproven MILP +29%% l_wash: verdict = %s, want regressed", d.Verdict)
	}

	// DAWO has no window MILP: its quality metrics stay exactly gated
	// unless its own search was canceled.
	nb.PDW.LWashMM = 93
	nb.DAWO.NWash = 12 // +1 wash, uncanceled
	new.Benchmarks[0] = nb
	r, err = Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if d := findDiff(t, r, "PCR", "dawo", "n_wash"); d.Verdict != VerdictRegressed {
		t.Errorf("+1 DAWO wash: verdict = %s, want regressed", d.Verdict)
	}

	// A canceled search loosens every quality metric of that method:
	// +9% washes is below the threshold, +36% is not.
	old2 := diffBenchFile()
	old2.Benchmarks[0].DAWO.Canceled = true
	new2 := clone(old2)
	nb2 := new2.Benchmarks[0]
	nb2.DAWO.NWash = 12 // 11 -> 12: +9.1%
	new2.Benchmarks[0] = nb2
	r, err = Diff(old2, new2)
	if err != nil {
		t.Fatal(err)
	}
	if d := findDiff(t, r, "PCR", "dawo", "n_wash"); d.Verdict != VerdictUnchanged {
		t.Errorf("canceled DAWO +9%% n_wash: verdict = %s, want unchanged", d.Verdict)
	}
	nb2.DAWO.NWash = 15
	new2.Benchmarks[0] = nb2
	r, err = Diff(old2, new2)
	if err != nil {
		t.Fatal(err)
	}
	if d := findDiff(t, r, "PCR", "dawo", "n_wash"); d.Verdict != VerdictRegressed {
		t.Errorf("canceled DAWO +36%% n_wash: verdict = %s, want regressed", d.Verdict)
	}
}

func TestDiffMissingBenchmarks(t *testing.T) {
	old := diffBenchFile()
	old.Benchmarks = append(old.Benchmarks, BenchResult{
		Name: "IVD", Ops: 12, Devices: 9, Tasks: 24,
		DAWO: MethodResult{NWash: 20, LWashMM: 303, TAssaySeconds: 126, WallSeconds: 1},
		PDW:  MethodResult{NWash: 14, LWashMM: 200, TAssaySeconds: 100, WallSeconds: 5},
	})
	new := diffBenchFile() // IVD gone
	new.Benchmarks = append(new.Benchmarks, BenchResult{
		Name: "Fresh", Ops: 3, Devices: 2, Tasks: 5,
		DAWO: MethodResult{NWash: 1, LWashMM: 10, TAssaySeconds: 30, WallSeconds: 0.1},
		PDW:  MethodResult{NWash: 1, LWashMM: 8, TAssaySeconds: 28, WallSeconds: 0.3},
	})

	r, err := Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.OnlyOld) != 1 || r.OnlyOld[0] != "IVD" {
		t.Errorf("OnlyOld = %v, want [IVD]", r.OnlyOld)
	}
	if len(r.OnlyNew) != 1 || r.OnlyNew[0] != "Fresh" {
		t.Errorf("OnlyNew = %v, want [Fresh]", r.OnlyNew)
	}
	if d := findDiff(t, r, "IVD", "pdw", "n_wash"); d.Verdict != VerdictMissing {
		t.Errorf("IVD verdict = %s, want missing", d.Verdict)
	}
	// A benchmark that vanished from the new run fails the gate once;
	// a newly added benchmark does not.
	viol := r.Gate(0.2)
	if len(viol) != 1 || viol[0].Benchmark != "IVD" || viol[0].Verdict != VerdictMissing {
		t.Errorf("gate = %+v, want one lost-coverage violation for IVD", viol)
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	old := diffBenchFile()
	old.Benchmarks[0].PDW.TDelaySeconds = 0
	old.Benchmarks[0].PDW.NWash = 0

	// Zero stays zero: unchanged, no division blow-up.
	same := clone(old)
	r, err := Diff(old, same)
	if err != nil {
		t.Fatal(err)
	}
	if d := findDiff(t, r, "PCR", "pdw", "t_delay_s"); d.Verdict != VerdictUnchanged || d.RelDelta != 0 {
		t.Errorf("0->0: verdict=%s rel=%g, want unchanged/0", d.Verdict, d.RelDelta)
	}

	// Zero baseline growing: an infinite relative increase, classified
	// as regressed and gated when it is a correctness metric.
	worse := clone(old)
	worse.Benchmarks[0].PDW.TDelaySeconds = 3
	worse.Benchmarks[0].PDW.NWash = 2
	r, err = Diff(old, worse)
	if err != nil {
		t.Fatal(err)
	}
	d := findDiff(t, r, "PCR", "pdw", "n_wash")
	if d.Verdict != VerdictRegressed || !math.IsInf(d.RelDelta, 1) {
		t.Errorf("0->2 n_wash: verdict=%s rel=%g, want regressed/+inf", d.Verdict, d.RelDelta)
	}
	viol := r.Gate(0.2)
	found := false
	for _, v := range viol {
		if v.Metric == "n_wash" {
			found = true
		}
	}
	if !found {
		t.Errorf("gate %+v misses the zero-baseline n_wash regression", viol)
	}
	if !strings.Contains(r.Table(), "+inf%") {
		t.Errorf("table does not render the infinite delta:\n%s", r.Table())
	}
}

// TestDiffReportConcurrentReads drives the read-only report helpers
// from many goroutines; the race gate (`go test -race
// ./internal/report`) turns any shared-state mutation into a failure.
func TestDiffReportConcurrentReads(t *testing.T) {
	old := diffBenchFile()
	new := clone(old)
	new.Benchmarks[0].PDW.NWash = 9
	r, err := Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = r.Table()
				_ = r.Markdown()
				_ = r.Gate(0.2)
				_ = r.Counts()
				_ = r.Regressions()
			}
		}()
	}
	wg.Wait()
}

func TestSortDiffs(t *testing.T) {
	ds := []MetricDiff{
		{Benchmark: "B", Method: "pdw", Metric: "wall_s"},
		{Benchmark: "A", Method: "pdw", Metric: "n_wash"},
		{Benchmark: "A", Method: "dawo", Metric: "wall_s"},
		{Benchmark: "A", Method: "dawo", Metric: "n_wash"},
	}
	SortDiffs(ds)
	want := []string{"A/dawo/n_wash", "A/dawo/wall_s", "A/pdw/n_wash", "B/pdw/wall_s"}
	for i, d := range ds {
		got := d.Benchmark + "/" + d.Method + "/" + d.Metric
		if got != want[i] {
			t.Errorf("ds[%d] = %s, want %s", i, got, want[i])
		}
	}
}

// TestQualityThresholdCanceled pins the cancellation half of
// qualityThreshold's contract, one row per Canceled combination: a
// canceled search on EITHER side of the diff makes that method's
// quality numbers best-effort incumbents, so the gate loosens to
// WallThreshold instead of flagging exact-mode noise; with neither
// side canceled the exact gate (0) applies. The method column matters
// only for the PDW-specific WindowsOptimal rule, which both rows here
// hold satisfied.
func TestQualityThresholdCanceled(t *testing.T) {
	opts := DiffOptions{}.withDefaults()
	cases := []struct {
		name                     string
		oldCanceled, newCanceled bool
		want                     float64
	}{
		{"neither-canceled", false, false, 0},
		{"baseline-canceled", true, false, opts.WallThreshold},
		{"candidate-canceled", false, true, opts.WallThreshold},
		{"both-canceled", true, true, opts.WallThreshold},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old := &MethodResult{NWash: 10, Canceled: tc.oldCanceled, WindowsOptimal: true}
			new := &MethodResult{NWash: 10, Canceled: tc.newCanceled, WindowsOptimal: true}
			for _, method := range []string{"dawo", "pdw"} {
				if got := qualityThreshold(opts, method, old, new); got != tc.want {
					t.Errorf("%s: qualityThreshold = %v, want %v", method, got, tc.want)
				}
			}
		})
	}
}

// TestDiffCanceledCandidateNoFalseVerdicts runs the candidate-canceled
// case end to end: a run whose solver hit its budget reports a
// slightly worse AND a slightly better incumbent on different metrics,
// and neither may surface as a verdict — a false regression would
// block an unrelated change, a false improvement would credit it.
func TestDiffCanceledCandidateNoFalseVerdicts(t *testing.T) {
	old := diffBenchFile()
	new := clone(old)
	nb := new.Benchmarks[0]
	nb.PDW.Canceled = true
	nb.PDW.NWash = 7          // unchanged
	nb.PDW.LWashMM = 97       // 93 -> 97: +4.3%, inside the loosened gate
	nb.PDW.TAssaySeconds = 72 // 75 -> 72: -4%, also inside
	new.Benchmarks[0] = nb

	r, err := Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if d := findDiff(t, r, "PCR", "pdw", "l_wash_mm"); d.Verdict != VerdictUnchanged {
		t.Errorf("canceled candidate +4%% l_wash: verdict = %s, want unchanged", d.Verdict)
	}
	if d := findDiff(t, r, "PCR", "pdw", "t_assay_s"); d.Verdict != VerdictUnchanged {
		t.Errorf("canceled candidate -4%% t_assay: verdict = %s, want unchanged (no false improvement)", d.Verdict)
	}
	if v := r.Gate(0.2); len(v) != 0 {
		t.Errorf("gate = %+v, want none for canceled-candidate noise", v)
	}

	// The loosened gate is not a blank check: a genuinely large
	// regression on a canceled candidate still regresses.
	nb.PDW.LWashMM = 130 // +40%
	new.Benchmarks[0] = nb
	r, err = Diff(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if d := findDiff(t, r, "PCR", "pdw", "l_wash_mm"); d.Verdict != VerdictRegressed {
		t.Errorf("canceled candidate +40%% l_wash: verdict = %s, want regressed", d.Verdict)
	}
}
