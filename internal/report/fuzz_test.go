package report

import (
	"bytes"
	"os"
	"testing"
)

// FuzzReadBenchJSON hardens the bench-file reader against hostile or
// corrupted artifacts: whatever the bytes, ReadBenchJSON must never
// panic, and any file it accepts must satisfy Validate and survive a
// write/read round trip. The real BENCH_pdw.json from `make bench`
// seeds the corpus alongside targeted schema violations (wrong
// version, malformed timestamp, negative counts).
func FuzzReadBenchJSON(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, validBenchFile()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	if seed, err := os.ReadFile("../../BENCH_pdw.json"); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema_version":2,"generated_at":"2026-08-06T12:00:00Z","go_version":"go1.22.0"}`))
	f.Add([]byte(`{"schema_version":1,"generated_at":"yesterday","go_version":"go1.22.0"}`))
	f.Add([]byte(`{"schema_version":1,"generated_at":"2026-08-06T12:00:00Z","go_version":"go1.22.0",` +
		`"benchmarks":[{"name":"PCR","ops":7,"devices":5,"tasks":15,` +
		`"dawo":{"n_wash":-1,"t_assay_s":90},"pdw":{"n_wash":7,"t_assay_s":75}}]}`))
	f.Add([]byte(`{"schema_version":1,"generated_at":"2026-08-06T12:00:00Z","go_version":"go1.22.0",` +
		`"benchmarks":[{"name":"PCR","ops":7,"devices":5,"tasks":15,` +
		`"dawo":{"n_wash":1,"t_assay_s":90,"wall_samples":[-0.5]},"pdw":{"n_wash":7,"t_assay_s":75}}]}`))
	f.Add([]byte(`{"schema_version":1,"total_wall_seconds":-3}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		bf, err := ReadBenchJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything the reader accepts is schema-valid by contract.
		if err := bf.Validate(); err != nil {
			t.Fatalf("ReadBenchJSON accepted a file that fails Validate: %v", err)
		}
		// And round-trips: write it back out, read it again.
		var out bytes.Buffer
		if err := WriteBenchJSON(&out, bf); err != nil {
			t.Fatalf("accepted file failed to serialize: %v", err)
		}
		if _, err := ReadBenchJSON(&out); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
	})
}
