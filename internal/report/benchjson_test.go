package report

import (
	"bytes"
	"strings"
	"testing"
)

func validBenchFile() *BenchFile {
	return &BenchFile{
		SchemaVersion:    BenchSchemaVersion,
		GeneratedAt:      "2026-08-06T12:00:00Z",
		GoVersion:        "go1.22.0",
		Quick:            true,
		Workers:          4,
		TotalWallSeconds: 12.5,
		Benchmarks: []BenchResult{{
			Name: "PCR", Ops: 7, Devices: 5, Tasks: 15,
			DAWO: MethodResult{NWash: 11, LWashMM: 150, TDelaySeconds: 41, TAssaySeconds: 90,
				WallSeconds: 0.2, BBNodes: 10, SimplexPivots: 100},
			PDW: MethodResult{NWash: 7, LWashMM: 93, TDelaySeconds: 26, TAssaySeconds: 75,
				WallSeconds: 1.5, BBNodes: 40, SimplexPivots: 900, WindowsOptimal: true},
		}},
		Metrics: map[string]float64{"pdw_bb_nodes_total": 50},
	}
}

func TestBenchFileRoundTrip(t *testing.T) {
	f := validBenchFile()
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmarks[0].PDW.NWash != 7 || !got.Benchmarks[0].PDW.WindowsOptimal {
		t.Errorf("round trip lost data: %+v", got.Benchmarks[0].PDW)
	}
	if got.Metrics["pdw_bb_nodes_total"] != 50 {
		t.Errorf("metrics snapshot lost: %v", got.Metrics)
	}
}

func TestBenchFileValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*BenchFile)
		wantErr string
	}{
		{"valid", func(f *BenchFile) {}, ""},
		{"wrong schema version", func(f *BenchFile) { f.SchemaVersion = 2 }, "schema_version"},
		{"bad timestamp", func(f *BenchFile) { f.GeneratedAt = "yesterday" }, "RFC 3339"},
		{"empty timestamp", func(f *BenchFile) { f.GeneratedAt = "" }, "RFC 3339"},
		{"date-only timestamp", func(f *BenchFile) { f.GeneratedAt = "2026-08-06" }, "RFC 3339"},
		{"no-zone timestamp", func(f *BenchFile) { f.GeneratedAt = "2026-08-06T12:00:00" }, "RFC 3339"},
		{"impossible timestamp", func(f *BenchFile) { f.GeneratedAt = "2026-13-40T99:99:99Z" }, "RFC 3339"},
		{"negative sample", func(f *BenchFile) {
			f.Benchmarks[0].PDW.WallSamples = []float64{0.5, -0.1}
		}, "wall_samples"},
		{"negative phase", func(f *BenchFile) {
			f.Benchmarks[0].PDW.PhaseSeconds = map[string]float64{"window-milp": -1}
		}, "phase_s"},
		{"negative setup", func(f *BenchFile) {
			f.Benchmarks[0].SetupSeconds = map[string]float64{"synthesis": -1}
		}, "setup_s"},
		{"samples and phases valid", func(f *BenchFile) {
			f.Benchmarks[0].PDW.WallSamples = []float64{0.5, 0.6, 0.7}
			f.Benchmarks[0].PDW.PhaseSeconds = map[string]float64{"window-milp": 0.3}
			f.Benchmarks[0].SetupSeconds = map[string]float64{"synthesis": 0.1}
		}, ""},
		{"missing go version", func(f *BenchFile) { f.GoVersion = "" }, "go_version"},
		{"negative wall", func(f *BenchFile) { f.TotalWallSeconds = -1 }, "total_wall_seconds"},
		{"empty file", func(f *BenchFile) { f.Benchmarks, f.Failures = nil, nil }, "no benchmarks"},
		{"unnamed benchmark", func(f *BenchFile) { f.Benchmarks[0].Name = "" }, "no name"},
		{"duplicate benchmark", func(f *BenchFile) {
			f.Benchmarks = append(f.Benchmarks, f.Benchmarks[0])
		}, "duplicate"},
		{"zero tassay", func(f *BenchFile) { f.Benchmarks[0].PDW.TAssaySeconds = 0 }, "t_assay_s"},
		{"negative nwash", func(f *BenchFile) { f.Benchmarks[0].DAWO.NWash = -1 }, "n_wash"},
		{"failure without error", func(f *BenchFile) {
			f.Failures = []BenchFailure{{Name: "IVD"}}
		}, "needs both"},
		{"result and failure", func(f *BenchFile) {
			f.Failures = []BenchFailure{{Name: "PCR", Error: "boom"}}
		}, "both result and failure"},
		{"failures only is valid", func(f *BenchFile) {
			f.Benchmarks = nil
			f.Failures = []BenchFailure{{Name: "PCR", Error: "boom"}}
		}, ""},
	}
	for _, c := range cases {
		f := validBenchFile()
		c.mutate(f)
		err := f.Validate()
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.wantErr)
		}
	}
}

func TestReadBenchJSONRejectsUnknownFields(t *testing.T) {
	raw := strings.Replace(mustJSON(t), `"quick"`, `"qwick"`, 1)
	if _, err := ReadBenchJSON(strings.NewReader(raw)); err == nil {
		t.Error("unknown field accepted; schema drift would go unnoticed")
	}
}

func mustJSON(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, validBenchFile()); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
