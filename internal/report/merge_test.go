package report

import (
	"bytes"
	"strings"
	"testing"
)

// shardFile builds a valid one-benchmark shard for merge tests.
func shardFile(name, generatedAt string, wall float64) *BenchFile {
	f := validBenchFile()
	f.GeneratedAt = generatedAt
	f.TotalWallSeconds = wall
	f.Benchmarks[0].Name = name
	return f
}

func TestMergeShards(t *testing.T) {
	a := shardFile("c0000-layered-o8", "2026-08-06T12:00:00Z", 10)
	a.Workers = 2
	a.Metrics = map[string]float64{"pdw_bb_nodes_total": 30, "pdw_solves_total": 1}
	b := shardFile("c0001-pipeline-o12", "2026-08-06T11:00:00Z", 5)
	b.Workers = 4
	b.Metrics = map[string]float64{"pdw_bb_nodes_total": 20}
	b.Failures = []BenchFailure{{Name: "c0003-panel-o9", Error: "synthesis: no feasible placement"}}

	m, err := Merge([]*BenchFile{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("merged file invalid: %v", err)
	}
	if got := len(m.Benchmarks); got != 2 {
		t.Fatalf("merged %d benchmarks, want 2", got)
	}
	// Concatenation preserves input order: shard 0's rows come first.
	if m.Benchmarks[0].Name != "c0000-layered-o8" || m.Benchmarks[1].Name != "c0001-pipeline-o12" {
		t.Errorf("merge reordered benchmarks: %s, %s", m.Benchmarks[0].Name, m.Benchmarks[1].Name)
	}
	if len(m.Failures) != 1 || m.Failures[0].Name != "c0003-panel-o9" {
		t.Errorf("failures not carried through: %+v", m.Failures)
	}
	if m.TotalWallSeconds != 15 {
		t.Errorf("wall seconds %g, want summed 15", m.TotalWallSeconds)
	}
	if m.GeneratedAt != "2026-08-06T11:00:00Z" {
		t.Errorf("generated_at %s, want earliest shard's", m.GeneratedAt)
	}
	if m.Workers != 4 {
		t.Errorf("workers %d, want max 4", m.Workers)
	}
	if m.Metrics["pdw_bb_nodes_total"] != 50 || m.Metrics["pdw_solves_total"] != 1 {
		t.Errorf("metrics not summed: %v", m.Metrics)
	}
}

func TestMergeDeterministic(t *testing.T) {
	mk := func() []*BenchFile {
		return []*BenchFile{
			shardFile("s0", "2026-08-06T12:00:00Z", 1),
			shardFile("s1", "2026-08-06T12:00:00Z", 2),
			shardFile("s2", "2026-08-06T12:00:00Z", 3),
		}
	}
	m1, err := Merge(mk())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Merge(mk())
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := WriteBenchJSON(&b1, m1); err != nil {
		t.Fatal(err)
	}
	if err := WriteBenchJSON(&b2, m2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("merging the same shards twice produced different bytes")
	}
}

func TestMergeRoundTrip(t *testing.T) {
	m, err := Merge([]*BenchFile{
		shardFile("a", "2026-08-06T12:00:00Z", 1),
		shardFile("b", "2026-08-06T12:00:00Z", 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchJSON(&buf)
	if err != nil {
		t.Fatalf("merged file does not round-trip: %v", err)
	}
	if len(got.Benchmarks) != 2 || got.TotalWallSeconds != m.TotalWallSeconds {
		t.Errorf("round trip lost data: %+v", got)
	}
}

func TestMergeRejects(t *testing.T) {
	valid := func(name string) *BenchFile { return shardFile(name, "2026-08-06T12:00:00Z", 1) }
	cases := []struct {
		name    string
		files   func() []*BenchFile
		wantErr string
	}{
		{"zero files", func() []*BenchFile { return nil }, "zero files"},
		{"invalid input", func() []*BenchFile {
			f := valid("a")
			f.GoVersion = ""
			return []*BenchFile{f}
		}, "go_version"},
		{"quick mismatch", func() []*BenchFile {
			f := valid("b")
			f.Quick = false
			return []*BenchFile{valid("a"), f}
		}, "quick"},
		{"duplicate result name", func() []*BenchFile {
			return []*BenchFile{valid("a"), valid("a")}
		}, `"a" in both merge inputs 0 and 1`},
		{"result/failure name collision", func() []*BenchFile {
			f := valid("b")
			f.Failures = []BenchFailure{{Name: "a", Error: "boom"}}
			return []*BenchFile{valid("a"), f}
		}, `"a" in both merge inputs 0 and 1`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Merge(tc.files())
			if err == nil {
				t.Fatalf("merge accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestMergeSingleFileIdentity(t *testing.T) {
	f := shardFile("only", "2026-08-06T12:00:00Z", 7)
	m, err := Merge([]*BenchFile{f})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Benchmarks) != 1 || m.Benchmarks[0].Name != "only" || m.TotalWallSeconds != 7 {
		t.Errorf("single-file merge changed content: %+v", m)
	}
}
