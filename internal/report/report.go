// Package report renders the evaluation artifacts of Sec. IV: the
// Table II comparison (N_wash, L_wash, T_delay, T_assay with improvement
// percentages), and the Fig. 4 / Fig. 5 bar data (average operation
// waiting time, total wash time), as ASCII tables, CSV, and simple
// ASCII bar charts.
package report

import (
	"fmt"
	"strings"
)

// Row is one benchmark's measured comparison.
type Row struct {
	Benchmark string
	// Shape holds the |O|/|D|/|E| triple.
	Ops, Devices, Tasks int

	DAWONWash, PDWNWash   int
	DAWOLWash, PDWLWash   float64 // mm
	DAWOTDelay, PDWTDelay int     // s
	DAWOTAssay, PDWTAssay int     // s

	// Fig. 4 / Fig. 5 series.
	DAWOAvgWait, PDWAvgWait   float64 // s
	DAWOWashTime, PDWWashTime int     // s

	// Buffer fluid consumption (mm of buffer column, Sec. I's cost).
	DAWOBuffer, PDWBuffer float64
}

// Improvement returns the percentage reduction from a to b ((a-b)/a).
func Improvement(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (a - b) / a * 100
}

// TableII renders the paper's Table II layout for the measured rows.
func TableII(rows []Row) string {
	var b strings.Builder
	head := fmt.Sprintf("%-14s %-11s | %22s | %28s | %22s | %24s",
		"Benchmark", "|O|/|D|/|E|",
		"N_wash  DAWO  PDW  Im%", "L_wash(mm)  DAWO   PDW  Im%",
		"T_delay DAWO  PDW  Im%", "T_assay  DAWO   PDW  Im%")
	b.WriteString(head + "\n")
	b.WriteString(strings.Repeat("-", len(head)) + "\n")
	var sumN, sumL, sumD, sumA float64
	for _, r := range rows {
		imN := Improvement(float64(r.DAWONWash), float64(r.PDWNWash))
		imL := Improvement(r.DAWOLWash, r.PDWLWash)
		imD := Improvement(float64(r.DAWOTDelay), float64(r.PDWTDelay))
		imA := Improvement(float64(r.DAWOTAssay), float64(r.PDWTAssay))
		sumN += imN
		sumL += imL
		sumD += imD
		sumA += imA
		fmt.Fprintf(&b, "%-14s %2d/%2d/%2d    | %13d %4d %5.2f | %16.0f %5.0f %5.2f | %12d %4d %6.2f | %14d %5d %5.2f\n",
			r.Benchmark, r.Ops, r.Devices, r.Tasks,
			r.DAWONWash, r.PDWNWash, imN,
			r.DAWOLWash, r.PDWLWash, imL,
			r.DAWOTDelay, r.PDWTDelay, imD,
			r.DAWOTAssay, r.PDWTAssay, imA)
	}
	n := float64(len(rows))
	if n > 0 {
		fmt.Fprintf(&b, "%-14s %-11s | %18s %5.2f | %22s %5.2f | %17s %6.2f | %20s %5.2f\n",
			"Average", "", "", sumN/n, "", sumL/n, "", sumD/n, "", sumA/n)
	}
	return b.String()
}

// CSV renders the rows as comma-separated values with a header.
func CSV(rows []Row) string {
	var b strings.Builder
	b.WriteString("benchmark,ops,devices,tasks," +
		"dawo_nwash,pdw_nwash,dawo_lwash_mm,pdw_lwash_mm," +
		"dawo_tdelay_s,pdw_tdelay_s,dawo_tassay_s,pdw_tassay_s," +
		"dawo_avgwait_s,pdw_avgwait_s,dawo_washtime_s,pdw_washtime_s," +
		"dawo_buffer_mm,pdw_buffer_mm\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%.1f,%.1f,%d,%d,%d,%d,%.2f,%.2f,%d,%d,%.1f,%.1f\n",
			r.Benchmark, r.Ops, r.Devices, r.Tasks,
			r.DAWONWash, r.PDWNWash, r.DAWOLWash, r.PDWLWash,
			r.DAWOTDelay, r.PDWTDelay, r.DAWOTAssay, r.PDWTAssay,
			r.DAWOAvgWait, r.PDWAvgWait, r.DAWOWashTime, r.PDWWashTime,
			r.DAWOBuffer, r.PDWBuffer)
	}
	return b.String()
}

// BarChart renders grouped horizontal bars comparing two series per
// label, in the spirit of the paper's Fig. 4 / Fig. 5 column charts.
func BarChart(title, unit string, labels []string, dawo, pdw []float64) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	maxV := 0.0
	for i := range labels {
		if dawo[i] > maxV {
			maxV = dawo[i]
		}
		if pdw[i] > maxV {
			maxV = pdw[i]
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	const width = 46
	for i, l := range labels {
		db := int(dawo[i] / maxV * width)
		pb := int(pdw[i] / maxV * width)
		fmt.Fprintf(&b, "%-14s DAWO %-*s %6.1f %s\n", l, width, strings.Repeat("#", db), dawo[i], unit)
		fmt.Fprintf(&b, "%-14s PDW  %-*s %6.1f %s\n", "", width, strings.Repeat("=", pb), pdw[i], unit)
	}
	return b.String()
}

// Fig4 renders the average-waiting-time comparison.
func Fig4(rows []Row) string {
	labels, d, p := series(rows, func(r Row) (float64, float64) { return r.DAWOAvgWait, r.PDWAvgWait })
	return BarChart("Fig. 4: average waiting time of biochemical operations", "s", labels, d, p)
}

// Fig5 renders the total-wash-time comparison.
func Fig5(rows []Row) string {
	labels, d, p := series(rows, func(r Row) (float64, float64) {
		return float64(r.DAWOWashTime), float64(r.PDWWashTime)
	})
	return BarChart("Fig. 5: total wash time", "s", labels, d, p)
}

func series(rows []Row, f func(Row) (float64, float64)) ([]string, []float64, []float64) {
	labels := make([]string, len(rows))
	d := make([]float64, len(rows))
	p := make([]float64, len(rows))
	for i, r := range rows {
		labels[i] = r.Benchmark
		d[i], p[i] = f(r)
	}
	return labels, d, p
}

// PaperComparison renders measured-vs-paper improvement percentages for
// EXPERIMENTS.md: per benchmark and metric, the paper's reduction and
// the measured reduction side by side.
type PaperComparison struct {
	Benchmark string
	Metric    string
	PaperIm   float64
	OursIm    float64
}

// ComparisonTable renders the paper-vs-measured reductions in the
// caller's row order.
func ComparisonTable(cs []PaperComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-10s %14s %14s\n", "Benchmark", "Metric", "Paper Im%", "Measured Im%")
	b.WriteString(strings.Repeat("-", 56) + "\n")
	for _, c := range cs {
		fmt.Fprintf(&b, "%-14s %-10s %14.2f %14.2f\n", c.Benchmark, c.Metric, c.PaperIm, c.OursIm)
	}
	return b.String()
}
