package report

import (
	"strings"
	"testing"
)

func sampleRows() []Row {
	return []Row{
		{
			Benchmark: "PCR", Ops: 7, Devices: 5, Tasks: 15,
			DAWONWash: 4, PDWNWash: 3,
			DAWOLWash: 110, PDWLWash: 80,
			DAWOTDelay: 10, PDWTDelay: 7,
			DAWOTAssay: 33, PDWTAssay: 30,
			DAWOAvgWait: 5, PDWAvgWait: 2.5,
			DAWOWashTime: 12, PDWWashTime: 9,
		},
		{
			Benchmark: "IVD", Ops: 12, Devices: 9, Tasks: 24,
			DAWONWash: 10, PDWNWash: 6,
			DAWOLWash: 200, PDWLWash: 150,
			DAWOTDelay: 21, PDWTDelay: 16,
			DAWOTAssay: 51, PDWTAssay: 46,
			DAWOAvgWait: 8, PDWAvgWait: 4,
			DAWOWashTime: 20, PDWWashTime: 14,
		},
	}
}

func TestImprovement(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{4, 3, 25},
		{110, 80, 27.2727272727},
		{10, 10, 0},
		{0, 5, 0}, // guarded division
	}
	for _, c := range cases {
		got := Improvement(c.a, c.b)
		if diff := got - c.want; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("Improvement(%g,%g) = %g want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestTableII(t *testing.T) {
	s := TableII(sampleRows())
	for _, want := range []string{"PCR", "IVD", "Average", "N_wash", "L_wash", "T_delay", "T_assay", "25.00", "27.27"} {
		if !strings.Contains(s, want) {
			t.Errorf("TableII missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // header, rule, 2 rows, average
		t.Errorf("TableII has %d lines:\n%s", len(lines), s)
	}
}

func TestCSV(t *testing.T) {
	s := CSV(sampleRows())
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "benchmark,") {
		t.Errorf("missing header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "PCR,7,5,15,4,3,110.0,80.0,10,7,33,30,") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestBarChartScaling(t *testing.T) {
	s := BarChart("t", "s", []string{"a", "b"}, []float64{10, 5}, []float64{5, 2.5})
	if !strings.Contains(s, "t\n") {
		t.Error("missing title")
	}
	// Largest value gets the full bar width.
	if !strings.Contains(s, strings.Repeat("#", 46)) {
		t.Errorf("max bar not full width:\n%s", s)
	}
	if strings.Count(s, "\n") != 5 { // title + 2 groups x 2 lines
		t.Errorf("unexpected line count:\n%s", s)
	}
}

func TestBarChartZeroSeries(t *testing.T) {
	s := BarChart("t", "s", []string{"a"}, []float64{0}, []float64{0})
	if !strings.Contains(s, "0.0") {
		t.Errorf("zero chart wrong:\n%s", s)
	}
}

func TestFig4Fig5(t *testing.T) {
	rows := sampleRows()
	f4 := Fig4(rows)
	if !strings.Contains(f4, "waiting time") || !strings.Contains(f4, "PCR") {
		t.Errorf("Fig4 wrong:\n%s", f4)
	}
	f5 := Fig5(rows)
	if !strings.Contains(f5, "total wash time") || !strings.Contains(f5, "IVD") {
		t.Errorf("Fig5 wrong:\n%s", f5)
	}
}

func TestComparisonTable(t *testing.T) {
	s := ComparisonTable([]PaperComparison{
		{Benchmark: "PCR", Metric: "N_wash", PaperIm: 25, OursIm: 23.1},
	})
	if !strings.Contains(s, "PCR") || !strings.Contains(s, "23.10") || !strings.Contains(s, "25.00") {
		t.Errorf("comparison table wrong:\n%s", s)
	}
}
