package report

import (
	"math"
	"strings"
	"testing"
)

// goldenRows is a fixed fixture whose renders are pinned byte-for-byte
// below. Any formatting change to TableII/CSV must update the goldens
// deliberately — downstream scripts parse these outputs.
func goldenRows() []Row {
	rows := sampleRows()
	rows[0].DAWOBuffer, rows[0].PDWBuffer = 22, 16
	rows[1].DAWOBuffer, rows[1].PDWBuffer = 40, 30
	return rows
}

const goldenTableII = "Benchmark      |O|/|D|/|E| | N_wash  DAWO  PDW  Im% |  L_wash(mm)  DAWO   PDW  Im% | T_delay DAWO  PDW  Im% | T_assay  DAWO   PDW  Im%\n" +
	"--------------------------------------------------------------------------------------------------------------------------------------\n" +
	"PCR             7/ 5/15    |             4    3 25.00 |              110    80 27.27 |           10    7  30.00 |             33    30  9.09\n" +
	"IVD            12/ 9/24    |            10    6 40.00 |              200   150 25.00 |           21   16  23.81 |             51    46  9.80\n" +
	"Average                    |                    32.50 |                        26.14 |                    26.90 |                       9.45\n"

const goldenCSV = "benchmark,ops,devices,tasks," +
	"dawo_nwash,pdw_nwash,dawo_lwash_mm,pdw_lwash_mm," +
	"dawo_tdelay_s,pdw_tdelay_s,dawo_tassay_s,pdw_tassay_s," +
	"dawo_avgwait_s,pdw_avgwait_s,dawo_washtime_s,pdw_washtime_s," +
	"dawo_buffer_mm,pdw_buffer_mm\n" +
	"PCR,7,5,15,4,3,110.0,80.0,10,7,33,30,5.00,2.50,12,9,22.0,16.0\n" +
	"IVD,12,9,24,10,6,200.0,150.0,21,16,51,46,8.00,4.00,20,14,40.0,30.0\n"

func TestTableIIGolden(t *testing.T) {
	got := TableII(goldenRows())
	if got != goldenTableII {
		t.Errorf("TableII output drifted from golden.\ngot:\n%s\nwant:\n%s", got, goldenTableII)
	}
}

func TestCSVGolden(t *testing.T) {
	got := CSV(goldenRows())
	if got != goldenCSV {
		t.Errorf("CSV output drifted from golden.\ngot:\n%s\nwant:\n%s", got, goldenCSV)
	}
}

func TestTableIIEmpty(t *testing.T) {
	s := TableII(nil)
	if strings.Contains(s, "Average") {
		t.Errorf("empty table must not print an average row:\n%s", s)
	}
	if lines := strings.Split(strings.TrimRight(s, "\n"), "\n"); len(lines) != 2 {
		t.Errorf("empty table should be header + rule, got %d lines", len(lines))
	}
}

func TestImprovementEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		a, b float64
		want float64
	}{
		{"zero baseline guarded", 0, 5, 0},
		{"both zero", 0, 0, 0},
		{"no change", 7, 7, 0},
		{"full reduction", 8, 0, 100},
		{"negative improvement (regression)", 10, 15, -50},
		{"negative baseline", -10, -5, 50},
	}
	for _, c := range cases {
		if got := Improvement(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: Improvement(%g,%g) = %g, want %g", c.name, c.a, c.b, got, c.want)
		}
	}
}
