package report

import (
	"fmt"
)

// Merge combines per-shard bench files from one sharded sweep into a
// single artifact the regression radar can diff. Benchmarks and
// failures concatenate in input order (deterministic: shard files are
// passed in shard order, and each shard preserves its own sweep
// order), wall-clock totals and metrics sum, and the merged file
// carries the earliest GeneratedAt so re-merging is reproducible.
//
// Shards must be homogeneous: same schema version, same Quick flag
// (quick and full numbers must never mix — the same rule Diff
// enforces), and disjoint benchmark names. A name appearing in two
// shards means the shard split was wrong, not that one should win.
func Merge(files []*BenchFile) (*BenchFile, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("benchjson: merge of zero files")
	}
	for i, f := range files {
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("benchjson: merge input %d: %w", i, err)
		}
		if f.Quick != files[0].Quick {
			return nil, fmt.Errorf("benchjson: merge input %d: quick=%v but input 0 has quick=%v",
				i, f.Quick, files[0].Quick)
		}
	}
	out := &BenchFile{
		SchemaVersion: BenchSchemaVersion,
		GeneratedAt:   files[0].GeneratedAt,
		GoVersion:     files[0].GoVersion,
		Quick:         files[0].Quick,
	}
	seen := map[string]int{}
	for i, f := range files {
		if f.GeneratedAt < out.GeneratedAt {
			out.GeneratedAt = f.GeneratedAt
		}
		if f.Workers > out.Workers {
			out.Workers = f.Workers
		}
		out.TotalWallSeconds += f.TotalWallSeconds
		for _, b := range f.Benchmarks {
			if j, dup := seen[b.Name]; dup {
				return nil, fmt.Errorf("benchjson: benchmark %q in both merge inputs %d and %d",
					b.Name, j, i)
			}
			seen[b.Name] = i
			out.Benchmarks = append(out.Benchmarks, b)
		}
		for _, fl := range f.Failures {
			if j, dup := seen[fl.Name]; dup {
				return nil, fmt.Errorf("benchjson: benchmark %q in both merge inputs %d and %d",
					fl.Name, j, i)
			}
			seen[fl.Name] = i
			out.Failures = append(out.Failures, fl)
		}
		for k, v := range f.Metrics {
			if out.Metrics == nil {
				out.Metrics = map[string]float64{}
			}
			out.Metrics[k] += v
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("benchjson: merged file invalid: %w", err)
	}
	return out, nil
}
