package report

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// BenchSchemaVersion is the current bench-file schema. Consumers should
// reject files with a greater major version; additions within version 1
// are strictly backward compatible (new optional fields only).
const BenchSchemaVersion = 1

// BenchFile is the machine-readable result of a cmd/pdwbench sweep
// (-json out.json, or BENCH_pdw.json from `make bench`). The schema is
// stable: field names are part of the contract and never change within
// a schema version.
type BenchFile struct {
	SchemaVersion int    `json:"schema_version"`
	GeneratedAt   string `json:"generated_at"` // RFC 3339 UTC
	GoVersion     string `json:"go_version"`
	// Quick marks a -quick run (reduced solver budgets); quick numbers
	// are smoke-test grade and must not be compared against full runs.
	Quick            bool    `json:"quick"`
	Workers          int     `json:"workers"`
	TotalWallSeconds float64 `json:"total_wall_seconds"`
	// Benchmarks holds one entry per benchmark that completed.
	Benchmarks []BenchResult `json:"benchmarks"`
	// Failures lists benchmarks that did not complete; a sweep with
	// failures still reports every row it could produce.
	Failures []BenchFailure `json:"failures,omitempty"`
	// Metrics is the process-wide observability counter snapshot taken
	// after the sweep (histogram families appear as _count/_sum pairs).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// BenchResult is one benchmark's measured Table II quantities for both
// methods plus the solver-effort telemetry of the PDW run.
type BenchResult struct {
	Name    string `json:"name"`
	Ops     int    `json:"ops"`
	Devices int    `json:"devices"`
	Tasks   int    `json:"tasks"`

	// SetupSeconds breaks down the wall time of the shared pipeline
	// stages that precede both optimizers (keys "synthesis" and
	// "compress-base"). Optional within schema v1: files written before
	// the regression radar omit it.
	SetupSeconds map[string]float64 `json:"setup_s,omitempty"`

	DAWO MethodResult `json:"dawo"`
	PDW  MethodResult `json:"pdw"`
}

// MethodResult is one optimizer's metrics on one benchmark.
type MethodResult struct {
	NWash           int     `json:"n_wash"`
	LWashMM         float64 `json:"l_wash_mm"`
	TDelaySeconds   int     `json:"t_delay_s"`
	TAssaySeconds   int     `json:"t_assay_s"`
	AvgWaitSeconds  float64 `json:"avg_wait_s"`
	WashTimeSeconds int     `json:"wash_time_s"`
	BufferMM        float64 `json:"buffer_mm"`
	WallSeconds     float64 `json:"wall_s"`
	BBNodes         int     `json:"bb_nodes"`
	BBPruned        int     `json:"bb_pruned"`
	SimplexPivots   int     `json:"simplex_pivots"`
	WindowsOptimal  bool    `json:"windows_optimal,omitempty"`
	Canceled        bool    `json:"canceled,omitempty"`

	// WallSamples are the per-iteration wall times (seconds) of a
	// `pdwbench -count N` sweep, one entry per completed iteration;
	// WallSeconds is then the first iteration's time. Optional within
	// schema v1: single-shot sweeps omit it, and Diff falls back to
	// fixed-threshold comparison when either side carries too few
	// samples for a significance test.
	WallSamples []float64 `json:"wall_samples,omitempty"`
	// PhaseSeconds breaks the method's wall time down by pipeline phase
	// (solve.Stats phase names: "wash-insertion", "window-milp",
	// "verify", ...), summed across rounds. Optional within schema v1.
	PhaseSeconds map[string]float64 `json:"phase_s,omitempty"`
}

// BenchFailure records one benchmark that failed to complete.
type BenchFailure struct {
	Name  string `json:"name"`
	Error string `json:"error"`
}

// Validate checks the structural invariants of the schema: version,
// parseable timestamp, unique non-empty benchmark names, and sane
// (non-negative) measurements. It is what `pdwbench -validate` and the
// `make bench-smoke` gate run against generated files.
func (f *BenchFile) Validate() error {
	if f.SchemaVersion != BenchSchemaVersion {
		return fmt.Errorf("benchjson: schema_version %d, want %d", f.SchemaVersion, BenchSchemaVersion)
	}
	if _, err := time.Parse(time.RFC3339, f.GeneratedAt); err != nil {
		return fmt.Errorf("benchjson: generated_at %q is not RFC 3339: %w", f.GeneratedAt, err)
	}
	if f.GoVersion == "" {
		return fmt.Errorf("benchjson: go_version is empty")
	}
	if f.TotalWallSeconds < 0 {
		return fmt.Errorf("benchjson: total_wall_seconds %g is negative", f.TotalWallSeconds)
	}
	if len(f.Benchmarks) == 0 && len(f.Failures) == 0 {
		return fmt.Errorf("benchjson: no benchmarks and no failures")
	}
	seen := map[string]bool{}
	for i, b := range f.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("benchjson: benchmarks[%d] has no name", i)
		}
		if seen[b.Name] {
			return fmt.Errorf("benchjson: duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		if b.Ops <= 0 || b.Tasks <= 0 {
			return fmt.Errorf("benchjson: %s: ops=%d tasks=%d must be positive", b.Name, b.Ops, b.Tasks)
		}
		for phase, sec := range b.SetupSeconds {
			if sec < 0 {
				return fmt.Errorf("benchjson: %s: setup_s[%s] %g is negative", b.Name, phase, sec)
			}
		}
		for _, m := range []struct {
			method string
			r      MethodResult
		}{{"dawo", b.DAWO}, {"pdw", b.PDW}} {
			if err := m.r.validate(); err != nil {
				return fmt.Errorf("benchjson: %s: %s: %w", b.Name, m.method, err)
			}
		}
	}
	for i, fl := range f.Failures {
		if fl.Name == "" || fl.Error == "" {
			return fmt.Errorf("benchjson: failures[%d] needs both name and error", i)
		}
		if seen[fl.Name] {
			return fmt.Errorf("benchjson: %q listed as both result and failure", fl.Name)
		}
	}
	return nil
}

func (m MethodResult) validate() error {
	switch {
	case m.NWash < 0:
		return fmt.Errorf("n_wash %d is negative", m.NWash)
	case m.LWashMM < 0:
		return fmt.Errorf("l_wash_mm %g is negative", m.LWashMM)
	case m.TDelaySeconds < 0:
		return fmt.Errorf("t_delay_s %d is negative", m.TDelaySeconds)
	case m.TAssaySeconds <= 0:
		return fmt.Errorf("t_assay_s %d must be positive", m.TAssaySeconds)
	case m.WallSeconds < 0:
		return fmt.Errorf("wall_s %g is negative", m.WallSeconds)
	case m.BBNodes < 0 || m.SimplexPivots < 0:
		return fmt.Errorf("bb_nodes %d / simplex_pivots %d negative", m.BBNodes, m.SimplexPivots)
	}
	for i, s := range m.WallSamples {
		if s < 0 {
			return fmt.Errorf("wall_samples[%d] %g is negative", i, s)
		}
	}
	for phase, sec := range m.PhaseSeconds {
		if sec < 0 {
			return fmt.Errorf("phase_s[%s] %g is negative", phase, sec)
		}
	}
	return nil
}

// WriteBenchJSON writes the file as indented JSON.
func WriteBenchJSON(w io.Writer, f *BenchFile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadBenchJSON parses and validates a bench file.
func ReadBenchJSON(r io.Reader) (*BenchFile, error) {
	var f BenchFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}
