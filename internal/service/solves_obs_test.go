package service

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pathdriverwash/internal/obs"
	"pathdriverwash/internal/obs/prof"
	"pathdriverwash/internal/obs/reqlog"
	"pathdriverwash/internal/solve"
	"pathdriverwash/pkg/pathdriver"
)

// TestSolveVisibleOnDebugSolves pins the live-introspection contract:
// while a request's solve runs, it is listed on /debug/solves under the
// request id with the counters its Progress publishes; once it returns,
// it leaves the listing and its final snapshot lands on the
// flight-recorder record.
func TestSolveVisibleOnDebugSolves(t *testing.T) {
	rec := reqlog.NewRecorder(reqlog.Config{Depth: 64, SampleEvery: 1})
	defer rec.Close()
	s := newTestServer(Config{Recorder: rec, CacheSize: -1})

	release := make(chan struct{})
	s.solveFn = func(ctx context.Context, req pathdriver.Request) (*pathdriver.Response, error) {
		prog := solve.ProgressFromContext(ctx)
		if prog == nil {
			t.Error("solveFn context carries no progress view")
			return stubResponse(req.Method), nil
		}
		prog.SetPhase("wash-path-ilp")
		prog.AddNodes(1234)
		prog.AddPivots(9999)
		<-release
		return stubResponse(req.Method), nil
	}

	srv := httptest.NewServer(obs.Handler())
	defer srv.Close()

	done := make(chan error, 1)
	idc := make(chan string, 1)
	go func() {
		ctx, q := rec.Begin(context.Background(), "")
		idc <- q.ID()
		_, err := s.Solve(ctx, motivatingReq(t, pathdriver.MethodPDW, pathdriver.Options{}))
		q.End()
		done <- err
	}()
	reqID := <-idc

	// The in-flight solve must appear under the request id.
	var view map[string]any
	waitFor(t, "solve on /debug/solves", func() bool {
		resp, err := http.Get(srv.URL + "/debug/solves/" + reqID)
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false
		}
		view = nil
		return json.NewDecoder(resp.Body).Decode(&view) == nil && view["nodes"].(float64) == 1234
	})
	if view["kind"] != "request" || view["label"] != "pdw" {
		t.Fatalf("solve view identity: %v", view)
	}
	if view["phase"] != "wash-path-ilp" || view["pivots"].(float64) != 9999 {
		t.Fatalf("solve view counters: %v", view)
	}
	if view["nodes_per_sec"].(float64) <= 0 {
		t.Fatalf("no live node rate: %v", view)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Unregistered after completion...
	waitFor(t, "solve to leave /debug/solves", func() bool {
		resp, err := http.Get(srv.URL + "/debug/solves/" + reqID)
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusNotFound
	})

	// ...and the record carries the final snapshot.
	record, ok := rec.Find(reqID)
	if !ok {
		t.Fatal("request not in flight recorder")
	}
	if record.Progress == nil || record.Progress.Nodes != 1234 || record.Progress.Pivots != 9999 {
		t.Fatalf("record progress: %+v", record.Progress)
	}
}

// TestShedSolveAlsoRegisters covers the load-shedding path: shed solves
// bypass the pool but still get a progress view and registry entry.
func TestShedSolveAlsoRegisters(t *testing.T) {
	s := newTestServer(Config{CacheSize: -1})
	sawProgress := make(chan bool, 1)
	s.solveFn = func(ctx context.Context, req pathdriver.Request) (*pathdriver.Response, error) {
		sawProgress <- solve.ProgressFromContext(ctx) != nil
		return stubResponse(req.Method), nil
	}
	out := s.shedSolve(context.Background(), motivatingReq(t, "", pathdriver.Options{}))
	if out.err != nil {
		t.Fatal(out.err)
	}
	if !<-sawProgress {
		t.Fatal("shed solve ran without a progress view")
	}
}

// TestOverrunTriggersProfile is the anomaly-to-evidence acceptance
// test: a budget-overrun solve completes, the flight recorder trips the
// profiling engine, the record links the capture, and the served bytes
// are a valid gzipped pprof CPU profile.
func TestOverrunTriggersProfile(t *testing.T) {
	engine := prof.New(prof.Config{CPUDuration: 50 * time.Millisecond, Cooldown: -1})
	rec := reqlog.NewRecorder(reqlog.Config{Depth: 64, SampleEvery: 1, Trigger: engine})
	defer rec.Close()
	s := newTestServer(Config{Recorder: rec, CacheSize: -1})
	s.solveFn = func(ctx context.Context, req pathdriver.Request) (*pathdriver.Response, error) {
		resp := stubResponse(req.Method)
		st := &solve.Stats{}
		st.MarkCanceled() // budget expired, degraded to incumbents
		resp.Stats = st
		return resp, nil
	}

	ctx, q := rec.Begin(context.Background(), "")
	res, err := s.Solve(ctx, motivatingReq(t, "", pathdriver.Options{}))
	q.End()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resp.Canceled {
		t.Fatal("stub did not mark the response canceled")
	}

	record, ok := rec.Find(q.ID())
	if !ok {
		t.Fatal("request not retained")
	}
	if record.Outcome != reqlog.OutcomeOverrun {
		t.Fatalf("outcome %q, want overrun", record.Outcome)
	}
	if record.ProfileID == "" {
		t.Fatal("overrun record carries no profile_id")
	}

	// The capture completes and serves pprof bytes.
	srv := httptest.NewServer(engine.Handler())
	defer srv.Close()
	var body []byte
	waitFor(t, "profile capture to complete", func() bool {
		resp, err := http.Get(srv.URL + "/debug/profiles/" + record.ProfileID + "?kind=cpu")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			return false
		}
		body, err = io.ReadAll(resp.Body)
		return err == nil
	})
	if len(body) < 2 || body[0] != 0x1f || body[1] != 0x8b {
		t.Fatalf("profile is not gzipped (%d bytes)", len(body))
	}
	zr, err := gzip.NewReader(strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil || len(raw) == 0 {
		t.Fatalf("profile decompress: %d bytes, %v", len(raw), err)
	}
}
