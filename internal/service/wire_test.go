package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"pathdriverwash/internal/assayio"
	"pathdriverwash/internal/scheduleio"
	"pathdriverwash/internal/solve"
	"pathdriverwash/pkg/pathdriver"
)

// goldenResponse is a fully-populated degraded response with synthetic
// deterministic telemetry, covering every wire field at once.
func goldenResponse() *SolveResponse {
	return &SolveResponse{
		Schema: SchemaV1, Method: pathdriver.MethodPDW,
		Degraded: true, Cached: false, Coalesced: true, Canceled: true,
		NWash: 3, LWashMM: 126, TAssayS: 22, TDelayS: 4,
		Objective: 10.84, WindowsOptimal: true, Rounds: 2,
		Stats: &solve.Stats{
			Phases: []PhaseStatAlias{
				{Name: "necessity", Wall: 120 * time.Microsecond},
				{Name: "window-milp", Wall: 48 * time.Millisecond},
			},
			MILPs: []solve.MILPStat{{
				Label: "wash-path w1", Vars: 40, IntVars: 40, Constraints: 31,
				Nodes: 17, Pruned: 6, SimplexIters: 204,
				Status: "optimal", Optimal: true, Wall: 3 * time.Millisecond,
				Incumbents: []solve.Incumbent{{Obj: 8, Node: 3, Elapsed: time.Millisecond}},
			}},
			Skips:    map[string]int{"type2-same-fluid": 4},
			Canceled: true,
		},
		Schedule: &scheduleio.Document{
			Chip:     scheduleio.ChipInfo{Name: "motivating", Width: 9, Height: 7, CellLengthMM: 1.5, FlowVelocityMMs: 10},
			Makespan: 22,
			Tasks: []scheduleio.TaskInfo{
				{ID: "w1", Kind: "wash", Start: 4, End: 6, Path: [][2]int{{0, 0}, {1, 0}}, WashTargets: [][2]int{{1, 0}}},
			},
		},
	}
}

// PhaseStatAlias keeps the golden literal readable without importing
// solve twice.
type PhaseStatAlias = solve.PhaseStat

const goldenJSON = `{
  "schema": "pdw.v1",
  "method": "pdw",
  "degraded": true,
  "coalesced": true,
  "canceled": true,
  "n_wash": 3,
  "l_wash_mm": 126,
  "t_assay_s": 22,
  "t_delay_s": 4,
  "objective": 10.84,
  "windows_optimal": true,
  "rounds": 2,
  "stats": {
    "phases": [
      {
        "name": "necessity",
        "wall_ns": 120000
      },
      {
        "name": "window-milp",
        "wall_ns": 48000000
      }
    ],
    "milps": [
      {
        "label": "wash-path w1",
        "vars": 40,
        "int_vars": 40,
        "constraints": 31,
        "nodes": 17,
        "pruned": 6,
        "simplex_iters": 204,
        "status": "optimal",
        "optimal": true,
        "wall_ns": 3000000,
        "incumbents": [
          {
            "obj": 8,
            "node": 3,
            "elapsed_ns": 1000000
          }
        ]
      }
    ],
    "skips": {
      "type2-same-fluid": 4
    },
    "canceled": true
  },
  "schedule": {
    "chip": {
      "name": "motivating",
      "width": 9,
      "height": 7,
      "cell_length_mm": 1.5,
      "flow_velocity_mm_s": 10
    },
    "makespan_s": 22,
    "tasks": [
      {
        "id": "w1",
        "kind": "wash",
        "start_s": 4,
        "end_s": 6,
        "path": [
          [
            0,
            0
          ],
          [
            1,
            0
          ]
        ],
        "wash_targets": [
          [
            1,
            0
          ]
        ]
      }
    ]
  }
}`

// TestResponseGolden pins the v1 response encoding byte for byte:
// renaming a field, changing a tag, or reordering struct members
// breaks this test, which is exactly when the schema version must
// bump.
func TestResponseGolden(t *testing.T) {
	got, err := json.MarshalIndent(goldenResponse(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != goldenJSON {
		t.Fatalf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, goldenJSON)
	}

	// Decode the golden text and re-encode: must be byte-identical.
	var rt SolveResponse
	dec := json.NewDecoder(strings.NewReader(goldenJSON))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rt); err != nil {
		t.Fatal(err)
	}
	again, err := json.MarshalIndent(&rt, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, again) {
		t.Fatalf("round trip not stable:\n%s", again)
	}
}

func TestDecodeRequest(t *testing.T) {
	body := `{
	  "schema": "pdw.v1",
	  "method": "dawo",
	  "assay": {"name": "a", "operations": [], "edges": []},
	  "options": {"budget": {"total": "2s"}, "weights": {"alpha": 0.5}, "heuristic": true}
	}`
	req, err := DecodeRequest(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != pathdriver.MethodDAWO || req.Options.Budget.Total != 2*time.Second {
		t.Fatalf("decoded %+v", req)
	}
	if req.Options.Weights.Alpha != 0.5 || !req.Options.Heuristic {
		t.Fatalf("options lost: %+v", req.Options)
	}
}

func TestDecodeRequestRejects(t *testing.T) {
	cases := map[string]string{
		"unknown top-level field": `{"assay": {"name": "a"}, "options": {}, "bogus": 1}`,
		"unknown option":          `{"assay": {"name": "a"}, "options": {"turbo": true}}`,
		"unknown budget field":    `{"assay": {"name": "a"}, "options": {"budget": {"totall": "2s"}}}`,
		"bad duration":            `{"assay": {"name": "a"}, "options": {"budget": {"total": "2 parsecs"}}}`,
		"wrong schema":            `{"schema": "pdw.v9", "assay": {"name": "a"}, "options": {}}`,
		"unknown method":          `{"method": "teleport", "assay": {"name": "a"}, "options": {}}`,
		"trailing data":           `{"assay": {"name": "a"}, "options": {}} {"again": true}`,
		"not json":                `hello`,
	}
	for name, body := range cases {
		if _, err := DecodeRequest(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted %s", name, body)
		} else if !errors.Is(err, solve.ErrInvalidAssay) {
			t.Errorf("%s: err = %v, want ErrInvalidAssay", name, err)
		}
	}
}

// TestKeyCanonical pins the cache identity semantics: operation order
// and budgets do not change the key; weights, method, and assay
// content do.
func TestKeyCanonical(t *testing.T) {
	a, _, err := pathdriver.MotivatingExample()
	if err != nil {
		t.Fatal(err)
	}
	doc := pathdriver.NewAssayDocument(a, pathdriver.SynthConfig{})
	base := &SolveRequest{Assay: doc}

	shuffled := *base
	shuffled.Assay.Operations = append([]assayio.Operation{}, doc.Operations...)
	for i, j := 0, len(shuffled.Assay.Operations)-1; i < j; i, j = i+1, j-1 {
		shuffled.Assay.Operations[i], shuffled.Assay.Operations[j] =
			shuffled.Assay.Operations[j], shuffled.Assay.Operations[i]
	}
	if Key(base) != Key(&shuffled) {
		t.Error("operation order must not change the key")
	}

	budgeted := *base
	budgeted.Options.Budget = pathdriver.Budget{Total: time.Minute}
	if Key(base) != Key(&budgeted) {
		t.Error("budget must not change the key")
	}

	pdwKey := Key(base)
	dawo := *base
	dawo.Method = pathdriver.MethodDAWO
	if Key(&dawo) == pdwKey {
		t.Error("method must change the key")
	}
	weighted := *base
	weighted.Options.Weights.Alpha = 0.9
	if Key(&weighted) == pdwKey {
		t.Error("weights must change the key")
	}
	explicit := *base
	explicit.Method = pathdriver.MethodPDW
	if Key(&explicit) != pdwKey {
		t.Error(`"" and "pdw" must share a key`)
	}
}
