package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strconv"
	"time"

	"pathdriverwash/internal/harness"
	"pathdriverwash/internal/obs"
	"pathdriverwash/internal/obs/reqlog"
	"pathdriverwash/internal/schedule"
	"pathdriverwash/internal/scheduleio"
	"pathdriverwash/internal/solve"
	"pathdriverwash/pkg/pathdriver"
)

// Config tunes a Server. The zero value is a sensible single-machine
// default: GOMAXPROCS workers, a queue of 4x that, shedding at half
// queue depth, a 128-entry cache, and a 30 s default / 2 min maximum
// budget.
type Config struct {
	// Workers caps concurrent exact solves (0: GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker; past it the
	// server answers 429 (0: 4x Workers).
	QueueDepth int
	// ShedWatermark is the queue depth at or above which new solves are
	// shed to the heuristic warm-start with degraded=true (0: half of
	// QueueDepth, at least 1; negative: shedding disabled).
	ShedWatermark int
	// CacheSize bounds the incumbent cache (0: 128; negative: caching
	// and request coalescing disabled).
	CacheSize int
	// DefaultBudget is applied when a request carries no total budget
	// (0: 30 s).
	DefaultBudget time.Duration
	// MaxBudget clamps requested total budgets (0: 2 min).
	MaxBudget time.Duration
	// ShedBudget bounds a shed heuristic solve (0: 5 s).
	ShedBudget time.Duration
	// Metrics receives the pdwd_* metrics (nil: obs.Default()).
	Metrics *obs.Registry
	// Logger receives structured access and lifecycle logs (nil: no
	// logging).
	Logger *slog.Logger
	// Recorder is the per-request flight recorder (nil: request
	// recording disabled; the request-identity middleware then costs
	// nothing).
	Recorder *reqlog.Recorder
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.ShedWatermark == 0 {
		c.ShedWatermark = max(1, c.QueueDepth/2)
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 30 * time.Second
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = 2 * time.Minute
	}
	if c.ShedBudget <= 0 {
		c.ShedBudget = 5 * time.Second
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default()
	}
	return c
}

// Result is one answered solve: the wire response plus the in-memory
// schedule (nil on errors), so in-process callers — the soak test, a
// future CLI — can verify or render without re-decoding the document.
type Result struct {
	Resp  *SolveResponse
	Sched *schedule.Schedule
}

// Server is the solve service: admission control over a bounded worker
// pool, the incumbent cache with single-flight coalescing, and load
// shedding to the heuristic warm-start.
type Server struct {
	cfg      Config
	pool     *harness.Pool
	cache    *lruCache // nil when disabled
	log      *slog.Logger
	recorder *reqlog.Recorder

	// solveFn runs one admitted solve; tests swap it for a stub to
	// pin admission and coalescing behavior deterministically.
	solveFn func(context.Context, pathdriver.Request) (*pathdriver.Response, error)

	mQueueDepth *obs.Gauge
	mInflight   *obs.Gauge
	mHits       *obs.Counter
	mMisses     *obs.Counter
	mCoalesced  *obs.Counter
	mShed       *obs.Counter
	mRejected   *obs.Counter
	mSolveSec   *obs.Histogram
	mQueueWait  *obs.Histogram
	mEncodeFail *obs.Counter
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		pool:     harness.NewPool(cfg.Workers, cfg.QueueDepth),
		log:      cfg.Logger,
		recorder: cfg.Recorder,
		solveFn:  pathdriver.Solve,

		mQueueDepth: cfg.Metrics.Gauge("pdwd_queue_depth"),
		mInflight:   cfg.Metrics.Gauge("pdwd_inflight"),
		mHits:       cfg.Metrics.Counter("pdwd_cache_hits_total"),
		mMisses:     cfg.Metrics.Counter("pdwd_cache_misses_total"),
		mCoalesced:  cfg.Metrics.Counter("pdwd_coalesced_total"),
		mShed:       cfg.Metrics.Counter("pdwd_shed_total"),
		mRejected:   cfg.Metrics.Counter("pdwd_rejected_total"),
		mSolveSec:   cfg.Metrics.Histogram("pdwd_solve_seconds", nil),
		mQueueWait:  cfg.Metrics.Histogram("pdwd_queue_wait_seconds", nil),
		mEncodeFail: cfg.Metrics.Counter("pdwd_response_encode_failures_total"),
	}
	if cfg.CacheSize > 0 {
		s.cache = newLRUCache(cfg.CacheSize)
	}
	return s
}

// CodeFor maps a Solve error onto its HTTP status: 429 for a full
// queue, 400 for invalid requests, 422 for infeasible models, 503 for
// budget exhaustion before any usable result, 499 (nginx's
// client-closed-request) for caller cancellation, 500 otherwise.
func CodeFor(err error) int {
	switch {
	case err == nil:
		return 200
	case errors.Is(err, harness.ErrQueueFull):
		return 429
	case errors.Is(err, solve.ErrInvalidAssay):
		return 400
	case errors.Is(err, solve.ErrInfeasible):
		return 422
	case errors.Is(err, solve.ErrBudgetExceeded):
		return 503
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return 499
	default:
		return 500
	}
}

// clampBudget applies the server's budget policy to a request copy:
// no total budget gets the default, oversized ones are clipped.
func (s *Server) clampBudget(req *SolveRequest) *SolveRequest {
	r := *req
	if r.Options.Budget.Total <= 0 {
		r.Options.Budget.Total = s.cfg.DefaultBudget
	} else if r.Options.Budget.Total > s.cfg.MaxBudget {
		r.Options.Budget.Total = s.cfg.MaxBudget
	}
	return &r
}

// Solve answers one request: from the cache, by coalescing onto an
// identical in-flight solve, shed to the heuristic warm-start when the
// queue is past the watermark, or admitted to the worker pool. The
// returned error maps to HTTP with CodeFor.
//
// When a flight recorder is configured and the context does not
// already carry a request (the HTTP middleware begins one per
// connection), Solve begins and ends its own, so in-process callers —
// the soak test, future CLIs — are recorded too.
func (s *Server) Solve(ctx context.Context, req *SolveRequest) (*Result, error) {
	start := time.Now()
	q := reqlog.FromContext(ctx)
	owned := q == nil && s.recorder != nil
	if owned {
		ctx, q = s.recorder.Begin(ctx, "")
	}
	res, err := s.solve(ctx, req)
	code := CodeFor(err)
	s.cfg.Metrics.Counter("pdwd_requests_total", "code", strconv.Itoa(code)).Inc()
	if code == 429 {
		s.mRejected.Inc()
	}
	obs.RecordSpan(ctx, "pdwd.request", start, time.Since(start),
		obs.A("method", string(req.Method)), obs.A("code", code))
	annotateSolve(q, req, res, err, code)
	if owned {
		q.End()
	}
	if s.log != nil {
		s.log.LogAttrs(ctx, slog.LevelDebug, "solve",
			slog.String("method", string(req.Method)),
			slog.Int("code", code),
			slog.Duration("wall", time.Since(start)),
			slog.String("request_id", q.ID()))
	}
	return res, err
}

// annotateSolve stamps the solve-layer summary onto the request
// record: outcome class, service flags, failure text, and the phase
// timeline. Nil-safe via the reqlog methods.
func annotateSolve(q *reqlog.Request, req *SolveRequest, res *Result, err error, code int) {
	if q == nil {
		return
	}
	var (
		degraded, cached, coalesced, canceled bool
		errText                               string
		phases                                []reqlog.Phase
	)
	if err != nil {
		errText = err.Error()
	} else if res != nil && res.Resp != nil {
		degraded = res.Resp.Degraded
		cached = res.Resp.Cached
		coalesced = res.Resp.Coalesced
		canceled = res.Resp.Canceled
		for _, p := range res.Resp.Stats.PhaseList() {
			phases = append(phases, reqlog.Phase{Name: p.Name, Wall: p.Wall})
		}
	}
	q.SetSolve(string(req.Method), code, degraded, cached, coalesced, canceled, errText, phases)
	q.SetOutcome(outcomeFor(res, err))
}

// outcomeFor maps a solve result onto its flight-recorder outcome
// class (the always-retained classes are exactly the non-boring ones;
// see reqlog's tail-sampling contract).
func outcomeFor(res *Result, err error) reqlog.Outcome {
	switch {
	case errors.Is(err, harness.ErrQueueFull):
		return reqlog.OutcomeRejected
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return reqlog.OutcomeCanceled
	case errors.Is(err, solve.ErrBudgetExceeded):
		return reqlog.OutcomeOverrun
	case err != nil:
		return reqlog.OutcomeError
	case res.Resp.Degraded:
		return reqlog.OutcomeDegraded
	case res.Resp.Canceled:
		return reqlog.OutcomeOverrun
	case res.Resp.Cached:
		return reqlog.OutcomeCached
	case res.Resp.Coalesced:
		return reqlog.OutcomeCoalesced
	default:
		return reqlog.OutcomeOK
	}
}

func (s *Server) solve(ctx context.Context, req *SolveRequest) (*Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	req = s.clampBudget(req)
	reqlog.FromContext(ctx).SetBudget(req.Options.Budget.Total)
	s.mQueueDepth.Set(int64(s.pool.Depth()))

	if s.cache == nil {
		out := s.runLeader(ctx, req)
		return resultOf(out, false, false)
	}

	key := Key(req)
	hit, fl, leader := s.cache.acquire(key)
	switch {
	case hit != nil:
		s.mHits.Inc()
		return resultOf(hit, true, false)
	case leader:
		s.mMisses.Inc()
	default:
		s.mCoalesced.Inc()
		select {
		case <-fl.done:
			return resultOf(fl.res, false, true)
		case <-ctx.Done():
			return nil, fmt.Errorf("service: abandoned while coalesced: %w", ctx.Err())
		}
	}

	// Leader: solve detached from this client's context so a hang-up
	// cannot poison the flight for coalesced followers; the clamped
	// budget bounds the detached work instead.
	go func() {
		out := s.runLeader(context.WithoutCancel(ctx), req)
		keep := out.err == nil && out.resp != nil && !out.resp.Degraded && !out.resp.Canceled
		s.cache.publish(key, fl, out, keep)
	}()
	select {
	case <-fl.done:
		return resultOf(fl.res, false, false)
	case <-ctx.Done():
		return nil, fmt.Errorf("service: abandoned while solving: %w", ctx.Err())
	}
}

// runLeader produces the outcome for one non-cached request: shed past
// the watermark, otherwise admitted to the pool.
func (s *Server) runLeader(ctx context.Context, req *SolveRequest) *outcome {
	if s.cfg.ShedWatermark > 0 && s.pool.Depth() >= s.cfg.ShedWatermark {
		s.mShed.Inc()
		if s.log != nil {
			s.log.LogAttrs(ctx, slog.LevelWarn, "shed",
				slog.Int("queue_depth", s.pool.Depth()),
				slog.Int("watermark", s.cfg.ShedWatermark),
				slog.String("request_id", reqlog.FromContext(ctx).ID()))
		}
		return s.shedSolve(ctx, req)
	}
	var out *outcome
	wait, err := s.pool.DoTimed(ctx, func(ctx context.Context) {
		s.mInflight.Set(int64(s.pool.Running()))
		start := time.Now()
		resp, err := s.runSolve(ctx, req)
		s.mSolveSec.Observe(time.Since(start).Seconds())
		if err != nil {
			out = &outcome{err: err}
			return
		}
		out = &outcome{resp: buildResponse(resp), sched: resp.Schedule}
	})
	s.mQueueWait.Observe(wait.Seconds())
	if wait > 0 {
		// Attribute the admission wait to the request that paid it (a
		// detached leader annotating after its originating record closed
		// is a harmless no-op).
		reqlog.FromContext(ctx).SetQueueWait(wait)
	}
	if err != nil {
		return &outcome{err: err}
	}
	return out
}

// shedSolve is the load-shedding path: the heuristic warm-start (BFS
// wash paths, greedy windows) under the shed budget, bypassing the
// pool entirely — it is two orders of magnitude cheaper than the exact
// pipeline — and flagged degraded so clients can retry later for the
// optimized answer.
func (s *Server) shedSolve(ctx context.Context, req *SolveRequest) *outcome {
	shed := *req
	shed.Options.Heuristic = true
	if shed.Options.Budget.Total <= 0 || shed.Options.Budget.Total > s.cfg.ShedBudget {
		shed.Options.Budget.Total = s.cfg.ShedBudget
	}
	resp, err := s.runSolve(ctx, &shed)
	if err != nil {
		return &outcome{err: err}
	}
	wire := buildResponse(resp)
	wire.Degraded = true
	return &outcome{resp: wire, sched: resp.Schedule}
}

// runSolve invokes the solver with a live progress view attached: for
// the solve's duration it is listed on /debug/solves (keyed by the
// request id when one is in flight, so an operator can go from a slow
// request straight to its live nodes/pivots/gap), and the final
// snapshot is stamped onto the flight-recorder record when it closes.
func (s *Server) runSolve(ctx context.Context, req *SolveRequest) (*pathdriver.Response, error) {
	prog := solve.NewProgress()
	ctx = solve.WithProgress(ctx, prog)
	q := reqlog.FromContext(ctx)
	unregister := obs.RegisterSolve(q.ID(), "request", string(req.Method), prog.Snapshot)
	defer unregister()
	resp, err := s.solveFn(ctx, req.request())
	q.SetProgress(prog.Snapshot())
	return resp, err
}

// buildResponse lowers a library response onto the wire shape.
func buildResponse(r *pathdriver.Response) *SolveResponse {
	doc := scheduleio.ToDocument(r.Schedule)
	return &SolveResponse{
		Schema:         SchemaV1,
		Method:         r.Method,
		Canceled:       r.Stats != nil && r.Stats.Canceled,
		NWash:          r.Metrics.NWash,
		LWashMM:        r.Metrics.LWashMM,
		TAssayS:        r.Metrics.TAssay,
		TDelayS:        r.Metrics.TDelay,
		Objective:      r.Objective,
		WindowsOptimal: r.WindowsOptimal,
		Rounds:         r.Rounds,
		Stats:          r.Stats,
		Schedule:       &doc,
	}
}

// resultOf turns a published outcome into a caller-owned Result,
// stamping the per-request cache flags on a copy of the shared
// response template.
func resultOf(out *outcome, cached, coalesced bool) (*Result, error) {
	if out.err != nil {
		return nil, out.err
	}
	resp := *out.resp
	resp.Cached = cached
	resp.Coalesced = coalesced
	return &Result{Resp: &resp, Sched: out.sched}, nil
}

// Stats reports the server's live admission state.
func (s *Server) Stats() (queued, running, cached int) {
	cachedN := 0
	if s.cache != nil {
		cachedN = s.cache.Len()
	}
	return s.pool.Depth(), s.pool.Running(), cachedN
}
