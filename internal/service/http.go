package service

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"

	"pathdriverwash/internal/obs/reqlog"
)

// Handler returns the service's HTTP surface:
//
//	POST /v1/solve   — one SolveRequest in, one SolveResponse out
//	GET  /healthz    — liveness, build info, live admission counters
//
// wrapped in the request-identity middleware: when a flight recorder
// or logger is configured, every request gets a W3C trace context
// (continuing an incoming `traceparent` header or minting one) and a
// request id, both echoed in response headers (`Traceparent`,
// `X-Request-Id`) and attached to the context for span, record, and
// log attribution.
//
// Observability endpoints (/metrics, /debug/...) are not mounted here;
// cmd/pdwd wraps this handler with obs.WithDebug (which also carries
// the recorder's /debug/requests endpoints once installed).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s.instrument(mux)
}

// statusWriter captures the status code and body size the middleware
// logs and records.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// instrument is the request-identity middleware. With neither a
// recorder nor a logger configured it returns next untouched — the
// disabled path adds zero handlers and zero allocations.
func (s *Server) instrument(next http.Handler) http.Handler {
	if s.recorder == nil && s.log == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		var q *reqlog.Request
		if s.recorder != nil {
			ctx, q = s.recorder.Begin(ctx, r.Header.Get("traceparent"))
			w.Header().Set("Traceparent", q.Trace().String())
			w.Header().Set("X-Request-Id", q.ID())
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		wall := time.Since(start)
		q.SetHTTP(r.Method, r.URL.Path, sw.code)
		q.End()
		if s.log != nil {
			lvl := slog.LevelInfo
			switch {
			case sw.code >= 500:
				lvl = slog.LevelError
			case sw.code >= 400:
				lvl = slog.LevelWarn
			}
			attrs := []slog.Attr{
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.code),
				slog.Duration("wall", wall),
				slog.Int64("bytes", sw.bytes),
			}
			if q != nil {
				attrs = append(attrs,
					slog.String("request_id", q.ID()),
					slog.String("trace_id", q.Trace().TraceIDString()),
					slog.String("outcome", string(q.Outcome())))
			}
			s.log.LogAttrs(ctx, lvl, "request", attrs...)
		}
	})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeRequest(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.Solve(r.Context(), req)
	if err != nil {
		code := CodeFor(err)
		if code == http.StatusTooManyRequests {
			// The queue drains at solve speed; a second is long enough
			// for several heuristic solves and short enough to retry an
			// exact one promptly.
			w.Header().Set("Retry-After", "1")
		}
		s.writeError(w, code, err)
		return
	}
	s.writeJSON(w, http.StatusOK, res.Resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued, running, cached := s.Stats()
	body := map[string]any{
		"status": "ok",
		"schema": SchemaV1,
		"queued": queued, "running": running, "cached": cached,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		build := map[string]any{
			"go":      bi.GoVersion,
			"module":  bi.Main.Path,
			"version": bi.Main.Version,
		}
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				build["revision"] = kv.Value
			case "vcs.time":
				build["vcs_time"] = kv.Value
			case "vcs.modified":
				build["dirty"] = kv.Value == "true"
			}
		}
		body["build"] = build
	}
	if s.recorder != nil {
		body["requests"] = map[string]any{
			"depth": s.recorder.Cap(),
			"kept":  s.recorder.Len(),
			"total": s.recorder.Total(),
		}
	}
	s.writeJSON(w, http.StatusOK, body)
}

func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	if code == 499 { // non-standard; the client is gone anyway
		// Remap to 503 and, like the 429 path, invite a prompt retry:
		// the server is healthy, the request just has to come back.
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	s.writeJSON(w, code, &SolveResponse{Schema: SchemaV1, Error: err.Error()})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Once the status line is written a failed encode (client gone,
		// broken pipe) has no recovery; count it so a storm of broken
		// pipes stays visible on /metrics.
		s.mEncodeFail.Inc()
	}
}
