package service

import (
	"encoding/json"
	"net/http"
)

// Handler returns the service's HTTP surface:
//
//	POST /v1/solve   — one SolveRequest in, one SolveResponse out
//	GET  /healthz    — liveness plus live admission counters
//
// Observability endpoints (/metrics, /debug/...) are not mounted here;
// cmd/pdwd wraps this handler with obs.WithDebug.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeRequest(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.Solve(r.Context(), req)
	if err != nil {
		code := CodeFor(err)
		if code == http.StatusTooManyRequests {
			// The queue drains at solve speed; a second is long enough
			// for several heuristic solves and short enough to retry an
			// exact one promptly.
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, res.Resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued, running, cached := s.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"schema": SchemaV1,
		"queued": queued, "running": running, "cached": cached,
	})
}

func writeError(w http.ResponseWriter, code int, err error) {
	if code == 499 { // non-standard; the client is gone anyway
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, &SolveResponse{Schema: SchemaV1, Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Once the status line is written a failed encode (client gone,
	// broken pipe) has no recovery; the connection just closes.
	_ = enc.Encode(v)
}
