// Package service is the PDW solve service behind cmd/pdwd: a
// versioned JSON wire schema over the canonical pathdriver.Request /
// Response shapes, admission control over a bounded worker pool,
// an LRU incumbent cache with single-flight request coalescing, and
// load shedding to the heuristic warm-start under pressure
// (DESIGN.md "The solve service").
package service

import (
	"encoding/json"
	"fmt"
	"io"

	"pathdriverwash/internal/assayio"
	"pathdriverwash/internal/scheduleio"
	"pathdriverwash/internal/solve"
	"pathdriverwash/pkg/pathdriver"
)

// SchemaV1 is the wire schema version this service speaks. Requests
// must carry it (or omit the field, which means v1); responses always
// echo it. Schema changes that break decoding bump the version.
const SchemaV1 = "pdw.v1"

// SolveRequest is the body of POST /v1/solve: the canonical
// pathdriver.Request plus the schema version. The assay and options
// objects are exactly the library's JSON shapes — budgets are "2s"-style
// duration strings (or integer nanoseconds), unknown fields are
// rejected at every nesting level.
type SolveRequest struct {
	// Schema is the wire schema version; "" means SchemaV1.
	Schema string `json:"schema,omitempty"`
	// Method selects the optimizer: "pdw" (default) or "dawo".
	Method pathdriver.Method `json:"method,omitempty"`
	// Assay is the protocol and chip-synthesis configuration.
	Assay assayio.Document `json:"assay"`
	// Options tunes the solve; its budget is clamped by the server.
	Options pathdriver.Options `json:"options"`
}

// SolveResponse is the body answered by POST /v1/solve. On errors only
// Schema and Error are set (plus the HTTP status).
type SolveResponse struct {
	Schema string            `json:"schema"`
	Method pathdriver.Method `json:"method,omitempty"`

	// Degraded marks a load-shed response: the solve ran the cheap
	// heuristic warm-start instead of the exact pipeline. The schedule
	// is still verified contamination-free.
	Degraded bool `json:"degraded,omitempty"`
	// Cached marks a response served from the incumbent cache.
	Cached bool `json:"cached,omitempty"`
	// Coalesced marks a response that piggybacked on an identical
	// in-flight solve instead of running its own.
	Coalesced bool `json:"coalesced,omitempty"`
	// Canceled mirrors Stats.Canceled: the budget expired and later
	// phases returned their best feasible incumbents.
	Canceled bool `json:"canceled,omitempty"`

	// The paper's evaluation quantities (vs the wash-free reference).
	NWash          int     `json:"n_wash"`
	LWashMM        float64 `json:"l_wash_mm"`
	TAssayS        int     `json:"t_assay_s"`
	TDelayS        int     `json:"t_delay_s"`
	Objective      float64 `json:"objective,omitempty"`
	WindowsOptimal bool    `json:"windows_optimal,omitempty"`
	Rounds         int     `json:"rounds,omitempty"`

	// Stats is the structured solve telemetry (omitted on cache hits,
	// which carry the original solve's stats).
	Stats *solve.Stats `json:"stats,omitempty"`
	// Schedule is the optimized execution procedure in the scheduleio
	// document shape.
	Schedule *scheduleio.Document `json:"schedule,omitempty"`

	// Error is the failure description when the solve did not produce
	// a schedule.
	Error string `json:"error,omitempty"`
}

// maxRequestBytes bounds a request body; the largest Table II assay
// document is ~10 KB, so 4 MB is generous headroom.
const maxRequestBytes = 4 << 20

// DecodeRequest reads and validates one SolveRequest. Unknown fields
// anywhere in the body are rejected (including inside the budget
// object, whose custom unmarshaler is strict on its own).
func DecodeRequest(r io.Reader) (*SolveRequest, error) {
	dec := json.NewDecoder(io.LimitReader(r, maxRequestBytes))
	dec.DisallowUnknownFields()
	var req SolveRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("service: bad request: %w: %w", err, solve.ErrInvalidAssay)
	}
	if dec.More() {
		return nil, fmt.Errorf("service: trailing data after request: %w", solve.ErrInvalidAssay)
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// Validate checks the envelope: schema version and method. Assay
// validation happens inside the solve (it needs the full decoder).
func (r *SolveRequest) Validate() error {
	if r.Schema != "" && r.Schema != SchemaV1 {
		return fmt.Errorf("service: unsupported schema %q (this server speaks %q): %w",
			r.Schema, SchemaV1, solve.ErrInvalidAssay)
	}
	switch r.Method {
	case "", pathdriver.MethodPDW, pathdriver.MethodDAWO:
		return nil
	default:
		return fmt.Errorf("service: unknown method %q (want %q or %q): %w",
			r.Method, pathdriver.MethodPDW, pathdriver.MethodDAWO, solve.ErrInvalidAssay)
	}
}

// request lowers the wire shape onto the library's canonical Request.
func (r *SolveRequest) request() pathdriver.Request {
	return pathdriver.Request{Assay: r.Assay, Method: r.Method, Options: r.Options}
}
