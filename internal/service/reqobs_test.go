package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pathdriverwash/internal/obs"
	"pathdriverwash/internal/obs/reqlog"
	"pathdriverwash/pkg/pathdriver"
)

// syncWriter is a goroutine-safe buffer for capturing concurrent log
// output.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(b []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(b)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestRequestObservabilityEndToEnd is the acceptance test for the
// request observability layer: concurrent requests sent with a
// traceparent header get the same trace ID back (with a server-minted
// span id), appear in /debug/requests, and their per-request trace
// export validates as Chrome trace events.
func TestRequestObservabilityEndToEnd(t *testing.T) {
	obs.Enable()
	defer obs.Disable()

	rec := reqlog.NewRecorder(reqlog.Config{Depth: 4096, SampleEvery: 1})
	defer rec.Close()
	removeDebug := rec.InstallDebug()
	defer removeDebug()

	var logBuf syncWriter
	s := newTestServer(Config{
		Recorder: rec,
		Logger:   reqlog.NewLogger(&logBuf, 0),
	})
	s.solveFn = func(ctx context.Context, req pathdriver.Request) (*pathdriver.Response, error) {
		return stubResponse(req.Method), nil
	}
	// InstallDebug ran before WithDebug snapshots the debug mux, same
	// order as cmd/pdwd.
	srv := httptest.NewServer(obs.WithDebug(s.Handler()))
	defer srv.Close()

	const n = 32
	var (
		mu  sync.Mutex
		ids = map[string]string{} // request id -> sent trace id
	)
	var wg sync.WaitGroup
	for i := range n {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sentTrace := fmt.Sprintf("%032x", i+1)
			body, err := json.Marshal(uniqueReq(t, i))
			if err != nil {
				t.Error(err)
				return
			}
			req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/solve", strings.NewReader(string(body)))
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("traceparent", "00-"+sentTrace+"-0000000000000001-01")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
				return
			}

			// Trace continuation: same trace id, server-minted span id.
			echoed := resp.Header.Get("Traceparent")
			parts := strings.Split(echoed, "-")
			if len(parts) != 4 || parts[1] != sentTrace {
				t.Errorf("traceparent %q does not continue trace %s", echoed, sentTrace)
				return
			}
			if parts[2] == "0000000000000001" {
				t.Errorf("traceparent %q kept the client span id", echoed)
			}
			id := resp.Header.Get("X-Request-Id")
			if id == "" {
				t.Error("no X-Request-Id header")
				return
			}
			mu.Lock()
			if prev, dup := ids[id]; dup {
				t.Errorf("request id %s reused (traces %s and %s)", id, prev, sentTrace)
			}
			ids[id] = sentTrace
			mu.Unlock()
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Every request is retained (SampleEvery 1) and listed with its
	// trace id.
	resp, err := http.Get(srv.URL + "/debug/requests?limit=4096")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Requests []struct {
			ID      string `json:"id"`
			TraceID string `json:"trace_id"`
			Outcome string `json:"outcome"`
		} `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	listed := map[string]string{}
	for _, r := range listing.Requests {
		listed[r.ID] = r.TraceID
	}
	for id, sentTrace := range ids {
		gotTrace, ok := listed[id]
		if !ok {
			t.Fatalf("request %s missing from /debug/requests", id)
		}
		if gotTrace != sentTrace {
			t.Fatalf("request %s recorded trace %s, want %s", id, gotTrace, sentTrace)
		}
	}

	// One request's span tree exports as Chrome trace events.
	for id := range ids {
		tr, err := http.Get(srv.URL + "/debug/requests/" + id + "/trace")
		if err != nil {
			t.Fatal(err)
		}
		var events []map[string]any
		err = json.NewDecoder(tr.Body).Decode(&events)
		tr.Body.Close()
		if err != nil {
			t.Fatalf("trace export for %s is not a JSON array: %v", id, err)
		}
		if len(events) == 0 {
			t.Fatalf("trace export for %s is empty", id)
		}
		for _, ev := range events {
			for _, key := range []string{"name", "ph", "ts", "pid"} {
				if _, ok := ev[key]; !ok {
					t.Fatalf("trace event %v missing %q", ev, key)
				}
			}
		}
		break
	}

	// The access log emitted one JSON line per request carrying the id.
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	requestLines := 0
	for _, line := range lines {
		var entry map[string]any
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("log line is not JSON: %q", line)
		}
		if entry["msg"] != "request" || entry["path"] != "/v1/solve" {
			continue
		}
		requestLines++
		id, _ := entry["request_id"].(string)
		if _, ok := ids[id]; !ok {
			t.Fatalf("access log line carries unknown request id %q: %s", id, line)
		}
	}
	if requestLines != n {
		t.Fatalf("%d access log lines, want %d", requestLines, n)
	}
}

func TestHealthzBuildAndRecorder(t *testing.T) {
	rec := reqlog.NewRecorder(reqlog.Config{Depth: 64, SampleEvery: 1})
	defer rec.Close()
	s := newTestServer(Config{Recorder: rec})
	s.solveFn = func(ctx context.Context, req pathdriver.Request) (*pathdriver.Response, error) {
		return stubResponse(req.Method), nil
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	if _, err := s.Solve(context.Background(), motivatingReq(t, "", pathdriver.Options{})); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
		Build  struct {
			Go     string `json:"go"`
			Module string `json:"module"`
		} `json:"build"`
		Requests struct {
			Depth int    `json:"depth"`
			Kept  int    `json:"kept"`
			Total uint64 `json:"total"`
		} `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" {
		t.Fatalf("status %q", body.Status)
	}
	if body.Build.Go == "" || body.Build.Module == "" {
		t.Fatalf("healthz missing build info: %+v", body.Build)
	}
	if body.Requests.Depth != 64 {
		t.Fatalf("recorder depth %d, want 64", body.Requests.Depth)
	}
	// The direct Solve above was recorded (owned request) and the
	// /healthz request itself finishes after the snapshot, so total is
	// at least 1.
	if body.Requests.Total < 1 || body.Requests.Kept < 1 {
		t.Fatalf("recorder counters %+v, want >= 1", body.Requests)
	}
}

func TestWriteErrorClientGone(t *testing.T) {
	s := newTestServer(Config{})
	w := httptest.NewRecorder()
	s.writeError(w, 499, errors.New("client gone"))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (499 is not a real status)", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("remapped 499 must invite a retry")
	}
	var out SolveResponse
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Error != "client gone" {
		t.Fatalf("error %q", out.Error)
	}
}

func TestWriteJSONEncodeFailureCounted(t *testing.T) {
	s := newTestServer(Config{})
	if got := s.mEncodeFail.Value(); got != 0 {
		t.Fatalf("fresh server encode failures %d", got)
	}
	w := httptest.NewRecorder()
	s.writeJSON(w, http.StatusOK, map[string]any{"bad": func() {}})
	if got := s.mEncodeFail.Value(); got != 1 {
		t.Fatalf("encode failures %d, want 1", got)
	}
}
