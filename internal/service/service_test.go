package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/harness"
	"pathdriverwash/internal/obs"
	"pathdriverwash/internal/schedule"
	"pathdriverwash/pkg/pathdriver"
)

// newTestServer builds a server with its own metrics registry so
// counters are assertable per test.
func newTestServer(cfg Config) *Server {
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	return New(cfg)
}

// stubResponse is a minimal well-formed library response for solveFn
// stubs: a real (empty) schedule so the wire document builds.
func stubResponse(method pathdriver.Method) *pathdriver.Response {
	if method == "" {
		method = pathdriver.MethodPDW
	}
	s := schedule.New(grid.NewChip("stub", 4, 4), assay.New("stub"))
	return &pathdriver.Response{Method: method, Schedule: s, Washes: 1}
}

// motivatingReq wraps the paper's running example as a wire request.
func motivatingReq(t testing.TB, method pathdriver.Method, opts pathdriver.Options) *SolveRequest {
	t.Helper()
	a, _, err := pathdriver.MotivatingExample()
	if err != nil {
		t.Fatal(err)
	}
	return &SolveRequest{
		Method:  method,
		Assay:   pathdriver.NewAssayDocument(a, pathdriver.SynthConfig{}),
		Options: opts,
	}
}

// uniqueReq returns a request whose cache key differs per call.
func uniqueReq(t testing.TB, n int) *SolveRequest {
	t.Helper()
	r := motivatingReq(t, "", pathdriver.Options{})
	r.Options.Weights.Alpha = 0.001 * float64(n+1)
	return r
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCacheHitAndMiss(t *testing.T) {
	s := newTestServer(Config{})
	var calls atomic.Int64
	s.solveFn = func(ctx context.Context, req pathdriver.Request) (*pathdriver.Response, error) {
		calls.Add(1)
		return stubResponse(req.Method), nil
	}

	req := motivatingReq(t, "", pathdriver.Options{})
	first, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Resp.Cached {
		t.Fatal("first solve must be a miss")
	}
	second, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Resp.Cached {
		t.Fatal("identical request must hit the cache")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("solver ran %d times, want 1", got)
	}

	// A different budget is the same cache entry; different weights are
	// a new solve.
	budgeted := *req
	budgeted.Options.Budget.Total = time.Minute
	res, err := s.Solve(context.Background(), &budgeted)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resp.Cached {
		t.Fatal("budget-only change must still hit the cache")
	}
	if _, err := s.Solve(context.Background(), uniqueReq(t, 7)); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("solver ran %d times, want 2", got)
	}
	if s.mHits.Value() != 2 || s.mMisses.Value() != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/2", s.mHits.Value(), s.mMisses.Value())
	}
}

func TestCoalescing(t *testing.T) {
	s := newTestServer(Config{Workers: 4, ShedWatermark: -1})
	release := make(chan struct{})
	var calls atomic.Int64
	s.solveFn = func(ctx context.Context, req pathdriver.Request) (*pathdriver.Response, error) {
		calls.Add(1)
		<-release
		return stubResponse(req.Method), nil
	}

	req := motivatingReq(t, "", pathdriver.Options{})
	const n = 10
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range n {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = s.Solve(context.Background(), req)
		}()
	}
	waitFor(t, "leader to start", func() bool { return calls.Load() == 1 })
	waitFor(t, "followers to coalesce", func() bool { return s.mCoalesced.Value() == n-1 })
	close(release)
	wg.Wait()

	coalesced := 0
	for i := range n {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i].Resp.Coalesced {
			coalesced++
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("identical concurrent requests ran the solver %d times, want exactly 1", got)
	}
	if coalesced != n-1 {
		t.Fatalf("%d coalesced responses, want %d", coalesced, n-1)
	}
}

func TestQueueFullRejects(t *testing.T) {
	s := newTestServer(Config{Workers: 1, QueueDepth: 1, ShedWatermark: -1, CacheSize: -1})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s.solveFn = func(ctx context.Context, req pathdriver.Request) (*pathdriver.Response, error) {
		started <- struct{}{}
		<-release
		return stubResponse(req.Method), nil
	}

	var wg sync.WaitGroup
	defer wg.Wait()      // after release: workers drain and exit
	defer close(release) // runs first (LIFO)
	for i := range 2 {   // one running, one queued
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Solve(context.Background(), uniqueReq(t, i)); err != nil {
				t.Error(err)
			}
		}()
	}
	<-started
	waitFor(t, "queue to fill", func() bool { return s.pool.Depth() == 1 })

	_, err := s.Solve(context.Background(), uniqueReq(t, 99))
	if !errors.Is(err, harness.ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if CodeFor(err) != http.StatusTooManyRequests {
		t.Fatalf("code = %d, want 429", CodeFor(err))
	}
	if s.mRejected.Value() != 1 {
		t.Fatalf("rejected counter = %d, want 1", s.mRejected.Value())
	}
}

func TestShedToWarmStart(t *testing.T) {
	s := newTestServer(Config{Workers: 1, QueueDepth: 4, ShedWatermark: 1, CacheSize: -1})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s.solveFn = func(ctx context.Context, req pathdriver.Request) (*pathdriver.Response, error) {
		if req.Options.Heuristic { // the shed path runs inline
			return stubResponse(req.Method), nil
		}
		started <- struct{}{}
		<-release
		return stubResponse(req.Method), nil
	}

	var wg sync.WaitGroup
	defer wg.Wait()
	defer close(release)
	for i := range 2 { // fill the worker, then the queue
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Solve(context.Background(), uniqueReq(t, i)); err != nil {
				t.Error(err)
			}
		}()
	}
	<-started
	waitFor(t, "queue at watermark", func() bool { return s.pool.Depth() >= 1 })

	res, err := s.Solve(context.Background(), uniqueReq(t, 99))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resp.Degraded {
		t.Fatal("solve past the watermark must be shed with degraded=true")
	}
	if s.mShed.Value() != 1 {
		t.Fatalf("shed counter = %d, want 1", s.mShed.Value())
	}
}

// TestShedSolveIsClean runs the real heuristic warm-start the shed
// path serves and verifies its output quality: contamination-free and
// flagged degraded.
func TestShedSolveIsClean(t *testing.T) {
	s := newTestServer(Config{})
	out := s.shedSolve(context.Background(), motivatingReq(t, "", pathdriver.Options{}))
	if out.err != nil {
		t.Fatal(out.err)
	}
	if !out.resp.Degraded {
		t.Fatal("shed response must be degraded")
	}
	if err := pathdriver.VerifyClean(out.sched); err != nil {
		t.Fatalf("shed schedule is contaminated: %v", err)
	}
	if out.resp.NWash == 0 || out.resp.NWash != len(washTasks(out.sched)) {
		t.Fatalf("n_wash=%d, schedule has %d washes", out.resp.NWash, len(washTasks(out.sched)))
	}
}

func washTasks(s *schedule.Schedule) []*schedule.Task {
	var ws []*schedule.Task
	for _, task := range s.SortedByStart() {
		if task.Kind.String() == "wash" {
			ws = append(ws, task)
		}
	}
	return ws
}

// TestDegradedNotCached pins the cache-fidelity rule: shed results are
// published to coalesced waiters but never committed.
func TestDegradedNotCached(t *testing.T) {
	s := newTestServer(Config{Workers: 1, QueueDepth: 4, ShedWatermark: 1})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	var heuristicCalls atomic.Int64
	s.solveFn = func(ctx context.Context, req pathdriver.Request) (*pathdriver.Response, error) {
		if req.Options.Heuristic {
			heuristicCalls.Add(1)
			return stubResponse(req.Method), nil
		}
		started <- struct{}{}
		<-release
		return stubResponse(req.Method), nil
	}

	var wg sync.WaitGroup
	for i := range 2 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Solve(context.Background(), uniqueReq(t, i)); err != nil {
				t.Error(err)
			}
		}()
	}
	<-started
	waitFor(t, "queue at watermark", func() bool { return s.pool.Depth() >= 1 })

	shedReq := uniqueReq(t, 99)
	res, err := s.Solve(context.Background(), shedReq)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resp.Degraded {
		t.Fatal("expected a shed response")
	}
	close(release)
	wg.Wait()

	// The pressure is gone; the same request must now solve for real.
	res, err = s.Solve(context.Background(), shedReq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resp.Cached || res.Resp.Degraded {
		t.Fatalf("degraded result leaked into the cache: %+v", res.Resp)
	}
}

func TestBudgetClamp(t *testing.T) {
	s := newTestServer(Config{DefaultBudget: 7 * time.Second, MaxBudget: 10 * time.Second})
	var got atomic.Int64
	s.solveFn = func(ctx context.Context, req pathdriver.Request) (*pathdriver.Response, error) {
		got.Store(int64(req.Options.Budget.Total))
		return stubResponse(req.Method), nil
	}

	if _, err := s.Solve(context.Background(), uniqueReq(t, 0)); err != nil {
		t.Fatal(err)
	}
	if time.Duration(got.Load()) != 7*time.Second {
		t.Fatalf("default budget not applied: %v", time.Duration(got.Load()))
	}
	over := uniqueReq(t, 1)
	over.Options.Budget.Total = time.Hour
	if _, err := s.Solve(context.Background(), over); err != nil {
		t.Fatal(err)
	}
	if time.Duration(got.Load()) != 10*time.Second {
		t.Fatalf("oversized budget not clamped: %v", time.Duration(got.Load()))
	}
}

func TestHTTPSolve(t *testing.T) {
	srv := httptest.NewServer(newTestServer(Config{}).Handler())
	defer srv.Close()

	req := motivatingReq(t, "", pathdriver.Options{Heuristic: true})
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/solve", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Schema != SchemaV1 || out.NWash == 0 || out.Schedule == nil {
		t.Fatalf("response %+v", out)
	}
	if out.Error != "" {
		t.Fatalf("unexpected error: %s", out.Error)
	}

	// Malformed and invalid bodies answer 400 with a JSON error.
	for _, bad := range []string{`{"bogus": 1}`, `not json`, `{"schema": "pdw.v9", "assay": {"name": "x"}, "options": {}}`} {
		resp, err := http.Post(srv.URL+"/v1/solve", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		var out SolveResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || out.Error == "" {
			t.Fatalf("bad body %q: status %d, error %q", bad, resp.StatusCode, out.Error)
		}
	}

	health, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", health.StatusCode)
	}
}

func TestHTTPQueueFull(t *testing.T) {
	s := newTestServer(Config{Workers: 1, QueueDepth: 1, ShedWatermark: -1, CacheSize: -1})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s.solveFn = func(ctx context.Context, req pathdriver.Request) (*pathdriver.Response, error) {
		started <- struct{}{}
		<-release
		return stubResponse(req.Method), nil
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(i int) (*http.Response, error) {
		body, err := json.Marshal(uniqueReq(t, i))
		if err != nil {
			return nil, err
		}
		return http.Post(srv.URL+"/v1/solve", "application/json", strings.NewReader(string(body)))
	}
	var wg sync.WaitGroup
	defer wg.Wait()
	defer close(release)
	for i := range 2 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := post(i)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	<-started
	waitFor(t, "queue to fill", func() bool { return s.pool.Depth() == 1 })

	resp, err := post(99)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
}

// TestAbandonedLeaderStillFeedsFollowers pins the detached-leader
// contract: a leader whose client hangs up does not poison the flight
// for coalesced followers.
func TestAbandonedLeaderStillFeedsFollowers(t *testing.T) {
	s := newTestServer(Config{Workers: 2, ShedWatermark: -1})
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s.solveFn = func(ctx context.Context, req pathdriver.Request) (*pathdriver.Response, error) {
		started <- struct{}{}
		<-release
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("leader context poisoned: %w", err)
		}
		return stubResponse(req.Method), nil
	}

	req := motivatingReq(t, "", pathdriver.Options{})
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := s.Solve(leaderCtx, req)
		leaderErr <- err
	}()
	<-started

	followerRes := make(chan *Result, 1)
	followerErr := make(chan error, 1)
	go func() {
		res, err := s.Solve(context.Background(), req)
		followerRes <- res
		followerErr <- err
	}()
	waitFor(t, "follower to coalesce", func() bool { return s.mCoalesced.Value() == 1 })

	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned leader returned %v, want context.Canceled", err)
	}
	close(release)
	if err := <-followerErr; err != nil {
		t.Fatalf("follower failed after leader hang-up: %v", err)
	}
	res := <-followerRes
	if !res.Resp.Coalesced {
		t.Fatal("follower must report coalesced")
	}
}
