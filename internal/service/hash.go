package service

import (
	"encoding/hex"
	"encoding/json"
	"hash/fnv"

	"pathdriverwash/internal/assayio"
	"pathdriverwash/pkg/pathdriver"
)

// Key computes the canonical cache identity of a request: an FNV-128a
// hash over the schema version, the resolved method, the canonicalized
// assay document (operation/edge/device order does not matter), and
// the options with the budget zeroed. The budget is deliberately not
// part of the identity — a cached full-budget optimum is at least as
// good an answer for the same request under a smaller budget — and
// degraded or budget-truncated results are never committed to the
// cache, so the asymmetry is safe.
func Key(r *SolveRequest) string {
	method := r.Method
	if method == "" {
		method = pathdriver.MethodPDW
	}
	opts := r.Options
	opts.Budget = pathdriver.Budget{}
	payload := struct {
		Schema  string             `json:"schema"`
		Method  pathdriver.Method  `json:"method"`
		Assay   assayio.Document   `json:"assay"`
		Options pathdriver.Options `json:"options"`
	}{SchemaV1, method, assayio.Canonical(r.Assay), opts}
	b, err := json.Marshal(payload)
	if err != nil {
		// Documents are plain data; marshaling only fails on NaN-like
		// float values, which also make the request unsolvable. A
		// degenerate shared key is harmless: the cache only ever serves
		// committed successful results.
		return "unhashable"
	}
	h := fnv.New128a()
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}
