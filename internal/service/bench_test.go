package service

import (
	"context"
	"testing"

	"pathdriverwash/internal/obs/reqlog"
	"pathdriverwash/pkg/pathdriver"
)

// BenchmarkFlightRecorderOverhead compares the service solve path with
// the flight recorder absent ("off") and recording every request
// ("on"). The solver itself is stubbed out so the numbers isolate the
// service + recorder overhead; the "off" sub-benchmark is the disabled
// path the <2% observability cost contract (DESIGN.md) covers. Cache
// and shedding are disabled so every iteration walks the full
// admission path.
func BenchmarkFlightRecorderOverhead(b *testing.B) {
	run := func(b *testing.B, rec *reqlog.Recorder) {
		s := newTestServer(Config{CacheSize: -1, ShedWatermark: -1, Recorder: rec})
		s.solveFn = func(ctx context.Context, req pathdriver.Request) (*pathdriver.Response, error) {
			return stubResponse(req.Method), nil
		}
		req := motivatingReq(b, "", pathdriver.Options{})
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for b.Loop() {
			if _, err := s.Solve(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) {
		rec := reqlog.NewRecorder(reqlog.Config{Depth: 512, SampleEvery: 1})
		defer rec.Close()
		run(b, rec)
	})
}
