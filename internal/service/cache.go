package service

import (
	"container/list"
	"sync"

	"pathdriverwash/internal/schedule"
)

// outcome is what one solve produced: the wire response template plus
// the in-memory schedule (kept so callers can re-verify without
// decoding the document), or an error. Callers copy the response and
// stamp per-request flags (Cached, Coalesced) on the copy.
type outcome struct {
	resp  *SolveResponse
	sched *schedule.Schedule
	err   error
}

// flight is one in-flight solve for a cache key. res is written
// exactly once, before done is closed; waiters read it only after
// <-done, which gives the required happens-before edge.
type flight struct {
	done chan struct{}
	res  *outcome
}

// cacheEntry is one committed LRU cell.
type cacheEntry struct {
	key string
	res *outcome
}

// lruCache is the incumbent cache with single-flight coalescing:
// committed results live in an LRU of size max; at most one solve per
// key is in flight, and identical concurrent requests wait on the
// leader's flight instead of solving again. In-flight entries are
// pinned — they occupy no LRU slot and cannot be evicted.
type lruCache struct {
	mu       sync.Mutex
	max      int
	ll       *list.List               // committed, front = most recent
	m        map[string]*list.Element // committed, by key
	inflight map[string]*flight
}

func newLRUCache(max int) *lruCache {
	return &lruCache{
		max:      max,
		ll:       list.New(),
		m:        make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// acquire resolves a key three ways: a committed hit (hit != nil), an
// in-flight solve to coalesce onto (fl != nil, leader false), or a
// miss that elects the caller leader (fl != nil, leader true). A
// leader MUST eventually call publish on its flight, or followers
// block forever.
func (c *lruCache) acquire(key string) (hit *outcome, fl *flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).res, nil, false
	}
	if f, ok := c.inflight[key]; ok {
		return nil, f, false
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	return nil, f, true
}

// publish completes a flight: hands res to every waiter and, iff keep,
// commits it to the LRU (evicting the oldest entry past capacity).
// Degraded, canceled, and failed solves publish with keep=false so the
// cache only ever serves full-fidelity results.
func (c *lruCache) publish(key string, fl *flight, res *outcome, keep bool) {
	fl.res = res
	c.mu.Lock()
	delete(c.inflight, key)
	if keep && c.max > 0 {
		if el, ok := c.m[key]; ok { // lost a race with a re-commit; refresh
			c.ll.MoveToFront(el)
			el.Value.(*cacheEntry).res = res
		} else {
			c.m[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
			for c.ll.Len() > c.max {
				oldest := c.ll.Back()
				c.ll.Remove(oldest)
				delete(c.m, oldest.Value.(*cacheEntry).key)
			}
		}
	}
	c.mu.Unlock()
	close(fl.done)
}

// Len reports the number of committed entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
