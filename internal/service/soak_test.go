package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pathdriverwash/internal/obs"
	"pathdriverwash/internal/obs/reqlog"
	"pathdriverwash/internal/solve"
	"pathdriverwash/pkg/pathdriver"
)

// TestServiceSoak drives the full service — real solver, admission
// control, cache, coalescing, shedding — with a storm of concurrent
// mixed requests: cache-hot repeats, cold uniques, budget-starved
// solves, hung-up clients, DAWO runs, exact solves, and a slice of
// plain HTTP traffic. Every successful response (including degraded
// and shed ones) must carry a verified contamination-free schedule,
// and the cache must demonstrably work (hit counter > 0, a final
// repeat request served from cache).
//
// `make soak` runs it in full (>= 1000 requests) under the race
// detector; -short runs a scaled-down version inside tier-1 and the
// scripts/check.sh race gate.
func TestServiceSoak(t *testing.T) {
	n, clients := 1200, 64
	if testing.Short() {
		n, clients = 100, 32
	}

	// The flight recorder rides along at production-like settings: deep
	// enough that nothing interesting is evicted during the storm,
	// sampling boring traffic 1-in-4.
	rec := reqlog.NewRecorder(reqlog.Config{Depth: 8192, SampleEvery: 4})
	defer rec.Close()
	removeDebug := rec.InstallDebug()
	defer removeDebug()

	s := newTestServer(Config{
		QueueDepth:    32,
		CacheSize:     64,
		DefaultBudget: 5 * time.Second,
		MaxBudget:     10 * time.Second,
		ShedBudget:    2 * time.Second,
		Recorder:      rec,
	})
	srv := httptest.NewServer(obs.WithDebug(s.Handler()))
	defer srv.Close()
	bg := context.Background()

	// Requests are built goroutine-side from this precomputed document
	// (t.Fatal inside motivatingReq is only legal on the test goroutine).
	baseDoc := motivatingReq(t, "", pathdriver.Options{}).Assay
	mkReq := func(method pathdriver.Method, opts pathdriver.Options) *SolveRequest {
		return &SolveRequest{Method: method, Assay: baseDoc, Options: opts}
	}
	mkUnique := func(i int) *SolveRequest {
		return mkReq("", pathdriver.Options{Weights: pathdriver.Weights{Alpha: 0.001 * float64(i+1)}})
	}

	// Four hot keys (distinct weights) plus one burst key that is NOT
	// pre-warmed, so concurrent requests for it exercise coalescing.
	hot := make([]*SolveRequest, 4)
	for i := range hot {
		r := motivatingReq(t, "", pathdriver.Options{Heuristic: true})
		r.Options.Weights.Gamma = 0.4 + 0.01*float64(i)
		hot[i] = r
	}
	burst := motivatingReq(t, "", pathdriver.Options{Heuristic: true})
	burst.Options.Weights.Beta = 0.123

	// Warm the hot keys sequentially (empty queue: no shedding), so the
	// storm below hits a populated cache deterministically.
	for _, r := range hot {
		res, err := s.Solve(bg, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := pathdriver.VerifyClean(res.Sched); err != nil {
			t.Fatal(err)
		}
	}

	var (
		wg     sync.WaitGroup
		sem    = make(chan struct{}, clients)
		mu     sync.Mutex
		counts = map[string]int{}
	)
	record := func(k string) { mu.Lock(); counts[k]++; mu.Unlock() }
	// acceptable classifies the errors load and hang-ups legitimately
	// produce; anything else fails the soak.
	acceptable := func(err error) bool {
		return errors.Is(err, solve.ErrBudgetExceeded) ||
			errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) ||
			CodeFor(err) == http.StatusTooManyRequests
	}
	checkResult := func(kind string, res *Result, err error) {
		if err != nil {
			if !acceptable(err) {
				t.Errorf("%s: %v", kind, err)
				return
			}
			record(kind + "-err")
			return
		}
		if verr := pathdriver.VerifyClean(res.Sched); verr != nil {
			t.Errorf("%s: contaminated schedule: %v", kind, verr)
		}
		record(kind)
		if res.Resp.Degraded {
			record("degraded")
		}
		if res.Resp.Cached {
			record("cached")
		}
		if res.Resp.Coalesced {
			record("coalesced")
		}
	}

	for i := range n {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			switch {
			case i%25 == 24: // plain HTTP traffic on hot keys
				body, err := json.Marshal(hot[i%len(hot)])
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := http.Post(srv.URL+"/v1/solve", "application/json", strings.NewReader(string(body)))
				if err != nil {
					t.Error(err)
					return
				}
				defer resp.Body.Close()
				var out SolveResponse
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					t.Errorf("http: decode: %v", err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					if out.Schema != SchemaV1 || out.Schedule == nil {
						t.Errorf("http: malformed 200: %+v", out)
					}
					record("http")
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					record("http-err")
				default:
					t.Errorf("http: status %d: %s", resp.StatusCode, out.Error)
				}
			case i%10 == 9: // client hangs up immediately
				ctx, cancel := context.WithCancel(bg)
				cancel()
				res, err := s.Solve(ctx, hot[i%len(hot)])
				switch {
				case err == nil && res.Resp.Cached:
					record("canceled-hit")
				case errors.Is(err, context.Canceled):
					record("canceled")
				case err != nil && !acceptable(err):
					t.Errorf("canceled client: %v", err)
				default:
					record("canceled-other")
				}
			case i%97 == 77: // concurrent identical cold key: coalesces
				res, err := s.Solve(bg, burst)
				checkResult("burst", res, err)
			case i%120 == 17: // exact solve under a real budget
				r := mkReq("", pathdriver.Options{})
				r.Options.Weights.Alpha = 0.3 + 0.0001*float64(i)
				r.Options.Budget.Total = 2 * time.Second
				res, err := s.Solve(bg, r)
				checkResult("exact", res, err)
			case i%13 == 7: // budget-starved: degrades or 503s, never hangs
				r := mkUnique(i)
				r.Options.Budget.Total = time.Millisecond
				res, err := s.Solve(bg, r)
				checkResult("starved", res, err)
			case i%11 == 3: // DAWO baseline
				r := mkReq(pathdriver.MethodDAWO, pathdriver.Options{})
				r.Options.MaxRounds = 10 + i%3
				res, err := s.Solve(bg, r)
				checkResult("dawo", res, err)
			case i%5 == 4: // cold unique heuristic solve
				res, err := s.Solve(bg, mkUnique(i))
				checkResult("cold", res, err)
			default: // cache-hot repeat
				res, err := s.Solve(bg, hot[i%len(hot)])
				checkResult("hot", res, err)
			}
		}()
	}
	wg.Wait()

	// The cache must have carried real weight during the storm.
	if hits := s.mHits.Value(); hits <= 0 {
		t.Fatalf("cache hit counter = %d, want > 0", hits)
	}
	if counts["cached"] == 0 {
		t.Fatal("no response was served from cache")
	}
	// And a final identical request is a deterministic hit.
	res, err := s.Solve(bg, hot[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resp.Cached {
		t.Fatal("final repeat of a warmed request must be served from cache")
	}

	// Flight recorder: every request was observed, /debug/requests
	// retains every interesting outcome class the storm produced, and
	// request ids never collide.
	if got := rec.Total(); got < uint64(n) {
		t.Fatalf("flight recorder observed %d requests, want >= %d", got, n)
	}
	resp, err := http.Get(srv.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Kept     int `json:"kept"`
		Requests []struct {
			ID      string `json:"id"`
			Outcome string `json:"outcome"`
		} `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	outcomes := map[string]int{}
	seenIDs := map[string]bool{}
	for _, r := range listing.Requests {
		outcomes[r.Outcome]++
		if seenIDs[r.ID] {
			t.Errorf("request id %s appears twice in /debug/requests", r.ID)
		}
		seenIDs[r.ID] = true
	}
	// Interesting classes are always retained, so "it happened" must
	// imply "it is in the ring".
	if counts["degraded"] > 0 && outcomes["degraded"] == 0 {
		t.Errorf("%d shed responses but no degraded record retained", counts["degraded"])
	}
	if counts["canceled"] > 0 && outcomes["canceled"] == 0 {
		t.Errorf("%d hung-up clients but no canceled record retained", counts["canceled"])
	}
	if s.mRejected.Value() > 0 && outcomes["rejected"] == 0 {
		t.Errorf("%d admission rejections but no rejected record retained", s.mRejected.Value())
	}

	queued, running, cached := s.Stats()
	t.Logf("soak n=%d: %v; hits=%d misses=%d coalesced=%d shed=%d rejected=%d; recorder total=%d kept=%d outcomes=%v; end state queued=%d running=%d cached=%d",
		n, sortedCounts(counts), s.mHits.Value(), s.mMisses.Value(),
		s.mCoalesced.Value(), s.mShed.Value(), s.mRejected.Value(),
		rec.Total(), listing.Kept, sortedCounts(outcomes), queued, running, cached)
}

func sortedCounts(m map[string]int) string {
	b, _ := json.Marshal(m)
	return string(b)
}

// TestSoakShedVerified forces the shed path with real solves and
// verifies every degraded response: under a single-worker pool with a
// watermark of 1, a burst of cold exact requests must shed, and each
// shed schedule must still verify contamination-free.
func TestSoakShedVerified(t *testing.T) {
	s := newTestServer(Config{
		Workers: 1, QueueDepth: 8, ShedWatermark: 1, CacheSize: -1,
		DefaultBudget: 5 * time.Second, ShedBudget: 2 * time.Second,
	})
	const n = 12
	baseDoc := motivatingReq(t, "", pathdriver.Options{}).Assay
	var wg sync.WaitGroup
	degraded := make([]bool, n)
	for i := range n {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := &SolveRequest{Assay: baseDoc, Options: pathdriver.Options{
				Weights: pathdriver.Weights{Alpha: 0.001 * float64(i+1)},
			}}
			res, err := s.Solve(context.Background(), req)
			if err != nil {
				if errors.Is(err, solve.ErrBudgetExceeded) {
					return
				}
				t.Error(err)
				return
			}
			if err := pathdriver.VerifyClean(res.Sched); err != nil {
				t.Errorf("request %d (degraded=%v): %v", i, res.Resp.Degraded, err)
			}
			degraded[i] = res.Resp.Degraded
		}()
	}
	wg.Wait()
	shed := 0
	for _, d := range degraded {
		if d {
			shed++
		}
	}
	if shed == 0 {
		t.Fatalf("no request shed under a 1-worker pool with watermark 1 (%d requests)", n)
	}
	if got := s.mShed.Value(); got != int64(shed) {
		t.Fatalf("shed counter %d != %d degraded responses", got, shed)
	}
}
