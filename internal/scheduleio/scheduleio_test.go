package scheduleio

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/pdw"
	"pathdriverwash/internal/schedule"
)

func TestEncodeRoundtripsThroughJSON(t *testing.T) {
	b, err := benchmarks.ByName("PCR")
	if err != nil {
		t.Fatal(err)
	}
	syn, err := b.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	res, err := pdw.Optimize(syn.Schedule, pdw.Options{
		HeuristicWindows: true, PathTimeLimit: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, res.Schedule); err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.Chip.Name != syn.Chip.Name || doc.Chip.Width != syn.Chip.W {
		t.Errorf("chip info = %+v", doc.Chip)
	}
	if doc.Makespan != res.Schedule.Makespan() {
		t.Errorf("makespan = %d want %d", doc.Makespan, res.Schedule.Makespan())
	}
	if len(doc.Tasks) != len(res.Schedule.Tasks()) {
		t.Errorf("tasks = %d want %d", len(doc.Tasks), len(res.Schedule.Tasks()))
	}
	// Every wash row carries its path and targets.
	washes := 0
	for _, ti := range doc.Tasks {
		if ti.Kind == "wash" {
			washes++
			if len(ti.Path) == 0 || len(ti.WashTargets) == 0 {
				t.Errorf("wash %s lost path/targets", ti.ID)
			}
		}
		if ti.End < ti.Start {
			t.Errorf("task %s has inverted window", ti.ID)
		}
	}
	if washes != len(res.Schedule.TasksOf(schedule.Wash)) {
		t.Errorf("washes = %d", washes)
	}
	// ψ-integration links preserved.
	for _, ti := range doc.Tasks {
		if ti.Integrated && ti.IntegratedInto == "" {
			t.Errorf("task %s integrated without target", ti.ID)
		}
	}
}

func TestTasksSortedByStart(t *testing.T) {
	b, _ := benchmarks.ByName("Kinase act-1")
	syn, err := b.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, syn.Schedule); err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(doc.Tasks); i++ {
		if doc.Tasks[i-1].Start > doc.Tasks[i].Start {
			t.Fatal("tasks not sorted by start")
		}
	}
}
