// Package scheduleio serializes execution procedures as JSON so
// optimized schedules can be consumed by external visualizers or chip
// controllers. The encoding is lossless for everything a downstream
// tool needs: task kinds, time windows, flow paths as cell lists, wash
// targets, and ψ-integration links.
package scheduleio

import (
	"encoding/json"
	"fmt"
	"io"

	"pathdriverwash/internal/schedule"
)

// Document is the JSON shape of a schedule.
type Document struct {
	Chip     ChipInfo   `json:"chip"`
	Makespan int        `json:"makespan_s"`
	Tasks    []TaskInfo `json:"tasks"`
}

// ChipInfo summarizes the chip a schedule runs on.
type ChipInfo struct {
	Name            string  `json:"name"`
	Width           int     `json:"width"`
	Height          int     `json:"height"`
	CellLengthMM    float64 `json:"cell_length_mm"`
	FlowVelocityMMs float64 `json:"flow_velocity_mm_s"`
}

// TaskInfo is one schedule entry.
type TaskInfo struct {
	ID             string   `json:"id"`
	Kind           string   `json:"kind"`
	Start          int      `json:"start_s"`
	End            int      `json:"end_s"`
	Fluid          string   `json:"fluid,omitempty"`
	Op             string   `json:"op,omitempty"`
	Device         string   `json:"device,omitempty"`
	Path           [][2]int `json:"path,omitempty"`
	WashTargets    [][2]int `json:"wash_targets,omitempty"`
	Integrated     bool     `json:"integrated,omitempty"`
	IntegratedInto string   `json:"integrated_into,omitempty"`
}

// Encode writes the schedule as indented JSON.
func Encode(w io.Writer, s *schedule.Schedule) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ToDocument(s)); err != nil {
		return fmt.Errorf("scheduleio: %w", err)
	}
	return nil
}

// ToDocument converts a schedule into its JSON document shape, the
// form embedded in solve-service responses (internal/service).
func ToDocument(s *schedule.Schedule) Document {
	doc := Document{
		Chip: ChipInfo{
			Name: s.Chip.Name, Width: s.Chip.W, Height: s.Chip.H,
			CellLengthMM: s.Chip.CellLengthMM, FlowVelocityMMs: s.Chip.FlowVelocityMMs,
		},
		Makespan: s.Makespan(),
	}
	for _, t := range s.SortedByStart() {
		ti := TaskInfo{
			ID: t.ID, Kind: t.Kind.String(), Start: t.Start, End: t.End,
			Fluid: string(t.Fluid), Op: t.OpID,
			Integrated: t.Integrated, IntegratedInto: t.IntegratedInto,
		}
		if t.Device != nil {
			ti.Device = t.Device.ID
		}
		for _, c := range t.Path.Cells {
			ti.Path = append(ti.Path, [2]int{c.X, c.Y})
		}
		for _, c := range t.WashTargets {
			ti.WashTargets = append(ti.WashTargets, [2]int{c.X, c.Y})
		}
		doc.Tasks = append(doc.Tasks, ti)
	}
	return doc
}
