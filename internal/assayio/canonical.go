package assayio

import "sort"

// Canonical returns a copy of doc with every order-insensitive
// collection in a deterministic order: operations by ID, edges by
// (from, to), devices by (kind, count). Two documents describing the
// same assay in different list orders canonicalize to the same value,
// which is what makes the document usable as a cache identity — the
// solve service hashes Canonical(doc), so reordering a request's JSON
// arrays still hits the incumbent cache. Reagent lists are left
// untouched: reagent order is part of an operation's definition.
func Canonical(doc Document) Document {
	ops := append([]Operation(nil), doc.Operations...)
	sort.Slice(ops, func(i, j int) bool { return ops[i].ID < ops[j].ID })
	edges := append([]Edge(nil), doc.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	devices := append([]DeviceSpec(nil), doc.Devices...)
	sort.Slice(devices, func(i, j int) bool {
		if devices[i].Kind != devices[j].Kind {
			return devices[i].Kind < devices[j].Kind
		}
		return devices[i].Count < devices[j].Count
	})
	doc.Operations, doc.Edges, doc.Devices = ops, edges, devices
	return doc
}
