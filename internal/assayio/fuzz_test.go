package assayio

import (
	"strings"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the JSON decoder: it must never
// panic, and any successfully decoded assay must validate.
func FuzzDecode(f *testing.F) {
	f.Add(sample)
	f.Add(`{`)
	f.Add(`{"name":"x","operations":[{"id":"a","kind":"mix","duration":1,"output":"f","reagents":["r"]}]}`)
	f.Fuzz(func(t *testing.T, doc string) {
		a, _, err := Decode(strings.NewReader(doc))
		if err != nil {
			return
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("decoder returned invalid assay: %v", err)
		}
	})
}
