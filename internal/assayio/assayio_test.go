package assayio

import (
	"bytes"
	"strings"
	"testing"

	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/synth"
)

const sample = `{
  "name": "json-assay",
  "operations": [
    {"id": "o1", "kind": "mix", "duration": 2, "output": "f1", "reagents": ["r1", "r2"]},
    {"id": "o2", "kind": "heat", "duration": 3, "output": "f2"}
  ],
  "edges": [{"from": "o1", "to": "o2"}],
  "devices": [{"kind": "mixer", "count": 1}, {"kind": "heater", "count": 1}],
  "flow_ports": 3,
  "waste_ports": 2,
  "flow_velocity_mm_s": 5
}`

func TestDecode(t *testing.T) {
	a, cfg, err := Decode(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "json-assay" || len(a.Ops()) != 2 || len(a.Edges()) != 1 {
		t.Fatalf("assay = %+v", a)
	}
	if len(cfg.Devices) != 2 || cfg.FlowPorts != 3 || cfg.WastePorts != 2 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.FlowVelocityMMs != 5 {
		t.Fatalf("velocity = %v", cfg.FlowVelocityMMs)
	}
	op := a.Op("o1")
	if op == nil || len(op.Reagents) != 2 || op.Duration != 2 {
		t.Fatalf("op = %+v", op)
	}
}

func TestDecodedAssaySynthesizes(t *testing.T) {
	a, cfg, err := Decode(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	res, err := synth.Synthesize(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chip.FlowVelocityMMs != 5 {
		t.Errorf("velocity not applied: %v", res.Chip.FlowVelocityMMs)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{`,
		"unknown field": `{"name":"x","bogus":1}`,
		"missing name":  `{"operations":[{"id":"o1","kind":"mix","duration":1,"output":"f","reagents":["r"]}]}`,
		"bad op":        `{"name":"x","operations":[{"id":"","kind":"mix","duration":1,"output":"f"}]}`,
		"bad edge":      `{"name":"x","operations":[{"id":"o1","kind":"mix","duration":1,"output":"f","reagents":["r"]}],"edges":[{"from":"o1","to":"zz"}]}`,
		"cycle": `{"name":"x","operations":[
			{"id":"a","kind":"mix","duration":1,"output":"f","reagents":["r"]},
			{"id":"b","kind":"mix","duration":1,"output":"g","reagents":["r"]}],
			"edges":[{"from":"a","to":"b"},{"from":"b","to":"a"}]}`,
	}
	for name, doc := range cases {
		if _, _, err := Decode(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	b, err := benchmarks.ByName("PCR")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, b.Assay, b.Config); err != nil {
		t.Fatal(err)
	}
	a2, cfg2, err := Decode(&buf)
	if err != nil {
		t.Fatalf("round trip decode: %v", err)
	}
	if len(a2.Ops()) != len(b.Assay.Ops()) || len(a2.Edges()) != len(b.Assay.Edges()) {
		t.Fatal("round trip lost structure")
	}
	if len(cfg2.Devices) != len(b.Config.Devices) {
		t.Fatal("round trip lost devices")
	}
	o1, _, t1 := b.Assay.Stats()
	o2, _, t2 := a2.Stats()
	if o1 != o2 || t1 != t2 {
		t.Fatalf("stats differ: %d/%d vs %d/%d", o1, t1, o2, t2)
	}
}
