package assayio

import (
	"encoding/json"
	"testing"
)

func TestCanonicalOrderInsensitive(t *testing.T) {
	a := Document{
		Name: "x",
		Operations: []Operation{
			{ID: "o2", Kind: "heat", Duration: 1, Output: "f2"},
			{ID: "o1", Kind: "mix", Duration: 2, Output: "f1", Reagents: []string{"r1", "r2"}},
		},
		Edges:   []Edge{{From: "o1", To: "o3"}, {From: "o1", To: "o2"}},
		Devices: []DeviceSpec{{Kind: "mixer", Count: 2}, {Kind: "heater", Count: 1}},
	}
	b := Document{
		Name: "x",
		Operations: []Operation{
			{ID: "o1", Kind: "mix", Duration: 2, Output: "f1", Reagents: []string{"r1", "r2"}},
			{ID: "o2", Kind: "heat", Duration: 1, Output: "f2"},
		},
		Edges:   []Edge{{From: "o1", To: "o2"}, {From: "o1", To: "o3"}},
		Devices: []DeviceSpec{{Kind: "heater", Count: 1}, {Kind: "mixer", Count: 2}},
	}
	ja, _ := json.Marshal(Canonical(a))
	jb, _ := json.Marshal(Canonical(b))
	if string(ja) != string(jb) {
		t.Fatalf("canonical forms differ:\n%s\n%s", ja, jb)
	}
}

func TestCanonicalKeepsReagentOrder(t *testing.T) {
	doc := Document{Name: "x", Operations: []Operation{
		{ID: "o1", Kind: "mix", Duration: 1, Output: "f", Reagents: []string{"r2", "r1"}},
	}}
	got := Canonical(doc)
	if got.Operations[0].Reagents[0] != "r2" {
		t.Fatal("Canonical must not reorder reagent lists")
	}
	// ... and must not mutate its input.
	if &doc.Operations[0] == &got.Operations[0] {
		t.Fatal("Canonical must copy the operations slice")
	}
}
