// Package assayio reads and writes bioassay protocols and synthesis
// configurations as JSON, so custom assays can be fed to cmd/pdw
// without recompiling. The format mirrors the sequencing-graph model:
//
//	{
//	  "name": "my-assay",
//	  "operations": [
//	    {"id": "o1", "kind": "mix", "duration": 2, "output": "f1",
//	     "reagents": ["r1", "r2"]},
//	    {"id": "o2", "kind": "heat", "duration": 3, "output": "f2"}
//	  ],
//	  "edges": [{"from": "o1", "to": "o2"}],
//	  "devices": [{"kind": "mixer", "count": 2}, {"kind": "heater", "count": 1}],
//	  "flow_ports": 3,
//	  "waste_ports": 3
//	}
package assayio

import (
	"encoding/json"
	"fmt"
	"io"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/synth"
)

// Document is the JSON representation of an assay plus its synthesis
// configuration.
type Document struct {
	Name       string       `json:"name"`
	Operations []Operation  `json:"operations"`
	Edges      []Edge       `json:"edges"`
	Devices    []DeviceSpec `json:"devices,omitempty"`
	FlowPorts  int          `json:"flow_ports,omitempty"`
	WastePorts int          `json:"waste_ports,omitempty"`
	// Physical parameters (0 selects the defaults: 1 mm, 10 mm/s, 2 s).
	CellLengthMM    float64 `json:"cell_length_mm,omitempty"`
	FlowVelocityMMs float64 `json:"flow_velocity_mm_s,omitempty"`
	DissolutionS    float64 `json:"dissolution_s,omitempty"`
}

// Operation is one sequencing-graph node.
type Operation struct {
	ID            string   `json:"id"`
	Kind          string   `json:"kind"`
	Duration      int      `json:"duration"`
	Output        string   `json:"output"`
	Reagents      []string `json:"reagents,omitempty"`
	DiscardResult bool     `json:"discard_result,omitempty"`
}

// Edge is one dependency.
type Edge struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// DeviceSpec requests devices for synthesis.
type DeviceSpec struct {
	Kind  string `json:"kind"`
	Count int    `json:"count"`
}

// Decode parses a JSON document and builds the assay and synthesis
// configuration, validating both.
func Decode(r io.Reader) (*assay.Assay, synth.Config, error) {
	var doc Document
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, synth.Config{}, fmt.Errorf("assayio: %w", err)
	}
	return FromDocument(doc)
}

// FromDocument builds the assay and configuration from a parsed document.
func FromDocument(doc Document) (*assay.Assay, synth.Config, error) {
	if doc.Name == "" {
		return nil, synth.Config{}, fmt.Errorf("assayio: missing assay name")
	}
	a := assay.New(doc.Name)
	for _, op := range doc.Operations {
		reagents := make([]assay.FluidType, len(op.Reagents))
		for i, rg := range op.Reagents {
			reagents[i] = assay.FluidType(rg)
		}
		if err := a.AddOp(&assay.Operation{
			ID: op.ID, Kind: assay.OpKind(op.Kind), Duration: op.Duration,
			Output: assay.FluidType(op.Output), Reagents: reagents,
			DiscardResult: op.DiscardResult,
		}); err != nil {
			return nil, synth.Config{}, err
		}
	}
	for _, e := range doc.Edges {
		if err := a.AddEdge(e.From, e.To); err != nil {
			return nil, synth.Config{}, err
		}
	}
	if err := a.Validate(); err != nil {
		return nil, synth.Config{}, err
	}
	cfg := synth.Config{
		FlowPorts: doc.FlowPorts, WastePorts: doc.WastePorts,
		CellLengthMM: doc.CellLengthMM, FlowVelocityMMs: doc.FlowVelocityMMs,
		DissolutionS: doc.DissolutionS,
	}
	for _, d := range doc.Devices {
		cfg.Devices = append(cfg.Devices, synth.DeviceSpec{
			Kind: grid.DeviceKind(d.Kind), Count: d.Count,
		})
	}
	return a, cfg, nil
}

// Encode writes the assay and configuration as indented JSON.
func Encode(w io.Writer, a *assay.Assay, cfg synth.Config) error {
	doc := ToDocument(a, cfg)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ToDocument converts an assay and configuration into the JSON shape.
func ToDocument(a *assay.Assay, cfg synth.Config) Document {
	doc := Document{
		Name:            a.Name,
		FlowPorts:       cfg.FlowPorts,
		WastePorts:      cfg.WastePorts,
		CellLengthMM:    cfg.CellLengthMM,
		FlowVelocityMMs: cfg.FlowVelocityMMs,
		DissolutionS:    cfg.DissolutionS,
	}
	for _, op := range a.Ops() {
		reagents := make([]string, len(op.Reagents))
		for i, rg := range op.Reagents {
			reagents[i] = string(rg)
		}
		doc.Operations = append(doc.Operations, Operation{
			ID: op.ID, Kind: string(op.Kind), Duration: op.Duration,
			Output: string(op.Output), Reagents: reagents,
			DiscardResult: op.DiscardResult,
		})
	}
	for _, e := range a.Edges() {
		doc.Edges = append(doc.Edges, Edge{From: e.From, To: e.To})
	}
	for _, d := range cfg.Devices {
		doc.Devices = append(doc.Devices, DeviceSpec{Kind: string(d.Kind), Count: d.Count})
	}
	return doc
}
