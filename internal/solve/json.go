package solve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// JSON wire forms. Budget is embedded verbatim in the pdwd service's
// request schema (internal/service, DESIGN.md "Wire schema v1"), so it
// marshals durations in the human-friendly Go duration syntax ("2s",
// "1.5s") and accepts either that or raw integer nanoseconds on decode.

// Duration is a time.Duration with wire-friendly JSON: it marshals as
// the duration string and unmarshals from a duration string or an
// integer nanosecond count.
type Duration time.Duration

// MarshalJSON renders the duration as its String form ("2s").
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "2s"-style strings and integer nanoseconds.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("solve: bad duration %q: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(data, &ns); err != nil {
		return fmt.Errorf("solve: duration must be a string or nanoseconds: %s", data)
	}
	*d = Duration(ns)
	return nil
}

// budgetWire mirrors Budget field for field; keeping it separate from
// Budget avoids MarshalJSON recursion while pinning the wire names.
type budgetWire struct {
	Total   Duration `json:"total,omitempty"`
	PerPath Duration `json:"per_path,omitempty"`
	Window  Duration `json:"window,omitempty"`
}

// MarshalJSON renders the budget with duration strings:
// {"total":"2s","per_path":"500ms"}. Zero fields are omitted.
func (b Budget) MarshalJSON() ([]byte, error) {
	return json.Marshal(budgetWire{
		Total: Duration(b.Total), PerPath: Duration(b.PerPath), Window: Duration(b.Window),
	})
}

// UnmarshalJSON is the inverse of MarshalJSON; every field also accepts
// integer nanoseconds. Unknown budget fields are rejected, keeping the
// wire schema strict even when a caller decodes a Budget on its own
// (custom UnmarshalJSON would otherwise bypass the enclosing decoder's
// DisallowUnknownFields).
func (b *Budget) UnmarshalJSON(data []byte) error {
	var w budgetWire
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return err
	}
	b.Total, b.PerPath, b.Window = time.Duration(w.Total), time.Duration(w.PerPath), time.Duration(w.Window)
	return nil
}
