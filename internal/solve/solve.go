// Package solve holds the shared vocabulary of the solver pipeline: the
// Budget that bounds a run, the sentinel errors every layer reports
// through errors.Is, and the Stats trace that records what the solvers
// actually did (phase wall times, branch & bound work, simplex pivots,
// incumbent trajectory, wash-path ILP sizes, and the Type 1/2/3
// wash-elimination counts of Sec. II-A).
//
// The package is a leaf: it imports only the standard library and the
// internal/obs observability leaf, so every solver layer (lp, milp,
// washpath, pdw, dawo, synth, harness) and the public pkg/pathdriver
// surface can depend on it without cycles.
package solve

import (
	"context"
	"errors"
	"time"
)

// Sentinel errors of the solve stack. Layers wrap these with %w so
// callers can classify failures with errors.Is instead of string
// matching.
var (
	// ErrInfeasible marks a model or input with no feasible solution
	// (an unsatisfiable ILP, an incumbent violating its constraints, a
	// device library that cannot serve the assay).
	ErrInfeasible = errors.New("infeasible")
	// ErrBudgetExceeded marks a run aborted because a time or round
	// budget expired before any feasible incumbent existed. Solvers
	// holding an incumbent degrade to it instead of returning this.
	ErrBudgetExceeded = errors.New("budget exceeded")
	// ErrInvalidAssay marks a malformed protocol or synthesis request
	// (cyclic sequencing graph, empty operation set, bad device spec).
	ErrInvalidAssay = errors.New("invalid assay")
)

// Budget bounds a solve end to end: one total wall-clock deadline for
// the whole pipeline plus per-phase caps for its inner ILPs. It replaces
// the scattered per-package TimeLimit fields; the zero value means
// "package defaults, no total deadline".
type Budget struct {
	// Total bounds the whole run. The pipeline derives a context
	// deadline from it; on expiry every phase degrades to its best
	// feasible incumbent. 0 means unbounded.
	Total time.Duration
	// PerPath caps each wash-path ILP solve (0: package default, 3 s).
	PerPath time.Duration
	// Window caps the time-window MILP (0: package default, 10 s).
	Window time.Duration
}

// Context derives a context carrying the Total deadline. When Total is
// zero, ctx is returned unchanged with a no-op cancel.
func (b Budget) Context(ctx context.Context) (context.Context, context.CancelFunc) {
	if b.Total <= 0 {
		return ctx, func() {}
	}
	return context.WithDeadline(ctx, time.Now().Add(b.Total))
}

// Or returns d when it is positive, else the fallback chain: the first
// positive of fallbacks, else zero.
func Or(d time.Duration, fallbacks ...time.Duration) time.Duration {
	if d > 0 {
		return d
	}
	for _, f := range fallbacks {
		if f > 0 {
			return f
		}
	}
	return 0
}
