package solve

import (
	"context"
	"math"
	"sync/atomic"
	"time"

	"pathdriverwash/internal/obs"
)

// Progress is the race-safe live view of an in-flight solve: the
// counters the solver hot loops publish (B&B nodes, pruned
// subproblems, incumbents, simplex pivots) plus the current phase,
// ILP model, and incumbent/bound trajectory. Where Stats is the
// post-hoc record read after a solve returns, Progress is readable
// WHILE the solve runs — the /debug/solves registry (internal/obs)
// snapshots it concurrently with the hot loops.
//
// Every field is an atomic and every method is nil-safe, so
// publication sites cost one nil check when no progress view is
// attached and one uncontended atomic op when one is. The hot loops
// only call the counter methods at their existing amortized cadences
// (lp's 64-pivot flush, milp's per-node bookkeeping where each node
// already costs an LP solve), keeping the instrumented path
// allocation-free; see DESIGN.md "Progress snapshot cost contract"
// and BenchmarkProgressOverhead in internal/lp.
type Progress struct {
	start time.Time

	phase atomic.Pointer[string]
	model atomic.Pointer[string]

	nodes      atomic.Int64
	pruned     atomic.Int64
	incumbents atomic.Int64
	pivots     atomic.Int64

	// bestObj and bound hold math.Float64bits values; the has* flags
	// distinguish "never published" from a published zero.
	bestObj  atomic.Uint64
	bound    atomic.Uint64
	hasObj   atomic.Bool
	hasBound atomic.Bool

	canceled atomic.Bool
}

// NewProgress returns a live progress view aged from now.
func NewProgress() *Progress {
	return &Progress{start: time.Now()}
}

// SetPhase publishes the pipeline phase currently running. Called by
// Stats.StartPhase when a progress view is bound, i.e. a handful of
// times per solve.
func (p *Progress) SetPhase(name string) {
	if p == nil {
		return
	}
	p.phase.Store(&name)
}

// SetModel publishes the ILP model currently being solved (once per
// ILP, from washpath's cut rounds and pdw's window MILP).
func (p *Progress) SetModel(label string) {
	if p == nil {
		return
	}
	p.model.Store(&label)
}

// AddNodes counts explored branch & bound nodes.
func (p *Progress) AddNodes(n int64) {
	if p == nil {
		return
	}
	p.nodes.Add(n)
}

// AddPruned counts subproblems discarded by bound.
func (p *Progress) AddPruned(n int64) {
	if p == nil {
		return
	}
	p.pruned.Add(n)
}

// AddPivots counts simplex pivots; lp's pivot loop calls it at its
// 64-pivot flush cadence, never per pivot.
func (p *Progress) AddPivots(n int64) {
	if p == nil {
		return
	}
	p.pivots.Add(n)
}

// Incumbent publishes a new best feasible objective.
func (p *Progress) Incumbent(obj float64) {
	if p == nil {
		return
	}
	p.incumbents.Add(1)
	if !math.IsInf(obj, 0) && !math.IsNaN(obj) {
		p.bestObj.Store(math.Float64bits(obj))
		p.hasObj.Store(true)
	}
}

// SetBound publishes the best proven lower bound of the running ILP.
// Non-finite bounds (the root node's -inf) are ignored so the snapshot
// stays JSON-encodable.
func (p *Progress) SetBound(b float64) {
	if p == nil {
		return
	}
	if math.IsInf(b, 0) || math.IsNaN(b) {
		return
	}
	p.bound.Store(math.Float64bits(b))
	p.hasBound.Store(true)
}

// MarkCanceled flags the solve as budget-expired (degrading to
// incumbents). Stats.MarkCanceled forwards here when a view is bound.
func (p *Progress) MarkCanceled() {
	if p == nil {
		return
	}
	p.canceled.Store(true)
}

// Snapshot captures the current state. Safe to call concurrently with
// the running solve; the counters are read individually, so a snapshot
// is not a single atomic cut across all of them — good enough for a
// monitoring view, never used for accounting.
func (p *Progress) Snapshot() obs.SolveSnapshot {
	if p == nil {
		return obs.SolveSnapshot{}
	}
	s := obs.SolveSnapshot{
		Nodes:      p.nodes.Load(),
		Pruned:     p.pruned.Load(),
		Incumbents: p.incumbents.Load(),
		Pivots:     p.pivots.Load(),
		Canceled:   p.canceled.Load(),
		Elapsed:    time.Since(p.start),
	}
	if ph := p.phase.Load(); ph != nil {
		s.Phase = *ph
	}
	if m := p.model.Load(); m != nil {
		s.Model = *m
	}
	if p.hasObj.Load() {
		obj := math.Float64frombits(p.bestObj.Load())
		s.BestObj = &obj
		if p.hasBound.Load() {
			bound := math.Float64frombits(p.bound.Load())
			s.Bound = &bound
			// Relative gap, clamped at zero: with the incumbent read
			// before the bound, a concurrent improvement can transiently
			// put the bound above the incumbent.
			gap := (obj - bound) / math.Max(1, math.Abs(obj))
			if gap < 0 {
				gap = 0
			}
			s.Gap = &gap
		}
	} else if p.hasBound.Load() {
		bound := math.Float64frombits(p.bound.Load())
		s.Bound = &bound
	}
	return s
}

// progressKey carries a *Progress in a context.
type progressKey struct{}

// WithProgress returns a context carrying p; the solver layers beneath
// (lp's pivot loop, milp's node loop, washpath's cut rounds) resolve
// it once per solve via ProgressFromContext and publish into it.
func WithProgress(ctx context.Context, p *Progress) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, progressKey{}, p)
}

// ProgressFromContext returns the live progress view carried by ctx,
// or nil. Resolved once at solver entry points — never inside a hot
// loop.
func ProgressFromContext(ctx context.Context) *Progress {
	if ctx == nil {
		return nil
	}
	p, _ := ctx.Value(progressKey{}).(*Progress)
	return p
}
