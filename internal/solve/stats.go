package solve

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"pathdriverwash/internal/obs"
)

// Incumbent is one point of a branch & bound incumbent trajectory: a new
// best feasible solution found Elapsed into the solve at node Node.
type Incumbent struct {
	Obj     float64       `json:"obj"`
	Node    int           `json:"node"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// MILPStat describes one ILP/MILP solve: its size, the branch & bound
// work it did, and how it ended.
type MILPStat struct {
	// Label identifies the solve ("wash-path w3", "window-milp", ...).
	Label string `json:"label"`
	// Vars / IntVars / Constraints give the model size.
	Vars        int `json:"vars"`
	IntVars     int `json:"int_vars"`
	Constraints int `json:"constraints"`
	// Nodes and Pruned count branch & bound subproblems explored and
	// discarded by bound; SimplexIters sums LP pivots across all node
	// relaxations.
	Nodes        int `json:"nodes"`
	Pruned       int `json:"pruned"`
	SimplexIters int `json:"simplex_iters"`
	// Status is the solver's final status string.
	Status string `json:"status"`
	// Optimal reports a proven optimum (false: best-effort incumbent).
	Optimal bool `json:"optimal"`
	// Wall is the solve's wall-clock time.
	Wall time.Duration `json:"wall_ns"`
	// Incumbents is the incumbent trajectory of the solve.
	Incumbents []Incumbent `json:"incumbents,omitempty"`
}

// PhaseStat is the wall time of one pipeline phase.
type PhaseStat struct {
	Name string        `json:"name"`
	Wall time.Duration `json:"wall_ns"`
}

// Stats is the structured telemetry of one optimizer run, threaded
// through the solve call path. All methods are safe for concurrent use
// and tolerate a nil receiver, so call sites never need to guard.
// Stats marshals to JSON with stable snake_case field names and
// duration fields in nanoseconds — it is the telemetry half of the pdwd
// solve response (DESIGN.md "Wire schema v1"). Marshal only after the
// solve has finished: encoding/json reads the exported fields without
// taking mu.
type Stats struct {
	mu sync.Mutex
	// Phases are the pipeline phases in execution order.
	Phases []PhaseStat `json:"phases,omitempty"`
	// MILPs are the ILP solves, in execution order.
	MILPs []MILPStat `json:"milps,omitempty"`
	// Skips counts contamination events excused per Type 1/2/3 rule
	// (keys "type1-unused", "type2-same-fluid", "type3-waste-only",
	// "wash-needed").
	Skips map[string]int `json:"skips,omitempty"`
	// Canceled reports that the run's context was canceled or its
	// deadline expired and later phases degraded to incumbents.
	Canceled bool `json:"canceled,omitempty"`

	// progress is the optional live view of the run (see Progress):
	// StartPhase and MarkCanceled mirror into it so /debug/solves shows
	// the current phase without any extra call-site bookkeeping. Not
	// marshaled — the wire carries final Stats, the registry live ones.
	progress *Progress
}

// BindProgress attaches a live progress view: subsequent StartPhase
// and MarkCanceled calls mirror into it. Nil-safe on both sides.
func (s *Stats) BindProgress(p *Progress) {
	if s == nil || p == nil {
		return
	}
	s.mu.Lock()
	s.progress = p
	s.mu.Unlock()
}

// Progress returns the bound live view, or nil.
func (s *Stats) Progress() *Progress {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.progress
}

// StartPhase opens a named phase and returns the closer that records
// its wall time. Usage: defer s.StartPhase("window-milp")(). The
// closer also feeds the process-wide pdw_phase_seconds histogram when
// the observability layer is enabled, so Stats and the metrics
// registry stay consistent without parallel bookkeeping at call sites.
func (s *Stats) StartPhase(name string) func() {
	if s == nil {
		return func() {}
	}
	s.Progress().SetPhase(name)
	t0 := time.Now()
	return func() {
		wall := time.Since(t0)
		if obs.Enabled() {
			obs.Default().Histogram("pdw_phase_seconds", nil, "phase", name).
				Observe(wall.Seconds())
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		s.Phases = append(s.Phases, PhaseStat{Name: name, Wall: wall})
	}
}

// StartPhaseContext is StartPhase plus span tracing: it opens a
// "phase.<name>" span parented under ctx and returns the derived
// context, so solves inside the phase nest under it in the trace. The
// closer ends the span and records the wall time exactly as StartPhase
// does. Safe on a nil receiver and with observability disabled (the
// returned context is then ctx unchanged).
func (s *Stats) StartPhaseContext(ctx context.Context, name string) (context.Context, func()) {
	ctx, span := obs.Start(ctx, "phase."+name)
	end := s.StartPhase(name)
	return ctx, func() {
		span.End()
		end()
	}
}

// PhaseList returns a copy of the recorded phases in execution order.
// The solve service snapshots it into the flight recorder's per-request
// records (internal/obs/reqlog), which must not alias the live slice.
func (s *Stats) PhaseList() []PhaseStat {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]PhaseStat(nil), s.Phases...)
}

// PhaseSeconds sums the recorded phase wall times by name, in seconds.
// It returns nil when no phases were recorded, so callers can embed the
// map directly into omitempty JSON fields (the bench-file per-phase
// breakdown in internal/report).
func (s *Stats) PhaseSeconds() map[string]float64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.Phases) == 0 {
		return nil
	}
	out := make(map[string]float64, len(s.Phases))
	for _, p := range s.Phases {
		out[p.Name] += p.Wall.Seconds()
	}
	return out
}

// AddMILP appends one ILP solve record.
func (s *Stats) AddMILP(m MILPStat) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.MILPs = append(s.MILPs, m)
}

// SetSkips records the wash-necessity skip counts, mirroring them to
// the pdw_necessity_skips_total counter family when observability is
// enabled.
func (s *Stats) SetSkips(skips map[string]int) {
	if s == nil {
		return
	}
	if obs.Enabled() {
		for reason, n := range skips {
			obs.Default().Counter("pdw_necessity_skips_total", "reason", reason).Add(int64(n))
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Skips = skips
}

// MarkCanceled flags the run as budget-expired.
func (s *Stats) MarkCanceled() {
	if s == nil {
		return
	}
	s.mu.Lock()
	p := s.progress
	s.Canceled = true
	s.mu.Unlock()
	p.MarkCanceled()
}

// Nodes sums explored branch & bound nodes over all ILP solves.
func (s *Stats) Nodes() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, m := range s.MILPs {
		n += m.Nodes
	}
	return n
}

// Pruned sums bound-pruned subproblems over all ILP solves.
func (s *Stats) Pruned() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, m := range s.MILPs {
		n += m.Pruned
	}
	return n
}

// SimplexIters sums simplex pivots over all ILP solves.
func (s *Stats) SimplexIters() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, m := range s.MILPs {
		n += m.SimplexIters
	}
	return n
}

// Summary renders the trace as an indented human-readable block, the
// format cmd/pdw -stats and cmd/pdwbench print.
func (s *Stats) Summary() string {
	if s == nil {
		return "  (no stats recorded)"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	for _, p := range s.Phases {
		fmt.Fprintf(&b, "  phase %-16s %8.1fms\n", p.Name, p.Wall.Seconds()*1e3)
	}
	if len(s.Skips) > 0 {
		keys := make([]string, 0, len(s.Skips))
		for k := range s.Skips {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("  necessity skips:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, s.Skips[k])
		}
		b.WriteByte('\n')
	}
	nodes, pruned, iters := 0, 0, 0
	for _, m := range s.MILPs {
		nodes += m.Nodes
		pruned += m.Pruned
		iters += m.SimplexIters
	}
	fmt.Fprintf(&b, "  ILP solves: %d (B&B nodes %d explored / %d pruned, %d simplex pivots)\n",
		len(s.MILPs), nodes, pruned, iters)
	for _, m := range s.MILPs {
		fmt.Fprintf(&b, "    %-18s %4dv/%3di/%4dc  nodes %5d  %-15s %7.1fms",
			m.Label, m.Vars, m.IntVars, m.Constraints, m.Nodes, m.Status, m.Wall.Seconds()*1e3)
		if len(m.Incumbents) > 0 {
			last := m.Incumbents[len(m.Incumbents)-1]
			fmt.Fprintf(&b, "  incumbents %d (best %.2f @%dms)",
				len(m.Incumbents), last.Obj, last.Elapsed.Milliseconds())
		}
		b.WriteByte('\n')
	}
	if s.Canceled {
		b.WriteString("  budget expired: later phases degraded to incumbents\n")
	}
	return strings.TrimRight(b.String(), "\n")
}
