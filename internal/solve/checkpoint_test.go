package solve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// countingCtx counts Err() polls so the cadence tests can prove the
// stride amortization instead of assuming it.
type countingCtx struct {
	context.Context
	polls int
}

func (c *countingCtx) Err() error {
	c.polls++
	return c.Context.Err()
}

func TestCheckpointStrideCadence(t *testing.T) {
	cc := &countingCtx{Context: context.Background()}
	cp := NewCheckpointStride(cc, 64)
	for i := 0; i < 640; i++ {
		if err := cp.Check(); err != nil {
			t.Fatalf("Check on live context: %v", err)
		}
	}
	if cc.polls != 10 {
		t.Fatalf("640 checks at stride 64 polled ctx.Err %d times, want 10", cc.polls)
	}
}

func TestCheckpointObservesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cp := NewCheckpointStride(ctx, 8)
	for i := 0; i < 3; i++ {
		if err := cp.Check(); err != nil {
			t.Fatalf("Check before cancel: %v", err)
		}
	}
	cancel()
	var got error
	for i := 0; i < 16 && got == nil; i++ {
		got = cp.Check()
	}
	if !errors.Is(got, context.Canceled) {
		t.Fatalf("Check after cancel = %v, want context.Canceled within one stride", got)
	}
	if !cp.Canceled() {
		t.Fatal("Canceled() false after Check observed cancellation")
	}
}

func TestCheckpointLatchesError(t *testing.T) {
	cc := &countingCtx{}
	ctx, cancel := context.WithCancel(context.Background())
	cc.Context = ctx
	cancel()
	cp := NewCheckpointStride(cc, 1)
	if err := cp.Check(); !errors.Is(err, context.Canceled) {
		t.Fatalf("first Check = %v, want context.Canceled", err)
	}
	polls := cc.polls
	for i := 0; i < 100; i++ {
		if err := cp.Check(); !errors.Is(err, context.Canceled) {
			t.Fatalf("latched Check = %v, want context.Canceled", err)
		}
	}
	if cc.polls != polls {
		t.Fatalf("latched checkpoint re-polled the context %d extra times", cc.polls-polls)
	}
}

func TestCheckpointErrBypassesStride(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cp := NewCheckpoint(ctx)
	if err := cp.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err on canceled context = %v, want context.Canceled", err)
	}
	if !cp.Canceled() {
		t.Fatal("Canceled() false after Err observed cancellation")
	}
}

func TestCheckpointNilSafety(t *testing.T) {
	var nilCp *Checkpoint
	if err := nilCp.Check(); err != nil {
		t.Fatalf("nil receiver Check = %v", err)
	}
	if err := nilCp.Err(); err != nil {
		t.Fatalf("nil receiver Err = %v", err)
	}
	if nilCp.Canceled() {
		t.Fatal("nil receiver Canceled() = true")
	}
	noCtx := NewCheckpoint(nil)
	for i := 0; i < 200; i++ {
		if err := noCtx.Check(); err != nil {
			t.Fatalf("nil-context Check = %v", err)
		}
	}
}

func TestCheckpointStrideFloor(t *testing.T) {
	cc := &countingCtx{Context: context.Background()}
	cp := NewCheckpointStride(cc, 0)
	for i := 0; i < 5; i++ {
		if err := cp.Check(); err != nil {
			t.Fatalf("Check: %v", err)
		}
	}
	if cc.polls != 5 {
		t.Fatalf("stride 0 should clamp to 1 (poll every Check); polled %d/5", cc.polls)
	}
}

func TestCheckpointZeroAlloc(t *testing.T) {
	ctx := context.Background()
	cp := NewCheckpoint(ctx)
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 256; i++ {
			if err := cp.Check(); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Check allocated %.1f times per 256 iterations, want 0", allocs)
	}
}

func TestObserveOverrun(t *testing.T) {
	if over := ObserveOverrun(context.Background()); over != 0 {
		t.Fatalf("no-deadline context reported overrun %v", over)
	}
	future, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	if over := ObserveOverrun(future); over != 0 {
		t.Fatalf("unexpired deadline reported overrun %v", over)
	}
	past, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-50*time.Millisecond))
	defer cancel2()
	if over := ObserveOverrun(past); over < 50*time.Millisecond {
		t.Fatalf("expired deadline reported overrun %v, want >= 50ms", over)
	}
	if over := ObserveOverrun(nil); over != 0 {
		t.Fatalf("nil context reported overrun %v", over)
	}
}
