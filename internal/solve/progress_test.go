package solve

import (
	"context"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.SetPhase("x")
	p.SetModel("y")
	p.AddNodes(1)
	p.AddPruned(1)
	p.AddPivots(1)
	p.Incumbent(1)
	p.SetBound(1)
	p.MarkCanceled()
	s := p.Snapshot()
	if s.Nodes != 0 || s.Phase != "" || s.BestObj != nil {
		t.Fatalf("nil Progress snapshot not zero: %+v", s)
	}
}

func TestProgressSnapshot(t *testing.T) {
	p := NewProgress()
	p.SetPhase("wash-path-ilp")
	p.SetModel("wash-path[3t r0]")
	p.AddNodes(10)
	p.AddPruned(4)
	p.AddPivots(128)
	p.Incumbent(20)
	p.SetBound(15)

	s := p.Snapshot()
	if s.Phase != "wash-path-ilp" || s.Model != "wash-path[3t r0]" {
		t.Fatalf("phase/model = %q/%q", s.Phase, s.Model)
	}
	if s.Nodes != 10 || s.Pruned != 4 || s.Pivots != 128 || s.Incumbents != 1 {
		t.Fatalf("counters = %+v", s)
	}
	if s.BestObj == nil || *s.BestObj != 20 {
		t.Fatalf("best_obj = %v", s.BestObj)
	}
	if s.Bound == nil || *s.Bound != 15 {
		t.Fatalf("bound = %v", s.Bound)
	}
	// Relative gap (20-15)/20 = 0.25.
	if s.Gap == nil || math.Abs(*s.Gap-0.25) > 1e-12 {
		t.Fatalf("gap = %v, want 0.25", s.Gap)
	}
	if s.Elapsed <= 0 {
		t.Fatalf("elapsed = %v", s.Elapsed)
	}
}

func TestProgressGapClampedAndProvenOptimum(t *testing.T) {
	p := NewProgress()
	p.Incumbent(10)
	p.SetBound(12) // transient: bound read after a better incumbent landed
	if s := p.Snapshot(); s.Gap == nil || *s.Gap != 0 {
		t.Fatalf("gap = %v, want clamped 0", s.Gap)
	}
	p.SetBound(10) // proven optimum
	if s := p.Snapshot(); s.Gap == nil || *s.Gap != 0 {
		t.Fatalf("proven-optimal gap = %v, want 0", s.Gap)
	}
}

func TestProgressNonFiniteRejected(t *testing.T) {
	p := NewProgress()
	p.SetBound(math.Inf(-1)) // the root node's trivial bound
	p.Incumbent(math.Inf(1))
	p.Incumbent(math.NaN())
	s := p.Snapshot()
	if s.Bound != nil || s.BestObj != nil || s.Gap != nil {
		t.Fatalf("non-finite values leaked into snapshot: %+v", s)
	}
	if s.Incumbents != 2 {
		t.Fatalf("incumbents = %d (the count still ticks)", s.Incumbents)
	}
	// The snapshot must always be JSON-encodable (NaN would error).
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
}

func TestProgressContextCarrier(t *testing.T) {
	if got := ProgressFromContext(context.Background()); got != nil {
		t.Fatalf("empty context carries %v", got)
	}
	if got := ProgressFromContext(nil); got != nil { //nolint:staticcheck // nil-safety contract
		t.Fatalf("nil context carries %v", got)
	}
	p := NewProgress()
	ctx := WithProgress(context.Background(), p)
	if got := ProgressFromContext(ctx); got != p {
		t.Fatalf("context carries %v, want %v", got, p)
	}
	if ctx2 := WithProgress(context.Background(), nil); ProgressFromContext(ctx2) != nil {
		t.Fatal("WithProgress(nil) should be a no-op")
	}
}

func TestProgressConcurrent(t *testing.T) {
	p := NewProgress()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				p.AddNodes(1)
				p.AddPivots(2)
				if j%100 == 0 {
					p.Incumbent(float64(1000 - j))
					p.SetBound(float64(j))
				}
				_ = p.Snapshot()
			}
		}(i)
	}
	wg.Wait()
	s := p.Snapshot()
	if s.Nodes != 8000 || s.Pivots != 16000 || s.Incumbents != 80 {
		t.Fatalf("counters after concurrent publish: %+v", s)
	}
}

func TestStatsBindProgress(t *testing.T) {
	p := NewProgress()
	st := &Stats{}
	st.BindProgress(p)
	if st.Progress() != p {
		t.Fatal("BindProgress not retrievable")
	}
	end := st.StartPhase("necessity-analysis")
	end()
	if s := p.Snapshot(); s.Phase != "necessity-analysis" {
		t.Fatalf("StartPhase did not publish phase: %q", s.Phase)
	}
	st.MarkCanceled()
	if !p.Snapshot().Canceled {
		t.Fatal("MarkCanceled did not propagate to progress")
	}
}
