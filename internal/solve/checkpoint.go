package solve

import (
	"context"
	"time"

	"pathdriverwash/internal/obs"
)

// CheckpointStride is the default cancellation-poll cadence: one
// ctx.Err() poll per 64 iterations, the same amortization internal/lp
// uses for its pivot loop. At typical hot-loop iteration costs (a BFS
// probe, a contamination event comparison, a pairwise swap) this keeps
// the poll overhead unmeasurable while bounding the distance between
// deadline expiry and loop exit to well under a millisecond.
const CheckpointStride = 64

// Checkpoint is the amortized cancellation probe of the solver hot
// loops. It is a plain value — embed it in a loop frame or pass a
// pointer down a call chain — and costs one counter increment per
// Check, with ctx.Err() polled once per stride. Once cancellation is
// observed the error latches, so every later Check returns it without
// touching the context again.
//
// Check returns the bare context error (context.Canceled or
// context.DeadlineExceeded); callers wrap it with their own sentinel
// (solve.ErrBudgetExceeded) at the layer boundary. A nil receiver and
// a nil context are both safe and never report cancellation, so
// context-free entry points can share the checkpointed code paths.
type Checkpoint struct {
	ctx    context.Context
	stride uint32
	n      uint32
	err    error
}

// NewCheckpoint returns a checkpoint over ctx at the default stride.
func NewCheckpoint(ctx context.Context) Checkpoint {
	return NewCheckpointStride(ctx, CheckpointStride)
}

// NewCheckpointStride returns a checkpoint polling ctx.Err() once per
// stride Check calls. The very first Check polls immediately (as lp's
// pivot loop does at iteration zero), so an already-done context is
// observed before any loop work. Strides below 1 are raised to 1
// (poll on every Check).
func NewCheckpointStride(ctx context.Context, stride int) Checkpoint {
	if stride < 1 {
		stride = 1
	}
	return Checkpoint{ctx: ctx, stride: uint32(stride), n: uint32(stride - 1)}
}

// Check counts one loop iteration and, once per stride, polls the
// context. It returns nil while the run is live and the latched
// context error once the deadline expired or the run was canceled.
func (c *Checkpoint) Check() error {
	if c == nil || c.ctx == nil {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	if c.n++; c.n < c.stride {
		return nil
	}
	c.n = 0
	c.err = c.ctx.Err()
	return c.err
}

// Err polls the context immediately, bypassing the stride, and latches
// the result. Loop headers that run rarely but do expensive work per
// iteration (a fixpoint round, an ILP cut round) use Err instead of
// Check so every iteration observes cancellation.
func (c *Checkpoint) Err() error {
	if c == nil || c.ctx == nil {
		return nil
	}
	if c.err == nil {
		c.err = c.ctx.Err()
	}
	return c.err
}

// Canceled reports whether an earlier Check or Err observed
// cancellation. It never polls the context, so it is free to call on
// every iteration of a loop that degrades (rather than aborts) once
// the budget expires.
func (c *Checkpoint) Canceled() bool { return c != nil && c.err != nil }

// overrunHist records how far past its context deadline each solve
// returned. The handle is resolved once at package load, mirroring the
// lp pivot-counter pattern; the disabled cost of ObserveOverrun is one
// Deadline() call plus one atomic load.
var overrunHist = obs.Default().Histogram("pdw_deadline_overrun_seconds",
	[]float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10})

// ObserveOverrun measures how far past ctx's deadline the caller is
// returning and records it in the pdw_deadline_overrun_seconds
// histogram. It returns the overrun (zero when ctx has no deadline or
// the deadline has not passed) so pipeline exits can also log it. Call
// it at every solver return path that may follow a deadline expiry —
// the histogram is the production evidence that the checkpoint
// granularity contract (DESIGN.md) holds.
func ObserveOverrun(ctx context.Context) time.Duration {
	if ctx == nil {
		return 0
	}
	d, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	over := time.Since(d)
	if over <= 0 {
		return 0
	}
	if obs.Enabled() {
		overrunHist.Observe(over.Seconds())
	}
	return over
}
