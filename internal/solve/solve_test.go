package solve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestSentinelsMatchThroughWrapping(t *testing.T) {
	for _, sentinel := range []error{ErrInfeasible, ErrBudgetExceeded, ErrInvalidAssay} {
		wrapped := fmt.Errorf("layer: %w: detail", sentinel)
		double := fmt.Errorf("outer: %w", wrapped)
		if !errors.Is(double, sentinel) {
			t.Errorf("errors.Is lost %v through double wrapping", sentinel)
		}
	}
	if errors.Is(fmt.Errorf("x: %w", ErrInfeasible), ErrBudgetExceeded) {
		t.Error("sentinels must not match each other")
	}
}

func TestBudgetContextZeroIsNoop(t *testing.T) {
	ctx := context.Background()
	got, cancel := Budget{}.Context(ctx)
	defer cancel()
	if got != ctx {
		t.Fatal("zero Total must return ctx unchanged")
	}
	if _, ok := got.Deadline(); ok {
		t.Fatal("zero Total must not install a deadline")
	}
}

func TestBudgetContextInstallsDeadline(t *testing.T) {
	got, cancel := Budget{Total: time.Minute}.Context(context.Background())
	defer cancel()
	d, ok := got.Deadline()
	if !ok {
		t.Fatal("no deadline installed")
	}
	if until := time.Until(d); until <= 0 || until > time.Minute {
		t.Fatalf("deadline %v from now, want (0, 1m]", until)
	}
}

func TestOr(t *testing.T) {
	if Or(time.Second, time.Minute) != time.Second {
		t.Error("positive d must win")
	}
	if Or(0, 0, time.Minute) != time.Minute {
		t.Error("first positive fallback must win")
	}
	if Or(0) != 0 {
		t.Error("no positives must give zero")
	}
}

func TestStatsNilSafe(t *testing.T) {
	var s *Stats
	s.StartPhase("p")()
	s.AddMILP(MILPStat{})
	s.SetSkips(map[string]int{"x": 1})
	s.MarkCanceled()
	if s.Nodes() != 0 || s.Pruned() != 0 || s.SimplexIters() != 0 {
		t.Error("nil Stats must report zero work")
	}
	if s.Summary() == "" {
		t.Error("nil Stats must still render a summary")
	}
}

func TestStatsAggregationAndSummary(t *testing.T) {
	s := &Stats{}
	end := s.StartPhase("wash-insertion")
	end()
	s.AddMILP(MILPStat{Label: "wash-path[1t r0]", Nodes: 3, Pruned: 1, SimplexIters: 40,
		Status: "optimal", Optimal: true,
		Incumbents: []Incumbent{{Obj: 7, Node: 2, Elapsed: time.Millisecond}}})
	s.AddMILP(MILPStat{Label: "window-milp", Nodes: 5, Pruned: 2, SimplexIters: 60, Status: "feasible(limit)"})
	s.SetSkips(map[string]int{"type1-unused": 2, "wash-needed": 1})
	s.MarkCanceled()
	if s.Nodes() != 8 || s.Pruned() != 3 || s.SimplexIters() != 100 {
		t.Fatalf("aggregates = %d/%d/%d", s.Nodes(), s.Pruned(), s.SimplexIters())
	}
	sum := s.Summary()
	for _, want := range []string{
		"wash-insertion", "wash-path[1t r0]", "window-milp",
		"type1-unused=2", "budget expired",
	} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}
