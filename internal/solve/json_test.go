package solve

import (
	"encoding/json"
	"testing"
	"time"
)

func TestBudgetJSONRoundTrip(t *testing.T) {
	b := Budget{Total: 2 * time.Second, PerPath: 500 * time.Millisecond, Window: 10 * time.Second}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"total":"2s","per_path":"500ms","window":"10s"}`
	if string(data) != want {
		t.Fatalf("marshal: got %s want %s", data, want)
	}
	var back Budget
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != b {
		t.Fatalf("round trip: got %+v want %+v", back, b)
	}
}

func TestBudgetJSONZeroOmits(t *testing.T) {
	data, err := json.Marshal(Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{}" {
		t.Fatalf("zero budget: got %s want {}", data)
	}
}

func TestBudgetJSONAcceptsNanoseconds(t *testing.T) {
	var b Budget
	if err := json.Unmarshal([]byte(`{"total":2000000000}`), &b); err != nil {
		t.Fatal(err)
	}
	if b.Total != 2*time.Second {
		t.Fatalf("ns decode: got %v want 2s", b.Total)
	}
}

func TestBudgetJSONRejects(t *testing.T) {
	cases := []string{
		`{"total":"2 parsecs"}`,      // unparseable duration
		`{"total":true}`,             // wrong type
		`{"deadline":"2s"}`,          // unknown field
		`{"total":"2s","extra":"x"}`, // unknown field beside a valid one
	}
	for _, c := range cases {
		var b Budget
		if err := json.Unmarshal([]byte(c), &b); err == nil {
			t.Errorf("decode %s: expected error, got %+v", c, b)
		}
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	s := &Stats{
		Phases: []PhaseStat{{Name: "wash-insertion", Wall: 42 * time.Millisecond}},
		MILPs: []MILPStat{{
			Label: "window-milp", Vars: 10, IntVars: 4, Constraints: 20,
			Nodes: 7, Pruned: 3, SimplexIters: 99, Status: "optimal", Optimal: true,
			Wall:       time.Millisecond,
			Incumbents: []Incumbent{{Obj: 1.5, Node: 2, Elapsed: time.Millisecond}},
		}},
		Skips:    map[string]int{"type2-same-fluid": 3},
		Canceled: true,
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Stats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatalf("re-marshal mismatch:\n%s\n%s", data, again)
	}
	for _, key := range []string{`"phases"`, `"milps"`, `"skips"`, `"canceled"`, `"wall_ns"`, `"simplex_iters"`} {
		if !contains(string(data), key) {
			t.Errorf("marshal missing %s in %s", key, data)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
