package benchmarks

import (
	"fmt"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/synth"
)

// syntheticParams shapes one generated benchmark so that the published
// |O| / |D| / |E| of Table II are matched exactly: the generator first
// builds a layered DAG with the requested edge count, then distributes
// exactly enough reagent injections to make the fluidic-task total hit
// the |E| target (edges + injections + sink disposals).
type syntheticParams struct {
	name    string
	ops     int
	edges   int
	tasks   int // |E| target: edges + injections + sinks
	layers  int
	seed    uint64
	devices []synth.DeviceSpec
	paper   PaperRow
}

// xorshift is a tiny deterministic PRNG so synthetic benchmarks never
// change across Go releases (math/rand ordering is not guaranteed).
type xorshift struct{ s uint64 }

func (x *xorshift) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}

func (x *xorshift) intn(n int) int { return int(x.next() % uint64(n)) }

// opIndex parses "o<k>" back to its zero-based index.
func opIndex(id string) int {
	var k int
	fmt.Sscanf(id, "o%d", &k)
	return k - 1
}

var synthKinds = []assay.OpKind{assay.Mix, assay.Heat, assay.Detect, assay.Mix, assay.Dilute}

// generate builds the synthetic assay.
func generate(p syntheticParams) *Benchmark {
	rng := &xorshift{s: p.seed}
	a := assay.New(p.name)

	// Operations over layers (round-robin), deterministic kinds/durations.
	layerOf := make([]int, p.ops)
	for i := 0; i < p.ops; i++ {
		layerOf[i] = i * p.layers / p.ops
		kind := synthKinds[rng.intn(len(synthKinds))]
		dur := 2 + rng.intn(4)
		a.MustAddOp(&assay.Operation{
			ID: fmt.Sprintf("o%d", i+1), Kind: kind, Duration: dur,
			Output: assay.FluidType(fmt.Sprintf("%s-f%d", p.name, i)),
		})
	}
	// Forward edges between consecutive-ish layers until the edge budget
	// is spent. Every non-first-layer op gets at least one predecessor.
	edges := 0
	hasSucc := make([]bool, p.ops)
	for i := 0; i < p.ops && edges < p.edges; i++ {
		if layerOf[i] == 0 {
			continue
		}
		// Predecessor from an earlier layer, preferring ops that feed
		// nothing yet: distinct edge sources keep the sink count (and
		// hence the disposal count) minimal.
		var fresh, cands []int
		for j := 0; j < p.ops; j++ {
			if layerOf[j] < layerOf[i] {
				cands = append(cands, j)
				if !hasSucc[j] {
					fresh = append(fresh, j)
				}
			}
		}
		pool := fresh
		if len(pool) == 0 {
			pool = cands
		}
		pre := pool[rng.intn(len(pool))]
		a.MustAddEdge(fmt.Sprintf("o%d", pre+1), fmt.Sprintf("o%d", i+1))
		hasSucc[pre] = true
		edges++
	}
	// Spend the remaining edge budget from current sinks first: deep
	// chains keep the sink count (and hence the disposal count) low so
	// the injection budget can cover every source.
	for guard := 0; edges < p.edges && guard < 10*p.edges; guard++ {
		var from int
		sinks := a.Sinks()
		picked := false
		for attempt := 0; attempt < len(sinks); attempt++ {
			cand := sinks[rng.intn(len(sinks))]
			idx := opIndex(cand)
			if layerOf[idx] < p.layers-1 {
				from, picked = idx, true
				break
			}
		}
		if !picked {
			from = rng.intn(p.ops)
		}
		to := rng.intn(p.ops)
		if layerOf[from] >= layerOf[to] {
			continue
		}
		if err := a.AddEdge(fmt.Sprintf("o%d", from+1), fmt.Sprintf("o%d", to+1)); err != nil {
			continue // duplicate; try again
		}
		edges++
	}

	// Detection does not transform its sample: a single-input detect op
	// outputs its predecessor's fluid, creating Type-2 skip
	// opportunities just like the paper's motivating example.
	for _, o := range a.Ops() {
		if o.Kind != assay.Detect {
			continue
		}
		if preds := a.Preds(o.ID); len(preds) == 1 {
			o.Output = a.Op(preds[0]).Output
		}
	}

	// Reagent budget: tasks = edges + injections + sinks.
	sinks := len(a.Sinks())
	injections := p.tasks - edges - sinks
	if injections < len(a.Sources()) {
		panic(fmt.Sprintf("benchmarks: %s needs %d injections but has %d sources",
			p.name, injections, len(a.Sources())))
	}
	// Every source op needs at least one reagent; distribute the rest
	// round-robin over all ops.
	given := 0
	for _, id := range a.Sources() {
		op := a.Op(id)
		op.Reagents = append(op.Reagents, assay.FluidType(fmt.Sprintf("%s-r%d", p.name, given)))
		given++
	}
	i := 0
	for given < injections {
		op := a.Ops()[i%len(a.Ops())]
		op.Reagents = append(op.Reagents, assay.FluidType(fmt.Sprintf("%s-r%d", p.name, given)))
		given++
		i++
	}
	if err := a.Validate(); err != nil {
		panic(fmt.Sprintf("benchmarks: generated %s invalid: %v", p.name, err))
	}
	return &Benchmark{
		Name:   p.name,
		Assay:  a,
		Config: synth.Config{Devices: p.devices},
		Paper:  p.paper,
	}
}

// Synthetic1 is the first generated workload. |O|=10, |D|=12, |E|=15.
func Synthetic1() *Benchmark {
	return generate(syntheticParams{
		name: "Synthetic1", ops: 10, edges: 9, tasks: 15, layers: 4, seed: 101,
		devices: []synth.DeviceSpec{
			{Kind: grid.Mixer, Count: 4}, {Kind: grid.Heater, Count: 3},
			{Kind: grid.Detector, Count: 3}, {Kind: grid.Diluter, Count: 2},
		},
		paper: PaperRow{
			Ops: 10, Devices: 12, FluidicTasks: 15,
			DAWO: PaperMetrics{NWash: 10, LWash: 290, TDelay: 19, TAssay: 58},
			PDW:  PaperMetrics{NWash: 8, LWash: 220, TDelay: 13, TAssay: 52},
		},
	})
}

// Synthetic2 is the second generated workload. |O|=15, |D|=13, |E|=24.
func Synthetic2() *Benchmark {
	return generate(syntheticParams{
		name: "Synthetic2", ops: 15, edges: 14, tasks: 24, layers: 5, seed: 202,
		devices: []synth.DeviceSpec{
			{Kind: grid.Mixer, Count: 5}, {Kind: grid.Heater, Count: 3},
			{Kind: grid.Detector, Count: 3}, {Kind: grid.Diluter, Count: 2},
		},
		paper: PaperRow{
			Ops: 15, Devices: 13, FluidicTasks: 24,
			DAWO: PaperMetrics{NWash: 16, LWash: 300, TDelay: 29, TAssay: 78},
			PDW:  PaperMetrics{NWash: 16, LWash: 260, TDelay: 21, TAssay: 70},
		},
	})
}

// Synthetic3 is the third generated workload. |O|=20, |D|=18, |E|=28.
func Synthetic3() *Benchmark {
	return generate(syntheticParams{
		name: "Synthetic3", ops: 20, edges: 18, tasks: 28, layers: 6, seed: 303,
		devices: []synth.DeviceSpec{
			{Kind: grid.Mixer, Count: 6}, {Kind: grid.Heater, Count: 4},
			{Kind: grid.Detector, Count: 4}, {Kind: grid.Diluter, Count: 4},
		},
		paper: PaperRow{
			Ops: 20, Devices: 18, FluidicTasks: 28,
			DAWO: PaperMetrics{NWash: 18, LWash: 460, TDelay: 35, TAssay: 92},
			PDW:  PaperMetrics{NWash: 15, LWash: 320, TDelay: 23, TAssay: 80},
		},
	})
}
