package benchmarks

import (
	"testing"

	"pathdriverwash/internal/contam"
)

func TestTableIIShapeCounts(t *testing.T) {
	for _, b := range All() {
		ops, _, tasks := b.Assay.Stats()
		if ops != b.Paper.Ops {
			t.Errorf("%s: |O| = %d want %d", b.Name, ops, b.Paper.Ops)
		}
		devices := 0
		for _, d := range b.Config.Devices {
			devices += d.Count
		}
		if devices != b.Paper.Devices {
			t.Errorf("%s: |D| = %d want %d", b.Name, devices, b.Paper.Devices)
		}
		if tasks != b.Paper.FluidicTasks {
			t.Errorf("%s: |E| (fluidic tasks) = %d want %d", b.Name, tasks, b.Paper.FluidicTasks)
		}
	}
}

func TestAllValidate(t *testing.T) {
	for _, b := range All() {
		if err := b.Assay.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestAllSynthesize(t *testing.T) {
	for _, b := range All() {
		res, err := b.Synthesize()
		if err != nil {
			t.Errorf("%s: synthesize: %v", b.Name, err)
			continue
		}
		if err := res.Chip.Validate(); err != nil {
			t.Errorf("%s: chip: %v", b.Name, err)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Errorf("%s: schedule: %v", b.Name, err)
		}
		an, err := contam.Analyze(res.Schedule)
		if err != nil {
			t.Errorf("%s: analyze: %v", b.Name, err)
			continue
		}
		t.Logf("%s: makespan=%ds tasks=%d contamination-events=%d requirements=%d",
			b.Name, res.Schedule.Makespan(), len(res.Schedule.Tasks()),
			len(an.Events), len(an.Requirements))
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("PCR")
	if err != nil || b.Name != "PCR" {
		t.Fatalf("ByName(PCR) = %v, %v", b, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name must fail")
	}
}

// TestByNameErrorListsValidNames pins the unknown-name message: it
// must quote the bad name and enumerate every valid one in Table II
// order, so a typo on the pdwbench command line is self-correcting.
func TestByNameErrorListsValidNames(t *testing.T) {
	_, err := ByName("pcr")
	if err == nil {
		t.Fatal("lookup is not case-sensitive?")
	}
	const want = `benchmarks: unknown benchmark "pcr" (valid: PCR, IVD, ProteinSplit, ` +
		`Kinase act-1, Kinase act-2, Synthetic1, Synthetic2, Synthetic3)`
	if got := err.Error(); got != want {
		t.Errorf("error message drifted:\n got %q\nwant %q", got, want)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a1, a2 := Synthetic1().Assay, Synthetic1().Assay
	o1, _ := a1.TopoOrder()
	o2, _ := a2.TopoOrder()
	if len(o1) != len(o2) {
		t.Fatal("sizes differ")
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("synthetic generation nondeterministic")
		}
	}
	e1, e2 := a1.Edges(), a2.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("edges differ")
		}
	}
}

func TestSyntheticsDiffer(t *testing.T) {
	s1, s2 := Synthetic1().Assay, Synthetic2().Assay
	if len(s1.Ops()) == len(s2.Ops()) {
		t.Fatal("synthetic sizes should differ")
	}
}

func TestPaperRowsPopulated(t *testing.T) {
	for _, b := range All() {
		if b.Paper.DAWO.TAssay == 0 || b.Paper.PDW.TAssay == 0 {
			t.Errorf("%s: missing paper metrics", b.Name)
		}
		if b.Paper.PDW.NWash > b.Paper.DAWO.NWash {
			t.Errorf("%s: paper has PDW washing more than DAWO?", b.Name)
		}
	}
}

func TestMotivatingExample(t *testing.T) {
	a, chip, err := Motivating()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Ops()) != 7 {
		t.Fatalf("ops = %d want 7", len(a.Ops()))
	}
	if len(chip.Devices()) != 5 || len(chip.FlowPorts()) != 4 || len(chip.WastePorts()) != 4 {
		t.Fatalf("chip shape wrong: %d devices %d/%d ports",
			len(chip.Devices()), len(chip.FlowPorts()), len(chip.WastePorts()))
	}
}
