package benchmarks

import (
	"fmt"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
)

// Motivating returns the paper's running example of Figs. 1(c)/2: a
// seven-operation bioassay over two input reagents, executed on a
// hand-built chip with a filter, a mixer, a heater, two detectors, four
// flow ports and four waste ports — the setting of Table I and the
// optimized schedule of Fig. 3.
//
// The sequencing graph follows the narrative of Sec. II: r1 is filtered
// (o1) and the filtrate both mixed with r2 (o2) and measured on
// detector1 (o3); o2's product is measured on detector2 (o4); o3's
// sample is incubated (o5); o4's and o5's products are combined (o6)
// and the final mixture measured (o7). Detection does not transform its
// sample, so o3/o4 keep their input fluid types — exactly the Type-2
// situations discussed in Sec. II-A.
func Motivating() (*assay.Assay, *grid.Chip, error) {
	a := assay.New("motivating")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Filter, Duration: 3, Output: "filtrate",
		Reagents: []assay.FluidType{"r1"}}).
		MustAddOp(&assay.Operation{ID: "o2", Kind: assay.Mix, Duration: 3, Output: "mix12",
			Reagents: []assay.FluidType{"r2"}}).
		MustAddOp(&assay.Operation{ID: "o3", Kind: assay.Detect, Duration: 2, Output: "filtrate"}).
		MustAddOp(&assay.Operation{ID: "o4", Kind: assay.Detect, Duration: 2, Output: "mix12"}).
		MustAddOp(&assay.Operation{ID: "o5", Kind: assay.Heat, Duration: 3, Output: "heated"}).
		MustAddOp(&assay.Operation{ID: "o6", Kind: assay.Mix, Duration: 3, Output: "final"}).
		MustAddOp(&assay.Operation{ID: "o7", Kind: assay.Detect, Duration: 2, Output: "final"})
	a.MustAddEdge("o1", "o2").MustAddEdge("o1", "o3").
		MustAddEdge("o2", "o4").MustAddEdge("o3", "o5").
		MustAddEdge("o4", "o6").MustAddEdge("o5", "o6").
		MustAddEdge("o6", "o7")
	if err := a.Validate(); err != nil {
		return nil, nil, err
	}

	chip, err := motivatingChip()
	if err != nil {
		return nil, nil, err
	}
	return a, chip, nil
}

// motivatingChip hand-builds a Fig. 2(a)-style layout: five devices on a
// street grid, four flow ports (two top, two left) and four waste ports
// (two bottom, two right).
func motivatingChip() (*grid.Chip, error) {
	c := grid.NewChip("motivating", 13, 13)
	type dev struct {
		id   string
		kind grid.DeviceKind
		at   geom.Rect
	}
	for _, d := range []dev{
		{"filter", grid.Filter, geom.Rc(2, 2, 4, 4)},
		{"detector1", grid.Detector, geom.Rc(8, 2, 10, 4)},
		{"mixer", grid.Mixer, geom.Rc(5, 5, 7, 7)},
		{"detector2", grid.Detector, geom.Rc(2, 8, 4, 10)},
		{"heater", grid.Heater, geom.Rc(8, 8, 10, 10)},
	} {
		if _, err := c.AddDevice(d.id, d.kind, d.at); err != nil {
			return nil, err
		}
	}
	type port struct {
		id   string
		kind grid.PortKind
		at   geom.Point
	}
	for _, p := range []port{
		{"in1", grid.FlowPort, geom.Pt(1, 0)},
		{"in2", grid.FlowPort, geom.Pt(7, 0)},
		{"in3", grid.FlowPort, geom.Pt(0, 4)},
		{"in4", grid.FlowPort, geom.Pt(0, 10)},
		{"out1", grid.WastePort, geom.Pt(4, 12)},
		{"out2", grid.WastePort, geom.Pt(12, 1)},
		{"out3", grid.WastePort, geom.Pt(10, 12)},
		{"out4", grid.WastePort, geom.Pt(12, 7)},
	} {
		if _, err := c.AddPort(p.id, p.kind, p.at); err != nil {
			return nil, err
		}
	}
	// Streets every third interior row/column (1, 4, 7, 10) plus the
	// ring row/column 11 so the right/bottom ports connect.
	for y := 1; y < 12; y++ {
		for x := 1; x < 12; x++ {
			if (x-1)%3 == 0 || (y-1)%3 == 0 {
				if err := c.AddChannel(geom.Pt(x, y)); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("motivating chip: %w", err)
	}
	return c, nil
}
