// Metamorphic tests over the paper's benchmark suite: transformations
// that provably cannot change solution quality must leave every
// optimizer's n_wash and l_wash_mm untouched on every Table II
// benchmark. The suite lives in an external test package because the
// transformations come from internal/corpus, which imports benchmarks.
//
// Two transformations, two scopes (see internal/corpus/metamorphic.go
// and DESIGN.md for the soundness argument):
//
//   - Fluid relabeling is invariant END-TO-END: synthesis and both
//     optimizers only ever compare fluid types for equality, so the
//     relabeled assay re-synthesizes and re-solves to the same quality.
//   - Op-ID permutation is invariant only at the WASH LAYER: synthesis
//     breaks placement ties on sorted op IDs, so the permutation is
//     applied to the synthesized schedule and only the wash optimizers
//     re-run.
//
// Both solvers run in their deterministic heuristic mode (BFS paths,
// greedy windows — no ILP time limits that could make reference and
// transformed solves diverge by timing noise).
package benchmarks_test

import (
	"context"
	"testing"
	"time"

	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/corpus"
	"pathdriverwash/internal/dawo"
	"pathdriverwash/internal/pdw"
	"pathdriverwash/internal/schedule"
	"pathdriverwash/internal/solve"
)

const metamorphicSeed = 7

func heuristicOpts() pdw.Options {
	return pdw.Options{
		HeuristicPaths:   true,
		HeuristicWindows: true,
		Budget:           solve.Budget{Total: 30 * time.Second},
	}
}

func solvePDW(t *testing.T, base *schedule.Schedule) schedule.Metrics {
	t.Helper()
	res, err := pdw.OptimizeContext(context.Background(), base, heuristicOpts())
	if err != nil {
		t.Fatalf("pdw: %v", err)
	}
	return res.Schedule.ComputeMetrics(base)
}

func solveDAWO(t *testing.T, base *schedule.Schedule) schedule.Metrics {
	t.Helper()
	res, err := dawo.OptimizeContext(context.Background(), base, dawo.Options{
		Budget: solve.Budget{Total: 30 * time.Second},
	})
	if err != nil {
		t.Fatalf("dawo: %v", err)
	}
	return res.Schedule.ComputeMetrics(base)
}

func sameQuality(t *testing.T, method, transform string, got, want schedule.Metrics) {
	t.Helper()
	if got.NWash != want.NWash || got.LWashMM != want.LWashMM {
		t.Errorf("%s after %s: n_wash %d (want %d), l_wash_mm %g (want %g)",
			method, transform, got.NWash, want.NWash, got.LWashMM, want.LWashMM)
	}
}

// suite returns the benchmarks under test: every Table II benchmark in
// a full run, the two cheapest representatives in -short.
func suite(t *testing.T) []*benchmarks.Benchmark {
	all := benchmarks.All()
	if !testing.Short() {
		return all
	}
	short := make([]*benchmarks.Benchmark, 0, 2)
	for _, b := range all {
		if b.Name == "PCR" || b.Name == "Synthetic1" {
			short = append(short, b)
		}
	}
	if len(short) == 0 {
		t.Fatal("short suite selected no benchmarks")
	}
	return short
}

func TestRelabelInvariantTableII(t *testing.T) {
	for _, b := range suite(t) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			syn, err := b.Synthesize()
			if err != nil {
				t.Fatal(err)
			}
			refPDW := solvePDW(t, syn.Schedule)
			refDAWO := solveDAWO(t, syn.Schedule)

			rb, err := corpus.RelabelBenchmark(b, metamorphicSeed)
			if err != nil {
				t.Fatal(err)
			}
			rsyn, err := rb.Synthesize()
			if err != nil {
				t.Fatalf("relabeled benchmark no longer synthesizes: %v", err)
			}
			sameQuality(t, "pdw", "fluid relabeling", solvePDW(t, rsyn.Schedule), refPDW)
			sameQuality(t, "dawo", "fluid relabeling", solveDAWO(t, rsyn.Schedule), refDAWO)
		})
	}
}

func TestPermuteInvariantTableII(t *testing.T) {
	for _, b := range suite(t) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			syn, err := b.Synthesize()
			if err != nil {
				t.Fatal(err)
			}
			refPDW := solvePDW(t, syn.Schedule)
			refDAWO := solveDAWO(t, syn.Schedule)

			p, err := corpus.PermuteOpIDs(syn.Schedule, metamorphicSeed)
			if err != nil {
				t.Fatal(err)
			}
			sameQuality(t, "pdw", "op-ID permutation", solvePDW(t, p), refPDW)
			sameQuality(t, "dawo", "op-ID permutation", solveDAWO(t, p), refDAWO)
		})
	}
}
