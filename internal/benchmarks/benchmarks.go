// Package benchmarks defines the eight evaluation workloads of Table II
// — five real-life bioassays (PCR, IVD, ProteinSplit, Kinase act-1/2)
// and three synthetic benchmarks — plus the paper's motivating example
// of Figs. 1(c)/2.
//
// The exact protocols behind Table II are not published; following
// DESIGN.md, each benchmark reproduces the published |O| (operations)
// and |D| (devices) exactly, and |E| is interpreted as the number of
// fluidic tasks (reagent injections + inter-operation transports +
// waste disposals), the only reading consistent with rows like Kinase
// act-1 (|O|=4, |E|=16, impossible for DAG edges). The paper's Table II
// values are attached to each benchmark for EXPERIMENTS.md comparisons.
package benchmarks

import (
	"context"
	"fmt"
	"strings"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/synth"
)

// PaperMetrics is one method's row slice from Table II.
type PaperMetrics struct {
	NWash  int
	LWash  float64 // mm
	TDelay int     // s
	TAssay int     // s
}

// PaperRow is the published Table II row for one benchmark.
type PaperRow struct {
	Ops, Devices, FluidicTasks int // the |O| / |D| / |E| columns
	DAWO, PDW                  PaperMetrics
}

// Benchmark is one Table II workload.
type Benchmark struct {
	Name   string
	Assay  *assay.Assay
	Config synth.Config
	Paper  PaperRow
}

// Synthesize builds the chip architecture and wash-free scheduling.
func (b *Benchmark) Synthesize() (*synth.Result, error) {
	return synth.Synthesize(b.Assay, b.Config)
}

// SynthesizeContext is Synthesize under a context (see
// synth.SynthesizeContext for the cancellation contract).
func (b *Benchmark) SynthesizeContext(ctx context.Context) (*synth.Result, error) {
	return synth.SynthesizeContext(ctx, b.Assay, b.Config)
}

// All returns the eight Table II benchmarks in paper order.
func All() []*Benchmark {
	return []*Benchmark{
		PCR(), IVD(), ProteinSplit(), KinaseAct1(), KinaseAct2(),
		Synthetic1(), Synthetic2(), Synthetic3(),
	}
}

// ByName looks a benchmark up by its Table II name.
func ByName(name string) (*Benchmark, error) {
	all := All()
	for _, b := range all {
		if b.Name == name {
			return b, nil
		}
	}
	names := make([]string, len(all))
	for i, b := range all {
		names[i] = b.Name
	}
	return nil, fmt.Errorf("benchmarks: unknown benchmark %q (valid: %s)",
		name, strings.Join(names, ", "))
}

func op(id string, k assay.OpKind, dur int, out assay.FluidType, reagents ...assay.FluidType) *assay.Operation {
	return &assay.Operation{ID: id, Kind: k, Duration: dur, Output: out, Reagents: reagents}
}

// PCR is the polymerase chain reaction mixing tree: six sample/reagent
// mixes feeding a final thermocycling step. |O|=7, |D|=5, |E|=15.
func PCR() *Benchmark {
	a := assay.New("PCR")
	a.MustAddOp(op("m1", assay.Mix, 2, "ab", "primer-a", "primer-b")).
		MustAddOp(op("m2", assay.Mix, 2, "cd", "template", "polymerase")).
		MustAddOp(op("m3", assay.Mix, 2, "ef", "dntp", "buffer")).
		MustAddOp(op("m4", assay.Mix, 2, "gh", "mgcl2", "sample")).
		MustAddOp(op("m5", assay.Mix, 3, "abcd")).
		MustAddOp(op("m6", assay.Mix, 3, "efgh")).
		MustAddOp(op("h7", assay.Heat, 6, "pcr-mix"))
	a.MustAddEdge("m1", "m5").MustAddEdge("m2", "m5").
		MustAddEdge("m3", "m6").MustAddEdge("m4", "m6").
		MustAddEdge("m5", "h7").MustAddEdge("m6", "h7")
	return &Benchmark{
		Name:  "PCR",
		Assay: a,
		Config: synth.Config{Devices: []synth.DeviceSpec{
			{Kind: grid.Mixer, Count: 4}, {Kind: grid.Heater, Count: 1},
		}},
		Paper: PaperRow{
			Ops: 7, Devices: 5, FluidicTasks: 15,
			DAWO: PaperMetrics{NWash: 4, LWash: 110, TDelay: 10, TAssay: 33},
			PDW:  PaperMetrics{NWash: 3, LWash: 80, TDelay: 7, TAssay: 30},
		},
	}
}

// IVD is an in-vitro diagnostics panel: four sample/reagent mixes, each
// measured, then pairwise combined and incubated. |O|=12, |D|=9, |E|=24.
func IVD() *Benchmark {
	a := assay.New("IVD")
	a.MustAddOp(op("m1", assay.Mix, 2, "s1", "plasma", "glucose-rgt")).
		MustAddOp(op("m2", assay.Mix, 2, "s2", "plasma2", "lactate-rgt")).
		MustAddOp(op("m3", assay.Mix, 2, "s3", "serum", "pyruvate-rgt")).
		MustAddOp(op("m4", assay.Mix, 2, "s4", "urine", "glutamate-rgt")).
		MustAddOp(op("t1", assay.Detect, 3, "s1", "lumi-agent1")).
		MustAddOp(op("t2", assay.Detect, 3, "s2", "lumi-agent2")).
		MustAddOp(op("t3", assay.Detect, 3, "s3")).
		MustAddOp(op("t4", assay.Detect, 3, "s4")).
		MustAddOp(op("m5", assay.Mix, 2, "s12", "diluent")).
		MustAddOp(op("m6", assay.Mix, 2, "s34", "diluent")).
		MustAddOp(op("h1", assay.Heat, 4, "s12i")).
		MustAddOp(op("h2", assay.Heat, 4, "s34i"))
	a.MustAddEdge("m1", "t1").MustAddEdge("m2", "t2").
		MustAddEdge("m3", "t3").MustAddEdge("m4", "t4").
		MustAddEdge("t1", "m5").MustAddEdge("t2", "m5").
		MustAddEdge("t3", "m6").MustAddEdge("t4", "m6").
		MustAddEdge("m5", "h1").MustAddEdge("m6", "h2")
	return &Benchmark{
		Name:  "IVD",
		Assay: a,
		Config: synth.Config{Devices: []synth.DeviceSpec{
			{Kind: grid.Mixer, Count: 4}, {Kind: grid.Detector, Count: 3},
			{Kind: grid.Heater, Count: 2},
		}},
		Paper: PaperRow{
			Ops: 12, Devices: 9, FluidicTasks: 24,
			DAWO: PaperMetrics{NWash: 10, LWash: 200, TDelay: 21, TAssay: 51},
			PDW:  PaperMetrics{NWash: 6, LWash: 150, TDelay: 16, TAssay: 46},
		},
	}
}

// ProteinSplit is a protein dilution/split tree: an initial mix diluted
// through two levels, measured, with two incubations and a final
// recombination. |O|=14, |D|=11, |E|=27.
func ProteinSplit() *Benchmark {
	a := assay.New("ProteinSplit")
	a.MustAddOp(op("m1", assay.Mix, 2, "p0", "protein", "buffer")).
		MustAddOp(op("d1", assay.Dilute, 2, "p1", "dil-buffer")).
		MustAddOp(op("d2", assay.Dilute, 2, "p2", "dil-buffer")).
		MustAddOp(op("d3", assay.Dilute, 2, "p3", "dil-buffer")).
		MustAddOp(op("d4", assay.Dilute, 2, "p4", "dil-buffer")).
		MustAddOp(op("d5", assay.Dilute, 2, "p5", "dil-buffer")).
		MustAddOp(op("d6", assay.Dilute, 2, "p6", "dil-buffer")).
		MustAddOp(op("t1", assay.Detect, 3, "p3")).
		MustAddOp(op("t2", assay.Detect, 3, "p4", "stain")).
		MustAddOp(op("t3", assay.Detect, 3, "p5")).
		MustAddOp(op("t4", assay.Detect, 3, "p6")).
		MustAddOp(op("h1", assay.Heat, 4, "p3h")).
		MustAddOp(op("h2", assay.Heat, 4, "p4h")).
		MustAddOp(op("m2", assay.Mix, 2, "pf", "fixative"))
	a.MustAddEdge("m1", "d1").MustAddEdge("m1", "d2").
		MustAddEdge("d1", "d3").MustAddEdge("d1", "d4").
		MustAddEdge("d2", "d5").MustAddEdge("d2", "d6").
		MustAddEdge("d3", "t1").MustAddEdge("d4", "t2").
		MustAddEdge("d5", "t3").MustAddEdge("d6", "t4").
		MustAddEdge("t1", "h1").MustAddEdge("t2", "h2").
		MustAddEdge("h1", "m2").MustAddEdge("h2", "m2")
	return &Benchmark{
		Name:  "ProteinSplit",
		Assay: a,
		Config: synth.Config{Devices: []synth.DeviceSpec{
			{Kind: grid.Mixer, Count: 2}, {Kind: grid.Diluter, Count: 4},
			{Kind: grid.Detector, Count: 3}, {Kind: grid.Heater, Count: 2},
		}},
		Paper: PaperRow{
			Ops: 14, Devices: 11, FluidicTasks: 27,
			DAWO: PaperMetrics{NWash: 12, LWash: 220, TDelay: 15, TAssay: 110},
			PDW:  PaperMetrics{NWash: 10, LWash: 160, TDelay: 7, TAssay: 102},
		},
	}
}

// KinaseAct1 is a single kinase activity assay: a many-reagent master
// mix, incubation, quench mix, and luminescence readout. |O|=4, |D|=9,
// |E|=16 (reagent-injection heavy).
func KinaseAct1() *Benchmark {
	a := assay.New("Kinase act-1")
	a.MustAddOp(op("m1", assay.Mix, 3, "kmix",
		"kinase", "substrate", "atp", "kbuffer", "mgcl2", "dtt")).
		MustAddOp(op("h1", assay.Heat, 6, "kinc")).
		MustAddOp(op("m2", assay.Mix, 2, "kq", "quench", "detect-mix", "stabilizer", "carrier")).
		MustAddOp(op("t1", assay.Detect, 4, "kq", "lumi-agent", "enhancer"))
	a.MustAddEdge("m1", "h1").MustAddEdge("h1", "m2").MustAddEdge("m2", "t1")
	return &Benchmark{
		Name:  "Kinase act-1",
		Assay: a,
		Config: synth.Config{Devices: []synth.DeviceSpec{
			{Kind: grid.Mixer, Count: 3}, {Kind: grid.Heater, Count: 2},
			{Kind: grid.Detector, Count: 2}, {Kind: grid.Filter, Count: 1},
			{Kind: grid.Storage, Count: 1},
		}},
		Paper: PaperRow{
			Ops: 4, Devices: 9, FluidicTasks: 16,
			DAWO: PaperMetrics{NWash: 3, LWash: 80, TDelay: 5, TAssay: 38},
			PDW:  PaperMetrics{NWash: 3, LWash: 60, TDelay: 3, TAssay: 36},
		},
	}
}

// KinaseAct2 is three kinase activity assays multiplexed on one chip.
// |O|=12, |D|=9, |E|=48.
func KinaseAct2() *Benchmark {
	a := assay.New("Kinase act-2")
	for i := 1; i <= 3; i++ {
		sfx := fmt.Sprintf("%d", i)
		kin := assay.FluidType("kinase" + sfx)
		a.MustAddOp(op("m1"+sfx, assay.Mix, 3, assay.FluidType("kmix"+sfx),
			kin, "substrate", "atp", "kbuffer", assay.FluidType("cofactor"+sfx), "dtt")).
			MustAddOp(op("h1"+sfx, assay.Heat, 5, assay.FluidType("kinc"+sfx))).
			MustAddOp(op("m2"+sfx, assay.Mix, 2, assay.FluidType("kq"+sfx),
				"quench", "detect-mix", "carrier", assay.FluidType("probe"+sfx))).
			MustAddOp(op("t1"+sfx, assay.Detect, 3, assay.FluidType("kq"+sfx),
				"lumi-agent", assay.FluidType("enhancer"+sfx)))
		a.MustAddEdge("m1"+sfx, "h1"+sfx).
			MustAddEdge("h1"+sfx, "m2"+sfx).
			MustAddEdge("m2"+sfx, "t1"+sfx)
	}
	return &Benchmark{
		Name:  "Kinase act-2",
		Assay: a,
		Config: synth.Config{Devices: []synth.DeviceSpec{
			{Kind: grid.Mixer, Count: 3}, {Kind: grid.Heater, Count: 3},
			{Kind: grid.Detector, Count: 3},
		}},
		Paper: PaperRow{
			Ops: 12, Devices: 9, FluidicTasks: 48,
			DAWO: PaperMetrics{NWash: 17, LWash: 250, TDelay: 33, TAssay: 87},
			PDW:  PaperMetrics{NWash: 13, LWash: 190, TDelay: 25, TAssay: 79},
		},
	}
}
