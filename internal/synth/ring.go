package synth

import (
	"fmt"

	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
)

// Topology selects the generated chip's channel architecture.
type Topology int

// Chip topologies.
const (
	// StreetGrid is the default Manhattan mesh: channels on every third
	// row and column, devices in the blocks between.
	StreetGrid Topology = iota
	// Ring places all devices around a single loop channel with one
	// cross spine — the compact architecture of many fabricated chips.
	// Paths contend for the loop, so wash scheduling pressure is higher.
	Ring
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case StreetGrid:
		return "street-grid"
	case Ring:
		return "ring"
	}
	return fmt.Sprintf("Topology(%d)", int(t))
}

// buildRingChip arranges the devices around a rectangular loop channel:
// devices sit outside the loop touching it, ports hang off the loop's
// outer corners, and a central cross spine gives the router one
// shortcut so the loop does not become a single point of contention.
//
// Layout sketch for six devices (D blocks, - loop, + spine, I/O ports):
//
//	. I . . . . . . .
//	. - - - - - - - .
//	. - D D . D D - .
//	. - . . + . . - .
//	. - + + + + + - .
//	. - . . + . . - .
//	. - D D . D D - .
//	. - - - - - - - O
//	. . . . . . . . .
func buildRingChip(name string, specs []DeviceSpec, cfg Config) (*grid.Chip, error) {
	total := 0
	for _, s := range specs {
		total += s.Count
	}
	if total == 0 {
		return nil, fmt.Errorf("synth: ring chip with no devices")
	}
	// Devices split over the top and bottom inner rows; each block is
	// blockSize wide plus a 1-cell gap.
	perRow := (total + 1) / 2
	innerW := perRow*(blockSize+1) + 1
	w := innerW + 4 // ring + margin on both sides
	h := 3*blockSize + 8
	chip := grid.NewChip(name, w, h)
	if cfg.CellLengthMM > 0 {
		chip.CellLengthMM = cfg.CellLengthMM
	}
	if cfg.FlowVelocityMMs > 0 {
		chip.FlowVelocityMMs = cfg.FlowVelocityMMs
	}
	if cfg.DissolutionS > 0 {
		chip.DissolutionS = cfg.DissolutionS
	}

	left, right := 1, w-2
	top, bottom := 1, h-2

	// Devices first (AddChannel skips occupied cells).
	idx := 0
	counts := map[grid.DeviceKind]int{}
	for _, s := range specs {
		for c := 0; c < s.Count; c++ {
			row := idx % 2 // alternate top/bottom
			col := idx / 2
			x0 := left + 1 + col*(blockSize+1)
			y0 := top + 1
			if row == 1 {
				y0 = bottom - blockSize
			}
			counts[s.Kind]++
			id := fmt.Sprintf("%s%d", s.Kind, counts[s.Kind])
			if _, err := chip.AddDevice(id, s.Kind, geom.Rc(x0, y0, x0+blockSize, y0+blockSize)); err != nil {
				return nil, fmt.Errorf("synth: ring device %s: %w", id, err)
			}
			idx++
		}
	}

	// Ports on the outer boundary adjacent to ring corners and edge
	// midpoints.
	nf := cfg.FlowPorts
	if nf <= 0 {
		nf = maxInt(2, (total+2)/3)
	}
	nw := cfg.WastePorts
	if nw <= 0 {
		nw = maxInt(2, (total+2)/3)
	}
	flowSpots := []geom.Point{
		{X: left, Y: 0}, {X: 0, Y: top}, {X: w / 2, Y: 0}, {X: 0, Y: h / 2},
		{X: left + 2, Y: 0}, {X: 0, Y: top + 2},
	}
	wasteSpots := []geom.Point{
		{X: right, Y: h - 1}, {X: w - 1, Y: bottom}, {X: w / 2, Y: h - 1}, {X: w - 1, Y: h / 2},
		{X: right - 2, Y: h - 1}, {X: w - 1, Y: bottom - 2},
	}
	if nf > len(flowSpots) {
		nf = len(flowSpots)
	}
	if nw > len(wasteSpots) {
		nw = len(wasteSpots)
	}
	for i := 0; i < nf; i++ {
		if _, err := chip.AddPort(fmt.Sprintf("in%d", i+1), grid.FlowPort, flowSpots[i]); err != nil {
			return nil, fmt.Errorf("synth: ring flow port: %w", err)
		}
	}
	for i := 0; i < nw; i++ {
		if _, err := chip.AddPort(fmt.Sprintf("out%d", i+1), grid.WastePort, wasteSpots[i]); err != nil {
			return nil, fmt.Errorf("synth: ring waste port: %w", err)
		}
	}

	// The loop.
	for x := left; x <= right; x++ {
		if err := chip.AddChannel(geom.Pt(x, top)); err != nil {
			return nil, err
		}
		if err := chip.AddChannel(geom.Pt(x, bottom)); err != nil {
			return nil, err
		}
	}
	for y := top; y <= bottom; y++ {
		if err := chip.AddChannel(geom.Pt(left, y)); err != nil {
			return nil, err
		}
		if err := chip.AddChannel(geom.Pt(right, y)); err != nil {
			return nil, err
		}
	}
	// Inner access rows so every device touches a channel, plus the
	// central spine connecting them.
	accessTop := top + 1 + blockSize
	accessBottom := bottom - 1 - blockSize
	for x := left + 1; x < right; x++ {
		if err := chip.AddChannel(geom.Pt(x, accessTop)); err != nil {
			return nil, err
		}
		if err := chip.AddChannel(geom.Pt(x, accessBottom)); err != nil {
			return nil, err
		}
	}
	mid := w / 2
	for y := accessTop; y <= accessBottom; y++ {
		if err := chip.AddChannel(geom.Pt(mid, y)); err != nil {
			return nil, err
		}
	}

	if err := chip.Validate(); err != nil {
		return nil, fmt.Errorf("synth: ring chip: %w", err)
	}
	return chip, nil
}
