package synth

import (
	"strings"
	"testing"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/schedule"
)

// chainAssay builds a linear mix -> heat -> detect protocol.
func chainAssay(t *testing.T) *assay.Assay {
	t.Helper()
	a := assay.New("chain")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 3, Output: "f1",
		Reagents: []assay.FluidType{"r1", "r2"}})
	a.MustAddOp(&assay.Operation{ID: "o2", Kind: assay.Heat, Duration: 2, Output: "f2"})
	a.MustAddOp(&assay.Operation{ID: "o3", Kind: assay.Detect, Duration: 2, Output: "f2"})
	a.MustAddEdge("o1", "o2")
	a.MustAddEdge("o2", "o3")
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a
}

// wideAssay has parallelism: two mixes feeding a third.
func wideAssay(t *testing.T) *assay.Assay {
	t.Helper()
	a := assay.New("wide")
	a.MustAddOp(&assay.Operation{ID: "m1", Kind: assay.Mix, Duration: 2, Output: "fa",
		Reagents: []assay.FluidType{"r1", "r2"}})
	a.MustAddOp(&assay.Operation{ID: "m2", Kind: assay.Mix, Duration: 2, Output: "fb",
		Reagents: []assay.FluidType{"r3", "r4"}})
	a.MustAddOp(&assay.Operation{ID: "m3", Kind: assay.Mix, Duration: 3, Output: "fc"})
	a.MustAddEdge("m1", "m3")
	a.MustAddEdge("m2", "m3")
	return a
}

func TestSynthesizeChain(t *testing.T) {
	res, err := Synthesize(chainAssay(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Chip.Validate(); err != nil {
		t.Fatalf("chip invalid: %v", err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	if len(res.Chip.Devices()) != 3 {
		t.Errorf("devices = %d want 3 (one per kind)", len(res.Chip.Devices()))
	}
	for _, opID := range []string{"o1", "o2", "o3"} {
		if res.Binding[opID] == nil {
			t.Errorf("op %s unbound", opID)
		}
		if res.Schedule.OpTask(opID) == nil {
			t.Errorf("op %s unscheduled", opID)
		}
	}
}

func TestScheduleHasAllTaskKinds(t *testing.T) {
	res, err := Synthesize(chainAssay(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Schedule
	if n := len(s.TasksOf(schedule.Operation)); n != 3 {
		t.Errorf("op tasks = %d want 3", n)
	}
	// 2 injections + 2 transports.
	if n := len(s.TasksOf(schedule.Transport)); n != 4 {
		t.Errorf("transports = %d want 4", n)
	}
	if n := len(s.TasksOf(schedule.Removal)); n == 0 {
		t.Error("no removal tasks")
	}
	// o3 is a sink: one disposal.
	if n := len(s.TasksOf(schedule.WasteDisposal)); n != 1 {
		t.Errorf("disposals = %d want 1", n)
	}
}

func TestCompletePathShape(t *testing.T) {
	res, err := Synthesize(chainAssay(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range res.Schedule.Tasks() {
		if !task.Kind.Fluidic() {
			continue
		}
		if err := task.Path.ValidateComplete(res.Chip); err != nil {
			t.Errorf("task %s path not complete: %v", task.ID, err)
		}
	}
}

func TestTransportPassesThroughDevices(t *testing.T) {
	res, err := Synthesize(chainAssay(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Schedule.TransportFor("o1", "o2")
	if tr == nil {
		t.Fatal("missing transport o1->o2")
	}
	src, dst := res.Binding["o1"], res.Binding["o2"]
	touches := func(d *grid.Device) bool {
		for _, c := range tr.Path.Cells {
			if res.Chip.DeviceAt(c) == d {
				return true
			}
		}
		return false
	}
	if !touches(src) || !touches(dst) {
		t.Errorf("transport path misses a device: %s", tr.Path.Describe(res.Chip))
	}
}

func TestContaminationSegments(t *testing.T) {
	res, err := Synthesize(chainAssay(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Schedule.TransportFor("o1", "o2")
	if len(tr.ContamCells) == 0 {
		t.Fatal("transport contaminates nothing")
	}
	src := res.Binding["o1"]
	for _, c := range tr.ContamCells {
		if !tr.Path.Contains(c) && res.Chip.DeviceAt(c) != src {
			t.Errorf("contam cell %v not on path nor in source device", c)
		}
		if res.Chip.PortAt(c) != nil {
			t.Errorf("port cell %v marked contaminated", c)
		}
	}
	if len(tr.ExcessCells) == 0 || len(tr.ExcessCells) > 2 {
		t.Errorf("excess cells = %v", tr.ExcessCells)
	}
	// Excess cells are adjacent chain cells on the path.
	if len(tr.ExcessCells) == 2 && !tr.ExcessCells[0].Adjacent(tr.ExcessCells[1]) {
		t.Errorf("excess cells not a chain: %v", tr.ExcessCells)
	}
}

func TestRemovalCoversExcess(t *testing.T) {
	res, err := Synthesize(chainAssay(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	rm := res.Schedule.RemovalFor("o1", "o2")
	if rm == nil {
		t.Fatal("missing removal for o1->o2")
	}
	if !rm.Path.Covers(rm.ExcessCells) {
		t.Error("removal path misses excess cells")
	}
	tr := res.Schedule.TransportFor("o1", "o2")
	if rm.Start < tr.End {
		t.Error("removal before transport (Eq. 5)")
	}
	op2 := res.Schedule.OpTask("o2")
	if rm.End > op2.Start {
		t.Error("removal after consumer start (Eq. 5)")
	}
}

func TestParallelOpsOverlapOnDistinctDevices(t *testing.T) {
	res, err := Synthesize(wideAssay(t), Config{
		Devices: []DeviceSpec{{Kind: grid.Mixer, Count: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := res.Schedule.OpTask("m1"), res.Schedule.OpTask("m2")
	if res.Binding["m1"] == res.Binding["m2"] {
		t.Fatal("load balancing should use distinct mixers")
	}
	// With three mixers the two independent ops should be able to overlap
	// (not strictly required, but the greedy placer packs them early).
	if m1.Start >= m2.End || m2.Start >= m1.End {
		t.Logf("note: m1=%v m2=%v did not overlap", m1, m2)
	}
}

func TestDeviceLibraryChecked(t *testing.T) {
	_, err := Synthesize(chainAssay(t), Config{
		Devices: []DeviceSpec{{Kind: grid.Mixer, Count: 1}}, // no heater/detector
	})
	if err == nil || !strings.Contains(err.Error(), "needs a") {
		t.Fatalf("missing device kind not detected: %v", err)
	}
	_, err = Synthesize(chainAssay(t), Config{
		Devices: []DeviceSpec{{Kind: grid.Mixer, Count: 0}},
	})
	if err == nil {
		t.Fatal("zero count must fail")
	}
}

func TestPortCounts(t *testing.T) {
	res, err := Synthesize(chainAssay(t), Config{FlowPorts: 4, WastePorts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chip.FlowPorts()) != 4 || len(res.Chip.WastePorts()) != 3 {
		t.Errorf("ports = %d/%d want 4/3",
			len(res.Chip.FlowPorts()), len(res.Chip.WastePorts()))
	}
}

func TestPhysicalParameters(t *testing.T) {
	res, err := Synthesize(chainAssay(t), Config{
		CellLengthMM: 2.5, FlowVelocityMMs: 5, DissolutionS: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Chip
	if c.CellLengthMM != 2.5 || c.FlowVelocityMMs != 5 || c.DissolutionS != 3 {
		t.Errorf("params not applied: %+v", c)
	}
}

func TestDeterministic(t *testing.T) {
	r1, err := Synthesize(chainAssay(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Synthesize(chainAssay(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Schedule.Makespan() != r2.Schedule.Makespan() {
		t.Fatal("synthesis is nondeterministic")
	}
	ts1, ts2 := r1.Schedule.Tasks(), r2.Schedule.Tasks()
	if len(ts1) != len(ts2) {
		t.Fatal("task counts differ")
	}
	for i := range ts1 {
		if ts1[i].ID != ts2[i].ID || ts1[i].Start != ts2[i].Start ||
			ts1[i].Path.String() != ts2[i].Path.String() {
			t.Fatalf("task %d differs: %v vs %v", i, ts1[i], ts2[i])
		}
	}
}

func TestBindLoadBalances(t *testing.T) {
	a := assay.New("many-mix")
	ids := []string{"a", "b", "c", "d"}
	for _, id := range ids {
		a.MustAddOp(&assay.Operation{ID: id, Kind: assay.Mix, Duration: 2,
			Output: assay.FluidType("f" + id), Reagents: []assay.FluidType{"r" + assay.FluidType(id)}})
	}
	res, err := Synthesize(a, Config{Devices: []DeviceSpec{{Kind: grid.Mixer, Count: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	use := map[string]int{}
	for _, id := range ids {
		use[res.Binding[id].ID]++
	}
	for dev, n := range use {
		if n != 2 {
			t.Errorf("device %s bound %d ops want 2 (map %v)", dev, n, use)
		}
	}
}

func TestLargerLibraryLayout(t *testing.T) {
	a := chainAssay(t)
	res, err := Synthesize(a, Config{Devices: []DeviceSpec{
		{Kind: grid.Mixer, Count: 3}, {Kind: grid.Heater, Count: 2},
		{Kind: grid.Detector, Count: 2}, {Kind: grid.Filter, Count: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chip.Devices()) != 9 {
		t.Fatalf("devices = %d", len(res.Chip.Devices()))
	}
	if err := res.Chip.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidAssayRejected(t *testing.T) {
	a := assay.New("bad")
	if _, err := Synthesize(a, Config{}); err == nil {
		t.Fatal("empty assay must fail")
	}
}

func TestWasteDisposalForDiscardResult(t *testing.T) {
	a := assay.New("disc")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 2, Output: "f1",
		Reagents: []assay.FluidType{"r1"}, DiscardResult: true})
	a.MustAddOp(&assay.Operation{ID: "o2", Kind: assay.Mix, Duration: 2, Output: "f2",
		Reagents: []assay.FluidType{"r2"}})
	a.MustAddEdge("o1", "o2") // o1 feeds o2 but also discards
	res, err := Synthesize(a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.Schedule.TasksOf(schedule.WasteDisposal))
	if n != 2 { // o1 discards; o2 is a sink
		t.Errorf("disposals = %d want 2", n)
	}
}
