package synth

import (
	"testing"

	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
)

func TestStreetCoords(t *testing.T) {
	got := streetCoords(3)
	want := []int{1, 4, 7, 10}
	if len(got) != len(want) {
		t.Fatalf("streetCoords(3) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("streetCoords(3) = %v want %v", got, want)
		}
	}
}

func TestPickSpreadsAndClamps(t *testing.T) {
	cands := []int{1, 4, 7, 10}
	if v := pick(cands, 0, 1); v != 7 { // middle-ish for a single pick
		t.Errorf("pick single = %d", v)
	}
	if v := pick(cands, 0, 0); v < 1 || v > 10 {
		t.Errorf("pick with n=0 out of range: %d", v)
	}
	// Large index must clamp to the last candidate.
	if v := pick(cands, 9, 2); v != 10 {
		t.Errorf("pick clamp = %d want 10", v)
	}
}

func TestPortSpotEdges(t *testing.T) {
	xs, ys := streetCoords(3), streetCoords(2)
	w, h := 12, 9
	top := portSpot(w, h, xs, ys, 0, 2, true)
	if top.Y != 0 {
		t.Errorf("first flow port should sit on the top edge: %v", top)
	}
	leftP := portSpot(w, h, xs, ys, 1, 2, true)
	if leftP.X != 0 {
		t.Errorf("second flow port should sit on the left edge: %v", leftP)
	}
	bottom := portSpot(w, h, xs, ys, 0, 2, false)
	if bottom.Y != h-1 {
		t.Errorf("first waste port should sit on the bottom edge: %v", bottom)
	}
	rightP := portSpot(w, h, xs, ys, 1, 2, false)
	if rightP.X != w-1 {
		t.Errorf("second waste port should sit on the right edge: %v", rightP)
	}
}

func TestClassifySegments(t *testing.T) {
	res, err := Synthesize(chainAssay(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	chip := res.Chip
	src := res.Binding["o1"]
	dst := res.Binding["o2"]
	path, err := routeComplete(chip, src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	seg := classify(chip, path, src, dst)
	// Sensitive region includes all device cells of both endpoints.
	sens := map[geom.Point]bool{}
	for _, c := range seg.sensitive {
		sens[c] = true
	}
	for _, c := range src.Cells() {
		if !sens[c] {
			t.Errorf("source cell %v not sensitive", c)
		}
	}
	for _, c := range dst.Cells() {
		if !sens[c] {
			t.Errorf("destination cell %v not sensitive", c)
		}
	}
	// Excess cells sit immediately before the destination on the path.
	for _, e := range seg.excess {
		if !path.Contains(e) {
			t.Errorf("excess cell %v off path", e)
		}
		if chip.DeviceAt(e) != nil {
			t.Errorf("excess cell %v inside a device", e)
		}
	}
	// Contamination never touches ports.
	for _, c := range seg.contam {
		if chip.PortAt(c) != nil {
			t.Errorf("contam cell %v is a port", c)
		}
	}
}

func TestTailContam(t *testing.T) {
	p := grid.NewPath(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0))
	tc := tailContam(p, geom.Pt(1, 0))
	// From (1,0) to the second-to-last cell.
	if len(tc) != 2 || tc[0] != geom.Pt(1, 0) || tc[1] != geom.Pt(2, 0) {
		t.Fatalf("tailContam = %v", tc)
	}
	// Unknown start falls back to the whole prefix.
	tc2 := tailContam(p, geom.Pt(9, 9))
	if len(tc2) != 3 {
		t.Fatalf("tailContam fallback = %v", tc2)
	}
}

func TestTravelSecondsRounding(t *testing.T) {
	res, err := Synthesize(chainAssay(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	chip := res.Chip // 1 mm cells, 10 mm/s
	cells := make([]geom.Point, 0, 15)
	for x := 1; x <= 15; x++ {
		cells = append(cells, geom.Pt(x, 1))
	}
	p15 := grid.NewPath(cells...)
	if d := travelSeconds(chip, p15); d != 2 { // 15 mm / 10 mm/s = 1.5 -> 2
		t.Errorf("travelSeconds(15 cells) = %d want 2", d)
	}
	p1 := grid.NewPath(geom.Pt(1, 1))
	if d := travelSeconds(chip, p1); d != 1 { // floor at 1 s
		t.Errorf("travelSeconds(1 cell) = %d want 1", d)
	}
}

func TestRouteCompleteInjectionShape(t *testing.T) {
	res, err := Synthesize(chainAssay(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	chip := res.Chip
	dst := res.Binding["o1"]
	p, err := routeComplete(chip, nil, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ValidateComplete(chip); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range p.Cells {
		if chip.DeviceAt(c) == dst {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("injection path misses the destination device")
	}
	// Must not cross any other device.
	for _, c := range p.Cells {
		if d := chip.DeviceAt(c); d != nil && d != dst {
			t.Fatalf("injection path crosses unrelated device %s", d.ID)
		}
	}
}
