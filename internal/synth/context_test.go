package synth

import (
	"context"
	"errors"
	"testing"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/solve"
)

func mixAssay(t *testing.T) *assay.Assay {
	t.Helper()
	a := assay.New("ctx-fx")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 2, Output: "f1",
		Reagents: []assay.FluidType{"r1", "r2"}})
	return a
}

func TestSynthesizeContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SynthesizeContext(ctx, mixAssay(t), Config{})
	if !errors.Is(err, solve.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestSynthesizeContextCompletes(t *testing.T) {
	res, err := SynthesizeContext(context.Background(), mixAssay(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule == nil || res.Chip == nil {
		t.Fatal("incomplete result")
	}
}

func TestInvalidAssayIsSentinel(t *testing.T) {
	_, err := Synthesize(assay.New("empty"), Config{})
	if !errors.Is(err, solve.ErrInvalidAssay) {
		t.Fatalf("err = %v, want ErrInvalidAssay", err)
	}
}

func TestMissingDeviceIsInfeasible(t *testing.T) {
	_, err := Synthesize(mixAssay(t), Config{
		Devices: []DeviceSpec{{Kind: grid.Heater, Count: 1}},
	})
	if !errors.Is(err, solve.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible (no mixer in the library)", err)
	}
}
