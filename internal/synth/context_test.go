package synth

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/solve"
)

func mixAssay(t *testing.T) *assay.Assay {
	t.Helper()
	a := assay.New("ctx-fx")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 2, Output: "f1",
		Reagents: []assay.FluidType{"r1", "r2"}})
	return a
}

func TestSynthesizeContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SynthesizeContext(ctx, mixAssay(t), Config{})
	if !errors.Is(err, solve.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

// errAfterCtx reports the context as live for the first N Err() polls
// and canceled afterward, simulating a deadline expiring mid-run
// without any wall-clock dependence.
type errAfterCtx struct {
	context.Context
	polls, after int
}

func (c *errAfterCtx) Err() error {
	c.polls++
	if c.polls > c.after {
		return context.Canceled
	}
	return nil
}

// TestSynthesizeContextMidRunAborts pins the checkpointed contract: a
// cancellation arriving while the construction loops are running
// aborts with ErrBudgetExceeded instead of letting synthesis finish.
func TestSynthesizeContextMidRunAborts(t *testing.T) {
	a := assay.New("ctx-midrun")
	prev := ""
	for i := 1; i <= 40; i++ {
		op := &assay.Operation{ID: fmt.Sprintf("o%d", i), Kind: assay.Mix, Duration: 1,
			Output:   assay.FluidType(fmt.Sprintf("f%d", i)),
			Reagents: []assay.FluidType{assay.FluidType(fmt.Sprintf("r%d", i))}}
		a.MustAddOp(op)
		if prev != "" {
			if err := a.AddEdge(prev, op.ID); err != nil {
				t.Fatal(err)
			}
		}
		prev = op.ID
	}
	// The entry check is poll 1; the first checkpoint stride lands the
	// cancellation inside bind/buildSchedule.
	ctx := &errAfterCtx{Context: context.Background(), after: 1}
	_, err := SynthesizeContext(ctx, a, Config{})
	if !errors.Is(err, solve.ErrBudgetExceeded) {
		t.Fatalf("mid-run cancel err = %v, want ErrBudgetExceeded", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel err = %v, want context.Canceled in the chain", err)
	}
}

func TestSynthesizeContextCompletes(t *testing.T) {
	res, err := SynthesizeContext(context.Background(), mixAssay(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule == nil || res.Chip == nil {
		t.Fatal("incomplete result")
	}
}

func TestInvalidAssayIsSentinel(t *testing.T) {
	_, err := Synthesize(assay.New("empty"), Config{})
	if !errors.Is(err, solve.ErrInvalidAssay) {
		t.Fatalf("err = %v, want ErrInvalidAssay", err)
	}
}

func TestMissingDeviceIsInfeasible(t *testing.T) {
	_, err := Synthesize(mixAssay(t), Config{
		Devices: []DeviceSpec{{Kind: grid.Heater, Count: 1}},
	})
	if !errors.Is(err, solve.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible (no mixer in the library)", err)
	}
}
