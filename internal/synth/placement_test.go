package synth

import (
	"testing"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/grid"
)

// placementAssay has a hot pair (a <-> b, 4 edges) and a cold device, so
// optimized placement should pull a and b's devices together.
func placementAssay(t *testing.T) *assay.Assay {
	t.Helper()
	a := assay.New("pl")
	a.MustAddOp(&assay.Operation{ID: "a1", Kind: assay.Mix, Duration: 2, Output: "f1",
		Reagents: []assay.FluidType{"r1"}})
	a.MustAddOp(&assay.Operation{ID: "b1", Kind: assay.Heat, Duration: 2, Output: "f2"})
	a.MustAddOp(&assay.Operation{ID: "a2", Kind: assay.Mix, Duration: 2, Output: "f3"})
	a.MustAddOp(&assay.Operation{ID: "b2", Kind: assay.Heat, Duration: 2, Output: "f4"})
	a.MustAddOp(&assay.Operation{ID: "c1", Kind: assay.Detect, Duration: 2, Output: "f4"})
	a.MustAddEdge("a1", "b1")
	a.MustAddEdge("b1", "a2")
	a.MustAddEdge("a2", "b2")
	a.MustAddEdge("b2", "c1")
	return a
}

func placementSpecs() []DeviceSpec {
	return []DeviceSpec{
		{Kind: grid.Mixer, Count: 2}, {Kind: grid.Heater, Count: 2},
		{Kind: grid.Detector, Count: 2}, {Kind: grid.Filter, Count: 3},
	}
}

func TestOptimizePlacementValidAndComplete(t *testing.T) {
	a := placementAssay(t)
	res, err := Synthesize(a, Config{Devices: placementSpecs(), OptimizePlacement: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Chip.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.Chip.Devices()) != 9 {
		t.Fatalf("devices = %d", len(res.Chip.Devices()))
	}
	// Every device kind survives with its ID set.
	for _, id := range []string{"mixer1", "heater1", "detector1", "filter3"} {
		if res.Chip.Device(id) == nil {
			t.Errorf("device %s lost in placement", id)
		}
	}
}

func TestOptimizePlacementReducesWireLength(t *testing.T) {
	a := placementAssay(t)
	plain, err := Synthesize(a, Config{Devices: placementSpecs()})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Synthesize(a, Config{Devices: placementSpecs(), OptimizePlacement: true})
	if err != nil {
		t.Fatal(err)
	}
	dist := func(r *Result) int {
		total := 0
		for _, e := range a.Edges() {
			from, to := r.Binding[e.From], r.Binding[e.To]
			if from == nil || to == nil || from == to {
				continue
			}
			total += from.Center().Manhattan(to.Center())
		}
		return total
	}
	if dist(opt) > dist(plain) {
		t.Fatalf("placement increased communication distance: %d > %d", dist(opt), dist(plain))
	}
	t.Logf("communication distance: plain %d, optimized %d", dist(plain), dist(opt))
}

func TestOptimizePlacementDeterministic(t *testing.T) {
	a := placementAssay(t)
	r1, err := Synthesize(a, Config{Devices: placementSpecs(), OptimizePlacement: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Synthesize(a, Config{Devices: placementSpecs(), OptimizePlacement: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range r1.Chip.Devices() {
		d2 := r2.Chip.Device(d.ID)
		if d2 == nil || d2.Area != d.Area {
			t.Fatalf("placement nondeterministic for %s", d.ID)
		}
	}
}

func TestOptimizePlacementSingleDevice(t *testing.T) {
	a := assay.New("one")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 1, Output: "f",
		Reagents: []assay.FluidType{"r"}})
	res, err := Synthesize(a, Config{OptimizePlacement: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}
