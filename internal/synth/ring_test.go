package synth

import (
	"testing"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/grid"
)

func ringAssay(t *testing.T) *assay.Assay {
	t.Helper()
	a := assay.New("ring-fx")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 2, Output: "f1",
		Reagents: []assay.FluidType{"r1", "r2"}})
	a.MustAddOp(&assay.Operation{ID: "o2", Kind: assay.Heat, Duration: 3, Output: "f2"})
	a.MustAddOp(&assay.Operation{ID: "o3", Kind: assay.Detect, Duration: 2, Output: "f2"})
	a.MustAddEdge("o1", "o2")
	a.MustAddEdge("o2", "o3")
	return a
}

func TestRingTopologySynthesizes(t *testing.T) {
	res, err := Synthesize(ringAssay(t), Config{
		Topology: Ring,
		Devices: []DeviceSpec{
			{Kind: grid.Mixer, Count: 2}, {Kind: grid.Heater, Count: 2},
			{Kind: grid.Detector, Count: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Chip.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.Chip.Devices()) != 6 {
		t.Fatalf("devices = %d", len(res.Chip.Devices()))
	}
	t.Logf("ring chip %dx%d makespan %ds\n%s",
		res.Chip.W, res.Chip.H, res.Schedule.Makespan(), res.Chip.Render())
}

func TestRingTopologyOddDeviceCount(t *testing.T) {
	res, err := Synthesize(ringAssay(t), Config{
		Topology: Ring,
		Devices: []DeviceSpec{
			{Kind: grid.Mixer, Count: 1}, {Kind: grid.Heater, Count: 1},
			{Kind: grid.Detector, Count: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyStrings(t *testing.T) {
	if StreetGrid.String() != "street-grid" || Ring.String() != "ring" {
		t.Fatal("topology strings wrong")
	}
}
