package synth

import (
	"fmt"
	"math"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/route"
	"pathdriverwash/internal/schedule"
	"pathdriverwash/internal/solve"
)

// travelSeconds converts a path to a whole-second duration (>= 1 s).
func travelSeconds(chip *grid.Chip, p grid.Path) int {
	d := int(math.Ceil(p.TravelSeconds(chip)))
	if d < 1 {
		d = 1
	}
	return d
}

// buildSchedule produces the wash-free list schedule: for every
// operation in topological order, its reagent injections, incoming
// transports p_{j,i,1}, excess removals p_{j,i,2}, then the operation
// itself; discarded sink products are disposed to waste. The loop
// polls cp between tasks (and routeComplete polls it again per route),
// so a deadline aborts the construction within one task's work.
func buildSchedule(a *assay.Assay, chip *grid.Chip, binding map[string]*grid.Device, cp *solve.Checkpoint) (*schedule.Schedule, error) {
	s := schedule.New(chip, a)
	pl := schedule.NewPlacer(s)
	order, err := a.TopoOrder()
	if err != nil {
		return nil, err
	}
	flushOpts := route.Options{AvoidPorts: true, AvoidDevices: allDeviceCells(chip)}

	for _, opID := range order {
		op := a.Op(opID)
		dev := binding[opID]
		readyOp := 0

		// Reagent injections.
		for ri, rg := range op.Reagents {
			path, err := routeComplete(chip, nil, dev, cp)
			if err != nil {
				return nil, err
			}
			seg := classify(chip, path, nil, dev)
			inj := &schedule.Task{
				ID: fmt.Sprintf("inj-%s-%d", opID, ri+1), Kind: schedule.Transport,
				Path: path, Fluid: rg, EdgeTo: opID,
				MinDuration: travelSeconds(chip, path),
				ContamCells: seg.contam, ExcessCells: seg.excess,
				SensitiveCells: seg.sensitive,
			}
			if _, err := pl.Place(inj, 0, inj.MinDuration); err != nil {
				return nil, err
			}
			end, err := addRemoval(pl, chip, flushOpts,
				fmt.Sprintf("rm-inj-%s-%d", opID, ri+1), "", opID, rg, seg.excess, inj.End, cp)
			if err != nil {
				return nil, err
			}
			readyOp = maxInt(readyOp, end)
			readyOp = maxInt(readyOp, inj.End)
		}

		// Incoming transports from predecessors.
		for _, pred := range a.Preds(opID) {
			predTask := s.OpTask(pred)
			if predTask == nil {
				return nil, fmt.Errorf("synth: predecessor %s of %s not yet scheduled", pred, opID)
			}
			src := binding[pred]
			path, err := routeComplete(chip, src, dev, cp)
			if err != nil {
				return nil, err
			}
			seg := classify(chip, path, src, dev)
			tr := &schedule.Task{
				ID: fmt.Sprintf("tr-%s-%s", pred, opID), Kind: schedule.Transport,
				Path: path, Fluid: a.Op(pred).Output, EdgeFrom: pred, EdgeTo: opID,
				MinDuration: travelSeconds(chip, path),
				ContamCells: seg.contam, ExcessCells: seg.excess,
				SensitiveCells: seg.sensitive,
			}
			if _, err := pl.Place(tr, predTask.End, tr.MinDuration); err != nil {
				return nil, err
			}
			end, err := addRemoval(pl, chip, flushOpts,
				fmt.Sprintf("rm-%s-%s", pred, opID), pred, opID, tr.Fluid, seg.excess, tr.End, cp)
			if err != nil {
				return nil, err
			}
			readyOp = maxInt(readyOp, end)
			readyOp = maxInt(readyOp, tr.End)
		}

		// The operation itself. Device residue is deposited by the
		// outgoing transport/disposal (when the product actually leaves
		// the device), so a wash is never ordered while fluid sits
		// inside; the device cells stay sensitive to foreign residue.
		opTask := &schedule.Task{
			ID: "op-" + opID, Kind: schedule.Operation,
			OpID: opID, Device: dev, MinDuration: op.Duration,
			Fluid: op.Output, SensitiveCells: dev.Cells(),
		}
		if _, err := pl.Place(opTask, readyOp, op.Duration); err != nil {
			return nil, err
		}
	}

	// Waste disposal of discarded sink products.
	for _, opID := range order {
		op := a.Op(opID)
		if !op.DiscardResult && len(a.Succs(opID)) > 0 {
			continue
		}
		dev := binding[opID]
		opTask := s.OpTask(opID)
		path, err := routeComplete(chip, nil, dev, cp)
		if err != nil {
			return nil, err
		}
		// The plug moves from the device to the waste port.
		lastDev := 0
		for i, c := range path.Cells {
			if chip.DeviceAt(c) == dev {
				lastDev = i
			}
		}
		disp := &schedule.Task{
			ID: "disp-" + opID, Kind: schedule.WasteDisposal,
			Path: path, Fluid: assay.Waste, EdgeFrom: opID,
			MinDuration: travelSeconds(chip, path),
			ContamCells: append(tailContam(path, path.Cells[minInt(lastDev+1, path.Len()-1)]),
				dev.Cells()...), // residue stays in the emptied device
		}
		if _, err := pl.Place(disp, opTask.End, disp.MinDuration); err != nil {
			return nil, err
		}
	}

	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("synth: produced invalid schedule: %w", err)
	}
	return s, nil
}

// addRemoval routes and places the excess-fluid removal p_{j,i,2}. The
// flush-path enumeration is the scheduler's single most expensive
// routing call, so it polls cp per port-pair candidate; a cancellation
// there surfaces as a budget error like any other aborted route.
func addRemoval(pl *schedule.Placer, chip *grid.Chip, opts route.Options,
	id, from, to string, fluid assay.FluidType, excess []geom.Point, ready int,
	cp *solve.Checkpoint) (int, error) {
	if len(excess) == 0 {
		return ready, nil
	}
	path, _, _, err := route.FlushPathCheck(chip, excess, opts, cp)
	if err != nil && cp.Canceled() {
		return 0, budgetErr(err)
	}
	if err != nil && len(excess) > 1 {
		// Retry with the single cell nearest the device.
		path, _, _, err = route.FlushPathCheck(chip, excess[:1], opts, cp)
		excess = excess[:1]
	}
	if err != nil {
		if cp.Canceled() {
			return 0, budgetErr(err)
		}
		return 0, fmt.Errorf("synth: removal %s: %w", id, err)
	}
	// The excess plug travels from the first excess cell the removal path
	// reaches down to the waste port, contaminating that stretch.
	first := path.Len() - 1
	for i, c := range path.Cells {
		if containsPt(excess, c) {
			first = i
			break
		}
	}
	rm := &schedule.Task{
		ID: id, Kind: schedule.Removal,
		Path: path, Fluid: fluid, EdgeFrom: from, EdgeTo: to,
		MinDuration: travelSeconds(chip, path),
		ExcessCells: excess,
		ContamCells: append([]geom.Point(nil), path.Cells[first:path.Len()-1]...),
	}
	if _, err := pl.Place(rm, ready, rm.MinDuration); err != nil {
		return 0, err
	}
	return rm.End, nil
}

func allDeviceCells(chip *grid.Chip) map[geom.Point]bool {
	m := map[geom.Point]bool{}
	for _, d := range chip.Devices() {
		for _, c := range d.Cells() {
			m[c] = true
		}
	}
	return m
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func containsPt(pts []geom.Point, p geom.Point) bool {
	for _, q := range pts {
		if q == p {
			return true
		}
	}
	return false
}
