package synth

import (
	"fmt"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/solve"
)

// optimizePlacement reassigns devices to block slots to minimize the
// assay's weighted communication distance — the placement step of the
// PathDriver-class synthesis flow ([7]'s architectural synthesis).
// All blocks share one footprint, so any permutation of the slot
// assignment is legal; a deterministic pairwise-swap hill climb (no
// randomness, bounded passes) is sufficient at Table II scale.
//
// Cost: sum over communicating device pairs of
// weight(d1,d2) * manhattan(center1, center2), where the weight counts
// the assay edges whose producer/consumer are bound to the pair, plus a
// boundary pull for devices with many reagent injections or disposals
// (their fluids come from and go to the chip edge).
func optimizePlacement(a *assay.Assay, specs []DeviceSpec, cfg Config, cp *solve.Checkpoint) (*grid.Chip, map[string]*grid.Device, error) {
	chip, err := buildChip(a.Name, specs, cfg)
	if err != nil {
		return nil, nil, err
	}
	binding, err := bind(a, chip, cp)
	if err != nil {
		return nil, nil, err
	}

	devices := chip.Devices()
	n := len(devices)
	if n < 2 {
		return chip, binding, nil
	}
	slots := make([]geom.Rect, n)
	for i, d := range devices {
		slots[i] = d.Area
	}
	// assignment[i] = slot index of devices[i].
	assignment := make([]int, n)
	for i := range assignment {
		assignment[i] = i
	}

	// Communication weights from the bound assay.
	idx := map[string]int{}
	for i, d := range devices {
		idx[d.ID] = i
	}
	comm := make([][]int, n)
	for i := range comm {
		comm[i] = make([]int, n)
	}
	boundary := make([]int, n)
	for _, e := range a.Edges() {
		from, to := binding[e.From], binding[e.To]
		if from == nil || to == nil || from == to {
			continue
		}
		comm[idx[from.ID]][idx[to.ID]]++
		comm[idx[to.ID]][idx[from.ID]]++
	}
	for _, op := range a.Ops() {
		d := binding[op.ID]
		if d == nil {
			continue
		}
		boundary[idx[d.ID]] += len(op.Reagents)
		if len(a.Succs(op.ID)) == 0 || op.DiscardResult {
			boundary[idx[d.ID]]++
		}
	}

	center := func(r geom.Rect) geom.Point {
		return geom.Pt(r.Min.X+r.W()/2, r.Min.Y+r.H()/2)
	}
	edgeDist := func(p geom.Point) int {
		d := p.X
		if v := p.Y; v < d {
			d = v
		}
		if v := chip.W - 1 - p.X; v < d {
			d = v
		}
		if v := chip.H - 1 - p.Y; v < d {
			d = v
		}
		return d
	}
	cost := func(asg []int) int {
		total := 0
		for i := 0; i < n; i++ {
			ci := center(slots[asg[i]])
			for j := i + 1; j < n; j++ {
				if comm[i][j] != 0 {
					total += comm[i][j] * ci.Manhattan(center(slots[asg[j]]))
				}
			}
			total += boundary[i] * edgeDist(ci)
		}
		return total
	}

	cur := cost(assignment)
	for pass := 0; pass < 20; pass++ {
		improved := false
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				// Each swap evaluation is O(n²); the checkpoint bounds
				// a deadline to one evaluation past expiry.
				if err := cp.Check(); err != nil {
					return nil, nil, budgetErr(err)
				}
				assignment[i], assignment[j] = assignment[j], assignment[i]
				if c := cost(assignment); c < cur {
					cur = c
					improved = true
				} else {
					assignment[i], assignment[j] = assignment[j], assignment[i]
				}
			}
		}
		if !improved {
			break
		}
	}

	// Rebuild the chip with the optimized slot assignment: the street
	// grid and ports are identical, only device rectangles move.
	out := grid.NewChip(chip.Name, chip.W, chip.H)
	out.CellLengthMM = chip.CellLengthMM
	out.FlowVelocityMMs = chip.FlowVelocityMMs
	out.DissolutionS = chip.DissolutionS
	for i, d := range devices {
		if _, err := out.AddDevice(d.ID, d.Kind, slots[assignment[i]]); err != nil {
			return nil, nil, fmt.Errorf("synth: placement rebuild: %w", err)
		}
	}
	for _, p := range chip.Ports() {
		if _, err := out.AddPort(p.ID, p.Kind, p.At); err != nil {
			return nil, nil, fmt.Errorf("synth: placement rebuild: %w", err)
		}
	}
	for _, c := range chip.RoutableCells() {
		if chip.KindAt(c) == grid.Channel {
			if err := out.AddChannel(c); err != nil {
				return nil, nil, err
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, nil, err
	}
	newBinding, err := bind(a, out, cp)
	if err != nil {
		return nil, nil, err
	}
	return out, newBinding, nil
}
