// Package synth is the PathDriver-like architectural synthesis substrate
// ([7]/[12] in the paper). PDW consumes the outputs of that closed-source
// tool: a chip architecture on a virtual grid and a wash-free assay
// scheduling whose fluidic tasks carry complete flow paths. This package
// reproduces those outputs from scratch:
//
//   - placement: devices are placed in 2x2 blocks on a Manhattan street
//     grid (channels on every third row/column), ports on the boundary;
//   - binding: operations are bound to devices of the required kind,
//     load-balanced;
//   - routing: every fluidic task gets a complete flow path
//     [flow port - source - target - waste port] found with BFS;
//   - scheduling: a conflict-free list schedule at 1 s granularity that
//     satisfies every constraint family of Sec. III (verified by
//     schedule.Validate).
//
// Physical model (documented in DESIGN.md): a fluidic task moves a plug
// from segment start A to segment end B along its path; the channel
// cells strictly between A and B plus the first cell past B (squeezed
// excess) are left contaminated with the task's fluid, and the last two
// channel cells before B cache excess fluid that a separate removal task
// p_{j,i,2} must flush before the consuming operation starts (Sec. II-B).
package synth

import (
	"context"
	"fmt"
	"math"
	"time"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/obs"
	"pathdriverwash/internal/route"
	"pathdriverwash/internal/schedule"
	"pathdriverwash/internal/solve"
)

// DeviceSpec requests Count devices of the given kind in the library.
type DeviceSpec struct {
	Kind  grid.DeviceKind
	Count int
}

// Config tunes synthesis. Zero values select defaults.
type Config struct {
	// Devices is the device library. If nil, one device per kind the
	// assay needs is created.
	Devices []DeviceSpec
	// FlowPorts and WastePorts set the number of boundary ports
	// (default: max(2, ceil(devices/3)) each).
	FlowPorts, WastePorts int
	// CellLengthMM, FlowVelocityMMs, DissolutionS set the chip physical
	// parameters (defaults 1 mm, 10 mm/s, 2 s — the paper's v_f).
	CellLengthMM, FlowVelocityMMs, DissolutionS float64
	// OptimizePlacement runs the deterministic placement hill climb,
	// moving communicating devices closer together before routing.
	// Off by default so results stay comparable with EXPERIMENTS.md.
	OptimizePlacement bool
	// Topology selects the channel architecture (default StreetGrid).
	Topology Topology
}

// Result is the synthesis output: PDW's input.
type Result struct {
	Chip *grid.Chip
	// Schedule is the wash-free execution procedure.
	Schedule *schedule.Schedule
	// Binding maps operation IDs to devices.
	Binding map[string]*grid.Device
}

const (
	blockSize = 2 // device block edge in cells
	pitch     = 3 // street-grid pitch: channel every pitch-th row/column
)

// Synthesize builds a chip and a wash-free schedule for the assay.
func Synthesize(a *assay.Assay, cfg Config) (*Result, error) {
	return SynthesizeContext(context.Background(), a, cfg)
}

// SynthesizeContext is Synthesize under a context. Synthesis has no
// meaningful partial result (a half-scheduled assay is not feasible),
// so cancellation — at entry or mid-run — aborts with
// ErrBudgetExceeded. The placement, binding, routing, and scheduling
// loops poll the context through an amortized solve.Checkpoint, so a
// deadline lands within one checkpoint stride of loop work instead of
// at the next phase boundary (the cancellation granularity contract in
// DESIGN.md).
func SynthesizeContext(ctx context.Context, a *assay.Assay, cfg Config) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, budgetErr(err)
	}
	ctx, span := obs.Start(ctx, "synth.synthesize", obs.A("assay", a.Name))
	defer span.End()
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("synth: %w: %w", solve.ErrInvalidAssay, err)
	}
	specs := cfg.Devices
	if specs == nil {
		for _, k := range a.DeviceKindsNeeded() {
			specs = append(specs, DeviceSpec{Kind: k, Count: 1})
		}
	}
	if err := checkLibrary(a, specs); err != nil {
		return nil, err
	}
	if cfg.Topology == Ring {
		t0 := time.Now()
		chip, err := buildRingChip(a.Name, specs, cfg)
		if err != nil {
			return nil, err
		}
		obs.RecordSpan(ctx, "synth.placement", t0, time.Since(t0), obs.A("mode", "ring"))
		return SynthesizeOnChipContext(ctx, a, chip)
	}
	if cfg.OptimizePlacement {
		cp := solve.NewCheckpoint(ctx)
		t0 := time.Now()
		chip, binding, err := optimizePlacement(a, specs, cfg, &cp)
		if err != nil {
			return nil, err
		}
		obs.RecordSpan(ctx, "synth.placement", t0, time.Since(t0), obs.A("mode", "optimized"))
		t0 = time.Now()
		sched, err := buildSchedule(a, chip, binding, &cp)
		if err != nil {
			return nil, err
		}
		obs.RecordSpan(ctx, "synth.schedule", t0, time.Since(t0),
			obs.A("tasks", len(sched.Tasks())))
		return &Result{Chip: chip, Schedule: sched, Binding: binding}, nil
	}
	t0 := time.Now()
	chip, err := buildChip(a.Name, specs, cfg)
	if err != nil {
		return nil, err
	}
	obs.RecordSpan(ctx, "synth.placement", t0, time.Since(t0), obs.A("mode", "street-grid"))
	return SynthesizeOnChipContext(ctx, a, chip)
}

// SynthesizeOnChip binds and schedules the assay on a caller-provided
// chip architecture (e.g. the paper's hand-drawn Fig. 2(a) layout)
// instead of generating one.
func SynthesizeOnChip(a *assay.Assay, chip *grid.Chip) (*Result, error) {
	return SynthesizeOnChipContext(context.Background(), a, chip)
}

// SynthesizeOnChipContext is SynthesizeOnChip under a context, with the
// same checkpointed mid-run cancellation contract as SynthesizeContext.
func SynthesizeOnChipContext(ctx context.Context, a *assay.Assay, chip *grid.Chip) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, budgetErr(err)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("synth: %w: %w", solve.ErrInvalidAssay, err)
	}
	if err := chip.Validate(); err != nil {
		return nil, err
	}
	cp := solve.NewCheckpoint(ctx)
	t0 := time.Now()
	binding, err := bind(a, chip, &cp)
	if err != nil {
		return nil, err
	}
	obs.RecordSpan(ctx, "synth.bind", t0, time.Since(t0), obs.A("ops", len(binding)))
	t0 = time.Now()
	sched, err := buildSchedule(a, chip, binding, &cp)
	if err != nil {
		return nil, err
	}
	obs.RecordSpan(ctx, "synth.schedule", t0, time.Since(t0),
		obs.A("tasks", len(sched.Tasks())))
	return &Result{Chip: chip, Schedule: sched, Binding: binding}, nil
}

// budgetErr wraps a checkpoint cancellation in the synth error
// contract: callers classify it with errors.Is(err, ErrBudgetExceeded)
// and errors.Is(err, ctx.Err()).
func budgetErr(err error) error {
	return fmt.Errorf("synth: %w: %w", solve.ErrBudgetExceeded, err)
}

func checkLibrary(a *assay.Assay, specs []DeviceSpec) error {
	have := map[grid.DeviceKind]int{}
	for _, s := range specs {
		if s.Count <= 0 {
			return fmt.Errorf("synth: device spec %s has count %d", s.Kind, s.Count)
		}
		have[s.Kind] += s.Count
	}
	for _, k := range a.DeviceKindsNeeded() {
		if have[k] == 0 {
			return fmt.Errorf("synth: assay %q needs a %s but the library has none: %w",
				a.Name, k, solve.ErrInfeasible)
		}
	}
	return nil
}

// buildChip places devices on an interior street grid and hangs ports
// off the otherwise-empty boundary ring. Ports are dead-end stubs whose
// single neighbour is a street end, so through-traffic never has to
// cross a port cell and the perimeter streets stay open in all
// directions (this matters: on a sparse street grid, a port sitting in
// the middle of a boundary street would wall off whole quadrants).
func buildChip(name string, specs []DeviceSpec, cfg Config) (*grid.Chip, error) {
	total := 0
	for _, s := range specs {
		total += s.Count
	}
	cols := int(math.Ceil(math.Sqrt(float64(total))))
	rows := (total + cols - 1) / cols
	// Interior streets at x,y = 1, 1+pitch, ...; boundary ring for ports.
	w := cols*pitch + 3
	h := rows*pitch + 3
	chip := grid.NewChip(name, w, h)
	if cfg.CellLengthMM > 0 {
		chip.CellLengthMM = cfg.CellLengthMM
	}
	if cfg.FlowVelocityMMs > 0 {
		chip.FlowVelocityMMs = cfg.FlowVelocityMMs
	}
	if cfg.DissolutionS > 0 {
		chip.DissolutionS = cfg.DissolutionS
	}

	// Devices: blockSize x blockSize blocks between the streets.
	idx := 0
	counts := map[grid.DeviceKind]int{}
	for _, s := range specs {
		for c := 0; c < s.Count; c++ {
			r, cc := idx/cols, idx%cols
			x0, y0 := cc*pitch+2, r*pitch+2
			counts[s.Kind]++
			id := fmt.Sprintf("%s%d", s.Kind, counts[s.Kind])
			if _, err := chip.AddDevice(id, s.Kind, geom.Rc(x0, y0, x0+blockSize, y0+blockSize)); err != nil {
				return nil, err
			}
			idx++
		}
	}

	// Ports at boundary stubs aligned with street ends: flow ports over
	// top+left, waste ports over bottom+right, so wash-path port
	// selection (Eq. 12) has real choices on every side.
	nf := cfg.FlowPorts
	if nf <= 0 {
		nf = maxInt(2, (total+2)/3)
	}
	nw := cfg.WastePorts
	if nw <= 0 {
		nw = maxInt(2, (total+2)/3)
	}
	xStreets := streetCoords(cols)
	yStreets := streetCoords(rows)
	for i := 0; i < nf; i++ {
		at := portSpot(w, h, xStreets, yStreets, i, nf, true)
		if _, err := chip.AddPort(fmt.Sprintf("in%d", i+1), grid.FlowPort, at); err != nil {
			return nil, fmt.Errorf("synth: flow port %d: %w", i+1, err)
		}
	}
	for i := 0; i < nw; i++ {
		at := portSpot(w, h, xStreets, yStreets, i, nw, false)
		if _, err := chip.AddPort(fmt.Sprintf("out%d", i+1), grid.WastePort, at); err != nil {
			return nil, fmt.Errorf("synth: waste port %d: %w", i+1, err)
		}
	}

	// Interior street channels.
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			if (x-1)%pitch == 0 || (y-1)%pitch == 0 {
				if err := chip.AddChannel(geom.Pt(x, y)); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := chip.Validate(); err != nil {
		return nil, err
	}
	return chip, nil
}

// streetCoords returns the street coordinates 1, 1+pitch, ..., 1+n*pitch.
func streetCoords(blocks int) []int {
	var out []int
	for i := 0; i <= blocks; i++ {
		out = append(out, 1+i*pitch)
	}
	return out
}

// portSpot distributes port i of n over two edges, snapped to street
// ends: flow ports over top+left, waste ports over bottom+right.
func portSpot(w, h int, xs, ys []int, i, n int, flow bool) geom.Point {
	half := (n + 1) / 2
	if flow {
		if i < half { // top edge, above a street column
			return geom.Pt(pick(xs, i, half), 0)
		}
		return geom.Pt(0, pick(ys, i-half, n-half))
	}
	if i < half { // bottom edge
		return geom.Pt(pick(xs, i, half), h-1)
	}
	return geom.Pt(w-1, pick(ys, i-half, n-half))
}

// pick spreads index i of n over the candidate coordinates.
func pick(cands []int, i, n int) int {
	if n <= 0 {
		n = 1
	}
	idx := (i + 1) * len(cands) / (n + 1)
	if idx >= len(cands) {
		idx = len(cands) - 1
	}
	return cands[idx]
}

// bind assigns each operation a device of the required kind,
// load-balancing by operation count per device.
func bind(a *assay.Assay, chip *grid.Chip, cp *solve.Checkpoint) (map[string]*grid.Device, error) {
	byKind := map[grid.DeviceKind][]*grid.Device{}
	for _, d := range chip.Devices() {
		byKind[d.Kind] = append(byKind[d.Kind], d)
	}
	load := map[string]int{}
	binding := map[string]*grid.Device{}
	order, err := a.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		if err := cp.Check(); err != nil {
			return nil, budgetErr(err)
		}
		op := a.Op(id)
		kind := assay.DeviceKindFor(op.Kind)
		cands := byKind[kind]
		if len(cands) == 0 {
			return nil, fmt.Errorf("synth: no %s device for op %s: %w", kind, id, solve.ErrInfeasible)
		}
		best := cands[0]
		for _, d := range cands[1:] {
			if load[d.ID] < load[best.ID] {
				best = d
			}
		}
		load[best.ID]++
		binding[id] = best
	}
	return binding, nil
}

// deviceEntry returns the device cell nearest to p by BFS distance.
func deviceEntry(chip *grid.Chip, d *grid.Device, dist map[geom.Point]int) geom.Point {
	best := d.Cells()[0]
	bestD := math.MaxInt32
	for _, c := range d.Cells() {
		if dd, ok := dist[c]; ok && dd < bestD {
			best, bestD = c, dd
		}
	}
	return best
}

// routeComplete builds a complete flow path fp -> (src device) -> (dst
// device) -> wp, picking the nearest usable flow and waste ports. src
// may be nil (injection directly to dst). Avoids flushing through
// unrelated devices and intermediate ports.
func routeComplete(chip *grid.Chip, src, dst *grid.Device, cp *solve.Checkpoint) (grid.Path, error) {
	if err := cp.Check(); err != nil {
		return grid.Path{}, budgetErr(err)
	}
	avoid := map[geom.Point]bool{}
	for _, d := range chip.Devices() {
		if d == src || d == dst {
			continue
		}
		for _, c := range d.Cells() {
			avoid[c] = true
		}
	}
	opts := route.Options{AvoidPorts: true, AvoidDevices: avoid}

	// Waypoints through the devices: enter src nearest to some flow
	// port, exit towards dst, then on to the nearest waste port.
	headDev := dst
	if src != nil {
		headDev = src
	}
	distFromHead := route.Distances(chip, headDev.Center(), opts)
	fp, _ := pickPort(chip, grid.FlowPort, distFromHead)
	if fp == nil {
		return grid.Path{}, fmt.Errorf("synth: no reachable flow port for %s", headDev.ID)
	}
	distFromDst := route.Distances(chip, dst.Center(), opts)
	wp, _ := pickPort(chip, grid.WastePort, distFromDst)
	if wp == nil {
		return grid.Path{}, fmt.Errorf("synth: no reachable waste port for %s", dst.ID)
	}

	var waypoints []geom.Point
	waypoints = append(waypoints, fp.At)
	if src != nil {
		distFP := route.Distances(chip, fp.At, opts)
		enter := deviceEntry(chip, src, distFP)
		waypoints = append(waypoints, enter)
		distSrc := route.Distances(chip, enter, opts)
		waypoints = append(waypoints, deviceEntry(chip, dst, distSrc))
	} else {
		distFP := route.Distances(chip, fp.At, opts)
		waypoints = append(waypoints, deviceEntry(chip, dst, distFP))
	}
	waypoints = append(waypoints, wp.At)

	p, err := route.Through(chip, waypoints, opts)
	if err != nil {
		// Port choice may be blocked by the disjointness requirement;
		// retry over all port pairs in distance order.
		return routeCompleteExhaustive(chip, src, dst, opts, cp)
	}
	if err := p.ValidateComplete(chip); err != nil {
		return grid.Path{}, err
	}
	return p, nil
}

func routeCompleteExhaustive(chip *grid.Chip, src, dst *grid.Device, opts route.Options, cp *solve.Checkpoint) (grid.Path, error) {
	// Routing the legs outward-in starves the later legs of corridors on
	// a sparse street grid, so the plug leg (src -> dst, the part that
	// matters most) is routed first over the virgin grid; the flow-port
	// approach and the waste-port exit are attached around it, each
	// avoiding the cells already committed. Every (entry, port) pairing
	// is tried and the shortest valid complete path wins.
	srcEntries := []geom.Point{{X: -1, Y: -1}} // sentinel: no src leg
	if src != nil {
		srcEntries = src.Cells()
	}
	var best grid.Path
	for _, se := range srcEntries {
		for _, de := range dst.Cells() {
			if err := cp.Check(); err != nil {
				return grid.Path{}, budgetErr(err)
			}
			var plug grid.Path
			if src != nil {
				var err error
				plug, err = route.ShortestPath(chip, se, de, opts)
				if err != nil {
					continue
				}
			} else {
				plug = grid.NewPath(de)
			}
			plugUsed := plug.CellSet()
			head := plug.First()
			for _, fp := range chip.FlowPorts() {
				if err := cp.Check(); err != nil {
					return grid.Path{}, budgetErr(err)
				}
				inOpts := opts
				inOpts.Blocked = withoutCell(plugUsed, head)
				approach, err := route.ShortestPath(chip, fp.At, head, inOpts)
				if err != nil {
					continue
				}
				half := approach.Concat(plug)
				if half.Validate(chip) != nil {
					continue
				}
				halfUsed := half.CellSet()
				tail := half.Last()
				for _, wp := range chip.WastePorts() {
					if err := cp.Check(); err != nil {
						return grid.Path{}, budgetErr(err)
					}
					outOpts := opts
					outOpts.Blocked = withoutCell(halfUsed, tail)
					exit, err := route.ShortestPath(chip, tail, wp.At, outOpts)
					if err != nil {
						continue
					}
					full := half.Concat(exit)
					if full.ValidateComplete(chip) != nil {
						continue
					}
					if best.Empty() || full.Len() < best.Len() {
						best = full
					}
				}
			}
		}
	}
	if best.Empty() {
		return grid.Path{}, fmt.Errorf("synth: cannot route complete path to %s", dst.ID)
	}
	return best, nil
}

func withoutCell(set map[geom.Point]bool, keep geom.Point) map[geom.Point]bool {
	out := make(map[geom.Point]bool, len(set))
	for p := range set {
		if p != keep {
			out[p] = true
		}
	}
	return out
}

// pickPort returns the port of the kind with the smallest distance value.
func pickPort(chip *grid.Chip, kind grid.PortKind, dist map[geom.Point]int) (*grid.Port, int) {
	var best *grid.Port
	bestD := math.MaxInt32
	for _, p := range chip.Ports() {
		if p.Kind != kind {
			continue
		}
		if d, ok := dist[p.At]; ok && d < bestD {
			best, bestD = p, d
		}
	}
	return best, bestD
}

// segment classification on a complete path.
type pathSegments struct {
	// contam are the cells the plug traversal contaminates.
	contam []geom.Point
	// excess are the cells caching excess fluid before the target device.
	excess []geom.Point
	// sensitive are the cells whose residue would contaminate the plug:
	// the traversal segment plus the source and target device cells.
	sensitive []geom.Point
}

// classify splits a complete path around the source/target devices.
// src == nil for injections (plug starts at the flow port).
func classify(chip *grid.Chip, p grid.Path, src, dst *grid.Device) pathSegments {
	// Find the index ranges of src and dst blocks on the path.
	lastSrc := 0 // plug departure index (port or last src cell)
	if src != nil {
		for i, c := range p.Cells {
			if chip.DeviceAt(c) == src {
				lastSrc = i
			}
		}
	}
	firstDst, lastDst := -1, -1
	for i, c := range p.Cells {
		if chip.DeviceAt(c) == dst {
			if firstDst < 0 {
				firstDst = i
			}
			lastDst = i
		}
	}
	var seg pathSegments
	for i := lastSrc + 1; i < firstDst; i++ {
		seg.contam = append(seg.contam, p.Cells[i])
		seg.sensitive = append(seg.sensitive, p.Cells[i])
	}
	if src != nil {
		// The plug leaving the source device deposits its residue there.
		seg.contam = append(seg.contam, src.Cells()...)
		seg.sensitive = append(seg.sensitive, src.Cells()...)
	}
	if dst != nil {
		seg.sensitive = append(seg.sensitive, dst.Cells()...)
	}
	// Squeezed excess just past the device (not the waste port itself).
	if lastDst+1 < p.Len()-1 {
		seg.contam = append(seg.contam, p.Cells[lastDst+1])
	}
	// Excess cache: last up-to-2 channel cells before the device, kept in
	// path order (a connected chain for FlushPath routing).
	for i := maxInt(lastSrc+1, firstDst-2); i >= 0 && i < firstDst; i++ {
		seg.excess = append(seg.excess, p.Cells[i])
	}
	return seg
}

// tailContam returns the cells a removal/disposal plug contaminates: the
// traversal from its pickup segment to the waste port (port excluded).
func tailContam(p grid.Path, from geom.Point) []geom.Point {
	start := -1
	for i, c := range p.Cells {
		if c == from {
			start = i
			break
		}
	}
	if start < 0 {
		start = 0
	}
	var out []geom.Point
	for i := start; i < p.Len()-1; i++ {
		out = append(out, p.Cells[i])
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
