package stats

import (
	"math"
	"testing"
)

func almostEq(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) < 1e-9
}

func TestOrderStatistics(t *testing.T) {
	cases := []struct {
		name   string
		xs     []float64
		median float64
		q1, q3 float64
		iqr    float64
	}{
		{"empty", nil, math.NaN(), math.NaN(), math.NaN(), math.NaN()},
		{"single", []float64{7}, 7, 7, 7, 0},
		{"odd", []float64{5, 1, 3, 2, 4}, 3, 2, 4, 2},
		{"even", []float64{4, 1, 3, 2}, 2.5, 1.75, 3.25, 1.5},
		{"repeated", []float64{2, 2, 2, 2}, 2, 2, 2, 0},
		{"unsorted negative", []float64{-3, 9, 0}, 0, -1.5, 4.5, 6},
	}
	for _, c := range cases {
		if got := Median(c.xs); !almostEq(got, c.median) {
			t.Errorf("%s: Median = %g, want %g", c.name, got, c.median)
		}
		q1, q2, q3 := Quartiles(c.xs)
		if !almostEq(q1, c.q1) || !almostEq(q2, c.median) || !almostEq(q3, c.q3) {
			t.Errorf("%s: Quartiles = %g/%g/%g, want %g/%g/%g",
				c.name, q1, q2, q3, c.q1, c.median, c.q3)
		}
		if got := IQR(c.xs); !almostEq(got, c.iqr) {
			t.Errorf("%s: IQR = %g, want %g", c.name, got, c.iqr)
		}
	}
	// Quantile endpoints and interpolation (R type 7).
	xs := []float64{1, 2, 3, 4}
	for _, c := range []struct{ p, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {1.0 / 3, 2},
	} {
		if got := Quantile(xs, c.p); !almostEq(got, c.want) {
			t.Errorf("Quantile(%v, %g) = %g, want %g", xs, c.p, got, c.want)
		}
	}
	if got := Mean([]float64{1, 2, 3}); !almostEq(got, 2) {
		t.Errorf("Mean = %g, want 2", got)
	}
	if got := Mean(nil); !math.IsNaN(got) {
		t.Errorf("Mean(nil) = %g, want NaN", got)
	}
	// Quantile must not reorder its input.
	orig := []float64{3, 1, 2}
	Quantile(orig, 0.5)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Errorf("Quantile mutated its input: %v", orig)
	}
}

func TestMannWhitneyExact(t *testing.T) {
	cases := []struct {
		name string
		x, y []float64
		u, p float64
	}{
		// Full separation, n=3 each: P(U<=0) = 1/C(6,3) = 1/20.
		{"separated 3v3", []float64{1, 2, 3}, []float64{4, 5, 6}, 0, 0.1},
		// Full separation, n=2 each: 2 * 1/C(4,2) = 1/3.
		{"separated 2v2", []float64{1, 2}, []float64{3, 4}, 0, 1.0 / 3},
		// Perfect interleaving: cumulative 7 of C(6,3)=20 arrangements.
		{"interleaved 3v3", []float64{1, 3, 5}, []float64{2, 4, 6}, 3, 0.7},
		// Full separation, n=5 each: 2/C(10,5) = 2/252.
		{"separated 5v5", []float64{1, 2, 3, 4, 5}, []float64{10, 11, 12, 13, 14}, 0, 2.0 / 252},
	}
	for _, c := range cases {
		r := MannWhitneyU(c.x, c.y)
		if !r.Exact {
			t.Errorf("%s: want exact distribution", c.name)
		}
		if !almostEq(r.U, c.u) || !almostEq(r.P, c.p) {
			t.Errorf("%s: U=%g P=%g, want U=%g P=%g", c.name, r.U, r.P, c.u, c.p)
		}
		// The test must be symmetric in its arguments.
		rs := MannWhitneyU(c.y, c.x)
		if !almostEq(rs.U, r.U) || !almostEq(rs.P, r.P) {
			t.Errorf("%s: swapped args gave U=%g P=%g, want U=%g P=%g",
				c.name, rs.U, rs.P, r.U, r.P)
		}
	}
}

func TestMannWhitneyEdgeCases(t *testing.T) {
	if r := MannWhitneyU(nil, []float64{1, 2}); r.P != 1 {
		t.Errorf("empty sample: P=%g, want 1", r.P)
	}
	if r := MannWhitneyU([]float64{1}, nil); r.P != 1 {
		t.Errorf("empty sample: P=%g, want 1", r.P)
	}
	// All observations identical: no evidence of difference, no panic.
	if r := MannWhitneyU([]float64{2, 2, 2}, []float64{2, 2, 2}); r.P != 1 {
		t.Errorf("all tied: P=%g, want 1", r.P)
	}
	// Ties force the normal approximation; p must stay in (0, 1].
	r := MannWhitneyU([]float64{1, 1, 2, 3}, []float64{1, 2, 2, 4})
	if r.Exact {
		t.Error("tied samples must not use the exact distribution")
	}
	if !(r.P > 0 && r.P <= 1) {
		t.Errorf("tied samples: P=%g out of range", r.P)
	}
}

func TestMannWhitneyNormalApprox(t *testing.T) {
	// 25 observations per side exceeds maxExactN.
	x := make([]float64, 25)
	y := make([]float64, 25)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(i) + 0.001 // tiny shift, same shape
	}
	same := MannWhitneyU(x, y)
	if same.Exact {
		t.Error("large samples must use the normal approximation")
	}
	if same.P < 0.3 {
		t.Errorf("near-identical large samples: P=%g, want large", same.P)
	}
	for i := range y {
		y[i] = float64(i) + 1000 // full separation
	}
	far := MannWhitneyU(x, y)
	if far.P > 1e-6 {
		t.Errorf("separated large samples: P=%g, want tiny", far.P)
	}
}

func TestBootstrapCI(t *testing.T) {
	// Constant data: the interval collapses to the point.
	lo, hi := BootstrapCI([]float64{5, 5, 5, 5}, 0.95, 200, 1, Median)
	if !almostEq(lo, 5) || !almostEq(hi, 5) {
		t.Errorf("constant data: CI [%g, %g], want [5, 5]", lo, hi)
	}
	// The CI brackets the sample median and is deterministic per seed.
	xs := []float64{9, 10, 11, 10, 9, 12, 10, 11, 10, 9}
	lo1, hi1 := BootstrapCI(xs, 0.95, 500, 42, Median)
	lo2, hi2 := BootstrapCI(xs, 0.95, 500, 42, Median)
	if lo1 != lo2 || hi1 != hi2 {
		t.Errorf("same seed gave different CIs: [%g,%g] vs [%g,%g]", lo1, hi1, lo2, hi2)
	}
	m := Median(xs)
	if !(lo1 <= m && m <= hi1) {
		t.Errorf("CI [%g, %g] does not bracket the sample median %g", lo1, hi1, m)
	}
	if lo1 < 9 || hi1 > 12 {
		t.Errorf("CI [%g, %g] outside the data range [9, 12]", lo1, hi1)
	}
	// Degenerate inputs return NaN bounds.
	if lo, hi := BootstrapCI(nil, 0.95, 100, 1, Median); !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Errorf("empty data: CI [%g, %g], want NaNs", lo, hi)
	}
	if lo, hi := BootstrapCI(xs, 0.95, 0, 1, Median); !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Errorf("zero resamples: CI [%g, %g], want NaNs", lo, hi)
	}
}
