// Package stats is the small, dependency-free statistical toolkit
// behind the benchmark regression radar (internal/report.Diff and
// `pdwbench -compare / -baseline`): order statistics (median,
// quartiles, IQR), percentile-bootstrap confidence intervals, and the
// Mann–Whitney U rank-sum test used to decide whether two wall-time
// sample sets differ significantly.
//
// Everything is stdlib-only and deterministic: the bootstrap takes an
// explicit seed, and the U test uses the exact null distribution for
// small tie-free samples (the regime `pdwbench -count N` produces)
// with the tie-corrected normal approximation as the large-sample /
// tied fallback — the same discipline as Go's benchstat.
package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between closest ranks (R type 7, the numpy default).
// It returns NaN for an empty slice and does not modify xs.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

// quantileSorted is Quantile on an already-sorted slice, allocation
// free (the bootstrap's hot path).
func quantileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	h := p * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + (h-float64(lo))*(sorted[hi]-sorted[lo])
}

// Median returns the middle value (mean of the two middle values for
// even lengths), or NaN for an empty slice.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quartiles returns the first quartile, median, and third quartile.
func Quartiles(xs []float64) (q1, q2, q3 float64) {
	if len(xs) == 0 {
		nan := math.NaN()
		return nan, nan, nan
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, 0.25), quantileSorted(sorted, 0.5), quantileSorted(sorted, 0.75)
}

// IQR returns the interquartile range q3-q1, the robust spread measure
// the diff report prints alongside medians.
func IQR(xs []float64) float64 {
	q1, _, q3 := Quartiles(xs)
	return q3 - q1
}

// BootstrapCI returns a percentile-bootstrap confidence interval for
// stat(xs) at the given confidence level (e.g. 0.95), resampling xs
// with replacement `resamples` times using the deterministic seed.
// Degenerate inputs (empty xs, resamples <= 0) return NaN bounds.
func BootstrapCI(xs []float64, confidence float64, resamples int, seed int64,
	stat func([]float64) float64) (lo, hi float64) {

	if len(xs) == 0 || resamples <= 0 || confidence <= 0 || confidence >= 1 {
		return math.NaN(), math.NaN()
	}
	rng := rand.New(rand.NewSource(seed))
	sample := make([]float64, len(xs))
	vals := make([]float64, resamples)
	for i := 0; i < resamples; i++ {
		for j := range sample {
			sample[j] = xs[rng.Intn(len(xs))]
		}
		vals[i] = stat(sample)
	}
	sort.Float64s(vals)
	tail := (1 - confidence) / 2
	return quantileSorted(vals, tail), quantileSorted(vals, 1-tail)
}

// UTestResult is the outcome of a two-sided Mann–Whitney U test.
type UTestResult struct {
	// U is the smaller of the two U statistics.
	U float64
	// P is the two-sided p-value under the null hypothesis that both
	// samples come from the same distribution.
	P float64
	// Exact reports whether P comes from the exact null distribution
	// (small tie-free samples) rather than the normal approximation.
	Exact bool
}

// maxExactN bounds the per-sample size for the exact U distribution;
// beyond it the tie-corrected normal approximation is already accurate
// and the DP table would grow cubically.
const maxExactN = 20

// MannWhitneyU runs the two-sided Mann–Whitney U test on two
// independent samples. It returns P = 1 (no evidence of difference)
// when either sample is empty or both are single observations. Ties
// are handled with average ranks and the tie-corrected normal
// approximation; tie-free samples of at most maxExactN observations
// each use the exact null distribution.
func MannWhitneyU(x, y []float64) UTestResult {
	n1, n2 := len(x), len(y)
	if n1 == 0 || n2 == 0 {
		return UTestResult{U: math.NaN(), P: 1}
	}

	// Rank the pooled sample, averaging ranks across ties.
	type obs struct {
		v     float64
		first bool // belongs to x
	}
	pooled := make([]obs, 0, n1+n2)
	for _, v := range x {
		pooled = append(pooled, obs{v, true})
	}
	for _, v := range y {
		pooled = append(pooled, obs{v, false})
	}
	sort.Slice(pooled, func(i, j int) bool { return pooled[i].v < pooled[j].v })

	n := n1 + n2
	r1 := 0.0     // rank sum of x
	tieSum := 0.0 // sum of t^3 - t over tie groups
	hasTies := false
	for i := 0; i < n; {
		j := i
		for j < n && pooled[j].v == pooled[i].v {
			j++
		}
		t := j - i
		if t > 1 {
			hasTies = true
			tieSum += float64(t*t*t - t)
		}
		// Average rank of positions i..j-1 (1-based ranks).
		avg := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			if pooled[k].first {
				r1 += avg
			}
		}
		i = j
	}

	u1 := r1 - float64(n1*(n1+1))/2
	u2 := float64(n1*n2) - u1
	u := math.Min(u1, u2)

	if !hasTies && n1 <= maxExactN && n2 <= maxExactN {
		return UTestResult{U: u, P: exactP(n1, n2, u), Exact: true}
	}

	mu := float64(n1*n2) / 2
	variance := float64(n1*n2) / 12 * (float64(n+1) - tieSum/float64(n*(n-1)))
	if variance <= 0 {
		// All observations tied: the samples are indistinguishable.
		return UTestResult{U: u, P: 1}
	}
	// Continuity-corrected two-sided normal approximation.
	z := (math.Abs(u-mu) - 0.5) / math.Sqrt(variance)
	if z < 0 {
		z = 0
	}
	p := math.Erfc(z / math.Sqrt2)
	if p > 1 {
		p = 1
	}
	return UTestResult{U: u, P: p}
}

// exactP computes the exact two-sided p-value 2 * P(U <= u) for
// tie-free samples. Under the null every interleaving of the two
// samples is equally likely, and interleavings with U1 = v correspond
// bijectively to partitions of v into at most n1 parts, each at most
// n2 — counted here by a bounded-parts knapsack DP. Counts stay exact
// in float64 (the largest total, C(40,20) ~ 1.4e11, is well below
// 2^53).
func exactP(n1, n2 int, u float64) float64 {
	umax := n1 * n2
	uInt := int(math.Floor(u))
	// dp[p][v] = partitions of v into exactly p parts from {1..s},
	// built up size by size; in-place ascending update per size allows
	// repeated parts of that size.
	dp := make([][]float64, n1+1)
	for p := range dp {
		dp[p] = make([]float64, umax+1)
	}
	dp[0][0] = 1
	for s := 1; s <= n2; s++ {
		for p := 1; p <= n1; p++ {
			for v := s; v <= umax; v++ {
				dp[p][v] += dp[p-1][v-s]
			}
		}
	}
	total, cum := 0.0, 0.0
	for p := 0; p <= n1; p++ {
		for v := 0; v <= umax; v++ {
			total += dp[p][v]
			if v <= uInt {
				cum += dp[p][v]
			}
		}
	}
	p := 2 * cum / total
	if p > 1 {
		p = 1
	}
	return p
}
