package route

import (
	"testing"

	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
)

func flushChip(t *testing.T) *grid.Chip {
	t.Helper()
	c := grid.NewChip("flush", 9, 7)
	mustAdd(t, c, "in1", grid.FlowPort, geom.Pt(1, 0))
	mustAdd(t, c, "in2", grid.FlowPort, geom.Pt(0, 5))
	mustAdd(t, c, "out1", grid.WastePort, geom.Pt(8, 1))
	mustAdd(t, c, "out2", grid.WastePort, geom.Pt(7, 6))
	for y := 0; y < 7; y++ {
		for x := 0; x < 9; x++ {
			if err := c.AddChannel(geom.Pt(x, y)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

func TestFlushPathThroughChain(t *testing.T) {
	c := flushChip(t)
	chain := []geom.Point{geom.Pt(3, 3), geom.Pt(4, 3), geom.Pt(5, 3)}
	p, fp, wp, err := FlushPath(c, chain, Options{AvoidPorts: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ValidateComplete(c); err != nil {
		t.Fatal(err)
	}
	if !p.Covers(chain) {
		t.Fatal("chain not covered")
	}
	if fp == nil || wp == nil || fp.Kind != grid.FlowPort || wp.Kind != grid.WastePort {
		t.Fatalf("ports = %v, %v", fp, wp)
	}
}

func TestFlushPathSingleCell(t *testing.T) {
	c := flushChip(t)
	p, _, _, err := FlushPath(c, []geom.Point{geom.Pt(4, 4)}, Options{AvoidPorts: true})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Contains(geom.Pt(4, 4)) {
		t.Fatal("single target missed")
	}
}

func TestFlushPathPicksShortest(t *testing.T) {
	c := flushChip(t)
	// Target next to in1/out1 corner: shortest must use those ports.
	chain := []geom.Point{geom.Pt(2, 1), geom.Pt(3, 1)}
	p, fp, wp, err := FlushPath(c, chain, Options{AvoidPorts: true})
	if err != nil {
		t.Fatal(err)
	}
	if fp.ID != "in1" || wp.ID != "out1" {
		t.Errorf("ports = %s/%s want in1/out1 (len %d)", fp.ID, wp.ID, p.Len())
	}
}

func TestFlushPathReversedChainStillWorks(t *testing.T) {
	c := flushChip(t)
	chain := []geom.Point{geom.Pt(5, 3), geom.Pt(4, 3), geom.Pt(3, 3)} // reversed
	p, _, _, err := FlushPath(c, chain, Options{AvoidPorts: true})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Covers(chain) {
		t.Fatal("reversed chain not covered")
	}
}

func TestFlushPathEmptyChainFails(t *testing.T) {
	c := flushChip(t)
	if _, _, _, err := FlushPath(c, nil, Options{}); err == nil {
		t.Fatal("empty chain must fail")
	}
}

func TestFlushPathUnreachableFails(t *testing.T) {
	// Chip with the chain walled off from every port by blocked cells.
	c := flushChip(t)
	blocked := map[geom.Point]bool{}
	for _, p := range []geom.Point{
		geom.Pt(3, 2), geom.Pt(4, 2), geom.Pt(5, 2),
		geom.Pt(2, 3), geom.Pt(6, 3),
		geom.Pt(3, 4), geom.Pt(4, 4), geom.Pt(5, 4),
	} {
		blocked[p] = true
	}
	_, _, _, err := FlushPath(c, []geom.Point{geom.Pt(4, 3)},
		Options{AvoidPorts: true, Blocked: blocked})
	if err == nil {
		t.Fatal("walled-off target must fail")
	}
}
