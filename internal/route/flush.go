package route

import (
	"fmt"

	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/solve"
)

// FlushPath routes a complete flow path [flow port - targets - waste
// port] through all target cells, which must form a connected chain in
// the given order (e.g. a contaminated sub-segment of an earlier flow
// path). All flow-port/waste-port pairs and both chain orientations are
// tried; the shortest valid simple path wins. This is the BFS wash-path
// construction used by the DAWO baseline and by excess-fluid removal
// routing; PDW's ILP (internal/washpath) optimizes the same structure
// globally.
func FlushPath(c *grid.Chip, chain []geom.Point, o Options) (grid.Path, *grid.Port, *grid.Port, error) {
	return FlushPathCheck(c, chain, o, nil)
}

// FlushPathCheck is FlushPath polling cp before each port-pair
// candidate: the enumeration is |flow ports| x |waste ports| x 2
// orientations, each a multi-leg BFS, so on port-rich chips one call
// costs whole seconds — far too long a blind spot for a caller under a
// deadline. A nil cp never cancels (FlushPath's behavior). On
// cancellation the best candidate found so far is abandoned and the
// latched context error returned.
func FlushPathCheck(c *grid.Chip, chain []geom.Point, o Options, cp *solve.Checkpoint) (grid.Path, *grid.Port, *grid.Port, error) {
	if len(chain) == 0 {
		return grid.Path{}, nil, nil, fmt.Errorf("route: FlushPath with no targets")
	}
	orientations := [][]geom.Point{chain}
	if len(chain) > 1 {
		rev := make([]geom.Point, len(chain))
		for i, p := range chain {
			rev[len(chain)-1-i] = p
		}
		orientations = append(orientations, rev)
	}
	var best grid.Path
	var bestFP, bestWP *grid.Port
	for _, fp := range c.FlowPorts() {
		for _, wp := range c.WastePorts() {
			if err := cp.Err(); err != nil {
				return grid.Path{}, nil, nil, err
			}
			for _, ch := range orientations {
				wps := make([]geom.Point, 0, len(ch)+2)
				wps = append(wps, fp.At)
				wps = append(wps, ch...)
				wps = append(wps, wp.At)
				p, err := Through(c, wps, o)
				if err != nil {
					continue
				}
				if p.ValidateComplete(c) != nil {
					continue
				}
				if best.Empty() || p.Len() < best.Len() {
					best, bestFP, bestWP = p, fp, wp
				}
			}
		}
	}
	if best.Empty() {
		return grid.Path{}, nil, nil, fmt.Errorf("%w: no complete flush path through %d targets", ErrNoPath, len(chain))
	}
	return best, bestFP, bestWP, nil
}
