// Package route finds flow paths on a chip grid.
//
// Both the PathDriver-style synthesis substrate and the DAWO baseline
// route with breadth-first search over the routable cells of the chip;
// the PDW wash-path ILP uses the same graph structure but optimizes
// globally (see internal/washpath). This package provides:
//
//   - ShortestPath: BFS shortest path between two cells, avoiding an
//     optional blocked set;
//   - Through: shortest simple path visiting an ordered chain of cells;
//   - NearestPort: closest flow/waste port to a cell by routed distance;
//   - Distances: single-source BFS distance map.
package route

import (
	"errors"
	"fmt"

	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
)

// ErrNoPath is returned when the requested route does not exist.
var ErrNoPath = errors.New("route: no path")

// Options tunes a routing query.
type Options struct {
	// Blocked cells may not be used (in addition to non-routable cells).
	// Endpoints may appear in Blocked; they are always allowed.
	Blocked map[geom.Point]bool
	// AvoidPorts makes intermediate port cells unusable, so routes only
	// touch ports at their endpoints. Injection and removal paths must
	// not flush through an unrelated port.
	AvoidPorts bool
	// AvoidDevices makes intermediate device cells unusable. Wash buffer
	// must not flush through a device holding a fluid unless that device
	// is itself a wash target.
	AvoidDevices map[geom.Point]bool
}

func usable(c *grid.Chip, p geom.Point, o Options, isEndpoint bool) bool {
	if !c.InBounds(p) || !c.Routable(p) {
		return false
	}
	if isEndpoint {
		return true
	}
	if o.Blocked != nil && o.Blocked[p] {
		return false
	}
	if o.AvoidPorts && c.PortAt(p) != nil {
		return false
	}
	if o.AvoidDevices != nil && o.AvoidDevices[p] {
		return false
	}
	return true
}

// ShortestPath returns a BFS shortest path from src to dst over routable
// cells subject to the options. The result includes both endpoints.
func ShortestPath(c *grid.Chip, src, dst geom.Point, o Options) (grid.Path, error) {
	if !c.InBounds(src) || !c.Routable(src) {
		return grid.Path{}, fmt.Errorf("route: source %v is not routable", src)
	}
	if !c.InBounds(dst) || !c.Routable(dst) {
		return grid.Path{}, fmt.Errorf("route: destination %v is not routable", dst)
	}
	if src == dst {
		return grid.NewPath(src), nil
	}
	prev := map[geom.Point]geom.Point{src: src}
	queue := []geom.Point{src}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, n := range p.Neighbors() {
			if _, seen := prev[n]; seen {
				continue
			}
			if !usable(c, n, o, n == dst) {
				continue
			}
			prev[n] = p
			if n == dst {
				return reconstruct(prev, src, dst), nil
			}
			queue = append(queue, n)
		}
	}
	return grid.Path{}, fmt.Errorf("%w from %v to %v", ErrNoPath, src, dst)
}

func reconstruct(prev map[geom.Point]geom.Point, src, dst geom.Point) grid.Path {
	var rev []geom.Point
	for p := dst; ; p = prev[p] {
		rev = append(rev, p)
		if p == src {
			break
		}
	}
	cells := make([]geom.Point, len(rev))
	for i, p := range rev {
		cells[len(rev)-1-i] = p
	}
	return grid.NewPath(cells...)
}

// Through routes a simple path visiting the waypoints in order. Each leg
// is a BFS shortest path that additionally avoids the cells already used
// by earlier legs, keeping the overall path simple. Returns ErrNoPath if
// any leg cannot be completed without revisiting.
func Through(c *grid.Chip, waypoints []geom.Point, o Options) (grid.Path, error) {
	if len(waypoints) < 2 {
		return grid.Path{}, errors.New("route: Through needs at least two waypoints")
	}
	total := grid.NewPath(waypoints[0])
	used := map[geom.Point]bool{}
	for i := 0; i+1 < len(waypoints); i++ {
		legOpts := o
		legOpts.Blocked = mergeBlocked(o.Blocked, used)
		// Future waypoints must be visited by their own legs; routing
		// through one now would make its leg revisit a used cell.
		for j := i + 2; j < len(waypoints); j++ {
			legOpts.Blocked[waypoints[j]] = true
		}
		// The current position must stay usable as the leg source.
		delete(legOpts.Blocked, waypoints[i])
		leg, err := ShortestPath(c, waypoints[i], waypoints[i+1], legOpts)
		if err != nil {
			return grid.Path{}, fmt.Errorf("route: leg %d (%v to %v): %w", i, waypoints[i], waypoints[i+1], err)
		}
		for _, cell := range leg.Cells {
			used[cell] = true
		}
		total = total.Concat(leg)
	}
	if err := total.Validate(c); err != nil {
		return grid.Path{}, fmt.Errorf("route: Through produced invalid path: %w", err)
	}
	return total, nil
}

func mergeBlocked(a, b map[geom.Point]bool) map[geom.Point]bool {
	m := make(map[geom.Point]bool, len(a)+len(b))
	for p := range a {
		m[p] = true
	}
	for p := range b {
		m[p] = true
	}
	return m
}

// Distances returns the BFS hop distance from src to every reachable
// routable cell, subject to the options. src has distance 0.
func Distances(c *grid.Chip, src geom.Point, o Options) map[geom.Point]int {
	dist := map[geom.Point]int{src: 0}
	queue := []geom.Point{src}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, n := range p.Neighbors() {
			if _, seen := dist[n]; seen {
				continue
			}
			// Every reached cell may be an endpoint of some later query,
			// so ports/devices terminate expansion but still get a distance.
			if !c.InBounds(n) || !c.Routable(n) {
				continue
			}
			if o.Blocked != nil && o.Blocked[n] {
				continue
			}
			dist[n] = dist[p] + 1
			if o.AvoidPorts && c.PortAt(n) != nil {
				continue // reachable as endpoint, not traversable
			}
			if o.AvoidDevices != nil && o.AvoidDevices[n] {
				continue
			}
			queue = append(queue, n)
		}
	}
	return dist
}

// NearestPort returns the port of the given kind closest to from by
// routed hop distance, together with the path to it. Ports that cannot
// be reached are skipped; ErrNoPath if none is reachable.
func NearestPort(c *grid.Chip, from geom.Point, kind grid.PortKind, o Options) (*grid.Port, grid.Path, error) {
	dist := Distances(c, from, o)
	var best *grid.Port
	bestD := -1
	for _, pt := range c.Ports() {
		if pt.Kind != kind {
			continue
		}
		d, ok := dist[pt.At]
		if !ok {
			continue
		}
		if bestD < 0 || d < bestD {
			best, bestD = pt, d
		}
	}
	if best == nil {
		return nil, grid.Path{}, fmt.Errorf("%w: no reachable %s port from %v", ErrNoPath, kind, from)
	}
	p, err := ShortestPath(c, from, best.At, o)
	if err != nil {
		return nil, grid.Path{}, err
	}
	return best, p, nil
}

// PortToPort routes a complete path from a flow port through the ordered
// waypoints to a waste port: the canonical [flow port — cells — waste
// port] shape of injections, removals, and heuristic wash paths.
func PortToPort(c *grid.Chip, fp, wp *grid.Port, via []geom.Point, o Options) (grid.Path, error) {
	wps := make([]geom.Point, 0, len(via)+2)
	wps = append(wps, fp.At)
	wps = append(wps, via...)
	wps = append(wps, wp.At)
	p, err := Through(c, wps, o)
	if err != nil {
		return grid.Path{}, err
	}
	if err := p.ValidateComplete(c); err != nil {
		return grid.Path{}, err
	}
	return p, nil
}
