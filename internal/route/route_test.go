package route

import (
	"errors"
	"testing"
	"testing/quick"

	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
)

// openChip builds a WxH chip where every interior cell is channel, with
// a flow port at (0,0) and a waste port at (W-1,H-1) corners plus extra
// ports as requested.
func openChip(t *testing.T, w, h int) *grid.Chip {
	t.Helper()
	c := grid.NewChip("open", w, h)
	if _, err := c.AddPort("in1", grid.FlowPort, geom.Pt(0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddPort("out1", grid.WastePort, geom.Pt(w-1, h-1)); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if err := c.AddChannel(geom.Pt(x, y)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

func TestShortestPathStraightLine(t *testing.T) {
	c := openChip(t, 6, 6)
	p, err := ShortestPath(c, geom.Pt(0, 0), geom.Pt(5, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 6 {
		t.Fatalf("len = %d want 6: %v", p.Len(), p)
	}
	if err := p.Validate(c); err != nil {
		t.Fatal(err)
	}
}

func TestShortestPathOptimalLength(t *testing.T) {
	c := openChip(t, 8, 8)
	cases := []struct{ a, b geom.Point }{
		{geom.Pt(0, 0), geom.Pt(7, 7)},
		{geom.Pt(3, 2), geom.Pt(3, 2)},
		{geom.Pt(1, 6), geom.Pt(6, 1)},
	}
	for _, cs := range cases {
		p, err := ShortestPath(c, cs.a, cs.b, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := cs.a.Manhattan(cs.b) + 1
		if p.Len() != want {
			t.Errorf("path %v-%v len %d want %d", cs.a, cs.b, p.Len(), want)
		}
	}
}

func TestShortestPathAroundObstacle(t *testing.T) {
	// A wall of blocked cells forces a detour.
	c := openChip(t, 7, 7)
	blocked := map[geom.Point]bool{}
	for y := 0; y < 6; y++ {
		blocked[geom.Pt(3, y)] = true
	}
	p, err := ShortestPath(c, geom.Pt(0, 0), geom.Pt(6, 0), Options{Blocked: blocked})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 7+2*6 {
		t.Fatalf("detour length = %d want %d", p.Len(), 7+12)
	}
	for _, cell := range p.Cells {
		if blocked[cell] {
			t.Fatalf("path uses blocked cell %v", cell)
		}
	}
}

func TestShortestPathNoPath(t *testing.T) {
	c := openChip(t, 5, 5)
	blocked := map[geom.Point]bool{}
	for y := 0; y < 5; y++ {
		blocked[geom.Pt(2, y)] = true
	}
	_, err := ShortestPath(c, geom.Pt(0, 0), geom.Pt(4, 0), Options{Blocked: blocked})
	if !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v want ErrNoPath", err)
	}
}

func TestShortestPathBadEndpoints(t *testing.T) {
	c := grid.NewChip("sparse", 5, 5)
	if _, err := c.AddPort("in", grid.FlowPort, geom.Pt(0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := ShortestPath(c, geom.Pt(1, 1), geom.Pt(0, 0), Options{}); err == nil {
		t.Error("unroutable source must fail")
	}
	if _, err := ShortestPath(c, geom.Pt(0, 0), geom.Pt(1, 1), Options{}); err == nil {
		t.Error("unroutable destination must fail")
	}
}

func TestShortestPathEndpointsExemptFromBlocked(t *testing.T) {
	c := openChip(t, 5, 5)
	blocked := map[geom.Point]bool{geom.Pt(0, 0): true, geom.Pt(4, 0): true}
	p, err := ShortestPath(c, geom.Pt(0, 0), geom.Pt(4, 0), Options{Blocked: blocked})
	if err != nil {
		t.Fatalf("blocked endpoints must still be usable: %v", err)
	}
	if p.Len() != 5 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestAvoidPorts(t *testing.T) {
	// Port in the middle of the top edge; route along the edge must dodge it.
	c := openChip(t, 7, 4)
	if _, err := c.AddPort("in2", grid.FlowPort, geom.Pt(3, 0)); err != nil {
		// cell (3,0) is already channel; rebuild chip with port first
		c = grid.NewChip("p", 7, 4)
		mustAdd(t, c, "in2", grid.FlowPort, geom.Pt(3, 0))
		mustAdd(t, c, "in1", grid.FlowPort, geom.Pt(0, 0))
		mustAdd(t, c, "out1", grid.WastePort, geom.Pt(6, 3))
		for y := 0; y < 4; y++ {
			for x := 0; x < 7; x++ {
				if err := c.AddChannel(geom.Pt(x, y)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	p, err := ShortestPath(c, geom.Pt(0, 0), geom.Pt(6, 0), Options{AvoidPorts: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Contains(geom.Pt(3, 0)) {
		t.Fatal("path passes through an intermediate port")
	}
}

func mustAdd(t *testing.T, c *grid.Chip, id string, k grid.PortKind, at geom.Point) {
	t.Helper()
	if _, err := c.AddPort(id, k, at); err != nil {
		t.Fatal(err)
	}
}

func TestAvoidDevices(t *testing.T) {
	c := grid.NewChip("dev", 7, 5)
	mustAdd(t, c, "in", grid.FlowPort, geom.Pt(0, 2))
	mustAdd(t, c, "out", grid.WastePort, geom.Pt(6, 2))
	d, err := c.AddDevice("mix", grid.Mixer, geom.Rc(3, 1, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 5; y++ {
		for x := 0; x < 7; x++ {
			if err := c.AddChannel(geom.Pt(x, y)); err != nil {
				t.Fatal(err)
			}
		}
	}
	avoid := map[geom.Point]bool{}
	for _, cell := range d.Cells() {
		avoid[cell] = true
	}
	p, err := ShortestPath(c, geom.Pt(0, 2), geom.Pt(6, 2), Options{AvoidDevices: avoid})
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range p.Cells {
		if avoid[cell] {
			t.Fatalf("path crosses avoided device cell %v", cell)
		}
	}
	// Without avoidance the straight route is shorter.
	q, err := ShortestPath(c, geom.Pt(0, 2), geom.Pt(6, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() >= p.Len() {
		t.Fatalf("avoidance should cost length: %d vs %d", q.Len(), p.Len())
	}
}

func TestThrough(t *testing.T) {
	c := openChip(t, 8, 8)
	wps := []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(7, 7)}
	p, err := Through(c, wps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range wps {
		if !p.Contains(w) {
			t.Errorf("path misses waypoint %v", w)
		}
	}
	if err := p.Validate(c); err != nil {
		t.Fatalf("Through produced invalid path: %v", err)
	}
}

func TestThroughRejectsShortInput(t *testing.T) {
	c := openChip(t, 4, 4)
	if _, err := Through(c, []geom.Point{geom.Pt(0, 0)}, Options{}); err == nil {
		t.Fatal("expected error for single waypoint")
	}
}

func TestThroughStaysSimple(t *testing.T) {
	// Waypoints that force a U-turn: the second leg must not reuse the
	// first leg's cells.
	c := openChip(t, 8, 4)
	p, err := Through(c, []geom.Point{geom.Pt(0, 0), geom.Pt(6, 0), geom.Pt(1, 1)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(c); err != nil {
		t.Fatalf("revisit: %v", err)
	}
}

func TestDistances(t *testing.T) {
	c := openChip(t, 5, 5)
	d := Distances(c, geom.Pt(0, 0), Options{})
	if d[geom.Pt(0, 0)] != 0 {
		t.Error("source distance must be 0")
	}
	if d[geom.Pt(4, 4)] != 8 {
		t.Errorf("corner distance = %d want 8", d[geom.Pt(4, 4)])
	}
	if len(d) != 25 {
		t.Errorf("reached %d cells want 25", len(d))
	}
}

func TestDistancesMatchShortestPathQuick(t *testing.T) {
	c := openChip(t, 9, 9)
	src := geom.Pt(0, 0)
	d := Distances(c, src, Options{})
	f := func(x, y uint8) bool {
		dst := geom.Pt(int(x%9), int(y%9))
		p, err := ShortestPath(c, src, dst, Options{})
		if err != nil {
			return false
		}
		return p.Len()-1 == d[dst]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNearestPort(t *testing.T) {
	c := grid.NewChip("np", 9, 5)
	mustAdd(t, c, "in1", grid.FlowPort, geom.Pt(0, 0))
	mustAdd(t, c, "in2", grid.FlowPort, geom.Pt(8, 0))
	mustAdd(t, c, "out1", grid.WastePort, geom.Pt(0, 4))
	mustAdd(t, c, "out2", grid.WastePort, geom.Pt(8, 4))
	for y := 0; y < 5; y++ {
		for x := 0; x < 9; x++ {
			if err := c.AddChannel(geom.Pt(x, y)); err != nil {
				t.Fatal(err)
			}
		}
	}
	pt, path, err := NearestPort(c, geom.Pt(7, 1), grid.FlowPort, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pt.ID != "in2" {
		t.Fatalf("nearest flow port = %s want in2", pt.ID)
	}
	if path.First() != geom.Pt(7, 1) || path.Last() != pt.At {
		t.Fatal("path endpoints wrong")
	}
	wp, _, err := NearestPort(c, geom.Pt(1, 3), grid.WastePort, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if wp.ID != "out1" {
		t.Fatalf("nearest waste port = %s want out1", wp.ID)
	}
}

func TestNearestPortUnreachable(t *testing.T) {
	c := grid.NewChip("iso", 5, 5)
	mustAdd(t, c, "in", grid.FlowPort, geom.Pt(0, 0))
	mustAdd(t, c, "out", grid.WastePort, geom.Pt(4, 4))
	// (0,0) is isolated: no channels at all.
	_, _, err := NearestPort(c, geom.Pt(0, 0), grid.WastePort, Options{})
	if !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v want ErrNoPath", err)
	}
}

func TestPortToPort(t *testing.T) {
	c := openChip(t, 7, 7)
	fp, wp := c.Port("in1"), c.Port("out1")
	via := []geom.Point{geom.Pt(3, 3), geom.Pt(5, 3)}
	p, err := PortToPort(c, fp, wp, via, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ValidateComplete(c); err != nil {
		t.Fatal(err)
	}
	for _, v := range via {
		if !p.Contains(v) {
			t.Errorf("missing via %v", v)
		}
	}
}
