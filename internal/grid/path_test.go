package grid

import (
	"strings"
	"testing"
	"testing/quick"

	"pathdriverwash/internal/geom"
)

func line(y, x0, x1 int) []geom.Point {
	var pts []geom.Point
	if x0 <= x1 {
		for x := x0; x <= x1; x++ {
			pts = append(pts, geom.Pt(x, y))
		}
	} else {
		for x := x0; x >= x1; x-- {
			pts = append(pts, geom.Pt(x, y))
		}
	}
	return pts
}

func TestPathBasics(t *testing.T) {
	p := NewPath(line(0, 0, 3)...)
	if p.Len() != 4 || p.Empty() {
		t.Fatalf("Len = %d", p.Len())
	}
	if p.First() != geom.Pt(0, 0) || p.Last() != geom.Pt(3, 0) {
		t.Fatalf("ends = %v %v", p.First(), p.Last())
	}
	if !p.Contains(geom.Pt(2, 0)) || p.Contains(geom.Pt(4, 0)) {
		t.Error("Contains wrong")
	}
	if NewPath().Len() != 0 || !NewPath().Empty() {
		t.Error("empty path wrong")
	}
}

func TestPathOverlapsAndShared(t *testing.T) {
	a := NewPath(line(0, 0, 5)...)
	b := NewPath(geom.Pt(3, 2), geom.Pt(3, 1), geom.Pt(3, 0), geom.Pt(4, 0))
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("paths should overlap")
	}
	sh := a.SharedCells(b)
	if len(sh) != 2 {
		t.Fatalf("SharedCells = %v", sh)
	}
	c := NewPath(line(3, 0, 5)...)
	if a.Overlaps(c) {
		t.Error("disjoint paths should not overlap")
	}
	if a.Overlaps(NewPath()) || NewPath().Overlaps(a) {
		t.Error("empty path overlaps nothing")
	}
}

func TestPathCoveredByAndCovers(t *testing.T) {
	whole := NewPath(line(0, 0, 6)...)
	part := NewPath(line(0, 2, 4)...)
	if !part.CoveredBy(whole) {
		t.Error("part should be covered by whole")
	}
	if whole.CoveredBy(part) {
		t.Error("whole is not covered by part")
	}
	if !whole.Covers([]geom.Point{geom.Pt(1, 0), geom.Pt(5, 0)}) {
		t.Error("Covers failed")
	}
	if whole.Covers([]geom.Point{geom.Pt(1, 1)}) {
		t.Error("Covers false positive")
	}
	if !whole.Covers(nil) {
		t.Error("every path covers the empty target set")
	}
}

func TestPathReverse(t *testing.T) {
	p := NewPath(line(0, 0, 3)...)
	r := p.Reverse()
	if r.First() != p.Last() || r.Last() != p.First() || r.Len() != p.Len() {
		t.Fatalf("Reverse = %v", r)
	}
	if rr := r.Reverse(); rr.String() != p.String() {
		t.Fatal("double reverse changed the path")
	}
}

func TestPathReverseQuick(t *testing.T) {
	f := func(n uint8) bool {
		p := NewPath(line(0, 0, int(n%20))...)
		return p.Reverse().Reverse().String() == p.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPathConcat(t *testing.T) {
	a := NewPath(line(0, 0, 2)...)
	b := NewPath(geom.Pt(2, 0), geom.Pt(2, 1))
	j := a.Concat(b)
	if j.Len() != 4 {
		t.Fatalf("Concat dedup failed: %v", j)
	}
	c := NewPath(geom.Pt(3, 0))
	j2 := a.Concat(c)
	if j2.Len() != 4 {
		t.Fatalf("Concat without shared cell: %v", j2)
	}
	if got := NewPath().Concat(a); got.String() != a.String() {
		t.Fatalf("empty.Concat = %v", got)
	}
}

func TestPathValidate(t *testing.T) {
	c := testChip(t)
	good := NewPath(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(2, 1))
	if err := good.Validate(c); err != nil {
		t.Fatalf("good path rejected: %v", err)
	}
	cases := []struct {
		name string
		p    Path
	}{
		{"empty", NewPath()},
		{"non-adjacent", NewPath(geom.Pt(0, 0), geom.Pt(2, 0))},
		{"revisit", NewPath(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 0))},
		{"unroutable", NewPath(geom.Pt(0, 0), geom.Pt(0, 1))},
		{"oob", NewPath(geom.Pt(0, 0), geom.Pt(-1, 0))},
	}
	for _, cs := range cases {
		if err := cs.p.Validate(c); err == nil {
			t.Errorf("%s: expected error", cs.name)
		}
	}
}

func TestPathValidateComplete(t *testing.T) {
	c := testChip(t)
	complete := NewPath(line(0, 0, 7)...)
	if err := complete.ValidateComplete(c); err != nil {
		t.Fatalf("complete path rejected: %v", err)
	}
	if err := complete.Reverse().ValidateComplete(c); err == nil {
		t.Error("reversed path starts at waste port; must fail")
	}
	partial := NewPath(line(0, 1, 6)...)
	if err := partial.ValidateComplete(c); err == nil {
		t.Error("path not ending at ports must fail")
	}
}

func TestPathLengthAndTravel(t *testing.T) {
	c := testChip(t)
	c.CellLengthMM = 2
	c.FlowVelocityMMs = 10
	p := NewPath(line(0, 0, 4)...) // 5 cells -> 10 mm -> 1 s
	if got := p.LengthMM(c); got != 10 {
		t.Errorf("LengthMM = %v", got)
	}
	if got := p.TravelSeconds(c); got != 1 {
		t.Errorf("TravelSeconds = %v", got)
	}
	c.FlowVelocityMMs = 0
	if got := p.TravelSeconds(c); got != 0 {
		t.Errorf("TravelSeconds with v=0 = %v", got)
	}
}

func TestPathString(t *testing.T) {
	p := NewPath(geom.Pt(0, 0), geom.Pt(1, 0))
	if p.String() != "(0,0)->(1,0)" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestPathDescribe(t *testing.T) {
	c := testChip(t)
	p := NewPath(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(2, 1), geom.Pt(2, 2), geom.Pt(2, 3))
	d := p.Describe(c)
	if !strings.HasPrefix(d, "in1->") {
		t.Errorf("Describe = %q", d)
	}
	if !strings.Contains(d, "mixer") {
		t.Errorf("Describe should collapse device cells: %q", d)
	}
	// The mixer occupies (2,1) and (2,2) on this path; it must appear once.
	if strings.Count(d, "mixer") != 1 {
		t.Errorf("device should appear once: %q", d)
	}
}

func TestCellSetQuick(t *testing.T) {
	f := func(n uint8) bool {
		p := NewPath(line(0, 0, int(n%30))...)
		set := p.CellSet()
		if len(set) != p.Len() {
			return false
		}
		for _, c := range p.Cells {
			if !set[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
