package grid

import (
	"fmt"
	"strings"

	"pathdriverwash/internal/geom"
)

// Path is a flow path on the chip: a sequence of pairwise-adjacent,
// non-repeating routable cells. Complete flow paths start at a flow port
// and end at a waste port ([flow port — cells — waste port]); partial
// paths (e.g. the contaminated sub-segment of a transport) are also
// represented with this type.
type Path struct {
	Cells []geom.Point
}

// NewPath wraps the cell sequence without validating it; call Validate
// against a chip to check adjacency, simplicity, and routability.
func NewPath(cells ...geom.Point) Path { return Path{Cells: cells} }

// Len returns the number of cells on the path.
func (p Path) Len() int { return len(p.Cells) }

// Empty reports whether the path has no cells.
func (p Path) Empty() bool { return len(p.Cells) == 0 }

// First returns the first cell. It panics on an empty path.
func (p Path) First() geom.Point { return p.Cells[0] }

// Last returns the last cell. It panics on an empty path.
func (p Path) Last() geom.Point { return p.Cells[len(p.Cells)-1] }

// Contains reports whether the path visits cell q.
func (p Path) Contains(q geom.Point) bool {
	for _, c := range p.Cells {
		if c == q {
			return true
		}
	}
	return false
}

// CellSet returns the path's cells as a set.
func (p Path) CellSet() map[geom.Point]bool {
	s := make(map[geom.Point]bool, len(p.Cells))
	for _, c := range p.Cells {
		s[c] = true
	}
	return s
}

// Overlaps reports whether the two paths share at least one cell.
// Concurrent fluidic tasks with overlapping paths conflict (Eq. 8/19/20).
func (p Path) Overlaps(q Path) bool {
	if p.Len() == 0 || q.Len() == 0 {
		return false
	}
	a, b := p, q
	if a.Len() > b.Len() {
		a, b = b, a
	}
	set := a.CellSet()
	for _, c := range b.Cells {
		if set[c] {
			return true
		}
	}
	return false
}

// SharedCells returns the cells visited by both paths.
func (p Path) SharedCells(q Path) []geom.Point {
	set := p.CellSet()
	var out []geom.Point
	for _, c := range q.Cells {
		if set[c] {
			out = append(out, c)
			delete(set, c) // report each shared cell once
		}
	}
	return out
}

// CoveredBy reports whether every cell of p lies on q (l_p ⊆ l_q in
// the ψ-integration test of Eq. 21).
func (p Path) CoveredBy(q Path) bool {
	set := q.CellSet()
	for _, c := range p.Cells {
		if !set[c] {
			return false
		}
	}
	return true
}

// Covers reports whether the path visits every target cell (Eq. 15).
func (p Path) Covers(targets []geom.Point) bool {
	set := p.CellSet()
	for _, t := range targets {
		if !set[t] {
			return false
		}
	}
	return true
}

// LengthMM returns the physical path length L(l) on the given chip in mm,
// counting the channel length represented by each visited cell.
func (p Path) LengthMM(c *Chip) float64 { return c.CellLengthOf(p.Len()) }

// TravelSeconds returns the flush time L(l)/v_f of Eq. (17), in seconds.
func (p Path) TravelSeconds(c *Chip) float64 {
	if c.FlowVelocityMMs <= 0 {
		return 0
	}
	return p.LengthMM(c) / c.FlowVelocityMMs
}

// Reverse returns the path traversed in the opposite direction.
func (p Path) Reverse() Path {
	out := make([]geom.Point, len(p.Cells))
	for i, c := range p.Cells {
		out[len(p.Cells)-1-i] = c
	}
	return Path{Cells: out}
}

// Concat joins p and q. If p's last cell equals q's first cell the
// duplicate is dropped. The result is not validated.
func (p Path) Concat(q Path) Path {
	if p.Empty() {
		return Path{Cells: append([]geom.Point(nil), q.Cells...)}
	}
	out := append([]geom.Point(nil), p.Cells...)
	rest := q.Cells
	if len(rest) > 0 && p.Last() == rest[0] {
		rest = rest[1:]
	}
	return Path{Cells: append(out, rest...)}
}

// Validate checks the path invariants on the chip: non-empty, every cell
// routable and in bounds, consecutive cells adjacent, and no repeated
// cell (flow paths are simple).
func (p Path) Validate(c *Chip) error {
	if p.Empty() {
		return fmt.Errorf("grid: empty path")
	}
	seen := make(map[geom.Point]bool, len(p.Cells))
	for i, cell := range p.Cells {
		if !c.InBounds(cell) {
			return fmt.Errorf("grid: path cell %v out of bounds", cell)
		}
		if !c.Routable(cell) {
			return fmt.Errorf("grid: path cell %v is not routable (%s)", cell, c.KindAt(cell))
		}
		if seen[cell] {
			return fmt.Errorf("grid: path revisits cell %v", cell)
		}
		seen[cell] = true
		if i > 0 && !p.Cells[i-1].Adjacent(cell) {
			return fmt.Errorf("grid: path cells %v and %v are not adjacent", p.Cells[i-1], cell)
		}
	}
	return nil
}

// ValidateComplete additionally requires the path to start at a flow port
// and end at a waste port — the shape of every complete wash path
// (Eq. 12) and every injection/removal path.
func (p Path) ValidateComplete(c *Chip) error {
	if err := p.Validate(c); err != nil {
		return err
	}
	if pt := c.PortAt(p.First()); pt == nil || pt.Kind != FlowPort {
		return fmt.Errorf("grid: complete path must start at a flow port, starts at %v (%s)", p.First(), c.KindAt(p.First()))
	}
	if pt := c.PortAt(p.Last()); pt == nil || pt.Kind != WastePort {
		return fmt.Errorf("grid: complete path must end at a waste port, ends at %v (%s)", p.Last(), c.KindAt(p.Last()))
	}
	return nil
}

// String renders the path in the paper's arrow notation, substituting
// port and device IDs where the chip is unknown: "(0,3)->(1,3)->...".
func (p Path) String() string {
	parts := make([]string, len(p.Cells))
	for i, c := range p.Cells {
		parts[i] = c.String()
	}
	return strings.Join(parts, "->")
}

// Describe renders the path in the paper's Table I notation using the
// chip's port and device names, collapsing consecutive cells of the same
// device: "in1->s(1,3)->mixer->out2".
func (p Path) Describe(c *Chip) string {
	var parts []string
	var lastDev *Device
	for _, cell := range p.Cells {
		if pt := c.PortAt(cell); pt != nil {
			parts = append(parts, pt.ID)
			lastDev = nil
			continue
		}
		if d := c.DeviceAt(cell); d != nil {
			if d == lastDev {
				continue
			}
			parts = append(parts, d.ID)
			lastDev = d
			continue
		}
		parts = append(parts, fmt.Sprintf("s%v", cell))
		lastDev = nil
	}
	return strings.Join(parts, "->")
}
