package grid

import (
	"strings"
	"testing"

	"pathdriverwash/internal/geom"
)

// testChip builds a small 8x6 chip with one mixer, one heater, two flow
// ports, two waste ports, and connecting channels.
//
//	I - - - - - - O
//	. . M M . . . .
//	. . M M . . - .
//	. . - . . . - .
//	. . - H H H - .
//	I - - - - - - O
func testChip(t *testing.T) *Chip {
	t.Helper()
	c := NewChip("test", 8, 6)
	mustDev := func(id string, k DeviceKind, r geom.Rect) {
		if _, err := c.AddDevice(id, k, r); err != nil {
			t.Fatalf("AddDevice(%s): %v", id, err)
		}
	}
	mustPort := func(id string, k PortKind, p geom.Point) {
		if _, err := c.AddPort(id, k, p); err != nil {
			t.Fatalf("AddPort(%s): %v", id, err)
		}
	}
	mustDev("mixer", Mixer, geom.Rc(2, 1, 4, 3))
	mustDev("heater", Heater, geom.Rc(3, 4, 6, 5))
	mustPort("in1", FlowPort, geom.Pt(0, 0))
	mustPort("in2", FlowPort, geom.Pt(0, 5))
	mustPort("out1", WastePort, geom.Pt(7, 0))
	mustPort("out2", WastePort, geom.Pt(7, 5))
	for x := 1; x < 7; x++ {
		if err := c.AddChannel(geom.Pt(x, 0)); err != nil {
			t.Fatal(err)
		}
		if err := c.AddChannel(geom.Pt(x, 5)); err != nil {
			t.Fatal(err)
		}
	}
	for y := 2; y < 5; y++ {
		if err := c.AddChannel(geom.Pt(6, y)); err != nil {
			t.Fatal(err)
		}
	}
	for y := 3; y < 5; y++ {
		if err := c.AddChannel(geom.Pt(2, y)); err != nil {
			t.Fatal(err)
		}
	}
	// Connect mixer's column to the top channel via (2,0) already channel;
	// mixer cells themselves are routable, so the component is connected.
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return c
}

func TestNewChipPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewChip("bad", 0, 5)
}

func TestKindAt(t *testing.T) {
	c := testChip(t)
	cases := []struct {
		p    geom.Point
		want CellKind
	}{
		{geom.Pt(0, 0), FlowPortCell},
		{geom.Pt(7, 0), WastePortCell},
		{geom.Pt(1, 0), Channel},
		{geom.Pt(2, 1), DeviceCell},
		{geom.Pt(4, 1), Empty},
		{geom.Pt(-1, 0), Empty}, // out of bounds
		{geom.Pt(0, 99), Empty},
	}
	for _, cs := range cases {
		if got := c.KindAt(cs.p); got != cs.want {
			t.Errorf("KindAt(%v) = %v want %v", cs.p, got, cs.want)
		}
	}
}

func TestCellKindStrings(t *testing.T) {
	want := map[CellKind]string{
		Empty: "empty", Channel: "channel", DeviceCell: "device",
		FlowPortCell: "flow-port", WastePortCell: "waste-port",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q want %q", k, k.String(), s)
		}
	}
	if Empty.Routable() {
		t.Error("empty cells must not be routable")
	}
	if !Channel.Routable() || !DeviceCell.Routable() || !FlowPortCell.Routable() {
		t.Error("non-empty cells must be routable")
	}
}

func TestDeviceLookup(t *testing.T) {
	c := testChip(t)
	d := c.Device("mixer")
	if d == nil || d.Kind != Mixer {
		t.Fatalf("Device(mixer) = %v", d)
	}
	if got := c.DeviceAt(geom.Pt(3, 2)); got != d {
		t.Errorf("DeviceAt(3,2) = %v want mixer", got)
	}
	if c.DeviceAt(geom.Pt(0, 0)) != nil {
		t.Error("DeviceAt(port cell) should be nil")
	}
	if c.Device("nope") != nil {
		t.Error("Device(nope) should be nil")
	}
	if len(d.Cells()) != 4 {
		t.Errorf("mixer covers %d cells want 4", len(d.Cells()))
	}
	if d.Center() != geom.Pt(3, 2) {
		t.Errorf("mixer center = %v", d.Center())
	}
}

func TestPortLookup(t *testing.T) {
	c := testChip(t)
	in := c.Port("in1")
	if in == nil || in.Kind != FlowPort || in.At != geom.Pt(0, 0) {
		t.Fatalf("Port(in1) = %v", in)
	}
	if got := c.PortAt(geom.Pt(7, 5)); got == nil || got.ID != "out2" {
		t.Errorf("PortAt(7,5) = %v", got)
	}
	if len(c.FlowPorts()) != 2 || len(c.WastePorts()) != 2 {
		t.Errorf("FlowPorts=%d WastePorts=%d", len(c.FlowPorts()), len(c.WastePorts()))
	}
	if len(c.Ports()) != 4 {
		t.Errorf("Ports = %d", len(c.Ports()))
	}
}

func TestAddDeviceErrors(t *testing.T) {
	c := testChip(t)
	if _, err := c.AddDevice("mixer", Mixer, geom.Rc(5, 1, 6, 2)); err == nil {
		t.Error("duplicate ID should fail")
	}
	if _, err := c.AddDevice("d2", Mixer, geom.Rc(3, 1, 5, 3)); err == nil {
		t.Error("overlap should fail")
	}
	if _, err := c.AddDevice("d3", Mixer, geom.Rc(7, 5, 9, 7)); err == nil {
		t.Error("out of bounds should fail")
	}
	if _, err := c.AddDevice("d4", Mixer, geom.Rc(5, 1, 5, 2)); err == nil {
		t.Error("empty area should fail")
	}
}

func TestAddPortErrors(t *testing.T) {
	c := testChip(t)
	if _, err := c.AddPort("in1", FlowPort, geom.Pt(3, 0)); err == nil {
		t.Error("duplicate ID should fail")
	}
	if _, err := c.AddPort("p2", FlowPort, geom.Pt(3, 3)); err == nil {
		t.Error("interior port should fail")
	}
	if _, err := c.AddPort("p3", FlowPort, geom.Pt(0, 0)); err == nil {
		t.Error("occupied cell should fail")
	}
	if _, err := c.AddPort("p4", FlowPort, geom.Pt(-1, 0)); err == nil {
		t.Error("out of bounds should fail")
	}
}

func TestAddChannel(t *testing.T) {
	c := testChip(t)
	if err := c.AddChannel(geom.Pt(0, 0)); err != nil {
		t.Errorf("channel over port should be a no-op, got %v", err)
	}
	if c.KindAt(geom.Pt(0, 0)) != FlowPortCell {
		t.Error("channel overwrote a port cell")
	}
	if err := c.AddChannel(geom.Pt(99, 0)); err == nil {
		t.Error("out-of-bounds channel should fail")
	}
}

func TestValidateDetectsDisconnection(t *testing.T) {
	c := NewChip("disc", 6, 6)
	if _, err := c.AddPort("in", FlowPort, geom.Pt(0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddPort("out", WastePort, geom.Pt(5, 5)); err != nil {
		t.Fatal(err)
	}
	// No channel between them.
	if err := c.Validate(); err == nil {
		t.Fatal("expected disconnection error")
	} else if !strings.Contains(err.Error(), "disconnected") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestValidateRequiresPorts(t *testing.T) {
	c := NewChip("noports", 4, 4)
	if err := c.Validate(); err == nil {
		t.Fatal("chip without flow port must fail validation")
	}
	if _, err := c.AddPort("in", FlowPort, geom.Pt(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err == nil {
		t.Fatal("chip without waste port must fail validation")
	}
}

func TestRoutableNeighbors(t *testing.T) {
	c := testChip(t)
	n := c.RoutableNeighbors(geom.Pt(1, 0))
	// Neighbours of (1,0): (1,-1) oob, (2,0) channel, (1,1) empty, (0,0) port.
	if len(n) != 2 {
		t.Fatalf("RoutableNeighbors(1,0) = %v", n)
	}
}

func TestRenderShape(t *testing.T) {
	c := testChip(t)
	r := c.Render()
	lines := strings.Split(strings.TrimRight(r, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("render has %d lines want 6", len(lines))
	}
	for i, l := range lines {
		if len(l) != 8 {
			t.Errorf("line %d has width %d want 8: %q", i, len(l), l)
		}
	}
	if lines[0][0] != 'I' || lines[0][7] != 'O' {
		t.Errorf("ports not rendered: %q", lines[0])
	}
	if lines[1][2] != 'M' {
		t.Errorf("mixer not rendered: %q", lines[1])
	}
	if lines[4][3] != 'H' {
		t.Errorf("heater not rendered: %q", lines[4])
	}
}

func TestStats(t *testing.T) {
	c := testChip(t)
	s := c.Stats()
	if s["devices"] != 2 || s["ports"] != 4 {
		t.Errorf("stats = %v", s)
	}
	if s["device"] != 4+3 {
		t.Errorf("device cells = %d want 7", s["device"])
	}
	if s["flow-port"] != 2 || s["waste-port"] != 2 {
		t.Errorf("port cells = %v", s)
	}
}

func TestSortedDeviceIDs(t *testing.T) {
	c := testChip(t)
	ids := c.SortedDeviceIDs()
	if len(ids) != 2 || ids[0] != "heater" || ids[1] != "mixer" {
		t.Fatalf("SortedDeviceIDs = %v", ids)
	}
}

func TestCellLengthOf(t *testing.T) {
	c := testChip(t)
	c.CellLengthMM = 2.5
	if got := c.CellLengthOf(4); got != 10 {
		t.Errorf("CellLengthOf(4) = %v want 10", got)
	}
}

func TestDeviceAndPortStrings(t *testing.T) {
	c := testChip(t)
	if s := c.Device("mixer").String(); !strings.Contains(s, "mixer") || !strings.Contains(s, "(2,1)") {
		t.Errorf("device string = %q", s)
	}
	if s := c.Port("in1").String(); s != "in1@(0,0)" {
		t.Errorf("port string = %q", s)
	}
	if FlowPort.String() != "flow" || WastePort.String() != "waste" {
		t.Error("port kind strings wrong")
	}
}
