// Package grid models a continuous-flow lab-on-a-chip architecture as the
// virtual grid R of size W_G x H_G used throughout the paper (Sec. III).
//
// Cells of the grid hold devices (mixers, heaters, detectors, filters,
// storage), flow-channel segments, or ports. Flow ports inject reagents
// and wash buffer; waste ports release waste fluids and displaced air.
// Fluids move along flow paths — simple rectilinear cell sequences that
// may pass through channels and devices and terminate at ports.
package grid

import (
	"fmt"
	"sort"
	"strings"

	"pathdriverwash/internal/geom"
)

// CellKind classifies what occupies a grid cell.
type CellKind uint8

// Cell kinds. Empty cells are not routable; all other kinds can carry
// fluid and therefore appear on flow paths.
const (
	Empty CellKind = iota
	Channel
	DeviceCell
	FlowPortCell
	WastePortCell
)

// String names the cell kind.
func (k CellKind) String() string {
	switch k {
	case Empty:
		return "empty"
	case Channel:
		return "channel"
	case DeviceCell:
		return "device"
	case FlowPortCell:
		return "flow-port"
	case WastePortCell:
		return "waste-port"
	}
	return fmt.Sprintf("CellKind(%d)", uint8(k))
}

// Routable reports whether fluid can occupy a cell of this kind.
func (k CellKind) Routable() bool { return k != Empty }

// DeviceKind is the functional type of an on-chip device. It must match
// the DeviceKind requested by a biochemical operation for binding.
type DeviceKind string

// Device kinds from the paper's chip layouts and benchmark suites.
const (
	Mixer    DeviceKind = "mixer"
	Heater   DeviceKind = "heater"
	Detector DeviceKind = "detector"
	Filter   DeviceKind = "filter"
	Storage  DeviceKind = "storage"
	Diluter  DeviceKind = "diluter"
	Washer   DeviceKind = "washer"
)

// Device is a placed on-chip device occupying a rectangle of cells.
type Device struct {
	ID   string
	Kind DeviceKind
	Area geom.Rect
}

// Cells enumerates the grid cells occupied by the device.
func (d *Device) Cells() []geom.Point { return d.Area.Points() }

// Center returns the (rounded-down) central cell of the device.
func (d *Device) Center() geom.Point {
	return geom.Pt(d.Area.Min.X+d.Area.W()/2, d.Area.Min.Y+d.Area.H()/2)
}

// String renders the device as "id(kind)@rect".
func (d *Device) String() string {
	return fmt.Sprintf("%s(%s)@%v-%v", d.ID, d.Kind, d.Area.Min, d.Area.Max)
}

// PortKind distinguishes injection ports from waste outlets.
type PortKind uint8

// Port kinds.
const (
	FlowPort PortKind = iota
	WastePort
)

// String names the port kind.
func (k PortKind) String() string {
	if k == FlowPort {
		return "flow"
	}
	return "waste"
}

// Port is a chip boundary port. Flow ports (in_i) connect to external
// pressure-driven reservoirs; waste ports (out_i) vent waste and air.
type Port struct {
	ID   string
	Kind PortKind
	At   geom.Point
}

// String renders the port as "id@point".
func (p *Port) String() string { return fmt.Sprintf("%s@%v", p.ID, p.At) }

// Chip is the virtual-grid model of a biochip architecture together with
// the physical parameters the wash-duration model of Eq. (17) needs.
type Chip struct {
	// Name labels the architecture (usually the benchmark name).
	Name string
	// W, H are the virtual grid dimensions W_G and H_G.
	W, H int

	// CellLengthMM is the physical channel length represented by one
	// grid cell, in millimetres.
	CellLengthMM float64
	// FlowVelocityMMs is the buffer flow velocity v_f in mm/s
	// (the paper uses 10 mm/s).
	FlowVelocityMMs float64
	// DissolutionS is the contaminant dissolution time t_d in seconds.
	DissolutionS float64

	kind    []CellKind
	devAt   []*Device // nil when the cell is not a device cell
	portAt  []*Port   // nil when the cell is not a port cell
	devices []*Device
	ports   []*Port
}

// NewChip allocates an empty WxH chip with the paper's default physical
// parameters (cell pitch 1 mm, v_f = 10 mm/s, t_d = 2 s).
func NewChip(name string, w, h int) *Chip {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: invalid chip size %dx%d", w, h))
	}
	return &Chip{
		Name:            name,
		W:               w,
		H:               h,
		CellLengthMM:    1,
		FlowVelocityMMs: 10,
		DissolutionS:    2,
		kind:            make([]CellKind, w*h),
		devAt:           make([]*Device, w*h),
		portAt:          make([]*Port, w*h),
	}
}

func (c *Chip) idx(p geom.Point) int { return p.Y*c.W + p.X }

// InBounds reports whether p lies on the grid.
func (c *Chip) InBounds(p geom.Point) bool {
	return p.X >= 0 && p.X < c.W && p.Y >= 0 && p.Y < c.H
}

// KindAt returns the kind of the cell at p (Empty for out-of-bounds).
func (c *Chip) KindAt(p geom.Point) CellKind {
	if !c.InBounds(p) {
		return Empty
	}
	return c.kind[c.idx(p)]
}

// Routable reports whether fluid can occupy cell p.
func (c *Chip) Routable(p geom.Point) bool { return c.KindAt(p).Routable() }

// DeviceAt returns the device occupying p, or nil.
func (c *Chip) DeviceAt(p geom.Point) *Device {
	if !c.InBounds(p) {
		return nil
	}
	return c.devAt[c.idx(p)]
}

// PortAt returns the port at p, or nil.
func (c *Chip) PortAt(p geom.Point) *Port {
	if !c.InBounds(p) {
		return nil
	}
	return c.portAt[c.idx(p)]
}

// Devices returns the placed devices in insertion order.
func (c *Chip) Devices() []*Device { return c.devices }

// Ports returns all ports in insertion order.
func (c *Chip) Ports() []*Port { return c.ports }

// FlowPorts returns the flow (injection) ports in insertion order.
func (c *Chip) FlowPorts() []*Port { return c.portsOf(FlowPort) }

// WastePorts returns the waste ports in insertion order.
func (c *Chip) WastePorts() []*Port { return c.portsOf(WastePort) }

func (c *Chip) portsOf(k PortKind) []*Port {
	var out []*Port
	for _, p := range c.ports {
		if p.Kind == k {
			out = append(out, p)
		}
	}
	return out
}

// Device returns the device with the given ID, or nil.
func (c *Chip) Device(id string) *Device {
	for _, d := range c.devices {
		if d.ID == id {
			return d
		}
	}
	return nil
}

// Port returns the port with the given ID, or nil.
func (c *Chip) Port(id string) *Port {
	for _, p := range c.ports {
		if p.ID == id {
			return p
		}
	}
	return nil
}

// AddDevice places a device over rectangle area. The cells must be empty.
func (c *Chip) AddDevice(id string, kind DeviceKind, area geom.Rect) (*Device, error) {
	if c.Device(id) != nil {
		return nil, fmt.Errorf("grid: duplicate device id %q", id)
	}
	if area.Area() == 0 {
		return nil, fmt.Errorf("grid: device %q has empty area", id)
	}
	for _, p := range area.Points() {
		if !c.InBounds(p) {
			return nil, fmt.Errorf("grid: device %q cell %v out of bounds", id, p)
		}
		if c.kind[c.idx(p)] != Empty {
			return nil, fmt.Errorf("grid: device %q overlaps %s at %v", id, c.kind[c.idx(p)], p)
		}
	}
	d := &Device{ID: id, Kind: kind, Area: area}
	for _, p := range area.Points() {
		c.kind[c.idx(p)] = DeviceCell
		c.devAt[c.idx(p)] = d
	}
	c.devices = append(c.devices, d)
	return d, nil
}

// AddPort places a flow or waste port at p. The cell must be empty and on
// the chip boundary (ports connect to off-chip tubing).
func (c *Chip) AddPort(id string, kind PortKind, at geom.Point) (*Port, error) {
	if c.Port(id) != nil {
		return nil, fmt.Errorf("grid: duplicate port id %q", id)
	}
	if !c.InBounds(at) {
		return nil, fmt.Errorf("grid: port %q at %v out of bounds", id, at)
	}
	if at.X != 0 && at.X != c.W-1 && at.Y != 0 && at.Y != c.H-1 {
		return nil, fmt.Errorf("grid: port %q at %v is not on the chip boundary", id, at)
	}
	if c.kind[c.idx(at)] != Empty {
		return nil, fmt.Errorf("grid: port %q overlaps %s at %v", id, c.kind[c.idx(at)], at)
	}
	ck := FlowPortCell
	if kind == WastePort {
		ck = WastePortCell
	}
	p := &Port{ID: id, Kind: kind, At: at}
	c.kind[c.idx(at)] = ck
	c.portAt[c.idx(at)] = p
	c.ports = append(c.ports, p)
	return p, nil
}

// AddChannel marks cell p as a flow-channel segment. Adding a channel on
// an already-routable cell is a no-op so routes can be stamped liberally.
func (c *Chip) AddChannel(p geom.Point) error {
	if !c.InBounds(p) {
		return fmt.Errorf("grid: channel cell %v out of bounds", p)
	}
	if c.kind[c.idx(p)] == Empty {
		c.kind[c.idx(p)] = Channel
	}
	return nil
}

// AddChannelPath stamps every cell of the path as channel where empty.
func (c *Chip) AddChannelPath(pts []geom.Point) error {
	for _, p := range pts {
		if err := c.AddChannel(p); err != nil {
			return err
		}
	}
	return nil
}

// RoutableNeighbors returns the routable 4-neighbours of p.
func (c *Chip) RoutableNeighbors(p geom.Point) []geom.Point {
	out := make([]geom.Point, 0, 4)
	for _, n := range p.Neighbors() {
		if c.InBounds(n) && c.Routable(n) {
			out = append(out, n)
		}
	}
	return out
}

// RoutableCells enumerates every routable cell in row-major order.
func (c *Chip) RoutableCells() []geom.Point {
	var out []geom.Point
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			p := geom.Pt(x, y)
			if c.Routable(p) {
				out = append(out, p)
			}
		}
	}
	return out
}

// CellLengthOf returns the physical length in mm of n cells of channel.
func (c *Chip) CellLengthOf(n int) float64 { return float64(n) * c.CellLengthMM }

// Validate checks structural invariants: ports on the boundary, devices
// within bounds, at least one flow and one waste port, and that the
// routable cells form a single connected component (fluid must be able to
// reach every channel/device from the ports).
func (c *Chip) Validate() error {
	if len(c.FlowPorts()) == 0 {
		return fmt.Errorf("grid: chip %q has no flow port", c.Name)
	}
	if len(c.WastePorts()) == 0 {
		return fmt.Errorf("grid: chip %q has no waste port", c.Name)
	}
	cells := c.RoutableCells()
	if len(cells) == 0 {
		return fmt.Errorf("grid: chip %q has no routable cells", c.Name)
	}
	// Flood fill from the first routable cell.
	seen := make(map[geom.Point]bool, len(cells))
	stack := []geom.Point{cells[0]}
	seen[cells[0]] = true
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range c.RoutableNeighbors(p) {
			if !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	if len(seen) != len(cells) {
		var orphans []string
		for _, p := range cells {
			if !seen[p] {
				orphans = append(orphans, p.String())
				if len(orphans) == 5 {
					orphans = append(orphans, "...")
					break
				}
			}
		}
		return fmt.Errorf("grid: chip %q routable cells are disconnected (%d of %d reachable; unreachable: %s)",
			c.Name, len(seen), len(cells), strings.Join(orphans, " "))
	}
	return nil
}

// Render draws the chip as ASCII art: '.' empty, '-' channel, device
// cells show the first letter of their kind (uppercase), 'I' flow port,
// 'O' waste port.
func (c *Chip) Render() string {
	var b strings.Builder
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			p := geom.Pt(x, y)
			switch c.KindAt(p) {
			case Empty:
				b.WriteByte('.')
			case Channel:
				b.WriteByte('-')
			case DeviceCell:
				k := c.DeviceAt(p).Kind
				ch := byte('D')
				if len(k) > 0 {
					ch = byte(strings.ToUpper(string(k))[0])
				}
				b.WriteByte(ch)
			case FlowPortCell:
				b.WriteByte('I')
			case WastePortCell:
				b.WriteByte('O')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Stats summarises cell occupancy for reporting.
func (c *Chip) Stats() map[string]int {
	m := map[string]int{}
	for _, k := range c.kind {
		m[k.String()]++
	}
	m["devices"] = len(c.devices)
	m["ports"] = len(c.ports)
	return m
}

// SortedDeviceIDs returns device IDs in lexical order (stable reporting).
func (c *Chip) SortedDeviceIDs() []string {
	ids := make([]string, len(c.devices))
	for i, d := range c.devices {
		ids[i] = d.ID
	}
	sort.Strings(ids)
	return ids
}
