// Package reqlog is the request-scoped observability layer behind
// pdwd: per-request identity (W3C trace context + a request id)
// carried through the context, a fixed-size flight recorder of
// completed request records with tail-sampling, structured slog
// helpers, and debug endpoints exposing the ring and per-request
// Chrome-trace exports (DESIGN.md "Request observability contract").
//
// Where internal/obs answers "what is the process doing" (aggregate
// spans, counters, histograms), reqlog answers "what happened to THIS
// request": its phase timeline, span tree, cache/shed/degraded flags,
// admission queue wait, and budget vs. actual wall time — the evidence
// an operator needs for "why was this one slow?".
//
// # Tail-sampling
//
// The ring would be useless if 10k boring cache hits evicted the one
// request that mattered, so retention is decided after the outcome is
// known: error, rejected (429), degraded (shed), canceled (client
// hang-up), and overrun (budget-expired) requests are always kept, as
// is anything in the top latency percentile of recent traffic; the
// boring rest (ok/cached/coalesced) is sampled 1-in-N. Every record
// carries its retention reason.
package reqlog

import (
	"context"
	"sort"
	"sync"
	"time"

	"pathdriverwash/internal/obs"
)

// Outcome classifies how a request ended. The service maps its error
// sentinels and response flags onto these; requests that never get an
// explicit outcome (e.g. plain HTTP traffic) derive one from the HTTP
// status at End.
type Outcome string

const (
	// OutcomeOK is a full-fidelity success.
	OutcomeOK Outcome = "ok"
	// OutcomeCached was served from the incumbent cache.
	OutcomeCached Outcome = "cached"
	// OutcomeCoalesced piggybacked on an identical in-flight solve.
	OutcomeCoalesced Outcome = "coalesced"
	// OutcomeDegraded was shed to the heuristic warm-start.
	OutcomeDegraded Outcome = "degraded"
	// OutcomeCanceled means the client hung up (context canceled).
	OutcomeCanceled Outcome = "canceled"
	// OutcomeOverrun means the budget expired: either the solve still
	// answered with degraded incumbents, or it failed outright.
	OutcomeOverrun Outcome = "overrun"
	// OutcomeRejected is an admission rejection (429, full queue).
	OutcomeRejected Outcome = "rejected"
	// OutcomeError is any other failure.
	OutcomeError Outcome = "error"
)

// boring reports whether an outcome is sampled rather than always
// retained.
func (o Outcome) boring() bool {
	return o == OutcomeOK || o == OutcomeCached || o == OutcomeCoalesced
}

// Valid reports whether o is one of the defined outcome classes. The
// /debug/requests handler rejects filters that are not — an unknown
// outcome silently matching nothing looks exactly like "no such
// requests", which is the wrong answer to give an operator mid-incident.
func (o Outcome) Valid() bool {
	switch o {
	case OutcomeOK, OutcomeCached, OutcomeCoalesced, OutcomeDegraded,
		OutcomeCanceled, OutcomeOverrun, OutcomeRejected, OutcomeError:
		return true
	}
	return false
}

// Phase is one pipeline phase of a solve, mirrored from
// solve.PhaseStat without importing the solver stack.
type Phase struct {
	Name string        `json:"name"`
	Wall time.Duration `json:"wall_ns"`
}

// Record is one completed request as the flight recorder keeps it.
type Record struct {
	ID      string    `json:"id"`
	TraceID string    `json:"trace_id"`
	Start   time.Time `json:"start"`
	// Wall is the request's total wall time; Budget the clamped solve
	// budget it ran under (0: none recorded); Overrun flags Wall
	// exceeding Budget.
	Wall    time.Duration `json:"wall_ns"`
	Budget  time.Duration `json:"budget_ns,omitempty"`
	Overrun bool          `json:"overrun,omitempty"`
	// QueueWait is the time spent waiting for an admission worker slot.
	QueueWait time.Duration `json:"queue_wait_ns,omitempty"`

	Outcome Outcome `json:"outcome"`
	// Keep is the retention reason: "outcome", "latency", or "sampled".
	Keep string `json:"keep"`

	HTTPMethod string `json:"http_method,omitempty"`
	Path       string `json:"path,omitempty"`
	Code       int    `json:"code,omitempty"`

	// Method is the solver method ("pdw", "dawo"); the flags mirror the
	// wire response's service flags.
	Method    string `json:"method,omitempty"`
	Degraded  bool   `json:"degraded,omitempty"`
	Cached    bool   `json:"cached,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
	Canceled  bool   `json:"canceled,omitempty"`
	Err       string `json:"error,omitempty"`

	// Phases is the solve's phase timeline (from solve.Stats).
	Phases []Phase `json:"phases,omitempty"`
	// Progress is the solve's final live-progress snapshot (nodes,
	// pivots, incumbent/bound/gap), stamped by the service when the
	// solve returns — the terminal point of the trajectory
	// /debug/solves showed while the request was in flight.
	Progress *obs.SolveSnapshot `json:"progress,omitempty"`
	// ProfileID links to the profile bundle this request's completion
	// triggered (GET /debug/profiles/{id}); empty when no trigger is
	// installed, the request was unremarkable, or the trigger was
	// rate-limited.
	ProfileID string `json:"profile_id,omitempty"`
	// Spans is the request's span tree (capped at Config.MaxSpans);
	// SpanCount is the number captured. The /debug/requests listing
	// omits Spans — the per-request trace endpoint exports them.
	Spans     []obs.SpanData `json:"spans,omitempty"`
	SpanCount int            `json:"span_count,omitempty"`
}

// Config tunes a Recorder. The zero value keeps 512 records, samples
// 1-in-16 boring requests, and caps each record at 512 spans.
type Config struct {
	// Depth is the ring capacity in kept records.
	Depth int
	// SampleEvery keeps one in N boring (ok/cached/coalesced,
	// non-tail-latency) requests. 1 keeps everything.
	SampleEvery int
	// MaxSpans caps the spans captured per request.
	MaxSpans int
	// Trigger, when set, is offered every anomalous completed request
	// (budget overrun, shed/degraded, tail latency — the same
	// conditions the keep logic always retains); a successful Trip's
	// capture id is stamped on the record as ProfileID. internal/obs/
	// prof.Engine implements it.
	Trigger ProfileTrigger
}

// ProfileTrigger arms an evidence capture for an anomalous request.
// Implementations must be safe for concurrent use and fast on the
// suppressed path: Trip is called under the recorder's ring lock.
type ProfileTrigger interface {
	// Trip requests a capture attributed to requestID for the given
	// reason ("overrun", "shed", "latency"). It returns the capture id
	// and true when armed, or false when suppressed (rate limit,
	// capture already running).
	Trip(reason, requestID string) (id string, ok bool)
}

func (c Config) withDefaults() Config {
	if c.Depth <= 0 {
		c.Depth = 512
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 16
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = 512
	}
	return c
}

// latWindow is the recent-latency reservoir size and latRecompute how
// often the tail threshold is refreshed from it; latMin is the minimum
// fill before latency retention kicks in (so startup traffic is not
// all "tail").
const (
	latWindow    = 128
	latRecompute = 32
	latMin       = 32
	latQuantile  = 0.95
)

// Recorder is the flight recorder: a fixed-size ring of completed
// request records plus the registry of in-flight requests it routes
// span deliveries to. All methods are safe for concurrent use; a nil
// *Recorder is valid everywhere and records nothing, so wiring can be
// left unconditional.
type Recorder struct {
	cfg Config

	// amu guards active, the obs root-span-id -> in-flight request
	// index the Sink path reads. It is an RWMutex because OnSpanEnd
	// (read) fires for every span in the process while requests come
	// and go far more rarely.
	amu    sync.RWMutex
	active map[uint64]*Request

	// mu guards the ring and the sampling state. Everything under it is
	// O(1) appends or a bounded sort every latRecompute requests.
	mu       sync.Mutex
	ring     []Record // circular, cap cfg.Depth
	next     int      // ring write cursor
	total    uint64   // requests observed (kept or not)
	boringN  uint64   // boring-request counter for 1-in-N sampling
	lat      [latWindow]float64
	latN     int     // total latencies observed
	tailSecs float64 // cached latency threshold; 0 until latMin seen

	removeSink func()
}

// NewRecorder returns a running recorder registered as an obs span
// sink (so request span trees are captured whenever the obs layer is
// enabled). Call Close to unregister it.
func NewRecorder(cfg Config) *Recorder {
	r := &Recorder{
		cfg:    cfg.withDefaults(),
		active: map[uint64]*Request{},
	}
	r.removeSink = obs.AddSink(r)
	return r
}

// Close unregisters the recorder from the obs sink list. The ring
// remains readable.
func (r *Recorder) Close() {
	if r == nil || r.removeSink == nil {
		return
	}
	r.removeSink()
	r.removeSink = nil
}

// Cap is the ring capacity (0 on nil).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return r.cfg.Depth
}

// Len is the number of records currently retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Total is the number of requests observed, kept or sampled away.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Records returns a snapshot of the ring, newest first.
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, 0, len(r.ring))
	// next-1 is the newest slot; walk backwards.
	for i := 0; i < len(r.ring); i++ {
		out = append(out, r.ring[(r.next-1-i+len(r.ring))%len(r.ring)])
	}
	return out
}

// Find returns the retained record with the given request id.
func (r *Recorder) Find(id string) (Record, bool) {
	if r == nil {
		return Record{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rec := range r.ring {
		if rec.ID == id {
			return rec, true
		}
	}
	return Record{}, false
}

// OnSpanEnd implements obs.Sink: finished spans route to the in-flight
// request owning their root, if any. The miss path (spans from
// non-request work) is one RLock and a map lookup.
func (r *Recorder) OnSpanEnd(d obs.SpanData) {
	r.amu.RLock()
	q := r.active[d.Root]
	r.amu.RUnlock()
	if q != nil {
		q.addSpan(d)
	}
}

// observe applies the tail-sampling policy and pushes kept records
// into the ring.
func (r *Recorder) observe(rec Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++

	// Update the recent-latency reservoir and, periodically, the tail
	// threshold derived from it.
	r.lat[r.latN%latWindow] = rec.Wall.Seconds()
	r.latN++
	if r.latN >= latMin && (r.tailSecs == 0 || r.latN%latRecompute == 0) {
		n := min(r.latN, latWindow)
		sorted := make([]float64, n)
		copy(sorted, r.lat[:n])
		sort.Float64s(sorted)
		r.tailSecs = sorted[min(int(float64(n)*latQuantile), n-1)]
	}

	switch {
	case !rec.Outcome.boring() || rec.Overrun:
		rec.Keep = "outcome"
	case r.tailSecs > 0 && rec.Wall.Seconds() >= r.tailSecs:
		rec.Keep = "latency"
	default:
		r.boringN++
		if r.boringN%uint64(r.cfg.SampleEvery) != 0 {
			return
		}
		rec.Keep = "sampled"
	}

	// Anomalous completions offer the profiling trigger a shot at
	// capturing evidence; the capture id (if one armed) lands on the
	// record so /debug/requests links straight to /debug/profiles/{id}.
	// The trigger runs its capture asynchronously — Trip itself is a
	// rate-limit check — and never calls back into the recorder, so
	// holding r.mu here is safe.
	if r.cfg.Trigger != nil {
		if reason := anomalyReason(rec); reason != "" {
			if id, ok := r.cfg.Trigger.Trip(reason, rec.ID); ok {
				rec.ProfileID = id
			}
		}
	}

	if len(r.ring) < r.cfg.Depth {
		r.ring = append(r.ring, rec)
		r.next = len(r.ring) % r.cfg.Depth
		return
	}
	r.ring[r.next] = rec
	r.next = (r.next + 1) % r.cfg.Depth
}

// reqKey carries the active *Request in a context.
type reqKey struct{}

// FromContext returns the in-flight request carried by ctx, or nil.
func FromContext(ctx context.Context) *Request {
	if ctx == nil {
		return nil
	}
	q, _ := ctx.Value(reqKey{}).(*Request)
	return q
}

// Request is one in-flight request being recorded. All methods are
// nil-safe and no-ops after End, so annotation sites never guard (and
// a detached leader annotating after its client's record closed is
// harmless).
type Request struct {
	rec  *Recorder
	tc   TraceContext
	root uint64 // obs root span id, 0 when obs is disabled
	span *obs.Span

	mu    sync.Mutex
	ended bool
	r     Record
}

// Begin opens a request: it resolves the identity (continuing the
// given W3C traceparent value if valid, otherwise minting a fresh
// trace), opens the root "request" span when the obs layer is enabled,
// and returns a context carrying the request for downstream
// annotation. Safe on a nil recorder (returns ctx, nil).
func (r *Recorder) Begin(ctx context.Context, traceparent string) (context.Context, *Request) {
	if r == nil {
		return ctx, nil
	}
	tc, err := ParseTraceparent(traceparent)
	if err == nil {
		tc = tc.Child()
	} else {
		tc = NewTraceContext()
	}
	q := &Request{rec: r, tc: tc}
	q.r.ID = newRequestID()
	q.r.TraceID = tc.TraceIDString()
	q.r.Start = time.Now()

	ctx, span := obs.Start(ctx, "request",
		obs.A("request_id", q.r.ID), obs.A("trace_id", q.r.TraceID))
	if span != nil {
		q.span = span
		q.root = span.Root()
		r.amu.Lock()
		r.active[q.root] = q
		r.amu.Unlock()
	}
	return context.WithValue(ctx, reqKey{}, q), q
}

// ID returns the request id ("" on nil).
func (q *Request) ID() string {
	if q == nil {
		return ""
	}
	return q.r.ID
}

// Trace returns the request's trace context (zero on nil).
func (q *Request) Trace() TraceContext {
	if q == nil {
		return TraceContext{}
	}
	return q.tc
}

// Outcome returns the outcome recorded so far (derived ones appear
// only after End).
func (q *Request) Outcome() Outcome {
	if q == nil {
		return ""
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.r.Outcome
}

// annotate runs f on the accumulating record unless the request ended.
func (q *Request) annotate(f func(*Record)) {
	if q == nil {
		return
	}
	q.mu.Lock()
	if !q.ended {
		f(&q.r)
	}
	q.mu.Unlock()
}

// SetHTTP records the HTTP-level view of the request.
func (q *Request) SetHTTP(method, path string, code int) {
	q.annotate(func(r *Record) { r.HTTPMethod, r.Path, r.Code = method, path, code })
}

// SetOutcome records the explicit outcome classification.
func (q *Request) SetOutcome(o Outcome) {
	q.annotate(func(r *Record) { r.Outcome = o })
}

// SetSolve records the solve-layer summary: method, status code,
// service flags, failure text, and the phase timeline.
func (q *Request) SetSolve(method string, code int, degraded, cached, coalesced, canceled bool, errText string, phases []Phase) {
	q.annotate(func(r *Record) {
		r.Method, r.Code = method, code
		r.Degraded, r.Cached, r.Coalesced, r.Canceled = degraded, cached, coalesced, canceled
		r.Err = errText
		r.Phases = phases
	})
}

// SetBudget records the clamped solve budget the request ran under.
func (q *Request) SetBudget(d time.Duration) {
	q.annotate(func(r *Record) { r.Budget = d })
}

// SetQueueWait records the admission queue wait.
func (q *Request) SetQueueWait(d time.Duration) {
	q.annotate(func(r *Record) { r.QueueWait = d })
}

// SetProgress records the solve's final live-progress snapshot.
func (q *Request) SetProgress(s obs.SolveSnapshot) {
	q.annotate(func(r *Record) { r.Progress = &s })
}

// addSpan appends one finished span, up to the per-request cap.
func (q *Request) addSpan(d obs.SpanData) {
	q.mu.Lock()
	if !q.ended {
		q.r.SpanCount++
		if len(q.r.Spans) < q.rec.cfg.MaxSpans {
			q.r.Spans = append(q.r.Spans, d)
		}
	}
	q.mu.Unlock()
}

// End closes the request: the root span ends (delivering it into the
// record), the request leaves the active index, the wall time, overrun
// flag, and any derived outcome are finalized, and the record enters
// the tail-sampling gate. Idempotent and nil-safe.
func (q *Request) End() {
	if q == nil {
		return
	}
	// Ending the root span delivers it through OnSpanEnd into q.r.Spans
	// before the ended flag flips below.
	q.span.End()
	if q.root != 0 {
		q.rec.amu.Lock()
		delete(q.rec.active, q.root)
		q.rec.amu.Unlock()
	}

	q.mu.Lock()
	if q.ended {
		q.mu.Unlock()
		return
	}
	q.ended = true
	q.r.Wall = time.Since(q.r.Start)
	if q.r.Budget > 0 && q.r.Wall > q.r.Budget {
		q.r.Overrun = true
	}
	if q.r.Outcome == "" {
		q.r.Outcome = deriveOutcome(q.r.Code)
	}
	rec := q.r
	q.mu.Unlock()
	q.rec.observe(rec)
}

// anomalyReason maps a kept record to the profiling trigger reason it
// justifies, or "" for records that are merely retained (errors and
// rejections are kept for the ring but are cheap fast paths — profiling
// them would tell us nothing about solver behavior).
func anomalyReason(rec Record) string {
	switch {
	case rec.Outcome == OutcomeOverrun || rec.Overrun:
		return "overrun"
	case rec.Outcome == OutcomeDegraded:
		return "shed"
	case rec.Keep == "latency":
		return "latency"
	}
	return ""
}

// deriveOutcome classifies requests nothing annotated (plain HTTP
// traffic, health checks) from the status code alone.
func deriveOutcome(code int) Outcome {
	switch {
	case code == 429:
		return OutcomeRejected
	case code == 499:
		return OutcomeCanceled
	case code >= 400:
		return OutcomeError
	default:
		return OutcomeOK
	}
}
