package reqlog

import (
	"strings"
	"testing"
)

func TestParseTraceparentRoundTrip(t *testing.T) {
	const in = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tc, err := ParseTraceparent(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := tc.String(); got != in {
		t.Fatalf("round trip: %q != %q", got, in)
	}
	if got := tc.TraceIDString(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id %q", got)
	}
	if tc.Flags != 0x01 {
		t.Fatalf("flags %02x", tc.Flags)
	}
	if !tc.Valid() {
		t.Fatal("parsed context reports invalid")
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"short":         "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",
		"long":          "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
		"version":       "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"dashes":        "00_4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7_01",
		"hex trace":     "00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",
		"hex parent":    "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902zz-01",
		"hex flags":     "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz",
		"zero trace id": "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero span id":  "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
	}
	for name, in := range cases {
		if _, err := ParseTraceparent(in); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted", name, in)
		}
	}
}

func TestNewTraceContextUniqueAndValid(t *testing.T) {
	seen := map[string]bool{}
	for range 200 {
		tc := NewTraceContext()
		if !tc.Valid() {
			t.Fatalf("invalid fresh context %v", tc)
		}
		s := tc.String()
		if seen[s] {
			t.Fatalf("duplicate trace context %s", s)
		}
		seen[s] = true
		if !strings.HasPrefix(s, "00-") || len(s) != 55 {
			t.Fatalf("malformed rendering %q", s)
		}
	}
}

func TestChildKeepsTraceID(t *testing.T) {
	parent := NewTraceContext()
	child := parent.Child()
	if child.TraceID != parent.TraceID {
		t.Fatal("child changed the trace id")
	}
	if child.SpanID == parent.SpanID {
		t.Fatal("child kept the parent span id")
	}
	if child.Flags != parent.Flags {
		t.Fatal("child changed the flags")
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for range 1000 {
		id := newRequestID()
		if len(id) != 16 {
			t.Fatalf("id %q length %d, want 16", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate request id %q", id)
		}
		seen[id] = true
	}
}
