package reqlog

import (
	"strings"
	"testing"
)

// FuzzParseTraceparent pins the parser's safety contract: on arbitrary
// input it must never panic, and any value it accepts must round-trip
// through String back to an equivalent, spec-valid identity. Seeds are
// the W3C Trace Context spec's own examples plus the malformations its
// test suite calls out.
func FuzzParseTraceparent(f *testing.F) {
	seeds := []string{
		// Spec examples (sampled and unsampled).
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00",
		// All-zero trace-id / parent-id: invalid per spec.
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		// Unsupported / forbidden versions.
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		// Wrong lengths and separators.
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
		"00_4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7_01",
		// Non-hex digits and uppercase (spec requires lowercase hex).
		"00-zf92f3577b34da6a3ce929d0e0e4736z-00f067aa0ba902b7-01",
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-01",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tc, err := ParseTraceparent(s)
		if err != nil {
			if tc != (TraceContext{}) {
				t.Fatalf("error with non-zero context: %q -> %+v", s, tc)
			}
			return
		}
		if !tc.Valid() {
			t.Fatalf("accepted invalid context from %q: %+v", s, tc)
		}
		// Round trip: rendering and reparsing must be lossless.
		out := tc.String()
		if len(out) != 55 {
			t.Fatalf("String() length %d from %q", len(out), out)
		}
		tc2, err := ParseTraceparent(out)
		if err != nil {
			t.Fatalf("round trip rejected %q (from %q): %v", out, s, err)
		}
		if tc2 != tc {
			t.Fatalf("round trip changed identity: %+v -> %+v", tc, tc2)
		}
		// The accepted id fields must mirror the input hex exactly
		// (hex.Decode accepts uppercase; String lowercases — both are the
		// same identity).
		if !strings.EqualFold(s, out) {
			t.Fatalf("identity differs from input: %q -> %q", s, out)
		}
	})
}
