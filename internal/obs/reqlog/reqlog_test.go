package reqlog

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pathdriverwash/internal/obs"
)

// mkRecord pushes one synthetic completed record through the sampling
// gate (white-box: observe is the post-End path).
func mkRecord(r *Recorder, id string, outcome Outcome, wall time.Duration) {
	r.observe(Record{
		ID: id, TraceID: "t-" + id, Start: time.Now(),
		Wall: wall, Outcome: outcome, Code: 200,
	})
}

func TestBeginEndRecordsRequest(t *testing.T) {
	r := NewRecorder(Config{Depth: 8, SampleEvery: 1})
	defer r.Close()

	const tp = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	ctx, q := r.Begin(context.Background(), tp)
	if FromContext(ctx) != q {
		t.Fatal("context does not carry the request")
	}
	if q.ID() == "" {
		t.Fatal("no request id assigned")
	}
	if got := q.Trace().TraceIDString(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("incoming trace id not continued: %q", got)
	}
	if q.Trace().String() == tp {
		t.Fatal("server must substitute its own span id")
	}

	q.SetBudget(2 * time.Second)
	q.SetQueueWait(5 * time.Millisecond)
	q.SetSolve("pdw", 200, false, true, false, false, "", []Phase{{Name: "synthesis", Wall: time.Millisecond}})
	q.SetOutcome(OutcomeCached)
	q.End()
	q.End() // idempotent

	if got := r.Len(); got != 1 {
		t.Fatalf("ring holds %d records, want 1", got)
	}
	rec, ok := r.Find(q.ID())
	if !ok {
		t.Fatal("record not findable by id")
	}
	if rec.Outcome != OutcomeCached || !rec.Cached || rec.Method != "pdw" {
		t.Fatalf("record %+v", rec)
	}
	if rec.Budget != 2*time.Second || rec.QueueWait != 5*time.Millisecond {
		t.Fatalf("budget/queue wait not recorded: %+v", rec)
	}
	if len(rec.Phases) != 1 || rec.Phases[0].Name != "synthesis" {
		t.Fatalf("phases %+v", rec.Phases)
	}
	if rec.Keep != "sampled" {
		t.Fatalf("keep reason %q, want sampled (SampleEvery=1)", rec.Keep)
	}

	// Annotations after End must not alter the stored record.
	q.SetOutcome(OutcomeError)
	if rec2, _ := r.Find(q.ID()); rec2.Outcome != OutcomeCached {
		t.Fatal("post-End annotation mutated the record")
	}
}

func TestBeginWithoutTraceparentMintsTrace(t *testing.T) {
	r := NewRecorder(Config{SampleEvery: 1})
	defer r.Close()
	_, q := r.Begin(context.Background(), "")
	defer q.End()
	if !q.Trace().Valid() {
		t.Fatalf("minted trace invalid: %v", q.Trace())
	}
	_, q2 := r.Begin(context.Background(), "garbage-header")
	defer q2.End()
	if !q2.Trace().Valid() || q2.Trace().TraceID == q.Trace().TraceID {
		t.Fatal("garbage traceparent must mint a fresh valid trace")
	}
}

func TestTailSamplingAlwaysKeepsBadOutcomes(t *testing.T) {
	r := NewRecorder(Config{Depth: 1024, SampleEvery: 1 << 30})
	defer r.Close()

	// Strictly decreasing walls keep every boring record under the p95
	// tail threshold (which trails the older, larger walls).
	for i := range 500 {
		mkRecord(r, fmt.Sprintf("ok-%d", i), OutcomeOK, time.Duration(1000-i)*time.Microsecond)
	}
	for i, o := range []Outcome{OutcomeDegraded, OutcomeCanceled, OutcomeRejected, OutcomeError, OutcomeOverrun} {
		mkRecord(r, fmt.Sprintf("bad-%d", i), o, time.Microsecond)
	}

	kept := r.Records()
	outcomes := map[Outcome]int{}
	for _, rec := range kept {
		outcomes[rec.Outcome]++
		if rec.Outcome.boring() {
			t.Fatalf("boring record %s kept despite effectively-infinite SampleEvery (keep=%s)", rec.ID, rec.Keep)
		}
		if rec.Keep != "outcome" {
			t.Fatalf("record %s keep=%q, want outcome", rec.ID, rec.Keep)
		}
	}
	for _, o := range []Outcome{OutcomeDegraded, OutcomeCanceled, OutcomeRejected, OutcomeError, OutcomeOverrun} {
		if outcomes[o] != 1 {
			t.Fatalf("outcome %s kept %d times, want 1 (kept: %v)", o, outcomes[o], outcomes)
		}
	}
	if got := r.Total(); got != 505 {
		t.Fatalf("total %d, want 505", got)
	}
}

func TestTailSamplingKeepsSlowRequests(t *testing.T) {
	r := NewRecorder(Config{Depth: 1024, SampleEvery: 1 << 30})
	defer r.Close()

	// Fill the latency reservoir with fast boring traffic, then send one
	// slow boring request: it must be retained as tail latency.
	for i := range latWindow {
		mkRecord(r, fmt.Sprintf("fast-%d", i), OutcomeOK, time.Millisecond)
	}
	mkRecord(r, "slow", OutcomeOK, 500*time.Millisecond)

	rec, ok := r.Find("slow")
	if !ok {
		t.Fatal("slow request was sampled away")
	}
	if rec.Keep != "latency" {
		t.Fatalf("keep=%q, want latency", rec.Keep)
	}
}

func TestBoringSampledOneInN(t *testing.T) {
	r := NewRecorder(Config{Depth: 1024, SampleEvery: 10})
	defer r.Close()
	// Strictly decreasing walls: every record stays under the trailing
	// p95 threshold, so retention is decided by the 1-in-N gate alone.
	for i := range 400 {
		mkRecord(r, fmt.Sprintf("b-%d", i), OutcomeCached, time.Duration(1000-i)*time.Microsecond)
	}
	sampled, other := 0, 0
	for _, rec := range r.Records() {
		if rec.Keep == "sampled" {
			sampled++
		} else {
			other++
		}
	}
	if sampled != 40 || other != 0 {
		t.Fatalf("kept %d sampled + %d other of 400 boring requests, want exactly 40 + 0", sampled, other)
	}
}

func TestRingEvictsOldestFirst(t *testing.T) {
	r := NewRecorder(Config{Depth: 4, SampleEvery: 1})
	defer r.Close()
	for i := range 10 {
		mkRecord(r, fmt.Sprintf("r-%d", i), OutcomeError, time.Millisecond)
	}
	recs := r.Records()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recs))
	}
	for i, rec := range recs {
		want := fmt.Sprintf("r-%d", 9-i)
		if rec.ID != want {
			t.Fatalf("records[%d] = %s, want %s (newest first)", i, rec.ID, want)
		}
	}
	if _, ok := r.Find("r-0"); ok {
		t.Fatal("evicted record still findable")
	}
}

func TestSpanCapture(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	r := NewRecorder(Config{SampleEvery: 1, MaxSpans: 8})
	defer r.Close()

	ctx, q := r.Begin(context.Background(), "")
	_, child := obs.Start(ctx, "phase.window-milp")
	child.End()
	// A span from unrelated work must not leak into this request.
	_, stray := obs.Start(context.Background(), "stray")
	stray.End()
	q.End()

	rec, ok := r.Find(q.ID())
	if !ok {
		t.Fatal("record missing")
	}
	if rec.SpanCount != 2 || len(rec.Spans) != 2 {
		t.Fatalf("captured %d spans (count %d), want 2 (child + root)", len(rec.Spans), rec.SpanCount)
	}
	names := map[string]bool{}
	for _, sp := range rec.Spans {
		names[sp.Name] = true
	}
	if !names["phase.window-milp"] || !names["request"] {
		t.Fatalf("span names %v", names)
	}
	if names["stray"] {
		t.Fatal("unrelated span leaked into the request record")
	}
}

func TestSpanCaptureCapped(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	r := NewRecorder(Config{SampleEvery: 1, MaxSpans: 4})
	defer r.Close()
	ctx, q := r.Begin(context.Background(), "")
	for range 20 {
		_, sp := obs.Start(ctx, "tiny")
		sp.End()
	}
	q.End()
	rec, _ := r.Find(q.ID())
	if len(rec.Spans) != 4 || rec.SpanCount != 21 {
		t.Fatalf("spans %d (count %d), want cap 4 of 21", len(rec.Spans), rec.SpanCount)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	ctx, q := r.Begin(context.Background(), "")
	if q != nil {
		t.Fatal("nil recorder began a request")
	}
	if FromContext(ctx) != nil {
		t.Fatal("nil request leaked into context")
	}
	q.SetHTTP("GET", "/x", 200)
	q.SetOutcome(OutcomeOK)
	q.SetBudget(time.Second)
	q.SetQueueWait(time.Second)
	q.SetSolve("pdw", 200, false, false, false, false, "", nil)
	q.End()
	if q.ID() != "" || q.Outcome() != "" || q.Trace().Valid() {
		t.Fatal("nil request accessors not zero")
	}
	if r.Len() != 0 || r.Cap() != 0 || r.Total() != 0 || r.Records() != nil {
		t.Fatal("nil recorder accessors not zero")
	}
	if _, ok := r.Find("x"); ok {
		t.Fatal("nil recorder found a record")
	}
	r.Close()
}

func TestConcurrentRequests(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	r := NewRecorder(Config{Depth: 4096, SampleEvery: 1})
	defer r.Close()

	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range per {
				ctx, q := r.Begin(context.Background(), "")
				_, sp := obs.Start(ctx, "inner")
				sp.End()
				if i%3 == 0 {
					q.SetOutcome(OutcomeDegraded)
				}
				q.SetSolve("pdw", 200, i%3 == 0, false, false, false, "", nil)
				_ = w
				q.End()
			}
		}()
	}
	wg.Wait()
	if got := r.Total(); got != workers*per {
		t.Fatalf("total %d, want %d", got, workers*per)
	}
	if got := r.Len(); got != workers*per {
		t.Fatalf("kept %d, want %d (SampleEvery=1, depth ample)", got, workers*per)
	}
	ids := map[string]bool{}
	for _, rec := range r.Records() {
		if ids[rec.ID] {
			t.Fatalf("duplicate request id %s", rec.ID)
		}
		ids[rec.ID] = true
	}
}

func TestRequestsEndpoint(t *testing.T) {
	r := NewRecorder(Config{Depth: 64, SampleEvery: 1})
	defer r.Close()
	for i := range 6 {
		o := OutcomeOK
		if i%2 == 0 {
			o = OutcomeDegraded
		}
		mkRecord(r, fmt.Sprintf("q-%d", i), o, time.Millisecond)
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	var body struct {
		Depth    int      `json:"depth"`
		Kept     int      `json:"kept"`
		Total    uint64   `json:"total"`
		Requests []Record `json:"requests"`
	}
	get := func(url string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", url, resp.StatusCode)
		}
		body.Requests = nil
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
	}

	get(srv.URL + "/debug/requests")
	if body.Depth != 64 || body.Kept != 6 || body.Total != 6 || len(body.Requests) != 6 {
		t.Fatalf("listing %+v", body)
	}
	if body.Requests[0].ID != "q-5" {
		t.Fatalf("listing not newest first: %s", body.Requests[0].ID)
	}
	for _, rec := range body.Requests {
		if rec.Spans != nil {
			t.Fatal("listing must omit span trees")
		}
	}

	get(srv.URL + "/debug/requests?outcome=degraded&limit=2")
	if len(body.Requests) != 2 {
		t.Fatalf("filtered listing has %d, want 2", len(body.Requests))
	}
	for _, rec := range body.Requests {
		if rec.Outcome != OutcomeDegraded {
			t.Fatalf("filter leaked outcome %s", rec.Outcome)
		}
	}

	resp, err := http.Get(srv.URL + "/debug/requests?limit=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit: status %d, want 400", resp.StatusCode)
	}
}

func TestTraceEndpoint(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	r := NewRecorder(Config{SampleEvery: 1})
	defer r.Close()

	ctx, q := r.Begin(context.Background(), "")
	_, sp := obs.Start(ctx, "phase.verify")
	sp.End()
	q.End()

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/requests/" + q.ID() + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var events []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("trace export is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace export")
	}
	for _, ev := range events {
		for _, key := range []string{"name", "ph", "ts", "pid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %v missing %q", ev, key)
			}
		}
	}

	// Unknown ids 404.
	resp404, err := http.Get(srv.URL + "/debug/requests/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404", resp404.StatusCode)
	}
}

func TestTraceEndpointSynthesizesWithoutSpans(t *testing.T) {
	// obs disabled: no spans captured; the export must still be a valid
	// non-empty Chrome trace.
	r := NewRecorder(Config{SampleEvery: 1})
	defer r.Close()
	_, q := r.Begin(context.Background(), "")
	q.SetOutcome(OutcomeError)
	q.End()

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/requests/" + q.ID() + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("span-less record exported an empty trace")
	}
}

func TestInstallDebug(t *testing.T) {
	r := NewRecorder(Config{SampleEvery: 1})
	defer r.Close()
	remove := r.InstallDebug()
	defer remove()
	mkRecord(r, "via-obs", OutcomeError, time.Millisecond)

	srv := httptest.NewServer(obs.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("obs-mounted /debug/requests: status %d", resp.StatusCode)
	}
}

func TestParseLevelAndLogger(t *testing.T) {
	for in, want := range map[string]string{
		"debug": "DEBUG", "info": "INFO", "warn": "WARN", "warning": "WARN", "error": "ERROR", "": "INFO",
	} {
		lvl, err := ParseLevel(in)
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", in, err)
		}
		if lvl.String() != want {
			t.Fatalf("ParseLevel(%q) = %s, want %s", in, lvl, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}

	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelWarn)
	log.Info("hidden")
	log.Warn("visible", "request_id", "abc123")
	out := buf.String()
	if out == "" {
		t.Fatal("no log output")
	}
	var line map[string]any
	if err := json.Unmarshal([]byte(out), &line); err != nil {
		t.Fatalf("log line is not JSON: %q", out)
	}
	if line["msg"] != "visible" || line["request_id"] != "abc123" {
		t.Fatalf("log line %v", line)
	}
}
