package reqlog

import (
	"context"
	"testing"
	"time"
)

// BenchmarkBeginEnd measures the recorder's own cost per request with
// the obs span layer disabled — the identity mint, context plumb,
// finalize, and sampling gate. The service-level number (recorder vs.
// none around a whole solve) is BenchmarkFlightRecorderOverhead in
// internal/service.
func BenchmarkBeginEnd(b *testing.B) {
	r := NewRecorder(Config{Depth: 256, SampleEvery: 16})
	defer r.Close()
	ctx := context.Background()
	b.ReportAllocs()
	for b.Loop() {
		_, q := r.Begin(ctx, "")
		q.End()
	}
}

// BenchmarkBeginAnnotateEnd adds the annotation calls the service makes
// on the solve path.
func BenchmarkBeginAnnotateEnd(b *testing.B) {
	r := NewRecorder(Config{Depth: 256, SampleEvery: 16})
	defer r.Close()
	ctx := context.Background()
	b.ReportAllocs()
	for b.Loop() {
		c, q := r.Begin(ctx, "")
		q.SetBudget(time.Second)
		FromContext(c).SetSolve("pdw", 200, false, false, false, false, "", nil)
		q.SetOutcome(OutcomeOK)
		q.End()
	}
}

// BenchmarkNilRecorder is the disabled path: every call must be a
// cheap nil check.
func BenchmarkNilRecorder(b *testing.B) {
	var r *Recorder
	ctx := context.Background()
	b.ReportAllocs()
	for b.Loop() {
		c, q := r.Begin(ctx, "")
		FromContext(c).SetOutcome(OutcomeOK)
		q.End()
	}
}
