package reqlog

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
)

// TraceContext is the W3C Trace Context identity of one request: the
// 16-byte trace id shared by every hop of a distributed operation, the
// 8-byte span id of this hop, and the trace flags (bit 0: sampled).
// pdwd accepts it on the `traceparent` request header, substitutes its
// own span id, and echoes the result on the response, so a caller's
// tracing system can stitch the solve into its own trace.
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Flags   byte
}

// ParseTraceparent parses a version-00 W3C traceparent header value,
// "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>". All-zero
// trace or parent ids are invalid per the spec.
func ParseTraceparent(s string) (TraceContext, error) {
	var tc TraceContext
	if len(s) != 55 {
		return tc, fmt.Errorf("reqlog: traceparent length %d, want 55", len(s))
	}
	if s[0:2] != "00" {
		return tc, fmt.Errorf("reqlog: unsupported traceparent version %q", s[0:2])
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tc, fmt.Errorf("reqlog: malformed traceparent %q", s)
	}
	// Error paths return the zero context, never a partially decoded
	// one: hex.Decode fills the prefix before the offending digit, and
	// handing that partial identity back with an error invites misuse.
	if _, err := hex.Decode(tc.TraceID[:], []byte(s[3:35])); err != nil {
		return TraceContext{}, fmt.Errorf("reqlog: bad trace-id in %q: %w", s, err)
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(s[36:52])); err != nil {
		return TraceContext{}, fmt.Errorf("reqlog: bad parent-id in %q: %w", s, err)
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return TraceContext{}, fmt.Errorf("reqlog: bad flags in %q: %w", s, err)
	}
	tc.Flags = flags[0]
	if !tc.Valid() {
		return TraceContext{}, fmt.Errorf("reqlog: all-zero ids in traceparent %q", s)
	}
	return tc, nil
}

// Valid reports whether both ids are non-zero, as the spec requires.
func (t TraceContext) Valid() bool {
	return t.TraceID != [16]byte{} && t.SpanID != [8]byte{}
}

// String renders the context as a version-00 traceparent header value.
func (t TraceContext) String() string {
	return fmt.Sprintf("00-%s-%s-%02x",
		hex.EncodeToString(t.TraceID[:]), hex.EncodeToString(t.SpanID[:]), t.Flags)
}

// TraceIDString is the 32-hex-char trace id alone, the form log lines
// and records carry.
func (t TraceContext) TraceIDString() string {
	return hex.EncodeToString(t.TraceID[:])
}

// NewTraceContext returns a fresh random trace identity with the
// sampled flag set (pdwd records everything it keeps, so advertising
// sampled matches reality).
func NewTraceContext() TraceContext {
	var tc TraceContext
	mustRand(tc.TraceID[:])
	mustRand(tc.SpanID[:])
	tc.Flags = 0x01
	return tc
}

// Child keeps the trace id and flags but substitutes a fresh span id —
// the identity this server contributes to an incoming trace.
func (t TraceContext) Child() TraceContext {
	c := t
	mustRand(c.SpanID[:])
	return c
}

// newRequestID returns a 16-hex-char random request id. 64 random bits
// make collisions negligible at any realistic retention depth.
func newRequestID() string {
	var b [8]byte
	mustRand(b[:])
	return hex.EncodeToString(b[:])
}

// mustRand fills b from crypto/rand, retrying an all-zero fill (both
// id kinds treat zero as invalid). crypto/rand.Read does not fail on
// any supported platform; a hard failure panics rather than silently
// issuing colliding identities.
func mustRand(b []byte) {
	for {
		if _, err := rand.Read(b); err != nil {
			panic(fmt.Sprintf("reqlog: crypto/rand failed: %v", err))
		}
		for _, x := range b {
			if x != 0 {
				return
			}
		}
	}
}
