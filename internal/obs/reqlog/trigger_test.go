package reqlog

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeTrigger records trips and arms every other one.
type fakeTrigger struct {
	mu    sync.Mutex
	trips []string // "reason/requestID"
	deny  bool     // suppress all trips
	n     int
}

func (f *fakeTrigger) Trip(reason, requestID string) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.trips = append(f.trips, reason+"/"+requestID)
	if f.deny {
		return "", false
	}
	f.n++
	return fmt.Sprintf("prof-%04d", f.n), true
}

func (f *fakeTrigger) calls() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.trips...)
}

func TestTriggerTripsOnAnomalies(t *testing.T) {
	tr := &fakeTrigger{}
	r := NewRecorder(Config{Depth: 64, SampleEvery: 1, Trigger: tr})
	defer r.Close()

	mkRecord(r, "ok-1", OutcomeOK, time.Millisecond)
	mkRecord(r, "over-1", OutcomeOverrun, time.Millisecond)
	mkRecord(r, "shed-1", OutcomeDegraded, time.Millisecond)
	mkRecord(r, "err-1", OutcomeError, time.Millisecond) // kept, but not profile-worthy
	r.observe(Record{ID: "over-2", Outcome: OutcomeOK, Overrun: true, Wall: time.Millisecond})

	want := []string{"overrun/over-1", "shed/shed-1", "overrun/over-2"}
	got := tr.calls()
	if len(got) != len(want) {
		t.Fatalf("trips = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trip %d = %q, want %q", i, got[i], want[i])
		}
	}

	// Armed trips stamp the capture id on the record.
	rec, ok := r.Find("over-1")
	if !ok || rec.ProfileID != "prof-0001" {
		t.Fatalf("over-1 profile id %q (found %v)", rec.ProfileID, ok)
	}
	if rec, _ := r.Find("ok-1"); rec.ProfileID != "" {
		t.Fatalf("boring record has profile id %q", rec.ProfileID)
	}
	if rec, _ := r.Find("err-1"); rec.ProfileID != "" {
		t.Fatalf("error record has profile id %q", rec.ProfileID)
	}
}

func TestTriggerTripsOnTailLatency(t *testing.T) {
	tr := &fakeTrigger{}
	// SampleEvery huge: only latency retention keeps boring requests.
	r := NewRecorder(Config{Depth: 1024, SampleEvery: 1 << 30, Trigger: tr})
	defer r.Close()

	for i := 0; i < latMin; i++ {
		mkRecord(r, fmt.Sprintf("fast-%d", i), OutcomeOK, time.Millisecond)
	}
	mkRecord(r, "slow-1", OutcomeOK, 10*time.Second)

	rec, ok := r.Find("slow-1")
	if !ok || rec.Keep != "latency" {
		t.Fatalf("slow request keep=%q found=%v", rec.Keep, ok)
	}
	if rec.ProfileID == "" {
		t.Fatal("tail-latency record did not trip the trigger")
	}
	// Warm-up records at the fresh threshold may trip too; every trip
	// must be a latency one, and slow-1's must be among them.
	sawSlow := false
	for _, call := range tr.calls() {
		if call == "latency/slow-1" {
			sawSlow = true
		} else if !strings.HasPrefix(call, "latency/fast-") {
			t.Fatalf("unexpected trip %q", call)
		}
	}
	if !sawSlow {
		t.Fatalf("no trip for slow-1: %v", tr.calls())
	}
}

func TestTriggerSuppressedLeavesNoProfileID(t *testing.T) {
	tr := &fakeTrigger{deny: true}
	r := NewRecorder(Config{Depth: 8, SampleEvery: 1, Trigger: tr})
	defer r.Close()
	mkRecord(r, "over-1", OutcomeOverrun, time.Millisecond)
	if len(tr.calls()) != 1 {
		t.Fatalf("trips = %v", tr.calls())
	}
	if rec, _ := r.Find("over-1"); rec.ProfileID != "" {
		t.Fatalf("suppressed trip stamped profile id %q", rec.ProfileID)
	}
}

func TestOutcomeValid(t *testing.T) {
	for _, o := range []Outcome{OutcomeOK, OutcomeCached, OutcomeCoalesced, OutcomeDegraded,
		OutcomeCanceled, OutcomeOverrun, OutcomeRejected, OutcomeError} {
		if !o.Valid() {
			t.Errorf("Valid(%q) = false", o)
		}
	}
	for _, o := range []Outcome{"", "bogus", "OK", "Degraded", "ok "} {
		if o.Valid() {
			t.Errorf("Valid(%q) = true", o)
		}
	}
}

func TestRequestsEndpointRejectsBadQueries(t *testing.T) {
	r := NewRecorder(Config{Depth: 8, SampleEvery: 1})
	defer r.Close()
	mkRecord(r, "q-1", OutcomeOK, time.Millisecond)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	status := func(url string) int {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	for _, q := range []string{
		"?outcome=bogus",
		"?outcome=OK", // case-sensitive: the classes are lowercase
		"?outcome=degraded%20",
		"?limit=-1",
		"?limit=bogus",
		"?limit=1.5",
	} {
		if code := status(srv.URL + "/debug/requests" + q); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, code)
		}
	}
	for _, q := range []string{"", "?outcome=degraded", "?outcome=overrun&limit=5", "?limit=0"} {
		if code := status(srv.URL + "/debug/requests" + q); code != http.StatusOK {
			t.Errorf("%s: status %d, want 200", q, code)
		}
	}
}
