package reqlog

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger returns a leveled JSON slog logger writing to w — the
// structured logger behind pdwd's -log-level flag. JSON because the
// access log is meant for machines first (one object per line, stable
// keys); humans get the same fields pretty-printed by any log viewer.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// ParseLevel maps a -log-level flag value onto a slog level:
// debug | info | warn | error.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("reqlog: unknown log level %q (want debug|info|warn|error)", s)
	}
}
