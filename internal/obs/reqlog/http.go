package reqlog

import (
	"encoding/json"
	"net/http"
	"strconv"

	"pathdriverwash/internal/obs"
)

// requestsPattern and tracePattern are the mux patterns the recorder's
// debug surface mounts at (inside the shared obs debug handler, so
// they appear on every -listen endpoint of a binary that installed a
// recorder).
const (
	requestsPattern = "GET /debug/requests"
	tracePattern    = "GET /debug/requests/{id}/trace"
)

// InstallDebug registers the recorder's endpoints on the shared obs
// debug surface (obs.Handler / obs.WithDebug / -listen). It returns a
// function that unregisters them; call it before installing another
// recorder (tests).
func (r *Recorder) InstallDebug() (remove func()) {
	r1 := obs.RegisterDebug(requestsPattern, http.HandlerFunc(r.handleRequests))
	r2 := obs.RegisterDebug(tracePattern, http.HandlerFunc(r.handleTrace))
	return func() { r1(); r2() }
}

// Handler returns the recorder's debug surface on its own mux:
//
//	GET /debug/requests            recent ring, newest first
//	    ?outcome=degraded          filter by outcome class
//	    ?limit=50                  cap the listing
//	GET /debug/requests/{id}/trace Chrome trace-event export of one
//	                               request (loadable in Perfetto)
//
// Listings omit the span trees (span_count tells what the trace
// endpoint will export).
func (r *Recorder) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(requestsPattern, r.handleRequests)
	mux.HandleFunc(tracePattern, r.handleTrace)
	return mux
}

func (r *Recorder) handleRequests(w http.ResponseWriter, req *http.Request) {
	outcome := Outcome(req.URL.Query().Get("outcome"))
	if outcome != "" && !outcome.Valid() {
		// A typo'd filter matching nothing is indistinguishable from "no
		// such requests"; fail loudly instead.
		http.Error(w, "reqlog: unknown outcome "+strconv.Quote(string(outcome)), http.StatusBadRequest)
		return
	}
	limit := 0
	if s := req.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, "reqlog: bad limit "+strconv.Quote(s), http.StatusBadRequest)
			return
		}
		limit = n
	}

	recs := r.Records()
	out := make([]Record, 0, len(recs))
	for _, rec := range recs {
		if outcome != "" && rec.Outcome != outcome {
			continue
		}
		rec.Spans = nil // listings stay light; the trace endpoint exports spans
		out = append(out, rec)
		if limit > 0 && len(out) == limit {
			break
		}
	}

	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{
		"depth":    r.Cap(),
		"kept":     r.Len(),
		"total":    r.Total(),
		"requests": out,
	})
}

func (r *Recorder) handleTrace(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	rec, ok := r.Find(id)
	if !ok {
		http.Error(w, "reqlog: no retained record for request "+strconv.Quote(id), http.StatusNotFound)
		return
	}
	spans := rec.Spans
	if len(spans) == 0 {
		// Obs was disabled (or the cap was 0) while this request ran;
		// synthesize the one span the record itself proves, so the
		// export still loads as a valid trace.
		spans = []obs.SpanData{{
			Name: "request", ID: 1, Root: 1,
			Start: rec.Start, Duration: rec.Wall,
			Attrs: []obs.Attr{
				{Key: "request_id", Value: rec.ID},
				{Key: "outcome", Value: string(rec.Outcome)},
			},
		}}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteChromeTrace(w, spans)
}
