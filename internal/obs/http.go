package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
)

var expvarOnce sync.Once

// publishExpvar exposes the default registry's snapshot under the
// "pdw_metrics" expvar, once per process.
func publishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("pdw_metrics", expvar.Func(func() any {
			return Default().Snapshot()
		}))
	})
}

// debugExt holds extension handlers mounted into Handler's mux beside
// the built-in endpoints. Packages that sit above obs (the request
// flight recorder in internal/obs/reqlog) register here so every
// binary's -listen surface picks them up without obs importing them.
var debugExt struct {
	mu       sync.Mutex
	handlers map[string]http.Handler // mux pattern -> handler
}

// RegisterDebug mounts h at the given net/http mux pattern (e.g.
// "GET /debug/requests") on every Handler built afterwards, returning
// a function that unregisters it. Handlers already composed (an
// earlier Handler/WithDebug call) are snapshots and do not see later
// registrations. Registering a duplicate pattern replaces the earlier
// handler.
func RegisterDebug(pattern string, h http.Handler) (remove func()) {
	debugExt.mu.Lock()
	if debugExt.handlers == nil {
		debugExt.handlers = map[string]http.Handler{}
	}
	debugExt.handlers[pattern] = h
	debugExt.mu.Unlock()
	return func() {
		debugExt.mu.Lock()
		delete(debugExt.handlers, pattern)
		debugExt.mu.Unlock()
	}
}

var buildInfoOnce sync.Once

// publishBuildInfo exports the pdwd_build_info gauge (constant 1 with
// version/revision labels from debug.ReadBuildInfo) into the default
// registry, once per process, so Prometheus scrapes can correlate perf
// changes with deploys. Values the build info does not carry (a
// non-module build, no VCS stamping) degrade to "unknown" so the
// series always exists.
func publishBuildInfo(r *Registry) {
	buildInfoOnce.Do(func() {
		version, revision := "unknown", "unknown"
		if bi, ok := debug.ReadBuildInfo(); ok {
			if bi.Main.Version != "" {
				version = bi.Main.Version
			}
			for _, kv := range bi.Settings {
				if kv.Key == "vcs.revision" && kv.Value != "" {
					revision = kv.Value
				}
			}
		}
		r.Gauge("pdwd_build_info", "version", version, "revision", revision).Set(1)
	})
}

// collectRuntime refreshes the Go runtime gauges (goroutines, heap,
// GC) in r. The /metrics handler calls it per scrape so the Prometheus
// page always carries a current picture of the process itself, not
// just the solver counters.
func collectRuntime(r *Registry) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("go_goroutines").Set(int64(runtime.NumGoroutine()))
	r.Gauge("go_heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	r.Gauge("go_heap_sys_bytes").Set(int64(ms.HeapSys))
	r.Gauge("go_heap_objects").Set(int64(ms.HeapObjects))
	r.Gauge("go_next_gc_bytes").Set(int64(ms.NextGC))
	r.Gauge("go_gc_cycles_total").Set(int64(ms.NumGC))
	r.Gauge("go_gc_pause_ns_total").Set(int64(ms.PauseTotalNs))
}

// Handler returns the debug HTTP handler: Prometheus text at /metrics
// (solver and service metrics plus Go runtime gauges), expvar JSON at
// /debug/vars, the full net/http/pprof suite at /debug/pprof/, and any
// extension endpoints added with RegisterDebug. A bare "/" serves a
// plain index of the mounted endpoints.
func Handler() http.Handler {
	publishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		publishBuildInfo(Default())
		collectRuntime(Default())
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		Default().WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/solves", handleSolves)
	mux.HandleFunc("GET /debug/solves/{id}", handleSolve)
	mux.HandleFunc("GET /debug/solves/{id}/watch", handleSolveWatch)
	debugExt.mu.Lock()
	patterns := make([]string, 0, len(debugExt.handlers))
	for pattern, h := range debugExt.handlers {
		mux.Handle(pattern, h)
		patterns = append(patterns, pattern)
	}
	debugExt.mu.Unlock()
	sort.Strings(patterns)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "pdw debug endpoint")
		fmt.Fprintln(w, "  /metrics      Prometheus text format (+ Go runtime gauges)")
		fmt.Fprintln(w, "  /debug/vars   expvar JSON")
		fmt.Fprintln(w, "  /debug/pprof  pprof profiles")
		fmt.Fprintln(w, "  /debug/solves in-flight solves (live progress; append /{id} or /{id}/watch for SSE)")
		for _, p := range patterns {
			fmt.Fprintf(w, "  %s\n", p)
		}
	})
	return mux
}

// Serve enables the observability layer and serves Handler on addr
// (e.g. "localhost:6060" or ":0") in a background goroutine. It
// returns the bound address, usable when addr requested port 0.
func Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	Enable()
	srv := &http.Server{Handler: Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// ServeDebug is the shared wiring behind every cmd's -listen flag: an
// empty addr is a no-op, otherwise it starts Serve and prints the
// standard banner for the tool on stderr. cmd/pdw, cmd/pdwbench, and
// cmd/pdwd all route their flag through here so the debug surface stays
// identical across binaries.
func ServeDebug(tool, addr string) (string, error) {
	if addr == "" {
		return "", nil
	}
	bound, err := Serve(addr)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(os.Stderr, "%s: debug server on http://%s (metrics, expvar, pprof)\n", tool, bound)
	return bound, nil
}

// WithDebug composes an application handler with the debug surface:
// /metrics, /debug/..., and the bare "/" index are served by Handler,
// everything else by app. cmd/pdwd uses it to expose the solve API and
// the observability endpoints on one listener.
func WithDebug(app http.Handler) http.Handler {
	debug := Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/" || r.URL.Path == "/metrics" || strings.HasPrefix(r.URL.Path, "/debug/"):
			debug.ServeHTTP(w, r)
		default:
			app.ServeHTTP(w, r)
		}
	})
}
