package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"sync"
)

var expvarOnce sync.Once

// publishExpvar exposes the default registry's snapshot under the
// "pdw_metrics" expvar, once per process.
func publishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("pdw_metrics", expvar.Func(func() any {
			return Default().Snapshot()
		}))
	})
}

// Handler returns the debug HTTP handler: Prometheus text at
// /metrics, expvar JSON at /debug/vars, and the full net/http/pprof
// suite at /debug/pprof/. A bare "/" serves a plain index of the
// mounted endpoints.
func Handler() http.Handler {
	publishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		Default().WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "pdw debug endpoint")
		fmt.Fprintln(w, "  /metrics      Prometheus text format")
		fmt.Fprintln(w, "  /debug/vars   expvar JSON")
		fmt.Fprintln(w, "  /debug/pprof  pprof profiles")
	})
	return mux
}

// Serve enables the observability layer and serves Handler on addr
// (e.g. "localhost:6060" or ":0") in a background goroutine. It
// returns the bound address, usable when addr requested port 0.
func Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	Enable()
	srv := &http.Server{Handler: Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// ServeDebug is the shared wiring behind every cmd's -listen flag: an
// empty addr is a no-op, otherwise it starts Serve and prints the
// standard banner for the tool on stderr. cmd/pdw, cmd/pdwbench, and
// cmd/pdwd all route their flag through here so the debug surface stays
// identical across binaries.
func ServeDebug(tool, addr string) (string, error) {
	if addr == "" {
		return "", nil
	}
	bound, err := Serve(addr)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(os.Stderr, "%s: debug server on http://%s (metrics, expvar, pprof)\n", tool, bound)
	return bound, nil
}

// WithDebug composes an application handler with the debug surface:
// /metrics, /debug/..., and the bare "/" index are served by Handler,
// everything else by app. cmd/pdwd uses it to expose the solve API and
// the observability endpoints on one listener.
func WithDebug(app http.Handler) http.Handler {
	debug := Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/" || r.URL.Path == "/metrics" || strings.HasPrefix(r.URL.Path, "/debug/"):
			debug.ServeHTTP(w, r)
		default:
			app.ServeHTTP(w, r)
		}
	})
}
