package obs

import (
	"context"
	"testing"
)

// The disabled path is the cost every solver hot loop pays by default;
// DESIGN.md's cost contract requires it to stay negligible (< 2%
// overhead in the simplex pivot loop, measured end to end by the lp
// package's BenchmarkSimplexObsOverhead). These benchmarks pin the
// primitive costs.

func BenchmarkDisabledStartEnd(b *testing.B) {
	Disable()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := Start(ctx, "hot")
		s.End()
	}
}

func BenchmarkDisabledEnabledCheck(b *testing.B) {
	Disable()
	n := 0
	for i := 0; i < b.N; i++ {
		if Enabled() {
			n++
		}
	}
	_ = n
}

func BenchmarkEnabledStartEnd(b *testing.B) {
	Enable()
	defer Disable()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := Start(ctx, "hot")
		s.End()
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("pdw_bench_total")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("pdw_bench_seconds", nil)
	for i := 0; i < b.N; i++ {
		h.Observe(0.005)
	}
}
