package prof

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// waitDone polls until the capture with the given id completes.
func waitDone(t *testing.T, e *Engine, id string) Capture {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c, ok := e.Get(id); ok && c.Done {
			return *c
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("capture %s never completed", id)
	return Capture{}
}

// checkGzippedProfile asserts b is a non-empty gzipped pprof payload:
// the gzip magic, and a non-empty decompressed protobuf body.
func checkGzippedProfile(t *testing.T, kind string, b []byte) {
	t.Helper()
	if len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		t.Fatalf("%s profile is not gzipped (%d bytes)", kind, len(b))
	}
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("%s profile gzip: %v", kind, err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("%s profile decompress: %v", kind, err)
	}
	if len(raw) == 0 {
		t.Fatalf("%s profile decompressed to nothing", kind)
	}
}

func TestTripCapturesProfileBundle(t *testing.T) {
	e := New(Config{CPUDuration: 50 * time.Millisecond, Cooldown: -1})
	id, ok := e.Trip("overrun", "req-abc")
	if !ok || id == "" {
		t.Fatalf("Trip = %q, %v", id, ok)
	}

	// The pending bundle is immediately resolvable.
	c, found := e.Get(id)
	if !found {
		t.Fatal("pending capture not in ring")
	}
	if c.Reason != "overrun" || c.RequestID != "req-abc" || c.Duration != 50*time.Millisecond {
		t.Fatalf("capture metadata: %+v", c)
	}

	done := waitDone(t, e, id)
	if done.Err != "" {
		t.Fatalf("capture error: %s", done.Err)
	}
	checkGzippedProfile(t, "cpu", done.CPU)
	checkGzippedProfile(t, "goroutine", done.Goroutine)
	checkGzippedProfile(t, "heap", done.Heap)
}

func TestTripSuppression(t *testing.T) {
	e := New(Config{CPUDuration: 80 * time.Millisecond, Cooldown: time.Hour})
	id, ok := e.Trip("latency", "r1")
	if !ok {
		t.Fatal("first trip suppressed")
	}
	// Armed: a concurrent trip is suppressed.
	if _, ok := e.Trip("latency", "r2"); ok {
		t.Fatal("trip while armed not suppressed")
	}
	waitDone(t, e, id)
	// Cooldown: still suppressed after completion.
	if _, ok := e.Trip("shed", "r3"); ok {
		t.Fatal("trip within cooldown not suppressed")
	}
}

func TestTripCooldownExpires(t *testing.T) {
	e := New(Config{CPUDuration: 20 * time.Millisecond, Cooldown: 30 * time.Millisecond})
	id, ok := e.Trip("overrun", "r1")
	if !ok {
		t.Fatal("first trip suppressed")
	}
	waitDone(t, e, id)
	time.Sleep(40 * time.Millisecond)
	id2, ok := e.Trip("overrun", "r2")
	if !ok {
		t.Fatal("trip after cooldown suppressed")
	}
	if id2 == id {
		t.Fatalf("capture ids collide: %s", id2)
	}
	waitDone(t, e, id2)
}

func TestRingEviction(t *testing.T) {
	e := New(Config{CPUDuration: time.Millisecond, Cooldown: -1, Depth: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		id, ok := e.Trip("overrun", "")
		if !ok {
			t.Fatalf("trip %d suppressed", i)
		}
		waitDone(t, e, id)
		ids = append(ids, id)
	}
	if _, ok := e.Get(ids[0]); ok {
		t.Fatal("oldest capture not evicted from depth-2 ring")
	}
	caps := e.Captures()
	if len(caps) != 2 {
		t.Fatalf("ring holds %d captures, want 2", len(caps))
	}
	// Newest first.
	if caps[0].ID != ids[2] || caps[1].ID != ids[1] {
		t.Fatalf("ring order: %s, %s", caps[0].ID, caps[1].ID)
	}
}

func TestNilEngine(t *testing.T) {
	var e *Engine
	if id, ok := e.Trip("overrun", "r"); ok || id != "" {
		t.Fatal("nil engine armed a capture")
	}
	if _, ok := e.Get("x"); ok {
		t.Fatal("nil engine returned a capture")
	}
	if e.Captures() != nil {
		t.Fatal("nil engine returned captures")
	}
}

func TestProfileHTTP(t *testing.T) {
	e := New(Config{CPUDuration: 30 * time.Millisecond, Cooldown: -1})
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	get := func(path string) (int, http.Header, []byte) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header, b
	}

	// Empty ring: a valid, empty listing.
	code, _, body := get("/debug/profiles")
	if code != http.StatusOK || !strings.Contains(string(body), `"count": 0`) {
		t.Fatalf("empty listing: status %d body %s", code, body)
	}

	if code, _, _ := get("/debug/profiles/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown id status %d", code)
	}

	id, _ := e.Trip("overrun", "req-1")
	waitDone(t, e, id)

	if code, _, _ := get("/debug/profiles/" + id + "?kind=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad kind status %d", code)
	}

	code, hdr, body := get("/debug/profiles/" + id) // default kind=cpu
	if code != http.StatusOK {
		t.Fatalf("profile fetch status %d: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type %q", ct)
	}
	checkGzippedProfile(t, "cpu", body)
	for _, kind := range []string{"goroutine", "heap"} {
		code, _, b := get("/debug/profiles/" + id + "?kind=" + kind)
		if code != http.StatusOK {
			t.Fatalf("%s fetch status %d", kind, code)
		}
		checkGzippedProfile(t, kind, b)
	}

	// The listing carries metadata and byte sizes, not profile bytes.
	code, _, body = get("/debug/profiles")
	if code != http.StatusOK {
		t.Fatalf("listing status %d", code)
	}
	s := string(body)
	for _, want := range []string{`"count": 1`, `"` + id + `"`, `"overrun"`, `"req-1"`, `"cpu_bytes"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("listing missing %s:\n%s", want, s)
		}
	}
}

func TestProfileHTTPPending(t *testing.T) {
	e := New(Config{CPUDuration: 2 * time.Second, Cooldown: -1})
	id, ok := e.Trip("latency", "r")
	if !ok {
		t.Fatal("trip suppressed")
	}
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/profiles/" + id)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pending capture status %d, want 202", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("pending capture missing Retry-After")
	}
}
