// Package prof is the anomaly-triggered profiling engine behind pdwd:
// when the flight recorder (internal/obs/reqlog) observes an anomalous
// request — budget overrun, a shed solve, or a p95-reservoir tail
// latency, the same conditions its keep logic always retains — the
// engine arms one runtime/pprof CPU capture plus goroutine and heap
// dumps, stores the gzipped profiles in a bounded in-memory ring, and
// links the capture id back into the request's record, so the p95
// outlier on /debug/requests carries its own flame evidence.
//
// Rate limiting keeps the engine safe to leave armed in production: at
// most one capture runs at a time (runtime/pprof allows only one CPU
// profile anyway) and a cooldown separates captures, so an anomaly
// storm costs one profile per cooldown window, not one per request.
package prof

import (
	"bytes"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"

	"pathdriverwash/internal/obs"
)

// Capture is one triggered profile bundle. CPU, Goroutine, and Heap
// hold gzipped pprof protobuf bytes (the formats runtime/pprof writes;
// `go tool pprof` loads them directly). The bundle is Pending until
// the CPU window closes; the dumps are taken at the window's end so
// they see the process state the anomaly left behind.
type Capture struct {
	ID string `json:"id"`
	// Reason is the trigger condition: "overrun", "shed", or "latency".
	Reason string `json:"reason"`
	// RequestID links back to the flight-recorder record whose
	// completion tripped the trigger (its record carries the matching
	// profile_id).
	RequestID string    `json:"request_id,omitempty"`
	Start     time.Time `json:"start"`
	// Duration is the CPU capture window.
	Duration time.Duration `json:"duration_ns"`
	// Done flips when the capture completed and the byte fields below
	// are final.
	Done bool `json:"done"`
	// Err records a CPU capture failure (most likely: another CPU
	// profile — a /debug/pprof/profile scrape — was already running).
	// The goroutine and heap dumps are still taken.
	Err string `json:"error,omitempty"`

	CPU       []byte `json:"-"`
	Goroutine []byte `json:"-"`
	Heap      []byte `json:"-"`
}

// Config tunes an Engine. The zero value captures 1 s CPU windows, no
// more than one per 30 s, keeping the 16 most recent bundles.
type Config struct {
	// CPUDuration is the CPU profile window per capture (0: 1 s).
	CPUDuration time.Duration
	// Cooldown is the minimum gap between the end of one capture and
	// the start of the next (0: 30 s; negative: none).
	Cooldown time.Duration
	// Depth bounds the capture ring (0: 16).
	Depth int
}

func (c Config) withDefaults() Config {
	if c.CPUDuration <= 0 {
		c.CPUDuration = time.Second
	}
	if c.Cooldown == 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.Depth <= 0 {
		c.Depth = 16
	}
	return c
}

// Engine owns the capture ring and the arming state. All methods are
// safe for concurrent use; a nil *Engine is valid everywhere and
// triggers nothing, so wiring can be left unconditional.
type Engine struct {
	cfg Config

	mu       sync.Mutex
	ring     []*Capture // circular, cap cfg.Depth
	next     int
	seq      int
	armed    bool
	lastDone time.Time

	capturesTotal   func(reason string) // metric hooks, resolved at New
	suppressedTotal *obs.Counter
}

// New builds an Engine from cfg.
func New(cfg Config) *Engine {
	return &Engine{
		cfg: cfg.withDefaults(),
		capturesTotal: func(reason string) {
			obs.Default().Counter("pdwd_profile_captures_total", "reason", reason).Inc()
		},
		suppressedTotal: obs.Default().Counter("pdwd_profile_suppressed_total"),
	}
}

// Trip implements the reqlog.ProfileTrigger contract: asked to capture
// evidence for an anomalous request, it either arms a capture and
// returns its id, or reports the trigger suppressed (a capture is
// already running, or the cooldown since the last one has not passed).
// The capture itself runs in a background goroutine; the returned id
// is immediately resolvable on /debug/profiles as a pending bundle.
func (e *Engine) Trip(reason, requestID string) (id string, ok bool) {
	if e == nil {
		return "", false
	}
	e.mu.Lock()
	if e.armed || (!e.lastDone.IsZero() && e.cfg.Cooldown > 0 && time.Since(e.lastDone) < e.cfg.Cooldown) {
		e.mu.Unlock()
		if obs.Enabled() {
			e.suppressedTotal.Inc()
		}
		return "", false
	}
	e.seq++
	c := &Capture{
		ID:     fmt.Sprintf("prof-%04d", e.seq),
		Reason: reason, RequestID: requestID,
		Start: time.Now(), Duration: e.cfg.CPUDuration,
	}
	e.insertLocked(c)
	e.armed = true
	e.mu.Unlock()
	if obs.Enabled() {
		e.capturesTotal(reason)
	}
	go e.capture(c)
	return c.ID, true
}

// insertLocked pushes c into the bounded ring; the oldest bundle is
// evicted once the ring is full. Caller holds e.mu.
func (e *Engine) insertLocked(c *Capture) {
	if len(e.ring) < e.cfg.Depth {
		e.ring = append(e.ring, c)
		e.next = len(e.ring) % e.cfg.Depth
		return
	}
	e.ring[e.next] = c
	e.next = (e.next + 1) % e.cfg.Depth
}

// capture runs one armed capture to completion: the CPU window, then
// the goroutine and heap dumps, then the ring update that disarms the
// engine and starts the cooldown.
func (e *Engine) capture(c *Capture) {
	var cpu bytes.Buffer
	cpuErr := pprof.StartCPUProfile(&cpu)
	if cpuErr == nil {
		time.Sleep(e.cfg.CPUDuration)
		pprof.StopCPUProfile()
	}
	var goroutines, heap bytes.Buffer
	if p := pprof.Lookup("goroutine"); p != nil {
		_ = p.WriteTo(&goroutines, 0) // debug=0: gzipped protobuf
	}
	if p := pprof.Lookup("heap"); p != nil {
		_ = p.WriteTo(&heap, 0)
	}

	e.mu.Lock()
	if cpuErr != nil {
		c.Err = cpuErr.Error()
	} else {
		c.CPU = cpu.Bytes()
	}
	c.Goroutine = goroutines.Bytes()
	c.Heap = heap.Bytes()
	c.Done = true
	e.armed = false
	e.lastDone = time.Now()
	e.mu.Unlock()
}

// Get returns the capture with the given id. The byte slices are
// shared, never mutated after Done, and nil while the bundle is
// pending.
func (e *Engine) Get(id string) (*Capture, bool) {
	if e == nil {
		return nil, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, c := range e.ring {
		if c.ID == id {
			cp := *c
			return &cp, true
		}
	}
	return nil, false
}

// Captures returns a metadata snapshot of the ring, newest first.
func (e *Engine) Captures() []Capture {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Capture, 0, len(e.ring))
	for i := 0; i < len(e.ring); i++ {
		out = append(out, *e.ring[(e.next-1-i+len(e.ring))%len(e.ring)])
	}
	return out
}
