package prof

import (
	"encoding/json"
	"net/http"
	"strconv"

	"pathdriverwash/internal/obs"
)

// Mux patterns of the profile ring's debug surface.
const (
	profilesPattern = "GET /debug/profiles"
	profilePattern  = "GET /debug/profiles/{id}"
)

// InstallDebug registers the profile endpoints on the shared obs debug
// surface (obs.Handler / obs.WithDebug / -listen), returning the
// function that unregisters them.
func (e *Engine) InstallDebug() (remove func()) {
	r1 := obs.RegisterDebug(profilesPattern, http.HandlerFunc(e.handleProfiles))
	r2 := obs.RegisterDebug(profilePattern, http.HandlerFunc(e.handleProfile))
	return func() { r1(); r2() }
}

// Handler returns the engine's debug surface on its own mux:
//
//	GET /debug/profiles           capture ring metadata, newest first
//	GET /debug/profiles/{id}      pprof bytes (?kind=cpu|goroutine|heap,
//	                              default cpu) — `go tool pprof` loads
//	                              the response directly
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(profilesPattern, e.handleProfiles)
	mux.HandleFunc(profilePattern, e.handleProfile)
	return mux
}

// profileView is the listing shape: the metadata plus byte sizes
// instead of the profiles themselves.
type profileView struct {
	Capture
	CPUBytes       int `json:"cpu_bytes"`
	GoroutineBytes int `json:"goroutine_bytes"`
	HeapBytes      int `json:"heap_bytes"`
}

func (e *Engine) handleProfiles(w http.ResponseWriter, r *http.Request) {
	caps := e.Captures()
	views := make([]profileView, 0, len(caps))
	for _, c := range caps {
		views = append(views, profileView{
			Capture:  c,
			CPUBytes: len(c.CPU), GoroutineBytes: len(c.Goroutine), HeapBytes: len(c.Heap),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{"count": len(views), "profiles": views})
}

func (e *Engine) handleProfile(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c, ok := e.Get(id)
	if !ok {
		http.Error(w, "prof: no capture "+strconv.Quote(id), http.StatusNotFound)
		return
	}
	kind := r.URL.Query().Get("kind")
	if kind == "" {
		kind = "cpu"
	}
	var b []byte
	switch kind {
	case "cpu":
		b = c.CPU
	case "goroutine":
		b = c.Goroutine
	case "heap":
		b = c.Heap
	default:
		http.Error(w, "prof: bad kind "+strconv.Quote(kind)+" (want cpu, goroutine, or heap)", http.StatusBadRequest)
		return
	}
	if !c.Done {
		// The trigger armed but the CPU window is still open; the id is
		// valid, the bytes just are not final yet.
		w.Header().Set("Retry-After", "1")
		http.Error(w, "prof: capture "+strconv.Quote(id)+" still in progress", http.StatusAccepted)
		return
	}
	if len(b) == 0 {
		msg := "prof: capture " + strconv.Quote(id) + " has no " + kind + " profile"
		if c.Err != "" {
			msg += ": " + c.Err
		}
		http.Error(w, msg, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="`+id+"-"+kind+`.pb.gz"`)
	_, _ = w.Write(b)
}
