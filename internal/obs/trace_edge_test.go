package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// decodeTrace asserts the writer produced a JSON array (never null or
// an object) and returns the events.
func decodeTrace(t *testing.T, spans []SpanData) []map[string]any {
	t.Helper()
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, spans); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(sb.String())
	if !strings.HasPrefix(out, "[") {
		t.Fatalf("trace is not a JSON array: %q", out)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(out), &events); err != nil {
		t.Fatalf("trace does not parse: %v\n%s", err, out)
	}
	return events
}

func TestChromeTraceEmptySpanSet(t *testing.T) {
	events := decodeTrace(t, nil)
	if len(events) != 0 {
		t.Fatalf("empty span set produced %d events", len(events))
	}
	// Explicitly: "[]", not "null" — Perfetto rejects null.
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, []SpanData{}); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(sb.String()); got != "[]" {
		t.Fatalf("empty trace = %q, want []", got)
	}
}

func TestChromeTraceZeroDurationSpans(t *testing.T) {
	now := time.Now()
	spans := []SpanData{
		{Name: "root", ID: 1, Root: 1, Start: now, Duration: 0},
		{Name: "instant-child", ID: 2, Root: 1, Parent: 1, Start: now, Duration: 0},
	}
	events := decodeTrace(t, spans)
	// thread_name metadata + 2 complete events.
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	for _, e := range events {
		if e["ph"] != "X" {
			continue
		}
		// dur omitted (omitempty) or 0 — but ts must be present and finite.
		if d, ok := e["dur"]; ok && d.(float64) != 0 {
			t.Fatalf("zero-duration span has dur %v", d)
		}
		if ts, ok := e["ts"].(float64); !ok || ts != 0 {
			t.Fatalf("zero-duration span ts = %v, want 0", e["ts"])
		}
	}
}

func TestChromeTraceDeeplyNestedTree(t *testing.T) {
	// A 64-deep chain under one root: every span lands on the root's
	// thread row and the timeline stays monotone.
	const depth = 64
	t0 := time.Now()
	spans := make([]SpanData, 0, depth)
	for i := 0; i < depth; i++ {
		parent := uint64(i) // 0 for the root
		spans = append(spans, SpanData{
			Name: "level", ID: uint64(i + 1), Root: 1, Parent: parent,
			Start:    t0.Add(time.Duration(i) * time.Millisecond),
			Duration: time.Duration(depth-i) * time.Millisecond,
		})
	}
	events := decodeTrace(t, spans)
	if len(events) != depth+1 { // one thread_name + depth complete events
		t.Fatalf("got %d events, want %d", len(events), depth+1)
	}
	threadNames := 0
	for _, e := range events {
		if e["ph"] == "M" {
			threadNames++
			continue
		}
		if tid := e["tid"].(float64); tid != 1 {
			t.Fatalf("span on tid %v, want root row 1", tid)
		}
	}
	if threadNames != 1 {
		t.Fatalf("%d thread_name rows, want 1", threadNames)
	}
}

func TestChromeTraceMultipleRoots(t *testing.T) {
	t0 := time.Now()
	spans := []SpanData{
		{Name: "bench-A", ID: 1, Root: 1, Start: t0, Duration: time.Millisecond},
		{Name: "bench-B", ID: 2, Root: 2, Start: t0.Add(time.Microsecond), Duration: time.Millisecond},
	}
	events := decodeTrace(t, spans)
	rows := map[float64]bool{}
	threadNames := 0
	for _, e := range events {
		if e["ph"] == "M" {
			threadNames++
		}
		rows[e["tid"].(float64)] = true
	}
	if threadNames != 2 || len(rows) != 2 {
		t.Fatalf("want 2 named rows, got %d names over %d rows", threadNames, len(rows))
	}
}
