package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// TraceBuffer is a Sink that accumulates finished spans in memory for
// a post-run Chrome trace-event dump. Safe for concurrent use.
type TraceBuffer struct {
	mu    sync.Mutex
	spans []SpanData
}

// NewTraceBuffer returns an empty buffer.
func NewTraceBuffer() *TraceBuffer { return &TraceBuffer{} }

// OnSpanEnd implements Sink.
func (t *TraceBuffer) OnSpanEnd(d SpanData) {
	t.mu.Lock()
	t.spans = append(t.spans, d)
	t.mu.Unlock()
}

// Spans returns a snapshot of the collected spans.
func (t *TraceBuffer) Spans() []SpanData {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanData(nil), t.spans...)
}

// Len returns the number of collected spans.
func (t *TraceBuffer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// chromeEvent is one entry of the Chrome trace-event format (the
// JSON-array flavor, which Perfetto and chrome://tracing both load).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the buffer as a Chrome trace-event JSON
// array. Every span becomes a complete ("X") event; span events become
// instant ("i") events; each span-tree root gets its own thread row
// named after the root span, so parallel benchmark runs display as
// parallel tracks.
func (t *TraceBuffer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Spans())
}

// WriteChromeTrace renders an arbitrary span set as a Chrome
// trace-event JSON array (always an array, even when spans is empty, so
// the output loads in Perfetto unconditionally). The per-request trace
// export in internal/obs/reqlog uses it on a single request's spans.
func WriteChromeTrace(w io.Writer, spans []SpanData) error {
	var t0 time.Time
	for _, s := range spans {
		if t0.IsZero() || s.Start.Before(t0) {
			t0 = s.Start
		}
	}
	us := func(ts time.Time) float64 { return float64(ts.Sub(t0)) / float64(time.Microsecond) }

	var events []chromeEvent
	named := map[uint64]bool{}
	for _, s := range spans {
		if s.ID == s.Root && !named[s.Root] {
			named[s.Root] = true
			events = append(events, chromeEvent{
				Name: "thread_name", Phase: "M", PID: 1, TID: s.Root,
				Args: map[string]any{"name": s.Name},
			})
		}
		args := attrArgs(s.Attrs)
		events = append(events, chromeEvent{
			Name: s.Name, Phase: "X",
			TS:  us(s.Start),
			Dur: float64(s.Duration) / float64(time.Microsecond),
			PID: 1, TID: s.Root, Args: args,
		})
		for _, e := range s.Events {
			events = append(events, chromeEvent{
				Name: e.Name, Phase: "i", TS: us(e.Time),
				PID: 1, TID: s.Root, Scope: "t", Args: attrArgs(e.Attrs),
			})
		}
	}
	if events == nil {
		events = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

func attrArgs(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	args := make(map[string]any, len(attrs))
	for _, a := range attrs {
		args[a.Key] = a.Value
	}
	return args
}

// JSONLWriter is a Sink that streams every finished span as one JSON
// line. Writes are serialized; errors after the first are dropped so
// a broken pipe cannot wedge the solve.
type JSONLWriter struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter { return &JSONLWriter{w: w} }

// OnSpanEnd implements Sink.
func (j *JSONLWriter) OnSpanEnd(d SpanData) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	b, err := json.Marshal(d)
	if err != nil {
		j.err = err
		return
	}
	if _, err := fmt.Fprintf(j.w, "%s\n", b); err != nil {
		j.err = err
	}
}

// Err returns the first write error, if any.
func (j *JSONLWriter) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
