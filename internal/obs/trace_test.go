package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestChromeTraceFormat(t *testing.T) {
	withEnabled(t, func() {
		buf := NewTraceBuffer()
		remove := AddSink(buf)
		defer remove()

		ctx, root := Start(context.Background(), "benchmark", A("name", "PCR"))
		_, child := Start(ctx, "pdw")
		child.Event("round", A("n", 1))
		time.Sleep(time.Millisecond)
		child.End()
		root.End()

		var sb strings.Builder
		if err := buf.WriteChromeTrace(&sb); err != nil {
			t.Fatal(err)
		}
		var events []map[string]any
		if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
			t.Fatalf("trace is not a JSON array: %v", err)
		}
		var phases []string
		names := map[string]bool{}
		for _, e := range events {
			phases = append(phases, e["ph"].(string))
			names[e["name"].(string)] = true
		}
		// thread_name metadata + 2 complete spans + 1 instant event.
		if len(events) != 4 {
			t.Fatalf("got %d events, want 4: %v", len(events), phases)
		}
		for _, want := range []string{"thread_name", "benchmark", "pdw", "round"} {
			if !names[want] {
				t.Errorf("missing event %q", want)
			}
		}
		for _, e := range events {
			if e["ph"] == "X" {
				if e["dur"] == nil {
					t.Errorf("complete event %v has no dur", e["name"])
				}
				if ts := e["ts"].(float64); ts < 0 {
					t.Errorf("negative ts %v", ts)
				}
			}
		}
	})
}

func TestJSONLWriter(t *testing.T) {
	withEnabled(t, func() {
		var sb strings.Builder
		jw := NewJSONLWriter(&sb)
		remove := AddSink(jw)
		defer remove()

		_, s := Start(context.Background(), "phase", A("k", "v"))
		s.End()
		if err := jw.Err(); err != nil {
			t.Fatal(err)
		}
		line := strings.TrimSpace(sb.String())
		var d SpanData
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("line is not JSON: %v\n%s", err, line)
		}
		if d.Name != "phase" || len(d.Attrs) != 1 || d.Attrs[0].Key != "k" {
			t.Fatalf("decoded span wrong: %+v", d)
		}
	})
}

func TestHandlerEndpoints(t *testing.T) {
	Default().Counter("pdw_handler_test_total").Add(9)
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "pdw_handler_test_total 9") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "pdw_metrics") {
		t.Errorf("/debug/vars: code=%d", code)
		_ = body
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: code=%d", code)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index: code=%d body=%q", code, body)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Errorf("unknown path served: code=%d", code)
	}
}

func TestServeBindsAndServes(t *testing.T) {
	addr, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer Disable()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if !Enabled() {
		t.Fatal("Serve did not enable the layer")
	}
}
