// Package obs is the solver stack's zero-dependency observability
// layer: hierarchical spans carried through contexts, a process-wide
// metrics registry (counters, gauges, fixed-bucket histograms), and
// exporters for everything the paper's evaluation watches live —
// Chrome trace-event span dumps (loadable in Perfetto), a JSONL event
// log, Prometheus text format, expvar, and net/http/pprof behind one
// debug handler.
//
// The package is a leaf like internal/solve: it imports only the
// standard library, so every solver layer (lp, milp, washpath, pdw,
// dawo, synth, harness) and both CLIs can depend on it without cycles.
//
// # Disabled-path cost contract
//
// Observability is off by default and gated by one atomic flag.
// While disabled:
//
//   - Start returns (ctx, nil) after a single atomic load — no
//     allocation, no context wrapping;
//   - every *Span method is nil-safe and returns immediately;
//   - hot-loop call sites guard metric updates with Enabled(), so the
//     simplex pivot loop and the branch & bound node loop pay one
//     predictable branch (see BenchmarkDisabled* and the lp package's
//     BenchmarkSimplexObsOverhead for the measured cost, which must
//     stay under 2% — DESIGN.md "Observability cost contract").
//
// Enabling (cmd flags -listen, -trace, -events, or Enable directly)
// turns on span recording and delivery to the registered sinks.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the process-wide gate. All recording paths check it
// first; the disabled path must stay allocation-free.
var enabled atomic.Bool

// Enable turns span recording on.
func Enable() { enabled.Store(true) }

// Disable turns span recording off. Spans already started while
// enabled still deliver to sinks on End.
func Disable() { enabled.Store(false) }

// Enabled reports whether the observability layer is recording.
func Enabled() bool { return enabled.Load() }

// Attr is one key/value annotation on a span or event. Values must be
// JSON-encodable (strings, numbers, bools).
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// A is shorthand for constructing an Attr.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Event is a point-in-time annotation inside a span.
type Event struct {
	Name  string    `json:"name"`
	Time  time.Time `json:"time"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Span is one timed region of the pipeline. Spans form a tree through
// the context: Start under a context carrying a span makes the new
// span its child. A nil *Span is valid everywhere (the disabled path).
type Span struct {
	name   string
	id     uint64
	parent uint64
	// root is the id of the span tree's root; the Chrome exporter maps
	// each root to its own thread row so concurrent benchmark runs
	// render as parallel tracks in Perfetto.
	root  uint64
	start time.Time

	mu     sync.Mutex
	attrs  []Attr
	events []Event
	ended  bool
}

// SpanData is the immutable snapshot delivered to sinks when a span
// ends.
type SpanData struct {
	Name     string        `json:"name"`
	ID       uint64        `json:"id"`
	Parent   uint64        `json:"parent,omitempty"`
	Root     uint64        `json:"root"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Events   []Event       `json:"events,omitempty"`
}

type spanKey struct{}

var nextSpanID atomic.Uint64

// Start opens a span named name as a child of the span carried by ctx
// (if any) and returns a derived context carrying it. When the layer
// is disabled it returns (ctx, nil) with no allocation; all *Span
// methods tolerate nil, so call sites never need to guard.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	s := &Span{
		name:  name,
		id:    nextSpanID.Add(1),
		start: time.Now(),
		attrs: attrs,
	}
	if parent := FromContext(ctx); parent != nil {
		s.parent = parent.id
		s.root = parent.root
	} else {
		s.root = s.id
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// ID returns the span's process-unique id (0 for nil spans).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Root returns the id of the span tree's root (0 for nil spans). A
// request-scoped collector can key every span of one request by this:
// spans started under the request's root context all share it.
func (s *Span) Root() uint64 {
	if s == nil {
		return 0
	}
	return s.root
}

// SetAttr annotates the span. No-op on nil or ended spans.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// Event records a point-in-time event inside the span. No-op on nil
// or ended spans.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.events = append(s.events, Event{Name: name, Time: time.Now(), Attrs: attrs})
	}
	s.mu.Unlock()
}

// End closes the span and delivers its snapshot to every registered
// sink. Safe on nil spans and idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	data := SpanData{
		Name:     s.name,
		ID:       s.id,
		Parent:   s.parent,
		Root:     s.root,
		Start:    s.start,
		Duration: time.Since(s.start),
		Attrs:    s.attrs,
		Events:   s.events,
	}
	s.mu.Unlock()
	deliver(data)
}

// RecordSpan delivers an already-timed region as a completed span
// without the Start/End context dance: hot paths note time.Now() once
// when enabled and call RecordSpan retroactively, paying the span
// allocation only for regions that turn out to matter (e.g. the lp
// package records a span only for pivot loops above a size threshold).
// The span parents under the span carried by ctx. No-op when disabled.
func RecordSpan(ctx context.Context, name string, start time.Time, d time.Duration, attrs ...Attr) {
	if !enabled.Load() {
		return
	}
	data := SpanData{
		Name:     name,
		ID:       nextSpanID.Add(1),
		Start:    start,
		Duration: d,
		Attrs:    attrs,
	}
	if parent := FromContext(ctx); parent != nil {
		data.Parent = parent.id
		data.Root = parent.root
	} else {
		data.Root = data.ID
	}
	deliver(data)
}

// Sink consumes finished spans. OnSpanEnd must be safe for concurrent
// use; it is called synchronously from End.
type Sink interface {
	OnSpanEnd(SpanData)
}

var sinks struct {
	mu   sync.RWMutex
	list []Sink
}

// AddSink registers a sink and returns a function that removes it.
func AddSink(s Sink) (remove func()) {
	sinks.mu.Lock()
	sinks.list = append(sinks.list, s)
	sinks.mu.Unlock()
	return func() {
		sinks.mu.Lock()
		defer sinks.mu.Unlock()
		for i, x := range sinks.list {
			if x == s {
				sinks.list = append(sinks.list[:i:i], sinks.list[i+1:]...)
				return
			}
		}
	}
}

func deliver(d SpanData) {
	sinks.mu.RLock()
	list := sinks.list
	sinks.mu.RUnlock()
	for _, s := range list {
		s.OnSpanEnd(d)
	}
}
