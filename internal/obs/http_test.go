package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerIndex(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	code, body := get(t, srv.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("index status %d", code)
	}
	for _, want := range []string{"/metrics", "/debug/vars", "/debug/pprof"} {
		if !strings.Contains(body, want) {
			t.Errorf("index does not mention %s:\n%s", want, body)
		}
	}

	if code, _ := get(t, srv.URL+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", code)
	}
}

func TestHandlerMetrics(t *testing.T) {
	Default().Counter("obs_http_test_counter").Inc()
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "# TYPE") {
		t.Fatal("/metrics is not Prometheus text format")
	}
	if !strings.Contains(body, "obs_http_test_counter") {
		t.Fatal("/metrics missing registry counters")
	}
	// Runtime gauges are collected per scrape.
	for _, g := range []string{"go_goroutines", "go_heap_alloc_bytes", "go_gc_cycles_total"} {
		if !strings.Contains(body, g) {
			t.Errorf("/metrics missing runtime gauge %s", g)
		}
	}
}

func TestHandlerExpvarAndPprof(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	code, body := get(t, srv.URL+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "pdw_metrics") {
		t.Fatalf("/debug/vars status %d, pdw_metrics present: %v", code, strings.Contains(body, "pdw_metrics"))
	}
	if code, _ := get(t, srv.URL+"/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
}

func TestRegisterDebug(t *testing.T) {
	remove := RegisterDebug("GET /debug/obs-test-ext", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ext-ok")
	}))

	srv := httptest.NewServer(Handler())
	code, body := get(t, srv.URL+"/debug/obs-test-ext")
	if code != http.StatusOK || body != "ext-ok" {
		t.Fatalf("extension endpoint: status %d body %q", code, body)
	}
	if _, index := get(t, srv.URL+"/"); !strings.Contains(index, "/debug/obs-test-ext") {
		t.Fatal("index does not list the extension endpoint")
	}
	srv.Close()

	// Handlers built after removal must not carry the extension.
	remove()
	srv2 := httptest.NewServer(Handler())
	defer srv2.Close()
	if code, _ := get(t, srv2.URL+"/debug/obs-test-ext"); code != http.StatusNotFound {
		t.Fatalf("removed extension still mounted: status %d", code)
	}
}

func TestWithDebugRouting(t *testing.T) {
	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "app")
	})
	srv := httptest.NewServer(WithDebug(app))
	defer srv.Close()

	if _, body := get(t, srv.URL+"/v1/anything"); body != "app" {
		t.Fatalf("app path served %q", body)
	}
	if code, body := get(t, srv.URL+"/metrics"); code != http.StatusOK || body == "app" {
		t.Fatalf("/metrics not routed to debug handler (status %d)", code)
	}
	if _, body := get(t, srv.URL+"/"); !strings.Contains(body, "pdw debug endpoint") {
		t.Fatalf("bare / served %q, want debug index", body)
	}
	if code, _ := get(t, srv.URL+"/debug/vars"); code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
}

func TestServeDebug(t *testing.T) {
	// Empty addr: no-op, no server.
	if bound, err := ServeDebug("test", ""); err != nil || bound != "" {
		t.Fatalf("ServeDebug(\"\") = %q, %v", bound, err)
	}

	// Real addr: binds, serves, and enables the obs layer (restore it).
	defer Disable()
	bound, err := ServeDebug("test", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("ServeDebug did not enable the obs layer")
	}
	code, body := get(t, "http://"+bound+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "# TYPE") {
		t.Fatalf("served /metrics: status %d", code)
	}
}
