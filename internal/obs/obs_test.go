package obs

import (
	"context"
	"sync"
	"testing"
)

// withEnabled runs f with the layer enabled, restoring the prior state.
func withEnabled(t *testing.T, f func()) {
	t.Helper()
	was := Enabled()
	Enable()
	defer func() {
		if !was {
			Disable()
		}
	}()
	f()
}

func TestStartDisabledReturnsNil(t *testing.T) {
	Disable()
	ctx := context.Background()
	ctx2, s := Start(ctx, "x")
	if s != nil {
		t.Fatal("disabled Start returned a span")
	}
	if ctx2 != ctx {
		t.Fatal("disabled Start wrapped the context")
	}
	// All methods must be nil-safe.
	s.SetAttr("k", 1)
	s.Event("e")
	s.End()
	if FromContext(ctx2) != nil {
		t.Fatal("nil span leaked into context")
	}
}

func TestSpanTreeAndSinkDelivery(t *testing.T) {
	withEnabled(t, func() {
		buf := NewTraceBuffer()
		remove := AddSink(buf)
		defer remove()

		ctx, root := Start(context.Background(), "root", A("bench", "PCR"))
		ctx2, child := Start(ctx, "child")
		child.SetAttr("nodes", 42)
		child.Event("incumbent", A("obj", 3.5))
		if FromContext(ctx2) != child {
			t.Fatal("context does not carry child")
		}
		child.End()
		child.End() // idempotent
		root.End()

		spans := buf.Spans()
		if len(spans) != 2 {
			t.Fatalf("got %d spans, want 2", len(spans))
		}
		c, r := spans[0], spans[1]
		if c.Name != "child" || r.Name != "root" {
			t.Fatalf("order wrong: %q %q", c.Name, r.Name)
		}
		if c.Parent != r.ID || c.Root != r.ID || r.Root != r.ID {
			t.Fatalf("tree wrong: child{parent=%d root=%d} root{id=%d}", c.Parent, c.Root, r.ID)
		}
		if len(c.Events) != 1 || c.Events[0].Name != "incumbent" {
			t.Fatalf("child events = %+v", c.Events)
		}
		if len(r.Attrs) != 1 || r.Attrs[0].Key != "bench" {
			t.Fatalf("root attrs = %+v", r.Attrs)
		}
	})
}

func TestEndAfterDisableStillDelivers(t *testing.T) {
	buf := NewTraceBuffer()
	remove := AddSink(buf)
	defer remove()
	Enable()
	_, s := Start(context.Background(), "late")
	Disable()
	s.End()
	if buf.Len() != 1 {
		t.Fatalf("span started while enabled was dropped: %d", buf.Len())
	}
}

func TestRemoveSink(t *testing.T) {
	withEnabled(t, func() {
		buf := NewTraceBuffer()
		remove := AddSink(buf)
		remove()
		_, s := Start(context.Background(), "x")
		s.End()
		if buf.Len() != 0 {
			t.Fatal("removed sink still receives spans")
		}
	})
}

func TestConcurrentSpans(t *testing.T) {
	withEnabled(t, func() {
		buf := NewTraceBuffer()
		remove := AddSink(buf)
		defer remove()
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					ctx, root := Start(context.Background(), "worker")
					_, inner := Start(ctx, "inner")
					inner.SetAttr("i", i)
					inner.Event("tick")
					inner.End()
					root.End()
				}
			}()
		}
		wg.Wait()
		if buf.Len() != 8*100*2 {
			t.Fatalf("got %d spans, want %d", buf.Len(), 8*100*2)
		}
	})
}

func TestDisabledStartAllocs(t *testing.T) {
	Disable()
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		_, s := Start(ctx, "hot")
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled Start allocates %.1f times per op", allocs)
	}
}
