package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// SolveSnapshot is one point-in-time view of an in-flight solve: the
// live counters internal/solve.Progress accumulates from the solver
// hot loops (B&B nodes, simplex pivots, incumbent/bound trajectory)
// plus the current pipeline phase and ILP model. It lives here rather
// than in internal/solve so the solve registry below can serve it
// without obs importing the solver stack (solve already imports obs).
//
// BestObj, Bound, and Gap are pointers so "no incumbent yet" is an
// absent JSON field rather than a NaN encoding/json refuses to write.
type SolveSnapshot struct {
	// Phase is the pipeline phase currently running ("wash-insertion",
	// "window-milp", ...); Model the ILP currently being solved
	// ("wash-path[3t r0]", "window-milp").
	Phase string `json:"phase,omitempty"`
	Model string `json:"model,omitempty"`
	// Nodes/Pruned/Incumbents count branch & bound work across every
	// ILP of the solve so far; Pivots counts simplex pivots.
	Nodes      int64 `json:"nodes"`
	Pruned     int64 `json:"pruned"`
	Incumbents int64 `json:"incumbents"`
	Pivots     int64 `json:"pivots"`
	// BestObj is the best incumbent objective, Bound the best proven
	// lower bound of the current ILP, Gap their relative distance.
	BestObj *float64 `json:"best_obj,omitempty"`
	Bound   *float64 `json:"bound,omitempty"`
	Gap     *float64 `json:"gap,omitempty"`
	// Canceled reports the solve's budget expired and it is degrading
	// to incumbents.
	Canceled bool `json:"canceled,omitempty"`
	// Elapsed is the time since the solve's progress view was created.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// solveEntry is one registered in-flight solve.
type solveEntry struct {
	id    string
	kind  string // "request", "cli", "benchmark"
	label string
	start time.Time
	snap  func() SolveSnapshot
}

// solveReg is the process-wide registry of in-flight root solves. Every
// root solve (a pdwd request, a cmd/pdw run, a pdwbench benchmark)
// registers its live progress here for the /debug/solves surface; the
// per-solve cost is one mutex acquisition at start and one at end.
var solveReg = struct {
	sync.Mutex
	seq uint64
	m   map[string]*solveEntry
}{m: map[string]*solveEntry{}}

// RegisterSolve adds an in-flight solve to the /debug/solves registry
// under the given id (empty: a fresh "solve-N" id is minted; duplicate:
// a "#N" suffix disambiguates) and returns the function that removes it
// when the solve finishes. snap must be safe to call concurrently with
// the running solve — internal/solve.Progress.Snapshot is.
func RegisterSolve(id, kind, label string, snap func() SolveSnapshot) (unregister func()) {
	solveReg.Lock()
	solveReg.seq++
	if id == "" {
		id = fmt.Sprintf("solve-%d", solveReg.seq)
	} else if _, taken := solveReg.m[id]; taken {
		id = fmt.Sprintf("%s#%d", id, solveReg.seq)
	}
	solveReg.m[id] = &solveEntry{id: id, kind: kind, label: label, start: time.Now(), snap: snap}
	solveReg.Unlock()
	return func() {
		solveReg.Lock()
		delete(solveReg.m, id)
		solveReg.Unlock()
	}
}

// solveView is the wire shape of one in-flight solve: the snapshot
// plus identity, age, and derived rates.
type solveView struct {
	ID    string        `json:"id"`
	Kind  string        `json:"kind"`
	Label string        `json:"label,omitempty"`
	Age   time.Duration `json:"age_ns"`
	SolveSnapshot
	// NodesPerSec and PivotsPerSec are averaged over the solve's age on
	// the listing/get endpoints and over the tick window on /watch.
	NodesPerSec  float64 `json:"nodes_per_sec"`
	PivotsPerSec float64 `json:"pivots_per_sec"`
}

// viewOf renders one registered solve, with rates averaged over its
// age.
func viewOf(e *solveEntry) solveView {
	v := solveView{ID: e.id, Kind: e.kind, Label: e.label, SolveSnapshot: e.snap()}
	v.Age = time.Since(e.start)
	if secs := v.Age.Seconds(); secs > 0 {
		v.NodesPerSec = float64(v.Nodes) / secs
		v.PivotsPerSec = float64(v.Pivots) / secs
	}
	return v
}

// lookupSolve fetches one registered solve by id.
func lookupSolve(id string) (*solveEntry, bool) {
	solveReg.Lock()
	defer solveReg.Unlock()
	e, ok := solveReg.m[id]
	return e, ok
}

// handleSolves lists the in-flight solves, oldest first.
func handleSolves(w http.ResponseWriter, r *http.Request) {
	solveReg.Lock()
	entries := make([]*solveEntry, 0, len(solveReg.m))
	for _, e := range solveReg.m {
		entries = append(entries, e)
	}
	solveReg.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].start.Equal(entries[j].start) {
			return entries[i].start.Before(entries[j].start)
		}
		return entries[i].id < entries[j].id
	})
	views := make([]solveView, 0, len(entries))
	for _, e := range entries {
		views = append(views, viewOf(e))
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{"count": len(views), "solves": views})
}

// handleSolve serves the full JSON snapshot of one in-flight solve.
func handleSolve(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := lookupSolve(id)
	if !ok {
		http.Error(w, "obs: no in-flight solve "+strconv.Quote(id), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(viewOf(e))
}

// watchInterval parses the ?interval= query of the watch endpoint.
// Default 500ms, floor 50ms so a typo cannot spin the server.
func watchInterval(r *http.Request) (time.Duration, error) {
	s := r.URL.Query().Get("interval")
	if s == "" {
		return 500 * time.Millisecond, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("obs: bad interval %q: %w", s, err)
	}
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d, nil
}

// handleSolveWatch streams snapshots of one in-flight solve as
// server-sent events: one "data:" JSON line per interval, with rates
// computed over the tick window, closing with an "event: done" once
// the solve unregisters (or when the client hangs up).
func handleSolveWatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := lookupSolve(id); !ok {
		http.Error(w, "obs: no in-flight solve "+strconv.Quote(id), http.StatusNotFound)
		return
	}
	interval, err := watchInterval(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "obs: streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var last solveView
	var lastAt time.Time
	emit := func(e *solveEntry) {
		v := viewOf(e)
		now := time.Now()
		if !lastAt.IsZero() {
			// Windowed rates: the delta since the previous tick is what a
			// dashboard wants ("is it still moving?"), not the lifetime
			// average.
			if secs := now.Sub(lastAt).Seconds(); secs > 0 {
				v.NodesPerSec = float64(v.Nodes-last.Nodes) / secs
				v.PivotsPerSec = float64(v.Pivots-last.Pivots) / secs
			}
		}
		last, lastAt = v, now
		b, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "data: %s\n\n", b)
		flusher.Flush()
	}
	if e, ok := lookupSolve(id); ok {
		emit(e)
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
			e, ok := lookupSolve(id)
			if !ok {
				fmt.Fprint(w, "event: done\ndata: {}\n\n")
				flusher.Flush()
				return
			}
			emit(e)
		}
	}
}
