package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pdw_test_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("pdw_test_total") != c {
		t.Fatal("same name resolved to a different counter")
	}
	g := r.Gauge("pdw_depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestCounterLabels(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("pdw_skips_total", "reason", "type1")
	b := r.Counter("pdw_skips_total", "reason", "type2")
	if a == b {
		t.Fatal("distinct labels share a counter")
	}
	if r.Counter("pdw_skips_total", "reason", "type1") != a {
		t.Fatal("same labels resolved to a different counter")
	}
	a.Inc()
	b.Add(2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE pdw_skips_total counter",
		`pdw_skips_total{reason="type1"} 1`,
		`pdw_skips_total{reason="type2"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("pdw_bench_total", "name", "Kinase \"act-1\"\nx\\y").Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `name="Kinase \"act-1\"\nx\\y"`) {
		t.Errorf("label not escaped:\n%s", sb.String())
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pdw_wall_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %g", h.Sum())
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE pdw_wall_seconds histogram",
		`pdw_wall_seconds_bucket{le="0.1"} 1`,
		`pdw_wall_seconds_bucket{le="1"} 3`,
		`pdw_wall_seconds_bucket{le="10"} 4`,
		`pdw_wall_seconds_bucket{le="+Inf"} 5`,
		"pdw_wall_seconds_sum 56.05",
		"pdw_wall_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramLabelsMergeLE(t *testing.T) {
	r := NewRegistry()
	r.Histogram("pdw_phase_seconds", []float64{1}, "phase", "verify").Observe(0.5)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `pdw_phase_seconds_bucket{phase="verify",le="1"} 1`) {
		t.Errorf("le not merged into label block:\n%s", sb.String())
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("pdw_a_total").Add(3)
	r.Gauge("pdw_g", "w", "1").Set(-2)
	r.Histogram("pdw_h_seconds", []float64{1}).Observe(0.25)
	s := r.Snapshot()
	if s["pdw_a_total"] != 3 {
		t.Errorf("counter snapshot = %v", s["pdw_a_total"])
	}
	if s[`pdw_g{w="1"}`] != -2 {
		t.Errorf("gauge snapshot = %v (have %v)", s[`pdw_g{w="1"}`], s)
	}
	if s["pdw_h_seconds_count"] != 1 || s["pdw_h_seconds_sum"] != 0.25 {
		t.Errorf("histogram snapshot wrong: %v", s)
	}
}

func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("pdw_conc_total")
			h := r.Histogram("pdw_conc_seconds", nil)
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001)
				r.Gauge("pdw_conc_depth").Add(1)
				r.Gauge("pdw_conc_depth").Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("pdw_conc_total").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("pdw_conc_seconds", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := r.Gauge("pdw_conc_depth").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if math.Abs(r.Histogram("pdw_conc_seconds", nil).Sum()-8.0) > 1e-6 {
		t.Fatalf("histogram sum = %g, want 8", r.Histogram("pdw_conc_seconds", nil).Sum())
	}
}

func TestOddLabelPairsDoNotPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("pdw_odd_total", "only-key").Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `pdw_odd_total{only-key=""} 1`) {
		t.Errorf("odd labels handled wrong:\n%s", sb.String())
	}
}
