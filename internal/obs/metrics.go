package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric names follow the Prometheus conventions: snake_case, a unit
// suffix, _total for counters. Labels are passed as alternating
// key/value pairs; a (name, label set) pair always resolves to the
// same metric instance, so hot paths should resolve once and keep the
// handle instead of re-looking it up per update.

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n < 0 is ignored).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into a fixed cumulative bucket layout
// chosen at registration. Observations are lock-free.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sumBit atomic.Uint64 // float64 bits of the running sum, CAS-updated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBit.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBit.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBit.Load()) }

// DefSecondsBuckets is the default bucket layout for wall-time
// histograms, spanning sub-millisecond LP solves to the paper's
// 15-minute ILP cap.
var DefSecondsBuckets = []float64{
	.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 300, 900,
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is all series of one metric name.
type family struct {
	name    string
	kind    metricKind
	buckets []float64
	series  map[string]any // label string -> *Counter / *Gauge / *Histogram
}

// Registry is a set of named metrics. The zero value is not usable;
// call NewRegistry, or use the process-wide Default registry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every solver layer feeds.
func Default() *Registry { return defaultRegistry }

// labelString renders alternating key/value pairs as a canonical
// Prometheus label block ({} order is sorted by key).
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		labels = append(labels, "")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func (r *Registry) lookup(name string, kind metricKind, buckets []float64, labels []string) any {
	key := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kind, buckets: buckets, series: map[string]any{}}
		r.families[name] = f
	}
	if m, ok := f.series[key]; ok {
		return m
	}
	var m any
	switch f.kind {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	case kindHistogram:
		b := f.buckets
		if b == nil {
			b = DefSecondsBuckets
		}
		h := &Histogram{bounds: b}
		h.counts = make([]atomic.Int64, len(b)+1)
		m = h
	}
	f.series[key] = m
	return m
}

// Counter returns (registering on first use) the counter with the
// given name and label pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.lookup(name, kindCounter, nil, labels).(*Counter)
}

// Gauge returns the gauge with the given name and label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.lookup(name, kindGauge, nil, labels).(*Gauge)
}

// Histogram returns the histogram with the given name, bucket layout
// (nil: DefSecondsBuckets; the layout of the first registration of a
// name wins), and label pairs.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	return r.lookup(name, kindHistogram, buckets, labels).(*Histogram)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format, families and series in stable sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	type snap struct {
		f      *family
		labels []string
	}
	snaps := make([]snap, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		ls := make([]string, 0, len(f.series))
		for l := range f.series {
			ls = append(ls, l)
		}
		sort.Strings(ls)
		snaps = append(snaps, snap{f, ls})
	}
	r.mu.Unlock()

	for _, s := range snaps {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.f.name, s.f.kind); err != nil {
			return err
		}
		for _, l := range s.labels {
			m := s.f.series[l]
			switch m := m.(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %d\n", s.f.name, l, m.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s%s %d\n", s.f.name, l, m.Value())
			case *Histogram:
				writeHistogram(w, s.f.name, l, m)
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(labels, "le", formatBound(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(labels, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
}

func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b), "0"), ".")
}

// mergeLabel splices one extra label pair into a rendered label block.
func mergeLabel(labels, k, v string) string {
	extra := fmt.Sprintf(`%s="%s"`, k, escapeLabel(v))
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// Snapshot flattens the registry into name{labels} -> value. Counters
// and gauges map to their value; histograms contribute _count and
// _sum entries. Used by the bench JSON export and expvar.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	type entry struct {
		name string
		m    any
	}
	var entries []entry
	for n, f := range r.families {
		for l, m := range f.series {
			entries = append(entries, entry{n + l, m})
		}
	}
	r.mu.Unlock()
	out := make(map[string]float64, len(entries))
	for _, e := range entries {
		switch m := e.m.(type) {
		case *Counter:
			out[e.name] = float64(m.Value())
		case *Gauge:
			out[e.name] = float64(m.Value())
		case *Histogram:
			out[e.name+"_count"] = float64(m.Count())
			out[e.name+"_sum"] = m.Sum()
		}
	}
	return out
}

// Reset drops every registered metric. Tests only: handles obtained
// before Reset keep updating their detached metric.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.families = map[string]*family{}
	r.mu.Unlock()
}
