package obs

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// testSnap returns a snap func serving the value the pointer holds.
func testSnap(s *atomic.Pointer[SolveSnapshot]) func() SolveSnapshot {
	return func() SolveSnapshot {
		if v := s.Load(); v != nil {
			return *v
		}
		return SolveSnapshot{}
	}
}

func snapPtr(s SolveSnapshot) *atomic.Pointer[SolveSnapshot] {
	var p atomic.Pointer[SolveSnapshot]
	p.Store(&s)
	return &p
}

func decodeSolves(t *testing.T, body string) (int, []map[string]any) {
	t.Helper()
	var out struct {
		Count  int              `json:"count"`
		Solves []map[string]any `json:"solves"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("decode %q: %v", body, err)
	}
	return out.Count, out.Solves
}

func TestRegisterSolveIDs(t *testing.T) {
	snap := testSnap(snapPtr(SolveSnapshot{}))
	u1 := RegisterSolve("", "cli", "a", snap)
	defer u1()
	u2 := RegisterSolve("req-1", "request", "b", snap)
	defer u2()
	u3 := RegisterSolve("req-1", "request", "c", snap) // collision
	defer u3()

	srv := httptest.NewServer(Handler())
	defer srv.Close()
	_, body := get(t, srv.URL+"/debug/solves")
	count, solves := decodeSolves(t, body)
	if count < 3 {
		t.Fatalf("count = %d, want >= 3", count)
	}
	ids := map[string]bool{}
	for _, s := range solves {
		ids[s["id"].(string)] = true
	}
	if !ids["req-1"] {
		t.Fatalf("explicit id missing: %v", ids)
	}
	minted, disambiguated := false, false
	for id := range ids {
		if strings.HasPrefix(id, "solve-") {
			minted = true
		}
		if strings.HasPrefix(id, "req-1#") {
			disambiguated = true
		}
	}
	if !minted || !disambiguated {
		t.Fatalf("minted=%v disambiguated=%v in %v", minted, disambiguated, ids)
	}
}

func TestSolvesEndpointListAndGet(t *testing.T) {
	obj, bound := 42.5, 40.0
	gap := (obj - bound) / obj
	ptr := snapPtr(SolveSnapshot{
		Phase: "window-milp", Model: "window-milp",
		Nodes: 100, Pruned: 30, Incumbents: 2, Pivots: 5000,
		BestObj: &obj, Bound: &bound, Gap: &gap,
		Elapsed: time.Second,
	})
	unregister := RegisterSolve("solves-test-1", "request", "pdw", testSnap(ptr))
	defer unregister()

	srv := httptest.NewServer(Handler())
	defer srv.Close()

	code, body := get(t, srv.URL+"/debug/solves/solves-test-1")
	if code != http.StatusOK {
		t.Fatalf("get status %d: %s", code, body)
	}
	var v map[string]any
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v["phase"] != "window-milp" || v["nodes"].(float64) != 100 || v["pivots"].(float64) != 5000 {
		t.Fatalf("snapshot fields wrong: %v", v)
	}
	if v["best_obj"].(float64) != 42.5 || v["bound"].(float64) != 40.0 {
		t.Fatalf("objective fields wrong: %v", v)
	}
	if v["age_ns"].(float64) <= 0 {
		t.Fatalf("age not positive: %v", v["age_ns"])
	}
	// Lifetime-average rates derive from the published counters.
	if v["nodes_per_sec"].(float64) <= 0 || v["pivots_per_sec"].(float64) <= 0 {
		t.Fatalf("rates not positive: %v", v)
	}

	if code, _ := get(t, srv.URL+"/debug/solves/no-such-solve"); code != http.StatusNotFound {
		t.Fatalf("unknown solve status %d, want 404", code)
	}

	// After unregistering, the solve leaves the listing.
	unregister()
	if code, _ := get(t, srv.URL+"/debug/solves/solves-test-1"); code != http.StatusNotFound {
		t.Fatalf("unregistered solve still served: status %d", code)
	}
}

func TestSolvesIndexListsEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	if _, body := get(t, srv.URL+"/"); !strings.Contains(body, "/debug/solves") {
		t.Fatal("index does not mention /debug/solves")
	}
}

func TestSolveWatchStreams(t *testing.T) {
	ptr := snapPtr(SolveSnapshot{Phase: "p1", Nodes: 1})
	unregister := RegisterSolve("watch-test-1", "request", "pdw", testSnap(ptr))

	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/solves/watch-test-1/watch?interval=60ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	readEvent := func() string {
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "data: ") || strings.HasPrefix(line, "event: ") {
				return line
			}
		}
		t.Fatalf("stream ended early: %v", sc.Err())
		return ""
	}

	// First tick: the initial snapshot.
	first := readEvent()
	if !strings.HasPrefix(first, "data: ") {
		t.Fatalf("first event %q", first)
	}
	var v1 map[string]any
	if err := json.Unmarshal([]byte(strings.TrimPrefix(first, "data: ")), &v1); err != nil {
		t.Fatal(err)
	}
	if v1["phase"] != "p1" {
		t.Fatalf("first snapshot %v", v1)
	}

	// Advance the solve; a later tick must reflect it.
	ptr.Store(&SolveSnapshot{Phase: "p2", Nodes: 500})
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("never saw updated snapshot")
		default:
		}
		ev := readEvent()
		if !strings.HasPrefix(ev, "data: ") {
			continue
		}
		var v map[string]any
		if err := json.Unmarshal([]byte(strings.TrimPrefix(ev, "data: ")), &v); err != nil {
			t.Fatal(err)
		}
		if v["phase"] == "p2" {
			// Windowed rate: 499 fresh nodes over a ~60ms window.
			if v["nodes_per_sec"].(float64) <= 0 {
				t.Fatalf("windowed rate not positive: %v", v)
			}
			break
		}
	}

	// Unregister; the stream must close with a done event.
	unregister()
	for {
		ev := readEvent()
		if strings.HasPrefix(ev, "event: done") {
			return
		}
	}
}

func TestSolveWatchErrors(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	if code, _ := get(t, srv.URL+"/debug/solves/no-such/watch"); code != http.StatusNotFound {
		t.Fatalf("watch unknown solve: status %d, want 404", code)
	}

	unregister := RegisterSolve("watch-bad-interval", "cli", "x", testSnap(snapPtr(SolveSnapshot{})))
	defer unregister()
	if code, _ := get(t, srv.URL+"/debug/solves/watch-bad-interval/watch?interval=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad interval status %d, want 400", code)
	}
}

func TestMetricsBuildInfo(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	_, body := get(t, srv.URL+"/metrics")
	if !strings.Contains(body, "pdwd_build_info{") {
		t.Fatalf("/metrics missing pdwd_build_info:\n%s", body)
	}
	found := false
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "pdwd_build_info{") {
			if !strings.Contains(line, `version=`) || !strings.Contains(line, `revision=`) {
				t.Fatalf("build info labels missing: %s", line)
			}
			if !strings.HasSuffix(line, " 1") {
				t.Fatalf("build info value not 1: %s", line)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no pdwd_build_info sample line")
	}
}
