package washpath

import (
	"testing"
	"time"

	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
)

// meshChip builds a fully-channelled WxH chip with ports on all corners:
// in1 top-left, in2 top-right, out1 bottom-left, out2 bottom-right
// (interior positions so corner-adjacency is rich).
func meshChip(t *testing.T, w, h int) *grid.Chip {
	t.Helper()
	c := grid.NewChip("mesh", w, h)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	add := func(id string, k grid.PortKind, p geom.Point) {
		t.Helper()
		_, err := c.AddPort(id, k, p)
		must(err)
	}
	add("in1", grid.FlowPort, geom.Pt(1, 0))
	add("in2", grid.FlowPort, geom.Pt(0, h-2))
	add("out1", grid.WastePort, geom.Pt(w-1, 1))
	add("out2", grid.WastePort, geom.Pt(w-2, h-1))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			must(c.AddChannel(geom.Pt(x, y)))
		}
	}
	must(c.Validate())
	return c
}

func TestHeuristicCoversChain(t *testing.T) {
	c := meshChip(t, 8, 8)
	targets := []geom.Point{geom.Pt(3, 3), geom.Pt(4, 3), geom.Pt(5, 3)}
	plan, err := Build(c, Request{Targets: targets}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Path.ValidateComplete(c); err != nil {
		t.Fatal(err)
	}
	if !plan.Path.Covers(targets) {
		t.Fatal("heuristic path misses targets")
	}
	if plan.Exact {
		t.Error("heuristic plan must not claim exactness")
	}
}

func TestExactMatchesOrBeatsHeuristic(t *testing.T) {
	c := meshChip(t, 7, 7)
	cases := [][]geom.Point{
		{geom.Pt(3, 3)},
		{geom.Pt(2, 2), geom.Pt(3, 2)},
		{geom.Pt(2, 4), geom.Pt(3, 4), geom.Pt(4, 4)},
		{geom.Pt(5, 2), geom.Pt(5, 3), geom.Pt(5, 4)},
	}
	for i, targets := range cases {
		heur, err := Build(c, Request{Targets: targets}, Options{})
		if err != nil {
			t.Fatalf("case %d heuristic: %v", i, err)
		}
		exact, err := Build(c, Request{Targets: targets}, Options{Exact: true, TimeLimit: 20 * time.Second})
		if err != nil {
			t.Fatalf("case %d exact: %v", i, err)
		}
		if !exact.Exact || !exact.Optimal {
			t.Errorf("case %d: exact solve did not prove optimality", i)
		}
		if exact.Path.Len() > heur.Path.Len() {
			t.Errorf("case %d: exact %d cells > heuristic %d", i, exact.Path.Len(), heur.Path.Len())
		}
		if !exact.Path.Covers(targets) {
			t.Errorf("case %d: exact path misses targets", i)
		}
		if err := exact.Path.ValidateComplete(c); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestExactIsTrulyMinimal(t *testing.T) {
	// Single target at (2,1) on a small mesh: minimal complete path from
	// a flow port through the target to a waste port can be computed by
	// hand: in1(1,0) -> (1,1)? ... verify against brute-force BFS bound:
	// shortest possible = dist(fp,target)+dist(target,wp)+1 over port
	// pairs when the two legs don't collide.
	c := meshChip(t, 6, 6)
	target := geom.Pt(2, 1)
	plan, err := Build(c, Request{Targets: []geom.Point{target}}, Options{Exact: true, TimeLimit: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// in1 at (1,0): dist to (2,1) = 2. out1 at (5,1): dist = 3.
	// Lower bound = 2+3+1 = 6 cells.
	if plan.Path.Len() != 6 {
		t.Errorf("path len = %d want 6: %v", plan.Path.Len(), plan.Path)
	}
}

func TestAvoidsNonTargetDevices(t *testing.T) {
	c := grid.NewChip("dev", 9, 5)
	if _, err := c.AddPort("in1", grid.FlowPort, geom.Pt(0, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddPort("out1", grid.WastePort, geom.Pt(8, 2)); err != nil {
		t.Fatal(err)
	}
	d, err := c.AddDevice("mix", grid.Mixer, geom.Rc(4, 1, 6, 3))
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 5; y++ {
		for x := 0; x < 9; x++ {
			if err := c.AddChannel(geom.Pt(x, y)); err != nil {
				t.Fatal(err)
			}
		}
	}
	targets := []geom.Point{geom.Pt(2, 2), geom.Pt(3, 2)}
	for _, exact := range []bool{false, true} {
		plan, err := Build(c, Request{Targets: targets}, Options{Exact: exact, TimeLimit: 20 * time.Second})
		if err != nil {
			t.Fatalf("exact=%v: %v", exact, err)
		}
		for _, cell := range plan.Path.Cells {
			if c.DeviceAt(cell) == d {
				t.Errorf("exact=%v: wash path flushes through device at %v", exact, cell)
			}
		}
	}
}

func TestWashTargetedDevice(t *testing.T) {
	// When the device cells are themselves targets the path must cover
	// them (residue inside the device).
	c := grid.NewChip("devwash", 9, 5)
	if _, err := c.AddPort("in1", grid.FlowPort, geom.Pt(0, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddPort("out1", grid.WastePort, geom.Pt(8, 2)); err != nil {
		t.Fatal(err)
	}
	d, err := c.AddDevice("mix", grid.Mixer, geom.Rc(4, 2, 6, 3))
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 5; y++ {
		for x := 0; x < 9; x++ {
			if err := c.AddChannel(geom.Pt(x, y)); err != nil {
				t.Fatal(err)
			}
		}
	}
	targets := d.Cells() // 2x1 block: (4,2),(5,2)
	plan, err := Build(c, Request{Targets: targets}, Options{Exact: true, TimeLimit: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Path.Covers(targets) {
		t.Fatalf("device cells not covered: %v", plan.Path)
	}
}

func TestChainOrder(t *testing.T) {
	// L-shaped chain.
	targets := []geom.Point{geom.Pt(2, 2), geom.Pt(2, 3), geom.Pt(3, 3), geom.Pt(4, 3)}
	order, err := ChainOrder(targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	for i := 1; i < len(order); i++ {
		if !order[i-1].Adjacent(order[i]) {
			t.Fatalf("order not a chain: %v", order)
		}
	}
}

func TestChainOrderSingleAndEmpty(t *testing.T) {
	if _, err := ChainOrder(nil); err == nil {
		t.Error("empty set must fail")
	}
	o, err := ChainOrder([]geom.Point{geom.Pt(5, 5)})
	if err != nil || len(o) != 1 {
		t.Errorf("single = %v, %v", o, err)
	}
}

func TestChainOrderSquareBlock(t *testing.T) {
	// A 2x2 block is chainable (snake).
	targets := geom.Rc(3, 3, 5, 5).Points()
	order, err := ChainOrder(targets)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		if !order[i-1].Adjacent(order[i]) {
			t.Fatalf("block order not a chain: %v", order)
		}
	}
}

func TestChainOrderDisconnectedFails(t *testing.T) {
	if _, err := ChainOrder([]geom.Point{geom.Pt(0, 0), geom.Pt(5, 5)}); err == nil {
		t.Fatal("disconnected set must fail")
	}
}

func TestBuildRejectsBadTargets(t *testing.T) {
	c := meshChip(t, 6, 6)
	if _, err := Build(c, Request{}, Options{}); err == nil {
		t.Error("no targets must fail")
	}
	if _, err := Build(c, Request{Targets: []geom.Point{geom.Pt(99, 0)}}, Options{}); err == nil {
		t.Error("unroutable target must fail")
	}
	if _, err := Build(c, Request{Targets: []geom.Point{geom.Pt(1, 0)}}, Options{}); err == nil {
		t.Error("port-cell target must fail")
	}
}

func TestExactFallsBackOnTinyTimeLimit(t *testing.T) {
	c := meshChip(t, 10, 10)
	targets := []geom.Point{geom.Pt(4, 4), geom.Pt(5, 4), geom.Pt(6, 4)}
	plan, err := Build(c, Request{Targets: targets}, Options{Exact: true, TimeLimit: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Exact {
		t.Error("nanosecond budget cannot produce an exact plan")
	}
	if !plan.Path.Covers(targets) {
		t.Error("fallback path misses targets")
	}
}

func TestPortSelectionPicksShortSide(t *testing.T) {
	// Targets near in2/out2 (bottom); the exact solver should not route
	// across the whole chip to in1/out1.
	c := meshChip(t, 9, 9)
	targets := []geom.Point{geom.Pt(2, 6), geom.Pt(3, 6)}
	plan, err := Build(c, Request{Targets: targets}, Options{Exact: true, TimeLimit: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if plan.FlowPort.ID != "in2" {
		t.Errorf("flow port = %s want in2 (path %v)", plan.FlowPort.ID, plan.Path)
	}
}
