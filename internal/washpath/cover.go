package washpath

import (
	"context"
	"fmt"
	"sort"

	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
)

// BuildCover constructs one or more wash paths that together cover all
// targets; see BuildCoverContext.
func BuildCover(chip *grid.Chip, targets []geom.Point, opts Options) ([]Plan, [][]geom.Point, error) {
	return BuildCoverContext(context.Background(), chip, targets, opts)
}

// BuildCoverContext constructs one or more wash paths that together
// cover all targets. It first tries a single path (ILP or heuristic per
// opts); when the target set cannot be served by one simple path — e.g.
// a channel chain with a device block hanging off it — the set is split
// into device blocks and channel components, each washed separately.
// Returns the plans and the target subset each plan covers. A canceled
// ctx degrades exact-mode paths to the BFS heuristic (see BuildContext).
func BuildCoverContext(ctx context.Context, chip *grid.Chip, targets []geom.Point, opts Options) ([]Plan, [][]geom.Point, error) {
	plan, err := BuildContext(ctx, chip, Request{Targets: targets}, opts)
	if err == nil {
		return []Plan{plan}, [][]geom.Point{targets}, nil
	}
	parts := splitTargets(chip, targets)
	if len(parts) == 1 && len(parts[0]) == len(targets) {
		// No device/channel split possible; decompose the component
		// into simple chains (a T- or plus-shaped region cannot be
		// covered by one simple path under Eq. 14).
		parts = chainDecompose(targets)
		if len(parts) <= 1 {
			return nil, nil, fmt.Errorf("washpath: cannot cover %v: %w", targets, err)
		}
	}
	var plans []Plan
	var covered [][]geom.Point
	for _, part := range parts {
		p, perr := BuildContext(ctx, chip, Request{Targets: part}, opts)
		if perr != nil {
			// Last resort: break the part into chains.
			chains := chainDecompose(part)
			if len(chains) <= 1 {
				return nil, nil, fmt.Errorf("washpath: cannot cover split part %v: %w", part, perr)
			}
			for _, ch := range chains {
				cp, cerr := BuildContext(ctx, chip, Request{Targets: ch}, opts)
				if cerr != nil {
					return nil, nil, fmt.Errorf("washpath: cannot cover chain %v: %w", ch, cerr)
				}
				plans = append(plans, cp)
				covered = append(covered, ch)
			}
			continue
		}
		plans = append(plans, p)
		covered = append(covered, part)
	}
	return plans, covered, nil
}

// chainDecompose splits a cell set into a small number of chains, each
// traversable by a simple path: repeatedly walk greedily from a
// lowest-degree remaining cell, emitting one chain per walk.
func chainDecompose(cells []geom.Point) [][]geom.Point {
	remaining := map[geom.Point]bool{}
	for _, c := range cells {
		remaining[c] = true
	}
	deg := func(p geom.Point) int {
		n := 0
		for _, q := range p.Neighbors() {
			if remaining[q] {
				n++
			}
		}
		return n
	}
	var chains [][]geom.Point
	for len(remaining) > 0 {
		var start geom.Point
		best := 5
		ordered := make([]geom.Point, 0, len(remaining))
		for p := range remaining {
			ordered = append(ordered, p)
		}
		sort.Slice(ordered, func(i, j int) bool {
			if ordered[i].Y != ordered[j].Y {
				return ordered[i].Y < ordered[j].Y
			}
			return ordered[i].X < ordered[j].X
		})
		for _, p := range ordered {
			if d := deg(p); d < best {
				start, best = p, d
			}
		}
		chain := []geom.Point{start}
		delete(remaining, start)
		cur := start
		for {
			var next geom.Point
			found := false
			nb := 5
			for _, q := range cur.Neighbors() {
				if !remaining[q] {
					continue
				}
				if d := deg(q); !found || d < nb {
					next, nb, found = q, d, true
				}
			}
			if !found {
				break
			}
			chain = append(chain, next)
			delete(remaining, next)
			cur = next
		}
		chains = append(chains, chain)
	}
	return chains
}

// splitTargets partitions targets into per-device blocks and connected
// channel components.
func splitTargets(chip *grid.Chip, targets []geom.Point) [][]geom.Point {
	byDev := map[*grid.Device][]geom.Point{}
	var devs []*grid.Device
	var channel []geom.Point
	for _, t := range targets {
		if d := chip.DeviceAt(t); d != nil {
			if _, ok := byDev[d]; !ok {
				devs = append(devs, d)
			}
			byDev[d] = append(byDev[d], t)
		} else {
			channel = append(channel, t)
		}
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i].ID < devs[j].ID })
	var parts [][]geom.Point
	for _, d := range devs {
		parts = append(parts, byDev[d])
	}
	parts = append(parts, connectedParts(channel)...)
	return parts
}

// connectedParts splits cells into 4-connected components.
func connectedParts(cells []geom.Point) [][]geom.Point {
	set := map[geom.Point]bool{}
	for _, c := range cells {
		set[c] = true
	}
	seen := map[geom.Point]bool{}
	var parts [][]geom.Point
	ordered := append([]geom.Point(nil), cells...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Y != ordered[j].Y {
			return ordered[i].Y < ordered[j].Y
		}
		return ordered[i].X < ordered[j].X
	})
	for _, c := range ordered {
		if seen[c] {
			continue
		}
		var comp []geom.Point
		stack := []geom.Point{c}
		seen[c] = true
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, p)
			for _, q := range p.Neighbors() {
				if set[q] && !seen[q] {
					seen[q] = true
					stack = append(stack, q)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool {
			if comp[i].Y != comp[j].Y {
				return comp[i].Y < comp[j].Y
			}
			return comp[i].X < comp[j].X
		})
		parts = append(parts, comp)
	}
	return parts
}
