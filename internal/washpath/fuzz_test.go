package washpath

import (
	"testing"

	"pathdriverwash/internal/geom"
)

// FuzzChainOrder decodes bytes into a cell set and checks ChainOrder's
// contract: a returned order is a permutation of the input with every
// consecutive pair adjacent; a chainable straight line never fails.
func FuzzChainOrder(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 2, 0})
	f.Add([]byte{5, 5})
	f.Add([]byte{1, 1, 1, 2, 2, 2, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 28 {
			return
		}
		set := map[geom.Point]bool{}
		var cells []geom.Point
		for i := 0; i+1 < len(data); i += 2 {
			p := geom.Pt(int(data[i]%8), int(data[i+1]%8))
			if !set[p] {
				set[p] = true
				cells = append(cells, p)
			}
		}
		order, err := ChainOrder(cells)
		if err != nil {
			return // unchainable sets are allowed to fail
		}
		if len(order) != len(cells) {
			t.Fatalf("order has %d cells, input %d", len(order), len(cells))
		}
		seen := map[geom.Point]bool{}
		for i, p := range order {
			if !set[p] {
				t.Fatalf("foreign cell %v in order", p)
			}
			if seen[p] {
				t.Fatalf("cell %v repeated", p)
			}
			seen[p] = true
			if i > 0 && !order[i-1].Adjacent(p) {
				t.Fatalf("non-adjacent consecutive cells %v %v", order[i-1], p)
			}
		}
	})
}

// FuzzChainDecompose checks the decomposition contract: chains
// partition the input and each chain is contiguous.
func FuzzChainDecompose(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 1, 1, 2, 1})
	f.Add([]byte{3, 3, 5, 5, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 32 {
			return
		}
		set := map[geom.Point]bool{}
		var cells []geom.Point
		for i := 0; i+1 < len(data); i += 2 {
			p := geom.Pt(int(data[i]%9), int(data[i+1]%9))
			if !set[p] {
				set[p] = true
				cells = append(cells, p)
			}
		}
		if len(cells) == 0 {
			return
		}
		parts := chainDecompose(cells)
		total := 0
		seen := map[geom.Point]bool{}
		for _, part := range parts {
			total += len(part)
			for i, p := range part {
				if !set[p] || seen[p] {
					t.Fatalf("partition broken at %v", p)
				}
				seen[p] = true
				if i > 0 && !part[i-1].Adjacent(p) {
					t.Fatalf("chain %v not contiguous", part)
				}
			}
		}
		if total != len(cells) {
			t.Fatalf("decomposition covers %d of %d cells", total, len(cells))
		}
	})
}
