// Package washpath constructs wash paths: complete flow paths
// [flow port - contaminated cells - waste port] covering a set of wash
// targets at minimum length.
//
// The exact mode implements the paper's ILP (Sec. III):
//
//   - Eq. 12: exactly one flow port and one waste port are allocated;
//   - Eq. 13: exactly one cell adjacent to each chosen port is occupied;
//   - Eq. 14: every interior occupied cell has exactly two occupied
//     neighbours (path degree);
//   - Eq. 15: every wash target is covered;
//   - objective: minimize the number of occupied cells (the path's
//     contribution to L_wash in Eq. 25).
//
// Eq. 14 alone admits solutions with disconnected cycles, so the solver
// adds lazy connectivity cuts: whenever the incumbent selection splits
// into multiple components, each component not containing the chosen
// flow port is forbidden and the ILP is re-solved (documented in
// DESIGN.md). Cells of devices that are not themselves wash targets are
// excluded — buffer must not flush through a device holding fluid.
//
// The heuristic mode (and the fallback when the ILP hits its time
// budget) is the BFS chain construction of route.FlushPath, the same
// procedure the DAWO baseline uses.
package washpath

import (
	"context"
	"fmt"
	"sort"
	"time"

	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/lp"
	"pathdriverwash/internal/milp"
	"pathdriverwash/internal/obs"
	"pathdriverwash/internal/route"
	"pathdriverwash/internal/solve"
)

// Request asks for one wash path.
type Request struct {
	// Targets are the contaminated cells the path must cover. They are
	// used as given for the ILP; for the heuristic they must form a
	// chain (use ChainOrder to arrange arbitrary connected sets).
	Targets []geom.Point
}

// Options tunes the construction.
type Options struct {
	// Exact selects the ILP; false selects the BFS heuristic only.
	Exact bool
	// TimeLimit bounds the ILP solve (default 5 s). On expiry the best
	// incumbent is used if valid, otherwise the heuristic result.
	TimeLimit time.Duration
	// MaxCuts bounds lazy connectivity rounds (default 20).
	MaxCuts int
	// Trace optionally records each path ILP's size and search effort;
	// nil disables recording.
	Trace *solve.Stats
}

// Plan is a constructed wash path.
type Plan struct {
	Path      grid.Path
	FlowPort  *grid.Port
	WastePort *grid.Port
	// Optimal reports whether the ILP proved minimality.
	Optimal bool
	// Exact reports whether the path came from the ILP (false: heuristic).
	Exact bool
}

// Build constructs a wash path for the request.
func Build(chip *grid.Chip, req Request, opts Options) (Plan, error) {
	return BuildContext(context.Background(), chip, req, opts)
}

// BuildContext is Build under a context: a canceled or expired ctx
// degrades the exact mode to the BFS heuristic (the same fallback used
// when the ILP time limit expires) instead of failing.
func BuildContext(ctx context.Context, chip *grid.Chip, req Request, opts Options) (Plan, error) {
	if len(req.Targets) == 0 {
		return Plan{}, fmt.Errorf("washpath: no targets")
	}
	for _, t := range req.Targets {
		if !chip.Routable(t) {
			return Plan{}, fmt.Errorf("washpath: target %v is not routable", t)
		}
		if chip.PortAt(t) != nil {
			return Plan{}, fmt.Errorf("washpath: target %v is a port cell", t)
		}
	}
	heur, heurErr := heuristic(chip, req)
	if !opts.Exact {
		return heur, heurErr
	}
	plan, err := buildILP(ctx, chip, req, opts, heur, heurErr == nil)
	if err != nil {
		if heurErr == nil {
			return heur, nil
		}
		return Plan{}, fmt.Errorf("washpath: ILP failed (%v) and heuristic failed (%v)", err, heurErr)
	}
	return plan, nil
}

// heuristic builds the BFS chain path (DAWO's construction).
func heuristic(chip *grid.Chip, req Request) (Plan, error) {
	chain, err := ChainOrder(req.Targets)
	if err != nil {
		return Plan{}, err
	}
	o := route.Options{AvoidPorts: true, AvoidDevices: forbiddenDevCells(chip, req.Targets)}
	p, fp, wp, err := route.FlushPath(chip, chain, o)
	if err != nil {
		return Plan{}, err
	}
	return Plan{Path: p, FlowPort: fp, WastePort: wp}, nil
}

// forbiddenDevCells returns device cells that are not wash targets.
func forbiddenDevCells(chip *grid.Chip, targets []geom.Point) map[geom.Point]bool {
	tset := map[geom.Point]bool{}
	for _, t := range targets {
		tset[t] = true
	}
	out := map[geom.Point]bool{}
	for _, d := range chip.Devices() {
		for _, c := range d.Cells() {
			if !tset[c] {
				out[c] = true
			}
		}
	}
	return out
}

// ChainOrder arranges a connected target set into a traversal order
// whose consecutive members are adjacent (a Hamiltonian path on the
// induced grid subgraph). A degree-guided depth-first search with
// backtracking is used: target sets are small (one contaminated region),
// so the exponential worst case never bites in practice, and a node
// budget guards against pathological inputs. Fails if no chain exists.
func ChainOrder(targets []geom.Point) ([]geom.Point, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("washpath: empty target set")
	}
	set := map[geom.Point]bool{}
	for _, t := range targets {
		set[t] = true
	}
	if len(set) == 1 {
		return []geom.Point{targets[0]}, nil
	}
	cells := make([]geom.Point, 0, len(set))
	for p := range set {
		cells = append(cells, p)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Y != cells[j].Y {
			return cells[i].Y < cells[j].Y
		}
		return cells[i].X < cells[j].X
	})
	deg := func(p geom.Point, in map[geom.Point]bool) int {
		n := 0
		for _, q := range p.Neighbors() {
			if in[q] {
				n++
			}
		}
		return n
	}
	// Low-degree cells are the only viable chain endpoints; try starts
	// in ascending degree order.
	starts := append([]geom.Point(nil), cells...)
	sort.SliceStable(starts, func(i, j int) bool {
		return deg(starts[i], set) < deg(starts[j], set)
	})

	budget := 200000
	var order []geom.Point
	var dfs func(cur geom.Point, remaining map[geom.Point]bool) bool
	dfs = func(cur geom.Point, remaining map[geom.Point]bool) bool {
		if len(remaining) == 0 {
			return true
		}
		if budget <= 0 {
			return false
		}
		budget--
		// Visit neighbours with fewest onward options first (Warnsdorff).
		var nbs []geom.Point
		for _, q := range cur.Neighbors() {
			if remaining[q] {
				nbs = append(nbs, q)
			}
		}
		sort.SliceStable(nbs, func(i, j int) bool {
			return deg(nbs[i], remaining) < deg(nbs[j], remaining)
		})
		for _, q := range nbs {
			delete(remaining, q)
			order = append(order, q)
			if dfs(q, remaining) {
				return true
			}
			order = order[:len(order)-1]
			remaining[q] = true
		}
		return false
	}
	for _, s := range starts {
		remaining := make(map[geom.Point]bool, len(set))
		for p := range set {
			remaining[p] = true
		}
		delete(remaining, s)
		order = []geom.Point{s}
		if dfs(s, remaining) {
			return order, nil
		}
	}
	return nil, fmt.Errorf("washpath: %d targets cannot be chained", len(set))
}

// buildILP solves the Eqs. 12-15 formulation with lazy connectivity cuts.
func buildILP(ctx context.Context, chip *grid.Chip, req Request, opts Options, heur Plan, haveHeur bool) (_ Plan, err error) {
	tl := opts.TimeLimit
	if tl <= 0 {
		tl = 5 * time.Second
	}
	maxCuts := opts.MaxCuts
	if maxCuts <= 0 {
		maxCuts = 20
	}
	deadline := time.Now().Add(tl)

	ctx, span := obs.Start(ctx, "washpath.ilp", obs.A("targets", len(req.Targets)))
	rounds := 0
	defer func() {
		if span != nil {
			span.SetAttr("cut_rounds", rounds)
			span.SetAttr("ok", err == nil)
			span.End()
		}
		if obs.Enabled() {
			obs.Default().Counter("pdw_washpath_ilps_total").Inc()
			obs.Default().Counter("pdw_washpath_cut_rounds_total").Add(int64(rounds))
		}
	}()

	cp := solve.NewCheckpoint(ctx)
	m, err := newModel(chip, req, heur, haveHeur, &cp)
	if err != nil {
		return Plan{}, err
	}
	if m == nil {
		return Plan{}, fmt.Errorf("washpath: no usable cells")
	}

	var extraCuts []map[int]float64
	for round := 0; round <= maxCuts; round++ {
		rounds = round
		remain := time.Until(deadline)
		if remain <= 0 || cp.Err() != nil {
			return Plan{}, fmt.Errorf("washpath: %w during cut round %d", solve.ErrBudgetExceeded, round)
		}
		prob := m.problem(extraCuts)
		label := fmt.Sprintf("wash-path[%dt r%d]", len(req.Targets), round)
		// Publish the model about to be solved so /debug/solves names the
		// ILP the node/pivot counters currently belong to.
		solve.ProgressFromContext(ctx).SetModel(label)
		res, err := milp.SolveContext(ctx, prob, milp.Options{TimeLimit: remain})
		if err != nil {
			return Plan{}, err
		}
		opts.Trace.AddMILP(solve.MILPStat{
			Label: label,
			Vars:  prob.LP.NumVars, IntVars: prob.LP.NumVars,
			Constraints: len(prob.LP.Constraints),
			Nodes:       res.Nodes, Pruned: res.Pruned, SimplexIters: res.SimplexIters,
			Status: res.Status.String(), Optimal: res.Status == milp.Optimal,
			Wall: res.Wall, Incumbents: res.Incumbents,
		})
		if res.Status == milp.Infeasible {
			return Plan{}, fmt.Errorf("washpath: ILP %w", solve.ErrInfeasible)
		}
		if res.Status != milp.Optimal && res.Status != milp.Feasible {
			return Plan{}, fmt.Errorf("washpath: ILP status %v: %w", res.Status, solve.ErrBudgetExceeded)
		}
		plan, cut := m.extract(res.X)
		if cut != nil {
			span.Event("connectivity-cut",
				obs.A("round", round), obs.A("component_cells", len(cut)))
			extraCuts = append(extraCuts, cut)
			continue
		}
		if err := plan.Path.ValidateComplete(chip); err != nil {
			return Plan{}, fmt.Errorf("washpath: ILP produced invalid path: %w", err)
		}
		if !plan.Path.Covers(req.Targets) {
			return Plan{}, fmt.Errorf("washpath: ILP path misses targets")
		}
		plan.Optimal = res.Status == milp.Optimal
		plan.Exact = true
		return plan, nil
	}
	return Plan{}, fmt.Errorf("washpath: connectivity cuts did not converge in %d rounds: %w", maxCuts, solve.ErrBudgetExceeded)
}

// model holds the variable layout of the path ILP.
type model struct {
	chip     *grid.Chip
	targets  []geom.Point
	cells    []geom.Point       // usable non-port cells
	cellVar  map[geom.Point]int // cell -> y variable
	fports   []*grid.Port
	wports   []*grid.Port
	fpVar    map[string]int // port id -> s/t variable
	wpVar    map[string]int
	n        int
	heur     Plan
	haveHeur bool
}

// newModel enumerates the usable cells and ports of the path ILP. The
// per-target distance sweeps (one BFS over the chip each) and the cell
// enumeration are the enumeration hot loops of the exact mode; the
// checkpoint aborts them with ErrBudgetExceeded, which BuildContext
// turns into the heuristic fallback.
func newModel(chip *grid.Chip, req Request, heur Plan, haveHeur bool, cp *solve.Checkpoint) (*model, error) {
	m := &model{
		chip: chip, targets: req.Targets,
		cellVar: map[geom.Point]int{},
		fpVar:   map[string]int{}, wpVar: map[string]int{},
		heur: heur, haveHeur: haveHeur,
	}
	forbidden := forbiddenDevCells(chip, req.Targets)

	// Locality pruning: with a heuristic of length L, any cell of a
	// shorter path lies within L hops of every target.
	var maxDist map[geom.Point]int
	if haveHeur {
		// A path shorter than the heuristic keeps every cell within
		// heuristic-length hops of each target, so farther cells can
		// only appear in tie solutions and are safely pruned.
		bound := heur.Path.Len()
		maxDist = map[geom.Point]int{}
		for _, t := range req.Targets {
			// One whole-chip BFS per target: poll without amortization.
			if err := cp.Err(); err != nil {
				return nil, fmt.Errorf("washpath: %w during model build: %w", solve.ErrBudgetExceeded, err)
			}
			d := route.Distances(chip, t, route.Options{AvoidDevices: forbidden})
			for p, dd := range d {
				if cur, ok := maxDist[p]; !ok || dd > cur {
					maxDist[p] = dd
				}
			}
		}
		for p, dd := range maxDist {
			if dd >= bound {
				delete(maxDist, p)
			}
		}
	}

	for _, p := range chip.RoutableCells() {
		if err := cp.Check(); err != nil {
			return nil, fmt.Errorf("washpath: %w during model build: %w", solve.ErrBudgetExceeded, err)
		}
		if chip.PortAt(p) != nil || forbidden[p] {
			continue
		}
		if maxDist != nil {
			if _, ok := maxDist[p]; !ok {
				continue
			}
		}
		m.cellVar[p] = m.n
		m.cells = append(m.cells, p)
		m.n++
	}
	for _, t := range req.Targets {
		if _, ok := m.cellVar[t]; !ok {
			return nil, nil // target pruned away: should not happen
		}
	}
	for _, p := range chip.FlowPorts() {
		if maxDist != nil && !adjacentToKnown(p.At, maxDist) {
			continue
		}
		m.fpVar[p.ID] = m.n
		m.fports = append(m.fports, p)
		m.n++
	}
	for _, p := range chip.WastePorts() {
		if maxDist != nil && !adjacentToKnown(p.At, maxDist) {
			continue
		}
		m.wpVar[p.ID] = m.n
		m.wports = append(m.wports, p)
		m.n++
	}
	if len(m.fports) == 0 || len(m.wports) == 0 {
		// Pruning removed all ports; fall back to every port.
		for _, p := range chip.FlowPorts() {
			if _, ok := m.fpVar[p.ID]; !ok {
				m.fpVar[p.ID] = m.n
				m.fports = append(m.fports, p)
				m.n++
			}
		}
		for _, p := range chip.WastePorts() {
			if _, ok := m.wpVar[p.ID]; !ok {
				m.wpVar[p.ID] = m.n
				m.wports = append(m.wports, p)
				m.n++
			}
		}
	}
	if m.n == 0 {
		return nil, nil
	}
	return m, nil
}

func adjacentToKnown(p geom.Point, known map[geom.Point]int) bool {
	if _, ok := known[p]; ok {
		return true
	}
	for _, q := range p.Neighbors() {
		if _, ok := known[q]; ok {
			return true
		}
	}
	return false
}

// problem assembles the MILP with the given extra connectivity cuts.
func (m *model) problem(cuts []map[int]float64) *milp.Problem {
	p := milp.NewProblem(0)
	for i := 0; i < m.n; i++ {
		p.AddBinary()
	}
	// Objective: path length in cells (ports count once each, constant).
	for _, c := range m.cells {
		p.SetObjective(m.cellVar[c], 1)
	}

	// Eq. 12: one flow port, one waste port.
	fsum := map[int]float64{}
	for _, fp := range m.fports {
		fsum[m.fpVar[fp.ID]] = 1
	}
	p.LP.AddConstraint(fsum, lp.EQ, 1, "eq12-flow")
	wsum := map[int]float64{}
	for _, wp := range m.wports {
		wsum[m.wpVar[wp.ID]] = 1
	}
	p.LP.AddConstraint(wsum, lp.EQ, 1, "eq12-waste")

	// Eq. 13: exactly one neighbour of a chosen port is occupied; an
	// unchosen port contributes no requirement.
	portDegree := func(at geom.Point, v int, name string) {
		coefs := map[int]float64{}
		cnt := 0
		for _, q := range at.Neighbors() {
			if j, ok := m.cellVar[q]; ok {
				coefs[j] = 1
				cnt++
			}
		}
		if cnt == 0 {
			// Port has no usable neighbour: cannot be chosen.
			p.LP.AddConstraint(map[int]float64{v: 1}, lp.EQ, 0, name+"-isolated")
			return
		}
		lo := map[int]float64{}
		for j, c := range coefs {
			lo[j] = c
		}
		lo[v] = -1
		p.LP.AddConstraint(lo, lp.GE, 0, name+"-lo") // sum >= chosen
		hi := map[int]float64{}
		for j, c := range coefs {
			hi[j] = c
		}
		hi[v] = float64(cnt - 1)
		p.LP.AddConstraint(hi, lp.LE, float64(cnt), name+"-hi") // sum <= 1 if chosen
	}
	for _, fp := range m.fports {
		portDegree(fp.At, m.fpVar[fp.ID], "eq13-"+fp.ID)
	}
	for _, wp := range m.wports {
		portDegree(wp.At, m.wpVar[wp.ID], "eq13-"+wp.ID)
	}

	// Eq. 14: occupied non-port cells have exactly two occupied
	// neighbours (chosen ports count as neighbours).
	for _, c := range m.cells {
		v := m.cellVar[c]
		coefs := map[int]float64{}
		cnt := 0
		for _, q := range c.Neighbors() {
			if j, ok := m.cellVar[q]; ok {
				coefs[j] += 1
				cnt++
				continue
			}
			if pt := m.chip.PortAt(q); pt != nil {
				if j, ok := m.fpVar[pt.ID]; ok && pt.Kind == grid.FlowPort {
					coefs[j] += 1
					cnt++
				} else if j, ok := m.wpVar[pt.ID]; ok && pt.Kind == grid.WastePort {
					coefs[j] += 1
					cnt++
				}
			}
		}
		if cnt < 2 {
			// Dead-end cell can never be on a path.
			p.LP.AddConstraint(map[int]float64{v: 1}, lp.EQ, 0, fmt.Sprintf("eq14-deadend-%v", c))
			continue
		}
		lo := map[int]float64{}
		for j, cf := range coefs {
			lo[j] = cf
		}
		lo[v] += -2
		p.LP.AddConstraint(lo, lp.GE, 0, fmt.Sprintf("eq14-lo-%v", c))
		hi := map[int]float64{}
		for j, cf := range coefs {
			hi[j] = cf
		}
		hi[v] += float64(cnt - 2)
		p.LP.AddConstraint(hi, lp.LE, float64(cnt), fmt.Sprintf("eq14-hi-%v", c))
	}

	// Eq. 15: all targets covered.
	for _, t := range m.targets {
		p.LP.AddConstraint(map[int]float64{m.cellVar[t]: 1}, lp.EQ, 1, fmt.Sprintf("eq15-%v", t))
	}

	// Lazy connectivity cuts from earlier rounds.
	for i, cut := range cuts {
		rhs := -1.0
		coefs := map[int]float64{}
		for v, cf := range cut {
			coefs[v] = cf
			rhs += cf
		}
		p.LP.AddConstraint(coefs, lp.LE, rhs, fmt.Sprintf("cut-%d", i))
	}
	return p
}

// extract reads the solution: either a valid plan, or a connectivity cut
// (the y-variables of a component disconnected from the chosen port).
func (m *model) extract(x []float64) (Plan, map[int]float64) {
	sel := map[geom.Point]bool{}
	for _, c := range m.cells {
		if x[m.cellVar[c]] > 0.5 {
			sel[c] = true
		}
	}
	var fp, wp *grid.Port
	for _, f := range m.fports {
		if x[m.fpVar[f.ID]] > 0.5 {
			fp = f
		}
	}
	for _, w := range m.wports {
		if x[m.wpVar[w.ID]] > 0.5 {
			wp = w
		}
	}
	// Walk from the flow port through selected cells.
	var cellsInPath []geom.Point
	cellsInPath = append(cellsInPath, fp.At)
	visited := map[geom.Point]bool{fp.At: true}
	cur := fp.At
	for {
		var next geom.Point
		found := false
		for _, q := range cur.Neighbors() {
			if visited[q] {
				continue
			}
			if sel[q] {
				next, found = q, true
				break
			}
			if q == wp.At {
				next, found = q, true
				break
			}
		}
		if !found {
			break
		}
		cellsInPath = append(cellsInPath, next)
		visited[next] = true
		cur = next
		if cur == wp.At {
			break
		}
	}
	// Any selected cell not visited forms a disconnected component:
	// emit a cut forbidding that exact component.
	var orphan []geom.Point
	for c := range sel {
		if !visited[c] {
			orphan = append(orphan, c)
		}
	}
	if len(orphan) > 0 {
		// Collect one connected component of the orphans.
		comp := component(orphan[0], sel, visited)
		cut := map[int]float64{}
		for _, c := range comp {
			cut[m.cellVar[c]] = 1
		}
		return Plan{}, cut
	}
	if cur != wp.At {
		// Walk died before the waste port (should not happen when the
		// degree constraints hold); forbid the whole selection.
		cut := map[int]float64{}
		for c := range sel {
			cut[m.cellVar[c]] = 1
		}
		return Plan{}, cut
	}
	return Plan{Path: grid.NewPath(cellsInPath...), FlowPort: fp, WastePort: wp}, nil
}

func component(start geom.Point, sel, exclude map[geom.Point]bool) []geom.Point {
	seen := map[geom.Point]bool{start: true}
	stack := []geom.Point{start}
	var out []geom.Point
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, p)
		for _, q := range p.Neighbors() {
			if sel[q] && !exclude[q] && !seen[q] {
				seen[q] = true
				stack = append(stack, q)
			}
		}
	}
	return out
}
