package washpath

import (
	"testing"

	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
)

func TestChainDecomposeStraight(t *testing.T) {
	cells := []geom.Point{geom.Pt(2, 2), geom.Pt(3, 2), geom.Pt(4, 2)}
	parts := chainDecompose(cells)
	if len(parts) != 1 || len(parts[0]) != 3 {
		t.Fatalf("parts = %v", parts)
	}
}

func TestChainDecomposeTee(t *testing.T) {
	// A T shape: horizontal bar + vertical stem through the middle.
	cells := []geom.Point{
		geom.Pt(2, 2), geom.Pt(3, 2), geom.Pt(4, 2), // bar
		geom.Pt(3, 3), geom.Pt(3, 4), // stem
	}
	parts := chainDecompose(cells)
	if len(parts) < 2 {
		t.Fatalf("T shape needs >= 2 chains: %v", parts)
	}
	total := 0
	for _, p := range parts {
		total += len(p)
		for i := 1; i < len(p); i++ {
			if !p[i-1].Adjacent(p[i]) {
				t.Fatalf("chain not contiguous: %v", p)
			}
		}
	}
	if total != len(cells) {
		t.Fatalf("decomposition lost cells: %d of %d", total, len(cells))
	}
}

func TestChainDecomposeDisconnected(t *testing.T) {
	cells := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 5), geom.Pt(6, 5)}
	parts := chainDecompose(cells)
	if len(parts) != 2 {
		t.Fatalf("parts = %v", parts)
	}
}

func TestConnectedParts(t *testing.T) {
	cells := []geom.Point{
		geom.Pt(1, 1), geom.Pt(2, 1),
		geom.Pt(5, 5),
		geom.Pt(8, 1), geom.Pt(8, 2), geom.Pt(8, 3),
	}
	parts := connectedParts(cells)
	if len(parts) != 3 {
		t.Fatalf("parts = %v", parts)
	}
	sizes := map[int]bool{}
	for _, p := range parts {
		sizes[len(p)] = true
	}
	if !sizes[1] || !sizes[2] || !sizes[3] {
		t.Fatalf("unexpected component sizes: %v", parts)
	}
}

func TestBuildCoverSinglePath(t *testing.T) {
	c := meshChip(t, 8, 8)
	targets := []geom.Point{geom.Pt(3, 3), geom.Pt(4, 3)}
	plans, covered, err := BuildCover(c, targets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 {
		t.Fatalf("expected one plan, got %d", len(plans))
	}
	if !plans[0].Path.Covers(covered[0]) {
		t.Fatal("plan does not cover its targets")
	}
}

func TestBuildCoverSplitsTee(t *testing.T) {
	c := meshChip(t, 9, 9)
	targets := []geom.Point{
		geom.Pt(3, 4), geom.Pt(4, 4), geom.Pt(5, 4), // bar
		geom.Pt(4, 3), geom.Pt(4, 5), // stem up and down (plus shape)
	}
	plans, covered, err := BuildCover(c, targets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 2 {
		t.Fatalf("plus shape needs >= 2 paths, got %d", len(plans))
	}
	seen := map[geom.Point]bool{}
	for i, p := range plans {
		if err := p.Path.ValidateComplete(c); err != nil {
			t.Errorf("plan %d: %v", i, err)
		}
		if !p.Path.Covers(covered[i]) {
			t.Errorf("plan %d misses its targets", i)
		}
		for _, cell := range covered[i] {
			seen[cell] = true
		}
	}
	for _, cell := range targets {
		if !seen[cell] {
			t.Errorf("target %v not covered by any plan", cell)
		}
	}
}

func TestBuildCoverDeviceAndChannel(t *testing.T) {
	// Device block whose cells are targets plus a channel chain hanging
	// off it: must come back as either one snake path or a split cover.
	c := grid.NewChip("mix", 12, 8)
	if _, err := c.AddPort("in1", grid.FlowPort, geom.Pt(1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddPort("out1", grid.WastePort, geom.Pt(10, 7)); err != nil {
		t.Fatal(err)
	}
	d, err := c.AddDevice("mix", grid.Mixer, geom.Rc(4, 2, 6, 4))
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 8; y++ {
		for x := 0; x < 12; x++ {
			p := geom.Pt(x, y)
			if c.DeviceAt(p) == nil && c.PortAt(p) == nil {
				if err := c.AddChannel(p); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	targets := append(d.Cells(), geom.Pt(6, 2), geom.Pt(7, 2))
	// (6,2)? that's inside the device; use channel cells east of it.
	targets = append(d.Cells(), geom.Pt(6, 2))
	targets = []geom.Point{geom.Pt(4, 2), geom.Pt(5, 2), geom.Pt(4, 3), geom.Pt(5, 3), geom.Pt(6, 3), geom.Pt(7, 3)}
	plans, covered, err := BuildCover(c, targets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[geom.Point]bool{}
	for i := range plans {
		for _, cell := range covered[i] {
			seen[cell] = true
		}
	}
	for _, cell := range targets {
		if !seen[cell] {
			t.Errorf("target %v uncovered", cell)
		}
	}
}
