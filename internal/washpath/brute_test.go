package washpath

import (
	"testing"
	"time"

	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
)

// bruteMinimal enumerates every simple complete path (flow port to
// waste port) that covers the targets by depth-first search and returns
// the minimal cell count, or -1 if none exists. Exponential — only for
// tiny fixtures.
func bruteMinimal(c *grid.Chip, targets []geom.Point) int {
	best := -1
	tset := map[geom.Point]bool{}
	for _, t := range targets {
		tset[t] = true
	}
	var visited map[geom.Point]bool
	var dfs func(cur geom.Point, length, covered int)
	dfs = func(cur geom.Point, length, covered int) {
		if best > 0 && length >= best {
			return
		}
		if pt := c.PortAt(cur); pt != nil && pt.Kind == grid.WastePort {
			if covered == len(tset) && (best < 0 || length < best) {
				best = length
			}
			return
		}
		for _, n := range cur.Neighbors() {
			if !c.InBounds(n) || !c.Routable(n) || visited[n] {
				continue
			}
			if pt := c.PortAt(n); pt != nil && pt.Kind == grid.FlowPort {
				continue
			}
			add := 0
			if tset[n] {
				add = 1
			}
			visited[n] = true
			dfs(n, length+1, covered+add)
			visited[n] = false
		}
	}
	for _, fp := range c.FlowPorts() {
		visited = map[geom.Point]bool{fp.At: true}
		dfs(fp.At, 1, 0)
	}
	return best
}

// tinyChip is a 6x5 mesh with interior hole, two flow and two waste ports.
func tinyChip(t *testing.T) *grid.Chip {
	t.Helper()
	c := grid.NewChip("tiny", 6, 5)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	_, err := c.AddPort("in1", grid.FlowPort, geom.Pt(0, 1))
	must(err)
	_, err = c.AddPort("in2", grid.FlowPort, geom.Pt(2, 0))
	must(err)
	_, err = c.AddPort("out1", grid.WastePort, geom.Pt(5, 3))
	must(err)
	_, err = c.AddPort("out2", grid.WastePort, geom.Pt(3, 4))
	must(err)
	for y := 0; y < 5; y++ {
		for x := 0; x < 6; x++ {
			p := geom.Pt(x, y)
			if p == geom.Pt(2, 2) { // hole: forces detours
				continue
			}
			if c.PortAt(p) == nil {
				must(c.AddChannel(p))
			}
		}
	}
	must(c.Validate())
	return c
}

// TestExactILPMatchesBruteForce verifies the path ILP's optimality
// claim against exhaustive enumeration on a tiny chip.
func TestExactILPMatchesBruteForce(t *testing.T) {
	c := tinyChip(t)
	cases := [][]geom.Point{
		{geom.Pt(1, 2)},
		{geom.Pt(4, 1)},
		{geom.Pt(1, 3), geom.Pt(2, 3)},
		{geom.Pt(3, 1), geom.Pt(3, 2)},
		{geom.Pt(4, 2), geom.Pt(4, 3)},
	}
	for i, targets := range cases {
		want := bruteMinimal(c, targets)
		if want < 0 {
			t.Fatalf("case %d: brute force found no path", i)
		}
		plan, err := Build(c, Request{Targets: targets},
			Options{Exact: true, TimeLimit: 30 * time.Second})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !plan.Optimal {
			t.Errorf("case %d: optimality not proven", i)
		}
		if plan.Path.Len() != want {
			t.Errorf("case %d: ILP %d cells, brute force %d (targets %v)",
				i, plan.Path.Len(), want, targets)
		}
	}
}
