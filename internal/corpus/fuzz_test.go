package corpus

import (
	"context"
	"testing"
	"time"
)

// FuzzGenerate drives arbitrary parameter tuples through the full
// generate → validate → solve pipeline. Whatever the inputs, Generate
// must never panic; every accepted instance must be deterministic
// (same params, same fingerprint) and structurally valid; and small
// instances additionally go through the washability proof, whose
// solver stack (synthesis, PDW heuristics, DAWO, verifier, sim
// replay) must not panic either — rejection is fine, crashing is not.
// The committed corpus under testdata/fuzz/FuzzGenerate seeds one
// tuple per DAG shape plus the boundary cases that found nothing by
// accident: zero/negative/huge op counts, out-of-range shapes and
// densities.
func FuzzGenerate(f *testing.F) {
	f.Add(uint64(1), 8, 0, 0.5, 0.5)
	f.Add(uint64(2), 10, 1, 1.0, 0.0)
	f.Add(uint64(3), 12, 2, 0.25, 1.0)
	f.Add(uint64(4), 6, 3, 0.6, 0.5)
	f.Add(uint64(0), 0, 0, 0.0, 0.0)
	f.Add(uint64(99), -5, 17, -1.0, 2.0)
	f.Add(uint64(7), 1, 2, 1.5, 0.3)
	f.Add(^uint64(0), 200000, -1, 0.9, 0.9)

	f.Fuzz(func(t *testing.T, seed uint64, ops, shape int, density, reagentRate float64) {
		p := Params{
			Seed:        seed,
			Ops:         ops,
			Shape:       Shape(shape),
			Density:     density,
			ReagentRate: reagentRate,
		}
		b, err := Generate(p)
		if err != nil {
			return // out-of-range params are rejected, not crashed on
		}
		// Accepted instances are pure functions of their params.
		b2, err := Generate(p)
		if err != nil {
			t.Fatalf("second Generate of accepted params failed: %v", err)
		}
		f1, err := Fingerprint(b)
		if err != nil {
			t.Fatalf("fingerprint: %v", err)
		}
		f2, err := Fingerprint(b2)
		if err != nil {
			t.Fatalf("fingerprint: %v", err)
		}
		if f1 != f2 {
			t.Fatalf("same params, different fingerprints: %s vs %s", f1, f2)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := Validate(ctx, b, LevelStructural); err != nil {
			t.Fatalf("generated instance fails structural validation: %v", err)
		}
		// Every accepted instance goes through the full washability
		// proof — the solve stage of the pipeline — under a short
		// deadline. Unwashable and over-budget draws are legitimate
		// (the error is discarded); the assertion is that the solvers
		// never panic and, thanks to the checkpointed hot loops, return
		// promptly when the deadline expires. This used to be gated on
		// ops <= 12 && reagentRate <= 1 because reagent-heavy draws
		// overran the deadline by tens of seconds and tripped the
		// fuzzer's hang detector; the seed corpus keeps one
		// reagent-heavy tuple (seed-slow-pipeline) to pin exactly that
		// bounded-overrun behavior.
		wctx, wcancel := context.WithTimeout(ctx, 2*time.Second)
		_ = Validate(wctx, b, LevelWashable)
		wcancel()
	})
}
