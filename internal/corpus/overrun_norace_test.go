//go:build !race

package corpus

// raceFactor scales the overrun bounds of TestDeadlineOverrunBounded.
// Without the race detector the observed tails sit well inside the
// unscaled bounds.
const raceFactor = 1
