package corpus

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"pathdriverwash/internal/contam"
	"pathdriverwash/internal/dawo"
	"pathdriverwash/internal/obs"
	"pathdriverwash/internal/pdw"
	"pathdriverwash/internal/schedule"
	"pathdriverwash/internal/solve"
)

// Reagent-dense corpus draws whose exact PDW run reliably needs far
// more than two seconds, so a 2 s deadline always lands mid-solve.
// Both were chosen empirically for small post-cancellation completion
// tails (~15 ms and ~70 ms without the race detector), leaving real
// margin under the bounds below.
var overrunInstances = []Params{
	{Name: "overrun-pipeline", Seed: 1, Ops: 8, Shape: Pipeline, Density: 0.5, ReagentRate: 8},
	{Name: "overrun-diamond", Seed: 5, Ops: 10, Shape: Diamond, Density: 1, ReagentRate: 8},
}

// synthesize builds the wash-free base schedule without any deadline.
func synthesize(t *testing.T, p Params) *schedule.Schedule {
	t.Helper()
	b, err := Generate(p)
	if err != nil {
		t.Fatalf("Generate(%s): %v", p.Name, err)
	}
	syn, err := b.SynthesizeContext(context.Background())
	if err != nil {
		t.Fatalf("Synthesize(%s): %v", p.Name, err)
	}
	return syn.Schedule
}

// TestDeadlineOverrunBounded is the regression test for the bounded-
// overrun cancellation contract (DESIGN.md "Cancellation granularity
// contract"): on reagent-dense instances whose solves used to blow a
// context deadline by 30+ seconds, every solver must now return within
// a small bound of the deadline, and must degrade — not corrupt — its
// result. The bounds encode the two-part overrun model: checkpoint
// granularity (stride x the most expensive polled unit) plus the
// cheap-mode completion tail of whatever fixpoint must still finish.
// `make overrun` runs this test under -race; raceFactor stretches the
// bounds accordingly.
func TestDeadlineOverrunBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("deadline-overrun regression needs multi-second solves")
	}

	// PDW, exact options: the deadline lands mid wash-insertion or mid
	// window-MILP; the fixpoint still completes in cheap mode and the
	// returned schedule is clean, valid, and flagged Canceled. The
	// pdw_deadline_overrun_seconds histogram must have recorded the
	// overrun: it is the production-side evidence of this contract.
	t.Run("pdw", func(t *testing.T) {
		const deadline = 2 * time.Second
		bound := 150 * time.Millisecond * raceFactor

		obs.Enable()
		defer obs.Disable()
		hist := obs.Default().Histogram("pdw_deadline_overrun_seconds",
			[]float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10})

		for _, p := range overrunInstances {
			base := synthesize(t, p)
			before := hist.Count()
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			start := time.Now()
			res, err := pdw.OptimizeContext(ctx, base, pdw.Options{})
			over := time.Since(start) - deadline
			cancel()
			if err != nil {
				t.Fatalf("%s: pdw errored instead of degrading: %v", p.Name, err)
			}
			if !res.Stats.Canceled {
				t.Errorf("%s: finished in %v under a %v deadline — no longer a deadline-busting instance",
					p.Name, deadline+over, deadline)
			}
			if over > bound {
				t.Errorf("%s: pdw overran its deadline by %v (bound %v)", p.Name, over, bound)
			}
			if err := res.Schedule.Validate(); err != nil {
				t.Errorf("%s: canceled pdw returned an invalid schedule: %v", p.Name, err)
			}
			if err := contam.Verify(res.Schedule); err != nil {
				t.Errorf("%s: canceled pdw returned a contaminated schedule: %v", p.Name, err)
			}
			if hist.Count() == before {
				t.Errorf("%s: overrun not recorded in pdw_deadline_overrun_seconds", p.Name)
			}
		}
	})

	// DAWO never aborts — an unconverged schedule is still contaminated,
	// so there is no partial incumbent to return. The contract is
	// instead that the full fixpoint, started with its deadline ALREADY
	// expired, completes in cheap mode within the tail bound.
	t.Run("dawo-completion-tail", func(t *testing.T) {
		bound := 300 * time.Millisecond * raceFactor
		for _, p := range overrunInstances {
			base := synthesize(t, p)
			ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
			<-ctx.Done()
			start := time.Now()
			res, err := dawo.OptimizeContext(ctx, base, dawo.Options{})
			wall := time.Since(start)
			cancel()
			if err != nil {
				t.Fatalf("%s: dawo errored instead of completing: %v", p.Name, err)
			}
			if !res.Stats.Canceled {
				t.Errorf("%s: dawo under an expired deadline did not mark Canceled", p.Name)
			}
			if wall > bound {
				t.Errorf("%s: dawo completion tail %v exceeds bound %v", p.Name, wall, bound)
			}
			if err := res.Schedule.Validate(); err != nil {
				t.Errorf("%s: canceled dawo returned an invalid schedule: %v", p.Name, err)
			}
			if err := contam.Verify(res.Schedule); err != nil {
				t.Errorf("%s: canceled dawo returned a contaminated schedule: %v", p.Name, err)
			}
		}
	})

	// Synthesis has no degraded mode — a half-built schedule is useless
	// — so its contract is a prompt ErrBudgetExceeded abort. A dense
	// 400-op layered DAG keeps the scheduler busy for whole seconds;
	// the 100 ms deadline must stop it almost immediately.
	t.Run("synth-abort", func(t *testing.T) {
		const deadline = 100 * time.Millisecond
		bound := 100 * time.Millisecond * raceFactor
		p := Params{Name: "overrun-synth", Seed: 23, Ops: 400, Shape: Layered, Density: 1, ReagentRate: 2}
		b, err := Generate(p)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		defer cancel()
		start := time.Now()
		_, err = b.SynthesizeContext(ctx)
		over := time.Since(start) - deadline
		if !errors.Is(err, solve.ErrBudgetExceeded) {
			t.Fatalf("synth under a %v deadline returned %v, want ErrBudgetExceeded", deadline, err)
		}
		if over > bound {
			t.Errorf("synth overran its deadline by %v (bound %v)", over, bound)
		}
	})
}

// TestSweepSubDeadline pins GenerateSweep's per-slot budget split: a
// slot that cannot finish inside remaining/(slots remaining) fails the
// sweep with an error naming the slot — it is never resampled or
// skipped, which would make the emitted corpus depend on machine speed
// instead of the config alone.
func TestSweepSubDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a deliberately starved multi-second washability probe")
	}
	// Slot 0's share of the sweep budget is 150ms/3 = 50 ms; the full
	// washability proof of a dense reagent-heavy 16-op draw needs an
	// order of magnitude more even in heuristic mode, so the starved
	// slot must trip its sub-deadline, not sneak through.
	cfg := SweepConfig{
		Seed: 7, N: 3, MinOps: 16, MaxOps: 16,
		Shapes:      []Shape{Pipeline},
		Densities:   []float64{1},
		ReagentRate: 8,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	out, err := GenerateSweep(ctx, cfg)
	if err == nil {
		t.Fatalf("starved sweep succeeded with %d instances, want slot sub-deadline failure", len(out))
	}
	if !errors.Is(err, solve.ErrBudgetExceeded) {
		t.Errorf("sweep error %v does not wrap solve.ErrBudgetExceeded", err)
	}
	if !strings.Contains(err.Error(), "slot 0") {
		t.Errorf("sweep error %q does not name the starved slot", err)
	}

	// An already-exhausted budget fails before any slot runs.
	expired, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	<-expired.Done()
	if _, err := GenerateSweep(expired, cfg); err == nil || !errors.Is(err, solve.ErrBudgetExceeded) {
		t.Errorf("exhausted sweep returned %v, want ErrBudgetExceeded", err)
	}
}
