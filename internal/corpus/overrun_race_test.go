//go:build race

package corpus

// raceFactor scales the overrun bounds of TestDeadlineOverrunBounded.
// The race detector slows the solvers' straight-line work by roughly
// an order of magnitude, which stretches both the checkpoint stride
// interval and the post-cancellation completion tail by the same
// amount; `make overrun` runs this test under -race, so the bounds
// scale rather than flake.
const raceFactor = 10
