// Package corpus mints benchmark instances at scale: a seeded,
// property-validated generator that grows the three hand-tuned
// synthetics of Table II into parameter sweeps over grid sizes,
// operation counts, DAG shapes, and contamination densities — plus a
// differential oracle (oracle.go) that cross-checks PDW, DAWO, and the
// exact wash-path ILP on every generated instance.
//
// Two properties make the corpus usable as regression-radar input:
//
//   - Determinism: the same Params always produce the same instance,
//     byte for byte (Fingerprint), across processes and Go releases.
//     The sweep planner derives every per-instance seed from the sweep
//     seed with splitmix64, so shard i of n generates exactly the same
//     instances whether the sweep runs in one process or sixteen.
//   - Validity: an instance only counts once Validate accepts it — the
//     assay validates, synthesis succeeds, the wash-free schedule
//     passes schedule.Validate, and (at LevelWashable) a heuristic
//     wash pass proves the instance contamination-free washable.
package corpus

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"pathdriverwash/internal/assayio"
	"pathdriverwash/internal/benchmarks"
)

// Shape selects the dependency-DAG family of a generated instance.
type Shape int

const (
	// Layered is the free-form layered DAG of the Table II synthetics:
	// ops spread over layers with random forward edges.
	Layered Shape = iota
	// Pipeline is a single serial chain o1 -> o2 -> ... -> oN, the
	// schedule shape of deep sequential protocols.
	Pipeline
	// Diamond is a chain of fork-join diamonds: an opener fans out to
	// Branch parallel ops which join again, repeatedly.
	Diamond
	// Panel is Branch independent chains sharing one device library —
	// the multiplexed-panel shape of Kinase act-2.
	Panel
)

// Shapes lists every generator shape in sweep order.
func Shapes() []Shape { return []Shape{Layered, Pipeline, Diamond, Panel} }

// String names the shape.
func (s Shape) String() string {
	switch s {
	case Layered:
		return "layered"
	case Pipeline:
		return "pipeline"
	case Diamond:
		return "diamond"
	case Panel:
		return "panel"
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// Params fully determines one generated instance.
type Params struct {
	// Name labels the instance (sweeps derive stable names; empty
	// derives one from the other fields).
	Name string
	// Seed drives every random choice. Two calls with equal Params are
	// byte-identical.
	Seed uint64
	// Ops is the operation count (>= 1).
	Ops int
	// Shape selects the DAG family.
	Shape Shape
	// Branch is the fan-out of Diamond forks / the chain count of Panel
	// (default 3; ignored by Pipeline and Layered).
	Branch int
	// Density in [0,1] is the contamination density: the probability
	// that an operation mints a fresh fluid type instead of reusing an
	// already-flowing one. At 1 every product is hostile to every other
	// (maximum wash demand); at 0 the assay reuses few fluid types and
	// the Type-2 same-fluid rule excuses most crossings.
	Density float64
	// ReagentRate is the expected number of extra reagent injections
	// per operation beyond the one every source op must consume
	// (default 0.5, capped at 8 — beyond that the injection load
	// dwarfs the assay itself and solve times explode).
	ReagentRate float64
	// Devices is the total device budget, which also sets the chip
	// size: synthesis places devices on a street grid of side
	// ~3*ceil(sqrt(Devices))+3 cells, so 4 devices give a 9-cell side
	// and 400 devices a 63-cell side. 0 derives max(3, Ops/2) capped
	// at 40.
	Devices int
}

// withDefaults fills the derived fields.
func (p Params) withDefaults() Params {
	if p.Branch <= 0 {
		p.Branch = 3
	}
	if p.ReagentRate < 0 {
		p.ReagentRate = 0
	}
	if p.ReagentRate > 8 {
		p.ReagentRate = 8
	}
	if p.Density < 0 {
		p.Density = 0
	}
	if p.Density > 1 {
		p.Density = 1
	}
	if p.Devices <= 0 {
		p.Devices = p.Ops / 2
		if p.Devices < 3 {
			p.Devices = 3
		}
		if p.Devices > 40 {
			p.Devices = 40
		}
	}
	if p.Name == "" {
		p.Name = fmt.Sprintf("c-%s-o%d-d%02.0f-s%x", p.Shape, p.Ops, p.Density*100, p.Seed)
	}
	return p
}

// splitmix64 is the seed-derivation PRNG: unlike the xorshift used for
// per-instance choices it never maps a seed to itself and handles the
// zero state, so corpus seed 0 and instance index 0 still diverge.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rng is the instance-local deterministic PRNG (xorshift64, seeded via
// splitmix64 so a zero seed is safe).
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: splitmix64(seed) | 1} }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// float returns a float64 in [0,1).
func (r *rng) float() float64 { return float64(r.next()%1_000_000) / 1_000_000 }

// Fingerprint canonically serializes the instance (assayio document
// JSON) and hashes it; equal fingerprints mean byte-identical
// instances. Tests use it to pin generator determinism.
func Fingerprint(b *benchmarks.Benchmark) (string, error) {
	var buf bytes.Buffer
	if err := assayio.Encode(&buf, b.Assay, b.Config); err != nil {
		return "", fmt.Errorf("corpus: fingerprint %s: %w", b.Name, err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:8]), nil
}
