package corpus

import (
	"context"
	"fmt"
	"time"

	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/contam"
	"pathdriverwash/internal/dawo"
	"pathdriverwash/internal/pdw"
	"pathdriverwash/internal/sim"
	"pathdriverwash/internal/solve"
)

// Level selects how much of the validation pipeline an instance must
// pass before it counts as corpus member.
type Level int

const (
	// LevelWashable — the zero value, and the generator's contract for
	// corpus membership: on top of the structural checks the instance
	// is proven contamination-free washable by BOTH optimizers. A fast
	// heuristic PDW pass (BFS paths, greedy windows) and a DAWO pass
	// must each converge to a schedule that contam.Verify accepts, and
	// the PDW schedule must replay contamination-free through the
	// internal/sim executor. Requiring both keeps the differential
	// oracle total: every corpus instance supports a PDW-vs-DAWO
	// comparison (the two methods issue different wash demands, so
	// solvability under one does not imply the other).
	LevelWashable Level = iota
	// LevelStructural opts out of the washability proof: the assay
	// validates, synthesis succeeds, and the wash-free schedule passes
	// schedule.Validate. Cheap enough for thousand-op instances.
	LevelStructural
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelStructural:
		return "structural"
	case LevelWashable:
		return "washable"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// washableProbe are the solver options of the washability proof: pure
// heuristics (no ILPs) under a hard budget, so validation stays fast
// even when a generated instance is wash-heavy.
func washableProbe() pdw.Options {
	return pdw.Options{
		HeuristicPaths:   true,
		HeuristicWindows: true,
		Budget:           solve.Budget{Total: 30 * time.Second},
	}
}

// Validate checks one generated instance against the given level.
func Validate(ctx context.Context, b *benchmarks.Benchmark, level Level) error {
	if err := b.Assay.Validate(); err != nil {
		return fmt.Errorf("corpus: %s: assay: %w", b.Name, err)
	}
	syn, err := b.SynthesizeContext(ctx)
	if err != nil {
		return fmt.Errorf("corpus: %s: synthesize: %w", b.Name, err)
	}
	if err := syn.Schedule.Validate(); err != nil {
		return fmt.Errorf("corpus: %s: base schedule: %w", b.Name, err)
	}
	if level == LevelStructural {
		return nil
	}
	res, err := pdw.OptimizeContext(ctx, syn.Schedule, washableProbe())
	if err != nil {
		return fmt.Errorf("corpus: %s: not washable: %w", b.Name, err)
	}
	if err := contam.VerifyContext(ctx, res.Schedule); err != nil {
		return fmt.Errorf("corpus: %s: washed schedule still contaminated: %w", b.Name, err)
	}
	rep := sim.Run(res.Schedule)
	if vs := rep.ByClass(sim.Contamination); len(vs) > 0 {
		return fmt.Errorf("corpus: %s: sim replay found contamination: %v", b.Name, vs[0])
	}
	dres, err := dawo.OptimizeContext(ctx, syn.Schedule, dawo.Options{
		Budget: solve.Budget{Total: 30 * time.Second},
	})
	if err != nil {
		return fmt.Errorf("corpus: %s: not washable under dawo: %w", b.Name, err)
	}
	if err := contam.VerifyContext(ctx, dres.Schedule); err != nil {
		return fmt.Errorf("corpus: %s: dawo schedule still contaminated: %w", b.Name, err)
	}
	return nil
}

// GenerateValidated generates one instance and validates it before
// returning — the only constructor sweeps use, so no unvalidated
// instance ever enters a corpus.
func GenerateValidated(ctx context.Context, p Params, level Level) (*benchmarks.Benchmark, error) {
	b, err := GenerateContext(ctx, p)
	if err != nil {
		return nil, err
	}
	if err := Validate(ctx, b, level); err != nil {
		return nil, err
	}
	return b, nil
}
