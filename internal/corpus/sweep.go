package corpus

import (
	"context"
	"fmt"
	"math"
	"time"

	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/solve"
)

// SweepConfig describes a seeded parameter sweep. The planner is a
// pure function of the config: Plan(cfg)[i] depends only on cfg and i,
// so shards of the same sweep agree on every instance no matter how
// the index range is split across processes.
type SweepConfig struct {
	// Seed is the sweep master seed; instance i uses
	// splitmix64(Seed ^ i) so per-instance streams never overlap.
	Seed uint64
	// N is the instance count.
	N int
	// MinOps / MaxOps bound the operation counts; instances spread
	// log-uniformly between them (defaults 6 and 24 — oracle-friendly;
	// raise MaxOps toward 10^3 for scaling sweeps).
	MinOps, MaxOps int
	// Shapes cycles through the DAG families (default Shapes()).
	Shapes []Shape
	// Densities cycles through contamination densities (default
	// 0.25, 0.6, 1.0).
	Densities []float64
	// ReagentRate forwards to Params (default 0.5).
	ReagentRate float64
	// Devices forwards to Params (0 derives per instance).
	Devices int
	// Level is the validation gate every instance must pass
	// (default LevelWashable).
	Level Level
}

func (c SweepConfig) withDefaults() SweepConfig {
	if c.MinOps <= 0 {
		c.MinOps = 6
	}
	if c.MaxOps < c.MinOps {
		c.MaxOps = 24
		if c.MaxOps < c.MinOps {
			c.MaxOps = c.MinOps
		}
	}
	if len(c.Shapes) == 0 {
		c.Shapes = Shapes()
	}
	if len(c.Densities) == 0 {
		c.Densities = []float64{0.25, 0.6, 1.0}
	}
	if c.ReagentRate == 0 {
		c.ReagentRate = 0.5
	}
	return c
}

// Plan enumerates the sweep's instance parameters without generating
// anything. Shapes and densities cycle so every combination appears;
// operation counts spread log-uniformly over [MinOps, MaxOps] driven
// by the per-instance seed. Plan lists each slot's first draw;
// GenerateSweep resamples a slot deterministically when that draw
// fails validation, so the emitted corpus can diverge from the plan on
// slots whose first draw was rejected.
func Plan(cfg SweepConfig) []Params {
	cfg = cfg.withDefaults()
	out := make([]Params, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		out = append(out, planSlot(cfg, i, 0))
	}
	return out
}

// planSlot derives the parameters of one (slot, attempt) draw. The
// per-draw seed mixes the slot index and the attempt counter so
// resampling a rejected draw explores a fresh deterministic stream,
// and every shard of the same sweep agrees on each slot's sequence of
// draws no matter how the slots are split across processes.
func planSlot(cfg SweepConfig, slot, attempt int) Params {
	seed := splitmix64(cfg.Seed ^ uint64(slot) ^ uint64(attempt)<<32)
	r := newRNG(seed)
	span := math.Log(float64(cfg.MaxOps) / float64(cfg.MinOps))
	ops := int(math.Round(float64(cfg.MinOps) * math.Exp(r.float()*span)))
	if ops < cfg.MinOps {
		ops = cfg.MinOps
	}
	if ops > cfg.MaxOps {
		ops = cfg.MaxOps
	}
	shape := cfg.Shapes[slot%len(cfg.Shapes)]
	density := cfg.Densities[(slot/len(cfg.Shapes))%len(cfg.Densities)]
	return Params{
		Name:        fmt.Sprintf("c%04d-%s-o%d", slot, shape, ops),
		Seed:        seed,
		Ops:         ops,
		Shape:       shape,
		Density:     density,
		ReagentRate: cfg.ReagentRate,
		Devices:     cfg.Devices,
	}
}

// maxSlotAttempts bounds deterministic resampling per sweep slot. The
// rejection rate at LevelWashable is a few percent (an unlucky draw
// can demand a wash whose target set no single flow path covers), so
// consecutive failures decay geometrically and 32 attempts put a
// slot-level failure beyond reach for any plausible configuration.
const maxSlotAttempts = 32

// GenerateSweep generates and validates every instance of the sweep,
// in slot order. A draw that fails validation is resampled from the
// slot's next deterministic seed: the generator's contract is that
// everything it emits counts, and a sweep is a function of its config
// alone — same config, same corpus, byte for byte.
//
// When ctx carries a deadline, each slot runs under a sub-deadline of
// remaining/(slots remaining), so one pathological slot cannot starve
// every slot after it of the sweep budget. A slot that exhausts its
// sub-deadline fails the sweep with an error naming the slot — it is
// never resampled or skipped, because either would make the emitted
// corpus depend on machine speed instead of the config alone.
func GenerateSweep(ctx context.Context, cfg SweepConfig) ([]*benchmarks.Benchmark, error) {
	cfg = cfg.withDefaults()
	out := make([]*benchmarks.Benchmark, 0, cfg.N)
	deadline, hasDeadline := ctx.Deadline()
	for i := 0; i < cfg.N; i++ {
		slotCtx, stop := ctx, context.CancelFunc(func() {})
		var sub time.Duration
		if hasDeadline {
			remain := time.Until(deadline)
			if remain <= 0 {
				return nil, fmt.Errorf("corpus: sweep budget exhausted at slot %d: %w: %w",
					i, solve.ErrBudgetExceeded, context.DeadlineExceeded)
			}
			sub = remain / time.Duration(cfg.N-i)
			slotCtx, stop = context.WithTimeout(ctx, sub)
		}
		b, err := generateSlot(slotCtx, cfg, i)
		stop()
		if err != nil {
			if hasDeadline && ctx.Err() == nil && slotCtx.Err() != nil {
				return nil, fmt.Errorf("corpus: sweep slot %d exceeded its %v sub-deadline: %w: %w",
					i, sub.Round(time.Millisecond), solve.ErrBudgetExceeded, err)
			}
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

func generateSlot(ctx context.Context, cfg SweepConfig, slot int) (*benchmarks.Benchmark, error) {
	var lastErr error
	for attempt := 0; attempt < maxSlotAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("corpus: sweep canceled at slot %d: %w", slot, err)
		}
		b, err := GenerateValidated(ctx, planSlot(cfg, slot, attempt), cfg.Level)
		if err == nil {
			return b, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("corpus: sweep slot %d: no valid instance in %d attempts: %w",
		slot, maxSlotAttempts, lastErr)
}
