package corpus

import (
	"context"
	"testing"
)

// TestOracleCorpusSample runs the full differential oracle over a
// small washable corpus. Every invariant must hold: the corpus
// generator's washability proof uses the same heuristics as the
// oracle's reference solves, so a violation here is a solver bug, not
// a flaky instance.
func TestOracleCorpusSample(t *testing.T) {
	ctx := context.Background()
	n := 10
	if testing.Short() {
		n = 4
	}
	benches, err := GenerateSweep(ctx, SweepConfig{Seed: 42, N: n})
	if err != nil {
		t.Fatal(err)
	}
	verdicts, viols, err := CheckCorpus(ctx, benches, OracleOptions{MaxPathChecks: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range viols {
		t.Errorf("oracle violation: %s", v)
	}
	if len(verdicts) != n {
		t.Fatalf("%d verdicts for %d instances", len(verdicts), n)
	}
	checks := 0
	for _, v := range verdicts {
		if !v.OK() && len(v.Violations) == 0 {
			t.Errorf("%s: OK()=false with no violations", v.Instance)
		}
		checks += v.PathChecks
	}
	if checks == 0 {
		t.Error("oracle ran zero exact-vs-heuristic path checks across the corpus")
	}
}

// TestOracleCorpus200 is the oracle half of the corpus acceptance bar:
// the seeded 200-instance corpus passes the differential oracle with
// zero violations. Metamorphic re-solves are limited to every fourth
// instance and path checks are capped to keep the sweep tractable on
// one core; the capped run still accumulates hundreds of exact-vs-
// heuristic differentials and fifty full metamorphic re-solves.
func TestOracleCorpus200(t *testing.T) {
	if testing.Short() {
		t.Skip("200-instance oracle in -short")
	}
	ctx := context.Background()
	benches, err := GenerateSweep(ctx, SweepConfig{Seed: 2026, N: 200})
	if err != nil {
		t.Fatal(err)
	}
	violations := 0
	checks := 0
	for i, b := range benches {
		v, err := CheckInstance(ctx, b, OracleOptions{
			MaxPathChecks:   2,
			SkipMetamorphic: i%4 != 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, viol := range v.Violations {
			t.Errorf("oracle violation: %s", viol)
			violations++
		}
		checks += v.PathChecks
	}
	t.Logf("200 instances, %d path checks, %d violations", checks, violations)
}

func TestOracleRejectsTamperedSchedule(t *testing.T) {
	b := mustGen(t, Params{Seed: 17, Ops: 8, Shape: Pipeline, Density: 1.0})
	syn, err := b.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	v := &Verdict{Instance: b.Name}
	// The untouched wash-free base schedule is structurally valid but
	// not contamination-free — checkClean must catch it through
	// contam.Verify or the sim replay.
	v.checkClean(InvPDWClean, syn.Schedule)
	if v.OK() {
		t.Skip("wash-free base happens to be clean; tamper fixture does not apply")
	}
	if v.Violations[0].Invariant != InvPDWClean {
		t.Errorf("violation attributed to %s, want %s", v.Violations[0].Invariant, InvPDWClean)
	}
}

func TestOracleCanceledContext(t *testing.T) {
	b := mustGen(t, Params{Seed: 19, Ops: 8, Shape: Layered, Density: 0.5})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CheckInstance(ctx, b, OracleOptions{}); err == nil {
		t.Error("canceled oracle reported success")
	}
}
