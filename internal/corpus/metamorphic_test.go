package corpus

import (
	"testing"

	"pathdriverwash/internal/assay"
)

func TestRelabelFluidsBijection(t *testing.T) {
	b := mustGen(t, Params{Seed: 31, Ops: 15, Shape: Layered, Density: 0.4})
	r, err := RelabelFluids(b.Assay, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("relabeled assay invalid: %v", err)
	}
	if got, want := countFluids(r), countFluids(b.Assay); got != want {
		t.Errorf("relabeling changed distinct fluid count: %d != %d", got, want)
	}
	// A low-density instance reuses fluids, so at least one rename must
	// have happened (all fresh names are minted as mf<i>).
	if countFluids(b.Assay) > 0 && fluidSet(r)["mf0"] == false {
		t.Error("relabeling minted no mf* fluid names")
	}
	// The distinguished waste type is never renamed.
	if fluidSet(r)[string(assay.Waste)] != fluidSet(b.Assay)[string(assay.Waste)] {
		t.Error("relabeling changed the Waste fluid")
	}
	// Deterministic: same seed, same result.
	r2, err := RelabelFluids(b.Assay, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range r.Ops() {
		if o2 := r2.Op(o.ID); o2 == nil || o2.Output != o.Output {
			t.Fatalf("relabeling not deterministic at op %s", o.ID)
		}
	}
}

func TestPermuteOpIDs(t *testing.T) {
	b := mustGen(t, Params{Seed: 41, Ops: 12, Shape: Diamond, Density: 0.6})
	syn, err := b.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	base := syn.Schedule
	p, err := PermuteOpIDs(base, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("permuted schedule invalid: %v", err)
	}
	if got, want := len(p.Tasks()), len(base.Tasks()); got != want {
		t.Fatalf("task count changed: %d != %d", got, want)
	}
	// The operation-ID set is unchanged, only the assignment moved.
	if got, want := idSet(p.Assay), idSet(base.Assay); !sameSet(got, want) {
		t.Errorf("op ID set changed: %v != %v", got, want)
	}
	// Task IDs stay consistent with the renamed op references: every
	// operation task is findable under the systematic name, and the
	// task's physical placement is untouched.
	moved := false
	for _, o := range p.Assay.Ops() {
		task := p.Task("op-" + o.ID)
		if task == nil {
			t.Fatalf("no task op-%s after permutation", o.ID)
		}
		if task.OpID != o.ID {
			t.Errorf("task op-%s carries OpID %s", o.ID, task.OpID)
		}
	}
	for i, task := range base.Tasks() {
		pt := p.Tasks()[i]
		if pt.Kind != task.Kind || pt.Start != task.Start || pt.End != task.End ||
			pt.Path.Len() != task.Path.Len() {
			t.Errorf("task %d: physical fields changed (%s -> %s)", i, task.ID, pt.ID)
		}
		if pt.ID != task.ID {
			moved = true
		}
	}
	if !moved {
		t.Error("permutation with 12 ops renamed nothing")
	}
}

func TestPermuteOpIDsDeterministic(t *testing.T) {
	b := mustGen(t, Params{Seed: 43, Ops: 10, Shape: Panel, Density: 0.5})
	syn, err := b.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	p1, err := PermuteOpIDs(syn.Schedule, 3)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PermuteOpIDs(syn.Schedule, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, t1 := range p1.Tasks() {
		if t2 := p2.Tasks()[i]; t1.ID != t2.ID || t1.OpID != t2.OpID {
			t.Fatalf("permutation not deterministic at task %d: %s vs %s", i, t1.ID, t2.ID)
		}
	}
}

func countFluids(a *assay.Assay) int { return len(fluidSet(a)) }

func fluidSet(a *assay.Assay) map[string]bool {
	s := map[string]bool{}
	for _, o := range a.Ops() {
		s[string(o.Output)] = true
		for _, r := range o.Reagents {
			s[string(r)] = true
		}
	}
	return s
}

func idSet(a *assay.Assay) map[string]bool {
	s := map[string]bool{}
	for _, o := range a.Ops() {
		s[o.ID] = true
	}
	return s
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
