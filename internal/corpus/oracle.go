package corpus

import (
	"context"
	"fmt"
	"time"

	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/contam"
	"pathdriverwash/internal/dawo"
	"pathdriverwash/internal/pdw"
	"pathdriverwash/internal/schedule"
	"pathdriverwash/internal/sim"
	"pathdriverwash/internal/solve"
	"pathdriverwash/internal/washpath"
)

// The differential oracle cross-checks the repo's solvers against each
// other on one instance. Every invariant it asserts is a theorem of
// the implementation, not an empirical observation:
//
//   - both optimizers' outputs pass schedule.Validate and
//     contam.Verify, and replay contamination-free through the
//     internal/sim executor (three independent checkers);
//   - per wash, the exact washpath ILP never returns a longer path
//     than the BFS heuristic (the ILP warm-starts from the heuristic
//     incumbent, so exact ≤ heuristic by construction);
//   - a budget-canceled PDW solve still returns a feasible, clean
//     schedule (graceful degradation to incumbents);
//   - metamorphic relabelings (fluid types end-to-end, operation IDs
//     at the wash layer) leave n_wash and l_wash_mm unchanged.
//
// Deliberately NOT asserted: PDW beating DAWO on n_wash. That is the
// paper's empirical claim, not an invariant — adversarial instances
// can favor either heuristic.

// Invariant names, as reported in Violation.Invariant.
const (
	InvPDWClean      = "pdw-clean"      // PDW output valid + contamination-free
	InvDAWOClean     = "dawo-clean"     // DAWO output valid + contamination-free
	InvExactLeHeur   = "exact-le-heur"  // exact wash path ≤ heuristic wash path
	InvCancelFeas    = "cancel-feas"    // budget-canceled solve still feasible
	InvRelabelNWash  = "relabel-nwash"  // fluid relabeling preserves solution quality
	InvPermuteNWash  = "permute-nwash"  // op-ID permutation preserves solution quality
	InvOracleFailure = "oracle-failure" // a solver errored outright
)

// Violation is one broken invariant on one instance.
type Violation struct {
	Instance  string
	Invariant string
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: %s", v.Instance, v.Invariant, v.Detail)
}

// Verdict is the oracle's result for one instance.
type Verdict struct {
	Instance string
	// PDW and DAWO are the solvers' metrics on the instance.
	PDW, DAWO schedule.Metrics
	// PathChecks counts exact-vs-heuristic wash path comparisons run.
	PathChecks int
	// Violations lists every broken invariant (empty: instance passed).
	Violations []Violation
}

// OK reports whether every invariant held.
func (v *Verdict) OK() bool { return len(v.Violations) == 0 }

// OracleOptions tunes CheckInstance.
type OracleOptions struct {
	// Budget bounds each full solve (default 60 s).
	Budget time.Duration
	// PathTimeLimit bounds each exact wash-path ILP in the
	// exact-vs-heuristic differential (default 2 s).
	PathTimeLimit time.Duration
	// CancelBudget is the deliberately-too-small budget of the
	// graceful-degradation check (default 5 ms).
	CancelBudget time.Duration
	// MaxPathChecks caps the exact-vs-heuristic comparisons per
	// instance (0: unlimited). The ILP solves dominate oracle cost on
	// wash-heavy instances; corpus-scale sweeps cap at a few per
	// instance and still accumulate hundreds of differentials.
	MaxPathChecks int
	// Seed drives the metamorphic transformations (default 1).
	Seed uint64
	// SkipMetamorphic drops the relabel/permute re-solves (they cost
	// two extra synthesis runs and four extra solves per instance).
	SkipMetamorphic bool
}

func (o OracleOptions) withDefaults() OracleOptions {
	if o.Budget == 0 {
		o.Budget = 60 * time.Second
	}
	if o.PathTimeLimit == 0 {
		o.PathTimeLimit = 2 * time.Second
	}
	if o.CancelBudget == 0 {
		o.CancelBudget = 5 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// oracleSolve are the PDW options of the oracle's reference solves:
// fully deterministic heuristics (BFS paths, greedy windows) so that
// two solves of relabeled copies of the same instance cannot diverge
// through ILP time-limit noise.
func oracleSolve(budget time.Duration) pdw.Options {
	return pdw.Options{
		HeuristicPaths:   true,
		HeuristicWindows: true,
		Budget:           solve.Budget{Total: budget},
	}
}

// CheckInstance runs the full differential oracle on one instance.
// The returned error is reserved for infrastructure failures
// (synthesis of the untransformed instance failing, context
// cancellation); solver misbehavior is reported as Violations.
func CheckInstance(ctx context.Context, b *benchmarks.Benchmark, opts OracleOptions) (*Verdict, error) {
	opts = opts.withDefaults()
	v := &Verdict{Instance: b.Name}

	syn, err := b.SynthesizeContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("corpus: oracle %s: synthesize: %w", b.Name, err)
	}
	base := syn.Schedule

	// PDW reference solve.
	pres, err := pdw.OptimizeContext(ctx, base, oracleSolve(opts.Budget))
	if err != nil {
		v.fail(InvOracleFailure, "pdw: %v", err)
		return v, ctx.Err()
	}
	v.PDW = pres.Schedule.ComputeMetrics(base)
	v.checkClean(InvPDWClean, pres.Schedule)

	// DAWO reference solve.
	dres, err := dawo.OptimizeContext(ctx, base, dawo.Options{Budget: solve.Budget{Total: opts.Budget}})
	if err != nil {
		v.fail(InvOracleFailure, "dawo: %v", err)
		return v, ctx.Err()
	}
	v.DAWO = dres.Schedule.ComputeMetrics(base)
	v.checkClean(InvDAWOClean, dres.Schedule)

	// Exact-vs-heuristic wash path differential, one comparison per
	// decided wash. The heuristic needs chain-ordered targets; target
	// sets it cannot chain are skipped (BuildCover territory).
	for _, w := range pres.Washes {
		if opts.MaxPathChecks > 0 && v.PathChecks >= opts.MaxPathChecks {
			break
		}
		targets, err := washpath.ChainOrder(w.Targets)
		if err != nil {
			continue
		}
		heur, err := washpath.BuildContext(ctx, base.Chip, washpath.Request{Targets: targets},
			washpath.Options{})
		if err != nil {
			continue
		}
		exact, err := washpath.BuildContext(ctx, base.Chip, washpath.Request{Targets: targets},
			washpath.Options{Exact: true, TimeLimit: opts.PathTimeLimit})
		if err != nil {
			v.fail(InvExactLeHeur, "wash %s: exact build failed where heuristic succeeded: %v", w.ID, err)
			continue
		}
		v.PathChecks++
		if exact.Path.Len() > heur.Path.Len() {
			v.fail(InvExactLeHeur, "wash %s: exact path %d cells > heuristic %d",
				w.ID, exact.Path.Len(), heur.Path.Len())
		}
	}

	// Graceful degradation: a solve whose budget expires immediately
	// must still deliver a feasible, contamination-free incumbent.
	cres, err := pdw.OptimizeContext(ctx, base, oracleSolve(opts.CancelBudget))
	if err != nil {
		v.fail(InvCancelFeas, "budget-canceled solve errored: %v", err)
	} else {
		v.checkClean(InvCancelFeas, cres.Schedule)
	}

	if opts.SkipMetamorphic {
		return v, ctx.Err()
	}

	// Fluid relabeling is invariant end-to-end: synthesis and both
	// optimizers only compare fluid types for equality.
	rb, err := RelabelBenchmark(b, opts.Seed)
	if err != nil {
		v.fail(InvRelabelNWash, "relabel: %v", err)
		return v, ctx.Err()
	}
	rsyn, err := rb.SynthesizeContext(ctx)
	if err != nil {
		v.fail(InvRelabelNWash, "relabeled synthesize: %v", err)
		return v, ctx.Err()
	}
	v.checkSame(InvRelabelNWash, "pdw", ctx, rsyn.Schedule, v.PDW, opts, pdwSolver)
	v.checkSame(InvRelabelNWash, "dawo", ctx, rsyn.Schedule, v.DAWO, opts, dawoSolver)

	// Op-ID permutation is invariant at the wash layer (see
	// PermuteOpIDs for why not end-to-end).
	pb, err := PermuteOpIDs(base, opts.Seed)
	if err != nil {
		v.fail(InvPermuteNWash, "permute: %v", err)
		return v, ctx.Err()
	}
	v.checkSame(InvPermuteNWash, "pdw", ctx, pb, v.PDW, opts, pdwSolver)
	v.checkSame(InvPermuteNWash, "dawo", ctx, pb, v.DAWO, opts, dawoSolver)

	return v, ctx.Err()
}

// CheckCorpus runs the oracle over every instance and returns the
// verdicts plus all violations flattened.
func CheckCorpus(ctx context.Context, benches []*benchmarks.Benchmark, opts OracleOptions) ([]*Verdict, []Violation, error) {
	verdicts := make([]*Verdict, 0, len(benches))
	var all []Violation
	for _, b := range benches {
		v, err := CheckInstance(ctx, b, opts)
		if err != nil {
			return verdicts, all, err
		}
		verdicts = append(verdicts, v)
		all = append(all, v.Violations...)
	}
	return verdicts, all, nil
}

func (v *Verdict) fail(inv, format string, args ...any) {
	v.Violations = append(v.Violations, Violation{
		Instance:  v.Instance,
		Invariant: inv,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// checkClean asserts the three independent feasibility checkers on an
// optimized schedule: structural validation, the contamination
// verifier, and a full simulated replay.
func (v *Verdict) checkClean(inv string, s *schedule.Schedule) {
	if err := s.Validate(); err != nil {
		v.fail(inv, "schedule invalid: %v", err)
		return
	}
	if err := contam.Verify(s); err != nil {
		v.fail(inv, "contamination verifier: %v", err)
		return
	}
	if vs := sim.Run(s).ByClass(sim.Contamination); len(vs) > 0 {
		v.fail(inv, "sim replay: %v", vs[0])
	}
}

// solverFunc abstracts PDW/DAWO for the metamorphic re-solves.
type solverFunc func(ctx context.Context, base *schedule.Schedule, budget time.Duration) (*schedule.Schedule, error)

func pdwSolver(ctx context.Context, base *schedule.Schedule, budget time.Duration) (*schedule.Schedule, error) {
	res, err := pdw.OptimizeContext(ctx, base, oracleSolve(budget))
	if err != nil {
		return nil, err
	}
	return res.Schedule, nil
}

func dawoSolver(ctx context.Context, base *schedule.Schedule, budget time.Duration) (*schedule.Schedule, error) {
	res, err := dawo.OptimizeContext(ctx, base, dawo.Options{Budget: solve.Budget{Total: budget}})
	if err != nil {
		return nil, err
	}
	return res.Schedule, nil
}

// checkSame re-solves a transformed base schedule and asserts the
// solution-quality metrics match the reference solve.
func (v *Verdict) checkSame(inv, solver string, ctx context.Context, base *schedule.Schedule,
	want schedule.Metrics, opts OracleOptions, solve solverFunc) {

	s, err := solve(ctx, base, opts.Budget)
	if err != nil {
		v.fail(inv, "%s on transformed instance: %v", solver, err)
		return
	}
	got := s.ComputeMetrics(base)
	if got.NWash != want.NWash || got.LWashMM != want.LWashMM {
		v.fail(inv, "%s: n_wash %d != %d or l_wash %g != %g",
			solver, got.NWash, want.NWash, got.LWashMM, want.LWashMM)
	}
}
