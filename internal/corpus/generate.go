package corpus

import (
	"context"
	"fmt"
	"math"
	"sort"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/solve"
	"pathdriverwash/internal/synth"
)

// genKinds is the operation-kind ladder: mixing dominates real
// protocols, with heating, dilution, and detection sprinkled in.
var genKinds = []assay.OpKind{
	assay.Mix, assay.Mix, assay.Heat, assay.Dilute, assay.Detect, assay.Mix,
}

// Generate builds one instance from its parameters. The result is
// structurally valid (assay.Validate passes) but not yet proven
// synthesizable or washable — Validate runs those stages, and
// GenerateValidated combines both.
func Generate(p Params) (*benchmarks.Benchmark, error) {
	return GenerateContext(context.Background(), p)
}

// GenerateContext is Generate under a context: the operation, edge, and
// reagent loops are checkpointed (Layered edge wiring is quadratic in
// Ops), aborting with solve.ErrBudgetExceeded once ctx is done.
// Cancellation never changes what is generated — instances remain pure
// functions of Params — it only decides whether generation finishes.
func GenerateContext(ctx context.Context, p Params) (*benchmarks.Benchmark, error) {
	p = p.withDefaults()
	if p.Ops < 1 {
		return nil, fmt.Errorf("corpus: %s: ops %d < 1", p.Name, p.Ops)
	}
	if p.Ops > 100_000 {
		return nil, fmt.Errorf("corpus: %s: ops %d is absurd (max 100000)", p.Name, p.Ops)
	}
	cp := solve.NewCheckpoint(ctx)
	r := newRNG(p.Seed)
	a := assay.New(p.Name)

	// Operations: kinds off the ladder, durations 2-5 s, and outputs
	// drawn from the fluid pool under the contamination-density rule —
	// a fresh type with probability Density, reuse otherwise.
	var pool []assay.FluidType
	fresh := 0
	nextFluid := func() assay.FluidType {
		if len(pool) == 0 || r.float() < p.Density {
			f := assay.FluidType(fmt.Sprintf("f%d", fresh))
			fresh++
			pool = append(pool, f)
			return f
		}
		return pool[r.intn(len(pool))]
	}
	for i := 0; i < p.Ops; i++ {
		if err := cp.Check(); err != nil {
			return nil, genCanceled(p, err)
		}
		if err := a.AddOp(&assay.Operation{
			ID:       fmt.Sprintf("o%d", i+1),
			Kind:     genKinds[r.intn(len(genKinds))],
			Duration: 2 + r.intn(4),
			Output:   nextFluid(),
		}); err != nil {
			return nil, fmt.Errorf("corpus: %s: %w", p.Name, err)
		}
	}
	if err := addEdges(a, p, r, &cp); err != nil {
		if cp.Canceled() {
			return nil, genCanceled(p, err)
		}
		return nil, fmt.Errorf("corpus: %s: %w", p.Name, err)
	}

	// Detection does not transform its sample: a single-input detect op
	// forwards its predecessor's fluid, seeding Type-2 skip
	// opportunities exactly like the Table II synthetics.
	for _, o := range a.Ops() {
		if o.Kind != assay.Detect {
			continue
		}
		if preds := a.Preds(o.ID); len(preds) == 1 {
			o.Output = a.Op(preds[0]).Output
		}
	}

	// Reagents: every source op must consume at least one injection
	// (assay.Validate's rule), plus ReagentRate extras spread over the
	// whole graph. Reagent types follow the same density rule so low
	// densities share buffers across injections.
	for _, id := range a.Sources() {
		op := a.Op(id)
		op.Reagents = append(op.Reagents, nextFluid())
	}
	extra := int(math.Round(p.ReagentRate * float64(p.Ops)))
	ops := a.Ops()
	for i := 0; i < extra; i++ {
		if err := cp.Check(); err != nil {
			return nil, genCanceled(p, err)
		}
		op := ops[r.intn(len(ops))]
		op.Reagents = append(op.Reagents, nextFluid())
	}

	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("corpus: generated %s invalid: %w", p.Name, err)
	}
	specs := deviceLibrary(a, p.Devices)
	return &benchmarks.Benchmark{
		Name:   p.Name,
		Assay:  a,
		Config: synth.Config{Devices: specs, FlowPorts: portCount(specs), WastePorts: portCount(specs)},
	}, nil
}

// genCanceled wraps a checkpoint error at the generation boundary.
func genCanceled(p Params, err error) error {
	return fmt.Errorf("corpus: %s: generation canceled: %w: %w", p.Name, solve.ErrBudgetExceeded, err)
}

// portCount sizes the boundary port count like synth's default
// (one per three devices) but capped at the number of street ends the
// chip will actually have — synth's own default overflows into
// overlapping ports on libraries beyond ~36 devices.
func portCount(specs []synth.DeviceSpec) int {
	total := 0
	for _, s := range specs {
		total += s.Count
	}
	cols := int(math.Ceil(math.Sqrt(float64(total))))
	rows := (total + cols - 1) / cols
	n := (total + 2) / 3
	if cap := cols + rows; n > cap {
		n = cap
	}
	if n < 2 {
		n = 2
	}
	return n
}

// addEdges wires the dependency DAG for the requested shape. The loops
// are checkpointed via cp (Layered's predecessor scan is quadratic in
// the op count); on cancellation the returned error is the bare
// checkpoint error, wrapped by the caller.
func addEdges(a *assay.Assay, p Params, r *rng, cp *solve.Checkpoint) error {
	id := func(i int) string { return fmt.Sprintf("o%d", i+1) }
	n := p.Ops
	switch p.Shape {
	case Pipeline:
		for i := 1; i < n; i++ {
			if err := cp.Check(); err != nil {
				return err
			}
			if err := a.AddEdge(id(i-1), id(i)); err != nil {
				return err
			}
		}
	case Panel:
		// Branch independent chains, ops dealt round-robin.
		chains := p.Branch
		if chains > n {
			chains = n
		}
		for i := chains; i < n; i++ {
			if err := cp.Check(); err != nil {
				return err
			}
			if err := a.AddEdge(id(i-chains), id(i)); err != nil {
				return err
			}
		}
	case Diamond:
		last, i := 0, 1
		for i < n {
			if err := cp.Check(); err != nil {
				return err
			}
			if remaining := n - i; remaining >= p.Branch+1 && p.Branch >= 2 {
				join := i + p.Branch
				for k := 0; k < p.Branch; k++ {
					if err := a.AddEdge(id(last), id(i+k)); err != nil {
						return err
					}
					if err := a.AddEdge(id(i+k), id(join)); err != nil {
						return err
					}
				}
				last, i = join, join+1
			} else {
				if err := a.AddEdge(id(last), id(i)); err != nil {
					return err
				}
				last = i
				i++
			}
		}
	case Layered:
		layers := int(math.Round(math.Sqrt(float64(n))))
		if layers < 2 {
			layers = 2
		}
		layerOf := make([]int, n)
		for i := 0; i < n; i++ {
			layerOf[i] = i * layers / n
		}
		// Every non-first-layer op depends on one earlier-layer op,
		// preferring ops without successors to keep the sink count low.
		hasSucc := make([]bool, n)
		for i := 0; i < n; i++ {
			if err := cp.Check(); err != nil {
				return err
			}
			if layerOf[i] == 0 {
				continue
			}
			var fresh, cands []int
			for j := 0; j < n; j++ {
				if layerOf[j] < layerOf[i] {
					cands = append(cands, j)
					if !hasSucc[j] {
						fresh = append(fresh, j)
					}
				}
			}
			pool := fresh
			if len(pool) == 0 {
				pool = cands
			}
			pre := pool[r.intn(len(pool))]
			if err := a.AddEdge(id(pre), id(i)); err != nil {
				return err
			}
			hasSucc[pre] = true
		}
		// Extra cross edges thicken the DAG (~one per three ops).
		for attempt := 0; attempt < n/3; attempt++ {
			if err := cp.Check(); err != nil {
				return err
			}
			from, to := r.intn(n), r.intn(n)
			if layerOf[from] >= layerOf[to] {
				continue
			}
			// Duplicates are rejected by AddEdge; just skip them.
			_ = a.AddEdge(id(from), id(to))
		}
	default:
		return fmt.Errorf("unknown shape %v", p.Shape)
	}
	return nil
}

// deviceLibrary sizes the device library: at least one device per kind
// the assay needs, with the remaining budget split proportionally to
// kind usage (never exceeding the usage itself — an op count caps how
// many devices of its kind can ever be busy at once).
func deviceLibrary(a *assay.Assay, budget int) []synth.DeviceSpec {
	usage := map[grid.DeviceKind]int{}
	for _, o := range a.Ops() {
		usage[assay.DeviceKindFor(o.Kind)]++
	}
	kinds := make([]grid.DeviceKind, 0, len(usage))
	total := 0
	for k, u := range usage {
		kinds = append(kinds, k)
		total += u
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	if budget < len(kinds) {
		budget = len(kinds)
	}
	specs := make([]synth.DeviceSpec, 0, len(kinds))
	assigned := 0
	for _, k := range kinds {
		count := budget * usage[k] / total
		if count < 1 {
			count = 1
		}
		if count > usage[k] {
			count = usage[k]
		}
		specs = append(specs, synth.DeviceSpec{Kind: k, Count: count})
		assigned += count
	}
	// Spend any rounding leftover on the busiest kinds, capped by usage.
	for i := range specs {
		if assigned >= budget {
			break
		}
		if room := usage[specs[i].Kind] - specs[i].Count; room > 0 {
			add := budget - assigned
			if add > room {
				add = room
			}
			specs[i].Count += add
			assigned += add
		}
	}
	return specs
}
