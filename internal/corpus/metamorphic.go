package corpus

import (
	"fmt"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/benchmarks"
	"strings"

	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/schedule"
)

// The metamorphic transformations: semantics-preserving rewrites of an
// assay under which the optimizers' solution quality must not move.
// Fluid types are opaque identities (only equality matters, and the
// distinguished Waste type is never renamed), and operation IDs are
// opaque labels, so a bijective relabeling of either changes nothing
// the paper's model can observe — n_wash and l_wash_mm must come out
// identical. The differential oracle and the metamorphic test suite in
// internal/benchmarks both assert exactly that.

// RelabelFluids returns a deep copy of the assay with every fluid type
// renamed through a seed-derived bijection. The distinguished
// assay.Waste type keeps its name: the Type-3 rule keys on it.
func RelabelFluids(a *assay.Assay, seed uint64) (*assay.Assay, error) {
	// Collect distinct fluids in first-use order (deterministic).
	var fluids []assay.FluidType
	seen := map[assay.FluidType]bool{assay.Waste: true}
	note := func(f assay.FluidType) {
		if !seen[f] {
			seen[f] = true
			fluids = append(fluids, f)
		}
	}
	for _, o := range a.Ops() {
		note(o.Output)
		for _, rg := range o.Reagents {
			note(rg)
		}
	}
	// Bijection: shuffle the positions, then mint fresh names in
	// shuffled order. Distinct inputs keep distinct outputs.
	r := newRNG(seed)
	perm := permutation(r, len(fluids))
	rename := map[assay.FluidType]assay.FluidType{assay.Waste: assay.Waste}
	for i, f := range fluids {
		rename[f] = assay.FluidType(fmt.Sprintf("mf%d", perm[i]))
	}
	return rebuild(a, func(o *assay.Operation) *assay.Operation {
		c := *o
		c.Output = rename[o.Output]
		c.Reagents = make([]assay.FluidType, len(o.Reagents))
		for i, rg := range o.Reagents {
			c.Reagents[i] = rename[rg]
		}
		return &c
	}, func(id string) string { return id })
}

// PermuteOpIDs returns a deep copy of the base schedule (and its
// assay) with the operation IDs permuted among the operations: the ID
// set is unchanged, the assignment is shuffled, and every reference —
// OpID / EdgeFrom / EdgeTo plus the op components embedded in synth's
// systematic task IDs (op-X, tr-X-Y, inj-X-k, rm-X-Y, rm-inj-X-k,
// disp-X) — is renamed consistently. Insertion orders are preserved.
//
// The transformation deliberately operates on the wash optimizers'
// input, not on the assay fed to synthesis: architectural synthesis
// breaks placement/binding ties on sorted operation IDs, so permuting
// IDs upstream of synth yields a physically different chip — a
// different problem, not a relabeled one. Holding the chip and base
// schedule fixed, operation IDs are pure labels, and PDW/DAWO solution
// quality (n_wash, l_wash_mm) must be identical on the permuted copy.
func PermuteOpIDs(s *schedule.Schedule, seed uint64) (*schedule.Schedule, error) {
	ops := s.Assay.Ops()
	perm := permutation(newRNG(seed), len(ops))
	rename := make(map[string]string, len(ops))
	for i, o := range ops {
		rename[o.ID] = ops[perm[i]].ID
	}
	renamed, err := rebuild(s.Assay, func(o *assay.Operation) *assay.Operation {
		c := *o
		c.Reagents = append([]assay.FluidType(nil), o.Reagents...)
		return &c
	}, func(id string) string { return rename[id] })
	if err != nil {
		return nil, err
	}
	ref := func(id string) string {
		if id == "" {
			return ""
		}
		return rename[id]
	}
	out := schedule.New(s.Chip, renamed)
	for _, t := range s.Tasks() {
		cp := *t
		cp.Path = grid.NewPath(append([]geom.Point(nil), t.Path.Cells...)...)
		cp.WashTargets = append([]geom.Point(nil), t.WashTargets...)
		cp.ContamCells = append([]geom.Point(nil), t.ContamCells...)
		cp.ExcessCells = append([]geom.Point(nil), t.ExcessCells...)
		cp.SensitiveCells = append([]geom.Point(nil), t.SensitiveCells...)
		cp.ID = permuteTaskID(t, rename)
		cp.OpID = ref(t.OpID)
		cp.EdgeFrom = ref(t.EdgeFrom)
		cp.EdgeTo = ref(t.EdgeTo)
		if err := out.Add(&cp); err != nil {
			return nil, fmt.Errorf("corpus: permute %s: %w", s.Assay.Name, err)
		}
	}
	return out, nil
}

// permuteTaskID rewrites the op-ID components of synth's systematic
// task IDs. Replanning reconstructs peer task IDs from op references
// (e.g. the transport behind a removal is "tr-"+from+"-"+to), so the
// task names and the renamed edge fields must stay in sync. The match
// is anchored on the task's own fields — never parsed out of the ID
// string, since op IDs may themselves contain dashes.
func permuteTaskID(t *schedule.Task, rename map[string]string) string {
	switch t.Kind {
	case schedule.Operation:
		if t.ID == "op-"+t.OpID {
			return "op-" + rename[t.OpID]
		}
	case schedule.Transport:
		if t.EdgeFrom != "" && t.ID == "tr-"+t.EdgeFrom+"-"+t.EdgeTo {
			return "tr-" + rename[t.EdgeFrom] + "-" + rename[t.EdgeTo]
		}
		if pfx := "inj-" + t.EdgeTo + "-"; t.EdgeFrom == "" && strings.HasPrefix(t.ID, pfx) {
			return "inj-" + rename[t.EdgeTo] + "-" + t.ID[len(pfx):]
		}
	case schedule.Removal:
		if t.EdgeFrom != "" && t.ID == "rm-"+t.EdgeFrom+"-"+t.EdgeTo {
			return "rm-" + rename[t.EdgeFrom] + "-" + rename[t.EdgeTo]
		}
		if pfx := "rm-inj-" + t.EdgeTo + "-"; t.EdgeFrom == "" && strings.HasPrefix(t.ID, pfx) {
			return "rm-inj-" + rename[t.EdgeTo] + "-" + t.ID[len(pfx):]
		}
	case schedule.WasteDisposal:
		if t.ID == "disp-"+t.EdgeFrom {
			return "disp-" + rename[t.EdgeFrom]
		}
	}
	return t.ID
}

// rebuild copies the assay through the public constructor API, mapping
// each operation through cloneOp and each ID through renameID.
func rebuild(a *assay.Assay, cloneOp func(*assay.Operation) *assay.Operation,
	renameID func(string) string) (*assay.Assay, error) {

	out := assay.New(a.Name)
	for _, o := range a.Ops() {
		c := cloneOp(o)
		c.ID = renameID(o.ID)
		if err := out.AddOp(c); err != nil {
			return nil, fmt.Errorf("corpus: rebuild %s: %w", a.Name, err)
		}
	}
	for _, e := range a.Edges() {
		if err := out.AddEdge(renameID(e.From), renameID(e.To)); err != nil {
			return nil, fmt.Errorf("corpus: rebuild %s: %w", a.Name, err)
		}
	}
	return out, nil
}

// permutation is a seeded Fisher-Yates shuffle of 0..n-1.
func permutation(r *rng, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// RelabelBenchmark is RelabelFluids lifted to a benchmark (the device
// library and name carry over unchanged).
func RelabelBenchmark(b *benchmarks.Benchmark, seed uint64) (*benchmarks.Benchmark, error) {
	a, err := RelabelFluids(b.Assay, seed)
	if err != nil {
		return nil, err
	}
	return &benchmarks.Benchmark{Name: b.Name, Assay: a, Config: b.Config, Paper: b.Paper}, nil
}
