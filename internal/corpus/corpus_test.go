package corpus

import (
	"context"
	"reflect"
	"testing"

	"pathdriverwash/internal/benchmarks"
)

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Seed: 99, Ops: 20, Shape: Diamond, Density: 0.6}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := Fingerprint(a)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Fingerprint(b)
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Errorf("same params, different fingerprints: %s vs %s", fa, fb)
	}

	c, err := Generate(Params{Seed: 100, Ops: 20, Shape: Diamond, Density: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := Fingerprint(c)
	if err != nil {
		t.Fatal(err)
	}
	if fc == fa {
		t.Errorf("different seeds produced identical instances (%s)", fa)
	}
}

func TestGenerateAllShapes(t *testing.T) {
	ctx := context.Background()
	for _, shape := range Shapes() {
		for _, ops := range []int{1, 6, 25} {
			p := Params{Seed: 3, Ops: ops, Shape: shape, Density: 0.5}
			b, err := Generate(p)
			if err != nil {
				t.Fatalf("%v/%d: %v", shape, ops, err)
			}
			if got, _, _ := b.Assay.Stats(); got != ops {
				t.Errorf("%v/%d: generated %d ops", shape, ops, got)
			}
			if err := Validate(ctx, b, LevelStructural); err != nil {
				t.Errorf("%v/%d: %v", shape, ops, err)
			}
		}
	}
}

func TestGenerateRejectsBadOps(t *testing.T) {
	if _, err := Generate(Params{Seed: 1, Ops: 0, Shape: Pipeline}); err == nil {
		t.Error("Ops=0 accepted")
	}
	if _, err := Generate(Params{Seed: 1, Ops: 200_000, Shape: Pipeline}); err == nil {
		t.Error("Ops=200000 accepted")
	}
}

func TestPlanDeterministicAndBounded(t *testing.T) {
	cfg := SweepConfig{Seed: 7, N: 30}
	p1, p2 := Plan(cfg), Plan(cfg)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("two plans of the same config differ")
	}
	if len(p1) != 30 {
		t.Fatalf("plan has %d slots, want 30", len(p1))
	}
	names := map[string]bool{}
	shapes := map[Shape]bool{}
	for _, p := range p1 {
		if p.Ops < 6 || p.Ops > 24 {
			t.Errorf("%s: ops %d outside default [6,24]", p.Name, p.Ops)
		}
		if names[p.Name] {
			t.Errorf("duplicate instance name %s", p.Name)
		}
		names[p.Name] = true
		shapes[p.Shape] = true
	}
	if len(shapes) != len(Shapes()) {
		t.Errorf("plan used %d shapes, want all %d", len(shapes), len(Shapes()))
	}
}

func TestGenerateSweepDeterministic(t *testing.T) {
	ctx := context.Background()
	cfg := SweepConfig{Seed: 11, N: 8}
	s1, err := GenerateSweep(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := GenerateSweep(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != 8 || len(s2) != 8 {
		t.Fatalf("sweep sizes %d/%d, want 8", len(s1), len(s2))
	}
	for i := range s1 {
		f1, err := Fingerprint(s1[i])
		if err != nil {
			t.Fatal(err)
		}
		f2, err := Fingerprint(s2[i])
		if err != nil {
			t.Fatal(err)
		}
		if f1 != f2 {
			t.Errorf("slot %d: fingerprints differ: %s vs %s", i, f1, f2)
		}
	}
}

// TestSweepResampling pins the deterministic-resampling contract: the
// first draw of a rejected slot differs from what the sweep emits, but
// the emitted instance is still a pure function of the config. Master
// seed 1 at the default level is a known configuration whose slot 9
// fails the washability proof on its first draw (the wash demand's
// target set is not coverable by one flow path).
func TestSweepResampling(t *testing.T) {
	ctx := context.Background()
	cfg := SweepConfig{Seed: 1, N: 12}
	benches, err := GenerateSweep(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	firstDraw := planSlot(cfg.withDefaults(), 9, 0)
	if err := Validate(ctx, mustGen(t, firstDraw), LevelWashable); err == nil {
		t.Skip("slot 9's first draw became washable; resampling fixture no longer applies")
	}
	// The sweep still filled the slot, with a later deterministic draw.
	got, err := Fingerprint(benches[9])
	if err != nil {
		t.Fatal(err)
	}
	want, err := Fingerprint(mustGen(t, planSlot(cfg.withDefaults(), 9, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("resampled slot 9 is not attempt 1's draw: %s vs %s", got, want)
	}
}

func TestSweepCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GenerateSweep(ctx, SweepConfig{Seed: 5, N: 4}); err == nil {
		t.Error("canceled sweep succeeded")
	}
}

func TestValidateWashable(t *testing.T) {
	b := mustGen(t, Params{Seed: 21, Ops: 10, Shape: Layered, Density: 0.8})
	if err := Validate(context.Background(), b, LevelWashable); err != nil {
		t.Fatal(err)
	}
}

// TestCorpus200Deterministic is the determinism half of the corpus
// acceptance bar: a seeded 200-instance corpus is byte-identical
// across generations. Structural level keeps it fast — determinism
// does not depend on the validation depth, only on the generator.
func TestCorpus200Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("200-instance corpus in -short")
	}
	ctx := context.Background()
	cfg := SweepConfig{Seed: 2026, N: 200, Level: LevelStructural}
	s1, err := GenerateSweep(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := GenerateSweep(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		f1, err := Fingerprint(s1[i])
		if err != nil {
			t.Fatal(err)
		}
		f2, err := Fingerprint(s2[i])
		if err != nil {
			t.Fatal(err)
		}
		if f1 != f2 {
			t.Fatalf("slot %d: corpus not byte-identical: %s vs %s", i, f1, f2)
		}
	}
}

func mustGen(t *testing.T, p Params) *benchmarks.Benchmark {
	t.Helper()
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
