package assay

import (
	"strings"
	"testing"
	"testing/quick"

	"pathdriverwash/internal/grid"
)

// diamond builds the classic diamond DAG:
//
//	o1 -> o2 -> o4
//	o1 -> o3 -> o4
func diamond(t *testing.T) *Assay {
	t.Helper()
	a := New("diamond")
	ops := []*Operation{
		{ID: "o1", Kind: Mix, Duration: 3, Output: "f1", Reagents: []FluidType{"r1", "r2"}},
		{ID: "o2", Kind: Heat, Duration: 2, Output: "f2"},
		{ID: "o3", Kind: Detect, Duration: 4, Output: "f3"},
		{ID: "o4", Kind: Mix, Duration: 1, Output: "f4"},
	}
	for _, o := range ops {
		if err := a.AddOp(o); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"o1", "o2"}, {"o1", "o3"}, {"o2", "o4"}, {"o3", "o4"}} {
		if err := a.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAddOpErrors(t *testing.T) {
	a := New("t")
	if err := a.AddOp(&Operation{ID: "", Kind: Mix, Duration: 1, Output: "f"}); err == nil {
		t.Error("empty ID should fail")
	}
	if err := a.AddOp(&Operation{ID: "o", Kind: Mix, Duration: 0, Output: "f"}); err == nil {
		t.Error("zero duration should fail")
	}
	if err := a.AddOp(&Operation{ID: "o", Kind: Mix, Duration: 1, Output: ""}); err == nil {
		t.Error("missing output should fail")
	}
	if err := a.AddOp(&Operation{ID: "o", Kind: Mix, Duration: 1, Output: "f"}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddOp(&Operation{ID: "o", Kind: Mix, Duration: 1, Output: "f"}); err == nil {
		t.Error("duplicate ID should fail")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	a := diamond(t)
	if err := a.AddEdge("o1", "oX"); err == nil {
		t.Error("unknown target should fail")
	}
	if err := a.AddEdge("oX", "o1"); err == nil {
		t.Error("unknown source should fail")
	}
	if err := a.AddEdge("o1", "o1"); err == nil {
		t.Error("self edge should fail")
	}
	if err := a.AddEdge("o1", "o2"); err == nil {
		t.Error("duplicate edge should fail")
	}
}

func TestPredsSuccs(t *testing.T) {
	a := diamond(t)
	if got := a.Preds("o4"); len(got) != 2 || got[0] != "o2" || got[1] != "o3" {
		t.Errorf("Preds(o4) = %v", got)
	}
	if got := a.Succs("o1"); len(got) != 2 || got[0] != "o2" || got[1] != "o3" {
		t.Errorf("Succs(o1) = %v", got)
	}
	if got := a.Preds("o1"); len(got) != 0 {
		t.Errorf("Preds(o1) = %v", got)
	}
}

func TestSourcesSinks(t *testing.T) {
	a := diamond(t)
	if s := a.Sources(); len(s) != 1 || s[0] != "o1" {
		t.Errorf("Sources = %v", s)
	}
	if s := a.Sinks(); len(s) != 1 || s[0] != "o4" {
		t.Errorf("Sinks = %v", s)
	}
}

func TestTopoOrder(t *testing.T) {
	a := diamond(t)
	order, err := a.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range a.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %s->%s violated in order %v", e.From, e.To, order)
		}
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	a := diamond(t)
	o1, _ := a.TopoOrder()
	for i := 0; i < 5; i++ {
		o2, _ := a.TopoOrder()
		if strings.Join(o1, ",") != strings.Join(o2, ",") {
			t.Fatalf("nondeterministic topo order: %v vs %v", o1, o2)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	a := New("cyc")
	for _, id := range []string{"a", "b", "c"} {
		if err := a.AddOp(&Operation{ID: id, Kind: Mix, Duration: 1, Output: "f", Reagents: []FluidType{"r"}}); err != nil {
			t.Fatal(err)
		}
	}
	a.MustAddEdge("a", "b").MustAddEdge("b", "c").MustAddEdge("c", "a")
	if _, err := a.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := a.Validate(); err == nil {
		t.Fatal("Validate must reject cyclic graph")
	}
}

func TestLevels(t *testing.T) {
	a := diamond(t)
	lv, err := a.Levels()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"o1": 0, "o2": 1, "o3": 1, "o4": 2}
	for id, l := range want {
		if lv[id] != l {
			t.Errorf("level(%s) = %d want %d", id, lv[id], l)
		}
	}
}

func TestCriticalPath(t *testing.T) {
	a := diamond(t)
	cp, err := a.CriticalPathSeconds()
	if err != nil {
		t.Fatal(err)
	}
	// o1(3) -> o3(4) -> o4(1) = 8
	if cp != 8 {
		t.Fatalf("critical path = %d want 8", cp)
	}
}

func TestDeviceKindsNeeded(t *testing.T) {
	a := diamond(t)
	kinds := a.DeviceKindsNeeded()
	if len(kinds) != 3 {
		t.Fatalf("kinds = %v", kinds)
	}
	want := map[grid.DeviceKind]bool{grid.Mixer: true, grid.Heater: true, grid.Detector: true}
	for _, k := range kinds {
		if !want[k] {
			t.Errorf("unexpected kind %v", k)
		}
	}
}

func TestDeviceKindFor(t *testing.T) {
	cases := map[OpKind]grid.DeviceKind{
		Mix: grid.Mixer, Heat: grid.Heater, Detect: grid.Detector,
		Filter: grid.Filter, Dilute: grid.Diluter, Store: grid.Storage,
		OpKind("custom"): grid.DeviceKind("custom"),
	}
	for op, dev := range cases {
		if got := DeviceKindFor(op); got != dev {
			t.Errorf("DeviceKindFor(%v) = %v want %v", op, got, dev)
		}
	}
}

func TestValidateRequiresInputs(t *testing.T) {
	a := New("noinput")
	if err := a.AddOp(&Operation{ID: "o1", Kind: Mix, Duration: 1, Output: "f"}); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err == nil {
		t.Fatal("source op without reagents must fail validation")
	}
	if err := New("empty").Validate(); err == nil {
		t.Fatal("empty assay must fail validation")
	}
}

func TestStats(t *testing.T) {
	a := diamond(t)
	ops, deps, tasks := a.Stats()
	if ops != 4 || deps != 4 {
		t.Fatalf("ops,deps = %d,%d", ops, deps)
	}
	// 4 transports + 2 reagent injections + 1 sink waste removal.
	if tasks != 7 {
		t.Fatalf("fluidicTasks = %d want 7", tasks)
	}
}

func TestOpString(t *testing.T) {
	o := &Operation{ID: "o9", Kind: Heat, Duration: 5, Output: "f"}
	if o.String() != "o9(heat,5s)" {
		t.Fatalf("String = %q", o.String())
	}
}

func TestMustAddPanics(t *testing.T) {
	a := New("p")
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddOp should panic on error")
		}
	}()
	a.MustAddOp(&Operation{ID: "", Kind: Mix, Duration: 1, Output: "f"})
}

// Property: for random layered DAGs, TopoOrder respects every edge and
// Levels is consistent with edges.
func TestTopoPropertyQuick(t *testing.T) {
	f := func(seed uint16) bool {
		a := New("rand")
		n := 3 + int(seed%8)
		for i := 0; i < n; i++ {
			id := string(rune('a' + i))
			_ = a.AddOp(&Operation{ID: id, Kind: Mix, Duration: 1 + int(seed)%5, Output: FluidType(id), Reagents: []FluidType{"r"}})
		}
		// Add forward edges only (guaranteed acyclic).
		s := uint32(seed)*2654435761 + 1
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s = s*1664525 + 1013904223
				if s%3 == 0 {
					_ = a.AddEdge(string(rune('a'+i)), string(rune('a'+j)))
				}
			}
		}
		order, err := a.TopoOrder()
		if err != nil {
			return false
		}
		pos := map[string]int{}
		for i, id := range order {
			pos[id] = i
		}
		lv, err := a.Levels()
		if err != nil {
			return false
		}
		for _, e := range a.Edges() {
			if pos[e.From] >= pos[e.To] || lv[e.From] >= lv[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
