package assay

import "fmt"

// Merge composes several assays into one multiplexed protocol that runs
// them concurrently on a single chip (the structure of the paper's
// Kinase act-2 benchmark: three kinase assays side by side). Operation
// IDs are prefixed with the source assay's name to stay unique; fluid
// types are left untouched, so shared reagents (the same buffer used by
// every lane) keep their Type-2 wash-skipping behaviour while distinct
// samples still demand washes between lanes.
func Merge(name string, parts ...*Assay) (*Assay, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("assay: Merge needs at least one part")
	}
	out := New(name)
	seen := map[string]bool{}
	for _, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("assay: Merge with nil part")
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("assay: Merge part %q: %w", p.Name, err)
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("assay: Merge has two parts named %q", p.Name)
		}
		seen[p.Name] = true
		prefix := p.Name + "/"
		for _, op := range p.Ops() {
			cp := *op
			cp.ID = prefix + op.ID
			cp.Reagents = append([]FluidType(nil), op.Reagents...)
			if err := out.AddOp(&cp); err != nil {
				return nil, err
			}
		}
		for _, e := range p.Edges() {
			if err := out.AddEdge(prefix+e.From, prefix+e.To); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
