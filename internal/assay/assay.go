// Package assay models bioassay protocols as the sequencing graphs
// G(O,E) of the paper: O is a set of biochemical operations with fixed
// execution times, E the data dependencies between them. Operations also
// declare which external reagents they consume, which fluid type they
// produce, and which device kind they must be bound to.
package assay

import (
	"fmt"
	"sort"

	"pathdriverwash/internal/grid"
)

// FluidType identifies a fluid sample/reagent class. Two fluids of the
// same type do not contaminate each other (the Type-2 skip rule).
type FluidType string

// Waste is the distinguished fluid type of discarded product. Channels
// that will only ever carry waste never need washing (Type-3 skip rule).
const Waste FluidType = "waste"

// OpKind is the biochemical operation class.
type OpKind string

// Operation kinds used by the benchmark suites.
const (
	Mix    OpKind = "mix"
	Heat   OpKind = "heat"
	Detect OpKind = "detect"
	Filter OpKind = "filter"
	Dilute OpKind = "dilute"
	Store  OpKind = "store"
)

// DeviceKindFor maps an operation kind to the device kind it binds to.
func DeviceKindFor(k OpKind) grid.DeviceKind {
	switch k {
	case Mix:
		return grid.Mixer
	case Heat:
		return grid.Heater
	case Detect:
		return grid.Detector
	case Filter:
		return grid.Filter
	case Dilute:
		return grid.Diluter
	case Store:
		return grid.Storage
	}
	return grid.DeviceKind(string(k))
}

// Operation is one node o_i of the sequencing graph.
type Operation struct {
	// ID is unique within the assay (e.g. "o1").
	ID string
	// Kind selects the required device kind.
	Kind OpKind
	// Duration is the execution time t(o_i) in seconds, Eq. (1).
	Duration int
	// Output is the fluid type of the operation's product out_i.
	Output FluidType
	// Reagents are external inputs injected from flow ports before the
	// operation can start (in addition to predecessor products).
	Reagents []FluidType
	// DiscardResult marks terminal operations whose product is flushed
	// to a waste port rather than transported onward.
	DiscardResult bool
}

// String renders the operation compactly.
func (o *Operation) String() string {
	return fmt.Sprintf("%s(%s,%ds)", o.ID, o.Kind, o.Duration)
}

// Edge is one dependency e_{j,i}: operation To consumes the product of
// operation From, so a transport task p_{j,i,1} moves out_j to d_i.
type Edge struct {
	From, To string
}

// Assay is a full sequencing graph.
type Assay struct {
	Name  string
	ops   []*Operation
	byID  map[string]*Operation
	edges []Edge
}

// New creates an empty assay.
func New(name string) *Assay {
	return &Assay{Name: name, byID: map[string]*Operation{}}
}

// AddOp appends an operation. The ID must be unique and duration positive.
func (a *Assay) AddOp(op *Operation) error {
	if op.ID == "" {
		return fmt.Errorf("assay: operation with empty ID")
	}
	if _, dup := a.byID[op.ID]; dup {
		return fmt.Errorf("assay: duplicate operation %q", op.ID)
	}
	if op.Duration <= 0 {
		return fmt.Errorf("assay: operation %q has non-positive duration %d", op.ID, op.Duration)
	}
	if op.Output == "" {
		return fmt.Errorf("assay: operation %q has no output fluid type", op.ID)
	}
	a.ops = append(a.ops, op)
	a.byID[op.ID] = op
	return nil
}

// MustAddOp is AddOp for hand-built benchmark definitions; it panics on
// error so malformed benchmarks fail loudly at init time.
func (a *Assay) MustAddOp(op *Operation) *Assay {
	if err := a.AddOp(op); err != nil {
		panic(err)
	}
	return a
}

// AddEdge appends dependency from -> to. Both operations must exist.
func (a *Assay) AddEdge(from, to string) error {
	if _, ok := a.byID[from]; !ok {
		return fmt.Errorf("assay: edge source %q unknown", from)
	}
	if _, ok := a.byID[to]; !ok {
		return fmt.Errorf("assay: edge target %q unknown", to)
	}
	if from == to {
		return fmt.Errorf("assay: self edge on %q", from)
	}
	for _, e := range a.edges {
		if e.From == from && e.To == to {
			return fmt.Errorf("assay: duplicate edge %s->%s", from, to)
		}
	}
	a.edges = append(a.edges, Edge{From: from, To: to})
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (a *Assay) MustAddEdge(from, to string) *Assay {
	if err := a.AddEdge(from, to); err != nil {
		panic(err)
	}
	return a
}

// Ops returns the operations in insertion order.
func (a *Assay) Ops() []*Operation { return a.ops }

// Edges returns the dependency edges in insertion order.
func (a *Assay) Edges() []Edge { return a.edges }

// Op returns the operation with the given ID, or nil.
func (a *Assay) Op(id string) *Operation { return a.byID[id] }

// Preds returns the IDs of the operations feeding op, sorted.
func (a *Assay) Preds(id string) []string {
	var out []string
	for _, e := range a.edges {
		if e.To == id {
			out = append(out, e.From)
		}
	}
	sort.Strings(out)
	return out
}

// Succs returns the IDs of the operations consuming op's product, sorted.
func (a *Assay) Succs(id string) []string {
	var out []string
	for _, e := range a.edges {
		if e.From == id {
			out = append(out, e.To)
		}
	}
	sort.Strings(out)
	return out
}

// Sinks returns operations with no successors (assay outcomes), sorted.
func (a *Assay) Sinks() []string {
	var out []string
	for _, o := range a.ops {
		if len(a.Succs(o.ID)) == 0 {
			out = append(out, o.ID)
		}
	}
	sort.Strings(out)
	return out
}

// Sources returns operations with no predecessors, sorted.
func (a *Assay) Sources() []string {
	var out []string
	for _, o := range a.ops {
		if len(a.Preds(o.ID)) == 0 {
			out = append(out, o.ID)
		}
	}
	sort.Strings(out)
	return out
}

// TopoOrder returns the operation IDs in a deterministic topological
// order (Kahn's algorithm, ties broken by insertion order). It fails if
// the graph has a cycle.
func (a *Assay) TopoOrder() ([]string, error) {
	indeg := map[string]int{}
	opIdx := make(map[string]int, len(a.ops))
	for i, o := range a.ops {
		indeg[o.ID] = 0
		opIdx[o.ID] = i
	}
	// Successor lists sorted by the successor's insertion index, so a
	// popped node releases its successors in exactly the order the old
	// quadratic ops-scan did — the tie-break order is observable through
	// every downstream schedule.
	succ := make(map[string][]string, len(a.ops))
	for _, e := range a.edges {
		indeg[e.To]++
		succ[e.From] = append(succ[e.From], e.To)
	}
	for _, s := range succ {
		sort.Slice(s, func(i, j int) bool { return opIdx[s[i]] < opIdx[s[j]] })
	}
	var ready []string
	for _, o := range a.ops {
		if indeg[o.ID] == 0 {
			ready = append(ready, o.ID)
		}
	}
	var order []string
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		for _, to := range succ[id] {
			indeg[to]--
			if indeg[to] == 0 {
				ready = append(ready, to)
			}
		}
	}
	if len(order) != len(a.ops) {
		return nil, fmt.Errorf("assay: %q has a dependency cycle", a.Name)
	}
	return order, nil
}

// Levels assigns each operation its ASAP level: sources are level 0 and
// every other op is one more than its deepest predecessor.
func (a *Assay) Levels() (map[string]int, error) {
	order, err := a.TopoOrder()
	if err != nil {
		return nil, err
	}
	lv := map[string]int{}
	for _, id := range order {
		l := 0
		for _, p := range a.Preds(id) {
			if lv[p]+1 > l {
				l = lv[p] + 1
			}
		}
		lv[id] = l
	}
	return lv, nil
}

// CriticalPathSeconds returns the length of the longest dependency chain
// counting operation durations only (a lower bound on assay completion).
func (a *Assay) CriticalPathSeconds() (int, error) {
	order, err := a.TopoOrder()
	if err != nil {
		return 0, err
	}
	finish := map[string]int{}
	best := 0
	for _, id := range order {
		start := 0
		for _, p := range a.Preds(id) {
			if finish[p] > start {
				start = finish[p]
			}
		}
		finish[id] = start + a.byID[id].Duration
		if finish[id] > best {
			best = finish[id]
		}
	}
	return best, nil
}

// DeviceKindsNeeded returns the set of device kinds the assay requires.
func (a *Assay) DeviceKindsNeeded() []grid.DeviceKind {
	seen := map[grid.DeviceKind]bool{}
	var out []grid.DeviceKind
	for _, o := range a.ops {
		k := DeviceKindFor(o.Kind)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks structural invariants: at least one operation, acyclic
// dependencies, and every non-source operation either consumes reagents
// or predecessor products.
func (a *Assay) Validate() error {
	if len(a.ops) == 0 {
		return fmt.Errorf("assay: %q has no operations", a.Name)
	}
	if _, err := a.TopoOrder(); err != nil {
		return err
	}
	for _, o := range a.ops {
		if len(a.Preds(o.ID)) == 0 && len(o.Reagents) == 0 {
			return fmt.Errorf("assay: source operation %q consumes nothing", o.ID)
		}
	}
	return nil
}

// Stats summarises the graph for Table II's |O|/|E| columns plus the
// fluidic-task count (reagent injections + transports).
func (a *Assay) Stats() (ops, deps, fluidicTasks int) {
	ops = len(a.ops)
	deps = len(a.edges)
	fluidicTasks = len(a.edges) // one transport per dependency
	for _, o := range a.ops {
		fluidicTasks += len(o.Reagents) // one injection per reagent
		if o.DiscardResult || len(a.Succs(o.ID)) == 0 {
			fluidicTasks++ // waste removal of the final product
		}
	}
	return ops, deps, fluidicTasks
}
