package assay

import (
	"strings"
	"testing"
)

func lane(name string, sample FluidType) *Assay {
	a := New(name)
	a.MustAddOp(&Operation{ID: "m", Kind: Mix, Duration: 2, Output: FluidType(name + "-mix"),
		Reagents: []FluidType{sample, "shared-buffer"}})
	a.MustAddOp(&Operation{ID: "t", Kind: Detect, Duration: 2, Output: FluidType(name + "-mix")})
	a.MustAddEdge("m", "t")
	return a
}

func TestMergeBasics(t *testing.T) {
	m, err := Merge("panel", lane("a", "sample-a"), lane("b", "sample-b"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Ops()) != 4 || len(m.Edges()) != 2 {
		t.Fatalf("ops=%d edges=%d", len(m.Ops()), len(m.Edges()))
	}
	if m.Op("a/m") == nil || m.Op("b/t") == nil {
		t.Fatal("prefixed IDs missing")
	}
	// Both lanes share the buffer reagent (Type-2 opportunity preserved).
	if m.Op("a/m").Reagents[1] != "shared-buffer" || m.Op("b/m").Reagents[1] != "shared-buffer" {
		t.Fatal("shared reagents renamed")
	}
	// Edges stay within lanes.
	for _, e := range m.Edges() {
		if strings.Split(e.From, "/")[0] != strings.Split(e.To, "/")[0] {
			t.Fatalf("cross-lane edge %v", e)
		}
	}
}

func TestMergeLeavesPartsUntouched(t *testing.T) {
	a := lane("a", "s")
	_, err := Merge("panel", a, lane("b", "s2"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Op("m") == nil || a.Op("a/m") != nil {
		t.Fatal("Merge mutated its input")
	}
	// Mutating the merged copy's reagents must not touch the source.
	m, err := Merge("panel2", a)
	if err != nil {
		t.Fatal(err)
	}
	m.Op("a/m").Reagents[0] = "changed"
	if a.Op("m").Reagents[0] == "changed" {
		t.Fatal("merged copy shares reagent slice with source")
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := Merge("empty"); err == nil {
		t.Error("no parts must fail")
	}
	if _, err := Merge("nil", nil); err == nil {
		t.Error("nil part must fail")
	}
	if _, err := Merge("dup", lane("x", "s"), lane("x", "s")); err == nil {
		t.Error("duplicate part names must fail")
	}
	bad := New("bad") // empty assay fails validation
	if _, err := Merge("withbad", bad); err == nil {
		t.Error("invalid part must fail")
	}
}

func TestMergedAssayStats(t *testing.T) {
	m, err := Merge("panel", lane("a", "sa"), lane("b", "sb"), lane("c", "sc"))
	if err != nil {
		t.Fatal(err)
	}
	ops, deps, tasks := m.Stats()
	if ops != 6 || deps != 3 {
		t.Fatalf("ops=%d deps=%d", ops, deps)
	}
	// 6 injections + 3 transports + 3 sink disposals.
	if tasks != 12 {
		t.Fatalf("tasks = %d want 12", tasks)
	}
}
