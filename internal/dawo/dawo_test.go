package dawo

import (
	"testing"
	"time"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/contam"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/schedule"
	"pathdriverwash/internal/synth"
)

// fixture synthesizes an assay with guaranteed cross-contamination: a
// chain of distinct-fluid mixes over shared channels.
func fixture(t *testing.T) *synth.Result {
	t.Helper()
	a := assay.New("dawo-fx")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 2, Output: "f1",
		Reagents: []assay.FluidType{"r1", "r2"}})
	a.MustAddOp(&assay.Operation{ID: "o2", Kind: assay.Mix, Duration: 2, Output: "f2",
		Reagents: []assay.FluidType{"r3"}})
	a.MustAddOp(&assay.Operation{ID: "o3", Kind: assay.Mix, Duration: 2, Output: "f3"})
	a.MustAddEdge("o1", "o3")
	a.MustAddEdge("o2", "o3")
	res, err := synth.Synthesize(a, synth.Config{
		Devices: []synth.DeviceSpec{{Kind: grid.Mixer, Count: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOptimizeReachesCleanFixpoint(t *testing.T) {
	res := fixture(t)
	out, err := Optimize(res.Schedule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Schedule.Validate(); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	// Oracle: no outstanding contamination under DAWO's own conservative
	// policy (and therefore under PDW's laxer one).
	an, err := contam.AnalyzeWithPolicy(out.Schedule, policy)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Requirements) != 0 {
		t.Fatalf("outstanding requirements: %v", an.Requirements)
	}
	if err := contam.Verify(out.Schedule); err != nil {
		t.Fatalf("PDW-policy verify: %v", err)
	}
}

func TestOptimizeInsertsWashes(t *testing.T) {
	res := fixture(t)
	out, err := Optimize(res.Schedule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Washes) == 0 {
		t.Fatal("expected washes on a contaminated assay")
	}
	n := len(out.Schedule.TasksOf(schedule.Wash))
	if n != len(out.Washes) {
		t.Fatalf("schedule has %d wash tasks, result lists %d", n, len(out.Washes))
	}
	for _, w := range out.Schedule.TasksOf(schedule.Wash) {
		if err := w.Path.ValidateComplete(out.Schedule.Chip); err != nil {
			t.Errorf("wash %s: %v", w.ID, err)
		}
	}
}

func TestMakespanNotBelowBase(t *testing.T) {
	res := fixture(t)
	out, err := Optimize(res.Schedule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Schedule.Makespan() < res.Schedule.Makespan() {
		t.Fatalf("washes cannot speed the assay up: %d < %d",
			out.Schedule.Makespan(), res.Schedule.Makespan())
	}
}

func TestNoWashesNeededOnSameFluid(t *testing.T) {
	// Single op, single reagent: nothing is reused by a foreign task.
	a := assay.New("clean")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 2, Output: "f1",
		Reagents: []assay.FluidType{"r1"}})
	res, err := synth.Synthesize(a, synth.Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Optimize(res.Schedule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Washes) != 0 {
		t.Fatalf("clean assay got %d washes", len(out.Washes))
	}
	if out.Schedule.Makespan() != res.Schedule.Makespan() {
		t.Fatal("wash-free result should match base makespan")
	}
}

func TestWashDuration(t *testing.T) {
	res := fixture(t)
	s := res.Schedule
	// cell 1 mm, v_f 10 mm/s, t_d 2 s: 20 cells -> 2 + 2 = 4 s.
	if d := WashDuration(s, 20); d != 4 {
		t.Errorf("WashDuration(20) = %d want 4", d)
	}
	if d := WashDuration(s, 1); d != 3 {
		t.Errorf("WashDuration(1) = %d want 3 (ceil(0.1+2))", d)
	}
	s.Chip.FlowVelocityMMs = 0
	if d := WashDuration(s, 5); d != 2 {
		t.Errorf("WashDuration with v=0 = %d want 2", d)
	}
	s.Chip.FlowVelocityMMs = 10
}

func TestDeterministic(t *testing.T) {
	res := fixture(t)
	o1, err := Optimize(res.Schedule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Optimize(res.Schedule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if o1.Schedule.Makespan() != o2.Schedule.Makespan() || len(o1.Washes) != len(o2.Washes) {
		t.Fatal("DAWO is nondeterministic")
	}
}

func TestConservativePolicyDemandsMore(t *testing.T) {
	res := fixture(t)
	lax, err := contam.Analyze(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := contam.AnalyzeWithPolicy(res.Schedule, policy)
	if err != nil {
		t.Fatal(err)
	}
	if len(cons.Requirements) < len(lax.Requirements) {
		t.Fatalf("conservative policy yields fewer requirements (%d < %d)",
			len(cons.Requirements), len(lax.Requirements))
	}
}

func TestTimeLimitSurfaced(t *testing.T) {
	res := fixture(t)
	_, err := Optimize(res.Schedule, Options{TimeLimit: time.Nanosecond})
	if err == nil {
		t.Fatal("nanosecond budget must report a time-limit error")
	}
}

func TestMaxRoundsSurfaced(t *testing.T) {
	res := fixture(t)
	// One round is never enough on this fixture (requirements remain
	// after the first insertion because removals re-contaminate).
	_, err := Optimize(res.Schedule, Options{MaxRounds: 1})
	if err == nil {
		t.Skip("fixture converged in one round; nothing to assert")
	}
}
