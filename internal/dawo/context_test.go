package dawo

import (
	"context"
	"errors"
	"testing"
	"time"

	"pathdriverwash/internal/contam"
	"pathdriverwash/internal/solve"
)

func TestOptimizeContextCanceledStillClean(t *testing.T) {
	res := fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := OptimizeContext(ctx, res.Schedule, Options{})
	if err != nil {
		t.Fatalf("canceled ctx must degrade, not error: %v", err)
	}
	if err := contam.Verify(out.Schedule); err != nil {
		t.Fatalf("schedule not clean: %v", err)
	}
	if out.Stats == nil || !out.Stats.Canceled {
		t.Error("Stats.Canceled not set on a canceled run")
	}
}

func TestBudgetTotalDegradesNotErrors(t *testing.T) {
	res := fixture(t)
	out, err := OptimizeContext(context.Background(), res.Schedule, Options{
		Budget: solve.Budget{Total: time.Nanosecond},
	})
	if err != nil {
		t.Fatalf("expired Budget.Total must degrade, not error: %v", err)
	}
	if err := contam.Verify(out.Schedule); err != nil {
		t.Fatalf("schedule not clean: %v", err)
	}
}

func TestDeprecatedTimeLimitIsBudgetExceeded(t *testing.T) {
	res := fixture(t)
	_, err := Optimize(res.Schedule, Options{TimeLimit: time.Nanosecond})
	if err == nil {
		t.Fatal("deprecated TimeLimit must still error on expiry")
	}
	if !errors.Is(err, solve.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want errors.Is(err, ErrBudgetExceeded)", err)
	}
}

func TestStatsPhasesAndSkips(t *testing.T) {
	res := fixture(t)
	out, err := Optimize(res.Schedule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats == nil || len(out.Stats.Phases) == 0 {
		t.Fatal("no phase stats recorded")
	}
	if len(out.Stats.Skips) == 0 {
		t.Fatal("no skip counts recorded")
	}
}
