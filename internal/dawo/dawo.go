// Package dawo implements the comparison baseline of Sec. IV: the
// delay-aware wash optimization method of [10]. Following the paper's
// description:
//
//   - wash operations are introduced from the positions of contaminated
//     spots, conservatively (no Type-2 same-fluid skip: any foreign
//     residue on a reused cell is washed);
//   - each contaminated region is washed by its own independent path
//     computed with breadth-first search (no resource sharing between
//     wash operations, no global optimization);
//   - wash operations are assigned to time intervals with a sweep-line
//     style earliest-fit pass, delaying subsequent tasks when no free
//     interval exists.
//
// Like PDW, DAWO runs to a contamination-free fixpoint, so its output
// schedules pass the same correctness oracle (contam.Verify).
package dawo

import (
	"fmt"
	"math"
	"time"

	"pathdriverwash/internal/contam"
	"pathdriverwash/internal/replan"
	"pathdriverwash/internal/schedule"
	"pathdriverwash/internal/washpath"
)

// Options tunes the baseline.
type Options struct {
	// MaxRounds caps wash-insertion fixpoint rounds (default 60).
	MaxRounds int
	// TimeLimit caps total optimization time (default 60 s).
	TimeLimit time.Duration
}

// Result is the baseline's output.
type Result struct {
	// Schedule is the rebuilt execution procedure with washes.
	Schedule *schedule.Schedule
	// Washes are the inserted wash operations.
	Washes []replan.WashSpec
	// Rounds is the number of fixpoint rounds used.
	Rounds int
}

// policy is DAWO's conservative contamination judgement: residue of any
// foreign task counts, even of the same fluid type.
var policy = contam.Policy{IgnoreFluidTypes: true}

// Optimize inserts washes into the base (wash-free) schedule.
func Optimize(base *schedule.Schedule, opts Options) (*Result, error) {
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 60
	}
	tl := opts.TimeLimit
	if tl <= 0 {
		tl = 60 * time.Second
	}
	deadline := time.Now().Add(tl)

	cur := base
	var washes []replan.WashSpec
	for round := 1; round <= maxRounds; round++ {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dawo: time limit after %d rounds", round-1)
		}
		an, err := contam.AnalyzeWithPolicy(cur, policy)
		if err != nil {
			return nil, err
		}
		if len(an.Requirements) == 0 {
			if err := cur.Validate(); err != nil {
				return nil, fmt.Errorf("dawo: final schedule invalid: %w", err)
			}
			return &Result{Schedule: cur, Washes: washes, Rounds: round - 1}, nil
		}
		groups := contam.GroupRequirements(an.Requirements)
		// No merging: each contaminated region gets its own wash (the
		// baseline's lack of resource sharing).
		for _, g := range groups {
			plans, coveredSets, err := washpath.BuildCover(cur.Chip, g.Targets, washpath.Options{})
			if err != nil {
				return nil, fmt.Errorf("dawo: wash path for %v: %w", g.Targets, err)
			}
			for i, plan := range plans {
				washes = append(washes, replan.WashSpec{
					ID:       fmt.Sprintf("w%d", len(washes)+1),
					Path:     plan.Path,
					Targets:  coveredSets[i],
					Duration: WashDuration(cur, plan.Path.Len()),
					Culprits: g.Culprits,
					Before:   g.Before,
				})
			}
		}
		rp, err := replan.Build(base, washes)
		if err != nil {
			return nil, err
		}
		cur, err = rp.Greedy()
		if err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("dawo: no fixpoint in %d rounds", maxRounds)
}

// WashDuration computes t(w) = L(l_w)/v_f + t_d (Eq. 17) rounded up to
// whole seconds, at least 1 s.
func WashDuration(s *schedule.Schedule, pathCells int) int {
	c := s.Chip
	secs := 0.0
	if c.FlowVelocityMMs > 0 {
		secs = c.CellLengthOf(pathCells) / c.FlowVelocityMMs
	}
	d := int(math.Ceil(secs + c.DissolutionS))
	if d < 1 {
		d = 1
	}
	return d
}
