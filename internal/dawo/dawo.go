// Package dawo implements the comparison baseline of Sec. IV: the
// delay-aware wash optimization method of [10]. Following the paper's
// description:
//
//   - wash operations are introduced from the positions of contaminated
//     spots, conservatively (no Type-2 same-fluid skip: any foreign
//     residue on a reused cell is washed);
//   - each contaminated region is washed by its own independent path
//     computed with breadth-first search (no resource sharing between
//     wash operations, no global optimization);
//   - wash operations are assigned to time intervals with a sweep-line
//     style earliest-fit pass, delaying subsequent tasks when no free
//     interval exists.
//
// Like PDW, DAWO runs to a contamination-free fixpoint, so its output
// schedules pass the same correctness oracle (contam.Verify).
package dawo

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"pathdriverwash/internal/contam"
	"pathdriverwash/internal/obs"
	"pathdriverwash/internal/replan"
	"pathdriverwash/internal/schedule"
	"pathdriverwash/internal/solve"
	"pathdriverwash/internal/washpath"
)

// Options tunes the baseline.
type Options struct {
	// MaxRounds caps wash-insertion fixpoint rounds (default 60).
	MaxRounds int
	// Budget bounds the run; only Budget.Total applies (DAWO solves no
	// inner ILPs). Unlike the deprecated TimeLimit below, expiry of the
	// Budget.Total deadline degrades gracefully: the remaining fixpoint
	// rounds (pure BFS work) complete and the clean schedule is
	// returned with Stats.Canceled set.
	Budget solve.Budget
	// TimeLimit caps total optimization time (default 60 s) and errors
	// on expiry.
	//
	// Deprecated: prefer Budget.Total (or a context deadline), which
	// returns the finished schedule instead of an error.
	TimeLimit time.Duration
}

// Result is the baseline's output.
type Result struct {
	// Schedule is the rebuilt execution procedure with washes.
	Schedule *schedule.Schedule
	// Washes are the inserted wash operations.
	Washes []replan.WashSpec
	// Rounds is the number of fixpoint rounds used.
	Rounds int
	// Stats is the structured solve telemetry (phase wall times and the
	// conservative policy's skip counts; DAWO runs no ILPs).
	Stats *solve.Stats
}

// policy is DAWO's conservative contamination judgement: residue of any
// foreign task counts, even of the same fluid type.
var policy = contam.Policy{IgnoreFluidTypes: true}

// Optimize inserts washes into the base (wash-free) schedule; see
// OptimizeContext.
func Optimize(base *schedule.Schedule, opts Options) (*Result, error) {
	return OptimizeContext(context.Background(), base, opts)
}

// OptimizeContext is Optimize under a context. DAWO's fixpoint rounds
// are pure BFS and sweep work — there is no partial incumbent a caller
// could use (an unconverged schedule is still contaminated) — so a
// canceled ctx or an expired Budget.Total does not abort: the remaining
// rounds complete (cheaply) and the clean schedule is returned with
// Stats.Canceled set. Only the deprecated Options.TimeLimit errors on
// expiry, preserving the historical contract.
func OptimizeContext(ctx context.Context, base *schedule.Schedule, opts Options) (*Result, error) {
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 60
	}
	tl := opts.TimeLimit
	if tl <= 0 {
		tl = 60 * time.Second
	}
	deadline := time.Now().Add(tl)
	ctx, stop := opts.Budget.Context(ctx)
	defer stop()
	defer func() { solve.ObserveOverrun(ctx) }()
	ctx, span := obs.Start(ctx, "dawo.optimize", obs.A("tasks", len(base.Tasks())))
	defer span.End()
	stats := &solve.Stats{}
	// Mirror phase transitions and cancellation into the live progress
	// view when the root caller attached one to the context.
	prog := solve.ProgressFromContext(ctx)
	stats.BindProgress(prog)
	cp := solve.NewCheckpoint(ctx)
	ctx, endFix := stats.StartPhaseContext(ctx, "wash-insertion")

	cur := base
	var washes []replan.WashSpec
	var firstSkips map[contam.SkipReason]int
	for round := 1; round <= maxRounds; round++ {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dawo: %w after %d rounds", solve.ErrBudgetExceeded, round-1)
		}
		// DAWO solves no ILPs; the fixpoint round is its unit of live
		// progress (one label store per round, rounds are few).
		prog.SetModel(fmt.Sprintf("bfs round %d", round))
		an, err := analyzeRound(ctx, &cp, cur)
		if err != nil {
			return nil, err
		}
		if firstSkips == nil {
			firstSkips = an.Skips
		}
		if len(an.Requirements) == 0 {
			if err := cur.Validate(); err != nil {
				return nil, fmt.Errorf("dawo: final schedule invalid: %w", err)
			}
			endFix()
			stats.SetSkips(skipNames(firstSkips))
			if cp.Err() != nil {
				stats.MarkCanceled()
			}
			if span != nil {
				span.SetAttr("rounds", round-1)
				span.SetAttr("washes", len(washes))
			}
			return &Result{Schedule: cur, Washes: washes, Rounds: round - 1, Stats: stats}, nil
		}
		groups := contam.GroupRequirements(an.Requirements)
		// No merging: each contaminated region gets its own wash (the
		// baseline's lack of resource sharing).
		for _, g := range groups {
			plans, coveredSets, err := washpath.BuildCoverContext(ctx, cur.Chip, g.Targets, washpath.Options{})
			if err != nil {
				return nil, fmt.Errorf("dawo: wash path for %v: %w", g.Targets, err)
			}
			for i, plan := range plans {
				washes = append(washes, replan.WashSpec{
					ID:       fmt.Sprintf("w%d", len(washes)+1),
					Path:     plan.Path,
					Targets:  coveredSets[i],
					Duration: WashDuration(cur, plan.Path.Len()),
					Culprits: g.Culprits,
					Before:   g.Before,
				})
			}
		}
		rp, err := replan.Build(base, washes)
		if err != nil {
			return nil, err
		}
		cur, err = rp.Greedy()
		if err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("dawo: no fixpoint in %d rounds: %w", maxRounds, solve.ErrBudgetExceeded)
}

// analyzeRound runs the conservative necessity analysis for one
// fixpoint round: checkpointed while the budget is live (so a deadline
// aborts mid-analysis within one stride), completion mode once
// cancellation has been observed — the fixpoint needs a complete
// analysis to converge to a clean schedule, and the remaining rounds
// are pure BFS work.
func analyzeRound(ctx context.Context, cp *solve.Checkpoint, s *schedule.Schedule) (*contam.Analysis, error) {
	if !cp.Canceled() {
		an, err := contam.AnalyzeWithPolicyContext(ctx, s, policy)
		if err == nil || !errors.Is(err, solve.ErrBudgetExceeded) {
			return an, err
		}
		cp.Err() // latch the cancellation the aborted analysis observed
	}
	return contam.AnalyzeWithPolicy(s, policy)
}

// skipNames converts the typed skip counters to the string keys the
// solve.Stats trace carries.
func skipNames(skips map[contam.SkipReason]int) map[string]int {
	if skips == nil {
		return nil
	}
	out := make(map[string]int, len(skips))
	for r, n := range skips {
		out[r.String()] = n
	}
	return out
}

// WashDuration computes t(w) = L(l_w)/v_f + t_d (Eq. 17) rounded up to
// whole seconds, at least 1 s.
func WashDuration(s *schedule.Schedule, pathCells int) int {
	c := s.Chip
	secs := 0.0
	if c.FlowVelocityMMs > 0 {
		secs = c.CellLengthOf(pathCells) / c.FlowVelocityMMs
	}
	d := int(math.Ceil(secs + c.DissolutionS))
	if d < 1 {
		d = 1
	}
	return d
}
