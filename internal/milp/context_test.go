package milp

import (
	"context"
	"errors"
	"testing"
	"time"

	"pathdriverwash/internal/lp"
	"pathdriverwash/internal/solve"
)

// hardKnapsack builds a strongly correlated knapsack whose branch &
// bound tree is far too large to finish within the test's sleep, so a
// mid-search cancel is guaranteed to land while the solver is working.
func hardKnapsack(n int) (*Problem, []float64) {
	p := NewProblem(0)
	coefs := map[int]float64{}
	total := 0.0
	for i := 0; i < n; i++ {
		v := p.AddBinary()
		w := float64(10 + 3*i)
		p.SetObjective(v, -(w + 5)) // maximize value (minimize negation)
		coefs[v] = w
		total += w
	}
	p.LP.AddConstraint(coefs, lp.LE, total/2, "cap")
	return p, make([]float64, n) // all-zeros incumbent is always feasible
}

func TestSolveContextCancelReturnsIncumbentFast(t *testing.T) {
	p, inc := hardKnapsack(45)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type outcome struct {
		r   Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		r, err := SolveContext(ctx, p, Options{TimeLimit: time.Minute, Incumbent: inc})
		done <- outcome{r, err}
	}()

	time.Sleep(200 * time.Millisecond)
	t0 := time.Now()
	cancel()
	o := <-done
	latency := time.Since(t0)

	if o.err != nil {
		t.Fatalf("cancellation must not be an error: %v", o.err)
	}
	if latency > 100*time.Millisecond {
		t.Fatalf("returned %v after cancel, want <100ms", latency)
	}
	if o.r.Wall < 150*time.Millisecond {
		t.Skipf("solver finished in %v before the cancel landed; instance too easy here", o.r.Wall)
	}
	if o.r.Status != Feasible {
		t.Fatalf("status = %v, want Feasible (best incumbent on cancel)", o.r.Status)
	}
	if o.r.X == nil {
		t.Fatal("incumbent lost on cancellation")
	}
	if err := p.CheckFeasible(o.r.X); err != nil {
		t.Fatalf("returned incumbent infeasible: %v", err)
	}
}

func TestSolveContextDeadlineBeatsTimeLimit(t *testing.T) {
	// A context deadline earlier than Options.TimeLimit must win.
	p, inc := hardKnapsack(45)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	r, err := SolveContext(ctx, p, Options{TimeLimit: time.Minute, Incumbent: inc})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(t0); el > time.Second {
		t.Fatalf("ran %v; the 150ms ctx deadline should have stopped it", el)
	}
	if r.X == nil {
		t.Fatal("incumbent lost on deadline expiry")
	}
}

func TestSolveContextPreCanceled(t *testing.T) {
	p, inc := hardKnapsack(20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := SolveContext(ctx, p, Options{Incumbent: inc})
	if err != nil {
		t.Fatalf("pre-canceled ctx must not error: %v", err)
	}
	if r.Status != Feasible || r.X == nil {
		t.Fatalf("status = %v X = %v, want the provided incumbent back", r.Status, r.X)
	}
}

func TestBadIncumbentIsErrInfeasible(t *testing.T) {
	p := NewProblem(0)
	v := p.AddBinary()
	p.LP.AddConstraint(map[int]float64{v: 1}, lp.LE, 0, "zero")
	_, err := Solve(p, Options{Incumbent: []float64{1}})
	if err == nil {
		t.Fatal("infeasible incumbent must be rejected")
	}
	if !errors.Is(err, solve.ErrInfeasible) {
		t.Fatalf("err = %v, want errors.Is(err, solve.ErrInfeasible)", err)
	}
}
