package milp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"pathdriverwash/internal/lp"
)

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-5*(1+math.Abs(b)) }

func solveOpt(t *testing.T, p *Problem) Result {
	t.Helper()
	r, err := Solve(p, Options{TimeLimit: 20 * time.Second})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if r.Status != Optimal {
		t.Fatalf("status = %v want optimal", r.Status)
	}
	if err := p.CheckFeasible(r.X); err != nil {
		t.Fatalf("returned point infeasible: %v", err)
	}
	return r
}

func TestKnapsack(t *testing.T) {
	// max 10a+6b+4c s.t. a+b+c<=2 binaries -> a,b -> 16.
	p := NewProblem(0)
	a, b, c := p.AddBinary(), p.AddBinary(), p.AddBinary()
	p.SetObjective(a, -10)
	p.SetObjective(b, -6)
	p.SetObjective(c, -4)
	p.LP.AddConstraint(map[int]float64{a: 1, b: 1, c: 1}, lp.LE, 2, "cap")
	r := solveOpt(t, p)
	if !approx(r.Obj, -16) {
		t.Fatalf("obj = %g want -16 (x=%v)", r.Obj, r.X)
	}
}

func TestFractionalLPIntegerGap(t *testing.T) {
	// max x s.t. 2x <= 3, x integer in [0,5] -> x=1 (LP gives 1.5).
	p := NewProblem(0)
	x := p.AddContinuous(0, 5)
	p.Integer[x] = true
	p.SetObjective(x, -1)
	p.LP.AddConstraint(map[int]float64{x: 2}, lp.LE, 3, "half")
	r := solveOpt(t, p)
	if !approx(r.Obj, -1) || !approx(r.X[x], 1) {
		t.Fatalf("x = %v obj %g want x=1", r.X, r.Obj)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min y s.t. y >= 2.5 - 2k, y >= 2k - 0.5, k binary.
	// k=0 -> y=2.5 ; k=1 -> y=1.5. Optimum 1.5.
	p := NewProblem(0)
	y := p.AddContinuous(0, 100)
	k := p.AddBinary()
	p.SetObjective(y, 1)
	p.LP.AddConstraint(map[int]float64{y: 1, k: 2}, lp.GE, 2.5, "a")
	p.LP.AddConstraint(map[int]float64{y: 1, k: -2}, lp.GE, -0.5, "b")
	r := solveOpt(t, p)
	if !approx(r.Obj, 1.5) || !approx(r.X[k], 1) {
		t.Fatalf("obj = %g x = %v want 1.5 with k=1", r.Obj, r.X)
	}
}

func TestInfeasibleMILP(t *testing.T) {
	p := NewProblem(0)
	a := p.AddBinary()
	b := p.AddBinary()
	p.LP.AddConstraint(map[int]float64{a: 1, b: 1}, lp.GE, 3, "impossible")
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Infeasible {
		t.Fatalf("status = %v want infeasible", r.Status)
	}
}

func TestUnboundedMILP(t *testing.T) {
	p := NewProblem(0)
	x := p.AddContinuous(0, math.Inf(1))
	p.SetObjective(x, -1)
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Unbounded {
		t.Fatalf("status = %v want unbounded", r.Status)
	}
}

func TestIncumbentPruning(t *testing.T) {
	// Give the optimum as an incumbent; solver must still report optimal
	// with the same value.
	p := NewProblem(0)
	a, b := p.AddBinary(), p.AddBinary()
	p.SetObjective(a, -3)
	p.SetObjective(b, -2)
	p.LP.AddConstraint(map[int]float64{a: 1, b: 1}, lp.LE, 1, "one")
	r, err := Solve(p, Options{Incumbent: []float64{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || !approx(r.Obj, -3) {
		t.Fatalf("r = %+v", r)
	}
}

func TestBadIncumbentRejected(t *testing.T) {
	p := NewProblem(0)
	a := p.AddBinary()
	p.LP.AddConstraint(map[int]float64{a: 1}, lp.LE, 0, "zero")
	if _, err := Solve(p, Options{Incumbent: []float64{1}}); err == nil {
		t.Fatal("infeasible incumbent must be rejected")
	}
	if _, err := Solve(p, Options{Incumbent: []float64{0.5}}); err == nil {
		t.Fatal("fractional incumbent must be rejected")
	}
	if _, err := Solve(p, Options{Incumbent: []float64{0, 0}}); err == nil {
		t.Fatal("wrong-length incumbent must be rejected")
	}
}

func TestTimeLimitReturnsIncumbent(t *testing.T) {
	// A tiny time limit with a valid incumbent must return Feasible (or
	// Optimal if the root solves instantly) and never lose the incumbent.
	p := NewProblem(0)
	var vars []int
	for i := 0; i < 14; i++ {
		vars = append(vars, p.AddBinary())
	}
	coefs := map[int]float64{}
	for i, v := range vars {
		p.SetObjective(v, -float64(1+i%5))
		coefs[v] = float64(1 + (i*7)%4)
	}
	p.LP.AddConstraint(coefs, lp.LE, 9, "cap")
	inc := make([]float64, len(vars))
	r, err := Solve(p, Options{TimeLimit: time.Nanosecond, Incumbent: inc})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Feasible && r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if r.X == nil {
		t.Fatal("incumbent lost")
	}
}

func TestNodeLimit(t *testing.T) {
	p := NewProblem(0)
	var coefs = map[int]float64{}
	for i := 0; i < 12; i++ {
		v := p.AddBinary()
		p.SetObjective(v, -float64(3+i%7))
		coefs[v] = float64(2 + i%5)
	}
	p.LP.AddConstraint(coefs, lp.LE, 11, "cap")
	r, err := Solve(p, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes > 1 {
		t.Fatalf("explored %d nodes with MaxNodes=1", r.Nodes)
	}
	if r.Status != Limit && r.Status != Feasible && r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
}

func TestGap(t *testing.T) {
	r := Result{Status: Optimal, Obj: 5, Bound: 5}
	if r.Gap() != 0 {
		t.Error("optimal gap must be 0")
	}
	r = Result{Status: Feasible, Obj: 10, Bound: 8}
	if !approx(r.Gap(), 0.2) {
		t.Errorf("gap = %g want 0.2", r.Gap())
	}
	r = Result{Status: Infeasible}
	if !math.IsInf(r.Gap(), 1) {
		t.Error("infeasible gap must be +inf")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Feasible: "feasible(limit)", Infeasible: "infeasible",
		Unbounded: "unbounded", Limit: "limit",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q want %q", s, s.String(), want)
		}
	}
}

func TestIntegerMarksLengthChecked(t *testing.T) {
	p := NewProblem(2)
	p.Integer = p.Integer[:1]
	if _, err := Solve(p, Options{}); err == nil {
		t.Fatal("mismatched Integer length must error")
	}
}

// TestRandomKnapsacksAgainstBruteForce cross-checks B&B against explicit
// enumeration of all 2^n binary assignments.
func TestRandomKnapsacksAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 120; trial++ {
		n := 3 + rng.Intn(8) // up to 10 binaries
		p := NewProblem(0)
		values := make([]float64, n)
		weights := make([]float64, n)
		coefs := map[int]float64{}
		for i := 0; i < n; i++ {
			v := p.AddBinary()
			values[i] = float64(rng.Intn(20) - 5)
			weights[i] = float64(rng.Intn(9) + 1)
			p.SetObjective(v, values[i])
			coefs[v] = weights[i]
		}
		cap := float64(rng.Intn(20) + 1)
		p.LP.AddConstraint(coefs, lp.LE, cap, "cap")
		// Optional extra GE constraint to exercise phase 1.
		if trial%3 == 0 {
			ge := map[int]float64{}
			for i := 0; i < n; i++ {
				ge[i] = 1
			}
			p.LP.AddConstraint(ge, lp.GE, 1, "atleast1")
		}

		best := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			w, v := 0.0, 0.0
			cnt := 0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					w += weights[i]
					v += values[i]
					cnt++
				}
			}
			if w > cap {
				continue
			}
			if trial%3 == 0 && cnt < 1 {
				continue
			}
			if v < best {
				best = v
			}
		}
		r, err := Solve(p, Options{TimeLimit: 20 * time.Second})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.IsInf(best, 1) {
			if r.Status != Infeasible {
				t.Fatalf("trial %d: brute force infeasible, solver %v", trial, r.Status)
			}
			continue
		}
		if r.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, r.Status)
		}
		if math.Abs(r.Obj-best) > 1e-5 {
			t.Fatalf("trial %d: solver %g brute force %g", trial, r.Obj, best)
		}
	}
}

// TestDisjunctiveSchedulingShape solves the exact big-M structure the
// time-window ILP of Sec. III uses (Eqs. 3/8/19-20): two unit tasks on a
// shared resource must serialize; makespan 2, not 1.
func TestDisjunctiveSchedulingShape(t *testing.T) {
	const M = 1000
	p := NewProblem(0)
	s1 := p.AddContinuous(0, M)
	s2 := p.AddContinuous(0, M)
	mk := p.AddContinuous(0, M)
	k := p.AddBinary()
	p.SetObjective(mk, 1)
	// (1-k)M + s2 >= s1 + 1  ->  s2 - s1 - 1 >= -(1-k)M -> s2 - s1 + M*(1-k) >= 1
	p.LP.AddConstraint(map[int]float64{s2: 1, s1: -1, k: -M}, lp.GE, 1-M, "k0")
	// kM + s1 >= s2 + 1
	p.LP.AddConstraint(map[int]float64{s1: 1, s2: -1, k: M}, lp.GE, 1, "k1")
	p.LP.AddConstraint(map[int]float64{mk: 1, s1: -1}, lp.GE, 1, "mk1")
	p.LP.AddConstraint(map[int]float64{mk: 1, s2: -1}, lp.GE, 1, "mk2")
	r := solveOpt(t, p)
	if !approx(r.Obj, 2) {
		t.Fatalf("makespan = %g want 2 (x=%v)", r.Obj, r.X)
	}
}

func TestGeneralIntegerBranching(t *testing.T) {
	// max 7x+2y s.t. 3x+y<=10, x,y int -> x=3,y=1: 23.
	p := NewProblem(0)
	x := p.AddContinuous(0, 100)
	y := p.AddContinuous(0, 100)
	p.Integer[x], p.Integer[y] = true, true
	p.SetObjective(x, -7)
	p.SetObjective(y, -2)
	p.LP.AddConstraint(map[int]float64{x: 3, y: 1}, lp.LE, 10, "cap")
	r := solveOpt(t, p)
	if !approx(r.Obj, -23) {
		t.Fatalf("obj = %g want -23 (x=%v)", r.Obj, r.X)
	}
}

// TestRelaxationBoundProperty: on random 0-1 problems, the root LP
// relaxation value never exceeds the MILP optimum (minimization), and
// the reported Bound is a valid lower bound on the incumbent.
func TestRelaxationBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(6)
		p := NewProblem(0)
		coefs := map[int]float64{}
		ge := map[int]float64{}
		for i := 0; i < n; i++ {
			v := p.AddBinary()
			p.SetObjective(v, float64(rng.Intn(15)-7))
			coefs[v] = float64(rng.Intn(5) + 1)
			ge[v] = 1
		}
		p.LP.AddConstraint(coefs, lp.LE, float64(rng.Intn(12)+2), "cap")
		p.LP.AddConstraint(ge, lp.GE, 1, "atleast")

		relax := p.LP
		relaxed, err := lp.Solve(&relax)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(p, Options{TimeLimit: 20 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status == Infeasible {
			continue
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		if relaxed.Status == lp.Optimal && relaxed.Obj > res.Obj+1e-6 {
			t.Fatalf("trial %d: relaxation %g above optimum %g", trial, relaxed.Obj, res.Obj)
		}
		if res.Bound > res.Obj+1e-6 {
			t.Fatalf("trial %d: bound %g above incumbent %g", trial, res.Bound, res.Obj)
		}
	}
}
