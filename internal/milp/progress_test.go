package milp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"pathdriverwash/internal/lp"
	"pathdriverwash/internal/solve"
)

// progressKnapsack builds a knapsack hard enough that branch & bound
// explores several nodes and improves its incumbent at least once.
func progressKnapsack(n int) *Problem {
	rng := rand.New(rand.NewSource(7))
	p := NewProblem(0)
	coefs := map[int]float64{}
	for i := 0; i < n; i++ {
		v := p.AddBinary()
		p.SetObjective(v, float64(-(rng.Intn(30) + 1)))
		coefs[v] = float64(rng.Intn(9) + 1)
	}
	p.LP.AddConstraint(coefs, lp.LE, float64(2*n), "cap")
	return p
}

func TestProgressPublishedFromBranchAndBound(t *testing.T) {
	prog := solve.NewProgress()
	ctx := solve.WithProgress(context.Background(), prog)
	res, err := SolveContext(ctx, progressKnapsack(16), Options{TimeLimit: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}

	s := prog.Snapshot()
	if s.Nodes != int64(res.Nodes) {
		t.Fatalf("progress nodes = %d, result nodes = %d", s.Nodes, res.Nodes)
	}
	if s.Incumbents < 1 {
		t.Fatal("no incumbent published")
	}
	if s.BestObj == nil || math.Abs(*s.BestObj-res.Obj) > 1e-9 {
		t.Fatalf("best_obj = %v, result obj = %g", s.BestObj, res.Obj)
	}
	// The proven optimum closes the gap: the final bound equals the
	// incumbent and the relative gap collapses to 0.
	if s.Bound == nil || s.Gap == nil {
		t.Fatalf("bound/gap missing: %+v", s)
	}
	if *s.Gap != 0 {
		t.Fatalf("proven-optimal gap = %g, want 0", *s.Gap)
	}
	// Pivots flow through from the LP relaxations underneath.
	if s.Pivots == 0 {
		t.Fatal("no simplex pivots published")
	}
}

func TestProgressCountsPruning(t *testing.T) {
	prog := solve.NewProgress()
	ctx := solve.WithProgress(context.Background(), prog)
	// 120 random knapsacks: at least some prune by bound.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(6)
		p := NewProblem(0)
		coefs := map[int]float64{}
		for i := 0; i < n; i++ {
			v := p.AddBinary()
			p.SetObjective(v, float64(rng.Intn(20)-10))
			coefs[v] = float64(rng.Intn(9) + 1)
		}
		p.LP.AddConstraint(coefs, lp.LE, float64(rng.Intn(3*n)+1), "cap")
		if _, err := SolveContext(ctx, p, Options{TimeLimit: 20 * time.Second}); err != nil {
			t.Fatal(err)
		}
	}
	s := prog.Snapshot()
	if s.Nodes == 0 || s.Pruned == 0 {
		t.Fatalf("nodes=%d pruned=%d; expected both nonzero across 20 solves", s.Nodes, s.Pruned)
	}
}
