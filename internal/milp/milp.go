// Package milp solves mixed 0-1/integer linear programs with best-first
// branch & bound over the LP relaxations of internal/lp. It stands in
// for the commercial ILP solver (Gurobi) used in the paper's experiments;
// like the paper's setup, solves run under a time limit and return the
// best-effort incumbent when the limit is reached (Sec. IV: "the runtime
// ... was limited ... to return the best-effort results").
package milp

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"pathdriverwash/internal/lp"
	"pathdriverwash/internal/obs"
	"pathdriverwash/internal/solve"
)

// Branch & bound telemetry handles, resolved once at package load.
// Updates inside the node loop are guarded by obs.Enabled(); each node
// costs at least one LP solve, so the enabled cost is noise and the
// disabled cost is one atomic load per node.
var (
	bbNodesTotal      = obs.Default().Counter("pdw_bb_nodes_total")
	bbPrunedTotal     = obs.Default().Counter("pdw_bb_pruned_total")
	bbIncumbentsTotal = obs.Default().Counter("pdw_bb_incumbents_total")
	bbQueueDepth      = obs.Default().Gauge("pdw_bb_queue_depth")
)

// bbBatchEvery is the node interval between bb-batch span events; a
// 200k-node search contributes ~780 events to the trace.
const bbBatchEvery = 256

// Problem is a linear program plus integrality marks.
type Problem struct {
	LP lp.Problem
	// Integer[i] requires variable i to take an integral value. Binary
	// variables are integer variables with bounds [0,1].
	Integer []bool
}

// NewProblem allocates a MILP with n continuous variables.
func NewProblem(n int) *Problem {
	return &Problem{LP: *lp.NewProblem(n), Integer: make([]bool, n)}
}

// AddBinary appends a new binary variable and returns its index.
func (p *Problem) AddBinary() int {
	i := p.LP.NumVars
	p.LP.NumVars++
	p.LP.Objective = append(p.LP.Objective, 0)
	p.Integer = append(p.Integer, true)
	p.LP.SetBounds(i, 0, 1)
	return i
}

// AddContinuous appends a new continuous variable with bounds [lo,hi]
// and returns its index.
func (p *Problem) AddContinuous(lo, hi float64) int {
	i := p.LP.NumVars
	p.LP.NumVars++
	p.LP.Objective = append(p.LP.Objective, 0)
	p.Integer = append(p.Integer, false)
	p.LP.SetBounds(i, lo, hi)
	return i
}

// SetObjective sets the cost coefficient of variable i.
func (p *Problem) SetObjective(i int, c float64) { p.LP.Objective[i] = c }

// Status is the outcome of a MILP solve.
type Status int

// MILP outcomes. Feasible means the search hit a limit with an incumbent
// in hand; Limit means it hit a limit without one.
const (
	Optimal Status = iota
	Feasible
	Infeasible
	Unbounded
	Limit
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible(limit)"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// DefaultTimeLimit is the wall-clock cap applied when Options.TimeLimit
// is zero. A zero TimeLimit never means "unbounded": branch & bound on
// this solver is exponential in the worst case, so an explicit default
// keeps zero-value solves from hanging.
const DefaultTimeLimit = 30 * time.Second

// Options tunes the branch & bound search.
type Options struct {
	// TimeLimit caps wall-clock search time. The zero value silently
	// selects DefaultTimeLimit (30 s); it does NOT mean unbounded. When
	// the caller's context carries an earlier deadline, that deadline
	// wins regardless of TimeLimit.
	TimeLimit time.Duration
	// MaxNodes caps explored nodes; 0 means 200000.
	MaxNodes int
	// Incumbent optionally provides a known feasible point used for
	// pruning from the start (e.g. a heuristic schedule). It is
	// verified; an infeasible incumbent is an error.
	Incumbent []float64
}

// Result is the outcome of Solve.
type Result struct {
	Status Status
	X      []float64
	Obj    float64
	// Bound is the best proven lower bound on the optimum.
	Bound float64
	// Nodes is the number of explored branch & bound nodes.
	Nodes int
	// Pruned counts subproblems discarded by the incumbent bound
	// without an LP solve.
	Pruned int
	// SimplexIters sums simplex pivots over all node relaxations.
	SimplexIters int
	// Incumbents is the incumbent trajectory: one entry per improving
	// feasible solution, in discovery order.
	Incumbents []solve.Incumbent
	// Wall is the solve's wall-clock time.
	Wall time.Duration
}

// Gap returns the relative optimality gap of the incumbent, or +inf if
// there is none.
func (r Result) Gap() float64 {
	if r.Status != Optimal && r.Status != Feasible {
		return math.Inf(1)
	}
	if r.Status == Optimal {
		return 0
	}
	den := math.Max(1, math.Abs(r.Obj))
	return (r.Obj - r.Bound) / den
}

const intTol = 1e-6

type node struct {
	bound  float64
	fixLo  map[int]float64
	fixHi  map[int]float64
	id     int
	depth  int
	fracX  []float64 // LP relaxation point at this node's parent solve
	branch int       // variable branched at this node (-1 for root)
}

type nodeQueue []*node

func (q nodeQueue) Len() int { return len(q) }
func (q nodeQueue) Less(i, j int) bool {
	if q[i].bound != q[j].bound {
		return q[i].bound < q[j].bound
	}
	if q[i].depth != q[j].depth {
		return q[i].depth > q[j].depth // plunge deeper first on ties
	}
	return q[i].id < q[j].id
}
func (q nodeQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x any)   { *q = append(*q, x.(*node)) }
func (q *nodeQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Solve runs branch & bound without external cancellation; see
// SolveContext for the context-aware form.
func Solve(p *Problem, opts Options) (Result, error) {
	return SolveContext(context.Background(), p, opts)
}

// SolveContext runs branch & bound under ctx. The effective deadline is
// the earlier of ctx's deadline and Options.TimeLimit (zero TimeLimit:
// DefaultTimeLimit). Cancellation and deadline expiry are never errors:
// the search stops promptly — mid-relaxation included — and returns the
// best feasible incumbent (Status Feasible), or Status Limit when none
// was found yet.
func SolveContext(ctx context.Context, p *Problem, opts Options) (res Result, err error) {
	start := time.Now()
	if len(p.Integer) != p.LP.NumVars {
		return Result{}, fmt.Errorf("milp: Integer has %d marks for %d variables", len(p.Integer), p.LP.NumVars)
	}
	intVars := 0
	for _, isInt := range p.Integer {
		if isInt {
			intVars++
		}
	}
	ctx, span := obs.Start(ctx, "milp.bnb",
		obs.A("vars", p.LP.NumVars), obs.A("int_vars", intVars),
		obs.A("constraints", len(p.LP.Constraints)))
	defer func() {
		status := "error"
		if err == nil {
			status = res.Status.String()
		}
		if obs.Enabled() {
			obs.Default().Counter("pdw_milp_solves_total", "status", status).Inc()
			obs.Default().Histogram("pdw_milp_wall_seconds", nil).Observe(time.Since(start).Seconds())
		}
		if span != nil {
			span.SetAttr("status", status)
			span.SetAttr("nodes", res.Nodes)
			span.SetAttr("pruned", res.Pruned)
			span.SetAttr("simplex_pivots", res.SimplexIters)
			span.End()
		}
	}()
	limit := opts.TimeLimit
	if limit <= 0 {
		limit = DefaultTimeLimit
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 200000
	}
	deadline := start.Add(limit)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	// The effective deadline is carried as a context so node relaxations
	// stop mid-pivot-loop too, not just between nodes.
	dctx, stop := context.WithDeadline(ctx, deadline)
	defer stop()
	canceled := func() bool {
		select {
		case <-dctx.Done():
			return true
		default:
			return false
		}
	}

	// prog is the optional live progress view of the root solve; each
	// publication below is one atomic op on a path that already paid
	// for an LP solve (per node) or a trajectory append (per
	// incumbent), so the instrumented cost is noise and the detached
	// cost one nil check.
	prog := solve.ProgressFromContext(ctx)

	var haveInc bool
	var incX []float64
	var trajectory []solve.Incumbent
	simplexIters := 0
	pruned := 0
	incObj := math.Inf(1)
	record := func(obj float64, nodes int) {
		trajectory = append(trajectory, solve.Incumbent{
			Obj: obj, Node: nodes, Elapsed: time.Since(start),
		})
		prog.Incumbent(obj)
		if obs.Enabled() {
			bbIncumbentsTotal.Inc()
			span.Event("incumbent", obs.A("obj", obj), obs.A("node", nodes))
		}
	}
	if opts.Incumbent != nil {
		if err := p.CheckFeasible(opts.Incumbent); err != nil {
			return Result{}, fmt.Errorf("milp: provided incumbent is %w: %w", solve.ErrInfeasible, err)
		}
		incX = append([]float64(nil), opts.Incumbent...)
		incObj = p.objOf(incX)
		haveInc = true
		record(incObj, 0)
	}

	solveNode := func(n *node) (lp.Result, error) {
		sub := p.LP // shallow copy; bounds slices replaced below
		lo := append([]float64(nil), padded(p.LP.Lower, p.LP.NumVars, 0)...)
		hi := append([]float64(nil), padded(p.LP.Upper, p.LP.NumVars, math.Inf(1))...)
		for i, v := range n.fixLo {
			if v > lo[i] {
				lo[i] = v
			}
		}
		for i, v := range n.fixHi {
			if v < hi[i] {
				hi[i] = v
			}
		}
		for i := range lo {
			if lo[i] > hi[i]+1e-12 {
				return lp.Result{Status: lp.Infeasible}, nil
			}
		}
		sub.Lower, sub.Upper = lo, hi
		return lp.SolveContext(dctx, &sub)
	}

	root := &node{bound: math.Inf(-1), fixLo: map[int]float64{}, fixHi: map[int]float64{}, branch: -1}
	queue := &nodeQueue{root}
	heap.Init(queue)
	nextID := 1
	nodes := 0
	bestBound := math.Inf(-1)
	hitLimit := false

	for queue.Len() > 0 {
		if nodes >= maxNodes || canceled() || time.Now().After(deadline) {
			hitLimit = true
			break
		}
		n := heap.Pop(queue).(*node)
		// Best-first pop order makes n.bound the best lower bound over
		// all open subproblems: exactly the live "bound" of the solve.
		prog.SetBound(n.bound)
		if haveInc && n.bound >= incObj-1e-9 {
			pruned++
			prog.AddPruned(1)
			if obs.Enabled() {
				bbPrunedTotal.Inc()
			}
			continue // pruned by bound
		}
		res, err := solveNode(n)
		simplexIters += res.Iterations
		if err != nil {
			if errors.Is(err, lp.ErrIterationLimit) ||
				errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				hitLimit = true
				break
			}
			return Result{}, err
		}
		nodes++
		prog.AddNodes(1)
		if obs.Enabled() {
			bbNodesTotal.Inc()
			bbQueueDepth.Set(int64(queue.Len()))
			if nodes%bbBatchEvery == 0 {
				span.Event("bb-batch",
					obs.A("nodes", nodes), obs.A("queue", queue.Len()),
					obs.A("pruned", pruned), obs.A("incumbent", incObj))
			}
		}
		switch res.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			if n.branch < 0 && !haveInc {
				return Result{Status: Unbounded, Nodes: nodes}, nil
			}
			// A branched subproblem relaxation can be unbounded only if
			// the root was; treat as no useful bound and keep searching
			// by branching on the first unfixed integer.
			continue
		}
		if haveInc && res.Obj >= incObj-1e-9 {
			pruned++
			prog.AddPruned(1)
			if obs.Enabled() {
				bbPrunedTotal.Inc()
			}
			continue
		}
		frac := p.mostFractional(res.X)
		if frac < 0 {
			// Integral: new incumbent.
			if !haveInc || res.Obj < incObj-1e-12 {
				incX = roundIntegers(p, res.X)
				incObj = p.objOf(incX)
				haveInc = true
				record(incObj, nodes)
			}
			continue
		}
		v := res.X[frac]
		down := &node{
			bound: res.Obj, id: nextID, depth: n.depth + 1, branch: frac,
			fixLo: n.fixLo, fixHi: withOverride(n.fixHi, frac, math.Floor(v)),
		}
		nextID++
		up := &node{
			bound: res.Obj, id: nextID, depth: n.depth + 1, branch: frac,
			fixLo: withOverride(n.fixLo, frac, math.Ceil(v)), fixHi: n.fixHi,
		}
		nextID++
		heap.Push(queue, down)
		heap.Push(queue, up)
	}

	// Best remaining bound: min over open nodes, or incumbent if closed.
	bestBound = incObj
	for _, n := range *queue {
		if n.bound < bestBound {
			bestBound = n.bound
		}
	}
	// Publish the final bound so a proven optimum shows gap 0 on
	// /debug/solves for the remainder of the root solve.
	prog.SetBound(bestBound)
	out := Result{
		Nodes: nodes, Pruned: pruned, SimplexIters: simplexIters,
		Incumbents: trajectory, Wall: time.Since(start),
	}
	if !hitLimit && queue.Len() == 0 {
		if !haveInc {
			out.Status = Infeasible
			return out, nil
		}
		out.Status, out.X, out.Obj, out.Bound = Optimal, incX, incObj, incObj
		return out, nil
	}
	if haveInc {
		out.Status, out.X, out.Obj, out.Bound = Feasible, incX, incObj, bestBound
		return out, nil
	}
	out.Status, out.Bound = Limit, bestBound
	return out, nil
}

func padded(s []float64, n int, def float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		if i < len(s) {
			out[i] = s[i]
		} else {
			out[i] = def
		}
	}
	return out
}

func withOverride(m map[int]float64, k int, v float64) map[int]float64 {
	out := make(map[int]float64, len(m)+1)
	for kk, vv := range m {
		out[kk] = vv
	}
	out[k] = v
	return out
}

// mostFractional returns the integer variable whose relaxation value is
// farthest from integral, or -1 if all are integral within tolerance.
func (p *Problem) mostFractional(x []float64) int {
	best, bestDist := -1, intTol
	for i, isInt := range p.Integer {
		if !isInt {
			continue
		}
		f := x[i] - math.Floor(x[i])
		d := math.Min(f, 1-f)
		if d > bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

func roundIntegers(p *Problem, x []float64) []float64 {
	out := append([]float64(nil), x...)
	for i, isInt := range p.Integer {
		if isInt {
			out[i] = math.Round(out[i])
		}
	}
	return out
}

func (p *Problem) objOf(x []float64) float64 {
	s := 0.0
	for i := 0; i < p.LP.NumVars && i < len(p.LP.Objective); i++ {
		s += p.LP.Objective[i] * x[i]
	}
	return s
}

// CheckFeasible verifies x against bounds, constraints, and integrality.
func (p *Problem) CheckFeasible(x []float64) error {
	if len(x) != p.LP.NumVars {
		return fmt.Errorf("milp: point has %d entries for %d variables", len(x), p.LP.NumVars)
	}
	const tol = 1e-6
	lo := padded(p.LP.Lower, p.LP.NumVars, 0)
	hi := padded(p.LP.Upper, p.LP.NumVars, math.Inf(1))
	for i, v := range x {
		if v < lo[i]-tol || v > hi[i]+tol {
			return fmt.Errorf("milp: x[%d]=%g violates bounds [%g,%g]", i, v, lo[i], hi[i])
		}
		if p.Integer[i] && math.Abs(v-math.Round(v)) > tol {
			return fmt.Errorf("milp: x[%d]=%g is not integral", i, v)
		}
	}
	for _, c := range p.LP.Constraints {
		s := 0.0
		for i, cf := range c.Coefs {
			s += cf * x[i]
		}
		ok := true
		switch c.Rel {
		case lp.LE:
			ok = s <= c.RHS+1e-5
		case lp.GE:
			ok = s >= c.RHS-1e-5
		case lp.EQ:
			ok = math.Abs(s-c.RHS) <= 1e-5
		}
		if !ok {
			return fmt.Errorf("milp: constraint %q violated: lhs=%g rel=%v rhs=%g", c.Name, s, c.Rel, c.RHS)
		}
	}
	return nil
}
