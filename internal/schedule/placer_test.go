package schedule

import (
	"testing"

	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
)

func TestPlacerSerializesPathConflicts(t *testing.T) {
	c, a := fixture(t)
	s := New(c, a)
	pl := NewPlacer(s)
	t1 := &Task{ID: "t1", Kind: Transport, Path: row(0, 5), Fluid: "f"}
	t2 := &Task{ID: "t2", Kind: Transport, Path: row(3, 9), Fluid: "g"}
	if _, err := pl.Place(t1, 0, 3); err != nil {
		t.Fatal(err)
	}
	start, err := pl.Place(t2, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if start < t1.End {
		t.Fatalf("overlapping-path task placed at %d before %d", start, t1.End)
	}
}

func TestPlacerAllowsDisjointPaths(t *testing.T) {
	c, a := fixture(t)
	s := New(c, a)
	pl := NewPlacer(s)
	t1 := &Task{ID: "t1", Kind: Transport, Path: row(0, 2), Fluid: "f"}
	t2 := &Task{ID: "t2", Kind: Transport, Path: row(8, 9), Fluid: "g"}
	if _, err := pl.Place(t1, 0, 3); err != nil {
		t.Fatal(err)
	}
	start, err := pl.Place(t2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if start != 0 {
		t.Fatalf("disjoint task delayed to %d", start)
	}
}

func TestPlacerSerializesDevice(t *testing.T) {
	c, a := fixture(t)
	s := New(c, a)
	pl := NewPlacer(s)
	mixer := c.Device("mixer")
	o1 := &Task{ID: "a", Kind: Operation, OpID: "o1", Device: mixer}
	o2 := &Task{ID: "b", Kind: Operation, OpID: "o1", Device: mixer}
	if _, err := pl.Place(o1, 0, 4); err != nil {
		t.Fatal(err)
	}
	start, err := pl.Place(o2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if start < 4 {
		t.Fatalf("same-device op placed at %d during [0,4)", start)
	}
}

func TestPlacerRespectsReady(t *testing.T) {
	c, a := fixture(t)
	s := New(c, a)
	pl := NewPlacer(s)
	task := &Task{ID: "t", Kind: Transport, Path: row(0, 2), Fluid: "f"}
	start, err := pl.Place(task, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if start != 7 {
		t.Fatalf("start = %d want 7", start)
	}
	// Negative ready clamps to zero.
	task2 := &Task{ID: "t2", Kind: Transport, Path: row(8, 9), Fluid: "f"}
	if start, err := pl.Place(task2, -5, 1); err != nil || start != 0 {
		t.Fatalf("start = %d, %v", start, err)
	}
}

func TestPlacerFluidVsBusyDevice(t *testing.T) {
	c, a := fixture(t)
	s := New(c, a)
	pl := NewPlacer(s)
	mixer := c.Device("mixer")
	op := &Task{ID: "op", Kind: Operation, OpID: "o1", Device: mixer}
	if _, err := pl.Place(op, 0, 5); err != nil {
		t.Fatal(err)
	}
	// Path crossing the mixer cells must wait for the op.
	through := grid.NewPath(geom.Pt(2, 2), geom.Pt(3, 2), geom.Pt(4, 2))
	cross := &Task{ID: "x", Kind: Transport, Path: through, Fluid: "f"}
	start, err := pl.Place(cross, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if start < 5 {
		t.Fatalf("flush through busy device at %d", start)
	}
}

func TestPlacerIgnoresInactiveTasks(t *testing.T) {
	c, a := fixture(t)
	s := New(c, a)
	s.MustAdd(&Task{ID: "ghost", Kind: Removal, Integrated: true,
		IntegratedInto: "w", Path: row(0, 9), Start: 0, End: 10})
	pl := NewPlacer(s)
	task := &Task{ID: "t", Kind: Transport, Path: row(0, 9), Fluid: "f"}
	start, err := pl.Place(task, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if start != 0 {
		t.Fatalf("integrated removal blocked placement: start %d", start)
	}
}

func TestConflictCapableMatrix(t *testing.T) {
	c, a := fixture(t)
	s := New(c, a)
	pl := NewPlacer(s)
	mixer, heater := c.Device("mixer"), c.Device("heater")
	opM := &Task{ID: "om", Kind: Operation, Device: mixer}
	opH := &Task{ID: "oh", Kind: Operation, Device: heater}
	flA := &Task{ID: "fa", Kind: Transport, Path: row(0, 5)}
	flB := &Task{ID: "fb", Kind: Wash, Path: row(3, 9)}
	flC := &Task{ID: "fc", Kind: Removal, Path: row(0, 1)}
	if pl.ConflictCapable(opM, opH) {
		t.Error("different devices never conflict")
	}
	if !pl.ConflictCapable(opM, opM) {
		t.Error("same device conflicts")
	}
	if !pl.ConflictCapable(flA, flB) {
		t.Error("overlapping paths conflict")
	}
	if pl.ConflictCapable(flB, flC) {
		t.Error("disjoint paths do not conflict")
	}
	if !pl.ConflictCapable(flA, opM) {
		t.Error("path crossing mixer conflicts with mixer op")
	}
	if pl.ConflictCapable(flC, opM) {
		t.Error("path far from mixer does not conflict")
	}
}
