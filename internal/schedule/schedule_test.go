package schedule

import (
	"strings"
	"testing"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
)

// fixture builds a 10x5 chip with a mixer and a heater on a spine
// channel, plus a two-op assay (mix -> heat) and a hand-made schedule:
//
//	in1 - - M M - - H H out1   (row 2)
func fixture(t *testing.T) (*grid.Chip, *assay.Assay) {
	t.Helper()
	c := grid.NewChip("fx", 10, 5)
	if _, err := c.AddPort("in1", grid.FlowPort, geom.Pt(0, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddPort("out1", grid.WastePort, geom.Pt(9, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddDevice("mixer", grid.Mixer, geom.Rc(3, 2, 5, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddDevice("heater", grid.Heater, geom.Rc(6, 2, 8, 3)); err != nil {
		t.Fatal(err)
	}
	for x := 1; x < 9; x++ {
		if err := c.AddChannel(geom.Pt(x, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}

	a := assay.New("fx")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 3, Output: "f1", Reagents: []assay.FluidType{"r1"}})
	a.MustAddOp(&assay.Operation{ID: "o2", Kind: assay.Heat, Duration: 2, Output: "f2"})
	a.MustAddEdge("o1", "o2")
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return c, a
}

func row(x0, x1 int) grid.Path {
	var cells []geom.Point
	if x0 <= x1 {
		for x := x0; x <= x1; x++ {
			cells = append(cells, geom.Pt(x, 2))
		}
	} else {
		for x := x0; x >= x1; x-- {
			cells = append(cells, geom.Pt(x, 2))
		}
	}
	return grid.NewPath(cells...)
}

// goodSchedule builds a valid execution procedure for the fixture.
func goodSchedule(t *testing.T) *Schedule {
	t.Helper()
	c, a := fixture(t)
	s := New(c, a)
	mixer, heater := c.Device("mixer"), c.Device("heater")
	add := func(task *Task) {
		t.Helper()
		if err := s.Add(task); err != nil {
			t.Fatal(err)
		}
	}
	// inject r1 into mixer (1s), run o1 (3s), move product to heater (1s),
	// run o2 (2s).
	add(&Task{ID: "inj-r1", Kind: Transport, Start: 0, End: 1, MinDuration: 1,
		Path: row(0, 4), Fluid: "r1", EdgeTo: "o1"})
	add(&Task{ID: "op-o1", Kind: Operation, Start: 1, End: 4, MinDuration: 3,
		OpID: "o1", Device: mixer})
	add(&Task{ID: "tr-o1-o2", Kind: Transport, Start: 4, End: 5, MinDuration: 1,
		Path: row(3, 7), Fluid: "f1", EdgeFrom: "o1", EdgeTo: "o2"})
	add(&Task{ID: "rm-o1-o2", Kind: Removal, Start: 5, End: 6, MinDuration: 1,
		Path: row(0, 5), Fluid: "f1", EdgeFrom: "o1", EdgeTo: "o2"})
	add(&Task{ID: "op-o2", Kind: Operation, Start: 6, End: 8, MinDuration: 2,
		OpID: "o2", Device: heater})
	add(&Task{ID: "disp-o2", Kind: WasteDisposal, Start: 8, End: 9, MinDuration: 1,
		Path: row(6, 9), Fluid: assay.Waste, EdgeFrom: "o2"})
	if err := s.Validate(); err != nil {
		t.Fatalf("good schedule invalid: %v", err)
	}
	return s
}

func TestTaskBasics(t *testing.T) {
	task := &Task{ID: "t", Kind: Wash, Start: 2, End: 5}
	if task.Duration() != 3 {
		t.Error("duration")
	}
	u := &Task{ID: "u", Start: 4, End: 6}
	if !task.Overlaps(u) || !u.Overlaps(task) {
		t.Error("overlap expected")
	}
	v := &Task{ID: "v", Start: 5, End: 6}
	if task.Overlaps(v) {
		t.Error("touching windows do not overlap")
	}
	if task.String() != "t[wash 2-5]" {
		t.Errorf("String = %q", task.String())
	}
}

func TestKindStrings(t *testing.T) {
	want := map[TaskKind]string{
		Operation: "op", Transport: "transport", Removal: "removal",
		WasteDisposal: "waste", Wash: "wash",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%v != %s", k, s)
		}
	}
	if Operation.Fluidic() {
		t.Error("operations are not fluidic")
	}
	if !Wash.Fluidic() || !Removal.Fluidic() {
		t.Error("wash/removal are fluidic")
	}
}

func TestAddDuplicate(t *testing.T) {
	c, a := fixture(t)
	s := New(c, a)
	if err := s.Add(&Task{ID: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&Task{ID: "x"}); err == nil {
		t.Fatal("duplicate must fail")
	}
	if err := s.Add(&Task{}); err == nil {
		t.Fatal("empty ID must fail")
	}
}

func TestLookups(t *testing.T) {
	s := goodSchedule(t)
	if s.Task("op-o1") == nil || s.Task("nope") != nil {
		t.Error("Task lookup")
	}
	if s.OpTask("o2") == nil || s.OpTask("o9") != nil {
		t.Error("OpTask lookup")
	}
	if tr := s.TransportFor("o1", "o2"); tr == nil || tr.ID != "tr-o1-o2" {
		t.Error("TransportFor")
	}
	if inj := s.TransportFor("", "o1"); inj == nil || inj.ID != "inj-r1" {
		t.Error("injection lookup")
	}
	if rm := s.RemovalFor("o1", "o2"); rm == nil || rm.ID != "rm-o1-o2" {
		t.Error("RemovalFor")
	}
	if len(s.TasksOf(Operation)) != 2 {
		t.Error("TasksOf")
	}
}

func TestMakespan(t *testing.T) {
	s := goodSchedule(t)
	if s.Makespan() != 9 {
		t.Errorf("Makespan = %d want 9", s.Makespan())
	}
	if s.OperationMakespan() != 8 {
		t.Errorf("OperationMakespan = %d want 8", s.OperationMakespan())
	}
}

func TestClone(t *testing.T) {
	s := goodSchedule(t)
	c := s.Clone()
	if len(c.Tasks()) != len(s.Tasks()) {
		t.Fatal("clone size")
	}
	c.Task("op-o1").Start = 99
	if s.Task("op-o1").Start == 99 {
		t.Fatal("clone shares task memory")
	}
	c.Task("inj-r1").Path.Cells[0] = geom.Pt(8, 8)
	if s.Task("inj-r1").Path.Cells[0] == geom.Pt(8, 8) {
		t.Fatal("clone shares path memory")
	}
}

func TestValidateCatchesShortOp(t *testing.T) {
	s := goodSchedule(t)
	s.Task("op-o1").End = 2 // only 1s, needs 3 (Eq. 1)
	if err := s.Validate(); err == nil {
		t.Fatal("short operation must fail")
	}
}

func TestValidateCatchesPrecedenceViolation(t *testing.T) {
	s := goodSchedule(t)
	s.Task("tr-o1-o2").Start = 3 // producer ends at 4 (Eq. 4)
	s.Task("tr-o1-o2").End = 4
	if err := s.Validate(); err == nil {
		t.Fatal("transport before producer end must fail")
	}
}

func TestValidateCatchesLateTransport(t *testing.T) {
	s := goodSchedule(t)
	s.Task("tr-o1-o2").Start = 6
	s.Task("tr-o1-o2").End = 7 // consumer starts at 6
	if err := s.Validate(); err == nil {
		t.Fatal("transport after consumer start must fail")
	}
}

func TestValidateCatchesRemovalBeforeTransport(t *testing.T) {
	s := goodSchedule(t)
	s.Task("rm-o1-o2").Start = 4
	s.Task("rm-o1-o2").End = 5 // transport ends at 5 (Eq. 5)
	// also creates a path conflict; move transport path away is not
	// possible here, so just check Validate fails.
	if err := s.Validate(); err == nil {
		t.Fatal("removal before its transport must fail")
	}
}

func TestValidateCatchesDeviceConflict(t *testing.T) {
	c, _ := fixture(t)
	// Second mix op on the same mixer, overlapping in time.
	a2 := assay.New("fx2")
	a2.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 2, Output: "f1", Reagents: []assay.FluidType{"r1"}})
	a2.MustAddOp(&assay.Operation{ID: "o2", Kind: assay.Mix, Duration: 2, Output: "f2", Reagents: []assay.FluidType{"r2"}})
	s := New(c, a2)
	mixer := c.Device("mixer")
	s.MustAdd(&Task{ID: "op-o1", Kind: Operation, Start: 0, End: 2, OpID: "o1", Device: mixer})
	s.MustAdd(&Task{ID: "op-o2", Kind: Operation, Start: 1, End: 3, OpID: "o2", Device: mixer})
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "Eq. 3") {
		t.Fatalf("device conflict not caught: %v", err)
	}
}

func TestValidateCatchesPathConflict(t *testing.T) {
	s := goodSchedule(t)
	// Shift removal into the transport's window: both use cells near mixer.
	rm := s.Task("rm-o1-o2")
	tr := s.Task("tr-o1-o2")
	rm.Start, rm.End = tr.Start, tr.End
	if err := s.Validate(); err == nil {
		t.Fatal("overlapping fluidic tasks on shared cells must fail")
	}
}

func TestValidateCatchesFlushThroughBusyDevice(t *testing.T) {
	s := goodSchedule(t)
	// A disposal crossing the heater while o2 runs on it.
	s.MustAdd(&Task{ID: "bad", Kind: WasteDisposal, Start: 6, End: 7, MinDuration: 1,
		Path: row(5, 9), Fluid: assay.Waste})
	err := s.Validate()
	if err == nil {
		t.Fatal("flush through busy device must fail")
	}
}

// devRowTargets are the device cells a row-2 wash path crosses on the
// fixture chip; a wash through them must declare them as targets.
var devRowTargets = []geom.Point{
	geom.Pt(3, 2), geom.Pt(4, 2), geom.Pt(6, 2), geom.Pt(7, 2),
}

func TestValidateWashRequirements(t *testing.T) {
	s := goodSchedule(t)
	// A wash covering cells (1,2)-(2,2) after removal, before nothing.
	w := &Task{ID: "w1", Kind: Wash, Start: 9, End: 11, MinDuration: 2,
		Path: row(0, 9), Fluid: "buffer",
		WashTargets: append([]geom.Point{geom.Pt(1, 2), geom.Pt(2, 2)}, devRowTargets...)}
	s.MustAdd(w)
	if err := s.Validate(); err != nil {
		t.Fatalf("valid wash rejected: %v", err)
	}
	// Wash missing a target must fail.
	w.WashTargets = append(w.WashTargets, geom.Pt(5, 1))
	if err := s.Validate(); err == nil {
		t.Fatal("wash missing target must fail")
	}
	w.WashTargets = w.WashTargets[:len(w.WashTargets)-1]
	// Wash not ending at a waste port must fail.
	w.Path = row(0, 8)
	if err := s.Validate(); err == nil {
		t.Fatal("incomplete wash path must fail")
	}
}

func TestIntegratedRemoval(t *testing.T) {
	s := goodSchedule(t)
	rm := s.Task("rm-o1-o2")
	w := &Task{ID: "w1", Kind: Wash, Start: 5, End: 6, MinDuration: 1,
		Path: row(0, 9), Fluid: "buffer", WashTargets: devRowTargets}
	s.MustAdd(w)
	rm.Integrated = true
	rm.IntegratedInto = "w1"
	// The wash window [5,6) sits after transport end (5): valid, and the
	// removal path row(0,5) is covered by row(0,9).
	// But wash overlaps nothing else; op-o2 is an operation so no fluid
	// conflict. Note wash passes through heater cells while o2 runs at
	// [6,8) — windows [5,6) and [6,8) do not overlap.
	if err := s.Validate(); err != nil {
		t.Fatalf("integrated removal schedule invalid: %v", err)
	}
	if !rm.Active() == false {
		_ = rm
	}
	if rm.Active() {
		t.Fatal("integrated removal must be inactive")
	}
	// Integration into a non-existent wash must fail.
	rm.IntegratedInto = "w9"
	if err := s.Validate(); err == nil {
		t.Fatal("dangling integration must fail")
	}
}

func TestComputeMetrics(t *testing.T) {
	base := goodSchedule(t)
	s := base.Clone()
	// Add a wash and delay o2 by 1s.
	w := &Task{ID: "w1", Kind: Wash, Start: 6, End: 8, MinDuration: 2,
		Path: row(0, 9), Fluid: "buffer", WashTargets: devRowTargets}
	s.MustAdd(w)
	o2 := s.Task("op-o2")
	o2.Start, o2.End = 8, 10
	d := s.Task("disp-o2")
	d.Start, d.End = 10, 11
	if err := s.Validate(); err != nil {
		t.Fatalf("modified schedule invalid: %v", err)
	}
	m := s.ComputeMetrics(base)
	if m.NWash != 1 {
		t.Errorf("NWash = %d", m.NWash)
	}
	if m.LWashMM != 10 { // 10 cells at 1mm
		t.Errorf("LWash = %g", m.LWashMM)
	}
	if m.TAssay != 11 || m.TDelay != 2 {
		t.Errorf("TAssay=%d TDelay=%d", m.TAssay, m.TDelay)
	}
	if m.TotalWashSeconds != 2 {
		t.Errorf("TotalWashSeconds = %d", m.TotalWashSeconds)
	}
	// o1 waits 0, o2 waits 2 -> avg 1.
	if m.AvgWaitSeconds != 1 {
		t.Errorf("AvgWait = %g", m.AvgWaitSeconds)
	}
}

func TestGantt(t *testing.T) {
	s := goodSchedule(t)
	g := s.Gantt()
	if !strings.Contains(g, "op-o1") || !strings.Contains(g, "OOO") {
		t.Errorf("gantt missing op row:\n%s", g)
	}
	if !strings.Contains(g, ">") || !strings.Contains(g, "$") {
		t.Errorf("gantt missing markers:\n%s", g)
	}
}

func TestSortedByStart(t *testing.T) {
	s := goodSchedule(t)
	ts := s.SortedByStart()
	for i := 1; i < len(ts); i++ {
		if ts[i-1].Start > ts[i].Start {
			t.Fatal("not sorted")
		}
	}
}

func TestValidateNegativeWindow(t *testing.T) {
	s := goodSchedule(t)
	s.Task("inj-r1").Start = -1
	if err := s.Validate(); err == nil {
		t.Fatal("negative start must fail")
	}
}
