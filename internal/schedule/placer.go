package schedule

import (
	"fmt"

	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
)

// Placer greedily assigns conflict-free time windows on a schedule: for
// a new task it scans forward from the task's ready time to the first
// start second where no resource constraint of Sec. III is violated
// against the already-placed tasks (the serialization that Eqs. 3, 8,
// 19 and 20 express as disjunctions).
type Placer struct {
	s       *Schedule
	devCell map[*grid.Device]map[geom.Point]bool
	horizon int
}

// NewPlacer creates a placer over the schedule.
func NewPlacer(s *Schedule) *Placer {
	dc := map[*grid.Device]map[geom.Point]bool{}
	for _, d := range s.Chip.Devices() {
		set := map[geom.Point]bool{}
		for _, c := range d.Cells() {
			set[c] = true
		}
		dc[d] = set
	}
	return &Placer{s: s, devCell: dc, horizon: 1 << 20}
}

func (pl *Placer) crossesDevice(p grid.Path, d *grid.Device) bool {
	set := pl.devCell[d]
	for _, c := range p.Cells {
		if set[c] {
			return true
		}
	}
	return false
}

// ConflictsAt reports whether task t, if run over [start, end), would
// contend for a resource with placed task u.
func (pl *Placer) ConflictsAt(t *Task, start, end int, u *Task) bool {
	if !u.Active() {
		return false
	}
	if !(start < u.End && u.Start < end) {
		return false
	}
	return pl.ConflictCapable(t, u)
}

// ConflictCapable reports whether two tasks contend for any resource
// regardless of timing: shared path cells for fluidic pairs, the same
// device for operation pairs, or a path crossing a busy device.
func (pl *Placer) ConflictCapable(t, u *Task) bool {
	tf, uf := t.Kind.Fluidic(), u.Kind.Fluidic()
	switch {
	case !tf && !uf:
		return t.Device == u.Device
	case tf && uf:
		return t.Path.Overlaps(u.Path)
	case tf && !uf:
		return pl.crossesDevice(t.Path, u.Device)
	default:
		return pl.crossesDevice(u.Path, t.Device)
	}
}

// Place assigns the earliest feasible window [start, start+dur) with
// start >= ready, adds the task to the schedule, and returns the start.
func (pl *Placer) Place(t *Task, ready, dur int) (int, error) {
	if ready < 0 {
		ready = 0
	}
	if dur <= 0 {
		dur = 1
	}
	start := ready
	for start < pl.horizon {
		bump := -1
		for _, u := range pl.s.Tasks() {
			if pl.ConflictsAt(t, start, start+dur, u) && u.End > bump {
				bump = u.End
			}
		}
		if bump < 0 {
			t.Start, t.End = start, start+dur
			if err := pl.s.Add(t); err != nil {
				return 0, err
			}
			return start, nil
		}
		start = bump // u.End > start whenever windows overlapped
	}
	return 0, fmt.Errorf("schedule: no feasible window for task %s", t.ID)
}
