// Package schedule models assay execution procedures: the biochemical
// operations, fluid transportation tasks p_{j,i,1}, excess-fluid removal
// tasks p_{j,i,2}, waste disposals, and wash operations w_j of the paper,
// each with a flow path and a time window. It provides the conflict and
// precedence validation that the ILP constraints of Sec. III encode, the
// evaluation metrics of Sec. IV (T_assay, T_delay, waiting time, total
// wash time), and Gantt rendering in the style of Figs. 2(b)/3.
package schedule

import (
	"fmt"
	"sort"
	"strings"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
)

// TaskKind classifies schedule entries.
type TaskKind int

// Task kinds. Transport covers both reagent injections (in_i -> device)
// and product moves (device -> device); WasteDisposal is the $-style
// removal of a discarded product to a waste port; Removal is the *-style
// excess-fluid removal p_{j,i,2}; Wash is a wash operation w_j.
const (
	Operation TaskKind = iota
	Transport
	Removal
	WasteDisposal
	Wash
)

// String names the task kind.
func (k TaskKind) String() string {
	switch k {
	case Operation:
		return "op"
	case Transport:
		return "transport"
	case Removal:
		return "removal"
	case WasteDisposal:
		return "waste"
	case Wash:
		return "wash"
	}
	return fmt.Sprintf("TaskKind(%d)", int(k))
}

// Fluidic reports whether tasks of this kind occupy a flow path.
func (k TaskKind) Fluidic() bool { return k != Operation }

// Task is one schedule entry. Start/End are in whole seconds with
// half-open semantics: the task occupies [Start, End).
type Task struct {
	ID   string
	Kind TaskKind

	// Start and End are the assigned time window (t^s, t^e).
	Start, End int

	// MinDuration is the minimum execution time: t(o_i) for operations
	// (Eq. 1), T_{j,i,z} for transports/removals (Eqs. 6-7), t(w_j) for
	// washes (Eqs. 17-18). Integrated removals have MinDuration 0.
	MinDuration int

	// OpID and Device are set for Operation tasks.
	OpID   string
	Device *grid.Device

	// Path is the flow path of fluidic tasks.
	Path grid.Path
	// Fluid is the fluid type carried (wash tasks carry buffer).
	Fluid assay.FluidType

	// EdgeFrom/EdgeTo identify the dependency e_{j,i} that spawned a
	// Transport (p_{j,i,1}) or Removal (p_{j,i,2}) task. Reagent
	// injections leave EdgeFrom empty.
	EdgeFrom, EdgeTo string

	// ContamCells are the cells this task leaves contaminated with Fluid
	// when it completes: the plug-traversal segment of a fluidic task, or
	// the device cells of an operation (residue). Wash tasks leave none.
	ContamCells []geom.Point
	// ExcessCells are, on a Transport, the cells where excess fluid is
	// cached at the target device's end (the paper's Sec. II-B) and, on
	// the corresponding Removal, the cells its path must flush.
	ExcessCells []geom.Point
	// SensitiveCells are the cells whose residue would contaminate this
	// task's fluid: the plug-traversal region including the source and
	// target device cells. Waste carriers (Removal/WasteDisposal) and
	// washes are insensitive and leave this nil (the Q=1 case of Eq. 10).
	SensitiveCells []geom.Point

	// WashTargets are the contaminated cells a Wash task must cover.
	WashTargets []geom.Point
	// Integrated marks a Removal merged into a wash operation (ψ=1,
	// Eq. 21); IntegratedInto names the wash task.
	Integrated     bool
	IntegratedInto string
}

// Duration returns End-Start.
func (t *Task) Duration() int { return t.End - t.Start }

// Overlaps reports whether the time windows of t and u intersect with
// positive measure.
func (t *Task) Overlaps(u *Task) bool {
	return t.Start < u.End && u.Start < t.End
}

// Active reports whether the task occupies resources at all: integrated
// removals are subsumed by their wash and hold nothing.
func (t *Task) Active() bool { return !(t.Kind == Removal && t.Integrated) }

// String renders the task compactly.
func (t *Task) String() string {
	return fmt.Sprintf("%s[%s %d-%d]", t.ID, t.Kind, t.Start, t.End)
}

// Schedule is a complete assay execution procedure on a chip.
type Schedule struct {
	Chip  *grid.Chip
	Assay *assay.Assay
	tasks []*Task
	byID  map[string]*Task
}

// New creates an empty schedule for the chip and assay.
func New(c *grid.Chip, a *assay.Assay) *Schedule {
	return &Schedule{Chip: c, Assay: a, byID: map[string]*Task{}}
}

// Add appends a task. IDs must be unique.
func (s *Schedule) Add(t *Task) error {
	if t.ID == "" {
		return fmt.Errorf("schedule: task with empty ID")
	}
	if _, dup := s.byID[t.ID]; dup {
		return fmt.Errorf("schedule: duplicate task %q", t.ID)
	}
	s.tasks = append(s.tasks, t)
	s.byID[t.ID] = t
	return nil
}

// MustAdd is Add that panics on error.
func (s *Schedule) MustAdd(t *Task) *Schedule {
	if err := s.Add(t); err != nil {
		panic(err)
	}
	return s
}

// Tasks returns all tasks in insertion order.
func (s *Schedule) Tasks() []*Task { return s.tasks }

// Task returns the task with the given ID, or nil.
func (s *Schedule) Task(id string) *Task { return s.byID[id] }

// TasksOf returns tasks of the given kind in insertion order.
func (s *Schedule) TasksOf(k TaskKind) []*Task {
	var out []*Task
	for _, t := range s.tasks {
		if t.Kind == k {
			out = append(out, t)
		}
	}
	return out
}

// OpTask returns the Operation task executing op id, or nil.
func (s *Schedule) OpTask(opID string) *Task {
	for _, t := range s.tasks {
		if t.Kind == Operation && t.OpID == opID {
			return t
		}
	}
	return nil
}

// TransportFor returns the transport task p_{j,i,1} for edge (from,to),
// or nil. Reagent injections use from == "".
func (s *Schedule) TransportFor(from, to string) *Task {
	for _, t := range s.tasks {
		if t.Kind == Transport && t.EdgeFrom == from && t.EdgeTo == to {
			return t
		}
	}
	return nil
}

// RemovalFor returns the removal task p_{j,i,2} for edge (from,to), or nil.
func (s *Schedule) RemovalFor(from, to string) *Task {
	for _, t := range s.tasks {
		if t.Kind == Removal && t.EdgeFrom == from && t.EdgeTo == to {
			return t
		}
	}
	return nil
}

// Clone deep-copies the schedule (tasks copied, chip/assay shared).
func (s *Schedule) Clone() *Schedule {
	out := New(s.Chip, s.Assay)
	for _, t := range s.tasks {
		cp := *t
		cp.Path = grid.NewPath(append([]geom.Point(nil), t.Path.Cells...)...)
		cp.WashTargets = append([]geom.Point(nil), t.WashTargets...)
		cp.ContamCells = append([]geom.Point(nil), t.ContamCells...)
		cp.ExcessCells = append([]geom.Point(nil), t.ExcessCells...)
		cp.SensitiveCells = append([]geom.Point(nil), t.SensitiveCells...)
		out.MustAdd(&cp)
	}
	return out
}

// Makespan returns T_assay: the latest end time over all tasks (Eq. 22
// bounds it by operation ends; fluidic trailing tasks count too since the
// procedure is not finished while fluid still moves).
func (s *Schedule) Makespan() int {
	m := 0
	for _, t := range s.tasks {
		if t.Active() && t.End > m {
			m = t.End
		}
	}
	return m
}

// OperationMakespan returns the latest end over Operation tasks only —
// the paper's T_assay per Eq. (22).
func (s *Schedule) OperationMakespan() int {
	m := 0
	for _, t := range s.tasks {
		if t.Kind == Operation && t.End > m {
			m = t.End
		}
	}
	return m
}

// SortedByStart returns the tasks ordered by (Start, End, ID).
func (s *Schedule) SortedByStart() []*Task {
	out := append([]*Task(nil), s.tasks...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Validate checks every constraint family of Sec. III that a finished
// execution procedure must satisfy:
//
//   - well-formed windows and minimum durations (Eqs. 1, 6, 7, 18);
//   - operation dependencies and transport/removal sequencing
//     (Eqs. 2, 4, 5);
//   - device exclusivity (Eq. 3);
//   - no two concurrently active fluidic tasks share a grid cell
//     (Eqs. 8, 19, 20);
//   - flow paths valid on the chip; wash paths complete flow-port to
//     waste-port paths covering their targets (Eqs. 12-15);
//   - integrated removals covered by their wash path within the
//     required window (Eq. 21).
func (s *Schedule) Validate() error {
	for _, t := range s.tasks {
		if err := s.validateTask(t); err != nil {
			return err
		}
	}
	if err := s.validatePrecedence(); err != nil {
		return err
	}
	if err := s.validateExclusivity(); err != nil {
		return err
	}
	return nil
}

func (s *Schedule) validateTask(t *Task) error {
	if t.Start < 0 || t.End < t.Start {
		return fmt.Errorf("schedule: task %s has invalid window [%d,%d)", t.ID, t.Start, t.End)
	}
	if t.Active() && t.Duration() < t.MinDuration {
		return fmt.Errorf("schedule: task %s duration %d below minimum %d", t.ID, t.Duration(), t.MinDuration)
	}
	switch t.Kind {
	case Operation:
		if t.Device == nil {
			return fmt.Errorf("schedule: operation task %s has no device", t.ID)
		}
		op := s.Assay.Op(t.OpID)
		if op == nil {
			return fmt.Errorf("schedule: operation task %s references unknown op %q", t.ID, t.OpID)
		}
		if t.Duration() < op.Duration {
			return fmt.Errorf("schedule: op %s runs %ds, protocol requires %ds", t.OpID, t.Duration(), op.Duration)
		}
		if assay.DeviceKindFor(op.Kind) != t.Device.Kind {
			return fmt.Errorf("schedule: op %s (%s) bound to %s device %s", t.OpID, op.Kind, t.Device.Kind, t.Device.ID)
		}
	case Transport, Removal, WasteDisposal:
		if !t.Active() {
			return nil // integrated removal holds no path of its own
		}
		if err := t.Path.Validate(s.Chip); err != nil {
			return fmt.Errorf("schedule: task %s: %w", t.ID, err)
		}
		if t.Kind == Removal && !t.Path.Covers(t.ExcessCells) {
			return fmt.Errorf("schedule: removal %s path misses its excess cells", t.ID)
		}
	case Wash:
		if err := t.Path.ValidateComplete(s.Chip); err != nil {
			return fmt.Errorf("schedule: wash %s: %w", t.ID, err)
		}
		if !t.Path.Covers(t.WashTargets) {
			return fmt.Errorf("schedule: wash %s path misses targets", t.ID)
		}
		// Buffer must not flush through a device unless that device is
		// itself a wash target: it would carry away or dilute contents.
		targets := map[geom.Point]bool{}
		for _, c := range t.WashTargets {
			targets[c] = true
		}
		for _, c := range t.Path.Cells {
			if d := s.Chip.DeviceAt(c); d != nil && !targets[c] {
				return fmt.Errorf("schedule: wash %s flushes through non-target device %s at %v", t.ID, d.ID, c)
			}
		}
	}
	return nil
}

func (s *Schedule) validatePrecedence() error {
	for _, e := range s.Assay.Edges() {
		prod := s.OpTask(e.From)
		cons := s.OpTask(e.To)
		tr := s.TransportFor(e.From, e.To)
		if prod == nil || cons == nil {
			return fmt.Errorf("schedule: edge %s->%s lacks operation tasks", e.From, e.To)
		}
		if tr == nil {
			return fmt.Errorf("schedule: edge %s->%s lacks transport task", e.From, e.To)
		}
		if tr.Start < prod.End {
			return fmt.Errorf("schedule: transport %s starts %d before producer %s ends %d (Eq. 4)", tr.ID, tr.Start, e.From, prod.End)
		}
		if tr.End > cons.Start {
			return fmt.Errorf("schedule: transport %s ends %d after consumer %s starts %d (Eq. 4)", tr.ID, tr.End, e.To, cons.Start)
		}
		if rm := s.RemovalFor(e.From, e.To); rm != nil {
			if rm.Active() {
				if rm.Start < tr.End {
					return fmt.Errorf("schedule: removal %s starts before its transport ends (Eq. 5)", rm.ID)
				}
				if rm.End > cons.Start {
					return fmt.Errorf("schedule: removal %s ends after consumer starts (Eq. 5)", rm.ID)
				}
			} else {
				w := s.Task(rm.IntegratedInto)
				if w == nil || w.Kind != Wash {
					return fmt.Errorf("schedule: removal %s integrated into unknown wash %q", rm.ID, rm.IntegratedInto)
				}
				if !w.Path.Covers(rm.ExcessCells) {
					return fmt.Errorf("schedule: removal %s excess cells not covered by wash %s path (Eq. 21)", rm.ID, w.ID)
				}
				if w.Start < tr.End {
					return fmt.Errorf("schedule: wash %s absorbing removal %s starts before transport ends (Eq. 21)", w.ID, rm.ID)
				}
			}
		}
		// Reagent injections for the consumer must also precede it.
	}
	for _, t := range s.tasks {
		if t.Kind == Transport && t.EdgeFrom == "" && t.EdgeTo != "" {
			cons := s.OpTask(t.EdgeTo)
			if cons == nil {
				return fmt.Errorf("schedule: injection %s targets unknown op %q", t.ID, t.EdgeTo)
			}
			if t.End > cons.Start {
				return fmt.Errorf("schedule: injection %s ends %d after op %s starts %d", t.ID, t.End, t.EdgeTo, cons.Start)
			}
		}
	}
	return nil
}

func (s *Schedule) validateExclusivity() error {
	// Device exclusivity (Eq. 3).
	ops := s.TasksOf(Operation)
	for i := 0; i < len(ops); i++ {
		for j := i + 1; j < len(ops); j++ {
			if ops[i].Device == ops[j].Device && ops[i].Overlaps(ops[j]) {
				return fmt.Errorf("schedule: ops %s and %s overlap on device %s (Eq. 3)", ops[i].ID, ops[j].ID, ops[i].Device.ID)
			}
		}
	}
	// Fluid path conflicts (Eqs. 8, 19, 20).
	var fl []*Task
	for _, t := range s.tasks {
		if t.Kind.Fluidic() && t.Active() {
			fl = append(fl, t)
		}
	}
	for i := 0; i < len(fl); i++ {
		for j := i + 1; j < len(fl); j++ {
			if fl[i].Overlaps(fl[j]) && fl[i].Path.Overlaps(fl[j].Path) {
				sh := fl[i].Path.SharedCells(fl[j].Path)
				return fmt.Errorf("schedule: tasks %s and %s both occupy %v during [%d,%d)x[%d,%d)",
					fl[i].ID, fl[j].ID, sh[0], fl[i].Start, fl[i].End, fl[j].Start, fl[j].End)
			}
		}
	}
	// A fluidic task flushing through a device must not overlap an
	// operation executing on that device.
	for _, f := range fl {
		for _, o := range ops {
			if !f.Overlaps(o) {
				continue
			}
			for _, cell := range f.Path.Cells {
				if d := s.Chip.DeviceAt(cell); d != nil && d == o.Device {
					return fmt.Errorf("schedule: task %s flushes through device %s while op %s executes on it", f.ID, d.ID, o.ID)
				}
			}
		}
	}
	return nil
}

// Metrics aggregates the evaluation quantities of Table II and Figs. 4-5.
type Metrics struct {
	// NWash is the number of wash operations N_wash.
	NWash int
	// LWashMM is the total wash path length L_wash in millimetres.
	LWashMM float64
	// TAssay is the assay completion time in seconds.
	TAssay int
	// TDelay is the wash-induced delay versus the wash-free schedule.
	TDelay int
	// AvgWaitSeconds is the mean waiting time of biochemical operations
	// versus their wash-free start times (Fig. 4).
	AvgWaitSeconds float64
	// TotalWashSeconds is the summed duration of wash operations (Fig. 5).
	TotalWashSeconds int
	// IntegratedRemovals counts removals merged into washes (ψ=1).
	IntegratedRemovals int
	// BufferMM estimates buffer fluid consumption as millimetres of
	// buffer column pushed through wash paths: flow velocity times wash
	// duration, summed over washes (the "buffer fluids" cost of Sec. I).
	BufferMM float64
}

// ComputeMetrics evaluates s against the wash-free baseline schedule.
// baseline supplies the original T_assay and per-operation start times.
func (s *Schedule) ComputeMetrics(baseline *Schedule) Metrics {
	var m Metrics
	for _, t := range s.tasks {
		switch {
		case t.Kind == Wash:
			m.NWash++
			m.LWashMM += t.Path.LengthMM(s.Chip)
			m.TotalWashSeconds += t.Duration()
			m.BufferMM += s.Chip.FlowVelocityMMs * float64(t.Duration())
		case t.Kind == Removal && t.Integrated:
			m.IntegratedRemovals++
		}
	}
	m.TAssay = s.Makespan()
	if baseline != nil {
		m.TDelay = m.TAssay - baseline.Makespan()
		var wait, n float64
		for _, bt := range baseline.TasksOf(Operation) {
			if ot := s.OpTask(bt.OpID); ot != nil {
				wait += float64(ot.Start - bt.Start)
				n++
			}
		}
		if n > 0 {
			m.AvgWaitSeconds = wait / n
		}
	}
	return m
}

// Gantt renders an ASCII time chart in the style of Figs. 2(b)/3: one
// row per task, '=' for occupied seconds, with kind markers.
func (s *Schedule) Gantt() string {
	tasks := s.SortedByStart()
	mk := s.Makespan()
	var b strings.Builder
	width := 0
	for _, t := range tasks {
		if len(t.ID) > width {
			width = len(t.ID)
		}
	}
	fmt.Fprintf(&b, "%-*s |", width, "time")
	for i := 0; i < mk; i++ {
		if i%5 == 0 {
			fmt.Fprintf(&b, "%-5d", i)
		}
	}
	b.WriteString("\n")
	for _, t := range tasks {
		if !t.Active() {
			fmt.Fprintf(&b, "%-*s |%s(integrated into %s)\n", width, t.ID, strings.Repeat(" ", t.Start), t.IntegratedInto)
			continue
		}
		mark := byte('=')
		switch t.Kind {
		case Operation:
			mark = 'O'
		case Transport:
			mark = '>'
		case Removal:
			mark = '*'
		case WasteDisposal:
			mark = '$'
		case Wash:
			mark = 'w'
		}
		fmt.Fprintf(&b, "%-*s |%s%s\n", width, t.ID,
			strings.Repeat(" ", t.Start),
			strings.Repeat(string(mark), max(1, t.Duration())))
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
