// Package contam tracks cross-contamination across an assay schedule and
// performs the wash-necessity analysis of Sec. II-A / Eqs. (9)-(11):
//
//   - every active task deposits residue on its ContamCells when it
//     completes (the set R_c and times t^c of the paper);
//   - wash tasks clean every cell of their path when they complete;
//   - a *sensitive use* is a task whose fluid would be corrupted by
//     foreign residue on a cell: transports/injections over their plug
//     region, operations over their device cells. Excess removals and
//     waste disposals carry fluid to waste and are never sensitive
//     (the Q=1 rule, Type 3);
//   - residue of the same fluid type as the user is harmless (Type 2);
//   - residue never touched by a sensitive use needs no wash (Type 1).
//
// Analyze returns, for a given schedule, the contamination events and the
// outstanding wash Requirements: (cell, residue, latest contamination
// time, deadline, blocking task). On a wash-free schedule these drive
// PDW and the DAWO baseline; on an optimized schedule an empty
// requirement list certifies contamination-free execution, which the
// test-suite uses as the correctness oracle.
package contam

import (
	"context"
	"fmt"
	"sort"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/schedule"
	"pathdriverwash/internal/solve"
)

// Event is one contamination: cell (x,y) carries residue Fluid from time
// At (the paper's t^c_{x,y}), deposited by task TaskID.
type Event struct {
	Cell   geom.Point
	Fluid  assay.FluidType
	At     int
	TaskID string
}

// SkipReason classifies why a contamination event needs no wash.
type SkipReason int

// Skip classifications of Sec. II-A. NoSkip marks events that produced
// at least one wash requirement.
const (
	NoSkip SkipReason = iota
	// Type1: the cell is never used by a sensitive task afterwards.
	Type1
	// Type2: every later sensitive use carries the same fluid type.
	Type2
	// Type3: the cell is only used by waste carriers afterwards.
	Type3
)

// String names the skip reason.
func (r SkipReason) String() string {
	switch r {
	case NoSkip:
		return "wash-needed"
	case Type1:
		return "type1-unused"
	case Type2:
		return "type2-same-fluid"
	case Type3:
		return "type3-waste-only"
	}
	return fmt.Sprintf("SkipReason(%d)", int(r))
}

// Requirement demands that cell Cell be washed inside the window
// (ReadyAt, Deadline): after the last contaminating task ends and before
// the sensitive user starts (Eq. 16 derives wash windows from these).
type Requirement struct {
	Cell geom.Point
	// Fluids lists the residue types present at the deadline.
	Fluids []assay.FluidType
	// ReadyAt is the end time of the last contaminating task before the
	// use; a wash must start at or after it.
	ReadyAt int
	// Deadline is the start time of the sensitive user; a wash must end
	// at or before it.
	Deadline int
	// CulpritTasks are the tasks whose residue must be removed (the wash
	// must be ordered after all of them).
	CulpritTasks []string
	// BeforeTask is the sensitive user the wash must precede.
	BeforeTask string
}

// String renders the requirement compactly.
func (r Requirement) String() string {
	return fmt.Sprintf("wash %v in (%d,%d] before %s", r.Cell, r.ReadyAt, r.Deadline, r.BeforeTask)
}

// Analysis is the result of Analyze.
type Analysis struct {
	// Events are all contamination events in (At, TaskID, cell) order.
	Events []Event
	// Requirements are the outstanding wash demands in (Deadline, cell)
	// order. Empty on a correctly washed schedule.
	Requirements []Requirement
	// Skips counts contamination events per skip classification.
	Skips map[SkipReason]int
}

// use is a sensitive access to a cell.
type use struct {
	start    int
	task     *schedule.Task
	tolerate map[assay.FluidType]bool // nil means sensitive to everything foreign
}

// Policy selects how conservatively contamination is judged. The zero
// value is PDW's necessity analysis (Sec. II-A). The DAWO baseline and
// the ablation benches use the conservative switches.
type Policy struct {
	// FullPathUses makes a transport sensitive on its entire flow path
	// (the literal Eq. 9 reading) instead of only its plug region.
	FullPathUses bool
	// IgnoreFluidTypes treats residue of any foreign task as
	// contaminating even when the fluid types match, disabling the
	// Type-2 skip.
	IgnoreFluidTypes bool
}

// Analyze simulates the schedule and returns contamination events and
// outstanding wash requirements under PDW's necessity analysis.
func Analyze(s *schedule.Schedule) (*Analysis, error) {
	return AnalyzeWithPolicy(s, Policy{})
}

// AnalyzeContext is Analyze under a context: the event-collection and
// requirement-derivation loops poll an amortized checkpoint and abort
// with ErrBudgetExceeded once the context is done. A partial analysis
// is never returned — callers that must finish (the wash-insertion
// fixpoints, which need a complete analysis to stay sound) keep using
// Analyze; callers that can reject (the corpus washability proof, the
// differential oracle) use this form so a deadline cannot be overrun
// by one large analysis.
func AnalyzeContext(ctx context.Context, s *schedule.Schedule) (*Analysis, error) {
	return AnalyzeWithPolicyContext(ctx, s, Policy{})
}

// AnalyzeWithPolicy is Analyze under an explicit conservatism policy.
func AnalyzeWithPolicy(s *schedule.Schedule, pol Policy) (*Analysis, error) {
	return analyzeWithPolicy(nil, s, pol)
}

// AnalyzeWithPolicyContext is AnalyzeContext under an explicit policy.
func AnalyzeWithPolicyContext(ctx context.Context, s *schedule.Schedule, pol Policy) (*Analysis, error) {
	cp := solve.NewCheckpoint(ctx)
	return analyzeWithPolicy(&cp, s, pol)
}

// cancelErr wraps a checkpoint cancellation in the contam error
// contract.
func cancelErr(err error) error {
	return fmt.Errorf("contam: analysis canceled: %w: %w", solve.ErrBudgetExceeded, err)
}

func analyzeWithPolicy(cp *solve.Checkpoint, s *schedule.Schedule, pol Policy) (*Analysis, error) {
	an := &Analysis{Skips: map[SkipReason]int{}}

	events := map[geom.Point][]Event{} // contaminations per cell
	washes := map[geom.Point][]int{}   // wash-completion times per cell
	uses := map[geom.Point][]use{}     // sensitive uses per cell
	wasteUse := map[geom.Point][]int{} // waste-carrier use starts (Type 3 stats)

	for _, t := range s.Tasks() {
		if err := cp.Check(); err != nil {
			return nil, cancelErr(err)
		}
		if !t.Active() {
			continue
		}
		switch t.Kind {
		case schedule.Wash:
			for _, c := range t.Path.Cells {
				washes[c] = append(washes[c], t.End)
			}
		default:
			for _, c := range t.ContamCells {
				ev := Event{Cell: c, Fluid: t.Fluid, At: t.End, TaskID: t.ID}
				events[c] = append(events[c], ev)
				an.Events = append(an.Events, ev)
			}
		}
		switch t.Kind {
		case schedule.Transport:
			cells := t.SensitiveCells
			if pol.FullPathUses {
				cells = t.Path.Cells
			}
			if len(cells) > 0 {
				// Residue of the destination op's other inputs is
				// harmless: those fluids are about to be mixed anyway.
				tol := opTolerated(s.Assay, t.EdgeTo)
				tol[t.Fluid] = true
				if pol.IgnoreFluidTypes {
					tol = map[assay.FluidType]bool{}
				}
				for _, c := range cells {
					uses[c] = append(uses[c], use{start: t.Start, task: t, tolerate: tol})
				}
			}
		case schedule.Operation:
			tol := opTolerated(s.Assay, t.OpID)
			if pol.IgnoreFluidTypes {
				tol = map[assay.FluidType]bool{}
			}
			for _, c := range t.SensitiveCells {
				uses[c] = append(uses[c], use{start: t.Start, task: t, tolerate: tol})
			}
		case schedule.Removal, schedule.WasteDisposal:
			for _, c := range t.Path.Cells {
				wasteUse[c] = append(wasteUse[c], t.Start)
			}
		}
	}

	for c := range events {
		sort.Slice(events[c], func(i, j int) bool { return events[c][i].At < events[c][j].At })
	}
	for c := range uses {
		sort.Slice(uses[c], func(i, j int) bool { return uses[c][i].start < uses[c][j].start })
	}
	for c := range washes {
		sort.Ints(washes[c])
	}

	// Requirements: for each sensitive use, the foreign residue present
	// when it starts (deposited after the last wash) must be washed away.
	seen := map[string]bool{}
	for cell, ulist := range uses {
		for _, u := range ulist {
			// The (cell, use) x events product is the quadratic heart of
			// the analysis; the checkpoint bounds a deadline to one
			// stride of it.
			if err := cp.Check(); err != nil {
				return nil, cancelErr(err)
			}
			lastWash := -1
			for _, w := range washes[cell] {
				if w <= u.start && w > lastWash {
					lastWash = w
				}
			}
			var fluids []assay.FluidType
			var culprits []string
			ready := -1
			for _, ev := range events[cell] {
				if ev.At > u.start || ev.At <= lastWash {
					continue
				}
				if ev.TaskID == u.task.ID {
					continue // a task does not contaminate itself
				}
				if u.tolerate[ev.Fluid] {
					continue
				}
				fluids = appendFluid(fluids, ev.Fluid)
				culprits = appendStr(culprits, ev.TaskID)
				if ev.At > ready {
					ready = ev.At
				}
			}
			if len(fluids) == 0 {
				continue
			}
			key := fmt.Sprintf("%v|%s", cell, u.task.ID)
			if seen[key] {
				continue
			}
			seen[key] = true
			an.Requirements = append(an.Requirements, Requirement{
				Cell: cell, Fluids: fluids, ReadyAt: ready, Deadline: u.start,
				CulpritTasks: culprits, BeforeTask: u.task.ID,
			})
		}
	}
	sort.Slice(an.Requirements, func(i, j int) bool {
		a, b := an.Requirements[i], an.Requirements[j]
		if a.Deadline != b.Deadline {
			return a.Deadline < b.Deadline
		}
		if a.Cell.Y != b.Cell.Y {
			return a.Cell.Y < b.Cell.Y
		}
		if a.Cell.X != b.Cell.X {
			return a.Cell.X < b.Cell.X
		}
		return a.BeforeTask < b.BeforeTask
	})
	sort.Slice(an.Events, func(i, j int) bool {
		a, b := an.Events[i], an.Events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.TaskID != b.TaskID {
			return a.TaskID < b.TaskID
		}
		if a.Cell.Y != b.Cell.Y {
			return a.Cell.Y < b.Cell.Y
		}
		return a.Cell.X < b.Cell.X
	})

	// Skip statistics per contamination event (Sec. II-A's taxonomy).
	demanded := map[string]bool{}
	for _, r := range an.Requirements {
		for _, t := range r.CulpritTasks {
			demanded[fmt.Sprintf("%v|%s", r.Cell, t)] = true
		}
	}
	for _, ev := range an.Events {
		if err := cp.Check(); err != nil {
			return nil, cancelErr(err)
		}
		if demanded[fmt.Sprintf("%v|%s", ev.Cell, ev.TaskID)] {
			an.Skips[NoSkip]++
			continue
		}
		an.Skips[classifySkip(ev, uses[ev.Cell], wasteUse[ev.Cell])]++
	}
	return an, nil
}

// classifySkip explains why the event produced no requirement.
func classifySkip(ev Event, ulist []use, waste []int) SkipReason {
	sensLater := false
	for _, u := range ulist {
		if u.start >= ev.At && u.task.ID != ev.TaskID {
			sensLater = true
			break
		}
	}
	if sensLater {
		return Type2 // later sensitive uses exist, all tolerated the fluid
	}
	for _, w := range waste {
		if w >= ev.At {
			return Type3 // only waste carriers touch it afterwards
		}
	}
	return Type1
}

// opTolerated returns the fluid types harmless to an operation's device:
// its declared inputs (predecessor outputs and reagents) and its own
// output (the Type-2 device rule of Sec. II-A).
func opTolerated(a *assay.Assay, opID string) map[assay.FluidType]bool {
	tol := map[assay.FluidType]bool{}
	op := a.Op(opID)
	if op == nil {
		return tol
	}
	tol[op.Output] = true
	for _, r := range op.Reagents {
		tol[r] = true
	}
	for _, p := range a.Preds(opID) {
		if po := a.Op(p); po != nil {
			tol[po.Output] = true
		}
	}
	return tol
}

func appendFluid(s []assay.FluidType, f assay.FluidType) []assay.FluidType {
	for _, x := range s {
		if x == f {
			return s
		}
	}
	return append(s, f)
}

func appendStr(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// Verify returns an error describing the first outstanding contamination
// requirement of the schedule, or nil if execution is contamination-free.
// It is the correctness oracle for wash optimizers.
func Verify(s *schedule.Schedule) error {
	return verify(Analyze(s))
}

// VerifyContext is Verify under a context with the AnalyzeContext
// cancellation contract: a done context aborts the verification with
// ErrBudgetExceeded instead of certifying or refuting the schedule.
func VerifyContext(ctx context.Context, s *schedule.Schedule) error {
	return verify(AnalyzeContext(ctx, s))
}

func verify(an *Analysis, err error) error {
	if err != nil {
		return err
	}
	if len(an.Requirements) > 0 {
		r := an.Requirements[0]
		return fmt.Errorf("contam: cell %v still carries %v when %s starts at %d (contaminated at %d by %v)",
			r.Cell, r.Fluids, r.BeforeTask, r.Deadline, r.ReadyAt, r.CulpritTasks)
	}
	return nil
}
