package contam

import (
	"testing"

	"pathdriverwash/internal/geom"
)

func TestGroupRequirementsBasic(t *testing.T) {
	reqs := []Requirement{
		{Cell: geom.Pt(2, 2), ReadyAt: 3, Deadline: 8, BeforeTask: "u1", CulpritTasks: []string{"c1"}},
		{Cell: geom.Pt(3, 2), ReadyAt: 3, Deadline: 8, BeforeTask: "u1", CulpritTasks: []string{"c1"}},
		{Cell: geom.Pt(4, 2), ReadyAt: 4, Deadline: 8, BeforeTask: "u1", CulpritTasks: []string{"c2"}},
	}
	groups := GroupRequirements(reqs)
	if len(groups) != 1 {
		t.Fatalf("groups = %+v", groups)
	}
	g := groups[0]
	if len(g.Targets) != 3 {
		t.Errorf("targets = %v", g.Targets)
	}
	if g.Ready != 4 || g.Deadline != 8 {
		t.Errorf("window = (%d,%d) want (4,8)", g.Ready, g.Deadline)
	}
	if len(g.Culprits) != 2 {
		t.Errorf("culprits = %v", g.Culprits)
	}
	if len(g.Before) != 1 || g.Before[0] != "u1" {
		t.Errorf("before = %v", g.Before)
	}
}

func TestGroupRequirementsSplitsDisconnected(t *testing.T) {
	reqs := []Requirement{
		{Cell: geom.Pt(1, 1), ReadyAt: 1, Deadline: 9, BeforeTask: "u1", CulpritTasks: []string{"c"}},
		{Cell: geom.Pt(7, 7), ReadyAt: 1, Deadline: 9, BeforeTask: "u1", CulpritTasks: []string{"c"}},
	}
	groups := GroupRequirements(reqs)
	if len(groups) != 2 {
		t.Fatalf("expected 2 groups: %+v", groups)
	}
}

func TestGroupRequirementsSplitsByUser(t *testing.T) {
	reqs := []Requirement{
		{Cell: geom.Pt(1, 1), ReadyAt: 1, Deadline: 5, BeforeTask: "u1", CulpritTasks: []string{"c"}},
		{Cell: geom.Pt(2, 1), ReadyAt: 1, Deadline: 9, BeforeTask: "u2", CulpritTasks: []string{"c"}},
	}
	groups := GroupRequirements(reqs)
	if len(groups) != 2 {
		t.Fatalf("expected per-user groups: %+v", groups)
	}
}

func TestGroupRequirementsCoverageDedup(t *testing.T) {
	// The second requirement's window contains the first group's window
	// and targets the same cell, so one wash serves both.
	reqs := []Requirement{
		{Cell: geom.Pt(1, 1), ReadyAt: 3, Deadline: 5, BeforeTask: "u1", CulpritTasks: []string{"c"}},
		{Cell: geom.Pt(1, 1), ReadyAt: 2, Deadline: 9, BeforeTask: "u2", CulpritTasks: []string{"c"}},
	}
	groups := GroupRequirements(reqs)
	if len(groups) != 1 {
		t.Fatalf("later covered requirement should be dropped: %+v", groups)
	}
	if groups[0].Before[0] != "u1" {
		t.Errorf("kept group = %+v", groups[0])
	}
}

func TestGroupsOrderedByDeadline(t *testing.T) {
	reqs := []Requirement{
		{Cell: geom.Pt(5, 5), ReadyAt: 6, Deadline: 12, BeforeTask: "late", CulpritTasks: []string{"c"}},
		{Cell: geom.Pt(1, 1), ReadyAt: 1, Deadline: 4, BeforeTask: "early", CulpritTasks: []string{"c"}},
	}
	groups := GroupRequirements(reqs)
	if len(groups) != 2 || groups[0].Before[0] != "early" {
		t.Fatalf("groups not deadline-ordered: %+v", groups)
	}
}

func TestMergeGroupsByProximityAndWindow(t *testing.T) {
	a := Group{Targets: []geom.Point{geom.Pt(1, 1)}, Ready: 1, Deadline: 10,
		Before: []string{"u1"}, Culprits: []string{"c1"}}
	b := Group{Targets: []geom.Point{geom.Pt(3, 1)}, Ready: 2, Deadline: 8,
		Before: []string{"u2"}, Culprits: []string{"c2"}}
	merged := MergeGroups([]Group{a, b}, 4)
	if len(merged) != 1 {
		t.Fatalf("expected merge: %+v", merged)
	}
	g := merged[0]
	if g.Ready != 2 || g.Deadline != 8 {
		t.Errorf("window = (%d,%d)", g.Ready, g.Deadline)
	}
	if len(g.Targets) != 2 || len(g.Before) != 2 || len(g.Culprits) != 2 {
		t.Errorf("merged group = %+v", g)
	}
}

func TestMergeGroupsRespectsRadius(t *testing.T) {
	a := Group{Targets: []geom.Point{geom.Pt(1, 1)}, Ready: 1, Deadline: 10}
	b := Group{Targets: []geom.Point{geom.Pt(9, 9)}, Ready: 2, Deadline: 8}
	if got := MergeGroups([]Group{a, b}, 4); len(got) != 2 {
		t.Fatalf("far groups must not merge: %+v", got)
	}
}

func TestMergeGroupsRespectsWindows(t *testing.T) {
	a := Group{Targets: []geom.Point{geom.Pt(1, 1)}, Ready: 1, Deadline: 3}
	b := Group{Targets: []geom.Point{geom.Pt(2, 1)}, Ready: 5, Deadline: 9}
	if got := MergeGroups([]Group{a, b}, 4); len(got) != 2 {
		t.Fatalf("window-disjoint groups must not merge: %+v", got)
	}
}

func TestMergeGroupsFixpoint(t *testing.T) {
	// Three chained groups: a-b mergeable, then (ab)-c mergeable.
	a := Group{Targets: []geom.Point{geom.Pt(1, 1)}, Ready: 1, Deadline: 10}
	b := Group{Targets: []geom.Point{geom.Pt(4, 1)}, Ready: 1, Deadline: 10}
	c := Group{Targets: []geom.Point{geom.Pt(7, 1)}, Ready: 1, Deadline: 10}
	if got := MergeGroups([]Group{a, b, c}, 3); len(got) != 1 {
		t.Fatalf("chain should fully merge: %+v", got)
	}
}
