package contam

import (
	"strings"

	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/schedule"
)

// Heatmap renders the chip as ASCII art with per-cell contamination
// event counts: '.' empty, '-' clean routable cell, digits 1-9 for
// event counts (capped), '*' for ten or more. Device cells show their
// count too; port cells show 'I'/'O'. Useful for eyeballing where wash
// pressure concentrates on a layout.
func Heatmap(s *schedule.Schedule) (string, error) {
	an, err := Analyze(s)
	if err != nil {
		return "", err
	}
	counts := map[geom.Point]int{}
	for _, ev := range an.Events {
		counts[ev.Cell]++
	}
	chip := s.Chip
	var b strings.Builder
	for y := 0; y < chip.H; y++ {
		for x := 0; x < chip.W; x++ {
			p := geom.Pt(x, y)
			switch {
			case chip.PortAt(p) != nil:
				if pt := chip.PortAt(p); pt.Kind.String() == "flow" {
					b.WriteByte('I')
				} else {
					b.WriteByte('O')
				}
			case !chip.Routable(p):
				b.WriteByte('.')
			case counts[p] == 0:
				b.WriteByte('-')
			case counts[p] >= 10:
				b.WriteByte('*')
			default:
				b.WriteByte(byte('0' + counts[p]))
			}
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}
