package contam

import (
	"strings"
	"testing"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/schedule"
	"pathdriverwash/internal/synth"
)

// lineChip builds a 12x5 chip: one spine channel (row 2) with in/out at
// the ends, and a second bypass row for wash routing.
func lineChip(t *testing.T) *grid.Chip {
	t.Helper()
	c := grid.NewChip("line", 12, 5)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	_, err := c.AddPort("in1", grid.FlowPort, geom.Pt(0, 2))
	must(err)
	_, err = c.AddPort("out1", grid.WastePort, geom.Pt(11, 2))
	must(err)
	for x := 1; x < 11; x++ {
		must(c.AddChannel(geom.Pt(x, 2)))
	}
	must(c.Validate())
	return c
}

func seq(y, x0, x1 int) []geom.Point {
	var pts []geom.Point
	for x := x0; x <= x1; x++ {
		pts = append(pts, geom.Pt(x, y))
	}
	return pts
}

// twoTransportSchedule builds two transports over the same spine: the
// first carries fluid fa and contaminates cells 3..6; the second carries
// fb with the same cells sensitive.
func twoTransportSchedule(t *testing.T, fa, fb assay.FluidType, gap int) *schedule.Schedule {
	t.Helper()
	c := lineChip(t)
	a := assay.New("two")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 1, Output: fa, Reagents: []assay.FluidType{fa}})
	a.MustAddOp(&assay.Operation{ID: "o2", Kind: assay.Mix, Duration: 1, Output: fb, Reagents: []assay.FluidType{fb}})
	s := schedule.New(c, a)
	full := grid.NewPath(seq(2, 0, 11)...)
	s.MustAdd(&schedule.Task{
		ID: "t1", Kind: schedule.Transport, Start: 0, End: 1, MinDuration: 1,
		Path: full, Fluid: fa,
		ContamCells:    seq(2, 3, 6),
		SensitiveCells: seq(2, 3, 6),
	})
	s.MustAdd(&schedule.Task{
		ID: "t2", Kind: schedule.Transport, Start: 1 + gap, End: 2 + gap, MinDuration: 1,
		Path: full, Fluid: fb,
		ContamCells:    seq(2, 3, 6),
		SensitiveCells: seq(2, 3, 6),
	})
	return s
}

func TestConflictDetected(t *testing.T) {
	s := twoTransportSchedule(t, "fa", "fb", 3)
	an, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Requirements) != 4 { // cells 3..6
		t.Fatalf("requirements = %d want 4: %v", len(an.Requirements), an.Requirements)
	}
	r := an.Requirements[0]
	if r.ReadyAt != 1 || r.Deadline != 4 || r.BeforeTask != "t2" {
		t.Errorf("requirement = %+v", r)
	}
	if len(r.CulpritTasks) != 1 || r.CulpritTasks[0] != "t1" {
		t.Errorf("culprits = %v", r.CulpritTasks)
	}
	if err := Verify(s); err == nil {
		t.Error("Verify must fail on contaminated schedule")
	}
}

func TestType2SameFluidSkipped(t *testing.T) {
	s := twoTransportSchedule(t, "fa", "fa", 3)
	an, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Requirements) != 0 {
		t.Fatalf("same-fluid reuse must need no wash: %v", an.Requirements)
	}
	if an.Skips[Type2] == 0 {
		t.Errorf("expected Type2 skips, got %v", an.Skips)
	}
	if err := Verify(s); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestType1NeverReused(t *testing.T) {
	c := lineChip(t)
	a := assay.New("one")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 1, Output: "fa", Reagents: []assay.FluidType{"fa"}})
	s := schedule.New(c, a)
	s.MustAdd(&schedule.Task{
		ID: "t1", Kind: schedule.Transport, Start: 0, End: 1, MinDuration: 1,
		Path:        grid.NewPath(seq(2, 0, 11)...),
		Fluid:       "fa",
		ContamCells: seq(2, 3, 6), SensitiveCells: seq(2, 3, 6),
	})
	an, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Requirements) != 0 {
		t.Fatalf("unused residue must need no wash: %v", an.Requirements)
	}
	if an.Skips[Type1] != 4 {
		t.Errorf("Type1 skips = %v", an.Skips)
	}
}

func TestType3WasteCarrierSkipped(t *testing.T) {
	c := lineChip(t)
	a := assay.New("w")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 1, Output: "fa", Reagents: []assay.FluidType{"fa"}})
	s := schedule.New(c, a)
	full := grid.NewPath(seq(2, 0, 11)...)
	s.MustAdd(&schedule.Task{
		ID: "t1", Kind: schedule.Transport, Start: 0, End: 1, MinDuration: 1,
		Path: full, Fluid: "fa",
		ContamCells: seq(2, 3, 6), SensitiveCells: seq(2, 3, 6),
	})
	// A waste disposal later reuses the same cells: no wash needed (Q=1).
	s.MustAdd(&schedule.Task{
		ID: "d1", Kind: schedule.WasteDisposal, Start: 3, End: 4, MinDuration: 1,
		Path: full, Fluid: assay.Waste,
		ContamCells: seq(2, 3, 10),
	})
	an, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Requirements) != 0 {
		t.Fatalf("waste-only reuse must need no wash: %v", an.Requirements)
	}
	if an.Skips[Type3] == 0 {
		t.Errorf("expected Type3 skips: %v", an.Skips)
	}
}

func TestWashClearsResidue(t *testing.T) {
	s := twoTransportSchedule(t, "fa", "fb", 5)
	// Insert a wash covering the spine between the transports.
	s.MustAdd(&schedule.Task{
		ID: "w1", Kind: schedule.Wash, Start: 2, End: 4, MinDuration: 2,
		Path:        grid.NewPath(seq(2, 0, 11)...),
		Fluid:       "buffer",
		WashTargets: seq(2, 3, 6),
	})
	an, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Requirements) != 0 {
		t.Fatalf("washed schedule still has requirements: %v", an.Requirements)
	}
	if err := Verify(s); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestWashTooLateDoesNotHelp(t *testing.T) {
	s := twoTransportSchedule(t, "fa", "fb", 5)
	s.MustAdd(&schedule.Task{
		ID: "w1", Kind: schedule.Wash, Start: 7, End: 9, MinDuration: 2,
		Path:        grid.NewPath(seq(2, 0, 11)...),
		Fluid:       "buffer",
		WashTargets: seq(2, 3, 6),
	})
	if err := Verify(s); err == nil {
		t.Fatal("wash after the sensitive use must not satisfy it")
	}
}

func TestRecontaminationAfterWash(t *testing.T) {
	s := twoTransportSchedule(t, "fa", "fb", 8)
	// Wash early, then a third fa transport re-contaminates before t2.
	s.MustAdd(&schedule.Task{
		ID: "w1", Kind: schedule.Wash, Start: 2, End: 3, MinDuration: 1,
		Path:        grid.NewPath(seq(2, 0, 11)...),
		Fluid:       "buffer",
		WashTargets: seq(2, 3, 6),
	})
	s.MustAdd(&schedule.Task{
		ID: "t3", Kind: schedule.Transport, Start: 4, End: 5, MinDuration: 1,
		Path:        grid.NewPath(seq(2, 0, 11)...),
		Fluid:       "fa",
		ContamCells: seq(2, 3, 6), SensitiveCells: seq(2, 3, 6),
	})
	an, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	// t2 (fb) at start 9 sees fa residue from t3 (deposited at 5).
	if len(an.Requirements) != 4 {
		t.Fatalf("requirements = %v", an.Requirements)
	}
	if an.Requirements[0].ReadyAt != 5 || an.Requirements[0].CulpritTasks[0] != "t3" {
		t.Errorf("requirement = %+v", an.Requirements[0])
	}
}

func TestOpToleratesItsInputs(t *testing.T) {
	a := assay.New("tol")
	a.MustAddOp(&assay.Operation{ID: "p", Kind: assay.Mix, Duration: 1, Output: "fp", Reagents: []assay.FluidType{"r1"}})
	a.MustAddOp(&assay.Operation{ID: "q", Kind: assay.Mix, Duration: 1, Output: "fq", Reagents: []assay.FluidType{"r2"}})
	a.MustAddEdge("p", "q")
	tol := opTolerated(a, "q")
	for _, f := range []assay.FluidType{"fq", "r2", "fp"} {
		if !tol[f] {
			t.Errorf("op q should tolerate %s", f)
		}
	}
	if tol["other"] {
		t.Error("op q must not tolerate foreign fluid")
	}
	if len(opTolerated(a, "missing")) != 0 {
		t.Error("unknown op tolerates nothing")
	}
}

func TestDeviceResidueConflict(t *testing.T) {
	c := grid.NewChip("dev", 10, 5)
	if _, err := c.AddPort("in1", grid.FlowPort, geom.Pt(0, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddPort("out1", grid.WastePort, geom.Pt(9, 2)); err != nil {
		t.Fatal(err)
	}
	d, err := c.AddDevice("mixer1", grid.Mixer, geom.Rc(4, 2, 6, 3))
	if err != nil {
		t.Fatal(err)
	}
	for x := 1; x < 9; x++ {
		if err := c.AddChannel(geom.Pt(x, 2)); err != nil {
			t.Fatal(err)
		}
	}
	a := assay.New("dev")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 1, Output: "fa", Reagents: []assay.FluidType{"ra"}})
	a.MustAddOp(&assay.Operation{ID: "o2", Kind: assay.Mix, Duration: 1, Output: "fb", Reagents: []assay.FluidType{"rb"}})
	s := schedule.New(c, a)
	// o1 runs on the mixer; its disposal deposits fa residue on the
	// device; o2 then runs on the same mixer with foreign inputs.
	s.MustAdd(&schedule.Task{ID: "op-o1", Kind: schedule.Operation, Start: 0, End: 1,
		MinDuration: 1, OpID: "o1", Device: d, Fluid: "fa", SensitiveCells: d.Cells()})
	s.MustAdd(&schedule.Task{ID: "disp-o1", Kind: schedule.WasteDisposal, Start: 1, End: 2,
		MinDuration: 1, Path: grid.NewPath(seq(2, 0, 9)...), Fluid: "fa",
		ContamCells: d.Cells()})
	s.MustAdd(&schedule.Task{ID: "op-o2", Kind: schedule.Operation, Start: 5, End: 6,
		MinDuration: 1, OpID: "o2", Device: d, Fluid: "fb", SensitiveCells: d.Cells()})
	an, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Requirements) == 0 {
		t.Fatal("device residue conflict not detected")
	}
	r := an.Requirements[0]
	if r.BeforeTask != "op-o2" || r.Deadline != 5 {
		t.Errorf("requirement = %+v", r)
	}
}

func TestSynthesizedScheduleAnalysis(t *testing.T) {
	// End-to-end: a three-op chain with distinct fluids must produce
	// requirements (the same channels are reused by different fluids).
	a := assay.New("e2e")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 2, Output: "f1",
		Reagents: []assay.FluidType{"r1", "r2"}})
	a.MustAddOp(&assay.Operation{ID: "o2", Kind: assay.Mix, Duration: 2, Output: "f2",
		Reagents: []assay.FluidType{"r3"}})
	a.MustAddOp(&assay.Operation{ID: "o3", Kind: assay.Mix, Duration: 2, Output: "f3"})
	a.MustAddEdge("o1", "o3")
	a.MustAddEdge("o2", "o3")
	res, err := synth.Synthesize(a, Config{}.devices())
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Events) == 0 {
		t.Fatal("no contamination events on a synthesized schedule")
	}
	total := 0
	for _, n := range an.Skips {
		total += n
	}
	if total != len(an.Events) {
		t.Errorf("skip stats cover %d of %d events", total, len(an.Events))
	}
	t.Logf("events=%d requirements=%d skips=%v", len(an.Events), len(an.Requirements), an.Skips)
}

// Config helper so the test reads naturally.
type Config struct{}

func (Config) devices() synth.Config {
	return synth.Config{Devices: []synth.DeviceSpec{{Kind: grid.Mixer, Count: 2}}}
}

func TestSkipReasonStrings(t *testing.T) {
	for r, want := range map[SkipReason]string{
		NoSkip: "wash-needed", Type1: "type1-unused",
		Type2: "type2-same-fluid", Type3: "type3-waste-only",
	} {
		if r.String() != want {
			t.Errorf("%d = %q want %q", r, r.String(), want)
		}
	}
}

func TestRequirementString(t *testing.T) {
	r := Requirement{Cell: geom.Pt(1, 2), ReadyAt: 3, Deadline: 7, BeforeTask: "t9"}
	if !strings.Contains(r.String(), "(1,2)") || !strings.Contains(r.String(), "t9") {
		t.Errorf("String = %q", r.String())
	}
}

func TestFullPathUsesPolicy(t *testing.T) {
	// A transport whose full path covers a residue cell outside its plug
	// region: the default policy ignores it, the conservative full-path
	// policy demands a wash.
	c := lineChip(t)
	a := assay.New("fp")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 1, Output: "fa", Reagents: []assay.FluidType{"fa"}})
	a.MustAddOp(&assay.Operation{ID: "o2", Kind: assay.Mix, Duration: 1, Output: "fb", Reagents: []assay.FluidType{"fb"}})
	s := schedule.New(c, a)
	full := grid.NewPath(seq(2, 0, 11)...)
	// t1 contaminates cell (9,2), which lies on t2's full path but NOT
	// in t2's plug region (cells 3..6).
	s.MustAdd(&schedule.Task{
		ID: "t1", Kind: schedule.Transport, Start: 0, End: 1, MinDuration: 1,
		Path: full, Fluid: "fa",
		ContamCells: seq(2, 9, 9), SensitiveCells: seq(2, 9, 9),
	})
	s.MustAdd(&schedule.Task{
		ID: "t2", Kind: schedule.Transport, Start: 3, End: 4, MinDuration: 1,
		Path: full, Fluid: "fb",
		SensitiveCells: seq(2, 3, 6),
	})
	lax, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(lax.Requirements) != 0 {
		t.Fatalf("plug-region policy should not demand a wash: %v", lax.Requirements)
	}
	cons, err := AnalyzeWithPolicy(s, Policy{FullPathUses: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cons.Requirements) == 0 {
		t.Fatal("full-path policy must demand a wash for (9,2)")
	}
	if cons.Requirements[0].Cell != geom.Pt(9, 2) {
		t.Fatalf("requirement = %+v", cons.Requirements[0])
	}
}

func TestIgnoreFluidTypesPolicy(t *testing.T) {
	s := twoTransportSchedule(t, "fa", "fa", 3)
	lax, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := AnalyzeWithPolicy(s, Policy{IgnoreFluidTypes: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(lax.Requirements) != 0 {
		t.Fatal("same-fluid reuse clean under default policy")
	}
	if len(cons.Requirements) == 0 {
		t.Fatal("conservative policy must wash same-fluid reuse")
	}
}

func TestHeatmap(t *testing.T) {
	s := twoTransportSchedule(t, "fa", "fb", 3)
	hm, err := Heatmap(s)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(hm, "\n"), "\n")
	if len(lines) != 5 || len(lines[0]) != 12 {
		t.Fatalf("heatmap shape wrong:\n%s", hm)
	}
	if !strings.Contains(hm, "I") || !strings.Contains(hm, "O") {
		t.Error("ports missing")
	}
	// Cells 3..6 on row 2 were contaminated twice (t1 and t2).
	if !strings.Contains(lines[2], "2222") {
		t.Errorf("contamination counts missing: %q", lines[2])
	}
}
