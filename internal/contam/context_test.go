package contam

import (
	"context"
	"errors"
	"testing"

	"pathdriverwash/internal/solve"
)

// TestAnalyzeContextLiveMatchesAnalyze pins that the checkpointed
// variant is a pure wrapper: on a live context it returns exactly the
// analysis Analyze returns.
func TestAnalyzeContextLiveMatchesAnalyze(t *testing.T) {
	s := twoTransportSchedule(t, "fa", "fb", 3)
	want, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AnalyzeContext(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Requirements) != len(want.Requirements) || len(got.Events) != len(want.Events) {
		t.Fatalf("AnalyzeContext diverged: %d/%d requirements, %d/%d events",
			len(got.Requirements), len(want.Requirements), len(got.Events), len(want.Events))
	}
}

// TestAnalyzeContextCanceledAborts pins the abort contract: a done
// context yields ErrBudgetExceeded and no partial analysis.
func TestAnalyzeContextCanceledAborts(t *testing.T) {
	s := twoTransportSchedule(t, "fa", "fb", 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	an, err := AnalyzeContext(ctx, s)
	if !errors.Is(err, solve.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	if an != nil {
		t.Fatal("canceled analysis returned a partial result")
	}
}

func TestVerifyContextCanceledAborts(t *testing.T) {
	s := twoTransportSchedule(t, "fa", "fb", 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := VerifyContext(ctx, s)
	if !errors.Is(err, solve.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	// The live form still refutes the contaminated schedule.
	if err := VerifyContext(context.Background(), s); err == nil {
		t.Fatal("VerifyContext(live) must fail on a contaminated schedule")
	} else if errors.Is(err, solve.ErrBudgetExceeded) {
		t.Fatalf("live verification misreported a budget error: %v", err)
	}
}
