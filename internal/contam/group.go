package contam

import (
	"sort"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/geom"
)

// Group is a set of wash requirements servable by a single wash
// operation: connected cells that must be clean before the same task,
// with the combined execution window and culprit set.
type Group struct {
	// Targets are the cells to wash (a connected set).
	Targets []geom.Point
	// Culprits are the contaminating tasks; the wash starts after all.
	Culprits []string
	// Before are the sensitive users; the wash ends before each starts.
	Before []string
	// Ready and Deadline are the window bounds in base-schedule time,
	// used for merging feasibility checks (the ILP re-derives the real
	// window from task variables).
	Ready, Deadline int
	// Fluids are the residue types removed (reporting only).
	Fluids []assay.FluidType
}

// GroupRequirements partitions requirements into wash groups:
//
//  1. requirements already covered by an earlier group are dropped (a
//     wash in a sub-window over the same cell satisfies them too);
//  2. the rest are grouped by sensitive user (BeforeTask) and split
//     into connected cell components.
//
// Groups come out ordered by (Deadline, first target).
func GroupRequirements(reqs []Requirement) []Group {
	ordered := append([]Requirement(nil), reqs...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Deadline != ordered[j].Deadline {
			return ordered[i].Deadline < ordered[j].Deadline
		}
		return lessPoint(ordered[i].Cell, ordered[j].Cell)
	})

	byUser := map[string][]Requirement{}
	var users []string
	for _, r := range ordered {
		if _, ok := byUser[r.BeforeTask]; !ok {
			users = append(users, r.BeforeTask)
		}
		byUser[r.BeforeTask] = append(byUser[r.BeforeTask], r)
	}
	var groups []Group
	for _, u := range users {
		for _, comp := range components(byUser[u]) {
			g := Group{Before: []string{u}, Ready: -1, Deadline: comp[0].Deadline}
			for _, r := range comp {
				g.Targets = append(g.Targets, r.Cell)
				for _, c := range r.CulpritTasks {
					g.Culprits = appendStr(g.Culprits, c)
				}
				for _, f := range r.Fluids {
					g.Fluids = appendFluid(g.Fluids, f)
				}
				if r.ReadyAt > g.Ready {
					g.Ready = r.ReadyAt
				}
				if r.Deadline < g.Deadline {
					g.Deadline = r.Deadline
				}
			}
			sort.Slice(g.Targets, func(i, j int) bool { return lessPoint(g.Targets[i], g.Targets[j]) })
			sort.Strings(g.Culprits)
			groups = append(groups, g)
		}
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].Deadline != groups[j].Deadline {
			return groups[i].Deadline < groups[j].Deadline
		}
		return lessPoint(groups[i].Targets[0], groups[j].Targets[0])
	})
	// Coverage dedup: a group whose targets all sit inside an earlier
	// kept group, whose window contains that group's window, is already
	// satisfied by the earlier wash (any wash time in the kept window
	// also lies in the dropped group's window).
	var kept []Group
	for _, g := range groups {
		redundant := false
		for i := range kept {
			k := &kept[i]
			if k.Ready >= g.Ready && k.Deadline <= g.Deadline && coversTargets(k.Targets, g.Targets) {
				// The kept wash also serves g; it inherits g's ordering
				// obligations (wash before g's users, after g's
				// culprits — the latter already implied by the ready
				// times but kept explicit for the precedence DAG).
				for _, u := range g.Before {
					k.Before = appendStr(k.Before, u)
				}
				for _, c := range g.Culprits {
					k.Culprits = appendStr(k.Culprits, c)
				}
				for _, f := range g.Fluids {
					k.Fluids = appendFluid(k.Fluids, f)
				}
				redundant = true
				break
			}
		}
		if !redundant {
			kept = append(kept, g)
		}
	}
	return kept
}

func coversTargets(have, want []geom.Point) bool {
	for _, w := range want {
		if !containsPoint(have, w) {
			return false
		}
	}
	return true
}

// components splits same-user requirements into connected cell sets.
func components(rs []Requirement) [][]Requirement {
	n := len(rs)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rs[i].Cell.Adjacent(rs[j].Cell) || rs[i].Cell == rs[j].Cell {
				union(i, j)
			}
		}
	}
	byRoot := map[int][]Requirement{}
	var roots []int
	for i := 0; i < n; i++ {
		r := find(i)
		if _, ok := byRoot[r]; !ok {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], rs[i])
	}
	sort.Ints(roots)
	out := make([][]Requirement, 0, len(roots))
	for _, r := range roots {
		comp := byRoot[r]
		sort.Slice(comp, func(i, j int) bool { return lessPoint(comp[i].Cell, comp[j].Cell) })
		out = append(out, comp)
	}
	return out
}

// MergeGroups greedily merges wash groups whose windows intersect and
// whose target sets lie within the given Manhattan radius of each other —
// PDW's global path sharing: one wash path serving several contaminated
// regions (the "resource sharing" DAWO lacks, Sec. I). Merging repeats
// to a fixpoint.
func MergeGroups(groups []Group, radius int) []Group {
	out := append([]Group(nil), groups...)
	for {
		merged := false
		for i := 0; i < len(out) && !merged; i++ {
			for j := i + 1; j < len(out); j++ {
				if !mergeable(out[i], out[j], radius) {
					continue
				}
				out[i] = mergeTwo(out[i], out[j])
				out = append(out[:j], out[j+1:]...)
				merged = true
				break
			}
		}
		if !merged {
			return out
		}
	}
}

func mergeable(a, b Group, radius int) bool {
	ready := a.Ready
	if b.Ready > ready {
		ready = b.Ready
	}
	deadline := a.Deadline
	if b.Deadline < deadline {
		deadline = b.Deadline
	}
	if ready >= deadline {
		return false // no common window in base time
	}
	best := 1 << 30
	for _, p := range a.Targets {
		for _, q := range b.Targets {
			if d := p.Manhattan(q); d < best {
				best = d
			}
		}
	}
	return best <= radius
}

func mergeTwo(a, b Group) Group {
	g := Group{Ready: a.Ready, Deadline: a.Deadline}
	if b.Ready > g.Ready {
		g.Ready = b.Ready
	}
	if b.Deadline < g.Deadline {
		g.Deadline = b.Deadline
	}
	g.Targets = append([]geom.Point(nil), a.Targets...)
	for _, t := range b.Targets {
		if !containsPoint(g.Targets, t) {
			g.Targets = append(g.Targets, t)
		}
	}
	sort.Slice(g.Targets, func(i, j int) bool { return lessPoint(g.Targets[i], g.Targets[j]) })
	for _, c := range append(append([]string(nil), a.Culprits...), b.Culprits...) {
		g.Culprits = appendStr(g.Culprits, c)
	}
	sort.Strings(g.Culprits)
	for _, u := range append(append([]string(nil), a.Before...), b.Before...) {
		g.Before = appendStr(g.Before, u)
	}
	sort.Strings(g.Before)
	for _, f := range append(append([]assay.FluidType(nil), a.Fluids...), b.Fluids...) {
		g.Fluids = appendFluid(g.Fluids, f)
	}
	return g
}

func lessPoint(a, b geom.Point) bool {
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.X < b.X
}

func containsPoint(pts []geom.Point, p geom.Point) bool {
	for _, q := range pts {
		if q == p {
			return true
		}
	}
	return false
}
