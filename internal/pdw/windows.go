package pdw

import (
	"context"
	"fmt"
	"math"
	"time"

	"pathdriverwash/internal/lp"
	"pathdriverwash/internal/milp"
	"pathdriverwash/internal/replan"
	"pathdriverwash/internal/schedule"
	"pathdriverwash/internal/solve"
)

// optimizeWindows solves the time-window MILP of Eqs. (1)-(8), (16)-(22):
// task start variables with fixed durations, precedence rows from the
// plan's DAG, big-M disjunctions for the plan's free conflict pairs, and
// makespan minimization. The greedy schedule warm-starts the search; the
// big-M constant is the greedy makespan, which is always a valid horizon.
//
// Pairs whose flip could reorder contamination relative to the greedy
// analysis (a wash versus a task touching its target cells) are fixed to
// the greedy order; see DESIGN.md for the safety argument.
func optimizeWindows(ctx context.Context, plan *replan.Plan, greedy *schedule.Schedule, limit time.Duration, stats *solve.Stats) (*schedule.Schedule, bool, error) {
	n := len(plan.Tasks)
	horizon := greedy.Makespan()
	if horizon <= 0 {
		return nil, false, fmt.Errorf("pdw: empty greedy schedule")
	}
	bigM := float64(horizon + 1)

	prob := milp.NewProblem(0)
	starts := make([]int, n)
	for i := range plan.Tasks {
		starts[i] = prob.AddContinuous(0, float64(horizon))
	}
	mk := prob.AddContinuous(0, float64(horizon))
	prob.SetObjective(mk, 1)

	// Precedence rows: end_i <= start_j.
	for _, e := range plan.Edges {
		prob.LP.AddConstraint(map[int]float64{
			starts[e[1]]: 1, starts[e[0]]: -1,
		}, lp.GE, float64(plan.Durations[e[0]]),
			fmt.Sprintf("prec-%s-%s", plan.Tasks[e[0]].ID, plan.Tasks[e[1]].ID))
	}
	// Makespan rows (Eq. 22 over all active tasks).
	for i, t := range plan.Tasks {
		if !t.Active() {
			continue
		}
		prob.LP.AddConstraint(map[int]float64{mk: 1, starts[i]: -1},
			lp.GE, float64(plan.Durations[i]), "mk-"+t.ID)
	}

	// Split free pairs into contamination-hazard pairs (fixed to greedy
	// order) and genuinely free disjunctions.
	gStart := func(i int) int { return greedy.Task(plan.Tasks[i].ID).Start }
	gEnd := func(i int) int { return greedy.Task(plan.Tasks[i].ID).End }

	type freePair struct {
		i, j int
		bvar int
	}
	var free []freePair
	for _, pr := range plan.FreePairs {
		i, j := pr[0], pr[1]
		if hazardPair(plan.Tasks[i], plan.Tasks[j]) {
			// Fix to greedy order.
			a, b := i, j
			if gEnd(j) <= gStart(i) {
				a, b = j, i
			}
			prob.LP.AddConstraint(map[int]float64{
				starts[b]: 1, starts[a]: -1,
			}, lp.GE, float64(plan.Durations[a]),
				fmt.Sprintf("haz-%s-%s", plan.Tasks[a].ID, plan.Tasks[b].ID))
			continue
		}
		b := prob.AddBinary()
		// b=0: i before j; b=1: j before i (the ε/μ/η of Eqs. 8/19/20).
		prob.LP.AddConstraint(map[int]float64{
			starts[j]: 1, starts[i]: -1, b: bigM,
		}, lp.GE, float64(plan.Durations[i]),
			fmt.Sprintf("disj0-%s-%s", plan.Tasks[i].ID, plan.Tasks[j].ID))
		prob.LP.AddConstraint(map[int]float64{
			starts[i]: 1, starts[j]: -1, b: -bigM,
		}, lp.GE, float64(plan.Durations[j])-bigM,
			fmt.Sprintf("disj1-%s-%s", plan.Tasks[i].ID, plan.Tasks[j].ID))
		free = append(free, freePair{i: i, j: j, bvar: b})
	}

	// Warm start from the greedy schedule.
	inc := make([]float64, prob.LP.NumVars)
	for i := range plan.Tasks {
		inc[starts[i]] = float64(gStart(i))
	}
	inc[mk] = float64(horizon)
	for _, fp := range free {
		if gEnd(fp.i) <= gStart(fp.j) {
			inc[fp.bvar] = 0
		} else {
			inc[fp.bvar] = 1
		}
	}

	solve.ProgressFromContext(ctx).SetModel("window-milp")
	res, err := milp.SolveContext(ctx, prob, milp.Options{TimeLimit: limit, Incumbent: inc})
	if err != nil {
		return nil, false, err
	}
	intVars := 0
	for _, isInt := range prob.Integer {
		if isInt {
			intVars++
		}
	}
	stats.AddMILP(solve.MILPStat{
		Label: "window-milp",
		Vars:  prob.LP.NumVars, IntVars: intVars,
		Constraints: len(prob.LP.Constraints),
		Nodes:       res.Nodes, Pruned: res.Pruned, SimplexIters: res.SimplexIters,
		Status: res.Status.String(), Optimal: res.Status == milp.Optimal,
		Wall: res.Wall, Incumbents: res.Incumbents,
	})
	if res.Status == milp.Infeasible {
		return nil, false, fmt.Errorf("pdw: window MILP %w", solve.ErrInfeasible)
	}
	if res.Status != milp.Optimal && res.Status != milp.Feasible {
		return nil, false, fmt.Errorf("pdw: window MILP status %v: %w", res.Status, solve.ErrBudgetExceeded)
	}
	out := make([]int, n)
	for i := range plan.Tasks {
		out[i] = int(math.Round(res.X[starts[i]]))
		if out[i] < 0 {
			out[i] = 0
		}
	}
	sched, err := plan.Apply(out)
	if err != nil {
		return nil, false, err
	}
	return sched, res.Status == milp.Optimal, nil
}

// CompressBase re-times the wash-free input schedule with the same
// time-window optimization applied to washed schedules (no washes, so
// the model is a pure LP over start times). It provides the fair
// wash-free T_assay reference against which T_delay and waiting times
// are measured; without it, PDW's ILP could look faster than the
// greedy-scheduled input and report negative wash delay.
func CompressBase(base *schedule.Schedule, limit time.Duration) (*schedule.Schedule, error) {
	return CompressBaseContext(context.Background(), base, limit)
}

// CompressBaseContext is CompressBase under a context; a canceled ctx
// falls back to the greedy schedule (never an error).
func CompressBaseContext(ctx context.Context, base *schedule.Schedule, limit time.Duration) (*schedule.Schedule, error) {
	plan, err := replan.Build(base, nil)
	if err != nil {
		return nil, err
	}
	greedy, err := plan.Greedy()
	if err != nil {
		return nil, err
	}
	optimized, _, err := optimizeWindows(ctx, plan, greedy, limit, nil)
	if err != nil || optimized == nil {
		return greedy, nil
	}
	if optimized.Validate() != nil {
		return greedy, nil
	}
	return optimized, nil
}

// hazardPair reports whether flipping the pair's order against the
// greedy schedule could change which residues a sensitive use observes:
// a wash versus a task whose contamination or sensitivity touches the
// wash's targets.
func hazardPair(a, b *schedule.Task) bool {
	w, t := a, b
	if w.Kind != schedule.Wash {
		w, t = b, a
	}
	if w.Kind != schedule.Wash {
		return false
	}
	if t.Kind == schedule.Wash {
		// Two washes sharing cells: order is irrelevant for cleanliness
		// (both clean), only for resource conflicts.
		return false
	}
	tset := map[[2]int]bool{}
	for _, c := range w.WashTargets {
		tset[[2]int{c.X, c.Y}] = true
	}
	for _, c := range t.ContamCells {
		if tset[[2]int{c.X, c.Y}] {
			return true
		}
	}
	for _, c := range t.SensitiveCells {
		if tset[[2]int{c.X, c.Y}] {
			return true
		}
	}
	return false
}
