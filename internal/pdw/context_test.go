package pdw

import (
	"context"
	"testing"
	"time"

	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/contam"
	"pathdriverwash/internal/solve"
)

// pcrSchedule synthesizes the PCR benchmark: large enough that the
// exact window MILP runs for several seconds, so a cancel reliably
// lands mid-solve.
func pcrSchedule(t *testing.T) *Result {
	t.Helper()
	b, err := benchmarks.ByName("PCR")
	if err != nil {
		t.Fatal(err)
	}
	syn, err := b.Synthesize()
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan *Result, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := OptimizeContext(ctx, syn.Schedule, Options{
			PathTimeLimit:   10 * time.Second,
			WindowTimeLimit: time.Minute,
		})
		if err != nil {
			errc <- err
			return
		}
		done <- res
	}()

	time.Sleep(500 * time.Millisecond)
	t0 := time.Now()
	cancel()
	select {
	case err := <-errc:
		t.Fatalf("cancellation must degrade, not error: %v", err)
	case res := <-done:
		if lat := time.Since(t0); lat > 100*time.Millisecond {
			t.Fatalf("returned %v after cancel, want <100ms", lat)
		}
		return res
	}
	return nil
}

func TestOptimizeContextCancelReturnsIncumbentFast(t *testing.T) {
	res := pcrSchedule(t)
	if err := res.Schedule.Validate(); err != nil {
		t.Fatalf("degraded schedule invalid: %v", err)
	}
	if err := contam.Verify(res.Schedule); err != nil {
		t.Fatalf("degraded schedule not clean: %v", err)
	}
	if res.Stats == nil {
		t.Fatal("no stats recorded")
	}
	if !res.Stats.Canceled {
		t.Error("Stats.Canceled not set on a canceled run")
	}
}

func TestBudgetTotalDegradesGracefully(t *testing.T) {
	res := fixture(t)
	out, err := OptimizeContext(context.Background(), res.Schedule, Options{
		Budget: solve.Budget{Total: time.Nanosecond},
	})
	if err != nil {
		t.Fatalf("expired budget must degrade, not error: %v", err)
	}
	if err := contam.Verify(out.Schedule); err != nil {
		t.Fatalf("degraded schedule not clean: %v", err)
	}
	if !out.Stats.Canceled {
		t.Error("Stats.Canceled not set after budget expiry")
	}
}

func TestBudgetFieldsWinOverDeprecatedLimits(t *testing.T) {
	o := Options{
		Budget:          solve.Budget{PerPath: time.Second, Window: 2 * time.Second},
		PathTimeLimit:   9 * time.Second,
		WindowTimeLimit: 9 * time.Second,
	}
	w := o.withDefaults()
	if w.PathTimeLimit != time.Second || w.WindowTimeLimit != 2*time.Second {
		t.Fatalf("limits = %v/%v, want Budget fields to win", w.PathTimeLimit, w.WindowTimeLimit)
	}
	// Without Budget, the deprecated aliases still apply.
	o = Options{PathTimeLimit: 4 * time.Second}
	if w := o.withDefaults(); w.PathTimeLimit != 4*time.Second {
		t.Fatalf("deprecated PathTimeLimit ignored: %v", w.PathTimeLimit)
	}
}

func TestStatsRecorded(t *testing.T) {
	res := fixture(t)
	out, err := Optimize(res.Schedule, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := out.Stats
	if s == nil {
		t.Fatal("no stats")
	}
	if len(s.Phases) < 3 {
		t.Fatalf("phases = %+v, want wash-insertion, window-milp, verify", s.Phases)
	}
	if len(s.MILPs) == 0 {
		t.Fatal("no MILP solves recorded on an ILP run")
	}
	if s.Nodes() == 0 || s.SimplexIters() == 0 {
		t.Fatalf("zero solve work recorded: nodes=%d iters=%d", s.Nodes(), s.SimplexIters())
	}
	if len(s.Skips) == 0 {
		t.Fatal("necessity skip counts missing")
	}
	if s.Canceled {
		t.Fatal("uncanceled run marked canceled")
	}
}
