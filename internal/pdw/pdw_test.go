package pdw

import (
	"testing"
	"time"

	"pathdriverwash/internal/assay"
	"pathdriverwash/internal/contam"
	"pathdriverwash/internal/dawo"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/schedule"
	"pathdriverwash/internal/synth"
)

// fixture synthesizes a serial mixing chain with real
// cross-contamination pressure: o3 reuses o1's mixer after a foreign
// fluid, so PDW must insert device and channel washes.
func fixture(t *testing.T) *synth.Result {
	t.Helper()
	a := assay.New("pdw-fx")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 2, Output: "f1",
		Reagents: []assay.FluidType{"r1", "r2"}})
	a.MustAddOp(&assay.Operation{ID: "o2", Kind: assay.Mix, Duration: 2, Output: "f2",
		Reagents: []assay.FluidType{"r3"}})
	a.MustAddOp(&assay.Operation{ID: "o3", Kind: assay.Mix, Duration: 2, Output: "f3",
		Reagents: []assay.FluidType{"r4"}})
	a.MustAddEdge("o1", "o2")
	a.MustAddEdge("o2", "o3")
	res, err := synth.Synthesize(a, synth.Config{
		Devices: []synth.DeviceSpec{{Kind: grid.Mixer, Count: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFixtureActuallyNeedsWashes(t *testing.T) {
	res := fixture(t)
	out, err := Optimize(res.Schedule, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Washes) == 0 {
		t.Fatal("fixture should force PDW washes")
	}
	if out.IntegratedRemovals == 0 {
		t.Error("fixture should allow at least one ψ-integration")
	}
}

// fastOpts keeps test solves quick.
func fastOpts() Options {
	return Options{PathTimeLimit: 2 * time.Second, WindowTimeLimit: 3 * time.Second}
}

func TestOptimizeProducesCleanValidSchedule(t *testing.T) {
	res := fixture(t)
	out, err := Optimize(res.Schedule, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Schedule.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if err := contam.Verify(out.Schedule); err != nil {
		t.Fatalf("not clean: %v", err)
	}
	if out.Schedule.Makespan() < res.Schedule.Makespan() {
		t.Fatal("washes cannot make the assay faster than wash-free")
	}
}

func TestObjectiveComputed(t *testing.T) {
	res := fixture(t)
	out, err := Optimize(res.Schedule, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	m := out.Schedule.ComputeMetrics(res.Schedule)
	want := Objective(m, 0.3, 0.3, 0.4)
	if out.Objective != want {
		t.Fatalf("objective %g want %g", out.Objective, want)
	}
	if out.Objective <= 0 {
		t.Fatal("objective must be positive on a washed schedule")
	}
}

func TestPDWBeatsOrMatchesDAWO(t *testing.T) {
	res := fixture(t)
	pd, err := Optimize(res.Schedule, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	dw, err := dawo.Optimize(res.Schedule, dawo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pm := pd.Schedule.ComputeMetrics(res.Schedule)
	dm := dw.Schedule.ComputeMetrics(res.Schedule)
	if pm.NWash > dm.NWash {
		t.Errorf("N_wash: PDW %d > DAWO %d", pm.NWash, dm.NWash)
	}
	if pm.TAssay > dm.TAssay {
		t.Errorf("T_assay: PDW %d > DAWO %d", pm.TAssay, dm.TAssay)
	}
	t.Logf("PDW: %+v", pm)
	t.Logf("DAWO: %+v", dm)
}

func TestNecessityAblationWashesMore(t *testing.T) {
	res := fixture(t)
	on, err := Optimize(res.Schedule, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	offOpts := fastOpts()
	offOpts.DisableNecessity = true
	off, err := Optimize(res.Schedule, offOpts)
	if err != nil {
		t.Fatal(err)
	}
	mOn := on.Schedule.ComputeMetrics(res.Schedule)
	mOff := off.Schedule.ComputeMetrics(res.Schedule)
	if mOn.NWash > mOff.NWash {
		t.Errorf("necessity analysis should not increase washes: %d vs %d", mOn.NWash, mOff.NWash)
	}
}

func TestMergeAblation(t *testing.T) {
	res := fixture(t)
	on, err := Optimize(res.Schedule, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	offOpts := fastOpts()
	offOpts.DisableMerge = true
	off, err := Optimize(res.Schedule, offOpts)
	if err != nil {
		t.Fatal(err)
	}
	if on.Schedule == nil || off.Schedule == nil {
		t.Fatal("missing schedules")
	}
	mOn := on.Schedule.ComputeMetrics(res.Schedule)
	mOff := off.Schedule.ComputeMetrics(res.Schedule)
	if mOn.NWash > mOff.NWash {
		t.Errorf("merging should not increase wash count: %d vs %d", mOn.NWash, mOff.NWash)
	}
}

func TestHeuristicModesStillClean(t *testing.T) {
	res := fixture(t)
	opts := fastOpts()
	opts.HeuristicPaths = true
	opts.HeuristicWindows = true
	out, err := Optimize(res.Schedule, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := contam.Verify(out.Schedule); err != nil {
		t.Fatalf("heuristic mode not clean: %v", err)
	}
}

func TestIntegrationReducesActiveRemovals(t *testing.T) {
	res := fixture(t)
	out, err := Optimize(res.Schedule, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	integrated := 0
	for _, rm := range out.Schedule.TasksOf(schedule.Removal) {
		if rm.Integrated {
			integrated++
		}
	}
	if integrated != out.IntegratedRemovals {
		t.Fatalf("schedule shows %d integrated removals, result says %d",
			integrated, out.IntegratedRemovals)
	}
	// Integrated removals must be covered by their wash per Eq. 21
	// (Validate already enforces; assert explicitly for clarity).
	for _, rm := range out.Schedule.TasksOf(schedule.Removal) {
		if !rm.Integrated {
			continue
		}
		w := out.Schedule.Task(rm.IntegratedInto)
		if w == nil || !w.Path.Covers(rm.ExcessCells) {
			t.Fatalf("integration of %s broken", rm.ID)
		}
	}
}

func TestCleanAssayNeedsNoWashes(t *testing.T) {
	a := assay.New("clean")
	a.MustAddOp(&assay.Operation{ID: "o1", Kind: assay.Mix, Duration: 2, Output: "f1",
		Reagents: []assay.FluidType{"r1"}})
	res, err := synth.Synthesize(a, synth.Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Optimize(res.Schedule, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Washes) != 0 {
		t.Fatalf("clean assay received %d washes", len(out.Washes))
	}
	if out.Schedule.Makespan() != res.Schedule.Makespan() {
		t.Fatal("clean assay must keep the base makespan")
	}
}

func TestDeterministic(t *testing.T) {
	res := fixture(t)
	o1, err := Optimize(res.Schedule, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Optimize(res.Schedule, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if o1.Schedule.Makespan() != o2.Schedule.Makespan() || len(o1.Washes) != len(o2.Washes) {
		t.Fatalf("nondeterministic: %d/%d washes, %d/%d makespan",
			len(o1.Washes), len(o2.Washes), o1.Schedule.Makespan(), o2.Schedule.Makespan())
	}
}

func TestWindowMILPNotWorseThanGreedy(t *testing.T) {
	res := fixture(t)
	milpOut, err := Optimize(res.Schedule, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	gOpts := fastOpts()
	gOpts.HeuristicWindows = true
	gOut, err := Optimize(res.Schedule, gOpts)
	if err != nil {
		t.Fatal(err)
	}
	if milpOut.Schedule.Makespan() > gOut.Schedule.Makespan() {
		t.Fatalf("MILP windows (%d) worse than greedy (%d)",
			milpOut.Schedule.Makespan(), gOut.Schedule.Makespan())
	}
}

func TestDefaultWeights(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Alpha != 0.3 || o.Beta != 0.3 || o.Gamma != 0.4 {
		t.Fatalf("defaults = %v/%v/%v", o.Alpha, o.Beta, o.Gamma)
	}
	o2 := Options{Alpha: 1}.withDefaults()
	if o2.Alpha != 1 || o2.Beta != 0 {
		t.Fatal("explicit weights overridden")
	}
}

func TestSkipsReported(t *testing.T) {
	res := fixture(t)
	out, err := Optimize(res.Schedule, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if out.Skips == nil {
		t.Fatal("skip statistics missing")
	}
	total := 0
	for _, n := range out.Skips {
		total += n
	}
	if total == 0 {
		t.Fatal("no contamination events counted")
	}
}
