package pdw

import (
	"context"
	"testing"
	"time"

	"pathdriverwash/internal/contam"
	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/replan"
	"pathdriverwash/internal/schedule"
)

func TestCompressBaseNeverSlower(t *testing.T) {
	res := fixture(t)
	ref, err := CompressBase(res.Schedule, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Makespan() > res.Schedule.Makespan() {
		t.Fatalf("compressed base %d slower than greedy %d",
			ref.Makespan(), res.Schedule.Makespan())
	}
	if err := ref.Validate(); err != nil {
		t.Fatalf("compressed base invalid: %v", err)
	}
}

func TestOptimizeWindowsMatchesGreedyOrBetter(t *testing.T) {
	res := fixture(t)
	// Run PDW's wash discovery only (heuristic windows), then compare
	// the MILP result on the same wash set.
	out, err := Optimize(res.Schedule, Options{
		HeuristicWindows: true,
		PathTimeLimit:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := replan.Build(res.Schedule, out.Washes)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := plan.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	optimized, _, err := optimizeWindows(context.Background(), plan, greedy, 5*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if optimized.Makespan() > greedy.Makespan() {
		t.Fatalf("MILP %d worse than its incumbent %d",
			optimized.Makespan(), greedy.Makespan())
	}
	if err := optimized.Validate(); err != nil {
		t.Fatalf("MILP schedule invalid: %v", err)
	}
	if err := contam.Verify(optimized); err != nil {
		t.Fatalf("MILP schedule contaminated: %v", err)
	}
}

func TestHazardPair(t *testing.T) {
	wash := &schedule.Task{ID: "w", Kind: schedule.Wash,
		WashTargets: []geom.Point{geom.Pt(2, 2), geom.Pt(3, 2)}}
	contaminator := &schedule.Task{ID: "c", Kind: schedule.Transport,
		ContamCells: []geom.Point{geom.Pt(3, 2)}}
	user := &schedule.Task{ID: "u", Kind: schedule.Transport,
		SensitiveCells: []geom.Point{geom.Pt(2, 2)}}
	unrelated := &schedule.Task{ID: "x", Kind: schedule.Transport,
		ContamCells:    []geom.Point{geom.Pt(9, 9)},
		SensitiveCells: []geom.Point{geom.Pt(8, 8)}}
	otherWash := &schedule.Task{ID: "w2", Kind: schedule.Wash,
		WashTargets: []geom.Point{geom.Pt(2, 2)}}

	if !hazardPair(wash, contaminator) || !hazardPair(contaminator, wash) {
		t.Error("wash vs contaminator on target cell must be a hazard")
	}
	if !hazardPair(wash, user) {
		t.Error("wash vs sensitive user on target cell must be a hazard")
	}
	if hazardPair(wash, unrelated) {
		t.Error("disjoint cells are not a hazard")
	}
	if hazardPair(wash, otherWash) {
		t.Error("two washes are never a hazard")
	}
	if hazardPair(contaminator, user) {
		t.Error("pairs without a wash are not classified here")
	}
}

func TestOptimizeWindowsRejectsEmptyPlan(t *testing.T) {
	c := grid.NewChip("empty", 4, 4)
	if _, err := c.AddPort("in", grid.FlowPort, geom.Pt(0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddPort("out", grid.WastePort, geom.Pt(3, 3)); err != nil {
		t.Fatal(err)
	}
	s := schedule.New(c, nil)
	_ = s
	// An empty greedy schedule has makespan 0; optimizeWindows must
	// refuse rather than divide the horizon.
	plan := &replan.Plan{}
	if _, _, err := optimizeWindows(context.Background(), plan, schedule.New(c, nil), time.Second, nil); err == nil {
		t.Fatal("expected error for empty plan")
	}
}
