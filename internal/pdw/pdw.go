// Package pdw implements PathDriver-Wash, the paper's contribution: a
// path-driven wash optimization method for continuous-flow lab-on-a-chip
// systems. Given a chip architecture and a wash-free assay scheduling
// (both produced by internal/synth, standing in for the PathDriver+
// tool), it computes an optimized execution procedure with efficient
// wash operations, minimizing Eq. 26's weighted combination of the wash
// count N_wash, the total wash path length L_wash, and the assay
// completion time T_assay.
//
// The three key techniques of the paper map to pipeline stages:
//
//  1. Wash-necessity analysis (Sec. II-A, Eqs. 9-11): contamination is
//     tracked per grid cell and Type 1/2/3 residues are never washed
//     (internal/contam with the default policy). Wash demands are
//     grouped and globally merged so one path serves nearby regions.
//  2. Integration with excess-fluid removal (Sec. II-B, Eq. 21):
//     removal tasks p_{j,i,2} whose excess cells lie near a wash's
//     targets and whose windows are compatible are absorbed into the
//     wash (ψ=1), eliminating their separate channel occupation.
//  3. Optimized wash paths and time windows (Sec. II-C, Eqs. 12-20):
//     each wash path is solved as an ILP (internal/washpath) and the
//     final time windows come from a MILP over task start times with
//     big-M disjunctions for wash resource conflicts, warm-started from
//     a greedy incumbent and run best-effort under a time limit like
//     the paper's Gurobi setup.
package pdw

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pathdriverwash/internal/contam"
	"pathdriverwash/internal/dawo"
	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/grid"
	"pathdriverwash/internal/obs"
	"pathdriverwash/internal/replan"
	"pathdriverwash/internal/schedule"
	"pathdriverwash/internal/solve"
	"pathdriverwash/internal/washpath"
)

// Options tunes PDW. The zero value enables every technique with the
// paper's parameters; the Disable* switches exist for the ablation
// benches documented in DESIGN.md.
type Options struct {
	// Alpha, Beta, Gamma weight Eq. 26 (defaults 0.3, 0.3, 0.4).
	Alpha, Beta, Gamma float64

	// Budget bounds the run: Budget.Total sets a wall-clock deadline
	// for the whole pipeline (enforced through the context, degrading
	// every later phase to its incumbent on expiry), Budget.PerPath and
	// Budget.Window cap the inner ILPs. Budget fields win over the
	// deprecated per-phase fields below.
	Budget solve.Budget

	// PathTimeLimit bounds each wash-path ILP (default 3 s).
	//
	// Deprecated: alias of Budget.PerPath, kept for callers of the
	// pre-Budget API.
	PathTimeLimit time.Duration
	// WindowTimeLimit bounds the time-window MILP (default 10 s).
	//
	// Deprecated: alias of Budget.Window, kept for callers of the
	// pre-Budget API.
	WindowTimeLimit time.Duration
	// MergeRadius is the Manhattan distance under which wash groups are
	// merged into one path (default 4).
	MergeRadius int
	// MaxRounds caps wash-insertion fixpoint rounds (default 60).
	MaxRounds int

	// DisableNecessity replaces the Type-1/2/3 analysis with the
	// conservative judgement (every foreign residue is washed).
	DisableNecessity bool
	// DisableMerge keeps every demand group as its own wash.
	DisableMerge bool
	// DisableIntegration turns off ψ-integration of excess removals.
	DisableIntegration bool
	// HeuristicPaths uses BFS wash paths instead of the path ILP.
	HeuristicPaths bool
	// HeuristicWindows skips the time-window MILP and keeps the greedy
	// sweep assignment.
	HeuristicWindows bool
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 && o.Beta == 0 && o.Gamma == 0 {
		o.Alpha, o.Beta, o.Gamma = 0.3, 0.3, 0.4
	}
	o.PathTimeLimit = solve.Or(o.Budget.PerPath, o.PathTimeLimit, 3*time.Second)
	o.WindowTimeLimit = solve.Or(o.Budget.Window, o.WindowTimeLimit, 10*time.Second)
	if o.MergeRadius <= 0 {
		o.MergeRadius = 4
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 60
	}
	return o
}

// Result is PDW's output.
type Result struct {
	// Schedule is the optimized execution procedure.
	Schedule *schedule.Schedule
	// Washes are the wash operations (paths, targets, integrations).
	Washes []replan.WashSpec
	// Objective is Eq. 26 evaluated on the result.
	Objective float64
	// WindowsOptimal reports whether the time-window MILP proved
	// optimality (false when the time limit returned best-effort).
	WindowsOptimal bool
	// Rounds counts wash-insertion fixpoint rounds.
	Rounds int
	// IntegratedRemovals counts removals absorbed into washes (ψ=1).
	IntegratedRemovals int
	// Skips are the first-round necessity-analysis statistics: how many
	// contamination events each Type 1/2/3 rule excused from washing
	// (Sec. II-A's central observation).
	Skips map[contam.SkipReason]int
	// Stats is the structured solve telemetry: phase wall times, every
	// ILP's size and branch & bound effort, incumbent trajectories, and
	// the skip counts above keyed by rule name.
	Stats *solve.Stats
}

// Optimize runs PDW on a wash-free base schedule; see OptimizeContext.
func Optimize(base *schedule.Schedule, opts Options) (*Result, error) {
	return OptimizeContext(context.Background(), base, opts)
}

// OptimizeContext runs PDW under ctx. Cancellation (or expiry of the
// ctx deadline / Options.Budget.Total) never aborts with an error once
// the pipeline is running: the wash-insertion fixpoint still runs to a
// contamination-free fixpoint (a partially washed schedule is not a
// feasible incumbent), but every loop inside it polls an amortized
// solve.Checkpoint, and once cancellation is observed the remaining
// rounds run in completion mode — wash paths degrade to the BFS
// heuristic, group merging and ψ-integration are skipped, and the
// time-window MILP is bypassed in favor of its greedy warm-start. The
// result is the best feasible (clean, valid) schedule reached — with
// Stats.Canceled set so callers can tell — and the distance between
// deadline expiry and return is recorded in the
// pdw_deadline_overrun_seconds histogram (the cancellation granularity
// contract in DESIGN.md).
func OptimizeContext(ctx context.Context, base *schedule.Schedule, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	ctx, stop := opts.Budget.Context(ctx)
	defer stop()
	defer func() { solve.ObserveOverrun(ctx) }()
	ctx, span := obs.Start(ctx, "pdw.optimize",
		obs.A("tasks", len(base.Tasks())),
		obs.A("exact_paths", !opts.HeuristicPaths),
		obs.A("exact_windows", !opts.HeuristicWindows))
	defer span.End()
	stats := &solve.Stats{}
	// Mirror phase transitions and cancellation into the live progress
	// view when the root caller (service request, CLI, benchmark)
	// attached one to the context.
	stats.BindProgress(solve.ProgressFromContext(ctx))
	cp := solve.NewCheckpoint(ctx)
	pol := contam.Policy{}
	if opts.DisableNecessity {
		pol = contam.Policy{IgnoreFluidTypes: true}
	}

	insCtx, endInsertion := stats.StartPhaseContext(ctx, "wash-insertion")
	cur := base
	var washes []replan.WashSpec
	integrated := map[string]bool{}
	rounds := 0
	var firstSkips map[contam.SkipReason]int
	for ; rounds < opts.MaxRounds; rounds++ {
		an, err := analyze(insCtx, &cp, cur, pol)
		if err != nil {
			return nil, err
		}
		if firstSkips == nil {
			firstSkips = an.Skips
		}
		if len(an.Requirements) == 0 {
			break
		}
		groups := contam.GroupRequirements(an.Requirements)
		// Merging is a quality optimization, not a soundness requirement:
		// once the budget expired the O(n³) merge fixpoint is skipped.
		if !opts.DisableMerge && !cp.Canceled() {
			groups = contam.MergeGroups(groups, opts.MergeRadius)
		}
		for _, g := range groups {
			specs, err := buildWashSpecs(insCtx, &cp, cur, g, &washes, integrated, opts, stats)
			if err != nil {
				return nil, err
			}
			washes = append(washes, specs...)
		}
		plan, err := replan.Build(base, washes)
		if err != nil {
			return nil, err
		}
		cur, err = plan.Greedy()
		if err != nil {
			return nil, err
		}
	}
	endInsertion()
	if rounds == opts.MaxRounds {
		return nil, fmt.Errorf("pdw: wash insertion did not converge in %d rounds: %w",
			rounds, solve.ErrBudgetExceeded)
	}

	res := &Result{Washes: washes, Rounds: rounds, Skips: firstSkips, Stats: stats}
	for _, w := range washes {
		res.IntegratedRemovals += len(w.Integrates)
	}
	stats.SetSkips(skipNames(firstSkips))

	// Final time-window optimization (Eqs. 16-22 with disjunctions).
	plan, err := replan.Build(base, washes)
	if err != nil {
		return nil, err
	}
	greedy, err := plan.Greedy()
	if err != nil {
		return nil, err
	}
	final := greedy
	// A done context skips the window MILP outright: its result would be
	// the greedy warm-start (which final already is), and even building
	// the model costs a pass over every edge pair.
	if !opts.HeuristicWindows && len(washes) > 0 && cp.Err() == nil {
		wctx, endWindows := stats.StartPhaseContext(ctx, "window-milp")
		optimized, optimal, err := optimizeWindows(wctx, plan, greedy, opts.WindowTimeLimit, stats)
		endWindows()
		if err == nil && optimized != nil {
			if contam.Verify(optimized) == nil {
				final = optimized
				res.WindowsOptimal = optimal
			}
		}
	}
	_, endVerify := stats.StartPhaseContext(ctx, "verify")
	if err := final.Validate(); err != nil {
		return nil, fmt.Errorf("pdw: final schedule invalid: %w", err)
	}
	if err := contam.Verify(final); err != nil {
		return nil, fmt.Errorf("pdw: final schedule not clean: %w", err)
	}
	endVerify()
	if cp.Err() != nil {
		stats.MarkCanceled()
	}
	res.Schedule = final
	m := final.ComputeMetrics(base)
	res.Objective = opts.Alpha*float64(m.NWash) + opts.Beta*m.LWashMM + opts.Gamma*float64(m.TAssay)
	if span != nil {
		span.SetAttr("rounds", rounds)
		span.SetAttr("washes", len(washes))
		span.SetAttr("n_wash", m.NWash)
		span.SetAttr("objective", res.Objective)
		span.SetAttr("canceled", res.Stats.Canceled)
	}
	if obs.Enabled() {
		obs.Default().Counter("pdw_optimize_runs_total").Inc()
		obs.Default().Counter("pdw_washes_built_total").Add(int64(len(washes)))
	}
	return res, nil
}

// analyze runs the wash-necessity analysis for one fixpoint round.
// While the budget is live the checkpointed form is used, so a
// deadline expiring mid-analysis aborts it within one checkpoint
// stride; the abort latches the checkpoint and the analysis reruns —
// and every later round runs — in completion mode, because the
// fixpoint needs a complete analysis to stay sound and the degraded
// rounds are cheap (heuristic paths, no merge, no integration).
func analyze(ctx context.Context, cp *solve.Checkpoint, s *schedule.Schedule, pol contam.Policy) (*contam.Analysis, error) {
	if !cp.Canceled() {
		an, err := contam.AnalyzeWithPolicyContext(ctx, s, pol)
		if err == nil || !errors.Is(err, solve.ErrBudgetExceeded) {
			return an, err
		}
		cp.Err() // latch the cancellation the aborted analysis observed
	}
	return contam.AnalyzeWithPolicy(s, pol)
}

// skipNames converts the typed skip counters to the string keys the
// solve.Stats trace carries.
func skipNames(skips map[contam.SkipReason]int) map[string]int {
	if skips == nil {
		return nil
	}
	out := make(map[string]int, len(skips))
	for r, n := range skips {
		out[r.String()] = n
	}
	return out
}

// buildWashSpecs turns one demand group into wash specs. Paths are
// built for the group's own targets first (ILP or BFS per options);
// excess removals are then absorbed only when (nearly) free: either the
// wash path already flushes over the removal's excess cells, or
// extending the path to cover them keeps a single path and adds at most
// a couple of cells. Anything costlier would *increase* N_wash/L_wash —
// the opposite of what Sec. II-B's integration is for.
//
// Once the checkpoint observes cancellation, remaining paths drop to
// the BFS heuristic and the integration scan stops: both are quality
// optimizations, and skipping them keeps the post-deadline tail to the
// washes the fixpoint still has to insert for soundness.
func buildWashSpecs(ctx context.Context, cp *solve.Checkpoint, cur *schedule.Schedule, g contam.Group,
	existing *[]replan.WashSpec, integrated map[string]bool, opts Options, stats *solve.Stats) ([]replan.WashSpec, error) {

	cp.Err()
	wopts := washpath.Options{Exact: !opts.HeuristicPaths && !cp.Canceled(),
		TimeLimit: opts.PathTimeLimit, Trace: stats}
	plans, covered, err := washpath.BuildCoverContext(ctx, cur.Chip, g.Targets, wopts)
	if err != nil {
		return nil, fmt.Errorf("pdw: wash path for %v: %w", g.Targets, err)
	}

	var states []*specState
	for i, plan := range plans {
		states = append(states, &specState{
			spec: replan.WashSpec{
				ID:       fmt.Sprintf("w%d", len(*existing)+i+1),
				Path:     plan.Path,
				Targets:  covered[i],
				Culprits: append([]string(nil), g.Culprits...),
				Before:   append([]string(nil), g.Before...),
			},
			ready: g.Ready, deadline: g.Deadline,
		})
	}

	if !opts.DisableIntegration && !cp.Canceled() {
		for _, rm := range cur.TasksOf(schedule.Removal) {
			// The removals × states product with a path build per
			// candidate is the wash-insertion inner hot loop; a deadline
			// stops the scan here, keeping the specs built so far.
			if cp.Check() != nil {
				break
			}
			if rm.Integrated || integrated[rm.ID] || len(rm.ExcessCells) == 0 {
				continue
			}
			trID, ok := replan.TransportIDForRemoval(rm.ID, rm.EdgeFrom, rm.EdgeTo)
			if !ok {
				continue
			}
			tr := cur.Task(trID)
			user := cur.Task("op-" + rm.EdgeTo)
			if tr == nil || user == nil {
				continue
			}
			for _, st := range states {
				// Eq. 21 window: wash after the transport, before the op.
				nr := maxI(st.ready, tr.End)
				nd := minI(st.deadline, user.Start)
				if nr >= nd {
					continue
				}
				if st.spec.Path.Covers(rm.ExcessCells) {
					// Free: the buffer already flushes these cells.
					st.integrate(rm, trID, nr, nd, nil, nil)
					integrated[rm.ID] = true
					break
				}
				if minDistance(st.spec.Targets, rm.ExcessCells) > opts.MergeRadius {
					continue
				}
				// Try extending the path; accept a single slightly
				// longer path only.
				extended := append(append([]geom.Point(nil), st.spec.Targets...), rm.ExcessCells...)
				newPlans, newCovered, err := washpath.BuildCoverContext(ctx, cur.Chip, extended, wopts)
				if err != nil || len(newPlans) != 1 {
					continue
				}
				if newPlans[0].Path.Len() > st.spec.Path.Len()+2+len(rm.ExcessCells) {
					continue
				}
				st.integrate(rm, trID, nr, nd, &newPlans[0].Path, newCovered[0])
				integrated[rm.ID] = true
				break
			}
		}
	}

	var specs []replan.WashSpec
	for _, st := range states {
		st.spec.Duration = dawo.WashDuration(cur, st.spec.Path.Len())
		specs = append(specs, st.spec)
	}
	return specs, nil
}

// specState is a wash spec under construction with its current
// base-time execution window.
type specState struct {
	spec            replan.WashSpec
	ready, deadline int
}

// integrate records the ψ=1 absorption of a removal into the spec,
// optionally replacing the wash path with an extended one.
func (st *specState) integrate(rm *schedule.Task, trID string, nr, nd int,
	newPath *grid.Path, newTargets []geom.Point) {
	st.ready, st.deadline = nr, nd
	st.spec.Integrates = append(st.spec.Integrates, rm.ID)
	st.spec.Culprits = appendUnique(st.spec.Culprits, trID)
	st.spec.Before = appendUnique(st.spec.Before, "op-"+rm.EdgeTo)
	if newPath != nil {
		st.spec.Path = *newPath
		st.spec.Targets = newTargets
	}
	// The excess cells become hard targets so a later path extension for
	// another integration cannot drop them (Eq. 21 must keep holding).
	for _, c := range rm.ExcessCells {
		if !containsPoint(st.spec.Targets, c) {
			st.spec.Targets = append(st.spec.Targets, c)
		}
	}
}

func minDistance(a, b []geom.Point) int {
	best := 1 << 30
	for _, p := range a {
		for _, q := range b {
			if d := p.Manhattan(q); d < best {
				best = d
			}
		}
	}
	return best
}

func coversAll(set, want []geom.Point) bool {
	for _, w := range want {
		if !containsPoint(set, w) {
			return false
		}
	}
	return true
}

func containsPoint(pts []geom.Point, p geom.Point) bool {
	for _, q := range pts {
		if q == p {
			return true
		}
	}
	return false
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Objective evaluates Eq. 26 for a finished schedule.
func Objective(m schedule.Metrics, alpha, beta, gamma float64) float64 {
	return alpha*float64(m.NWash) + beta*m.LWashMM + gamma*float64(m.TAssay)
}
