// Package pathdriverwash's root bench suite regenerates every table and
// figure of the paper's evaluation (Sec. IV) plus the ablations called
// out in DESIGN.md:
//
//   - BenchmarkTableII_* run the DAWO baseline and PDW on each of the
//     eight benchmarks and report N_wash, L_wash, T_delay, and T_assay
//     for both methods (the four column groups of Table II);
//   - BenchmarkFig4_* / BenchmarkFig5_* report the average operation
//     waiting time and the total wash time series;
//   - BenchmarkTableI_Motivating regenerates the running example's flow
//     paths; BenchmarkFig3_Motivating its optimized schedule;
//   - BenchmarkAblation_* quantify each design choice on the IVD
//     benchmark (necessity analysis, merging, ψ-integration, path ILP,
//     window MILP);
//   - the Benchmark<Substrate> entries measure the supporting systems
//     (simplex, branch & bound, router, synthesis, contamination
//     analysis, wash-path ILP).
//
// Solver budgets are kept small so the whole suite completes in
// minutes; `cmd/pdwbench` runs the same experiments with the paper's
// larger budgets.
package pathdriverwash

import (
	"fmt"
	"testing"
	"time"

	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/contam"
	"pathdriverwash/internal/control"
	"pathdriverwash/internal/dawo"
	"pathdriverwash/internal/demandwash"
	"pathdriverwash/internal/geom"
	"pathdriverwash/internal/harness"
	"pathdriverwash/internal/lp"
	"pathdriverwash/internal/milp"
	"pathdriverwash/internal/pdw"
	"pathdriverwash/internal/route"
	"pathdriverwash/internal/synth"
	"pathdriverwash/internal/washpath"
)

// benchOpts keeps per-iteration solver budgets small.
func benchOpts() harness.Options {
	return harness.Options{
		PDW: pdw.Options{
			PathTimeLimit:   time.Second,
			WindowTimeLimit: 3 * time.Second,
		},
		BaseCompressLimit: 2 * time.Second,
	}
}

func runTableII(b *testing.B, name string) {
	bm, err := benchmarks.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := harness.RunBenchmark(bm, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		r := out.Row
		b.ReportMetric(float64(r.DAWONWash), "DAWO-N_wash")
		b.ReportMetric(float64(r.PDWNWash), "PDW-N_wash")
		b.ReportMetric(r.DAWOLWash, "DAWO-L_wash_mm")
		b.ReportMetric(r.PDWLWash, "PDW-L_wash_mm")
		b.ReportMetric(float64(r.DAWOTDelay), "DAWO-T_delay_s")
		b.ReportMetric(float64(r.PDWTDelay), "PDW-T_delay_s")
		b.ReportMetric(float64(r.DAWOTAssay), "DAWO-T_assay_s")
		b.ReportMetric(float64(r.PDWTAssay), "PDW-T_assay_s")
	}
}

// Table II rows (one bench per benchmark).

func BenchmarkTableII_PCR(b *testing.B)          { runTableII(b, "PCR") }
func BenchmarkTableII_IVD(b *testing.B)          { runTableII(b, "IVD") }
func BenchmarkTableII_ProteinSplit(b *testing.B) { runTableII(b, "ProteinSplit") }
func BenchmarkTableII_KinaseAct1(b *testing.B)   { runTableII(b, "Kinase act-1") }
func BenchmarkTableII_KinaseAct2(b *testing.B)   { runTableII(b, "Kinase act-2") }
func BenchmarkTableII_Synthetic1(b *testing.B)   { runTableII(b, "Synthetic1") }
func BenchmarkTableII_Synthetic2(b *testing.B)   { runTableII(b, "Synthetic2") }
func BenchmarkTableII_Synthetic3(b *testing.B)   { runTableII(b, "Synthetic3") }

// Fig. 4 (average waiting time) and Fig. 5 (total wash time) series.

func runFig(b *testing.B, name string, fig4 bool) {
	bm, err := benchmarks.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		out, err := harness.RunBenchmark(bm, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if fig4 {
			b.ReportMetric(out.Row.DAWOAvgWait, "DAWO-avg_wait_s")
			b.ReportMetric(out.Row.PDWAvgWait, "PDW-avg_wait_s")
		} else {
			b.ReportMetric(float64(out.Row.DAWOWashTime), "DAWO-wash_time_s")
			b.ReportMetric(float64(out.Row.PDWWashTime), "PDW-wash_time_s")
		}
	}
}

func BenchmarkFig4_PCR(b *testing.B)          { runFig(b, "PCR", true) }
func BenchmarkFig4_IVD(b *testing.B)          { runFig(b, "IVD", true) }
func BenchmarkFig4_ProteinSplit(b *testing.B) { runFig(b, "ProteinSplit", true) }
func BenchmarkFig4_KinaseAct1(b *testing.B)   { runFig(b, "Kinase act-1", true) }
func BenchmarkFig4_KinaseAct2(b *testing.B)   { runFig(b, "Kinase act-2", true) }
func BenchmarkFig4_Synthetic1(b *testing.B)   { runFig(b, "Synthetic1", true) }
func BenchmarkFig4_Synthetic2(b *testing.B)   { runFig(b, "Synthetic2", true) }
func BenchmarkFig4_Synthetic3(b *testing.B)   { runFig(b, "Synthetic3", true) }

func BenchmarkFig5_PCR(b *testing.B)          { runFig(b, "PCR", false) }
func BenchmarkFig5_IVD(b *testing.B)          { runFig(b, "IVD", false) }
func BenchmarkFig5_ProteinSplit(b *testing.B) { runFig(b, "ProteinSplit", false) }
func BenchmarkFig5_KinaseAct1(b *testing.B)   { runFig(b, "Kinase act-1", false) }
func BenchmarkFig5_KinaseAct2(b *testing.B)   { runFig(b, "Kinase act-2", false) }
func BenchmarkFig5_Synthetic1(b *testing.B)   { runFig(b, "Synthetic1", false) }
func BenchmarkFig5_Synthetic2(b *testing.B)   { runFig(b, "Synthetic2", false) }
func BenchmarkFig5_Synthetic3(b *testing.B)   { runFig(b, "Synthetic3", false) }

// Table I: the motivating example's complete flow paths (synthesis of
// the Fig. 2(a) chip and Fig. 2(b) scheduling).
func BenchmarkTableI_Motivating(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, chip, err := benchmarks.Motivating()
		if err != nil {
			b.Fatal(err)
		}
		syn, err := synth.SynthesizeOnChip(a, chip)
		if err != nil {
			b.Fatal(err)
		}
		fluidic := 0
		for _, t := range syn.Schedule.Tasks() {
			if t.Kind.Fluidic() {
				fluidic++
			}
		}
		b.ReportMetric(float64(fluidic), "flow_paths")
		b.ReportMetric(float64(syn.Schedule.Makespan()), "washfree_makespan_s")
	}
}

// Fig. 3: the motivating example's optimized schedule with washes.
func BenchmarkFig3_Motivating(b *testing.B) {
	a, chip, err := benchmarks.Motivating()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		syn, err := synth.SynthesizeOnChip(a, chip)
		if err != nil {
			b.Fatal(err)
		}
		res, err := pdw.Optimize(syn.Schedule, benchOpts().PDW)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Washes)), "N_wash")
		b.ReportMetric(float64(res.IntegratedRemovals), "integrated")
		b.ReportMetric(float64(res.Schedule.Makespan()), "T_assay_s")
	}
}

// Ablations on IVD: each disables one PDW technique (DESIGN.md).

func runAblation(b *testing.B, mutate func(*pdw.Options)) {
	bm, err := benchmarks.ByName("IVD")
	if err != nil {
		b.Fatal(err)
	}
	syn, err := bm.Synthesize()
	if err != nil {
		b.Fatal(err)
	}
	ref, err := pdw.CompressBase(syn.Schedule, 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOpts().PDW
	mutate(&opts)
	for i := 0; i < b.N; i++ {
		res, err := pdw.Optimize(syn.Schedule, opts)
		if err != nil {
			b.Fatal(err)
		}
		m := res.Schedule.ComputeMetrics(ref)
		b.ReportMetric(float64(m.NWash), "N_wash")
		b.ReportMetric(m.LWashMM, "L_wash_mm")
		b.ReportMetric(float64(m.TAssay), "T_assay_s")
	}
}

func BenchmarkAblation_Full(b *testing.B) { runAblation(b, func(*pdw.Options) {}) }
func BenchmarkAblation_NoNecessity(b *testing.B) {
	runAblation(b, func(o *pdw.Options) { o.DisableNecessity = true })
}
func BenchmarkAblation_NoMerge(b *testing.B) {
	runAblation(b, func(o *pdw.Options) { o.DisableMerge = true })
}
func BenchmarkAblation_NoIntegration(b *testing.B) {
	runAblation(b, func(o *pdw.Options) { o.DisableIntegration = true })
}
func BenchmarkAblation_HeuristicPaths(b *testing.B) {
	runAblation(b, func(o *pdw.Options) { o.HeuristicPaths = true })
}
func BenchmarkAblation_HeuristicWindows(b *testing.B) {
	runAblation(b, func(o *pdw.Options) { o.HeuristicWindows = true })
}

// Substrate microbenchmarks.

func BenchmarkSubstrateLPSimplex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := lp.NewProblem(20)
		for v := 0; v < 20; v++ {
			p.Objective[v] = float64(-(v%7 + 1))
		}
		for r := 0; r < 15; r++ {
			c := map[int]float64{}
			for v := 0; v < 20; v++ {
				c[v] = float64((v*r)%5 + 1)
			}
			p.AddConstraint(c, lp.LE, float64(40+r), "cap")
		}
		if _, err := lp.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateMILPKnapsack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := milp.NewProblem(0)
		coefs := map[int]float64{}
		for v := 0; v < 16; v++ {
			idx := p.AddBinary()
			p.SetObjective(idx, -float64(v%9+1))
			coefs[idx] = float64(v%6 + 1)
		}
		p.LP.AddConstraint(coefs, lp.LE, 23, "cap")
		if _, err := milp.Solve(p, milp.Options{TimeLimit: 10 * time.Second}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateRouting(b *testing.B) {
	bm, _ := benchmarks.ByName("Synthetic3")
	syn, err := bm.Synthesize()
	if err != nil {
		b.Fatal(err)
	}
	chip := syn.Chip
	fp := chip.FlowPorts()[0]
	wp := chip.WastePorts()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := route.ShortestPath(chip, fp.At, wp.At, route.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateSynthesis(b *testing.B) {
	bm, _ := benchmarks.ByName("IVD")
	for i := 0; i < b.N; i++ {
		if _, err := bm.Synthesize(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateContamAnalysis(b *testing.B) {
	bm, _ := benchmarks.ByName("Kinase act-2")
	syn, err := bm.Synthesize()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := contam.Analyze(syn.Schedule); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateWashPathILP(b *testing.B) {
	bm, _ := benchmarks.ByName("PCR")
	syn, err := bm.Synthesize()
	if err != nil {
		b.Fatal(err)
	}
	// A three-cell chain on the first street.
	targets := []geom.Point{geom.Pt(4, 1), geom.Pt(5, 1), geom.Pt(6, 1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := washpath.Build(syn.Chip, washpath.Request{Targets: targets},
			washpath.Options{Exact: true, TimeLimit: 10 * time.Second}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineDemandDriven measures the related-work heuristic of
// [9] (maximally postponed washes) for comparison against DAWO and PDW.
func BenchmarkBaselineDemandDriven(b *testing.B) {
	bm, _ := benchmarks.ByName("PCR")
	syn, err := bm.Synthesize()
	if err != nil {
		b.Fatal(err)
	}
	ref, err := pdw.CompressBase(syn.Schedule, 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := demandwash.Optimize(syn.Schedule, demandwash.Options{})
		if err != nil {
			b.Fatal(err)
		}
		m := res.Schedule.ComputeMetrics(ref)
		b.ReportMetric(float64(m.NWash), "N_wash")
		b.ReportMetric(float64(m.TAssay), "T_assay_s")
	}
}

func BenchmarkSubstrateDAWO(b *testing.B) {
	bm, _ := benchmarks.ByName("PCR")
	syn, err := bm.Synthesize()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dawo.Optimize(syn.Schedule, dawo.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Sanity: the bench fixtures build valid assays.
func TestBenchFixturesValid(t *testing.T) {
	for _, bm := range benchmarks.All() {
		if err := bm.Assay.Validate(); err != nil {
			t.Errorf("%s: %v", bm.Name, err)
		}
	}
}

// BenchmarkControlLayerCost compares the control-layer burden (valve
// switching operations) of DAWO and PDW schedules on PCR: fewer and
// shorter washes also mean fewer valve actuations.
func BenchmarkControlLayerCost(b *testing.B) {
	bm, _ := benchmarks.ByName("PCR")
	syn, err := bm.Synthesize()
	if err != nil {
		b.Fatal(err)
	}
	layer := control.Synthesize(syn.Chip)
	dres, err := dawo.Optimize(syn.Schedule, dawo.Options{})
	if err != nil {
		b.Fatal(err)
	}
	pres, err := pdw.Optimize(syn.Schedule, benchOpts().PDW)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dp, err := control.BuildPlan(layer, dres.Schedule)
		if err != nil {
			b.Fatal(err)
		}
		pp, err := control.BuildPlan(layer, pres.Schedule)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(dp.Switches), "DAWO-switches")
		b.ReportMetric(float64(pp.Switches), "PDW-switches")
		b.ReportMetric(float64(dp.Pins), "DAWO-pins")
		b.ReportMetric(float64(pp.Pins), "PDW-pins")
	}
}

// BenchmarkAblation_Placement measures the synthesis placement hill
// climb's effect on the PCR benchmark (chip communication distance
// propagates into path lengths and makespans).
func BenchmarkAblation_Placement(b *testing.B) {
	bm, _ := benchmarks.ByName("PCR")
	for i := 0; i < b.N; i++ {
		for _, on := range []bool{false, true} {
			cfg := bm.Config
			cfg.OptimizePlacement = on
			syn, err := synth.Synthesize(bm.Assay, cfg)
			if err != nil {
				b.Fatal(err)
			}
			label := "plain"
			if on {
				label = "placed"
			}
			b.ReportMetric(float64(syn.Schedule.Makespan()), label+"-washfree_makespan_s")
		}
	}
}

// Sensitivity sweeps: how the headline metrics respond to the model
// parameters (extension experiments beyond the paper's fixed settings).

// BenchmarkSweep_MergeRadius varies PDW's group-merging radius on IVD.
func BenchmarkSweep_MergeRadius(b *testing.B) {
	bm, _ := benchmarks.ByName("IVD")
	syn, err := bm.Synthesize()
	if err != nil {
		b.Fatal(err)
	}
	ref, err := pdw.CompressBase(syn.Schedule, 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, radius := range []int{1, 4, 8} {
			opts := benchOpts().PDW
			opts.MergeRadius = radius
			res, err := pdw.Optimize(syn.Schedule, opts)
			if err != nil {
				b.Fatal(err)
			}
			m := res.Schedule.ComputeMetrics(ref)
			b.ReportMetric(float64(m.NWash), fmt.Sprintf("r%d-N_wash", radius))
			b.ReportMetric(float64(m.TAssay), fmt.Sprintf("r%d-T_assay_s", radius))
		}
	}
}

// BenchmarkSweep_Dissolution varies the contaminant dissolution time t_d
// of Eq. 17 on PCR: longer washes crowd the schedule.
func BenchmarkSweep_Dissolution(b *testing.B) {
	bm, _ := benchmarks.ByName("PCR")
	for i := 0; i < b.N; i++ {
		for _, td := range []float64{1, 2, 4} {
			cfg := bm.Config
			cfg.DissolutionS = td
			syn, err := synth.Synthesize(bm.Assay, cfg)
			if err != nil {
				b.Fatal(err)
			}
			ref, err := pdw.CompressBase(syn.Schedule, 2*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			res, err := pdw.Optimize(syn.Schedule, benchOpts().PDW)
			if err != nil {
				b.Fatal(err)
			}
			m := res.Schedule.ComputeMetrics(ref)
			b.ReportMetric(float64(m.TotalWashSeconds), fmt.Sprintf("td%g-wash_time_s", td))
			b.ReportMetric(float64(m.TAssay), fmt.Sprintf("td%g-T_assay_s", td))
		}
	}
}

// BenchmarkSweep_Topology compares the street-grid and ring
// architectures on the same protocol.
func BenchmarkSweep_Topology(b *testing.B) {
	bm, _ := benchmarks.ByName("PCR")
	for i := 0; i < b.N; i++ {
		for _, topo := range []synth.Topology{synth.StreetGrid, synth.Ring} {
			cfg := bm.Config
			cfg.Topology = topo
			syn, err := synth.Synthesize(bm.Assay, cfg)
			if err != nil {
				b.Fatal(err)
			}
			ref, err := pdw.CompressBase(syn.Schedule, 2*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			res, err := pdw.Optimize(syn.Schedule, benchOpts().PDW)
			if err != nil {
				b.Fatal(err)
			}
			m := res.Schedule.ComputeMetrics(ref)
			b.ReportMetric(float64(m.NWash), topo.String()+"-N_wash")
			b.ReportMetric(float64(m.TAssay), topo.String()+"-T_assay_s")
		}
	}
}
