module pathdriverwash

go 1.22
