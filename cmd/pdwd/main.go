// Pdwd is the PathDriver-Wash solve server: a long-running HTTP/JSON
// service that accepts assay documents and answers optimized,
// contamination-free schedules with full solve telemetry.
//
//	pdwd -listen :8080
//	curl -s localhost:8080/v1/solve -d @assay.json
//
// The server admits solves through a bounded worker pool (429 +
// Retry-After when the queue is full), memoizes optimal results in an
// LRU incumbent cache keyed on the canonical (assay, method, weights)
// identity, coalesces identical concurrent requests onto one solve,
// and sheds load to the cheap heuristic warm-start — flagged
// "degraded": true — once the queue passes a watermark. See DESIGN.md
// "Wire schema v1" for the request/response contract.
//
// Every request is observable end to end: pdwd accepts or mints a W3C
// trace context, echoes `Traceparent` and `X-Request-Id` response
// headers, logs structured JSON access lines (-log-level), and keeps a
// tail-sampled flight recorder of completed requests on
// /debug/requests, with per-request Chrome-trace exports on
// /debug/requests/{id}/trace (DESIGN.md "Request observability
// contract"). In-flight solves stream live progress on /debug/solves
// (list, snapshot, SSE watch), and anomalous requests — budget
// overruns, shed load, tail latency — trip a bounded ring of pprof
// captures served on /debug/profiles and linked from the request
// record's profile_id (-profiles, -profile-cpu, -profile-cooldown).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pathdriverwash/internal/obs"
	"pathdriverwash/internal/obs/prof"
	"pathdriverwash/internal/obs/reqlog"
	"pathdriverwash/internal/service"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdwd:", err)
	os.Exit(1)
}

func main() {
	var (
		listen  = flag.String("listen", ":8080", "address to serve the solve API on")
		workers = flag.Int("workers", 0, "concurrent exact solves (0: GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "admission queue depth (0: 4x workers)")
		shed    = flag.Int("shed", 0, "queue watermark that sheds solves to the heuristic warm-start (0: half the queue, -1: disable)")
		cache   = flag.Int("cache", 0, "incumbent cache entries (0: 128, -1: disable)")

		defBudget  = flag.Duration("default-budget", 30*time.Second, "budget applied to requests that carry none")
		maxBudget  = flag.Duration("max-budget", 2*time.Minute, "upper clamp on requested budgets")
		shedBudget = flag.Duration("shed-budget", 5*time.Second, "budget for shed heuristic solves")

		logLevel = flag.String("log-level", "info", "structured JSON log level: debug|info|warn|error")
		requests = flag.Int("requests", 512, "flight-recorder ring depth for /debug/requests (-1: disable)")
		sample   = flag.Int("request-sample", 16, "keep 1 in N boring (ok/cached/coalesced) requests; errors, shed, canceled, overrun, and tail-latency requests are always kept")

		profiles    = flag.Int("profiles", 16, "anomaly-triggered profile ring depth for /debug/profiles (-1: disable)")
		profileCPU  = flag.Duration("profile-cpu", time.Second, "CPU capture window per triggered profile")
		profileCool = flag.Duration("profile-cooldown", 30*time.Second, "minimum gap between triggered profiles")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected arguments: %v", flag.Args()))
	}
	level, err := reqlog.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	logger := reqlog.NewLogger(os.Stderr, level)

	// One process, one registry: solver metrics (pdw_*), service
	// metrics (pdwd_*), and the Go runtime gauges share /metrics.
	obs.Enable()
	// Anomalous requests (overrun, shed, tail latency) trip a pprof
	// capture; the bundles live on /debug/profiles and the triggering
	// record on /debug/requests carries the matching profile_id.
	var trigger *prof.Engine
	if *profiles >= 0 {
		trigger = prof.New(prof.Config{Depth: *profiles, CPUDuration: *profileCPU, Cooldown: *profileCool})
		trigger.InstallDebug()
	}
	var recorder *reqlog.Recorder
	if *requests >= 0 {
		recorder = reqlog.NewRecorder(reqlog.Config{Depth: *requests, SampleEvery: *sample, Trigger: trigger})
		defer recorder.Close()
		// Mount /debug/requests before WithDebug snapshots the debug mux.
		recorder.InstallDebug()
	}
	srv := service.New(service.Config{
		Workers: *workers, QueueDepth: *queue, ShedWatermark: *shed, CacheSize: *cache,
		DefaultBudget: *defBudget, MaxBudget: *maxBudget, ShedBudget: *shedBudget,
		Logger: logger, Recorder: recorder,
	})

	httpSrv := &http.Server{
		Handler:           obs.WithDebug(srv.Handler()),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Listen before serving so the log line carries the actual bound
	// address (":0" resolves to a real port scripts can parse).
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening",
			"addr", ln.Addr().String(),
			"endpoints", "POST /v1/solve; /healthz, /metrics, /debug/pprof, /debug/requests, /debug/solves, /debug/profiles")
		errc <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	logger.Info("shutting down", "reason", "signal", "grace", "30s")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	logger.Info("stopped")
}
