// Command chipviz renders a benchmark's synthesized chip layout and its
// execution schedule as ASCII art.
//
// Usage:
//
//	chipviz -bench PCR            # chip layout + wash-free Gantt
//	chipviz -bench PCR -washed    # layout + PDW-optimized Gantt
//	chipviz -motivating           # the paper's Fig. 2(a)-style chip
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/contam"
	"pathdriverwash/internal/control"
	"pathdriverwash/internal/pdw"
	"pathdriverwash/internal/synth"
)

func main() {
	var (
		benchName  = flag.String("bench", "PCR", "benchmark name")
		washed     = flag.Bool("washed", false, "show the PDW-optimized schedule")
		motivating = flag.Bool("motivating", false, "show the paper's motivating example instead")
		valves     = flag.Bool("valves", false, "show the control layer (valves, pins, switching)")
		heat       = flag.Bool("contam", false, "show the contamination heatmap")
	)
	flag.Parse()

	var syn *synth.Result
	var err error
	if *motivating {
		a, chip, merr := benchmarks.Motivating()
		if merr != nil {
			fatal(merr)
		}
		syn, err = synth.SynthesizeOnChip(a, chip)
	} else {
		b, berr := benchmarks.ByName(*benchName)
		if berr != nil {
			fatal(berr)
		}
		syn, err = b.Synthesize()
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("chip %q (%dx%d)\n", syn.Chip.Name, syn.Chip.W, syn.Chip.H)
	fmt.Println(syn.Chip.Render())
	for _, d := range syn.Chip.Devices() {
		fmt.Println(" ", d)
	}
	for _, p := range syn.Chip.Ports() {
		fmt.Printf("  %s port %s\n", p.Kind, p)
	}
	fmt.Println()

	sched := syn.Schedule
	if *washed {
		res, err := pdw.Optimize(syn.Schedule, pdw.Options{WindowTimeLimit: 10 * time.Second})
		if err != nil {
			fatal(err)
		}
		sched = res.Schedule
		fmt.Printf("PDW-optimized schedule (%d washes):\n", len(res.Washes))
	} else {
		fmt.Println("wash-free schedule:")
	}
	fmt.Println(sched.Gantt())

	if *heat {
		hm, err := contam.Heatmap(sched)
		if err != nil {
			fatal(err)
		}
		fmt.Println("contamination heatmap (events per cell):")
		fmt.Println(hm)
	}
	if *valves {
		layer := control.Synthesize(syn.Chip)
		plan, err := control.BuildPlan(layer, sched)
		if err != nil {
			fatal(err)
		}
		st := plan.Stats()
		fmt.Printf("control layer: %d valves (%d actuated), %d control pins after sharing, %d switch operations\n",
			st["valves"], st["valves_actuated"], st["control_pins"], st["switches"])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chipviz:", err)
	os.Exit(1)
}
