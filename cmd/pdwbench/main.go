// Command pdwbench regenerates the paper's evaluation artifacts: the
// Table II comparison between DAWO and PathDriver-Wash, the Fig. 4
// average-waiting-time chart, and the Fig. 5 total-wash-time chart, over
// the eight benchmarks of Sec. IV.
//
// Usage:
//
//	pdwbench              # Table II + Fig. 4 + Fig. 5
//	pdwbench -table2      # only Table II
//	pdwbench -csv         # machine-readable CSV
//	pdwbench -paper       # measured-vs-paper improvement comparison
//	pdwbench -quick       # smaller solver budgets (fast smoke run)
//	pdwbench -stats       # per-benchmark structured solve traces
//	pdwbench -parallel 4  # worker-pool sweep with 4 workers
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/harness"
	"pathdriverwash/internal/pdw"
	"pathdriverwash/internal/report"
)

func main() {
	var (
		table2 = flag.Bool("table2", false, "print Table II only")
		fig4   = flag.Bool("fig4", false, "print Fig. 4 only")
		fig5   = flag.Bool("fig5", false, "print Fig. 5 only")
		csv    = flag.Bool("csv", false, "print CSV only")
		paper  = flag.Bool("paper", false, "print measured-vs-paper comparison only")
		quick  = flag.Bool("quick", false, "small solver budgets")
		stats  = flag.Bool("stats", false, "print per-benchmark solve traces")
		winTL  = flag.Duration("window-time", 10*time.Second, "time-window MILP limit per benchmark")
		pathTL = flag.Duration("path-time", 3*time.Second, "wash-path ILP limit per path")
		budget = flag.Duration("budget", 0, "total sweep deadline; expiry degrades runs to heuristic incumbents")
		par    = flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	opts := harness.Options{PDW: pdw.Options{
		PathTimeLimit: *pathTL, WindowTimeLimit: *winTL,
	}}
	if *quick {
		opts.PDW.PathTimeLimit = 500 * time.Millisecond
		opts.PDW.WindowTimeLimit = 2 * time.Second
		opts.BaseCompressLimit = time.Second
	}

	ctx := context.Background()
	if *budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *budget)
		defer cancel()
	}

	start := time.Now()
	outs, err := harness.Run(ctx, benchmarks.All(), opts, *par)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdwbench:", err)
		os.Exit(1)
	}
	rows := harness.Rows(outs)

	all := !*table2 && !*fig4 && !*fig5 && !*csv && !*paper
	if all || *table2 {
		fmt.Println(report.TableII(rows))
	}
	if all || *fig4 {
		fmt.Println(report.Fig4(rows))
	}
	if all || *fig5 {
		fmt.Println(report.Fig5(rows))
	}
	if *csv {
		fmt.Print(report.CSV(rows))
	}
	if all || *paper {
		fmt.Println(report.ComparisonTable(harness.PaperComparisons(outs)))
	}
	if all {
		for _, o := range outs {
			fmt.Printf("%-14s DAWO %6.2fs  PDW %6.2fs (windows optimal: %v, B&B nodes %d, simplex pivots %d)\n",
				o.Benchmark.Name, o.DAWOTime.Seconds(), o.PDWTime.Seconds(), o.PDW.WindowsOptimal,
				o.PDW.Stats.Nodes(), o.PDW.Stats.SimplexIters())
		}
		fmt.Printf("total runtime: %.1fs\n", time.Since(start).Seconds())
	}
	if *stats {
		for _, o := range outs {
			fmt.Printf("\n%s PDW solve trace:\n%s\n", o.Benchmark.Name, o.PDW.Stats.Summary())
		}
	}
}
