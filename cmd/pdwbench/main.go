// Command pdwbench regenerates the paper's evaluation artifacts: the
// Table II comparison between DAWO and PathDriver-Wash, the Fig. 4
// average-waiting-time chart, and the Fig. 5 total-wash-time chart, over
// the eight benchmarks of Sec. IV.
//
// Usage:
//
//	pdwbench                      # Table II + Fig. 4 + Fig. 5
//	pdwbench -table2              # only Table II
//	pdwbench -csv                 # machine-readable CSV
//	pdwbench -paper               # measured-vs-paper improvement comparison
//	pdwbench -quick               # smaller solver budgets (fast smoke run)
//	pdwbench -stats               # per-benchmark structured solve traces
//	pdwbench -parallel 4          # worker-pool sweep with 4 workers
//	pdwbench -json out.json       # machine-readable sweep result (stable schema)
//	pdwbench -count 5 -json out.json # repeat the sweep 5x, recording wall-time samples
//	pdwbench -validate out.json   # validate a bench JSON file and exit
//	pdwbench -compare old.json new.json # statistical diff of two bench files
//	pdwbench -compare -md old.json new.json # ... as a markdown table
//	pdwbench -baseline old.json   # run the sweep, diff against old.json,
//	                              # exit non-zero on significant regression
//	pdwbench -trace out.trace.json # Chrome trace-event span dump (Perfetto)
//	pdwbench -events out.jsonl    # JSONL span event log
//	pdwbench -listen :8080        # live /metrics, /debug/vars, /debug/pprof
//
// Benchmarks that fail are reported on stderr and the command exits
// non-zero, but every artifact is still produced from the rows that
// completed — a sweep never silently omits Table II rows.
//
// The regression verdicts come from internal/report.Diff: Mann–Whitney
// significance on wall-time samples when both files carry them, fixed
// relative thresholds otherwise, and a hard refusal to compare -quick
// files against full runs. -baseline fails the run (exit 1) on any
// regression in n_wash / l_wash_mm / t_assay_s, on a wall-time
// regression beyond -wall-threshold, or on a benchmark that vanished
// relative to the baseline.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pathdriverwash/internal/benchmarks"
	"pathdriverwash/internal/harness"
	"pathdriverwash/internal/obs"
	"pathdriverwash/internal/pdw"
	"pathdriverwash/internal/report"
)

func main() {
	var (
		table2   = flag.Bool("table2", false, "print Table II only")
		fig4     = flag.Bool("fig4", false, "print Fig. 4 only")
		fig5     = flag.Bool("fig5", false, "print Fig. 5 only")
		csv      = flag.Bool("csv", false, "print CSV only")
		paper    = flag.Bool("paper", false, "print measured-vs-paper comparison only")
		quick    = flag.Bool("quick", false, "small solver budgets")
		stats    = flag.Bool("stats", false, "print per-benchmark solve traces")
		winTL    = flag.Duration("window-time", 10*time.Second, "time-window MILP limit per benchmark")
		pathTL   = flag.Duration("path-time", 3*time.Second, "wash-path ILP limit per path")
		budget   = flag.Duration("budget", 0, "total sweep deadline; expiry degrades runs to heuristic incumbents")
		par      = flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
		jsonOut  = flag.String("json", "", "write the machine-readable sweep result to this file")
		count    = flag.Int("count", 1, "run each benchmark this many times, recording per-iteration wall-time samples")
		validate = flag.String("validate", "", "validate a bench JSON file against the schema and exit")
		compare  = flag.Bool("compare", false, "compare two bench JSON files (old new) and exit")
		md       = flag.Bool("md", false, "render -compare / -baseline diffs as markdown")
		baseline = flag.String("baseline", "", "bench JSON baseline: run the sweep, diff against it, exit non-zero on regression")
		wallGate = flag.Float64("wall-threshold", 0.20, "relative wall-time regression that fails -baseline (0.20 = +20%)")
		traceOut = flag.String("trace", "", "write a Chrome trace-event span dump to this file")
		events   = flag.String("events", "", "stream span events as JSON lines to this file")
		listen   = flag.String("listen", "", "serve /metrics, /debug/vars and /debug/pprof on this address during the run")
	)
	flag.Parse()

	if *validate != "" {
		if _, err := readBenchFile(*validate); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: valid bench file (schema v%d)\n", *validate, report.BenchSchemaVersion)
		return
	}
	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two bench files: pdwbench -compare old.json new.json"))
		}
		oldFile, err := readBenchFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		newFile, err := readBenchFile(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		rep, err := report.Diff(oldFile, newFile)
		if err != nil {
			fatal(err)
		}
		if *md {
			fmt.Print(rep.Markdown())
		} else {
			fmt.Print(rep.Table())
		}
		return
	}

	// Observability wiring: any exporter flag enables the span/metric
	// layer for the whole run.
	var traceBuf *obs.TraceBuffer
	if *traceOut != "" {
		traceBuf = &obs.TraceBuffer{}
		obs.AddSink(traceBuf)
		obs.Enable()
	}
	var eventsFile *os.File
	var eventsJSONL *obs.JSONLWriter
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fatal(err)
		}
		eventsFile = f
		eventsJSONL = obs.NewJSONLWriter(f)
		obs.AddSink(eventsJSONL)
		obs.Enable()
	}
	if *listen != "" {
		addr, err := obs.Serve(*listen)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pdwbench: debug server on http://%s (metrics, expvar, pprof)\n", addr)
	}
	if *jsonOut != "" || *baseline != "" {
		obs.Enable() // the bench file embeds the metrics snapshot
	}

	opts := harness.Options{PDW: pdw.Options{
		PathTimeLimit: *pathTL, WindowTimeLimit: *winTL,
	}}
	if *quick {
		opts.PDW.PathTimeLimit = 500 * time.Millisecond
		opts.PDW.WindowTimeLimit = 2 * time.Second
		opts.BaseCompressLimit = time.Second
	}

	ctx := context.Background()
	if *budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *budget)
		defer cancel()
	}

	benches := benchmarks.All()
	start := time.Now()
	var (
		outs    []*harness.Outcome
		errs    []error
		samples []harness.BenchSamples
	)
	if *count > 1 {
		// Repeated sweeps feed the per-iteration wall_samples series;
		// a single-shot run leaves samples nil so the artifact stays
		// byte-identical to pre-radar files.
		outs, errs, samples = harness.RunSampledPartial(ctx, benches, opts, *par, *count)
	} else {
		outs, errs = harness.RunPartial(ctx, benches, opts, *par)
	}
	wall := time.Since(start)

	failed := 0
	for i, err := range errs {
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "pdwbench: %s failed: %v\n", benches[i].Name, err)
		}
	}
	rows := harness.Rows(outs)

	var bf *report.BenchFile
	if *jsonOut != "" || *baseline != "" {
		bf = harness.BuildBenchFile(benches, outs, errs, samples, *quick, *par, wall)
		if err := bf.Validate(); err != nil {
			fatal(fmt.Errorf("generated bench file fails its own schema: %w", err))
		}
	}
	if *jsonOut != "" {
		if err := writeFileWith(*jsonOut, func(w io.Writer) error {
			return report.WriteBenchJSON(w, bf)
		}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pdwbench: sweep result written to %s\n", *jsonOut)
	}
	if traceBuf != nil {
		if err := writeFileWith(*traceOut, traceBuf.WriteChromeTrace); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pdwbench: %d spans written to %s (load in Perfetto / chrome://tracing)\n",
			traceBuf.Len(), *traceOut)
	}
	if eventsFile != nil {
		if err := eventsJSONL.Err(); err != nil {
			fatal(fmt.Errorf("events log: %w", err))
		}
		if err := eventsFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pdwbench: span events written to %s\n", *events)
	}

	all := !*table2 && !*fig4 && !*fig5 && !*csv && !*paper
	if len(rows) > 0 {
		if all || *table2 {
			fmt.Println(report.TableII(rows))
		}
		if all || *fig4 {
			fmt.Println(report.Fig4(rows))
		}
		if all || *fig5 {
			fmt.Println(report.Fig5(rows))
		}
		if *csv {
			fmt.Print(report.CSV(rows))
		}
		if all || *paper {
			fmt.Println(report.ComparisonTable(harness.PaperComparisons(outs)))
		}
	}
	if all {
		for _, o := range outs {
			if o == nil {
				continue
			}
			fmt.Printf("%-14s DAWO %6.2fs  PDW %6.2fs (windows optimal: %v, B&B nodes %d, simplex pivots %d)\n",
				o.Benchmark.Name, o.DAWOTime.Seconds(), o.PDWTime.Seconds(), o.PDW.WindowsOptimal,
				o.PDW.Stats.Nodes(), o.PDW.Stats.SimplexIters())
		}
		fmt.Printf("total runtime: %.1fs\n", wall.Seconds())
	}
	if *stats {
		for _, o := range outs {
			if o == nil {
				continue
			}
			fmt.Printf("\n%s PDW solve trace:\n%s\n", o.Benchmark.Name, o.PDW.Stats.Summary())
		}
	}
	if *baseline != "" {
		base, err := readBenchFile(*baseline)
		if err != nil {
			fatal(fmt.Errorf("baseline: %w", err))
		}
		rep, err := report.Diff(base, bf)
		if err != nil {
			fatal(err)
		}
		if *md {
			fmt.Print(rep.Markdown())
		} else {
			fmt.Print(rep.Table())
		}
		if viol := rep.Gate(*wallGate); len(viol) > 0 {
			fmt.Fprintf(os.Stderr, "pdwbench: %d regression(s) against baseline %s:\n", len(viol), *baseline)
			for _, v := range viol {
				if v.Verdict == report.VerdictMissing {
					fmt.Fprintf(os.Stderr, "  %s: missing from this run\n", v.Benchmark)
					continue
				}
				fmt.Fprintf(os.Stderr, "  %s/%s/%s: %g -> %g\n", v.Benchmark, v.Method, v.Metric, v.Old, v.New)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pdwbench: no regressions against baseline %s\n", *baseline)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "pdwbench: %d of %d benchmarks failed\n", failed, len(benches))
		os.Exit(1)
	}
}

// readBenchFile opens, parses, and schema-validates one bench file.
func readBenchFile(path string) (*report.BenchFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return report.ReadBenchJSON(f)
}

// writeFileWith creates path, streams through write, and closes it,
// reporting the first error.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdwbench:", err)
	os.Exit(1)
}
